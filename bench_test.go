// Benchmarks regenerating every figure and quantitative claim of the
// paper. Each benchmark runs the experiment in the timed loop and
// prints its series/rows exactly once per process (so `go test
// -bench=.` emits the reproduction tables alongside the timings).
//
// Experiment ids (F* = figures, E* = embedded quantitative claims)
// follow DESIGN.md; EXPERIMENTS.md records paper-vs-measured values.
package spiderfs_test

import (
	"fmt"
	"sync"
	"testing"

	"spiderfs/internal/benchsuite"
	"spiderfs/internal/center"
	"spiderfs/internal/disk"
	"spiderfs/internal/failure"
	"spiderfs/internal/iosi"
	"spiderfs/internal/lustre"
	"spiderfs/internal/monitor"
	"spiderfs/internal/netsim"
	"spiderfs/internal/placement"
	"spiderfs/internal/procure"
	"spiderfs/internal/provision"
	"spiderfs/internal/purge"
	"spiderfs/internal/qa"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/stats"
	"spiderfs/internal/tools"
	"spiderfs/internal/topology"
	"spiderfs/internal/workload"
)

var printGate sync.Map

// printOnce emits a reproduction table exactly once per experiment id,
// no matter how many times the benchmark framework re-invokes the
// function while calibrating b.N.
func printOnce(id, body string) {
	if _, loaded := printGate.LoadOrStore(id, true); loaded {
		return
	}
	fmt.Printf("\n--- %s ---\n%s", id, body)
}

// ---------------------------------------------------------------- F2

func BenchmarkFig2RouterPlacement(b *testing.B) {
	var spread, zoned, clumpedD float64
	var p topology.Placement
	for i := 0; i < b.N; i++ {
		p = topology.PlaceRouters(topology.TitanCabinets(), topology.TitanTorus(), 110, 9)
		spread = p.MeanClientRouterDistance(false)
		zoned = p.MeanClientRouterDistance(true)
		clumped := p
		clumped.Modules = append([]topology.IOModule(nil), p.Modules...)
		for j := range clumped.Modules {
			clumped.Modules[j].Coord = topology.Coord{X: 0, Y: 0, Z: j % 24}
		}
		clumpedD = clumped.MeanClientRouterDistance(false)
	}
	printOnce("F2 router placement (Fig. 2)", p.RenderXYMap()+
		fmt.Sprintf("mean client->router hops: %.2f spread / %.2f FGR-zoned / %.2f clumped\n",
			spread, zoned, clumpedD))
	b.ReportMetric(spread, "hops")
}

// ---------------------------------------------------------------- F3

func fig3Sweep() []workload.IORResult {
	sizes := []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20}
	out := make([]workload.IORResult, 0, len(sizes))
	for i, sz := range sizes {
		c := center.New(center.Config{Small: true, Namespaces: 1, Seed: uint64(300 + i)})
		out = append(out, c.RunIOR(0, workload.IORConfig{
			Clients:      32,
			TransferSize: sz,
			StoneWall:    300 * sim.Millisecond,
		}))
	}
	return out
}

func BenchmarkFig3TransferSize(b *testing.B) {
	var res []workload.IORResult
	for i := 0; i < b.N; i++ {
		res = fig3Sweep()
	}
	body := fmt.Sprintf("%-10s %12s\n", "xfer", "agg MB/s")
	var peak float64
	var peakAt int64
	for _, r := range res {
		body += fmt.Sprintf("%-10d %12.1f\n", r.Transfer, r.AggregateBps/1e6)
		if r.AggregateBps > peak {
			peak, peakAt = r.AggregateBps, r.Transfer
		}
	}
	body += fmt.Sprintf("knee at %d bytes; plateau beyond the 1 MiB wire-RPC cap (paper: best at 1 MiB, mild decline after)\n", peakAt)
	printOnce("F3 IOR bandwidth vs transfer size (Fig. 3)", body)
	b.ReportMetric(peak/1e9, "peak-GB/s")
}

// ---------------------------------------------------------------- F4

func fig4Sweep() []workload.IORResult {
	counts := []int{2, 4, 8, 16, 32, 64, 128}
	out := make([]workload.IORResult, 0, len(counts))
	for i, n := range counts {
		c := center.New(center.Config{Small: true, Namespaces: 1, Seed: uint64(400 + i)})
		out = append(out, c.RunIOR(0, workload.IORConfig{
			Clients:      n,
			TransferSize: 1 << 20,
			StoneWall:    300 * sim.Millisecond,
		}))
	}
	return out
}

func BenchmarkFig4ClientScaling(b *testing.B) {
	var res []workload.IORResult
	for i := 0; i < b.N; i++ {
		res = fig4Sweep()
	}
	body := fmt.Sprintf("%-10s %12s\n", "clients", "agg MB/s")
	var plateau float64
	for _, r := range res {
		body += fmt.Sprintf("%-10d %12.1f\n", r.Clients, r.AggregateBps/1e6)
		if r.AggregateBps > plateau {
			plateau = r.AggregateBps
		}
	}
	body += "shape: near-linear scaling then a controller-bound plateau (paper: linear to ~6,000 clients, then steady)\n"
	printOnce("F4 IOR bandwidth vs client count (Fig. 4)", body)
	b.ReportMetric(plateau/1e9, "plateau-GB/s")
}

// ---------------------------------------------------------------- E1

func BenchmarkE1WorkloadMix(b *testing.B) {
	var tr *workload.MixedTrace
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(500))
		cfg := workload.DefaultMixed()
		cfg.Duration = 3 * sim.Second
		cfg.MeanArrival = 4 * sim.Millisecond
		cfg.LargeMaxUnits = 4
		tr = workload.RunMixed(fs, cfg, rng.New(501))
	}
	small, large := 0, 0
	for _, s := range tr.Sizes {
		if s <= 16<<10 {
			small++
		} else if s >= 1<<20 {
			large++
		}
	}
	// Fit the Pareto tail above the median gap: the merged arrival
	// process of many streams is heavy-tailed in its tail, not its body.
	fit := stats.FitPareto(tr.InterArrivals, stats.Percentile(tr.InterArrivals, 0.5))
	n := float64(len(tr.Sizes))
	printOnce("E1 workload characterization (paper Sec. II)", fmt.Sprintf(
		"write fraction: %.2f (paper: 0.60)\nsize modality: %.0f%% <=16KiB, %.0f%% >=1MiB (paper: bimodal)\ninter-arrival Pareto tail alpha: %.2f over %d tail gaps (paper: long-tail Pareto)\n",
		tr.WriteFraction(), 100*float64(small)/n, 100*float64(large)/n, fit.Alpha, fit.N))
	b.ReportMetric(tr.WriteFraction(), "write-frac")
}

// ---------------------------------------------------------------- E2

func BenchmarkE2CheckpointSizing(b *testing.B) {
	var seq, rnd float64
	var res workload.CheckpointResult
	for i := 0; i < b.N; i++ {
		seq = procure.CheckpointBandwidth(600e12, 0.75, 6*sim.Minute)
		rnd = procure.RandomDerate(1e12, 0.24)
		c := center.New(center.Config{Small: true, Namespaces: 1, Seed: 600})
		res = workload.RunCheckpoint(c.Namespaces[0], workload.CheckpointConfig{
			Writers: 64, BytesPerRank: 16 << 20, TransferSize: 1 << 20,
		})
	}
	printOnce("E2 checkpoint sizing (paper Sec. III-A)", fmt.Sprintf(
		"75%% of 600 TB in 6 min -> %.2f TB/s (paper: the 1 TB/s class requirement)\nrandom derate at 24%% -> %.0f GB/s (paper: 240 GB/s)\nsimulated miniature checkpoint: %.2f GB/s on 2/56-scale controllers\n",
		seq/1e12, rnd/1e9, res.AggregateBps/1e9))
	b.ReportMetric(seq/1e12, "TB/s-req")
}

// ---------------------------------------------------------------- E3

func BenchmarkE3SlowDiskRounds(b *testing.B) {
	var rep qa.Report
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		dcfg := disk.NLSAS2TB()
		dcfg.Capacity = 1 << 30
		groups := raid.BuildGroups(eng, 32, raid.Spider2Group(), dcfg, disk.DefaultPopulation(), rng.New(700))
		cfg := qa.DefaultElimination()
		cfg.BenchBytes = 32 << 20
		rep = qa.RunElimination(eng, groups, cfg, rng.New(701))
	}
	body := ""
	for _, r := range rep.Rounds {
		body += fmt.Sprintf("round %d: mean %.0f MB/s, spread %.1f%%, replaced %d\n",
			r.Index, r.MeanMBps, r.Spread*100, r.Replaced)
	}
	body += fmt.Sprintf("%v\n(paper: ~1,500 + ~500 of 20,160 drives replaced; 5%%->7.5%% envelope)\n", rep)
	printOnce("E3 slow-disk elimination (paper Sec. V-A)", body)
	b.ReportMetric(float64(rep.TotalReplaced)/320, "replaced-frac")
}

// ---------------------------------------------------------------- E4

func BenchmarkE4FGRvsNaive(b *testing.B) {
	run := func(mode netsim.RouteMode, seed uint64) (sim.Time, netsim.CongestionReport) {
		eng := sim.NewEngine()
		cfg := netsim.Spider2Fabric()
		cfg.Torus = topology.Torus{NX: 5, NY: 4, NZ: 4}
		pl := topology.PlaceRouters(topology.CabinetGrid{Cols: 5, Rows: 2}, cfg.Torus, 16, 4)
		f := netsim.NewFabric(eng, cfg, pl, 32)
		src := rng.New(seed)
		for i := 0; i < 48; i++ {
			c := cfg.Torus.CoordOf((i * 7) % cfg.Torus.Nodes())
			f.Net.StartFlow(f.ClientPath(c, i%32, mode, src), 1e9, nil)
		}
		eng.Run()
		return eng.Now(), f.Congestion(eng.Now())
	}
	var fgrT, naiveT sim.Time
	var fgrRep, naiveRep netsim.CongestionReport
	for i := 0; i < b.N; i++ {
		fgrT, fgrRep = run(netsim.RouteFGR, 800)
		naiveT, naiveRep = run(netsim.RouteNaive, 800)
	}
	printOnce("E4 fine-grained routing (paper Sec. V-B)", fmt.Sprintf(
		"48 streams x 1 GB each:\n  FGR:   %v, hottest link %.2f (%s), core bytes %.1e\n  naive: %v, hottest link %.2f (%s), core bytes %.1e\nFGR finishes %.2fx sooner and keeps traffic off the core\n",
		fgrT, fgrRep.MaxUtilization, fgrRep.HotLink, fgrRep.CoreBytes,
		naiveT, naiveRep.MaxUtilization, naiveRep.HotLink, naiveRep.CoreBytes,
		float64(naiveT)/float64(fgrT)))
	b.ReportMetric(float64(naiveT)/float64(fgrT), "speedup")
}

// ---------------------------------------------------------------- E5

func e5Run(balanced bool) float64 {
	eng := sim.NewEngine()
	p := lustre.TestNamespace()
	p.NumSSU = 2
	p.OSTsPerSSU = 4
	p.OSSPerSSU = 2
	fs := lustre.Build(eng, p, rng.New(900))
	noise := lustre.NewClient(1000, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	var noiseFiles []*lustre.File
	// Three competing streams per hot OST: a heavily contended SSU, as
	// in the paper's synthetic experiments.
	for i := 0; i < 12; i++ {
		fs.CreateOn(fmt.Sprintf("noise/%d", i), []int{i % 4}, func(f *lustre.File) {
			noiseFiles = append(noiseFiles, f)
		})
	}
	eng.Run()
	for _, f := range noiseFiles {
		noise.WriteUntil(f, eng.Now()+2*sim.Second, 1<<20, nil)
	}
	eng.RunUntil(eng.Now() + 50*sim.Millisecond)
	var job *lustre.File
	if balanced {
		placement.New(fs, placement.Weights{}).CreateBalanced("job/out", 2, func(f *lustre.File) { job = f })
	} else {
		fs.CreateOn("job/out", []int{0, 1}, func(f *lustre.File) { job = f })
	}
	eng.RunUntil(eng.Now() + 10*sim.Millisecond)
	client := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	start := eng.Now()
	var doneAt sim.Time
	client.WriteStream(job, 32<<20, 1<<20, func(int64) { doneAt = eng.Now() })
	eng.Run()
	return float64(32<<20) / (doneAt - start).Seconds()
}

// e5S3D runs the §VI-A production case: the S3D combustion code in a
// noisy environment, with and without the libPIO create hook.
func e5S3D(balanced bool) float64 {
	eng := sim.NewEngine()
	p := lustre.TestNamespace()
	p.NumSSU = 2
	p.OSTsPerSSU = 4
	p.OSSPerSSU = 2
	fs := lustre.Build(eng, p, rng.New(901))
	noise := lustre.NewClient(999, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	var noiseFiles []*lustre.File
	for i := 0; i < 12; i++ {
		fs.CreateOn(fmt.Sprintf("noise/%d", i), []int{i % 4}, func(f *lustre.File) {
			noiseFiles = append(noiseFiles, f)
		})
	}
	eng.Run()
	for _, f := range noiseFiles {
		noise.WriteUntil(f, eng.Now()+10*sim.Second, 1<<20, nil)
	}
	eng.RunUntil(eng.Now() + 50*sim.Millisecond)
	cfg := workload.S3DConfig{Ranks: 8, DumpBytes: 64 << 20, Dumps: 2, ComputePhase: 200 * sim.Millisecond}
	if balanced {
		bal := placement.New(fs, placement.Weights{})
		cfg.CreateFile = func(fs *lustre.FS, path string, sc int, done func(*lustre.File)) {
			bal.CreateBalanced(path, sc, done)
		}
	}
	return workload.RunS3D(fs, cfg).DumpBps
}

func BenchmarkE5LibPIO(b *testing.B) {
	var def, bal, s3dDef, s3dBal float64
	for i := 0; i < b.N; i++ {
		def = e5Run(false)
		bal = e5Run(true)
		s3dDef = e5S3D(false)
		s3dBal = e5S3D(true)
	}
	printOnce("E5 libPIO balanced placement (paper Sec. VI-A)", fmt.Sprintf(
		"synthetic job under contention: default %.0f MB/s, libPIO %.0f MB/s -> +%.0f%% (paper: >70%%)\nS3D dumps in production noise: default %.0f MB/s, libPIO %.0f MB/s -> +%.0f%% (paper: ~24%%)\n",
		def/1e6, bal/1e6, (bal/def-1)*100,
		s3dDef/1e6, s3dBal/1e6, (s3dBal/s3dDef-1)*100))
	b.ReportMetric((bal/def-1)*100, "gain-%")
}

// ---------------------------------------------------------------- E6

func BenchmarkE6DataCentric(b *testing.B) {
	var dc, ex center.WorkflowResult
	var cmp procure.ModelComparison
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		shared := lustre.Build(eng, lustre.TestNamespace(), rng.New(1000))
		dc = center.DataCentricWorkflow(shared, 256<<20, 4, 4)
		eng2 := sim.NewEngine()
		simFS := lustre.Build(eng2, lustre.TestNamespace(), rng.New(1001))
		p := lustre.TestNamespace()
		p.Name = "viz"
		vizFS := lustre.Build(eng2, p, rng.New(1002))
		ex = center.ExclusiveWorkflow(simFS, vizFS, 256<<20, 4, 4, 10e9)
		cmp = procure.CompareModels([]procure.Platform{
			{Name: "titan", MemBytes: 710e12, WorkflowShareBytes: 100e12},
			{Name: "analysis", MemBytes: 30e12, WorkflowShareBytes: 20e12},
			{Name: "viz", MemBytes: 20e12, WorkflowShareBytes: 10e12},
			{Name: "dtn", MemBytes: 10e12, WorkflowShareBytes: 5e12},
		}, procure.Spider2SSU(), 10e9)
	}
	printOnce("E6 data-centric vs machine-exclusive (paper Secs. II, VII)", fmt.Sprintf(
		"workflow: data-centric %v vs exclusive %v (transfer %v, %d MiB moved)\nacquisition: %v\n",
		dc.Total, ex.Total, ex.TransferTime, ex.BytesMoved>>20, cmp))
	b.ReportMetric(float64(ex.Total)/float64(dc.Total), "exclusive/dc-time")
}

// ---------------------------------------------------------------- E7

func BenchmarkE7FillLevel(b *testing.B) {
	fills := []float64{0.10, 0.50, 0.70, 0.90}
	rates := make([]float64, len(fills))
	for i := 0; i < b.N; i++ {
		for j, fill := range fills {
			eng := sim.NewEngine()
			fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(uint64(1100+j)))
			for _, ost := range fs.OSTs {
				ost.SetFill(fill)
			}
			client := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
			var f *lustre.File
			fs.Create("fill/test", 4, func(file *lustre.File) { f = file })
			eng.Run()
			// Sustained rate: time until the data is on the platters
			// (drain included) — the write-back cache would otherwise
			// hide the fragmentation cost of a full file system.
			start := eng.Now()
			client.WriteStream(f, 64<<20, 1<<20, nil)
			eng.Run()
			rates[j] = float64(64<<20) / (eng.Now() - start).Seconds() / 1e6
		}
	}
	body := fmt.Sprintf("%-8s %12s\n", "fill", "write MB/s")
	for j, fill := range fills {
		body += fmt.Sprintf("%-8.0f%% %12.1f\n", fill*100, rates[j])
	}
	body += "(paper: severe degradation past 70% full; visible effects past 50%)\n"
	printOnce("E7 fill-level degradation (paper Secs. IV-C, VI-C)", body)
	b.ReportMetric(rates[0]/rates[len(rates)-1], "empty/full-ratio")
}

// ---------------------------------------------------------------- E8

func e8Run(layout raid.EnclosureLayout, seed uint64) failure.IncidentReport {
	eng := sim.NewEngine()
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 64 << 20
	groups := raid.BuildGroups(eng, 4, raid.Spider2Group(), dcfg, disk.DefaultPopulation(), rng.New(seed))
	for _, g := range groups {
		g.RebuildPause = 30 * sim.Minute
		g.RebuildChunk = 8
	}
	c := raid.NewCouplet(eng, 0, layout, groups)
	g := groups[0]
	g.FailDisk(0)
	repl := disk.New(eng, 9999, dcfg, disk.Nominal(), rng.New(seed).Split("r"))
	g.StartRebuild(0, repl, nil)
	c.ControllerFailover()
	c.Journal.Log(1_000_000)
	eng.RunFor(sim.Hour)
	c.FailEnclosure(1)
	eng.RunFor(17 * sim.Hour)
	rep := failure.IncidentReport{JournalLost: c.TakeOffline()}
	for _, gg := range c.Groups() {
		if gg.State() == raid.Failed {
			rep.GroupsFailed++
		}
	}
	rep.FilesRecovered, rep.FilesLost = c.RecoverFiles(rng.New(seed).Split("rec"), 0.95)
	return rep
}

func BenchmarkE8HumanError(b *testing.B) {
	var s1, s2 failure.IncidentReport
	for i := 0; i < b.N; i++ {
		s1 = e8Run(raid.Spider1Layout(), 1200)
		s2 = e8Run(raid.Spider2Layout(), 1201)
	}
	rate := 100 * float64(s1.FilesRecovered) / float64(s1.FilesRecovered+s1.FilesLost)
	printOnce("E8 human-error incident (paper Sec. IV-E)", fmt.Sprintf(
		"spider1 5x2 layout:  %d groups failed, %d journal entries lost, %.1f%% recovered (paper: >1M files, 95%%, two weeks)\nspider2 10x1 layout: %d groups failed (same operator actions tolerated)\n",
		s1.GroupsFailed, s1.JournalLost, rate, s2.GroupsFailed))
	b.ReportMetric(rate, "recovery-%")
}

// ---------------------------------------------------------------- E9

func BenchmarkE9IOSI(b *testing.B) {
	var sig iosi.Signature
	const truePeriod = 3.0
	for i := 0; i < b.N; i++ {
		src := rng.New(1300)
		var runs []iosi.Series
		for r := 0; r < 4; r++ {
			s := iosi.Series{Interval: 100 * sim.Millisecond}
			lsrc := src.Split(fmt.Sprintf("r%d", r))
			for k := 0; k < 400; k++ {
				v := 3e9 * lsrc.Float64() // noisy shared-system floor
				if k%30 < 4 {             // 3 s period, 0.4 s bursts
					v += 40e9
				}
				s.Samples = append(s.Samples, v)
			}
			runs = append(runs, s)
		}
		sig = iosi.Extract(runs, 4)
	}
	printOnce("E9 IOSI signature extraction (paper Sec. VI-B)", fmt.Sprintf(
		"true period 3 s -> extracted %v; burst volume %.1f GB; confidence %.2f\n",
		sig.Period, sig.BurstVolume/1e9, sig.Confidence))
	b.ReportMetric(sig.Period.Seconds()/truePeriod, "period-ratio")
}

// --------------------------------------------------------------- E10

func BenchmarkE10ScalableTools(b *testing.B) {
	var duS, duP tools.DUResult
	var cpS, cpP tools.CopyResult
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(1400))
		tools.Populate(fs, tools.TreeSpec{Dirs: 10, FilesPerDir: 20, FileSize: 4 << 20, StripeCount: 2})
		eng.Run()
		tools.SerialDU(fs, nil, func(r tools.DUResult) { duS = r })
		eng.Run()
		tools.LustreDU(fs, nil, func(r tools.DUResult) { duP = r })
		eng.Run()
		var files []*lustre.File
		fs.Walk(nil, func(f *lustre.File) { files = append(files, f) })
		files = files[:64]
		tools.SerialCopy(fs, files, "cp-s", func(r tools.CopyResult) { cpS = r })
		eng.Run()
		tools.DCP(fs, files, "cp-p", 8, func(r tools.CopyResult) { cpP = r })
		eng.Run()
	}
	printOnce("E10 scalable tools (paper Sec. VI-C)", fmt.Sprintf(
		"du: %v with %d MDS ops -> LustreDU: %v with %d MDS ops (%.0fx)\ncp: %v -> dcp(8): %v (%.1fx)\n",
		duS.Duration, duS.MDSOps, duP.Duration, duP.MDSOps,
		float64(duS.Duration)/float64(duP.Duration),
		cpS.Duration, cpP.Duration, float64(cpS.Duration)/float64(cpP.Duration)))
	b.ReportMetric(float64(duS.Duration)/float64(duP.Duration), "du-speedup")
}

// --------------------------------------------------------------- E11

func BenchmarkE11Namespaces(b *testing.B) {
	var one, two center.MetadataLoadResult
	for i := 0; i < b.N; i++ {
		run := func(n int) center.MetadataLoadResult {
			eng := sim.NewEngine()
			var namespaces []*lustre.FS
			for j := 0; j < n; j++ {
				p := lustre.TestNamespace()
				p.Name = fmt.Sprintf("ns%d", j)
				namespaces = append(namespaces, lustre.Build(eng, p, rng.New(uint64(1500+j))))
			}
			return center.MetadataStorm(namespaces, 3000, 64)
		}
		one = run(1)
		two = run(2)
	}
	printOnce("E11 single vs multiple namespaces (paper Sec. IV-C)", fmt.Sprintf(
		"1 namespace:  %.0f metadata ops/s (MDS util %.2f), blast radius 100%%\n2 namespaces: %.0f metadata ops/s (MDS util %.2f), blast radius 50%%\n",
		one.OpsPerSec, one.Utilization, two.OpsPerSec, two.Utilization))
	b.ReportMetric(two.OpsPerSec/one.OpsPerSec, "split-gain")
}

// --------------------------------------------------------------- E12

func BenchmarkE12BlockVsFS(b *testing.B) {
	var over []benchsuite.Overhead
	for i := 0; i < b.N; i++ {
		sweep := benchsuite.Sweep{
			RequestSizes: []int64{64 << 10, 1 << 20},
			QueueDepths:  []int{8},
			WriteFracs:   []float64{0, 1},
			Random:       []bool{false, true},
			CellDuration: 300 * sim.Millisecond,
		}
		eng := sim.NewEngine()
		src := rng.New(1600)
		g := raid.BuildGroups(eng, 1, raid.Spider2Group(), disk.NLSAS2TB(), disk.DefaultPopulation(), src.Split("g"))[0]
		block := benchsuite.RunBlockLevel(eng, g, sweep, src.Split("b"))
		fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(1601))
		fsc := benchsuite.RunFSLevel(fs, sweep, src.Split("f"))
		over = benchsuite.CompareLevels(block, fsc)
	}
	body := fmt.Sprintf("%-24s %12s %12s %10s\n", "cell", "block MB/s", "fs MB/s", "overhead")
	for _, o := range over {
		body += fmt.Sprintf("%-24s %12.1f %12.1f %9.1f%%\n", o.Cell, o.BlockMBps, o.FSMBps, o.Frac*100)
	}
	body += "(the suite's purpose: comparing levels isolates file system software overhead)\n"
	printOnce("E12 block vs FS level (paper Sec. III-B)", body)
	b.ReportMetric(float64(len(over)), "cells")
}

// --------------------------------------------------------------- E13

func BenchmarkE13Purge(b *testing.B) {
	var deleted int64
	var resident int64
	var sweeps int
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(1700))
		p := purge.New(fs, purge.Policy{MaxAge: 14 * sim.Day, Interval: sim.Day, Concurrency: 16})
		p.Start()
		day := 0
		var producer func()
		producer = func() {
			if day >= 25 {
				return
			}
			tools.Populate(fs, tools.TreeSpec{Dirs: 1, FilesPerDir: 20, FileSize: 8 << 20,
				Root: fmt.Sprintf("day%02d", day)})
			day++
			eng.After(sim.Day, producer)
		}
		producer()
		eng.RunUntil(25 * sim.Day)
		p.Stop()
		eng.Run()
		deleted = p.Deleted
		resident = fs.NumFiles
		sweeps = len(p.Sweeps)
	}
	printOnce("E13 purge policy (paper Sec. IV-C)", fmt.Sprintf(
		"25 days at 20 files/day under the 14-day policy: %d sweeps, %d deleted, %d resident (~15 days of production)\n",
		sweeps, deleted, resident))
	b.ReportMetric(float64(resident), "resident-files")
}

// --------------------------------------------------------------- E14

func BenchmarkE14ControllerUpgrade(b *testing.B) {
	var before, after float64
	for i := 0; i < b.N; i++ {
		run := func(up bool) float64 {
			c := center.New(center.Config{Small: true, Namespaces: 1, Upgraded: up, Seed: 1800})
			return c.RunIOR(0, workload.IORConfig{
				Clients: 32, TransferSize: 1 << 20, StoneWall: sim.Second,
			}).AggregateBps
		}
		before = run(false)
		after = run(true)
	}
	printOnce("E14 controller upgrade (paper Sec. V-C)", fmt.Sprintf(
		"pre-upgrade %.2f GB/s -> post-upgrade %.2f GB/s = %.2fx\n(paper: 320 -> 510 GB/s per namespace = 1.59x)\n",
		before/1e9, after/1e9, after/before))
	b.ReportMetric(after/before, "upgrade-ratio")
}

// --------------------------------------------------------------- E15

func BenchmarkE15Monitoring(b *testing.B) {
	var incidents int
	var hwRoot int
	var alerts int
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(1900))
		sched := monitor.NewScheduler(eng)
		for _, c := range monitor.StandardChecks(fs) {
			sched.Add(c)
		}
		sched.Start()
		coal := monitor.NewCoalescer(30 * sim.Second)
		inj := failure.NewInjector(eng, fsGroupsOf(fs), failure.DiskFailureConfig{
			AnnualFailureRate: 60, ReplaceDelay: 30 * sim.Minute,
		}, rng.New(1901))
		inj.Events = coal.Ingest
		inj.Start()
		failure.CableFlap(eng, coal.Ingest, "ib-leaf1", 2*sim.Hour)
		for _, ost := range fs.OSTs {
			ost.SetFill(0.75) // trip the fill warning
		}
		eng.RunUntil(12 * sim.Hour)
		inj.Stop()
		sched.Stop()
		eng.Run()
		coal.Close()
		incidents = len(coal.Incidents)
		hwRoot = 0
		for _, inc := range coal.Incidents {
			if inc.RootClass == monitor.Hardware {
				hwRoot++
			}
		}
		alerts = len(sched.Alerts)
	}
	printOnce("E15 monitoring pipeline (paper Sec. IV-A)", fmt.Sprintf(
		"12 h with fault injection: %d coalesced incidents (%d hardware-rooted), %d check alerts\n",
		incidents, hwRoot, alerts))
	b.ReportMetric(float64(incidents), "incidents")
}

// ------------------------------------------------------------ hero run

// BenchmarkHeroFabricRun is the end-to-end showcase: the full Titan
// torus (9,600 Gemini nodes, 74 routers) feeding a 1/6-scale namespace
// (3 SSUs, 168 OSTs, 1,680 drives) through FGR, 512 aggregated clients
// writing 1 MiB stonewall — the closest this repo gets to the paper's
// hero numbers in one simulation.
func BenchmarkHeroFabricRun(b *testing.B) {
	var agg float64
	var rep netsim.CongestionReport
	for i := 0; i < b.N; i++ {
		c := center.New(center.Config{Scale: 6, Namespaces: 1, UseFabric: true,
			RouteMode: netsim.RouteFGR, Seed: 2025})
		res := c.RunIOR(0, workload.IORConfig{
			Clients: 512, TransferSize: 1 << 20, StoneWall: 500 * sim.Millisecond,
		})
		agg = res.AggregateBps
		rep = c.Fabric.Congestion(c.Eng.Now())
	}
	printOnce("HERO full-fabric run (Titan torus -> FGR -> 1/6-scale namespace)", fmt.Sprintf(
		"512 clients, 1 MiB stonewall: %.1f GB/s at 1/6 scale -> %.0f GB/s namespace extrapolation\n"+
			"(paper: 320 GB/s per namespace pre-upgrade); hottest link %.2f (%s), core bytes %.1e (FGR keeps the core dark)\n",
		agg/1e9, agg*6/1e9, rep.MaxUtilization, rep.HotLink, rep.CoreBytes))
	b.ReportMetric(agg*6/1e9, "namespace-GB/s")
}

// --------------------------------------------------------------- E17

func BenchmarkE17LayerProfile(b *testing.B) {
	var rungs []spantrace.Rung
	for i := 0; i < b.N; i++ {
		rungs = qa.SpanLadder(lustre.TestNamespace(), 2050)
	}
	printOnce("E17 bottom-up layer profiling via spantrace waterfall (paper Sec. V, Lesson 12)",
		spantrace.RenderWaterfall(rungs)+
			"the ladder now falls out of one fully-traced write stream instead of four isolated probes:\n"+
			"every rung is the bandwidth that layer delivered while busy on the same I/O, and vs-below is\n"+
			"the \"lost performance in traversing from one layer to the next\" the methodology hunts\n"+
			"(paper ladder: disk 94% -> RAID 78% -> OST stack 62% -> client 84%; the RAID transition\n"+
			"reproduces as the parity-overhead rung, the client rung reflects the write-back ack)\n")
	// The regression metric is the deepest lossy transition: the
	// smallest vs-below efficiency among rungs that sit above another
	// rung and are actually bound by it (efficiency <= 1).
	worst := 1.0
	for i, r := range rungs {
		if i > 0 && r.Efficiency > 0 && r.Efficiency < worst {
			worst = r.Efficiency
		}
	}
	b.ReportMetric(worst, "worst-layer-eff")
}

func fsGroupsOf(fs *lustre.FS) []*raid.Group {
	out := make([]*raid.Group, 0, len(fs.OSTs))
	for _, o := range fs.OSTs {
		out = append(out, o.Group())
	}
	return out
}

// --------------------------------------------------------------- E16

func BenchmarkE16Provisioning(b *testing.B) {
	var dlTime, dfTime sim.Time
	var dlConv, dfConv provision.ConvergeResult
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		dlTime, _, _ = provision.FleetBoot(eng, 288, provision.DisklessProfile(), provision.Spider2Scripts(), 64, rng.New(2000))
		eng2 := sim.NewEngine()
		dfTime, _, _ = provision.FleetBoot(eng2, 288, provision.DiskFullProfile(), provision.Spider2Scripts(), 64, rng.New(2000))
		eng3 := sim.NewEngine()
		dlConv = provision.Converge(eng3, 288, provision.Diskless, rng.New(2001))
		eng4 := sim.NewEngine()
		dfConv = provision.Converge(eng4, 288, provision.DiskFull, rng.New(2001))
	}
	saving := provision.NodeCost(provision.DiskFull) - provision.NodeCost(provision.Diskless)
	printOnce("E16 diskless provisioning (paper Sec. IV-A)", fmt.Sprintf(
		"288-node fleet boot: diskless %v vs disk-full %v\nconfig converge: diskless %v (%d failures) vs disk-full %v (%d failures)\nhardware saving: $%.0f/node x 728 server+router nodes = $%.1fM\n",
		dlTime, dfTime, dlConv.Duration, dlConv.Failures, dfConv.Duration, dfConv.Failures,
		saving, saving*728/1e6))
	b.ReportMetric(float64(dfTime)/float64(dlTime), "boot-speedup")
}
