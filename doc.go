// Package spiderfs is a simulation-based reproduction of "Best
// Practices and Lessons Learned from Deploying and Operating
// Large-Scale Data-Centric Parallel File Systems" (SC'14): the OLCF
// Spider I/II center-wide Lustre deployments, rebuilt as a
// deterministic discrete-event model with the full operational tool
// chain on top.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmarks in bench_test.go regenerate
// every figure and quantitative claim in the paper's evaluation.
package spiderfs
