// Command lustredu contrasts the standard du (a stat per file through
// the MDS) with the server-side LustreDU scan on a populated namespace
// (§VI-C, Lesson 19).
package main

import (
	"flag"
	"fmt"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/tools"
)

func main() {
	dirs := flag.Int("dirs", 50, "directories to populate")
	filesPer := flag.Int("files", 100, "files per directory")
	fileMB := flag.Int64("filemb", 16, "file size in MiB")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(*seed))
	tools.Populate(fs, tools.TreeSpec{
		Dirs: *dirs, FilesPerDir: *filesPer, FileSize: *fileMB << 20, StripeCount: 2,
	})
	eng.Run()
	fmt.Printf("namespace: %d files, %.1f GiB used\n", fs.NumFiles,
		float64(fs.TotalUsed())/(1<<30))

	var serial, server tools.DUResult
	tools.SerialDU(fs, nil, func(r tools.DUResult) { serial = r })
	eng.Run()
	tools.LustreDU(fs, nil, func(r tools.DUResult) { server = r })
	eng.Run()

	fmt.Printf("\n%-12s %12s %10s %10s\n", "tool", "bytes", "wall", "MDS ops")
	fmt.Printf("%-12s %12d %10v %10d\n", "du (serial)", serial.Bytes, serial.Duration, serial.MDSOps)
	fmt.Printf("%-12s %12d %10v %10d\n", "LustreDU", server.Bytes, server.Duration, server.MDSOps)
	fmt.Printf("\nspeedup: %.1fx; MDS spared %d operations\n",
		float64(serial.Duration)/float64(server.Duration), serial.MDSOps)
	_ = sim.Second
}
