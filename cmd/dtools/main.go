// Command dtools benchmarks the parallel file tools (dcp, dfind, dtar)
// against their single-threaded baselines on a populated namespace
// (§VI-C: "standard Linux tools do not work well at scale").
package main

import (
	"flag"
	"fmt"
	"strings"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/tools"
)

func main() {
	dirs := flag.Int("dirs", 8, "directories")
	filesPer := flag.Int("files", 16, "files per directory")
	fileMB := flag.Int64("filemb", 8, "file size in MiB")
	workers := flag.Int("workers", 8, "parallel tool worker count")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(*seed))
	tools.Populate(fs, tools.TreeSpec{
		Dirs: *dirs, FilesPerDir: *filesPer, FileSize: *fileMB << 20, StripeCount: 2,
	})
	eng.Run()
	var files []*lustre.File
	fs.Walk(nil, func(f *lustre.File) { files = append(files, f) })
	fmt.Printf("namespace: %d files, %.1f GiB\n\n", len(files), float64(fs.TotalUsed())/(1<<30))
	fmt.Printf("%-8s %14s %14s %9s\n", "tool", "serial", fmt.Sprintf("parallel(x%d)", *workers), "speedup")

	// find
	pred := func(f *lustre.File) bool { return strings.HasSuffix(f.Path, "1") }
	var sf, pf tools.FindResult
	tools.SerialFind(fs, nil, pred, func(r tools.FindResult) { sf = r })
	eng.Run()
	tools.DFind(fs, nil, pred, *workers, func(r tools.FindResult) { pf = r })
	eng.Run()
	row("find", sf.Duration, pf.Duration)

	// cp
	var sc, pc tools.CopyResult
	tools.SerialCopy(fs, files, "dst-serial", func(r tools.CopyResult) { sc = r })
	eng.Run()
	tools.DCP(fs, files, "dst-dcp", *workers, func(r tools.CopyResult) { pc = r })
	eng.Run()
	row("cp", sc.Duration, pc.Duration)

	// tar
	var st, pt tools.TarResult
	tools.SerialTar(fs, files, "arch/serial.tar", func(r tools.TarResult) { st = r })
	eng.Run()
	tools.DTar(fs, files, "arch/par.tar", *workers, func(r tools.TarResult) { pt = r })
	eng.Run()
	row("tar", st.Duration, pt.Duration)
}

func row(name string, serial, parallel sim.Time) {
	fmt.Printf("%-8s %14v %14v %8.1fx\n", name, serial, parallel,
		float64(serial)/float64(parallel))
}
