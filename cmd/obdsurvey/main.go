// Command obdsurvey measures object write/rewrite/read rates through
// the OST stack (controller + RAID + software overheads) like the
// obdfilter-survey tool the acquisition suite built on (§III-B).
package main

import (
	"flag"
	"fmt"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/workload"
)

type objDriver struct{ obj *lustre.Object }

func (d objDriver) Write(size int64, done func())             { d.obj.WriteSync(size, false, done) }
func (d objDriver) Read(size int64, random bool, done func()) { d.obj.Read(size, random, done) }

func main() {
	total := flag.Int64("total", 256<<20, "bytes per phase")
	rpc := flag.Int64("rpc", 1<<20, "object RPC size")
	threads := flag.Int("threads", 8, "concurrent object threads")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(*seed))
	var file *lustre.File
	fs.Create("survey/obj", 1, func(f *lustre.File) { file = f })
	eng.Run()

	res := workload.RunObdSurvey(eng, objDriver{obj: file.Objects[0]}, *total, *rpc, *threads)
	fmt.Printf("obdfilter-survey: total=%d MiB rpc=%d KiB threads=%d\n",
		*total>>20, *rpc>>10, *threads)
	fmt.Printf("  write:   %8.1f MB/s\n", res.WriteMBps)
	fmt.Printf("  rewrite: %8.1f MB/s\n", res.RewriteMBps)
	fmt.Printf("  read:    %8.1f MB/s\n", res.ReadMBps)
}
