// Command simlint runs the repository's determinism and hygiene
// analyzer suite (internal/lint) over the module and prints one
// diagnostic per violated invariant. It exits 1 when diagnostics were
// reported, 2 on load failure, so verify.sh and CI gate on it.
//
// Usage:
//
//	simlint [-C dir] [-json] [-checks a,b,c] [-list]
//	simlint -debt [-C dir] [-json] [-baseline file] [-update]
//
// Diagnostics print as file:line:col: check: message. With -json they
// print as a JSON array of {check,file,line,col,message} objects for
// CI annotators and other tooling.
//
// -debt switches to the suppression-debt inventory: every
// //simlint:allow directive is located, its reason captured, and its
// usefulness verified against an unfiltered run. The report is gated
// against the committed baseline (default .simlint-baseline.json under
// the module root): growth, a reasonless site, or a stale site fails
// the gate with exit 1. -update rewrites the baseline from the fresh
// report — the conscious act of signing off on a debt change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spiderfs/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("C", ".", "module root directory to analyze")
	asJSON := fs.Bool("json", false, "emit diagnostics (or the -debt report) as JSON")
	sel := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	debt := fs.Bool("debt", false, "report suppression debt (//simlint:allow inventory) and gate it against the baseline")
	baseline := fs.String("baseline", ".simlint-baseline.json", "debt baseline file, relative to the module root")
	update := fs.Bool("update", false, "with -debt: rewrite the baseline from the fresh report")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	checks := lint.Checks()
	if *list {
		for _, c := range checks {
			fmt.Fprintf(stdout, "%-22s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	if *sel != "" {
		checks = checks[:0]
		for _, name := range strings.Split(*sel, ",") {
			c := lint.LookupCheck(strings.TrimSpace(name))
			if c == nil {
				fmt.Fprintf(stderr, "simlint: unknown check %q (try -list)\n", name)
				return 2
			}
			checks = append(checks, c)
		}
	}

	mod, err := lint.LoadModule(*root)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}

	if *debt {
		basePath := *baseline
		if !filepath.IsAbs(basePath) {
			basePath = filepath.Join(*root, basePath)
		}
		return runDebt(mod, checks, basePath, *update, *asJSON, stdout, stderr)
	}

	diags := mod.Run(checks)

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "simlint: %d diagnostic(s) in %d package(s)\n", len(diags), len(mod.Pkgs))
		}
		return 1
	}
	return 0
}

// runDebt implements the -debt mode: inventory, optional baseline
// rewrite, and the growth/reason/staleness gate.
func runDebt(mod *lint.Module, checks []*lint.Check, baselinePath string, update, asJSON bool, stdout, stderr *os.File) int {
	report := mod.Debt(checks)

	if update {
		data, err := json.MarshalIndent(report.Baseline(), "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "simlint: baseline %s updated: %d site(s)\n", baselinePath, report.Total)
	}

	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprintf(stdout, "suppression debt: %d //simlint:allow site(s)\n", report.Total)
		for _, c := range report.PerCheck {
			fmt.Fprintf(stdout, "  %-22s %d\n", c.Check, c.Sites)
		}
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: no readable baseline at %s (run -debt -update to create it): %v\n", baselinePath, err)
		return 1
	}
	var base lint.Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "simlint: parsing baseline %s: %v\n", baselinePath, err)
		return 2
	}
	fails := lint.GateDebt(base, report)
	for _, f := range fails {
		fmt.Fprintf(stderr, "simlint: debt gate: %s\n", f)
	}
	for _, note := range lint.Tighten(base, report) {
		fmt.Fprintf(stderr, "simlint: note: %s\n", note)
	}
	if len(fails) > 0 {
		return 1
	}
	return 0
}
