// Command simlint runs the repository's determinism and hygiene
// analyzer suite (internal/lint) over the module and prints one
// diagnostic per violated invariant. It exits 1 when diagnostics were
// reported, 2 on load failure, so verify.sh and CI gate on it.
//
// Usage:
//
//	simlint [-C dir] [-json] [-checks a,b,c] [-list]
//
// Diagnostics print as file:line:col: check: message. With -json they
// print as a JSON array of {check,file,line,col,message} objects for
// CI annotators and other tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"spiderfs/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("C", ".", "module root directory to analyze")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	sel := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	checks := lint.Checks()
	if *list {
		for _, c := range checks {
			fmt.Fprintf(stdout, "%-22s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	if *sel != "" {
		checks = checks[:0]
		for _, name := range strings.Split(*sel, ",") {
			c := lint.LookupCheck(strings.TrimSpace(name))
			if c == nil {
				fmt.Fprintf(stderr, "simlint: unknown check %q (try -list)\n", name)
				return 2
			}
			checks = append(checks, c)
		}
	}

	mod, err := lint.LoadModule(*root)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	diags := mod.Run(checks)

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "simlint: %d diagnostic(s) in %d package(s)\n", len(diags), len(mod.Pkgs))
		}
		return 1
	}
	return 0
}
