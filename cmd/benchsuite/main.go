// Command benchsuite runs the acquisition benchmark suite (§III-B):
// the full parameter-space sweep at block level and file-system level,
// and the derived software-overhead table.
//
// With -netsim it instead runs the flow-solver benchmark suite: the
// ordered-registry start/finish path versus the frozen map-based
// baseline, and a Spider II-scale congestion run (18,688 clients, 440
// LNET routers, 288 OSSes) recording ns/flow-event. -out writes the
// JSON artifact (the checked-in BENCH_netsim.json is produced by
// `go run ./cmd/benchsuite -netsim -out BENCH_netsim.json`).
//
// With -spantrace it measures the tracing plane's observer cost: the
// same Spider II-scale congestion workload untraced versus traced at
// 1-in-64 sampling (the checked-in BENCH_spantrace.json is produced by
// `go run ./cmd/benchsuite -spantrace -out BENCH_spantrace.json`; the
// acceptance ceiling is 5% wall-clock overhead).
//
// With -sweep it runs the standard seed sweeps (E3 slow-disk, E13
// purge residency, E18 chaos) through the deterministic parallel sweep
// runner, double-running each serially and on a -workers-wide pool
// (the checked-in BENCH_sweep.json is produced by
// `go run ./cmd/benchsuite -sweep -out BENCH_sweep.json`).
//
// With -integrity it runs the E19 data-integrity sweep: the same
// latent-corruption storm + disk-failure scenario at three scrub
// intervals (off, default, slow), double-run through the sweep
// harness (the checked-in BENCH_integrity.json is produced by
// `go run ./cmd/benchsuite -integrity -out BENCH_integrity.json`;
// the gate requires exactly zero undetected corrupt reads at the
// default interval).
//
// With -serve it runs the session-service benchmark: sessions/sec and
// p50/p99 session latency on the cold-build, warm-pool, and cache-hit
// execution paths, with a cold-vs-warm fingerprint cross-check (the
// checked-in BENCH_serve.json is produced by
// `go run ./cmd/benchsuite -serve -out BENCH_serve.json`; the gate
// requires exact fingerprint identity and zero failed sessions, and
// records — never gates — the speedups).
//
// With -ledger it runs the operations-ledger benchmark: the quick
// chaos campaign's anchored Merkle root sequence (double-run and
// traced-vs-untraced byte-identical), the auditor's adversarial
// tamper scorecard, and an anchoring batch-size sweep (the checked-in
// BENCH_ledger.json is produced by
// `go run ./cmd/benchsuite -ledger -out BENCH_ledger.json`; the gate
// requires exact root/head identity and all tamper classes detected,
// and records — never gates — the append throughput).
//
// With -check it is the bench-regression gate: each committed
// BENCH_*.json in -bench-dir is compared against its freshly generated
// counterpart in -fresh, and any gate finding (see internal/regress)
// exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"spiderfs/internal/benchsuite"
	"spiderfs/internal/disk"
	"spiderfs/internal/lustre"
	"spiderfs/internal/netbench"
	"spiderfs/internal/raid"
	"spiderfs/internal/regress"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// benchArtifacts are the committed bench JSON files the -check gate
// knows how to compare (via their schema fields).
var benchArtifacts = []string{"BENCH_netsim.json", "BENCH_spantrace.json", "BENCH_sweep.json", "BENCH_integrity.json", "BENCH_serve.json", "BENCH_ledger.json"}

func main() {
	cellSec := flag.Float64("cell", 1.0, "seconds per sweep cell (simulated)")
	seed := flag.Uint64("seed", 42, "random seed")
	netsimSuite := flag.Bool("netsim", false, "run the netsim flow-solver suite instead of the acquisition sweep")
	spantraceSuite := flag.Bool("spantrace", false, "run the spantrace observer-cost suite instead of the acquisition sweep")
	sweepSuite := flag.Bool("sweep", false, "run the seed-sweep suite (E3/E13/E18) instead of the acquisition sweep")
	integritySuite := flag.Bool("integrity", false, "run the E19 data-integrity sweep (scrub interval vs undetected corruption)")
	serveSuite := flag.Bool("serve", false, "run the session-service benchmark (cold vs warm-pool vs cache-hit)")
	ledgerSuite := flag.Bool("ledger", false, "run the operations-ledger benchmark (campaign roots, tamper scorecard, batch sweep)")
	workers := flag.Int("workers", 0, "with -sweep, parallel worker count (0 = GOMAXPROCS)")
	check := flag.Bool("check", false, "regression gate: compare committed BENCH_*.json against -fresh copies")
	benchDir := flag.String("bench-dir", ".", "with -check, directory holding the committed BENCH_*.json files")
	freshDir := flag.String("fresh", "", "with -check, directory holding freshly generated BENCH_*.json files")
	full := flag.Bool("full", true, "with -netsim/-spantrace, use the Spider II-scale congestion benchmark")
	out := flag.String("out", "", "with a suite flag, write the suite JSON to this file")
	flag.Parse()

	if *check {
		runCheck(*benchDir, *freshDir)
		return
	}
	if *netsimSuite {
		runNetsim(*full, *out)
		return
	}
	if *spantraceSuite {
		runSpantrace(*full, *out)
		return
	}
	if *sweepSuite {
		runSweep(*seed, *workers, *out)
		return
	}
	if *integritySuite {
		runIntegrity(*seed, *workers, *out)
		return
	}
	if *serveSuite {
		runServe(*out)
		return
	}
	if *ledgerSuite {
		runLedger(*seed, *out)
		return
	}

	sweep := benchsuite.DefaultSweep()
	sweep.CellDuration = sim.FromSeconds(*cellSec)

	eng := sim.NewEngine()
	src := rng.New(*seed)
	g := raid.BuildGroups(eng, 1, raid.Spider2Group(), disk.NLSAS2TB(),
		disk.DefaultPopulation(), src.Split("grp"))[0]
	fmt.Println("== block level (fair-lio over one RAID-6 8+2 LUN) ==")
	block := benchsuite.RunBlockLevel(eng, g, sweep, src.Split("blk"))
	fmt.Print(benchsuite.Render(block))

	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(*seed+1))
	fmt.Println("\n== file system level (obdfilter-style over the OST stack) ==")
	fsCells := benchsuite.RunFSLevel(fs, sweep, src.Split("fs"))
	fmt.Print(benchsuite.Render(fsCells))

	fmt.Println("\n== software overhead (1 - fs/block) ==")
	fmt.Printf("%-24s %12s %12s %10s\n", "cell", "block MB/s", "fs MB/s", "overhead")
	for _, o := range benchsuite.CompareLevels(block, fsCells) {
		fmt.Printf("%-24s %12.1f %12.1f %9.1f%%\n", o.Cell, o.BlockMBps, o.FSMBps, o.Frac*100)
	}
}

func runSweep(seed uint64, workers int, out string) {
	fmt.Println("== seed sweeps (deterministic parallel replica runner, serial vs parallel double-run) ==")
	s, err := benchsuite.RunSweepSuite(seed, workers, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Print(s.Render())
	if out == "" {
		return
	}
	data, err := s.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", out)
}

func runIntegrity(seed uint64, workers int, out string) {
	fmt.Println("== E19 data-integrity sweep (scrub interval vs undetected corrupt reads) ==")
	s, err := benchsuite.RunIntegritySuite(seed, workers, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Print(s.Render())
	if out == "" {
		return
	}
	data, err := s.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", out)
}

func runServe(out string) {
	fmt.Println("== session service (warm-engine pool + result cache, cold vs warm vs cache-hit) ==")
	s := benchsuite.RunServeSuite(func() int64 { return time.Now().UnixNano() })
	fmt.Print(s.Render())
	if s.Errors > 0 || !s.Deterministic {
		fmt.Fprintln(os.Stderr, "benchsuite: serve suite failed its own determinism check")
		os.Exit(1)
	}
	if out == "" {
		return
	}
	data, err := s.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", out)
}

func runLedger(seed uint64, out string) {
	fmt.Println("== operations ledger (anchored campaign roots, tamper scorecard, batch sweep) ==")
	s, err := benchsuite.RunLedgerSuite(seed, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Print(s.Render())
	if !s.Deterministic || !s.TracedIdentical || !s.AuditClean || s.TampersDetected != s.TamperTotal {
		fmt.Fprintln(os.Stderr, "benchsuite: ledger suite failed its own invariants")
		os.Exit(1)
	}
	if out == "" {
		return
	}
	data, err := s.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", out)
}

// runCheck is the regression gate. Every known artifact present in
// freshDir is compared against the committed copy in benchDir; any
// finding exits 1. A fresh artifact with no committed baseline, or a
// missing freshDir, is a hard error — the gate must never pass
// vacuously by mistake.
func runCheck(benchDir, freshDir string) {
	if freshDir == "" {
		fmt.Fprintln(os.Stderr, "benchsuite: -check requires -fresh <dir>")
		os.Exit(2)
	}
	checked := 0
	failed := false
	for _, name := range benchArtifacts {
		fresh, err := os.ReadFile(filepath.Join(freshDir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(2)
		}
		committed, err := os.ReadFile(filepath.Join(benchDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite: fresh artifact has no committed baseline:", err)
			os.Exit(2)
		}
		findings, err := regress.Compare(name, committed, fresh)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(2)
		}
		checked++
		if len(findings) == 0 {
			fmt.Printf("ok   %s\n", name)
			continue
		}
		failed = true
		for _, f := range findings {
			fmt.Printf("FAIL %s\n", f)
		}
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchsuite: no known BENCH_*.json artifacts found in %s\n", freshDir)
		os.Exit(2)
	}
	if failed {
		fmt.Println("bench regression gate: FAIL")
		os.Exit(1)
	}
	fmt.Printf("bench regression gate: ok (%d artifacts)\n", checked)
}

func runSpantrace(full bool, out string) {
	fmt.Println("== spantrace observer cost (untraced vs 1-in-64 sampled congestion run) ==")
	s := netbench.RunSpans(full)
	fmt.Print(s.Render())
	if out == "" {
		return
	}
	data, err := s.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", out)
}

func runNetsim(full bool, out string) {
	fmt.Println("== netsim flow solver (ordered registries vs frozen map baseline) ==")
	s := netbench.Run(full)
	fmt.Print(s.Render())
	if out == "" {
		return
	}
	data, err := s.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", out)
}
