// Command benchsuite runs the acquisition benchmark suite (§III-B):
// the full parameter-space sweep at block level and file-system level,
// and the derived software-overhead table.
//
// With -netsim it instead runs the flow-solver benchmark suite: the
// ordered-registry start/finish path versus the frozen map-based
// baseline, and a Spider II-scale congestion run (18,688 clients, 440
// LNET routers, 288 OSSes) recording ns/flow-event. -out writes the
// JSON artifact (the checked-in BENCH_netsim.json is produced by
// `go run ./cmd/benchsuite -netsim -out BENCH_netsim.json`).
//
// With -spantrace it measures the tracing plane's observer cost: the
// same Spider II-scale congestion workload untraced versus traced at
// 1-in-64 sampling (the checked-in BENCH_spantrace.json is produced by
// `go run ./cmd/benchsuite -spantrace -out BENCH_spantrace.json`; the
// acceptance ceiling is 5% wall-clock overhead).
package main

import (
	"flag"
	"fmt"
	"os"

	"spiderfs/internal/benchsuite"
	"spiderfs/internal/disk"
	"spiderfs/internal/lustre"
	"spiderfs/internal/netbench"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func main() {
	cellSec := flag.Float64("cell", 1.0, "seconds per sweep cell (simulated)")
	seed := flag.Uint64("seed", 42, "random seed")
	netsimSuite := flag.Bool("netsim", false, "run the netsim flow-solver suite instead of the acquisition sweep")
	spantraceSuite := flag.Bool("spantrace", false, "run the spantrace observer-cost suite instead of the acquisition sweep")
	full := flag.Bool("full", true, "with -netsim/-spantrace, use the Spider II-scale congestion benchmark")
	out := flag.String("out", "", "with -netsim/-spantrace, write the suite JSON to this file")
	flag.Parse()

	if *netsimSuite {
		runNetsim(*full, *out)
		return
	}
	if *spantraceSuite {
		runSpantrace(*full, *out)
		return
	}

	sweep := benchsuite.DefaultSweep()
	sweep.CellDuration = sim.FromSeconds(*cellSec)

	eng := sim.NewEngine()
	src := rng.New(*seed)
	g := raid.BuildGroups(eng, 1, raid.Spider2Group(), disk.NLSAS2TB(),
		disk.DefaultPopulation(), src.Split("grp"))[0]
	fmt.Println("== block level (fair-lio over one RAID-6 8+2 LUN) ==")
	block := benchsuite.RunBlockLevel(eng, g, sweep, src.Split("blk"))
	fmt.Print(benchsuite.Render(block))

	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(*seed+1))
	fmt.Println("\n== file system level (obdfilter-style over the OST stack) ==")
	fsCells := benchsuite.RunFSLevel(fs, sweep, src.Split("fs"))
	fmt.Print(benchsuite.Render(fsCells))

	fmt.Println("\n== software overhead (1 - fs/block) ==")
	fmt.Printf("%-24s %12s %12s %10s\n", "cell", "block MB/s", "fs MB/s", "overhead")
	for _, o := range benchsuite.CompareLevels(block, fsCells) {
		fmt.Printf("%-24s %12.1f %12.1f %9.1f%%\n", o.Cell, o.BlockMBps, o.FSMBps, o.Frac*100)
	}
}

func runSpantrace(full bool, out string) {
	fmt.Println("== spantrace observer cost (untraced vs 1-in-64 sampled congestion run) ==")
	s := netbench.RunSpans(full)
	fmt.Print(s.Render())
	if out == "" {
		return
	}
	data, err := s.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", out)
}

func runNetsim(full bool, out string) {
	fmt.Println("== netsim flow solver (ordered registries vs frozen map baseline) ==")
	s := netbench.Run(full)
	fmt.Print(s.Render())
	if out == "" {
		return
	}
	data, err := s.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", out)
}
