// Command spidersim is the scenario runner for the Spider center
// simulation. Each subcommand replays one of the paper's operational
// studies end to end:
//
//	spidersim mixed       — the §II center-wide mixed workload characterization
//	spidersim checkpoint  — Titan checkpoint sizing (E2)
//	spidersim slowdisk    — the §V-A slow-disk elimination campaign (E3)
//	spidersim incident    — the §IV-E human-error incident replay (E8)
//	spidersim purge       — the 14-day purge policy (E13)
//	spidersim namespaces  — single vs multiple namespaces (E11)
//	spidersim workflow    — data-centric vs machine-exclusive workflow (E6)
//	spidersim chaos       — center-wide chaos campaign, featured vs ablated (E18)
//	spidersim spans       — end-to-end span tracing: waterfall, critical paths, flame
//	spidersim sweep       — deterministic parallel seed sweeps of E3/E13/E18/E19 with merged CIs
//	spidersim scrub       — background scrub vs latent-corruption exposure (E19), off vs default
//	spidersim shard       — sharded parallel fabric run with serial fingerprint cross-check
//	spidersim session     — one-shot run of a service session spec (the cmd/spidersimd reference)
//	spidersim ledger      — verify, replay, or extend an exported operations ledger
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"spiderfs/internal/benchsuite"
	"spiderfs/internal/center"
	"spiderfs/internal/chaos"
	"spiderfs/internal/disk"
	"spiderfs/internal/integrity"
	"spiderfs/internal/lustre"
	"spiderfs/internal/netsim"
	"spiderfs/internal/procure"
	"spiderfs/internal/purge"
	"spiderfs/internal/qa"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/serve"
	"spiderfs/internal/shard"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/stats"
	"spiderfs/internal/sweep"
	"spiderfs/internal/tools"
	"spiderfs/internal/topology"
	"spiderfs/internal/trace"
	"spiderfs/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "ledger" {
		// The ledger subcommand takes a verb (verify|replay|append)
		// before its flags; it parses its own argument list.
		runLedger(os.Args[2:])
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Uint64("seed", 42, "random seed")
	days := fs.Int("days", 0, "chaos: override the campaign length in simulated days")
	full := fs.Bool("full", false, "chaos: 7-day full-scale campaign instead of the 1-day small center")
	scenario := fs.String("scenario", "fig3", "spans: scenario to trace (fig3|chaos)")
	every := fs.Int("every", 1, "spans: sample 1-in-N root requests (0 disables tracing)")
	out := fs.String("out", "", "spans: also export the raw spans as JSON to this file")
	exp := fs.String("exp", "all", "sweep: which sweep to run (e3|e13|e18|e19|all)")
	replicas := fs.Int("replicas", 0, "sweep: override the replica count per sweep")
	workers := fs.Int("workers", 0, "sweep: parallel worker count (0 = GOMAXPROCS)")
	spec := fs.String("spec", "", "session: the scenario spec as JSON, e.g. '{\"kind\":\"workload\",\"seed\":7}'")
	ledgerOut := fs.String("ledger", "", "chaos: export the campaign's operations ledger as JSON to this file")
	_ = fs.Parse(os.Args[2:])

	switch cmd {
	case "mixed":
		runMixed(*seed)
	case "checkpoint":
		runCheckpoint(*seed)
	case "slowdisk":
		runSlowDisk(*seed)
	case "incident":
		runIncident(*seed)
	case "purge":
		runPurge(*seed)
	case "namespaces":
		runNamespaces(*seed)
	case "workflow":
		runWorkflow(*seed)
	case "fig3":
		runFig3(*seed)
	case "fig4":
		runFig4(*seed)
	case "recovery":
		runRecovery(*seed)
	case "chaos":
		runChaos(*seed, *days, *full, *ledgerOut)
	case "spans":
		runSpans(*seed, *scenario, *every, *out)
	case "sweep":
		runSweep(*seed, *exp, *replicas, *workers)
	case "scrub":
		runScrub(*seed)
	case "shard":
		runShard(*seed, *workers, *full)
	case "session":
		runSession(*seed, *spec)
	case "arch":
		c := center.New(center.Config{Scale: 1, Namespaces: 2, Seed: *seed})
		fmt.Print(c.RenderArchitecture())
	case "layers":
		fmt.Println("bottom-up layer profile (Lesson 12): sequential 1 MiB writes per layer")
		fmt.Print(qa.RenderLayers(qa.ProfileLayers(lustre.TestNamespace(), *seed)))
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spidersim <arch|layers|mixed|checkpoint|slowdisk|incident|purge|namespaces|workflow|fig3|fig4|recovery|chaos|spans|sweep|scrub|shard|session|ledger> [-seed N] [-days N] [-full] [-scenario fig3|chaos] [-every N] [-out FILE] [-exp e3|e13|e18|e19|all] [-replicas N] [-workers N] [-spec JSON] [-ledger FILE]")
	fmt.Fprintln(os.Stderr, "       spidersim ledger <verify|replay|append> -in FILE [...]")
}

// runSession executes one service session spec solo and prints the
// exact report bytes the daemon's /report endpoint would serve — the
// reference side of the spidersimd determinism contract. The sweep
// catalog is the same one the daemon registers, so "sweep"-kind specs
// resolve identically. seed feeds only the catalog construction; the
// model streams come from the spec's own seed.
func runSession(seed uint64, specJSON string) {
	if specJSON == "" {
		fmt.Fprintln(os.Stderr, `session: -spec required, e.g. -spec '{"kind":"workload","seed":7}'`)
		os.Exit(2)
	}
	var spec serve.Spec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		fmt.Fprintln(os.Stderr, "session: bad -spec:", err)
		os.Exit(2)
	}
	rep, err := serve.RunSolo(spec, benchsuite.ServeCatalog(seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "session:", err)
		os.Exit(1)
	}
	data, err := rep.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "session:", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
}

// runSweep fans the standard seed sweeps across a worker pool and
// prints each merged report — the same replica bodies and merge path
// that `benchsuite -sweep` uses for BENCH_sweep.json, interactively.
func runSweep(seed uint64, exp string, replicas, workers int) {
	short := map[string]string{"e3": "e3-slowdisk", "e13": "e13-purge", "e18": "e18-chaos", "e19": "e19-scrub"}
	want := exp
	if w, ok := short[exp]; ok {
		want = w
	}
	ran := 0
	entries := append(benchsuite.SweepEntries(seed), benchsuite.IntegrityEntries(seed)...)
	for _, e := range entries {
		// Prefix match so "e19-scrub" selects all three scrub-interval sweeps.
		if want != "all" && !strings.HasPrefix(e.Label, want) {
			continue
		}
		if replicas > 0 {
			e.Replicas = replicas
		}
		t0 := time.Now()
		res, err := sweep.Run(sweep.Config{
			Label: e.Label, Seed: e.Seed, Replicas: e.Replicas, Workers: workers,
		}, e.Body)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Print(res.Report())
		fmt.Printf("  (%d replicas in %v)\n", e.Replicas, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sweep: unknown experiment %q (want e3, e13, e18, e19, or all)\n", exp)
		os.Exit(2)
	}
}

// runShard partitions the center into torus X-slab regions plus one
// storage shard per SSU, drives the same deterministic congestion waves
// through a serial (one-worker) and a parallel runner, and cross-checks
// the event-trace fingerprints — the conservative-PDES determinism
// contract, demonstrated end to end from the CLI.
func runShard(seed uint64, workers int, full bool) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	regions, waves, flows := 3, 3, 512
	ccfg := center.Config{Small: !full, Namespaces: 2, Seed: seed}
	if full {
		regions, flows = 8, 2048
	}
	c := center.New(ccfg)
	plan := c.ShardPlan(regions)
	if err := plan.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "shard:", err)
		os.Exit(1)
	}
	fcfg := netsim.Spider2Fabric()
	fcfg.Torus = c.Torus
	fmt.Printf("sharded fabric partition: %d torus X-slab regions + %d SSU storage shards, %d routers, %d OSSes\n",
		plan.Regions(), len(plan.StorageSpans), plan.Routers, plan.OSSes())

	run := func(w int) (*shard.FabricSim, time.Duration) {
		fs := shard.NewFabricSim(plan.FabricConfig(fcfg, w))
		src := rng.New(seed)
		t0 := time.Now()
		for i := 0; i < waves; i++ {
			fs.LaunchWave(src, flows, 32e6, fs.Runner.Horizon())
			if st := fs.Runner.Run(); st != shard.Quiescent {
				fmt.Fprintf(os.Stderr, "shard: run ended %v, want quiescent\n", st)
				os.Exit(1)
			}
		}
		return fs, time.Since(t0)
	}
	serial, serialWall := run(1)
	fmt.Printf("serial     (1 worker):  fingerprint %016x, %d events, %d quanta, %d hand-offs, %d flows in %v\n",
		serial.Runner.Fingerprint(), serial.Runner.Events(), serial.Runner.Quanta(),
		serial.Runner.Merged(), serial.Completed(), serialWall.Round(time.Millisecond))
	par, parWall := run(workers)
	match := "IDENTICAL"
	if par.Runner.Fingerprint() != serial.Runner.Fingerprint() {
		match = "MISMATCH"
	}
	fmt.Printf("parallel   (%d workers): fingerprint %016x, %d events in %v — %s\n",
		workers, par.Runner.Fingerprint(), par.Runner.Events(), parWall.Round(time.Millisecond), match)
	if parWall > 0 {
		fmt.Printf("speedup: %.2fx on %d CPUs (recorded, not gated: single-CPU hosts cannot speed up)\n",
			float64(serialWall)/float64(parWall), runtime.NumCPU())
	}
	if match != "IDENTICAL" {
		os.Exit(1)
	}
}

// runScrub replays the E19 scenario twice under the same seed — scrub
// off versus the default pass interval — and prints the exposure delta:
// what the background scrubber buys in undetected corrupt reads, latent
// rebuild hits, and lost stripes, and what it costs in read latency.
func runScrub(seed uint64) {
	fmt.Println("E19: background scrub vs latent-corruption exposure (same storm + disk failure, same seed)")
	cfg := integrity.DefaultScenario()
	cfg.Seed = seed
	off := cfg
	off.ScrubEvery = 0
	a, b := integrity.RunScenario(off), integrity.RunScenario(cfg)
	fmt.Printf("%-28s %14s %14s\n", "", "scrub off", fmt.Sprintf("every %v", cfg.ScrubEvery))
	row := func(name string, x, y any) { fmt.Printf("%-28s %14v %14v\n", name, x, y) }
	row("reads served", a.Reads, b.Reads)
	row("undetected corrupt reads", a.UndetectedReads, b.UndetectedReads)
	row("repaired on read", a.RepairedChunks, b.RepairedChunks)
	row("repaired by scrub", a.ScrubRepairs, b.ScrubRepairs)
	row("UREs detected", a.UREsDetected, b.UREsDetected)
	row("checksum mismatches", a.Mismatches, b.Mismatches)
	row("stripes lost (beyond parity)", a.LostStripes, b.LostStripes)
	row("latent hits during rebuild", a.RebuildHits, b.RebuildHits)
	row("rebuild exposure window", a.RebuildWindow, b.RebuildWindow)
	row("scrub passes", a.ScrubPasses, b.ScrubPasses)
	row("mean read latency (ms)",
		fmt.Sprintf("%.2f", a.MeanReadMs), fmt.Sprintf("%.2f", b.MeanReadMs))
	if a.MeanReadMs > 0 {
		fmt.Printf("scrub read-latency overhead: %.1f%%\n", (b.MeanReadMs/a.MeanReadMs-1)*100)
	}
	fmt.Println("(paper Sec. V: latent sector errors surface during rebuilds; periodic scrub closes the double-failure window)")
}

// runSpans traces a scenario end to end with the spantrace plane and
// renders the per-layer bandwidth waterfall, the critical-path
// attribution, the operation census, and a small flame view.
func runSpans(seed uint64, scenario string, every int, out string) {
	tr := spantrace.New(rng.New(seed^0x5a9_70ce), every)
	switch scenario {
	case "fig3":
		fmt.Printf("spans: Fig. 3 point (32 clients, 1 MiB transfers, full fabric), sampling 1-in-%d\n", every)
		c := center.New(center.Config{Small: true, Namespaces: 1, Seed: seed,
			UseFabric: true, RouteMode: netsim.RouteFGR})
		c.AttachTracer(tr)
		res := c.RunIOR(0, workload.IORConfig{
			Clients: 32, TransferSize: 1 << 20, StoneWall: 300 * sim.Millisecond,
			Tracer: tr,
		})
		fmt.Printf("%v\n\n", res)
	case "chaos":
		fmt.Printf("spans: 1-day chaos campaign under injected faults, sampling 1-in-%d\n", every)
		cfg := chaos.QuickConfig(seed)
		cfg.Tracer = tr
		rep := chaos.Run(cfg)
		fmt.Printf("availability %.5f over %v\n\n", rep.Availability, cfg.Duration)
	default:
		fmt.Fprintf(os.Stderr, "spans: unknown scenario %q (want fig3 or chaos)\n", scenario)
		os.Exit(2)
	}

	spans := tr.Spans()
	fmt.Printf("sampled %d root requests -> %d spans\n\n", tr.Sampled(), len(spans))
	fmt.Print(spantrace.RenderWaterfall(spantrace.Waterfall(spans)))
	fmt.Println()
	fmt.Print(spantrace.RenderCritical(spantrace.CriticalPaths(spans)))
	fmt.Println()
	fmt.Println("operation census (fault-path ops marked *):")
	faulty := map[string]bool{"rpc-retry": true, "router-stall": true, "reroute": true,
		"oss-stall": true, "drop": true, "degraded-read": true, "rmw": true, "rebuild-batch": true}
	for _, oc := range spantrace.CountOps(spans) {
		mark := " "
		if faulty[oc.Op] {
			mark = "*"
		}
		fmt.Printf("  %s %-16s %8d spans %14d bytes\n", mark, oc.Op, oc.N, oc.Bytes)
	}
	fmt.Println()
	fmt.Println("flame view (first traced requests):")
	fmt.Print(spantrace.RenderFlame(spans, 3))

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spans: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteSpans(f, spans); err != nil {
			fmt.Fprintf(os.Stderr, "spans: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d spans to %s\n", len(spans), out)
	}
}

func runChaos(seed uint64, days int, full bool, ledgerOut string) {
	cfg := chaos.QuickConfig(seed)
	if full {
		cfg = chaos.DefaultConfig(seed)
	}
	if days > 0 {
		cfg.Duration = sim.Time(days) * sim.Day
	}
	fmt.Println("center-wide chaos campaign: correlated faults vs the Sec. IV resilience features")
	feat := chaos.Run(cfg)
	fmt.Print(feat)
	if ledgerOut != "" {
		if err := writeLedger(ledgerOut, feat.Ops); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote operations ledger (%d entries, %d anchors) to %s\n",
			feat.LedgerEntries, feat.LedgerAnchors, ledgerOut)
	}
	if len(feat.Timeline) > 0 {
		fmt.Println("first faults on the timeline:")
		for i, line := range feat.Timeline {
			if i == 6 {
				break
			}
			fmt.Printf("  %s\n", line)
		}
	}
	fmt.Println()
	abl := chaos.Run(cfg.Ablated())
	fmt.Print(abl)
	fmt.Println()
	fmt.Printf("resilience delta under the identical fault schedule (seed %d):\n", seed)
	fmt.Printf("  OST downtime:  %v ablated -> %v with imperative recovery + ARN\n",
		abl.OSTDowntime, feat.OSTDowntime)
	fmt.Printf("  availability:  %.5f -> %.5f\n", abl.Availability, feat.Availability)
	fmt.Printf("  router stalls: %d sends (%v stalled) -> %d sends (%v)\n",
		abl.StalledSends, abl.StallTime, feat.StalledSends, feat.StallTime)
	fmt.Printf("  probe rate:    mean %.1f MB/s -> %.1f MB/s\n",
		abl.MeanProbeMBps, feat.MeanProbeMBps)
}

func runFig3(seed uint64) {
	fmt.Println("Fig. 3 reproduction: IOR write bandwidth vs transfer size (32 clients, stonewall)")
	fmt.Printf("%-12s %12s\n", "xfer bytes", "agg MB/s")
	for i, sz := range []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		c := center.New(center.Config{Small: true, Namespaces: 1, Seed: seed + uint64(i)})
		res := c.RunIOR(0, workload.IORConfig{
			Clients: 32, TransferSize: sz, StoneWall: 300 * sim.Millisecond,
		})
		fmt.Printf("%-12d %12.1f\n", sz, res.AggregateBps/1e6)
	}
	fmt.Println("(paper: best write performance at 1 MiB transfers)")
}

func runFig4(seed uint64) {
	fmt.Println("Fig. 4 reproduction: IOR write bandwidth vs client count (1 MiB transfers)")
	fmt.Printf("%-10s %12s\n", "clients", "agg MB/s")
	for i, n := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		c := center.New(center.Config{Small: true, Namespaces: 1, Seed: seed + uint64(i)})
		res := c.RunIOR(0, workload.IORConfig{
			Clients: n, TransferSize: 1 << 20, StoneWall: 300 * sim.Millisecond,
		})
		fmt.Printf("%-10d %12.1f\n", n, res.AggregateBps/1e6)
	}
	fmt.Println("(paper: near-linear to ~6,000 clients at full scale, then steady)")
}

func runRecovery(seed uint64) {
	for _, imperative := range []bool{false, true} {
		eng := sim.NewEngine()
		nsFS := lustre.Build(eng, lustre.TestNamespace(), rng.New(seed))
		client := lustre.NewClient(0, topology.Coord{}, nsFS, lustre.NullTransport{Eng: eng})
		var file *lustre.File
		nsFS.CreateOn("app/out", []int{0}, func(f *lustre.File) { file = f })
		eng.Run()
		lustre.FailOSS(nsFS, 0, lustre.DefaultRecovery(imperative), nil)
		start := eng.Now()
		var doneAt sim.Time
		client.WriteStream(file, 8<<20, 1<<20, func(int64) { doneAt = eng.Now() })
		eng.Run()
		mode := "without imperative recovery"
		if imperative {
			mode = "with imperative recovery   "
		}
		fmt.Printf("%s: application stalled %v across the OSS failover\n", mode, doneAt-start)
	}
	fmt.Println("(imperative recovery was one of the Lustre features OLCF direct-funded, Sec. IV-D)")
}

func runMixed(seed uint64) {
	eng := sim.NewEngine()
	nsFS := lustre.Build(eng, lustre.TestNamespace(), rng.New(seed))
	cfg := workload.DefaultMixed()
	cfg.Duration = 10 * sim.Second
	cfg.MeanArrival = 4 * sim.Millisecond
	tr := workload.RunMixed(nsFS, cfg, rng.New(seed+1))
	fmt.Printf("mixed workload over %v:\n", cfg.Duration)
	fmt.Printf("  requests: %d (%.0f%% write / %.0f%% read; paper: 60/40)\n",
		tr.Writes+tr.Reads, tr.WriteFraction()*100, (1-tr.WriteFraction())*100)
	small, large := 0, 0
	for _, s := range tr.Sizes {
		if s <= 16<<10 {
			small++
		} else if s >= 1<<20 {
			large++
		}
	}
	n := len(tr.Sizes)
	fmt.Printf("  sizes: %.0f%% <=16KiB, %.0f%% >=1MiB (bimodal, as measured on Spider I)\n",
		100*float64(small)/float64(n), 100*float64(large)/float64(n))
	fit := stats.FitPareto(tr.InterArrivals, stats.Percentile(tr.InterArrivals, 0.5))
	fmt.Printf("  inter-arrival Pareto tail: alpha=%.2f over %d tail gaps (long-tail)\n", fit.Alpha, fit.N)
}

func runCheckpoint(seed uint64) {
	// Sizing math first (the RFP numbers).
	bw := procure.CheckpointBandwidth(600e12, 0.75, 6*sim.Minute)
	fmt.Printf("sizing: 75%% of 600 TB in 6 min -> %.2f TB/s sequential requirement\n", bw/1e12)
	fmt.Printf("        random-I/O target at 24%% drive ratio -> %.0f GB/s\n",
		procure.RandomDerate(1e12, 0.24)/1e9)

	// Then a scaled simulation: 1/6 of a namespace, proportional memory.
	c := center.New(center.Config{Scale: 6, Namespaces: 1, Seed: seed})
	res := c.RunIOR(0, workload.IORConfig{
		Clients:      256,
		TransferSize: 1 << 20,
		BlockSize:    64 << 20,
	})
	fmt.Printf("simulated (1/6 scale, 3 SSUs): %.1f GB/s aggregate; full namespace extrapolation %.0f GB/s\n",
		res.AggregateBps/1e9, res.AggregateBps*6/1e9)
}

func runSlowDisk(seed uint64) {
	eng := sim.NewEngine()
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 1 << 30
	groups := raid.BuildGroups(eng, 56, raid.Spider2Group(), dcfg, disk.DefaultPopulation(), rng.New(seed))
	cfg := qa.DefaultElimination()
	cfg.BenchBytes = 32 << 20
	rep := qa.RunElimination(eng, groups, cfg, rng.New(seed+1))
	fmt.Println(rep)
	for _, r := range rep.Rounds {
		fmt.Printf("  round %d: mean %.0f MB/s, min %.0f, spread %.1f%%, replaced %d disks\n",
			r.Index, r.MeanMBps, r.MinMBps, r.Spread*100, r.Replaced)
	}
	fmt.Printf("paper: ~1,500 then ~500 of 20,160 drives replaced; envelope 5%% -> 7.5%%\n")
}

func runIncident(seed uint64) {
	for _, layout := range []struct {
		name string
		l    raid.EnclosureLayout
	}{{"spider1 (5 enclosures x 2 members)", raid.Spider1Layout()},
		{"spider2 (10 enclosures x 1 member)", raid.Spider2Layout()}} {
		eng := sim.NewEngine()
		dcfg := disk.NLSAS2TB()
		dcfg.Capacity = 64 << 20
		groups := raid.BuildGroups(eng, 4, raid.Spider2Group(), dcfg, disk.DefaultPopulation(), rng.New(seed))
		for _, g := range groups {
			g.RebuildPause = 30 * sim.Minute
			g.RebuildChunk = 8
		}
		c := raid.NewCouplet(eng, 0, layout.l, groups)
		g := groups[0]
		g.FailDisk(0)
		repl := disk.New(eng, 9999, dcfg, disk.Nominal(), rng.New(seed).Split("repl"))
		g.StartRebuild(0, repl, nil)
		c.ControllerFailover()
		c.Journal.Log(1_000_000)
		eng.RunFor(sim.Hour)
		failedGroups := c.FailEnclosure(1)
		eng.RunFor(17 * sim.Hour)
		lost := c.TakeOffline()
		rec, unrec := c.RecoverFiles(rng.New(seed).Split("rec"), 0.95)
		fmt.Printf("%s:\n  groups failed: %d, journal entries lost: %d\n", layout.name, failedGroups, lost)
		if lost > 0 {
			fmt.Printf("  recovery: %d recovered, %d unrecoverable (%.1f%% success)\n",
				rec, unrec, 100*float64(rec)/float64(rec+unrec))
		}
	}
}

func runPurge(seed uint64) {
	eng := sim.NewEngine()
	nsFS := lustre.Build(eng, lustre.TestNamespace(), rng.New(seed))
	p := purge.New(nsFS, purge.Policy{MaxAge: 14 * sim.Day, Interval: sim.Day, Concurrency: 16})
	p.Start()
	day := 0
	var producer func()
	producer = func() {
		if day >= 30 {
			return
		}
		tools.Populate(nsFS, tools.TreeSpec{
			Dirs: 1, FilesPerDir: 50, FileSize: 16 << 20,
			Root: fmt.Sprintf("day%02d", day),
		})
		day++
		eng.After(sim.Day, producer)
	}
	producer()
	eng.RunUntil(30 * sim.Day)
	p.Stop()
	eng.Run()
	fmt.Printf("30 days of production under the 14-day purge policy:\n")
	fmt.Printf("  sweeps: %d, deleted: %d files, freed: %.1f GiB\n",
		len(p.Sweeps), p.Deleted, float64(p.Freed)/(1<<30))
	fmt.Printf("  files resident at day 30: %d (14-15 days of production)\n", nsFS.NumFiles)
	last := p.Sweeps[len(p.Sweeps)-1]
	fmt.Printf("  fill: %.2f%% -> %.2f%% at last sweep\n", last.FillBefore*100, last.FillAfter*100)
}

func runNamespaces(seed uint64) {
	for _, n := range []int{1, 2} {
		eng := sim.NewEngine()
		var namespaces []*lustre.FS
		for i := 0; i < n; i++ {
			p := lustre.TestNamespace()
			p.Name = fmt.Sprintf("atlas%d", i+1)
			namespaces = append(namespaces, lustre.Build(eng, p, rng.New(seed+uint64(i))))
		}
		res := center.MetadataStorm(namespaces, 5000, 64)
		fmt.Printf("%d namespace(s): %.0f metadata ops/s, mean wait %v, MDS util %.2f, blast radius %.0f%%\n",
			n, res.OpsPerSec, res.MeanWait, res.Utilization,
			100*center.BlastRadius(namespaces, 0))
	}
}

func runWorkflow(seed uint64) {
	eng := sim.NewEngine()
	shared := lustre.Build(eng, lustre.TestNamespace(), rng.New(seed))
	dc := center.DataCentricWorkflow(shared, 512<<20, 4, 4)

	eng2 := sim.NewEngine()
	simFS := lustre.Build(eng2, lustre.TestNamespace(), rng.New(seed+1))
	p := lustre.TestNamespace()
	p.Name = "viz"
	vizFS := lustre.Build(eng2, p, rng.New(seed+2))
	ex := center.ExclusiveWorkflow(simFS, vizFS, 512<<20, 4, 4, 10e9)

	fmt.Printf("workflow (512 MiB simulation output, then analysis):\n")
	fmt.Printf("  data-centric:      write %v + read %v = %v (0 bytes moved)\n",
		dc.WriteTime, dc.ReadTime, dc.Total)
	fmt.Printf("  machine-exclusive: write %v + transfer %v + read %v = %v (%d MiB moved)\n",
		ex.WriteTime, ex.TransferTime, ex.ReadTime, ex.Total, ex.BytesMoved>>20)

	cmp := procure.CompareModels([]procure.Platform{
		{Name: "titan", MemBytes: 710e12, WorkflowShareBytes: 100e12},
		{Name: "analysis", MemBytes: 30e12, WorkflowShareBytes: 20e12},
		{Name: "viz", MemBytes: 20e12, WorkflowShareBytes: 10e12},
		{Name: "dtn", MemBytes: 10e12, WorkflowShareBytes: 5e12},
	}, procure.Spider2SSU(), 10e9)
	fmt.Printf("  acquisition model: %v\n", cmp)
}
