package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"spiderfs/internal/ledger"
	"spiderfs/internal/sim"
	"spiderfs/internal/trace"
)

// runLedger is the forensics CLI over exported operations ledgers:
//
//	spidersim ledger verify -in FILE [-trust FILE]   audit a history
//	spidersim ledger replay -in FILE [-spans FILE] [-from D] [-to D]
//	spidersim ledger append -in FILE -at D -actor A -action K [-out FILE]
//
// verify audits the export's hash chains, anchor coverage, and Merkle
// roots; with -trust (a previously audited export, or a bare JSON
// array of {epoch,root} refs) it additionally detects truncated or
// forged-but-internally-consistent histories. replay renders the
// incident window, joining ledger entries with spans exported by
// `spidersim spans -out`. append extends an audited history — a
// tampered one is refused — and writes the new export.
func runLedger(args []string) {
	if len(args) == 0 {
		ledgerUsage()
		os.Exit(2)
	}
	verb := args[0]
	fs := flag.NewFlagSet("ledger "+verb, flag.ExitOnError)
	in := fs.String("in", "", "ledger export JSON (required; spidersim chaos -ledger FILE writes one)")
	trust := fs.String("trust", "", "verify: trusted export or JSON root-ref array to audit against")
	spansFile := fs.String("spans", "", "replay: spans JSON (spidersim spans -out FILE) to join")
	from := fs.Duration("from", 0, "replay: window start in simulated time, e.g. 2h15m")
	to := fs.Duration("to", 0, "replay: window end (0 = end of history)")
	at := fs.Duration("at", 0, "append: simulated timestamp of the new entry")
	actor := fs.String("actor", "operator-cli", "append: acting component")
	class := fs.String("class", "operator", "append: entry class")
	action := fs.String("action", "", "append: action kind (required)")
	detail := fs.String("detail", "", "append: free-form detail")
	out := fs.String("out", "", "append: write the extended export here (default: overwrite -in)")
	_ = fs.Parse(args[1:])
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ledger: -in FILE required")
		ledgerUsage()
		os.Exit(2)
	}
	exp, err := readExport(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ledger:", err)
		os.Exit(1)
	}

	switch verb {
	case "verify":
		ledgerVerify(exp, *trust)
	case "replay":
		ledgerReplay(exp, *spansFile, sim.Time(*from), sim.Time(*to))
	case "append":
		if *action == "" {
			fmt.Fprintln(os.Stderr, "ledger append: -action required")
			os.Exit(2)
		}
		dst := *out
		if dst == "" {
			dst = *in
		}
		ledgerAppend(exp, sim.Time(*at), *actor, *class, *action, *detail, dst)
	default:
		fmt.Fprintf(os.Stderr, "ledger: unknown verb %q\n", verb)
		ledgerUsage()
		os.Exit(2)
	}
}

func ledgerUsage() {
	fmt.Fprintln(os.Stderr, `usage: spidersim ledger <verify|replay|append> -in FILE
  verify  [-trust FILE]                                  audit; nonzero exit on findings
  replay  [-spans FILE] [-from DUR] [-to DUR]            render an incident window
  append  -at DUR -action KIND [-actor A] [-class C] [-detail D] [-out FILE]`)
}

func ledgerVerify(exp *ledger.Export, trustFile string) {
	var findings []ledger.Finding
	if trustFile != "" {
		trusted, err := readTrust(trustFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ledger verify:", err)
			os.Exit(1)
		}
		fmt.Printf("auditing against %d trusted roots from %s\n", len(trusted), trustFile)
		findings = ledger.AuditAgainst(exp, trusted)
	} else {
		findings = ledger.Audit(exp)
	}
	fmt.Printf("ledger: %d entries, %d anchored batches, head %.16s..\n",
		len(exp.Entries), len(exp.Anchors), exp.Head)
	if len(findings) == 0 {
		fmt.Println("verify: clean — hash chains, anchor coverage, and Merkle roots all hold")
		return
	}
	fmt.Printf("verify: %d findings\n", len(findings))
	for _, f := range findings {
		fmt.Printf("  %v\n", f)
	}
	os.Exit(1)
}

func ledgerReplay(exp *ledger.Export, spansFile string, from, to sim.Time) {
	var spans []trace.SpanRecord
	if spansFile != "" {
		f, err := os.Open(spansFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ledger replay:", err)
			os.Exit(1)
		}
		spans, err = trace.ReadSpans(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ledger replay:", err)
			os.Exit(1)
		}
	}
	if to <= 0 {
		if n := len(exp.Entries); n > 0 {
			to = exp.Entries[n-1].At
		}
		for _, s := range spans {
			if sim.Time(s.EndNS) > to {
				to = sim.Time(s.EndNS)
			}
		}
	}
	items := ledger.Replay(exp, spans, from, to)
	fmt.Printf("replay [%v, %v]: %d ledger entries + spans -> %d items\n",
		from, to, len(exp.Entries), len(items))
	fmt.Print(ledger.RenderReplay(items))
}

func ledgerAppend(exp *ledger.Export, at sim.Time, actor, class, action, detail, dst string) {
	l, err := ledger.Resume(exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ledger append:", err)
		os.Exit(1)
	}
	if err := l.Append(at, actor, class, action, detail); err != nil {
		fmt.Fprintln(os.Stderr, "ledger append:", err)
		os.Exit(1)
	}
	l.Close()
	if err := writeLedger(dst, l.Export()); err != nil {
		fmt.Fprintln(os.Stderr, "ledger append:", err)
		os.Exit(1)
	}
	fmt.Printf("appended %s/%s at %v: now %d entries, %d anchors, head %.16s..; wrote %s\n",
		actor, action, at, l.Len(), l.AnchorCount(), l.Head(), dst)
}

func readExport(path string) (*ledger.Export, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var exp ledger.Export
	if err := json.Unmarshal(data, &exp); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if exp.Schema != ledger.Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, exp.Schema, ledger.Schema)
	}
	return &exp, nil
}

// readTrust loads a trusted root sequence: either a full ledger export
// (its anchors become the refs) or a bare JSON array of
// {"epoch":N,"root":"..."} objects.
func readTrust(path string) ([]ledger.RootRef, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var exp ledger.Export
	if err := json.Unmarshal(data, &exp); err == nil && exp.Schema == ledger.Schema {
		return exp.RootRefs(), nil
	}
	var refs []ledger.RootRef
	if err := json.Unmarshal(data, &refs); err != nil {
		return nil, fmt.Errorf("%s: neither a ledger export nor a root-ref array: %w", path, err)
	}
	return refs, nil
}

func writeLedger(path string, exp *ledger.Export) error {
	data, err := json.MarshalIndent(exp, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
