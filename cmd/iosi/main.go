// Command iosi demonstrates the I/O Signature Identifier (§VI-B): it
// runs a periodically checkpointing application on a namespace shared
// with background noise, samples server-side throughput logs across
// several runs, and extracts the application's signature.
package main

import (
	"flag"
	"fmt"
	"os"

	"spiderfs/internal/iosi"
	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
	"spiderfs/internal/trace"
)

func main() {
	runs := flag.Int("runs", 4, "application runs to observe")
	period := flag.Float64("period", 3, "checkpoint period (simulated seconds)")
	burstMB := flag.Int64("burst", 96, "checkpoint size in MiB")
	bursts := flag.Int("bursts", 6, "checkpoints per run")
	noise := flag.Float64("noise", 0.2, "background noise intensity 0..1")
	seed := flag.Uint64("seed", 42, "random seed")
	importPath := flag.String("import", "", "read server logs from a JSON trace file instead of simulating")
	exportPath := flag.String("export", "", "write the collected server logs to a JSON trace file")
	flag.Parse()

	var series []iosi.Series
	if *importPath != "" {
		f, err := os.Open(*importPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iosi:", err)
			os.Exit(1)
		}
		logs, err := trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "iosi:", err)
			os.Exit(1)
		}
		for _, l := range logs {
			series = append(series, l.Series())
		}
	} else {
		for r := 0; r < *runs; r++ {
			series = append(series, oneRun(uint64(r)+*seed, *period, *burstMB<<20, *bursts, *noise))
		}
	}
	if *exportPath != "" {
		logs := make([]trace.Log, len(series))
		for i, s := range series {
			logs[i] = trace.FromSeries(fmt.Sprintf("run-%d", i), s)
		}
		f, err := os.Create(*exportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iosi:", err)
			os.Exit(1)
		}
		if err := trace.Write(f, logs); err != nil {
			fmt.Fprintln(os.Stderr, "iosi:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("exported %d server logs to %s\n", len(logs), *exportPath)
	}
	for i, s := range series {
		sig := iosi.ExtractRun(s, 4)
		fmt.Printf("run %d: %d bursts, period %v, burst volume %.1f MiB\n",
			i, sig.BurstsPerRun, sig.Period, sig.BurstVolume/(1<<20))
	}
	sig := iosi.Extract(series, 4)
	fmt.Printf("\nsignature across %d runs:\n", *runs)
	fmt.Printf("  period:       %v\n", sig.Period)
	fmt.Printf("  burst volume: %.1f MiB\n", sig.BurstVolume/(1<<20))
	fmt.Printf("  burst length: %v\n", sig.BurstDuration)
	fmt.Printf("  bursts/run:   %d\n", sig.BurstsPerRun)
	fmt.Printf("  confidence:   %.2f\n", sig.Confidence)
}

func oneRun(seed uint64, periodSec float64, burstBytes int64, bursts int, noise float64) iosi.Series {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(seed))
	src := rng.New(seed)
	app := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	bg := lustre.NewClient(1, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})

	var appFile, bgFile *lustre.File
	fs.Create("app/ckpt", 4, func(f *lustre.File) { appFile = f })
	fs.Create("other/data", 1, func(f *lustre.File) { bgFile = f })
	eng.Run()

	sampler := iosi.NewSampler(fs, 100*sim.Millisecond)
	endAt := sim.FromSeconds(periodSec * float64(bursts+1))

	// Background noise: intermittent writes from another job.
	var nextNoise func()
	nextNoise = func() {
		if eng.Now() >= endAt {
			return
		}
		gap := sim.FromSeconds(src.Exp(2))
		eng.After(gap, func() {
			if eng.Now() >= endAt {
				return
			}
			size := int64(noise * float64(src.Intn(32)+1) * (1 << 20))
			if size > 0 {
				bg.WriteStream(bgFile, size, 1<<20, nil)
			}
			nextNoise()
		})
	}
	nextNoise()

	period := sim.FromSeconds(periodSec)
	var burst func(n int)
	burst = func(n int) {
		if n == 0 {
			return
		}
		app.WriteStream(appFile, burstBytes, 1<<20, func(int64) {
			eng.After(period, func() { burst(n - 1) })
		})
	}
	burst(bursts)
	eng.RunUntil(endAt)
	s := sampler.Stop()
	eng.Run()
	return s
}
