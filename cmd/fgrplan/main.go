// Command fgrplan computes and renders the Titan I/O router placement
// (the Fig. 2 map) and reports the placement quality metrics OLCF
// optimized: mean client-to-router distance with and without the FGR
// zone restriction.
package main

import (
	"flag"
	"fmt"
	"os"

	"spiderfs/internal/topology"
)

func main() {
	modules := flag.Int("modules", 110, "I/O modules to place (4 routers each)")
	groups := flag.Int("groups", 9, "router groups (each serves 4 IB leaf switches)")
	flag.Parse()

	if *modules < *groups {
		fmt.Fprintln(os.Stderr, "fgrplan: need at least one module per group")
		os.Exit(2)
	}
	p := topology.PlaceRouters(topology.TitanCabinets(), topology.TitanTorus(), *modules, *groups)
	fmt.Print(p.RenderXYMap())
	fmt.Printf("\nmean client->nearest-router distance (any router):   %.2f hops\n",
		p.MeanClientRouterDistance(false))
	fmt.Printf("mean client->nearest-router distance (FGR own zone): %.2f hops\n",
		p.MeanClientRouterDistance(true))

	// Contrast with a clumped placement to show what the optimization buys.
	clumped := p
	clumped.Modules = append([]topology.IOModule(nil), p.Modules...)
	for i := range clumped.Modules {
		clumped.Modules[i].Coord = topology.Coord{X: 0, Y: 0, Z: i % 24}
	}
	fmt.Printf("clumped placement (all modules in one cabinet column): %.2f hops\n",
		clumped.MeanClientRouterDistance(false))
}
