// Command iorsim runs the IOR-like file-per-process benchmark against a
// simulated Spider II namespace, optionally through the full
// Gemini+InfiniBand fabric, reproducing the scaling studies of §V-C
// (Figs. 3 and 4).
package main

import (
	"flag"
	"fmt"

	"spiderfs/internal/center"
	"spiderfs/internal/netsim"
	"spiderfs/internal/sim"
	"spiderfs/internal/workload"
)

func main() {
	clients := flag.Int("clients", 128, "number of client processes")
	xfer := flag.Int64("xfer", 1<<20, "transfer size in bytes")
	wall := flag.Float64("stonewall", 5, "stonewall seconds (simulated)")
	read := flag.Bool("read", false, "read instead of write")
	fabric := flag.Bool("fabric", false, "route I/O through the Gemini+IB fabric")
	naive := flag.Bool("naive", false, "naive routing instead of FGR (with -fabric)")
	scale := flag.Int("scale", 6, "hardware scale divisor (18/scale SSUs)")
	upgraded := flag.Bool("upgraded", false, "use post-upgrade controllers")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	mode := netsim.RouteFGR
	if *naive {
		mode = netsim.RouteNaive
	}
	c := center.New(center.Config{
		Scale:      *scale,
		Namespaces: 1,
		UseFabric:  *fabric,
		RouteMode:  mode,
		Upgraded:   *upgraded,
		Seed:       *seed,
	})
	res := c.RunIOR(0, workload.IORConfig{
		Clients:      *clients,
		TransferSize: *xfer,
		StoneWall:    sim.FromSeconds(*wall),
		Read:         *read,
	})
	fmt.Println(res)
	if *fabric {
		rep := c.Fabric.Congestion(c.Eng.Now())
		fmt.Printf("fabric: max link util %.2f (%s), mean gemini util %.3f, core bytes %.2e\n",
			rep.MaxUtilization, rep.HotLink, rep.MeanGeminiUtil, rep.CoreBytes)
	}
	fs := c.Namespaces[0]
	fmt.Printf("mds: %d ops, util %.2f; ctrl0 util %.2f\n",
		fs.MDS.Ops(), fs.MDS.Utilization(), fs.Ctrls[0].Utilization())
}
