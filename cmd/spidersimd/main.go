// Command spidersimd is the multi-tenant simulation service: a
// stdlib-only net/http daemon serving concurrent scenario sessions from
// a warm pool of engine/fabric instances, with a fingerprint-keyed
// result cache and bounded-admission backpressure.
//
//	spidersimd -addr :8080 -seed 42 -pool 2 -workers 2 -queue 64 -cache 128
//
// Submit a session and follow it:
//
//	curl -s -X POST localhost:8080/v1/sessions \
//	     -d '{"kind":"workload","seed":7}'
//	curl -s localhost:8080/v1/sessions/s-000001/events   # ndjson stream
//	curl -s localhost:8080/v1/sessions/s-000001/report
//
// The determinism contract: a session's report — fingerprint included —
// is byte-identical to `spidersim session -spec '<the same json>'`, no
// matter how many tenants share the daemon or whether the session ran
// on a cold, pooled, or cached path. When the admission queue is full
// the daemon sheds immediately with 429 and a Retry-After hint; it
// never queues unboundedly.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"spiderfs/internal/benchsuite"
	"spiderfs/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 42, "service-plane seed (session tokens and the sweep catalog; model streams come from each spec's own seed)")
	workers := flag.Int("workers", 2, "concurrent session executors")
	queue := flag.Int("queue", 64, "admission queue depth; submits past it are shed with 429")
	pool := flag.Int("pool", 2, "warm engine/fabric instances retained per shape (0 = always cold)")
	cache := flag.Int("cache", 128, "result cache entries (0 = disabled)")
	prewarm := flag.Bool("prewarm", true, "build the warm pool before listening")
	flag.Parse()

	svc := serve.New(serve.Config{
		Seed:       *seed,
		Workers:    *workers,
		QueueDepth: *queue,
		PoolSize:   *pool,
		CacheSize:  *cache,
		Sweeps:     benchsuite.ServeCatalog(*seed),
		Clock:      func() int64 { return time.Now().UnixNano() },
	})
	defer svc.Close()
	if *prewarm && *pool > 0 {
		svc.Prewarm(*pool, false)
	}

	fmt.Printf("spidersimd listening on %s (workers %d, queue %d, pool %d, cache %d)\n",
		*addr, *workers, *queue, *pool, *cache)
	if err := http.ListenAndServe(*addr, svc.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "spidersimd:", err)
		os.Exit(1)
	}
}
