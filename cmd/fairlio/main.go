// Command fairlio is the block-level acquisition benchmark (§III-B): it
// drives simulated drives or RAID groups with configurable request
// size, queue depth, read/write mix, and access mode, like the fair-lio
// tool OLCF shipped to vendors.
package main

import (
	"flag"
	"fmt"
	"os"

	"spiderfs/internal/disk"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/workload"
)

func main() {
	target := flag.String("target", "group", "benchmark target: disk | group")
	reqSize := flag.Int64("size", 1<<20, "request size in bytes")
	depth := flag.Int("depth", 8, "queue depth")
	writeFrac := flag.Float64("write", 1.0, "write fraction (0=read, 1=write)")
	random := flag.Bool("random", false, "random offsets instead of sequential")
	duration := flag.Float64("seconds", 5, "benchmark duration (simulated seconds)")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	eng := sim.NewEngine()
	src := rng.New(*seed)
	cfg := workload.FairLIOConfig{
		RequestSize: *reqSize,
		QueueDepth:  *depth,
		WriteFrac:   *writeFrac,
		Random:      *random,
		Duration:    sim.FromSeconds(*duration),
	}

	var res workload.FairLIOResult
	switch *target {
	case "disk":
		d := disk.New(eng, 0, disk.NLSAS2TB(), disk.Nominal(), src.Split("disk"))
		res = workload.RunFairLIODisk(eng, d, cfg, src.Split("io"))
	case "group":
		g := raid.BuildGroups(eng, 1, raid.Spider2Group(), disk.NLSAS2TB(),
			disk.DefaultPopulation(), src.Split("grp"))[0]
		res = workload.RunFairLIOGroup(eng, g, cfg, src.Split("io"))
	default:
		fmt.Fprintf(os.Stderr, "fairlio: unknown target %q\n", *target)
		os.Exit(2)
	}

	mode := "sequential"
	if *random {
		mode = "random"
	}
	fmt.Printf("fair-lio %s %s size=%d qd=%d write=%.0f%%\n",
		*target, mode, *reqSize, *depth, *writeFrac*100)
	fmt.Printf("  throughput: %8.1f MB/s\n", res.MBps)
	fmt.Printf("  IOPS:       %8.0f\n", res.IOPS)
	fmt.Printf("  latency:    mean %.2f ms, min %.2f, max %.2f (n=%d)\n",
		res.LatencyMs.Mean, res.LatencyMs.Min, res.LatencyMs.Max, res.LatencyMs.N)
}
