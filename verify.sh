#!/bin/sh
# Tier-1 verification (see ROADMAP.md): full build + tests, vet, the
# simlint invariant suite, and race-mode runs of the concurrency- and
# engine-adjacent packages.
set -eux

go build ./...
go vet ./...

# simlint: the determinism & hygiene analyzer suite (DESIGN.md
# "Enforced invariants"). Zero diagnostics or the build fails.
go run ./cmd/simlint

# -shuffle=on randomizes test execution order so inter-test state
# coupling cannot hide behind a lucky default order.
go test -shuffle=on ./...
go test -race ./internal/chaos/... ./internal/failure/... ./internal/sim/... ./internal/netsim/... ./internal/spantrace/...

# Determinism double-run: the event-trace regression tests compare two
# in-process runs already; -count=2 additionally reruns each comparison
# in a fresh map-randomization schedule.
go test -count=2 -run 'Deterministic' ./internal/netsim/ ./internal/chaos/

# Benchmark smoke: one iteration of every netsim/sim benchmark,
# including the Spider II-scale congestion wave and the traced/untraced
# spantrace pair, so the harnesses behind BENCH_netsim.json and
# BENCH_spantrace.json cannot rot silently.
go test -bench . -benchtime=1x -run '^$' ./internal/netsim/ ./internal/sim/ ./internal/netbench/ ./internal/spantrace/
