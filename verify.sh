#!/bin/sh
# Tier-1 verification (see ROADMAP.md): full build + tests, vet, the
# simlint invariant suite, and race-mode runs of the concurrency- and
# engine-adjacent packages.
#
# Stages (for the CI matrix; default runs everything):
#   ./verify.sh build   — gofmt gate, build, vet
#   ./verify.sh lint    — simlint invariant suite + suppression-debt gate
#   ./verify.sh test    — shuffled full test run + determinism double-run
#   ./verify.sh race    — race-mode runs of the concurrency-adjacent packages
#   ./verify.sh bench   — one-iteration benchmark smoke
#   ./verify.sh all     — all of the above, in order
set -eu

stage="${1:-all}"

stage_build() {
	# gofmt gate: formatting drift fails loudly instead of churning
	# later diffs. gofmt -l prints offenders; any output is a failure.
	badfmt=$(gofmt -l .)
	if [ -n "$badfmt" ]; then
		echo "gofmt needed on: $badfmt" >&2
		exit 1
	fi
	set -x
	go build ./...
	go vet ./...
	set +x
}

stage_lint() {
	set -x
	# simlint: the determinism & hygiene analyzer suite (DESIGN.md
	# "Enforced invariants"). Zero diagnostics or the build fails.
	go run ./cmd/simlint
	# Suppression-debt gate: every //simlint:allow site must carry a
	# reason and suppress a real diagnostic, and the totals may not
	# grow past the committed .simlint-baseline.json. A conscious debt
	# change re-pins with: go run ./cmd/simlint -debt -update
	go run ./cmd/simlint -debt
	set +x
}

stage_test() {
	set -x
	# -shuffle=on randomizes test execution order so inter-test state
	# coupling cannot hide behind a lucky default order.
	go test -shuffle=on ./...
	# Determinism double-run: the event-trace regression tests compare
	# two in-process runs already; -count=2 additionally reruns each
	# comparison in a fresh map-randomization schedule. The sweep and
	# shard runners' serial-vs-parallel double-runs ride the same gate.
	go test -count=2 -run 'Deterministic' ./internal/netsim/ ./internal/chaos/ ./internal/sweep/ ./internal/benchsuite/ ./internal/integrity/ ./internal/shard/ ./internal/serve/ ./internal/ledger/
	set +x
}

stage_race() {
	set -x
	go test -race ./internal/chaos/... ./internal/failure/... ./internal/sim/... ./internal/netsim/... ./internal/spantrace/... ./internal/sweep/... ./internal/integrity/... ./internal/shard/... ./internal/serve/... ./internal/ledger/...
	set +x
}

stage_bench() {
	set -x
	# Benchmark smoke: one iteration of every netsim/sim benchmark,
	# including the Spider II-scale congestion wave and the
	# traced/untraced spantrace pair, so the harnesses behind
	# BENCH_netsim.json and BENCH_spantrace.json cannot rot silently.
	go test -bench . -benchtime=1x -run '^$' ./internal/netsim/ ./internal/sim/ ./internal/netbench/ ./internal/spantrace/
	set +x
}

case "$stage" in
build) stage_build ;;
lint) stage_lint ;;
test) stage_test ;;
race) stage_race ;;
bench) stage_bench ;;
all)
	stage_build
	stage_lint
	stage_test
	stage_race
	stage_bench
	;;
*)
	echo "usage: ./verify.sh [build|lint|test|race|bench|all]" >&2
	exit 2
	;;
esac
