#!/bin/sh
# Tier-1 verification (see ROADMAP.md): full build + tests, vet, and
# race-mode runs of the concurrency-adjacent fault packages.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/chaos/... ./internal/failure/...

# Determinism double-run: the event-trace regression tests compare two
# in-process runs already; -count=2 additionally reruns each comparison
# in a fresh map-randomization schedule.
go test -count=2 -run 'Deterministic' ./internal/netsim/ ./internal/chaos/

# Benchmark smoke: one iteration of every netsim/sim benchmark,
# including the Spider II-scale congestion wave, so the harness behind
# BENCH_netsim.json cannot rot silently.
go test -bench . -benchtime=1x -run '^$' ./internal/netsim/ ./internal/sim/ ./internal/netbench/
