// Acquisition: the §III process end to end. Derive the RFP targets from
// the checkpoint law, run the vendor benchmark suite against a candidate
// SSU's hardware, size competing proposals, and evaluate them best-value
// — the Spider II procurement in one program.
package main

import (
	"fmt"

	"spiderfs/internal/benchsuite"
	"spiderfs/internal/disk"
	"spiderfs/internal/procure"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func main() {
	// 1. Requirements from the program targets (§III-A).
	seq := procure.CheckpointBandwidth(600e12, 0.75, 6*sim.Minute)
	rnd := procure.RandomDerate(1e12, 0.24)
	capTarget := procure.CapacityTarget(770e12, 30, 0.3)
	fmt.Printf("RFP targets: %.2f TB/s sequential, %.0f GB/s random, %.1f PB capacity\n\n",
		seq/1e12, rnd/1e9, capTarget/1e15)

	// 2. The vendor benchmark suite (§III-B) against one candidate RAID
	// LUN — the numbers a bidder would return with its response.
	eng := sim.NewEngine()
	src := rng.New(7)
	g := raid.BuildGroups(eng, 1, raid.Spider2Group(), disk.NLSAS2TB(),
		disk.DefaultPopulation(), src.Split("grp"))[0]
	sweep := benchsuite.Sweep{
		RequestSizes: []int64{64 << 10, 1 << 20},
		QueueDepths:  []int{8},
		WriteFracs:   []float64{0.6, 1.0}, // the Sec. II mix and pure write
		Random:       []bool{false, true},
		CellDuration: sim.Second,
	}
	fmt.Println("candidate LUN, fair-lio sweep (vendor response data):")
	cells := benchsuite.RunBlockLevel(eng, g, sweep, src.Split("bench"))
	fmt.Print(benchsuite.Render(cells))

	// 3. Proposals (block-storage vs appliance models, §III-A) and the
	// weighted best-value evaluation (§III-C).
	reqs := procure.Requirements{SeqBps: 1e12, RandBps: 240e9, Capacity: 32e15, BudgetUSD: 45e6}
	proposals := []procure.Proposal{
		{
			Vendor: "block-storage-co", Unit: procure.Spider2SSU(),
			Schedule: 0.9, PastPerformance: 0.9, Risk: 0.8,
			Model: "block", IntegrationCost: 2e6,
		},
		{
			Vendor: "appliance-corp",
			Unit: procure.SSU{Name: "appliance", SeqBps: 30e9, RandBps: 7e9,
				Capacity: 1.0e15, Disks: 600, PriceUSD: 1.6e6},
			Schedule: 0.95, PastPerformance: 0.85, Risk: 0.95,
			Model: "appliance",
		},
		{
			Vendor: "budget-array-inc",
			Unit: procure.SSU{Name: "budget", SeqBps: 14e9, RandBps: 3e9,
				Capacity: 0.7e15, Disks: 480, PriceUSD: 0.8e6},
			Schedule: 0.7, PastPerformance: 0.6, Risk: 0.5,
			Model: "block", IntegrationCost: 3e6,
		},
	}
	fmt.Println("\nevaluation (best value, weighted):")
	fmt.Printf("%-18s %6s %12s %9s %7s\n", "vendor", "SSUs", "total $", "feasible", "value")
	for _, s := range procure.Evaluate(reqs, proposals, procure.DefaultWeights()) {
		fmt.Printf("%-18s %6d %11.1fM %9v %7.3f\n",
			s.Proposal.Vendor, s.Units, s.TotalUSD/1e6, s.Feasible, s.Value)
	}
	fmt.Println("\n(OLCF chose the block-storage model: design flexibility and cost savings,")
	fmt.Println(" accepting the integration risk because the team could carry it — Sec. III-C)")
}
