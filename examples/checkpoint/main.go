// Checkpoint: the workload Spider II was sized for. Runs a Titan-style
// defensive checkpoint on a scaled namespace and compares against the
// paper's sizing rule (75% of 600 TB in 6 minutes -> 1 TB/s).
package main

import (
	"fmt"

	"spiderfs/internal/center"
	"spiderfs/internal/procure"
	"spiderfs/internal/sim"
	"spiderfs/internal/workload"
)

func main() {
	// The RFP math.
	req := procure.CheckpointBandwidth(600e12, 0.75, 6*sim.Minute)
	fmt.Printf("requirement: dump %.0f TB in %v -> %.2f TB/s\n", 0.75*600, 6*sim.Minute, req/1e12)
	fmt.Printf("random-I/O derated target: %.0f GB/s (drives deliver 20-25%% of peak when random)\n\n",
		procure.RandomDerate(1e12, 0.24)/1e9)

	// Simulate at 1/6 hardware scale: 3 SSUs, 168 OSTs, 1,680 drives.
	scale := 6
	c := center.New(center.Config{Scale: scale, Namespaces: 1, Seed: 7})
	fs := c.Namespaces[0]
	fmt.Printf("simulated namespace: %d SSUs, %d OSTs, %d drives\n",
		len(fs.Ctrls), len(fs.OSTs), len(fs.OSTs)*10)

	// 512 writer aggregates, each standing for ~36 real ranks, dump
	// proportional memory.
	res := workload.RunCheckpoint(fs, workload.CheckpointConfig{
		Writers:      512,
		BytesPerRank: 128 << 20,
		TransferSize: 1 << 20,
	})
	fmt.Printf("checkpoint: %.1f GiB in %v -> %.1f GB/s at 1/%d scale\n",
		float64(res.BytesMoved)/(1<<30), res.Duration, res.AggregateBps/1e9, scale)
	fmt.Printf("full-system extrapolation: %.0f GB/s sequential class\n",
		res.AggregateBps*float64(scale)/1e9)

	full := res.AggregateBps * float64(scale)
	window := sim.FromSeconds(0.75 * 600e12 / full)
	fmt.Printf("time to dump 75%% of Titan memory at that rate: %v (target: 6 min)\n", window)
}
