// Operations: a day in the life of the Spider operations team. Runs the
// monitoring stack (checks, controller pollers, event coalescing), a
// background disk-failure process with automatic rebuilds, production
// I/O, and the nightly purge — all on one engine, printing the
// operational picture at the end. A second act hands the center to the
// chaos campaign engine for a day of correlated, cascading faults and
// prints the availability ledger it leaves behind.
package main

import (
	"fmt"

	"spiderfs/internal/chaos"
	"spiderfs/internal/failure"
	"spiderfs/internal/lustre"
	"spiderfs/internal/monitor"
	"spiderfs/internal/purge"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/tools"
	"spiderfs/internal/topology"
)

func main() {
	eng := sim.NewEngine()
	src := rng.New(2026)
	fs := lustre.Build(eng, lustre.TestNamespace(), src.Split("fs"))

	// Monitoring: standard checks + controller pollers + coalescer.
	sched := monitor.NewScheduler(eng)
	for _, c := range monitor.StandardChecks(fs) {
		sched.Add(c)
	}
	sched.Start()
	store := monitor.NewStore(100000)
	poller := monitor.NewControllerPoller(eng, store, fs.Ctrls, 10*sim.Second)
	coal := monitor.NewCoalescer(30 * sim.Second)

	// Fault injection: an aggressive failure rate so a day shows action,
	// plus one cable flap.
	inj := failure.NewInjector(eng, fsGroups(fs), failure.DiskFailureConfig{
		AnnualFailureRate: 40, ReplaceDelay: 30 * sim.Minute,
	}, src.Split("faults"))
	inj.Events = coal.Ingest
	inj.Start()
	failure.CableFlap(eng, coal.Ingest, "ib-leaf2-port14", 6*sim.Hour)

	// Production: periodic job output + nightly purge (1-day retention
	// so a single simulated day shows deletions).
	client := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	hour := 0
	var produce func()
	produce = func() {
		if hour >= 20 {
			return
		}
		tools.Populate(fs, tools.TreeSpec{Dirs: 1, FilesPerDir: 10, FileSize: 32 << 20,
			Root: fmt.Sprintf("job-h%02d", hour)})
		fs.Create(fmt.Sprintf("live/h%02d", hour), 2, func(file *lustre.File) {
			client.WriteStream(file, 64<<20, 1<<20, nil)
		})
		hour++
		eng.After(sim.Hour, produce)
	}
	produce()

	purger := purge.New(fs, purge.Policy{MaxAge: 8 * sim.Hour, Interval: 6 * sim.Hour, Concurrency: 8})
	purger.Start()

	// Run one simulated day.
	eng.RunUntil(24 * sim.Hour)
	inj.Stop()
	purger.Stop()
	poller.Stop()
	sched.Stop()
	eng.Run()
	coal.Close()

	fmt.Println("=== operations summary after 24 simulated hours ===")
	fmt.Printf("disk failures: %d (rebuilds started: %d, data loss events: %d)\n",
		inj.Failures, inj.Rebuilds, inj.DataLoss)
	fmt.Printf("monitoring: %d check executions, %d alerts, worst level now: %v\n",
		sched.Runs, len(sched.Alerts), sched.WorstLevel())
	for _, a := range sched.Alerts {
		fmt.Printf("  alert at %v: %s %v->%v (%s)\n", a.At, a.Check, a.From, a.To, a.Message)
	}
	fmt.Printf("incidents (coalesced): %d\n", len(coal.Incidents))
	for _, inc := range coal.Incidents {
		fmt.Printf("  [%v - %v] root=%v components=%v events=%d\n",
			inc.Start, inc.End, inc.RootClass, inc.Components, len(inc.Events))
	}
	fmt.Printf("purge: %d sweeps, %d files deleted, %.1f GiB freed\n",
		len(purger.Sweeps), purger.Deleted, float64(purger.Freed)/(1<<30))
	fmt.Printf("namespace: %d files resident, %.2f%% full\n", fs.NumFiles, fs.Fill()*100)
	bps := store.Series("ctrl0.write_bps")
	var peak float64
	for _, p := range bps.Points {
		if p.Value > peak {
			peak = p.Value
		}
	}
	fmt.Printf("controller poller: %d samples, peak write rate %.1f MB/s\n",
		poller.Samples, peak/1e6)

	// Act two: a bad day. The chaos campaign engine drives a full day of
	// correlated faults — disk failures during rebuilds, OSS crashes with
	// imperative-recovery failover, router-death bursts absorbed by ARN,
	// cable degradation, an MDS outage, an enclosure loss — against a
	// fresh small center and reports the availability ledger. A sampled
	// tracer rides along (1-in-8 probe requests), so afterwards the
	// critical-path extractor can say which layer the faults actually
	// pushed the bound into.
	fmt.Println()
	fmt.Println("=== chaos campaign: one simulated day of correlated faults ===")
	ccfg := chaos.QuickConfig(2026)
	tr := spantrace.New(rng.New(2026^0x5a9), 8)
	ccfg.Tracer = tr
	rep := chaos.Run(ccfg)
	fmt.Print(rep)
	fmt.Println("timeline (first faults):")
	for i, line := range rep.Timeline {
		if i == 8 {
			break
		}
		fmt.Printf("  %s\n", line)
	}
	crit := spantrace.CriticalPaths(tr.Spans())
	fmt.Printf("span tracing: %d requests sampled during the campaign; top critical-path layers:\n",
		crit.Requests)
	for _, l := range crit.Top(3) {
		fmt.Printf("  %-8s bounded %d requests (mean share %.0f%%)\n",
			l, crit.Bounded[l], crit.Share[l]*100)
	}
}

func fsGroups(fs *lustre.FS) []*raid.Group {
	out := make([]*raid.Group, 0, len(fs.OSTs))
	for _, o := range fs.OSTs {
		out = append(out, o.Group())
	}
	return out
}
