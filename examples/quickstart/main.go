// Quickstart: build a miniature Spider II namespace, write a striped
// file through a client, read it back, and print what the storage stack
// observed. This exercises the whole public surface in ~60 lines.
package main

import (
	"fmt"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

func main() {
	// Every model runs on a deterministic discrete-event engine.
	eng := sim.NewEngine()

	// Build a small namespace: 1 SSU controller, 4 RAID-6 (8+2) OSTs,
	// 2 OSSes, 1 MDS.
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(42))
	fmt.Printf("namespace %q: %d OSTs, %d OSSes, %.1f TiB capacity\n",
		fs.Name, len(fs.OSTs), len(fs.OSSes), float64(fs.TotalCapacity())/(1<<40))

	// A compute client (null transport: infinite network).
	client := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})

	// Create a file striped over all 4 OSTs and write 256 MiB in 1 MiB
	// RPCs (the stripe-aligned best practice).
	var file *lustre.File
	fs.Create("proj/run42/checkpoint.h5", 4, func(f *lustre.File) { file = f })
	eng.Run()

	start := eng.Now()
	client.WriteStream(file, 256<<20, 1<<20, nil)
	eng.Run()
	writeTime := eng.Now() - start
	fmt.Printf("wrote 256 MiB in %v (%.0f MB/s)\n",
		writeTime, 256.0*(1<<20)/1e6/writeTime.Seconds())

	// Read half of it back, streaming.
	start = eng.Now()
	client.ReadStream(file, 128<<20, 1<<20, false, nil)
	eng.Run()
	readTime := eng.Now() - start
	fmt.Printf("read  128 MiB in %v (%.0f MB/s)\n",
		readTime, 128.0*(1<<20)/1e6/readTime.Seconds())

	// What the stack saw.
	fmt.Printf("\nper-stripe object sizes: ")
	for _, obj := range file.Objects {
		fmt.Printf("%d MiB ", obj.Size>>20)
	}
	fmt.Println()
	ctrl := fs.Ctrls[0]
	fmt.Printf("controller: %d RPCs, %.1f%% busy, peak dirty %d MiB\n",
		ctrl.RPCs, ctrl.Utilization()*100, ctrl.PeakDirty>>20)
	fmt.Printf("MDS: %d creates, %d lookups\n", fs.MDS.Creates, fs.MDS.Lookups)
	g := fs.OSTs[file.OSTIndices[0]].Group()
	fmt.Printf("OST0 RAID: %d full-stripe writes, %d partial (RMW)\n",
		g.FullStripeWrite, g.PartialWrite)
}
