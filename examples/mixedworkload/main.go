// Mixedworkload: the data-centric tension of §II. Checkpoint bursts and
// latency-sensitive analytics share one namespace; run them in
// isolation and mixed, and watch the analytics latency degrade under
// the competing write burst — the tradeoff Lesson 1 is about.
package main

import (
	"fmt"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
	"spiderfs/internal/workload"
)

func analyticsLatency(withCheckpoint bool) workload.AnalyticsResult {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(11))

	if withCheckpoint {
		// A simulation enters its checkpoint phase on the same namespace.
		writer := lustre.NewClient(500, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
		var ck *lustre.File
		fs.Create("sim/ckpt", 4, func(f *lustre.File) { ck = f })
		eng.Run()
		writer.WriteUntil(ck, eng.Now()+30*sim.Second, 1<<20, nil)
	}

	return workload.RunAnalytics(fs, workload.AnalyticsConfig{
		Readers:     4,
		Requests:    50,
		RequestSize: 64 << 10,
	})
}

func main() {
	quiet := analyticsLatency(false)
	mixed := analyticsLatency(true)

	fmt.Println("analytics read latency (random 64 KiB requests):")
	fmt.Printf("  quiet system:          mean %6.2f ms, p95 %6.2f ms\n",
		quiet.Latency.Mean, quiet.P95Millis)
	fmt.Printf("  vs checkpoint traffic: mean %6.2f ms, p95 %6.2f ms\n",
		mixed.Latency.Mean, mixed.P95Millis)
	fmt.Printf("\ninterference: %.1fx mean latency — the §II mixed-workload contention\n",
		mixed.Latency.Mean/quiet.Latency.Mean)
	fmt.Println("(machine-exclusive systems avoid this by paying for data movement instead)")
}
