// Placement: the libPIO story (§VI-A). A namespace is under background
// contention on part of its hardware; a job placed by the default
// round-robin allocator lands on the hot components while the
// load-aware balancer steers around them — the >70% synthetic gain the
// paper reports, via a "30-line" API swap (here: one call).
package main

import (
	"fmt"

	"spiderfs/internal/lustre"
	"spiderfs/internal/placement"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

func run(balanced bool) float64 {
	eng := sim.NewEngine()
	p := lustre.TestNamespace()
	p.NumSSU = 2
	p.OSTsPerSSU = 4
	p.OSSPerSSU = 2
	fs := lustre.Build(eng, p, rng.New(99))

	// Background contention: three streams per OST hammer SSU 0.
	noise := lustre.NewClient(1000, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	var noiseFiles []*lustre.File
	for i := 0; i < 12; i++ {
		fs.CreateOn(fmt.Sprintf("noise/%d", i), []int{i % 4}, func(f *lustre.File) {
			noiseFiles = append(noiseFiles, f)
		})
	}
	eng.Run()
	for _, f := range noiseFiles {
		noise.WriteUntil(f, eng.Now()+5*sim.Second, 1<<20, nil)
	}
	eng.RunUntil(eng.Now() + 50*sim.Millisecond)

	// Our job: with libPIO (balanced) or with a load-blind placement.
	var job *lustre.File
	if balanced {
		b := placement.New(fs, placement.Weights{})
		b.CreateBalanced("job/out", 2, func(f *lustre.File) { job = f })
	} else {
		fs.CreateOn("job/out", []int{0, 1}, func(f *lustre.File) { job = f })
	}
	eng.RunUntil(eng.Now() + 10*sim.Millisecond)

	client := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	start := eng.Now()
	total := int64(64 << 20)
	var doneAt sim.Time
	client.WriteStream(job, total, 1<<20, func(int64) { doneAt = eng.Now() })
	eng.Run()
	bps := float64(total) / (doneAt - start).Seconds()
	where := "default placement (hot OSTs)"
	if balanced {
		where = fmt.Sprintf("libPIO placement -> OSTs %v", job.OSTIndices)
	}
	fmt.Printf("%-40s %8.1f MB/s\n", where, bps/1e6)
	return bps
}

func main() {
	fmt.Println("64 MiB job write under background contention on half the system:")
	def := run(false)
	bal := run(true)
	fmt.Printf("\nimprovement: %.0f%% (paper: >70%% synthetic per-job gain under contention)\n",
		(bal/def-1)*100)
}
