package iosi

import (
	"math"
	"testing"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// synthSeries builds a log with bursts of height high (bytes/s) and
// duration burstLen samples every period samples, over noise floor.
func synthSeries(interval sim.Time, samples int, period, burstLen int, high, noise float64, src *rng.Source) Series {
	s := Series{Interval: interval}
	for i := 0; i < samples; i++ {
		v := noise * src.Float64()
		if period > 0 && i%period < burstLen {
			v += high
		}
		s.Samples = append(s.Samples, v)
	}
	return s
}

func TestDetectBurstsCountsEpisodes(t *testing.T) {
	src := rng.New(1)
	s := synthSeries(sim.Second, 100, 20, 3, 100e9, 1e9, src)
	bursts := DetectBursts(s, 5)
	if len(bursts) != 5 {
		t.Fatalf("detected %d bursts, want 5", len(bursts))
	}
	for _, b := range bursts {
		if b.Duration != 3*sim.Second {
			t.Fatalf("burst duration %v, want 3s", b.Duration)
		}
		// Volume ~ 100 GB/s * 3 s.
		if b.Volume < 290e9 || b.Volume > 320e9 {
			t.Fatalf("burst volume %g", b.Volume)
		}
	}
}

func TestDetectBurstsEmptyAndFlat(t *testing.T) {
	if got := DetectBursts(Series{}, 3); got != nil {
		t.Fatal("empty series should have no bursts")
	}
	flat := Series{Interval: sim.Second, Samples: []float64{5, 5, 5, 5}}
	if got := DetectBursts(flat, 3); len(got) != 0 {
		t.Fatalf("flat series produced %d bursts", len(got))
	}
}

func TestExtractRunRecoversPeriod(t *testing.T) {
	src := rng.New(2)
	s := synthSeries(sim.Second, 200, 25, 4, 80e9, 2e9, src)
	sig := ExtractRun(s, 5)
	if sig.BurstsPerRun != 8 {
		t.Fatalf("bursts = %d, want 8", sig.BurstsPerRun)
	}
	if math.Abs(sig.Period.Seconds()-25) > 1 {
		t.Fatalf("period = %v, want 25s", sig.Period)
	}
	if math.Abs(sig.BurstDuration.Seconds()-4) > 1 {
		t.Fatalf("burst duration = %v, want 4s", sig.BurstDuration)
	}
}

func TestExtractCrossRunCancelsNoise(t *testing.T) {
	src := rng.New(3)
	runs := make([]Series, 5)
	for i := range runs {
		// Same app (period 30, burst 5, 60 GB/s) under varying noise.
		runs[i] = synthSeries(sim.Second, 300, 30, 5, 60e9, float64(i+1)*3e9, src.Split("run"))
	}
	sig := Extract(runs, 5)
	if math.Abs(sig.Period.Seconds()-30) > 2 {
		t.Fatalf("period = %v", sig.Period)
	}
	if sig.Confidence < 0.7 {
		t.Fatalf("confidence = %f, want high for consistent runs", sig.Confidence)
	}
	want := 60e9 * 5
	if math.Abs(sig.BurstVolume-want)/want > 0.15 {
		t.Fatalf("burst volume %g, want ~%g", sig.BurstVolume, want)
	}
}

func TestExtractEmptyRuns(t *testing.T) {
	if sig := Extract(nil, 3); sig.BurstsPerRun != 0 {
		t.Fatal("no runs should give empty signature")
	}
	flat := Series{Interval: sim.Second, Samples: make([]float64, 50)}
	if sig := Extract([]Series{flat}, 3); sig.Confidence != 0 {
		t.Fatalf("flat runs gave confidence %f", sig.Confidence)
	}
}

func TestSimilarityMatchesSameApp(t *testing.T) {
	src := rng.New(4)
	a := ExtractRun(synthSeries(sim.Second, 200, 25, 4, 80e9, 2e9, src.Split("a")), 5)
	b := ExtractRun(synthSeries(sim.Second, 200, 25, 4, 80e9, 4e9, src.Split("b")), 5)
	other := ExtractRun(synthSeries(sim.Second, 200, 60, 10, 20e9, 2e9, src.Split("c")), 5)
	same := Similarity(a, b)
	diff := Similarity(a, other)
	if same < 0.8 {
		t.Fatalf("same-app similarity = %f", same)
	}
	if diff >= same {
		t.Fatalf("different app (%f) matched better than same app (%f)", diff, same)
	}
}

func TestSamplerCapturesCheckpointBursts(t *testing.T) {
	// End-to-end: run a periodically checkpointing app on a live
	// namespace, sample server-side throughput, and recover the period.
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(5))
	client := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	var file *lustre.File
	fs.Create("app/ckpt", 4, func(f *lustre.File) { file = f })
	eng.Run()

	sampler := NewSampler(fs, 100*sim.Millisecond)
	// App: burst of 64 MiB every 2 simulated seconds, 8 checkpoints.
	var burst func(n int)
	burst = func(n int) {
		if n == 0 {
			return
		}
		client.WriteStream(file, 64<<20, 1<<20, func(int64) {
			eng.After(2*sim.Second, func() { burst(n - 1) })
		})
	}
	burst(8)
	// The sampler keeps a tick pending, so drive the clock explicitly:
	// 8 checkpoints at ~2 s spacing finish well inside 30 s.
	eng.RunUntil(30 * sim.Second)
	series := sampler.Stop()
	eng.Run()
	sig := ExtractRun(series, 4)
	if sig.BurstsPerRun < 6 || sig.BurstsPerRun > 10 {
		t.Fatalf("detected %d bursts of ~8 checkpoints", sig.BurstsPerRun)
	}
	if sig.Period < 1500*sim.Millisecond || sig.Period > 3*sim.Second {
		t.Fatalf("period = %v, want ~2s", sig.Period)
	}
	// Burst volume should be in the vicinity of 64 MiB.
	if sig.BurstVolume < 30e6 || sig.BurstVolume > 100e6 {
		t.Fatalf("burst volume = %g, want ~67e6", sig.BurstVolume)
	}
}
