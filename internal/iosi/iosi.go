// Package iosi implements the I/O Signature Identifier of §VI-B: it
// characterizes per-application I/O behaviour from server-side
// throughput logs — no client tracing, no extra load on the storage
// system — by detecting bursts, recovering the burst period, and
// intersecting the pattern across multiple runs of the same
// application.
package iosi

import (
	"math"
	"sort"

	"spiderfs/internal/lustre"
	"spiderfs/internal/sim"
	"spiderfs/internal/stats"
)

// Series is a server-side throughput log: bytes/second sampled at a
// fixed interval.
type Series struct {
	Interval sim.Time
	Samples  []float64
}

// Duration returns the covered time span.
func (s Series) Duration() sim.Time { return sim.Time(len(s.Samples)) * s.Interval }

// Sampler collects a Series from a live namespace by sampling the delta
// of bytes written to all OSTs each interval — exactly what the DDN
// controller pollers gave OLCF.
type Sampler struct {
	fs       *lustre.FS
	interval sim.Time
	series   Series
	last     int64
	stop     bool
	pending  *sim.Event
}

// NewSampler starts sampling immediately and runs until Stop. The
// sampler keeps one event pending, so call Stop before expecting the
// engine's queue to drain.
func NewSampler(fs *lustre.FS, interval sim.Time) *Sampler {
	s := &Sampler{fs: fs, interval: interval, series: Series{Interval: interval}}
	s.last = s.total()
	s.schedule()
	return s
}

func (s *Sampler) total() int64 {
	var t int64
	for _, o := range s.fs.OSTs {
		t += o.BytesWritten
	}
	return t
}

func (s *Sampler) schedule() {
	s.pending = s.fs.Engine().After(s.interval, func() {
		if s.stop {
			return
		}
		cur := s.total()
		s.series.Samples = append(s.series.Samples, float64(cur-s.last)/s.interval.Seconds())
		s.last = cur
		s.schedule()
	})
}

// Stop ends sampling, cancels the pending tick, and returns the
// collected series.
func (s *Sampler) Stop() Series {
	s.stop = true
	if s.pending != nil {
		s.pending.Cancel()
		s.pending = nil
	}
	return s.series
}

// Burst is one contiguous above-threshold episode in a log.
type Burst struct {
	Start    sim.Time
	Duration sim.Time
	Volume   float64 // bytes
}

// DetectBursts finds episodes where throughput exceeds
// median + k*spread (a robust threshold; the noisy floor of a shared
// file system makes a fixed threshold useless).
func DetectBursts(s Series, k float64) []Burst {
	if len(s.Samples) == 0 {
		return nil
	}
	sorted := append([]float64(nil), s.Samples...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	// Median absolute deviation as the spread estimate.
	devs := make([]float64, len(sorted))
	for i, v := range sorted {
		devs[i] = math.Abs(v - median)
	}
	sort.Float64s(devs)
	mad := devs[len(devs)/2]
	threshold := median + k*mad
	if mad == 0 {
		threshold = median * 1.5
	}

	var bursts []Burst
	inBurst := false
	var cur Burst
	for i, v := range s.Samples {
		t := sim.Time(i) * s.Interval
		if v > threshold {
			if !inBurst {
				inBurst = true
				cur = Burst{Start: t}
			}
			cur.Duration += s.Interval
			cur.Volume += v * s.Interval.Seconds()
		} else if inBurst {
			inBurst = false
			bursts = append(bursts, cur)
		}
	}
	if inBurst {
		bursts = append(bursts, cur)
	}
	return bursts
}

// Signature is an application's extracted I/O fingerprint.
type Signature struct {
	Period        sim.Time // burst spacing (0 if aperiodic)
	BurstVolume   float64  // median bytes per burst
	BurstDuration sim.Time // median burst length
	BurstsPerRun  int
	Confidence    float64 // cross-run agreement in [0, 1]
}

// ExtractRun summarizes one run's log.
func ExtractRun(s Series, k float64) Signature {
	bursts := DetectBursts(s, k)
	sig := Signature{BurstsPerRun: len(bursts)}
	if len(bursts) == 0 {
		return sig
	}
	vols := make([]float64, len(bursts))
	durs := make([]float64, len(bursts))
	for i, b := range bursts {
		vols[i] = b.Volume
		durs[i] = b.Duration.Seconds()
	}
	sig.BurstVolume = stats.Percentile(vols, 0.5)
	sig.BurstDuration = sim.FromSeconds(stats.Percentile(durs, 0.5))
	if len(bursts) >= 2 {
		gaps := make([]float64, 0, len(bursts)-1)
		for i := 1; i < len(bursts); i++ {
			gaps = append(gaps, (bursts[i].Start - bursts[i-1].Start).Seconds())
		}
		sig.Period = sim.FromSeconds(stats.Percentile(gaps, 0.5))
	}
	return sig
}

// Extract intersects multiple runs of the same application: the common
// pattern across runs is the application's signature; run-specific noise
// cancels. Confidence reflects how tightly the runs agree.
func Extract(runs []Series, k float64) Signature {
	if len(runs) == 0 {
		return Signature{}
	}
	sigs := make([]Signature, len(runs))
	periods := make([]float64, 0, len(runs))
	vols := make([]float64, 0, len(runs))
	durs := make([]float64, 0, len(runs))
	counts := make([]float64, 0, len(runs))
	for i, r := range runs {
		sigs[i] = ExtractRun(r, k)
		if sigs[i].BurstsPerRun > 0 {
			periods = append(periods, sigs[i].Period.Seconds())
			vols = append(vols, sigs[i].BurstVolume)
			durs = append(durs, sigs[i].BurstDuration.Seconds())
			counts = append(counts, float64(sigs[i].BurstsPerRun))
		}
	}
	if len(vols) == 0 {
		return Signature{}
	}
	out := Signature{
		Period:        sim.FromSeconds(stats.Percentile(periods, 0.5)),
		BurstVolume:   stats.Percentile(vols, 0.5),
		BurstDuration: sim.FromSeconds(stats.Percentile(durs, 0.5)),
		BurstsPerRun:  int(stats.Percentile(counts, 0.5) + 0.5),
	}
	// Confidence: 1 - normalized spread of per-run burst volumes.
	var vs stats.Summary
	for _, v := range vols {
		vs.Add(v)
	}
	cov := vs.CoV()
	conf := 1 - cov
	if conf < 0 {
		conf = 0
	}
	out.Confidence = conf * float64(len(vols)) / float64(len(runs))
	return out
}

// Similarity scores how close two signatures are in [0, 1]; used to
// match an unknown run against a library of known applications.
func Similarity(a, b Signature) float64 {
	if a.BurstVolume == 0 || b.BurstVolume == 0 {
		return 0
	}
	ratio := func(x, y float64) float64 {
		if x == 0 && y == 0 {
			return 1
		}
		if x == 0 || y == 0 {
			return 0
		}
		if x > y {
			x, y = y, x
		}
		return x / y
	}
	score := ratio(a.BurstVolume, b.BurstVolume) *
		ratio(a.Period.Seconds(), b.Period.Seconds()) *
		ratio(float64(a.BurstsPerRun), float64(b.BurstsPerRun))
	return math.Cbrt(score)
}
