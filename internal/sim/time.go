// Package sim provides a deterministic discrete-event simulation engine
// used as the substrate for the Spider parallel file system models.
//
// The engine is event-driven rather than goroutine-per-entity: all model
// code runs on the caller's goroutine inside event callbacks, which makes
// runs bit-for-bit reproducible and keeps scenarios with tens of
// thousands of entities tractable on a single core.
package sim

import "fmt"

// Time is a point on the simulation clock, in nanoseconds since the start
// of the run. It is also used for durations; the zero value is the start
// of simulated time.
type Time int64

// Common durations, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
	Day              = 24 * Hour
)

// MaxTime is the farthest representable instant (~292 simulated years).
// RunFor saturates here instead of wrapping when now + d overflows.
const MaxTime Time = 1<<63 - 1

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts a floating-point number of seconds to a Time.
// Negative and non-finite inputs are clamped to zero.
func FromSeconds(s float64) Time {
	if !(s > 0) {
		return 0
	}
	return Time(s * float64(Second))
}

// String renders the time with an adaptive unit, e.g. "1.500ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t < Minute:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t < Hour:
		return fmt.Sprintf("%.2fmin", float64(t)/float64(Minute))
	default:
		return fmt.Sprintf("%.2fh", float64(t)/float64(Hour))
	}
}
