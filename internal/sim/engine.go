package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. The zero Event is invalid; events are
// created by Engine.At and Engine.After. An Event may be canceled before
// it fires; cancellation is cheap (lazy deletion from the heap).
type Event struct {
	t        Time
	seq      uint64
	fn       func()
	canceled bool
	fired    bool
}

// Time returns when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.t }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Cancel reports whether the event was
// still pending.
func (e *Event) Cancel() bool {
	if e == nil || e.fired || e.canceled {
		return false
	}
	e.canceled = true
	e.fn = nil
	return true
}

// Pending reports whether the event is still waiting to fire.
func (e *Event) Pending() bool { return e != nil && !e.fired && !e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation executive. Events scheduled for
// the same instant fire in scheduling order (FIFO tie-break), which makes
// runs deterministic.
//
// Engine is not safe for concurrent use; all model code must run on the
// goroutine driving Run/Step.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	fired   uint64
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled (including
// canceled events not yet reaped).
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{t: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

// After schedules fn to run d after the current time. Negative d is
// treated as zero.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes the current Run/RunUntil return after the in-flight event
// completes. Pending events remain scheduled.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock to its
// timestamp. It reports whether an event was executed (false when the
// queue is empty).
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.t
		ev.fired = true
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (even if the queue drained earlier).
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		next := e.peek()
		if next == nil || next.t > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor runs the simulation for a duration d of simulated time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

func (e *Engine) peek() *Event {
	for len(e.heap) > 0 && e.heap[0].canceled {
		heap.Pop(&e.heap)
	}
	if len(e.heap) == 0 {
		return nil
	}
	return e.heap[0]
}

// NextEventTime returns the timestamp of the next pending event and true,
// or zero and false if the queue is empty.
func (e *Engine) NextEventTime() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.t, true
}
