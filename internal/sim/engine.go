package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. The zero Event is invalid; events are
// created by Engine.At and Engine.After. An Event may be canceled before
// it fires; cancellation is cheap (lazy deletion from the heap).
type Event struct {
	t        Time
	seq      uint64
	fn       func()
	eng      *Engine
	canceled bool
	fired    bool
	idx      int // position in the heap, -1 once popped
}

// Time returns when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.t }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Cancel reports whether the event was
// still pending. The canceled event stays in the heap as a tombstone
// (lazy deletion); the engine's live-event accounting and tombstone
// reaping keep Pending and heap size honest regardless.
func (e *Event) Cancel() bool {
	if e == nil || e.fired || e.canceled {
		return false
	}
	e.canceled = true
	e.fn = nil
	if e.eng != nil {
		e.eng.live--
		e.eng.tomb++
		e.eng.maybeReap()
	}
	return true
}

// Pending reports whether the event is still waiting to fire.
func (e *Event) Pending() bool { return e != nil && !e.fired && !e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation executive. Events scheduled for
// the same instant fire in scheduling order (FIFO tie-break), which makes
// runs deterministic — provided model code schedules events in a
// deterministic order (in particular, never from Go map iteration; see
// the determinism contract in DESIGN.md).
//
// Engine is not safe for concurrent use; all model code must run on the
// goroutine driving Run/Step. Multi-engine harnesses (internal/shard)
// confine each engine to one worker per synchronization quantum.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	fired   uint64
	live    int // scheduled, uncanceled, unfired events in the heap
	tomb    int // canceled tombstones still occupying heap slots
	stopped bool
	trace   func(at Time, seq uint64)
}

// SetTrace installs a hook that observes every fired event (its
// timestamp and scheduling sequence number) just before the callback
// runs. Two runs of the same model are bit-identical exactly when their
// traces are: the sequence number captures scheduling order, so any
// map-ordered or otherwise nondeterministic scheduling shows up as a
// trace divergence even when the fire times happen to agree. Pass nil
// to remove the hook.
func (e *Engine) SetTrace(fn func(at Time, seq uint64)) { e.trace = fn }

// TraceHash folds an event trace into one comparable fingerprint
// (FNV-1a over the (time, seq) stream). Feed Observe to SetTrace and
// compare Sum values across runs to audit determinism.
type TraceHash struct {
	h      uint64
	events uint64
}

// NewTraceHash returns an empty trace fingerprint.
func NewTraceHash() *TraceHash { return &TraceHash{h: 14695981039346656037} }

// Observe folds one fired event into the fingerprint.
func (t *TraceHash) Observe(at Time, seq uint64) {
	t.events++
	for _, v := range [2]uint64{uint64(at), seq} {
		for i := 0; i < 8; i++ {
			t.h ^= (v >> (8 * i)) & 0xff
			t.h *= 1099511628211
		}
	}
}

// Sum returns the fingerprint of everything observed so far.
func (t *TraceHash) Sum() uint64 { return t.h }

// Events returns how many fired events were observed.
func (t *TraceHash) Events() uint64 { return t.events }

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live events still scheduled. Canceled
// tombstones awaiting lazy deletion are not counted, so Pending() == 0
// means the engine truly has no work — the quiescence test multi-engine
// barriers rely on ("this shard is idle").
func (e *Engine) Pending() int { return e.live }

// reapFloor is the heap size below which tombstone reaping is not worth
// the heapify; lazy deletion handles small heaps fine.
const reapFloor = 64

// maybeReap compacts the heap when canceled tombstones outnumber live
// events and the heap is large enough to matter. Compaction preserves
// each surviving event's (time, seq) key, so the pop order — and with
// it every trace fingerprint — is unchanged.
func (e *Engine) maybeReap() {
	if e.tomb <= e.live || len(e.heap) < reapFloor {
		return
	}
	kept := e.heap[:0]
	for _, ev := range e.heap {
		if ev.canceled {
			ev.idx = -1
			continue
		}
		ev.idx = len(kept)
		kept = append(kept, ev)
	}
	// Zero the tail so dropped tombstones don't pin their callbacks.
	for i := len(kept); i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = kept
	e.tomb = 0
	heap.Init(&e.heap)
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now)) //simlint:allow no-library-panic causality assertion: scheduling into the past is a model bug
	}
	ev := &Event{t: t, seq: e.seq, fn: fn, eng: e}
	e.seq++
	e.live++
	heap.Push(&e.heap, ev)
	return ev
}

// Reschedule moves a still-pending event to absolute time t, reusing
// its allocation and callback. The event receives a fresh sequence
// number, so FIFO tie-breaking behaves exactly as if the event had been
// canceled and newly scheduled — but without allocating a replacement
// or leaving a canceled tombstone in the heap. It reports whether the
// move happened; a fired or canceled event is left untouched (schedule
// a new one instead). Like At, moving an event into the past panics.
func (e *Engine) Reschedule(ev *Event, t Time) bool {
	if !ev.Pending() || ev.idx < 0 {
		return false
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event at %v before now %v", t, e.now)) //simlint:allow no-library-panic causality assertion: scheduling into the past is a model bug
	}
	ev.t = t
	ev.seq = e.seq
	e.seq++
	heap.Fix(&e.heap, ev.idx)
	return true
}

// After schedules fn to run d after the current time. Negative d is
// treated as zero.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes the current Run/RunUntil return after the in-flight event
// completes. Pending events remain scheduled.
//
// Stop is sticky: the flag stays set until ClearStop is called, so a
// Stop issued between runs (e.g. by a barrier controller between
// synchronization quanta) makes the next Run/RunUntil return
// immediately instead of being silently lost. Resuming therefore takes
// an explicit ClearStop followed by Run/RunUntil.
func (e *Engine) Stop() { e.stopped = true }

// ClearStop re-arms the engine after a Stop. It is the only way the
// stopped flag is cleared; Run and RunUntil never reset it themselves.
func (e *Engine) ClearStop() { e.stopped = false }

// Stopped reports whether Stop has been called without a matching
// ClearStop. While true, Run and RunUntil return without firing events.
func (e *Engine) Stopped() bool { return e.stopped }

// Step executes the single next event, advancing the clock to its
// timestamp. It reports whether an event was executed (false when the
// queue is empty). Step ignores the stopped flag; it fires exactly one
// event regardless.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.canceled {
			e.tomb--
			continue
		}
		e.now = ev.t
		ev.fired = true
		fn := ev.fn
		ev.fn = nil
		e.live--
		e.fired++
		if e.trace != nil {
			e.trace(ev.t, ev.seq)
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. If the
// engine is already stopped (a sticky Stop not yet cleared), Run returns
// immediately without firing anything.
func (e *Engine) Run() {
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t. When the loop drains
// normally the clock then advances to t (even if the queue emptied
// earlier); when a Stop fires mid-run the clock stays at the last fired
// event, so unprocessed events are never left stranded behind the clock
// and a later resume continues exactly where the run halted.
func (e *Engine) RunUntil(t Time) {
	for !e.stopped {
		next := e.peek()
		if next == nil || next.t > t {
			// Drained normally: the window is fully processed.
			if e.now < t {
				e.now = t
			}
			return
		}
		e.Step()
	}
}

// RunFor runs the simulation for a duration d of simulated time.
// Negative d is treated as zero, and a horizon that would overflow the
// clock saturates at MaxTime instead of wrapping behind it (a wrapped
// horizon would strand every pending event "in the future" of a
// negative deadline and silently run nothing).
func (e *Engine) RunFor(d Time) {
	if d < 0 {
		d = 0
	}
	t := e.now + d
	if t < e.now { // overflow: saturate at the end of representable time
		t = MaxTime
	}
	e.RunUntil(t)
}

// Reset returns the engine to its just-constructed state: the clock at
// zero, no scheduled events, no canceled-tombstone debt, counters
// cleared, the sticky stop flag re-armed, and any trace hook removed.
// This is the warm-pool seam (internal/serve): a model stack built on a
// reset engine must reproduce a fresh engine's event-trace fingerprint
// bit for bit, because nothing — sequence numbers included — survives.
//
// Events still in the heap are tombstoned in place (callback and engine
// references dropped) so a stale *Event held by old model code becomes
// permanently non-pending and its Cancel a no-op, rather than a
// corruption of the next run's live/tomb accounting.
func (e *Engine) Reset() {
	for _, ev := range e.heap {
		ev.canceled = true
		ev.fn = nil
		ev.eng = nil
		ev.idx = -1
	}
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.live = 0
	e.tomb = 0
	e.stopped = false
	e.trace = nil
}

func (e *Engine) peek() *Event {
	for len(e.heap) > 0 && e.heap[0].canceled {
		heap.Pop(&e.heap)
		e.tomb--
	}
	if len(e.heap) == 0 {
		return nil
	}
	return e.heap[0]
}

// NextEventTime returns the timestamp of the next pending event and true,
// or zero and false if the queue is empty.
func (e *Engine) NextEventTime() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.t, true
}
