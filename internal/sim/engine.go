package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. The zero Event is invalid; events are
// created by Engine.At and Engine.After. An Event may be canceled before
// it fires; cancellation is cheap (lazy deletion from the heap).
type Event struct {
	t        Time
	seq      uint64
	fn       func()
	canceled bool
	fired    bool
	idx      int // position in the heap, -1 once popped
}

// Time returns when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.t }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Cancel reports whether the event was
// still pending.
func (e *Event) Cancel() bool {
	if e == nil || e.fired || e.canceled {
		return false
	}
	e.canceled = true
	e.fn = nil
	return true
}

// Pending reports whether the event is still waiting to fire.
func (e *Event) Pending() bool { return e != nil && !e.fired && !e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation executive. Events scheduled for
// the same instant fire in scheduling order (FIFO tie-break), which makes
// runs deterministic — provided model code schedules events in a
// deterministic order (in particular, never from Go map iteration; see
// the determinism contract in DESIGN.md).
//
// Engine is not safe for concurrent use; all model code must run on the
// goroutine driving Run/Step.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	fired   uint64
	stopped bool
	trace   func(at Time, seq uint64)
}

// SetTrace installs a hook that observes every fired event (its
// timestamp and scheduling sequence number) just before the callback
// runs. Two runs of the same model are bit-identical exactly when their
// traces are: the sequence number captures scheduling order, so any
// map-ordered or otherwise nondeterministic scheduling shows up as a
// trace divergence even when the fire times happen to agree. Pass nil
// to remove the hook.
func (e *Engine) SetTrace(fn func(at Time, seq uint64)) { e.trace = fn }

// TraceHash folds an event trace into one comparable fingerprint
// (FNV-1a over the (time, seq) stream). Feed Observe to SetTrace and
// compare Sum values across runs to audit determinism.
type TraceHash struct {
	h      uint64
	events uint64
}

// NewTraceHash returns an empty trace fingerprint.
func NewTraceHash() *TraceHash { return &TraceHash{h: 14695981039346656037} }

// Observe folds one fired event into the fingerprint.
func (t *TraceHash) Observe(at Time, seq uint64) {
	t.events++
	for _, v := range [2]uint64{uint64(at), seq} {
		for i := 0; i < 8; i++ {
			t.h ^= (v >> (8 * i)) & 0xff
			t.h *= 1099511628211
		}
	}
}

// Sum returns the fingerprint of everything observed so far.
func (t *TraceHash) Sum() uint64 { return t.h }

// Events returns how many fired events were observed.
func (t *TraceHash) Events() uint64 { return t.events }

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled (including
// canceled events not yet reaped).
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now)) //simlint:allow no-library-panic causality assertion: scheduling into the past is a model bug
	}
	ev := &Event{t: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

// Reschedule moves a still-pending event to absolute time t, reusing
// its allocation and callback. The event receives a fresh sequence
// number, so FIFO tie-breaking behaves exactly as if the event had been
// canceled and newly scheduled — but without allocating a replacement
// or leaving a canceled tombstone in the heap. It reports whether the
// move happened; a fired or canceled event is left untouched (schedule
// a new one instead). Like At, moving an event into the past panics.
func (e *Engine) Reschedule(ev *Event, t Time) bool {
	if !ev.Pending() || ev.idx < 0 {
		return false
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event at %v before now %v", t, e.now)) //simlint:allow no-library-panic causality assertion: scheduling into the past is a model bug
	}
	ev.t = t
	ev.seq = e.seq
	e.seq++
	heap.Fix(&e.heap, ev.idx)
	return true
}

// After schedules fn to run d after the current time. Negative d is
// treated as zero.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes the current Run/RunUntil return after the in-flight event
// completes. Pending events remain scheduled.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing the clock to its
// timestamp. It reports whether an event was executed (false when the
// queue is empty).
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.t
		ev.fired = true
		fn := ev.fn
		ev.fn = nil
		e.fired++
		if e.trace != nil {
			e.trace(ev.t, ev.seq)
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (even if the queue drained earlier).
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		next := e.peek()
		if next == nil || next.t > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor runs the simulation for a duration d of simulated time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

func (e *Engine) peek() *Event {
	for len(e.heap) > 0 && e.heap[0].canceled {
		heap.Pop(&e.heap)
	}
	if len(e.heap) == 0 {
		return nil
	}
	return e.heap[0]
}

// NextEventTime returns the timestamp of the next pending event and true,
// or zero and false if the queue is empty.
func (e *Engine) NextEventTime() (Time, bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.t, true
}
