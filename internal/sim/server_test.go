package sim

import "testing"

func TestServerFIFO(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "disk", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Submit(10, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v not FIFO", order)
		}
	}
	if e.Now() != 50 {
		t.Fatalf("5 serialized jobs of 10 should end at 50, got %v", e.Now())
	}
	if s.Completed != 5 {
		t.Fatalf("completed = %d", s.Completed)
	}
}

func TestServerParallelSlots(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "oss", 2)
	done := 0
	for i := 0; i < 4; i++ {
		s.Submit(10, func() { done++ })
	}
	e.Run()
	// 4 jobs, 2 slots, 10 each -> finishes at 20.
	if e.Now() != 20 {
		t.Fatalf("end time = %v, want 20", e.Now())
	}
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
}

func TestServerUtilization(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "u", 1)
	s.Submit(10, nil)
	e.RunUntil(20)
	u := s.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %f, want ~0.5", u)
	}
}

func TestServerWaitAccounting(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "w", 1)
	s.Submit(10, nil) // waits 0
	s.Submit(10, nil) // waits 10
	s.Submit(10, nil) // waits 20
	e.Run()
	if s.WaitTime != 30 {
		t.Fatalf("wait time = %v, want 30", s.WaitTime)
	}
	if s.MeanWait() != 10 {
		t.Fatalf("mean wait = %v, want 10", s.MeanWait())
	}
	if s.MaxQueue != 2 {
		t.Fatalf("max queue = %d, want 2", s.MaxQueue)
	}
}

func TestServerZeroService(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "z", 1)
	ran := false
	s.Submit(0, func() { ran = true })
	s.Submit(-5, nil) // clamped to zero
	e.Run()
	if !ran || s.Completed != 2 {
		t.Fatalf("ran=%v completed=%d", ran, s.Completed)
	}
}

func TestServerMinCapacity(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "c", 0)
	if s.Capacity() != 1 {
		t.Fatalf("capacity clamped to %d, want 1", s.Capacity())
	}
}

func TestBarrierFanOut(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "d", 4)
	fired := false
	var at Time
	b := NewBarrier(func() { fired = true; at = e.Now() })
	for i := 0; i < 4; i++ {
		b.Add(1)
		d := Time(10 * (i + 1))
		s.Submit(d, b.Done)
	}
	b.Arm()
	e.Run()
	if !fired {
		t.Fatal("barrier never fired")
	}
	if at != 40 {
		t.Fatalf("barrier fired at %v, want 40 (slowest leg)", at)
	}
}

func TestBarrierZeroJobs(t *testing.T) {
	fired := false
	b := NewBarrier(func() { fired = true })
	b.Arm()
	if !fired {
		t.Fatal("zero-job barrier should fire on Arm")
	}
}

func TestBarrierOverDonePanics(t *testing.T) {
	b := NewBarrier(nil)
	b.Add(1)
	b.Done()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on extra Done")
		}
	}()
	b.Done()
}
