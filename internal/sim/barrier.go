package sim

// Barrier collects completions from a fan-out of concurrent sub-jobs and
// invokes a callback when all of them have finished. It is the
// event-driven analogue of sync.WaitGroup for model code: a RAID write
// fans out to ten disks and completes when the slowest one does.
type Barrier struct {
	remaining int
	armed     bool
	done      func()
}

// NewBarrier returns a barrier that calls done when Arm has been called
// and all added sub-jobs have completed.
func NewBarrier(done func()) *Barrier { return &Barrier{done: done} }

// Add registers n more sub-jobs. It must not be called after the barrier
// has fired.
func (b *Barrier) Add(n int) { b.remaining += n }

// Done marks one sub-job complete.
func (b *Barrier) Done() {
	b.remaining--
	if b.remaining < 0 {
		panic("sim: Barrier.Done called more times than Add") //simlint:allow no-library-panic caller-contract assertion: Done without a matching Add
	}
	b.fireIfReady()
}

// Arm declares that no further Add calls will occur. If all sub-jobs have
// already completed (including the zero-job case), the callback fires
// immediately.
func (b *Barrier) Arm() {
	b.armed = true
	b.fireIfReady()
}

func (b *Barrier) fireIfReady() {
	if b.armed && b.remaining == 0 && b.done != nil {
		fn := b.done
		b.done = nil
		fn()
	}
}
