package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("got %v, want %v", got, want)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
		e.After(0, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 3 || fired[0] != 10 || fired[1] != 10 || fired[2] != 15 {
		t.Fatalf("fired = %v, want [10 10 15]", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(10, func() { ran = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	if !ev.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if ev.Cancel() {
		t.Fatal("second cancel should fail")
	}
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
}

func TestEngineScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v events, want 2", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("clock = %v, want 12", e.Now())
	}
	e.RunFor(8)
	if len(fired) != 4 || e.Now() != 20 {
		t.Fatalf("after RunFor: fired=%v now=%v", fired, e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	// Stop is sticky: without ClearStop the resume attempt is a no-op.
	e.Run()
	if count != 3 {
		t.Fatalf("run while stopped fired events: count = %d, want 3", count)
	}
	e.ClearStop()
	e.Run() // resume
	if count != 10 {
		t.Fatalf("after resume count = %d, want 10", count)
	}
}

// A Stop issued before Run/RunUntil (e.g. by a barrier controller
// between quanta) must not be silently lost.
func TestEngineStopStickyBeforeRun(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(5, func() { fired = true })
	e.Stop()
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	e.Run()
	e.RunUntil(10)
	if fired {
		t.Fatal("stopped engine fired an event")
	}
	if e.Now() != 0 {
		t.Fatalf("stopped engine moved its clock to %v", e.Now())
	}
	e.ClearStop()
	e.RunUntil(10)
	if !fired || e.Now() != 10 {
		t.Fatalf("after ClearStop: fired=%v now=%v, want true 10", fired, e.Now())
	}
}

// A Stop that fires mid-RunUntil must leave the clock at the last fired
// event, not teleport it to the target time past unprocessed events.
func TestEngineRunUntilStopKeepsClock(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() {
			fired = append(fired, at)
			if at == 10 {
				e.Stop()
			}
		})
	}
	e.RunUntil(30)
	if len(fired) != 2 || e.Now() != 10 {
		t.Fatalf("after stopped RunUntil: fired=%v now=%v, want [5 10] 10", fired, e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 (events at 15, 20 still live)", e.Pending())
	}
	e.ClearStop()
	e.RunUntil(30)
	if len(fired) != 4 || e.Now() != 30 {
		t.Fatalf("after resume: fired=%v now=%v, want 4 events and clock 30", fired, e.Now())
	}
}

// Pending counts live events only; canceled tombstones are excluded and
// eventually reaped so the heap cannot grow without bound.
func TestEnginePendingExcludesCanceled(t *testing.T) {
	e := NewEngine()
	keep := e.At(100, func() {})
	var canceled []*Event
	for i := 0; i < 1000; i++ {
		canceled = append(canceled, e.At(Time(i+1), func() {}))
	}
	if e.Pending() != 1001 {
		t.Fatalf("pending = %d, want 1001", e.Pending())
	}
	for _, ev := range canceled {
		ev.Cancel()
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d after cancels, want 1", e.Pending())
	}
	// Tombstones dominate (1000 canceled vs 1 live): reaping must have
	// compacted the heap rather than leaving lazy deletion to Run.
	if len(e.heap) > reapFloor {
		t.Fatalf("heap holds %d entries after cancels, want <= %d (reaped)", len(e.heap), reapFloor)
	}
	if !keep.Pending() {
		t.Fatal("live event lost by reaping")
	}
	e.Run()
	if e.Pending() != 0 || e.Now() != 100 {
		t.Fatalf("after run: pending=%d now=%v, want 0 100", e.Pending(), e.Now())
	}
}

// Reaping must not disturb pop order: interleave schedules and cancels
// so compaction happens mid-stream, then check the survivors fire in
// (time, seq) order with the same trace as an unreaped twin.
func TestEngineReapPreservesOrder(t *testing.T) {
	run := func(forceReap bool) (order []Time, trace uint64) {
		e := NewEngine()
		th := NewTraceHash()
		e.SetTrace(th.Observe)
		for i := 0; i < 500; i++ {
			at := Time((i * 37) % 251)
			e.At(at, func() { order = append(order, at) })
			if i%2 == 0 {
				e.At(at+1, func() {}).Cancel()
			}
		}
		if forceReap {
			// Cancel a burst so tombstones outnumber live events.
			var evs []*Event
			for i := 0; i < 2000; i++ {
				evs = append(evs, e.At(Time(i), func() {}))
			}
			for _, ev := range evs {
				ev.Cancel()
			}
		}
		e.Run()
		return order, th.Sum()
	}
	gotOrder, gotTrace := run(true)
	wantOrder, wantTrace := run(false)
	if gotTrace != wantTrace {
		t.Fatalf("trace diverged under reaping: %x vs %x", gotTrace, wantTrace)
	}
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("fired %d events, want %d", len(gotOrder), len(wantOrder))
	}
	for i := range gotOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("order[%d] = %v, want %v", i, gotOrder[i], wantOrder[i])
		}
	}
}

// Cancel and Reschedule invoked from inside a firing callback: the
// in-flight event has been popped (idx == -1) and marked fired, so both
// must refuse it, while other pending events stay fully mutable.
func TestEngineCancelRescheduleFromCallback(t *testing.T) {
	e := NewEngine()
	var self, other *Event
	otherRan := false
	movedRan := Time(0)
	moved := e.At(30, func() { movedRan = e.Now() })
	other = e.At(40, func() { otherRan = true })
	self = e.At(10, func() {
		if self.Cancel() {
			t.Error("Cancel succeeded on the firing event")
		}
		if e.Reschedule(self, 50) {
			t.Error("Reschedule succeeded on the firing event")
		}
		if !other.Cancel() {
			t.Error("Cancel failed on a pending event")
		}
		if !e.Reschedule(moved, 60) {
			t.Error("Reschedule failed on a pending event")
		}
		if e.Pending() != 1 {
			t.Errorf("pending = %d inside callback, want 1 (moved)", e.Pending())
		}
	})
	e.Run()
	if otherRan {
		t.Fatal("canceled event fired")
	}
	if movedRan != 60 {
		t.Fatalf("rescheduled event fired at %v, want 60", movedRan)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after run, want 0", e.Pending())
	}
}

func TestEngineNextEventTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty engine should have no next event")
	}
	ev := e.At(42, func() {})
	if tm, ok := e.NextEventTime(); !ok || tm != 42 {
		t.Fatalf("next = %v,%v want 42,true", tm, ok)
	}
	ev.Cancel()
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("canceled event should not be reported")
	}
}

// Property: events fire in nondecreasing timestamp order regardless of
// insertion order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, s := range stamps {
			at := Time(s)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(stamps) {
			return false
		}
		sorted := append([]Time(nil), fired...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved schedule/cancel keeps exactly the non-canceled
// events firing.
func TestEngineCancelProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		e := NewEngine()
		fired := map[int]bool{}
		var evs []*Event
		canceled := map[int]bool{}
		n := 200
		for i := 0; i < n; i++ {
			i := i
			evs = append(evs, e.At(Time(rnd.Intn(1000)), func() { fired[i] = true }))
		}
		for i := 0; i < n/3; i++ {
			k := rnd.Intn(n)
			if evs[k].Cancel() {
				canceled[k] = true
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			if canceled[i] && fired[i] {
				t.Fatalf("canceled event %d fired", i)
			}
			if !canceled[i] && !fired[i] {
				t.Fatalf("live event %d did not fire", i)
			}
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
		{90 * Second, "1.50min"},
		{3 * Hour, "3.00h"},
		{-2 * Second, "-2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromSeconds(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if FromSeconds(-3) != 0 {
		t.Fatal("negative seconds should clamp to 0")
	}
}

// runTracedModel drives a small model with cancels, ties, and nested
// scheduling on e and returns its trace fingerprint. Used to compare a
// fresh engine against a reset-and-reused one.
func runTracedModel(e *Engine, seed int) uint64 {
	th := NewTraceHash()
	e.SetTrace(th.Observe)
	r := rand.New(rand.NewSource(int64(seed)))
	var evs []*Event
	for i := 0; i < 200; i++ {
		evs = append(evs, e.At(Time(r.Intn(50)), func() {}))
	}
	for i := 0; i < 50; i++ {
		evs[r.Intn(len(evs))].Cancel()
	}
	e.At(60, func() {
		e.After(5, func() {})
		e.After(0, func() {})
	})
	e.Run()
	return th.Sum()
}

func TestEngineResetDeterministicReuse(t *testing.T) {
	fresh := runTracedModel(NewEngine(), 7)

	// Dirty an engine thoroughly — mid-run stop, pending events, trace
	// hook, tombstones — then Reset and rerun the same model.
	e := NewEngine()
	e.SetTrace(func(Time, uint64) {})
	for i := 0; i < 100; i++ {
		e.At(Time(i), func() {})
	}
	stale := e.At(500, func() { t.Error("stale pre-reset event fired") })
	e.At(10, func() { e.Stop() })
	e.Run()

	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Fired() != 0 || e.Stopped() {
		t.Fatalf("reset engine not pristine: now=%v pending=%d fired=%d stopped=%v",
			e.Now(), e.Pending(), e.Fired(), e.Stopped())
	}
	if stale.Pending() {
		t.Fatal("pre-reset event still pending after Reset")
	}
	if stale.Cancel() {
		t.Fatal("canceling a pre-reset event should be a no-op")
	}

	reused := runTracedModel(e, 7)
	if reused != fresh {
		t.Fatalf("reset-and-reused trace %#x != fresh trace %#x", reused, fresh)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after reuse run", e.Pending())
	}
}

func TestEngineResetStaleCancelDoesNotCorruptCounters(t *testing.T) {
	e := NewEngine()
	stale := e.At(10, func() {})
	e.Reset()
	stale.Cancel() // must not decrement the new run's live count
	ev := e.At(5, func() {})
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	_ = ev
	e.Run()
	if e.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", e.Fired())
	}
}

func TestEngineRunForOverflowSaturates(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	fired := false
	e.At(200, func() { fired = true })
	// now + MaxTime would wrap to a negative horizon; the guard must
	// saturate instead, fire the pending event, and park the clock at
	// MaxTime.
	e.RunFor(MaxTime)
	if !fired {
		t.Fatal("pending event stranded behind a wrapped horizon")
	}
	if e.Now() != MaxTime {
		t.Fatalf("clock = %v, want MaxTime", e.Now())
	}
	// Negative d clamps to zero rather than rewinding.
	e.RunFor(-5)
	if e.Now() != MaxTime {
		t.Fatalf("clock moved on negative RunFor: %v", e.Now())
	}
}
