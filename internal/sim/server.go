package sim

// Server models a FIFO queueing station with a fixed number of service
// slots (e.g. a disk, a storage controller CPU, or a metadata server).
// Jobs are served in submission order; each job occupies one slot for its
// service time and then invokes its completion callback.
//
// The Server tracks utilization and queueing statistics so that model
// layers can report busy time, queue depth, and wait times without extra
// bookkeeping.
type Server struct {
	eng  *Engine
	name string
	// capacity is the number of jobs that can be in service at once.
	capacity int

	inService int
	queue     []serverJob

	// statistics
	Completed   uint64
	BusyTime    Time // slot-occupancy integrated over time (sum over slots)
	WaitTime    Time // total time jobs spent queued before service
	ServiceTime Time // total service time of completed jobs
	MaxQueue    int

	lastChange Time
}

type serverJob struct {
	arrive  Time
	service Time
	done    func()
}

// NewServer creates a server with the given number of parallel service
// slots attached to engine eng. capacity must be >= 1.
func NewServer(eng *Engine, name string, capacity int) *Server {
	if capacity < 1 {
		capacity = 1
	}
	return &Server{eng: eng, name: name, capacity: capacity}
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Capacity returns the number of parallel service slots.
func (s *Server) Capacity() int { return s.capacity }

// QueueLen returns the number of jobs waiting (not in service).
func (s *Server) QueueLen() int { return len(s.queue) }

// InService returns the number of jobs currently being served.
func (s *Server) InService() int { return s.inService }

// Submit enqueues a job with the given service time. done (may be nil) is
// invoked when the job completes. Service times <= 0 are served as
// zero-duration jobs (still pass through the queue discipline).
func (s *Server) Submit(service Time, done func()) {
	if service < 0 {
		service = 0
	}
	s.accumulateBusy()
	job := serverJob{arrive: s.eng.Now(), service: service, done: done}
	if s.inService < s.capacity {
		s.start(job)
		return
	}
	s.queue = append(s.queue, job)
	if len(s.queue) > s.MaxQueue {
		s.MaxQueue = len(s.queue)
	}
}

func (s *Server) start(job serverJob) {
	s.inService++
	s.WaitTime += s.eng.Now() - job.arrive
	s.eng.After(job.service, func() {
		s.accumulateBusy()
		s.inService--
		s.Completed++
		s.ServiceTime += job.service
		if len(s.queue) > 0 {
			next := s.queue[0]
			copy(s.queue, s.queue[1:])
			s.queue = s.queue[:len(s.queue)-1]
			s.start(next)
		}
		if job.done != nil {
			job.done()
		}
	})
}

func (s *Server) accumulateBusy() {
	now := s.eng.Now()
	s.BusyTime += Time(int64(now-s.lastChange) * int64(s.inService))
	s.lastChange = now
}

// Utilization returns the mean fraction of service slots busy over the
// interval [0, now]. It is 0 when no time has elapsed.
func (s *Server) Utilization() float64 {
	s.accumulateBusy()
	now := s.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(s.BusyTime) / (float64(now) * float64(s.capacity))
}

// MeanWait returns the mean queueing delay of jobs that entered service.
func (s *Server) MeanWait() Time {
	served := s.Completed + uint64(s.inService)
	if served == 0 {
		return 0
	}
	return Time(uint64(s.WaitTime) / served)
}
