package sim

import "testing"

// BenchmarkEngineEventThroughput measures raw event dispatch rate — the
// budget every model layer spends from.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 10000 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkServerPipeline measures the FIFO server fast path.
func BenchmarkServerPipeline(b *testing.B) {
	e := NewEngine()
	s := NewServer(e, "bench", 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Submit(Microsecond, nil)
		if s.QueueLen() > 1000 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkCancelChurn measures schedule+cancel cycles (the network
// layer's completion-event rescheduling pattern).
func BenchmarkCancelChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.After(Second, func() {})
		ev.Cancel()
		if e.Pending() > 10000 {
			e.Run()
		}
	}
	e.Run()
}
