package workload

import (
	"fmt"

	"spiderfs/internal/lustre"
	"spiderfs/internal/sim"
)

// CompileConfig models the §VII anti-pattern the paper warns users
// about: building code on the scratch file system. A compile is a storm
// of metadata operations — lookups, creates of tiny objects, stats —
// that lands on the namespace's single MDS and degrades every other
// user's metadata latency.
type CompileConfig struct {
	// SourceFiles to "compile": each costs a lookup + stat; each emits
	// an object file (create + tiny write) and intermediate stats.
	SourceFiles int
	// StatsPerFile models header lookups per compilation unit.
	StatsPerFile int
	// Parallelism is the make -j width.
	Parallelism int
	Dir         string
}

// CompileResult reports the build and its collateral damage.
type CompileResult struct {
	Duration sim.Time
	MDSOps   uint64
}

// RunCompile executes the metadata storm against fs.
func RunCompile(fs *lustre.FS, cfg CompileConfig, done func(CompileResult)) {
	if cfg.SourceFiles <= 0 {
		panic("workload: compile needs source files") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	if cfg.StatsPerFile < 1 {
		cfg.StatsPerFile = 8
	}
	if cfg.Dir == "" {
		cfg.Dir = "build"
	}
	eng := fs.Engine()
	start := eng.Now()
	opsBefore := fs.MetadataOps()
	next := 0
	b := sim.NewBarrier(func() {
		if done != nil {
			done(CompileResult{Duration: eng.Now() - start, MDSOps: fs.MetadataOps() - opsBefore})
		}
	})
	var worker func()
	worker = func() {
		if next >= cfg.SourceFiles {
			b.Done()
			return
		}
		i := next
		next++
		// Header stats, then emit the object file.
		remainingStats := cfg.StatsPerFile
		var statPhase func()
		statPhase = func() {
			if remainingStats == 0 {
				fs.Create(fmt.Sprintf("%s/obj%06d.o", cfg.Dir, i), 1, func(f *lustre.File) {
					f.Objects[0].Preload(32 << 10)
					worker()
				})
				return
			}
			remainingStats--
			fs.Open(fmt.Sprintf("%s/src%06d.c", cfg.Dir, i%16), func(*lustre.File) { statPhase() })
		}
		statPhase()
	}
	for w := 0; w < cfg.Parallelism; w++ {
		b.Add(1)
		worker()
	}
	b.Arm()
}

// MetadataLatencyProbe measures the mean latency of n sequential stat
// operations on fs — the "other user" experience while a compile (or
// anything else) runs.
func MetadataLatencyProbe(fs *lustre.FS, path string, n int, done func(mean sim.Time)) {
	eng := fs.Engine()
	fs.Create(path, 1, func(f *lustre.File) {
		var total sim.Time
		remaining := n
		var probe func()
		probe = func() {
			if remaining == 0 {
				if done != nil {
					done(total / sim.Time(n))
				}
				return
			}
			remaining--
			t0 := eng.Now()
			fs.Stat(f, func() {
				total += eng.Now() - t0
				probe()
			})
		}
		probe()
	})
}
