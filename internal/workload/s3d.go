package workload

import (
	"fmt"

	"spiderfs/internal/lustre"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// S3D models the combustion DNS code of §VI-A: a large parallel
// application that periodically dumps its simulation state
// (checkpoint + analysis output) file-per-process, run in a noisy
// production environment. The paper integrated libPIO into S3D with ~30
// changed lines and measured up to 24% POSIX I/O bandwidth improvement;
// the integration surface here is the single CreateFile hook.
type S3DConfig struct {
	Ranks        int
	DumpBytes    int64 // per rank per dump
	Dumps        int
	ComputePhase sim.Time // wall time between dumps
	TransferSize int64
	Dir          string
	Transport    lustre.Transport

	// CreateFile is the libPIO hook: nil means the stock fs.Create
	// round-robin allocator; the placement library substitutes its
	// balanced CreateBalanced here.
	CreateFile func(fs *lustre.FS, path string, stripeCount int, done func(*lustre.File))
}

// S3DResult reports the I/O performance the application observed.
type S3DResult struct {
	IOTime       sim.Time // total time spent inside dump phases
	TotalTime    sim.Time
	BytesWritten int64
	// DumpBps is the mean POSIX write bandwidth across dumps — the
	// paper's reported metric.
	DumpBps float64
}

// RunS3D executes the dump/compute cycle to completion.
func RunS3D(fs *lustre.FS, cfg S3DConfig) S3DResult {
	eng := fs.Engine()
	if cfg.Ranks <= 0 || cfg.Dumps <= 0 || cfg.DumpBytes <= 0 {
		panic("workload: invalid S3D config") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	if cfg.TransferSize <= 0 {
		cfg.TransferSize = 1 << 20
	}
	if cfg.Dir == "" {
		cfg.Dir = "s3d"
	}
	if cfg.Transport == nil {
		cfg.Transport = lustre.NullTransport{Eng: eng}
	}
	create := cfg.CreateFile
	if create == nil {
		create = func(fs *lustre.FS, path string, sc int, done func(*lustre.File)) {
			fs.Create(path, sc, done)
		}
	}

	clients := make([]*lustre.Client, cfg.Ranks)
	for i := range clients {
		clients[i] = lustre.NewClient(i, topology.Coord{}, fs, cfg.Transport)
	}

	var res S3DResult
	start := eng.Now()
	var dump func(d int)
	dump = func(d int) {
		if d == cfg.Dumps {
			res.TotalTime = eng.Now() - start
			return
		}
		dumpStart := eng.Now()
		files := make([]*lustre.File, cfg.Ranks)
		created := sim.NewBarrier(func() {
			wrote := sim.NewBarrier(func() {
				res.IOTime += eng.Now() - dumpStart
				res.BytesWritten += cfg.DumpBytes * int64(cfg.Ranks)
				eng.After(cfg.ComputePhase, func() { dump(d + 1) })
			})
			for i, c := range clients {
				wrote.Add(1)
				c.WriteStream(files[i], cfg.DumpBytes, cfg.TransferSize, func(int64) { wrote.Done() })
			}
			wrote.Arm()
		})
		for i := range clients {
			i := i
			created.Add(1)
			create(fs, fmt.Sprintf("%s/dump%03d/rank%06d", cfg.Dir, d, i), 1, func(f *lustre.File) {
				files[i] = f
				created.Done()
			})
		}
		created.Arm()
	}
	dump(0)
	eng.Run()
	if res.IOTime > 0 {
		res.DumpBps = float64(res.BytesWritten) / res.IOTime.Seconds()
	}
	return res
}
