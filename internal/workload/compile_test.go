package workload

import (
	"testing"

	"spiderfs/internal/sim"
)

func TestRunCompileCompletes(t *testing.T) {
	fs := mkTestFS(60)
	var res CompileResult
	RunCompile(fs, CompileConfig{SourceFiles: 100, StatsPerFile: 4, Parallelism: 8},
		func(r CompileResult) { res = r })
	fs.Engine().Run()
	if res.Duration <= 0 {
		t.Fatal("compile never finished")
	}
	// 100 files x (4 lookups + 1 create) = 500 metadata ops minimum.
	if res.MDSOps < 500 {
		t.Fatalf("MDS ops = %d, want >=500", res.MDSOps)
	}
	if fs.NumFiles < 100 {
		t.Fatalf("object files = %d", fs.NumFiles)
	}
}

// The §VII warning quantified: a compile on the scratch file system
// inflates other users' metadata latency.
func TestCompileDegradesOtherUsersMetadataLatency(t *testing.T) {
	probe := func(withCompile bool) sim.Time {
		fs := mkTestFS(61)
		eng := fs.Engine()
		if withCompile {
			RunCompile(fs, CompileConfig{SourceFiles: 3000, StatsPerFile: 8, Parallelism: 32}, nil)
		}
		var mean sim.Time
		MetadataLatencyProbe(fs, "user/data", 50, func(m sim.Time) { mean = m })
		eng.Run()
		return mean
	}
	quiet := probe(false)
	busy := probe(true)
	if quiet <= 0 || busy <= 0 {
		t.Fatalf("probes: quiet=%v busy=%v", quiet, busy)
	}
	ratio := float64(busy) / float64(quiet)
	if ratio < 3 {
		t.Fatalf("compile inflated stat latency only %.1fx (%v -> %v); the MDS storm should hurt", ratio, quiet, busy)
	}
}

func TestCompileInvalidPanics(t *testing.T) {
	fs := mkTestFS(62)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RunCompile(fs, CompileConfig{SourceFiles: 0}, nil)
}
