package workload

import (
	"fmt"
	"testing"

	"spiderfs/internal/lustre"
	"spiderfs/internal/placement"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

func TestRunS3DBasic(t *testing.T) {
	fs := mkTestFS(50)
	res := RunS3D(fs, S3DConfig{
		Ranks:        8,
		DumpBytes:    4 << 20,
		Dumps:        3,
		ComputePhase: sim.Second,
	})
	if res.BytesWritten != 3*8*4<<20 {
		t.Fatalf("bytes = %d", res.BytesWritten)
	}
	if res.IOTime <= 0 || res.DumpBps <= 0 {
		t.Fatalf("io time %v, bps %f", res.IOTime, res.DumpBps)
	}
	// Total includes the compute phases.
	if res.TotalTime < 3*sim.Second {
		t.Fatalf("total %v should include 3 compute phases", res.TotalTime)
	}
}

func TestS3DCreateHookUsed(t *testing.T) {
	fs := mkTestFS(51)
	hooked := 0
	RunS3D(fs, S3DConfig{
		Ranks: 4, DumpBytes: 1 << 20, Dumps: 2, ComputePhase: 100 * sim.Millisecond,
		CreateFile: func(fs *lustre.FS, path string, sc int, done func(*lustre.File)) {
			hooked++
			fs.Create(path, sc, done)
		},
	})
	if hooked != 8 {
		t.Fatalf("hook called %d times, want ranks x dumps = 8", hooked)
	}
}

// The §VI-A production claim: libPIO integration improves S3D dump
// bandwidth in a noisy environment (paper: up to 24%).
func TestS3DWithLibPIOInNoisyEnvironment(t *testing.T) {
	run := func(balanced bool) float64 {
		eng := sim.NewEngine()
		p := lustre.TestNamespace()
		p.NumSSU = 2
		p.OSTsPerSSU = 4
		p.OSSPerSSU = 2
		fs := lustre.Build(eng, p, rng.New(52))

		// Heavy production noise on SSU 0 (three streams per OST): under
		// light noise the extra OSS parallelism of spreading onto the
		// hot hardware still wins, and load-aware placement correctly
		// has nothing to gain.
		noise := lustre.NewClient(999, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
		var noiseFiles []*lustre.File
		for i := 0; i < 12; i++ {
			fs.CreateOn(fmt.Sprintf("noise/%d", i), []int{i % 4}, func(f *lustre.File) {
				noiseFiles = append(noiseFiles, f)
			})
		}
		eng.Run()
		for _, f := range noiseFiles {
			noise.WriteUntil(f, eng.Now()+20*sim.Second, 1<<20, nil)
		}
		eng.RunUntil(eng.Now() + 50*sim.Millisecond)

		cfg := S3DConfig{
			Ranks: 8, DumpBytes: 64 << 20, Dumps: 2, ComputePhase: 200 * sim.Millisecond,
		}
		if balanced {
			b := placement.New(fs, placement.Weights{})
			cfg.CreateFile = func(fs *lustre.FS, path string, sc int, done func(*lustre.File)) {
				b.CreateBalanced(path, sc, done)
			}
		}
		return RunS3D(fs, cfg).DumpBps
	}
	stock := run(false)
	libpio := run(true)
	gain := libpio/stock - 1
	if gain < 0.10 {
		t.Fatalf("libPIO S3D gain = %.0f%% (%.0f vs %.0f MB/s), want >=10%% (paper: ~24%%)",
			gain*100, libpio/1e6, stock/1e6)
	}
}
