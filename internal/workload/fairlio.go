package workload

import (
	"spiderfs/internal/disk"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/stats"
)

// FairLIOConfig parameterizes the block-level benchmark OLCF developed
// for the Spider II acquisition (§III-B): multiple in-flight requests
// against raw block devices at specific locations, bypassing file system
// caches, sweeping request size, queue depth, read/write mix, and
// sequential/random mode.
type FairLIOConfig struct {
	RequestSize int64
	QueueDepth  int
	WriteFrac   float64 // 1.0 = pure write
	Random      bool
	// RandomSpan restricts random offsets to the first fraction of the
	// device (0 or 1 = whole device). Used to compare against file
	// systems whose data occupies only part of the platters.
	RandomSpan float64
	Duration   sim.Time
}

// FairLIOResult reports one benchmark cell.
type FairLIOResult struct {
	Cfg        FairLIOConfig
	BytesMoved int64
	Ops        uint64
	Duration   sim.Time
	MBps       float64 // decimal MB/s
	IOPS       float64
	LatencyMs  stats.Summary
}

// randomSpan bounds random offsets to frac of the addressable range.
func randomSpan(max int64, frac float64) int64 {
	if frac <= 0 || frac >= 1 {
		return max
	}
	s := int64(frac * float64(max))
	if s < 1 {
		s = 1
	}
	return s
}

// RunFairLIODisk drives one raw disk for the configured duration.
func RunFairLIODisk(eng *sim.Engine, d *disk.Disk, cfg FairLIOConfig, src *rng.Source) FairLIOResult {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	res := FairLIOResult{Cfg: cfg}
	start := eng.Now()
	end := start + cfg.Duration
	var seqPos int64
	capacity := d.Config().Capacity
	span := randomSpan(capacity-cfg.RequestSize, cfg.RandomSpan)

	var issue func()
	issue = func() {
		if eng.Now() >= end {
			return
		}
		op := disk.Op{Write: src.Bool(cfg.WriteFrac), Size: cfg.RequestSize}
		if cfg.Random {
			op.LBA = src.Int63n(span)
		} else {
			if seqPos+cfg.RequestSize > capacity {
				seqPos = 0
			}
			op.LBA = seqPos
			seqPos += cfg.RequestSize
		}
		t0 := eng.Now()
		d.Submit(op, func() {
			res.Ops++
			res.BytesMoved += cfg.RequestSize
			res.LatencyMs.Add((eng.Now() - t0).Millis())
			issue()
		})
	}
	for i := 0; i < cfg.QueueDepth; i++ {
		issue()
	}
	eng.Run()
	res.Duration = eng.Now() - start
	if res.Duration > 0 {
		sec := res.Duration.Seconds()
		res.MBps = float64(res.BytesMoved) / 1e6 / sec
		res.IOPS = float64(res.Ops) / sec
	}
	return res
}

// RunFairLIOGroup drives one RAID group (the unit OLCF benchmarked and
// binned during slow-disk elimination). Offsets address the LUN.
func RunFairLIOGroup(eng *sim.Engine, g *raid.Group, cfg FairLIOConfig, src *rng.Source) FairLIOResult {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	res := FairLIOResult{Cfg: cfg}
	start := eng.Now()
	end := start + cfg.Duration
	var seqPos int64
	capacity := g.Capacity()
	span := randomSpan(capacity-cfg.RequestSize, cfg.RandomSpan)

	var issue func()
	issue = func() {
		if eng.Now() >= end {
			return
		}
		var off int64
		if cfg.Random {
			off = src.Int63n(span)
			// Align to the stripe for apples-to-apples random 1 MiB I/O.
			off -= off % cfg.RequestSize
		} else {
			if seqPos+cfg.RequestSize > capacity {
				seqPos = 0
			}
			off = seqPos
			seqPos += cfg.RequestSize
		}
		t0 := eng.Now()
		done := func() {
			res.Ops++
			res.BytesMoved += cfg.RequestSize
			res.LatencyMs.Add((eng.Now() - t0).Millis())
			issue()
		}
		if src.Bool(cfg.WriteFrac) {
			g.Write(off, cfg.RequestSize, done)
		} else {
			g.Read(off, cfg.RequestSize, done)
		}
	}
	for i := 0; i < cfg.QueueDepth; i++ {
		issue()
	}
	eng.Run()
	res.Duration = eng.Now() - start
	if res.Duration > 0 {
		sec := res.Duration.Seconds()
		res.MBps = float64(res.BytesMoved) / 1e6 / sec
		res.IOPS = float64(res.Ops) / sec
	}
	return res
}

// ObdSurveyResult mirrors obdfilter-survey: object write/rewrite/read
// rates at the OST stack level (controller + RAID), excluding clients
// and the network — the file-system-side half of the acquisition suite.
type ObdSurveyResult struct {
	WriteMBps   float64
	RewriteMBps float64
	ReadMBps    float64
}

// OSTDriver abstracts the piece of the OST stack obdfilter-survey
// exercises; implemented by *lustre.Object-backed helpers in callers to
// avoid an import cycle. Each call moves size bytes and invokes done.
type OSTDriver interface {
	Write(size int64, done func())
	Read(size int64, random bool, done func())
}

// RunObdSurvey measures streaming write, rewrite, and read through an
// OST driver with the given concurrency, moving total bytes per phase.
func RunObdSurvey(eng *sim.Engine, drv OSTDriver, total, rpc int64, threads int) ObdSurveyResult {
	if threads < 1 {
		threads = 1
	}
	phase := func(write, random bool) float64 {
		start := eng.Now()
		var moved int64
		var worker func(remaining int64)
		worker = func(remaining int64) {
			if remaining <= 0 {
				return
			}
			n := rpc
			if n > remaining {
				n = remaining
			}
			done := func() {
				moved += n
				worker(remaining - n)
			}
			if write {
				drv.Write(n, done)
			} else {
				drv.Read(n, random, done)
			}
		}
		per := total / int64(threads)
		for i := 0; i < threads; i++ {
			worker(per)
		}
		eng.Run()
		d := eng.Now() - start
		if d <= 0 {
			return 0
		}
		return float64(moved) / 1e6 / d.Seconds()
	}
	return ObdSurveyResult{
		WriteMBps:   phase(true, false),
		RewriteMBps: phase(true, false),
		ReadMBps:    phase(false, false),
	}
}
