package workload

import (
	"fmt"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/stats"
	"spiderfs/internal/topology"
)

// CheckpointConfig models a large-scale simulation's defensive I/O: all
// ranks dump a fraction of node memory to file-per-process outputs, the
// workload Spider II's 1 TB/s requirement was engineered for (75% of
// Titan's 600 TB in 6 minutes).
type CheckpointConfig struct {
	Writers      int
	BytesPerRank int64
	TransferSize int64
	StripeCount  int
	Placer       Placer
	Transport    lustre.Transport
	Dir          string
}

// CheckpointResult reports one checkpoint.
type CheckpointResult struct {
	Duration     sim.Time
	BytesMoved   int64
	AggregateBps float64
}

// RunCheckpoint executes one checkpoint and returns its duration.
func RunCheckpoint(fs *lustre.FS, cfg CheckpointConfig) CheckpointResult {
	if cfg.TransferSize <= 0 {
		cfg.TransferSize = 1 << 20
	}
	if cfg.StripeCount <= 0 {
		cfg.StripeCount = 1
	}
	if cfg.Dir == "" {
		cfg.Dir = "ckpt"
	}
	res := RunIOR(fs, IORConfig{
		Clients:      cfg.Writers,
		TransferSize: cfg.TransferSize,
		BlockSize:    cfg.BytesPerRank,
		StripeCount:  cfg.StripeCount,
		Dir:          cfg.Dir,
		Placer:       cfg.Placer,
		Transport:    cfg.Transport,
	})
	return CheckpointResult{Duration: res.Duration, BytesMoved: res.BytesMoved, AggregateBps: res.AggregateBps}
}

// AnalyticsConfig models the read-heavy, latency-constrained
// visualization/analysis workloads that share the data-centric file
// system with checkpoints (§II).
type AnalyticsConfig struct {
	Readers     int
	Requests    int // per reader
	RequestSize int64
	StripeCount int
	Transport   lustre.Transport
	Dir         string
}

// AnalyticsResult reports latency statistics (milliseconds).
type AnalyticsResult struct {
	Latency   stats.Summary
	P95Millis float64
	Duration  sim.Time
}

// RunAnalytics pre-creates one shared dataset per reader, then issues
// random reads one at a time (latency-bound, not bandwidth-bound),
// recording per-request latency.
func RunAnalytics(fs *lustre.FS, cfg AnalyticsConfig) AnalyticsResult {
	eng := fs.Engine()
	if cfg.RequestSize <= 0 {
		cfg.RequestSize = 64 << 10
	}
	if cfg.StripeCount <= 0 {
		cfg.StripeCount = 1
	}
	if cfg.Transport == nil {
		cfg.Transport = lustre.NullTransport{Eng: eng}
	}
	if cfg.Dir == "" {
		cfg.Dir = "viz"
	}
	files := make([]*lustre.File, cfg.Readers)
	clients := make([]*lustre.Client, cfg.Readers)
	for i := 0; i < cfg.Readers; i++ {
		i := i
		clients[i] = lustre.NewClient(i, topology.Coord{}, fs, cfg.Transport)
		fs.Create(fmt.Sprintf("%s/set%05d", cfg.Dir, i), cfg.StripeCount, func(f *lustre.File) { files[i] = f })
	}
	eng.Run()
	for i, c := range clients {
		c.WriteStream(files[i], 64<<20, 1<<20, nil)
	}
	eng.Run()

	var res AnalyticsResult
	var lats []float64
	start := eng.Now()
	for i := 0; i < cfg.Readers; i++ {
		i := i
		var next func(remaining int)
		next = func(remaining int) {
			if remaining == 0 {
				return
			}
			t0 := eng.Now()
			clients[i].ReadStream(files[i], cfg.RequestSize, cfg.RequestSize, true, func(int64) {
				ms := (eng.Now() - t0).Millis()
				res.Latency.Add(ms)
				lats = append(lats, ms)
				next(remaining - 1)
			})
		}
		next(cfg.Requests)
	}
	eng.Run()
	res.Duration = eng.Now() - start
	res.P95Millis = stats.Percentile(lats, 0.95)
	return res
}

// MixedConfig generates the center-wide mixed workload whose measured
// characteristics §II reports: 60% write / 40% read requests, bimodal
// sizes (small <=16 KiB metadata-ish I/O and large >=1 MiB streaming
// multiples), and Pareto-tailed inter-arrival times.
type MixedConfig struct {
	Duration      sim.Time
	MeanArrival   sim.Time // mean request inter-arrival
	ParetoAlpha   float64  // tail index of the inter-arrival distribution
	WriteFrac     float64  // 0.6 in the Spider I study
	SmallFrac     float64  // fraction of requests that are small
	SmallMax      int64    // 16 KiB
	LargeUnit     int64    // 1 MiB; large requests are multiples of it
	LargeMaxUnits int
	Streams       int // concurrent independent request streams
}

// DefaultMixed returns the §II calibration.
func DefaultMixed() MixedConfig {
	return MixedConfig{
		Duration:      30 * sim.Second,
		MeanArrival:   2 * sim.Millisecond,
		ParetoAlpha:   1.4,
		WriteFrac:     0.60,
		SmallFrac:     0.45,
		SmallMax:      16 << 10,
		LargeUnit:     1 << 20,
		LargeMaxUnits: 8,
		Streams:       8,
	}
}

// MixedTrace records what the generator produced, for characterization.
type MixedTrace struct {
	Writes, Reads uint64
	Sizes         []float64 // bytes
	InterArrivals []float64 // seconds
	BytesWritten  int64
	BytesRead     int64
}

// WriteFraction returns the measured write fraction of requests.
func (tr *MixedTrace) WriteFraction() float64 {
	total := tr.Writes + tr.Reads
	if total == 0 {
		return 0
	}
	return float64(tr.Writes) / float64(total)
}

// RunMixed drives the mixed workload against fs and returns the trace.
func RunMixed(fs *lustre.FS, cfg MixedConfig, src *rng.Source) *MixedTrace {
	eng := fs.Engine()
	tr := &MixedTrace{}
	tr.Sizes = make([]float64, 0, 1024)
	end := eng.Now() + cfg.Duration

	// One shared file per stream.
	files := make([]*lustre.File, cfg.Streams)
	clients := make([]*lustre.Client, cfg.Streams)
	for i := 0; i < cfg.Streams; i++ {
		i := i
		clients[i] = lustre.NewClient(i, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
		fs.Create(fmt.Sprintf("mixed/stream%03d", i), 1, func(f *lustre.File) { files[i] = f })
	}
	eng.Run()
	for i := range files {
		clients[i].WriteStream(files[i], 8<<20, 1<<20, nil) // seed data for reads
	}
	eng.Run()

	// The Pareto xm that yields the requested mean for tail alpha:
	// mean = alpha*xm/(alpha-1)  =>  xm = mean*(alpha-1)/alpha.
	xm := cfg.MeanArrival.Seconds() * (cfg.ParetoAlpha - 1) / cfg.ParetoAlpha

	var last sim.Time = -1
	var schedule func(stream int)
	schedule = func(stream int) {
		gap := sim.FromSeconds(src.Pareto(cfg.ParetoAlpha, xm))
		eng.After(gap, func() {
			if eng.Now() >= end {
				return
			}
			if last >= 0 {
				tr.InterArrivals = append(tr.InterArrivals, (eng.Now() - last).Seconds())
			}
			last = eng.Now()
			var size int64
			if src.Bool(cfg.SmallFrac) {
				size = 512 + src.Int63n(cfg.SmallMax-512)
			} else {
				size = cfg.LargeUnit * int64(1+src.Intn(cfg.LargeMaxUnits))
			}
			tr.Sizes = append(tr.Sizes, float64(size))
			if src.Bool(cfg.WriteFrac) {
				tr.Writes++
				tr.BytesWritten += size
				clients[stream].WriteStream(files[stream], size, minI64(size, 1<<20), nil)
			} else {
				tr.Reads++
				tr.BytesRead += size
				clients[stream].ReadStream(files[stream], size, minI64(size, 1<<20), true, nil)
			}
			schedule(stream)
		})
	}
	for i := 0; i < cfg.Streams; i++ {
		schedule(i)
	}
	eng.Run()
	return tr
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
