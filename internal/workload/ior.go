// Package workload implements the I/O drivers and workload generators
// used throughout the Spider studies: an IOR-like file-per-process
// benchmark (Figs. 3 and 4), checkpoint/restart and analytics
// application models, the mixed center-wide workload whose statistics
// §II reports, and the fair-lio-style block-level benchmark from the
// acquisition suite.
package workload

import (
	"fmt"

	"spiderfs/internal/lustre"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/topology"
)

// Placer assigns torus coordinates to client ranks. The paper contrasts
// scheduler (random) placement with I/O-optimized placement (§V-C).
type Placer func(rank int) topology.Coord

// RandomPlacer scatters ranks across the torus like the batch scheduler
// does (optimized for nearest-neighbor communication, not I/O).
func RandomPlacer(t topology.Torus, seed uint64) Placer {
	// Cheap deterministic hash scatter; rank i lands on a pseudo-random
	// node independent of how many ranks run.
	return func(rank int) topology.Coord {
		x := uint64(rank)*0x9e3779b97f4a7c15 + seed
		x ^= x >> 29
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 32
		return t.CoordOf(int(x % uint64(t.Nodes())))
	}
}

// UniformPlacer spreads ranks evenly through the torus (the optimized
// placement used for the post-upgrade 510 GB/s measurement).
func UniformPlacer(t topology.Torus) Placer {
	return func(rank int) topology.Coord {
		return t.CoordOf((rank * 104729) % t.Nodes()) // large prime stride
	}
}

// IORConfig parameterizes a file-per-process run.
type IORConfig struct {
	Clients      int
	TransferSize int64
	// BlockSize is the data each process moves; ignored when StoneWall
	// is set (run until the wall, as OLCF's scaling tests did).
	BlockSize int64
	StoneWall sim.Time
	Read      bool
	RandomIO  bool // random offsets within each process's file (reads)
	// StripeCount for each process's file; file-per-process runs use 1.
	StripeCount int
	Dir         string
	Placer      Placer
	Transport   lustre.Transport
	// Tracer, when set, is handed to every client so sampled RPCs are
	// recorded by the spantrace plane (attach it to the namespace with
	// FS.SetTracer or center.AttachTracer first).
	Tracer *spantrace.Tracer
}

// IORResult reports a run.
type IORResult struct {
	Clients      int
	Transfer     int64
	BytesMoved   int64
	Duration     sim.Time
	AggregateBps float64
	MinClient    int64
	MaxClient    int64
}

func (r IORResult) String() string {
	return fmt.Sprintf("ior clients=%d xfer=%s agg=%.1f GB/s (moved %.1f GiB in %v)",
		r.Clients, fmtBytes(r.Transfer), r.AggregateBps/1e9,
		float64(r.BytesMoved)/(1<<30), r.Duration)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// RunIOR executes the benchmark to completion on the namespace's engine
// and returns the aggregate result. The engine must be otherwise idle
// (OLCF ran these on a quiet system).
func RunIOR(fs *lustre.FS, cfg IORConfig) IORResult {
	eng := fs.Engine()
	if cfg.Clients <= 0 || cfg.TransferSize <= 0 {
		panic("workload: IOR needs clients and a transfer size") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	if cfg.StoneWall <= 0 && cfg.BlockSize <= 0 {
		panic("workload: IOR needs a stonewall or a block size") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	if cfg.StripeCount <= 0 {
		cfg.StripeCount = 1
	}
	if cfg.Placer == nil {
		cfg.Placer = func(int) topology.Coord { return topology.Coord{} }
	}
	if cfg.Transport == nil {
		cfg.Transport = lustre.NullTransport{Eng: eng}
	}
	dir := cfg.Dir
	if dir == "" {
		dir = "ior"
	}

	clients := make([]*lustre.Client, cfg.Clients)
	files := make([]*lustre.File, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		clients[i] = lustre.NewClient(i, cfg.Placer(i), fs, cfg.Transport)
		clients[i].Tracer = cfg.Tracer
		i := i
		fs.Create(fmt.Sprintf("%s/rank%07d", dir, i), cfg.StripeCount, func(f *lustre.File) {
			files[i] = f
		})
	}
	eng.Run() // finish creates (and, for reads, nothing else yet)

	if cfg.Read {
		// Pre-populate each file so reads have data.
		prefill := cfg.BlockSize
		if prefill <= 0 {
			prefill = 64 * cfg.TransferSize
		}
		for i, c := range clients {
			c.WriteStream(files[i], prefill, 1<<20, nil)
		}
		eng.Run()
	}

	start := eng.Now()
	var moved int64
	var lastAck sim.Time
	perClient := make([]int64, cfg.Clients)
	record := func(i int) func(int64) {
		return func(n int64) {
			moved += n
			perClient[i] = n
			if eng.Now() > lastAck {
				lastAck = eng.Now()
			}
		}
	}
	deadline := start + cfg.StoneWall
	for i, c := range clients {
		switch {
		case cfg.Read && cfg.StoneWall > 0:
			c.ReadUntil(files[i], deadline, cfg.TransferSize, cfg.RandomIO, record(i))
		case cfg.Read:
			c.ReadStream(files[i], cfg.BlockSize, cfg.TransferSize, cfg.RandomIO, record(i))
		case cfg.StoneWall > 0:
			c.WriteUntil(files[i], deadline, cfg.TransferSize, record(i))
		default:
			c.WriteStream(files[i], cfg.BlockSize, cfg.TransferSize, record(i))
		}
	}
	eng.Run()
	// Measure to the last client acknowledgement: the engine keeps
	// running controller flush timers and RAID drain after the benchmark
	// ends, and that idle tail must not dilute the bandwidth.
	dur := lastAck - start
	if dur <= 0 {
		dur = eng.Now() - start
	}
	res := IORResult{
		Clients:    cfg.Clients,
		Transfer:   cfg.TransferSize,
		BytesMoved: moved,
		Duration:   dur,
	}
	if dur > 0 {
		res.AggregateBps = float64(moved) / dur.Seconds()
	}
	for i, n := range perClient {
		if i == 0 || n < res.MinClient {
			res.MinClient = n
		}
		if n > res.MaxClient {
			res.MaxClient = n
		}
	}
	return res
}

// TransferSizeSweep reproduces Fig. 3: fixed client count, varying
// transfer size. Each point runs on a fresh namespace built by mkFS to
// keep points independent.
func TransferSizeSweep(mkFS func() *lustre.FS, clients int, sizes []int64, wall sim.Time) []IORResult {
	out := make([]IORResult, 0, len(sizes))
	for _, sz := range sizes {
		fs := mkFS()
		out = append(out, RunIOR(fs, IORConfig{
			Clients:      clients,
			TransferSize: sz,
			StoneWall:    wall,
		}))
	}
	return out
}

// ClientScalingSweep reproduces Fig. 4: fixed transfer size, varying
// client count.
func ClientScalingSweep(mkFS func() *lustre.FS, counts []int, xfer int64, wall sim.Time) []IORResult {
	out := make([]IORResult, 0, len(counts))
	for _, n := range counts {
		fs := mkFS()
		out = append(out, RunIOR(fs, IORConfig{
			Clients:      n,
			TransferSize: xfer,
			StoneWall:    wall,
		}))
	}
	return out
}
