package workload

import (
	"testing"

	"spiderfs/internal/disk"
	"spiderfs/internal/lustre"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/stats"
	"spiderfs/internal/topology"
)

func mkTestFS(seed uint64) *lustre.FS {
	eng := sim.NewEngine()
	return lustre.Build(eng, lustre.TestNamespace(), rng.New(seed))
}

func TestRunIORBasic(t *testing.T) {
	fs := mkTestFS(1)
	res := RunIOR(fs, IORConfig{
		Clients:      4,
		TransferSize: 1 << 20,
		BlockSize:    16 << 20,
	})
	if res.BytesMoved != 4*16<<20 {
		t.Fatalf("moved %d", res.BytesMoved)
	}
	if res.AggregateBps <= 0 {
		t.Fatal("no aggregate bandwidth")
	}
	if res.MinClient != 16<<20 || res.MaxClient != 16<<20 {
		t.Fatalf("per-client min=%d max=%d", res.MinClient, res.MaxClient)
	}
}

func TestRunIORStonewall(t *testing.T) {
	fs := mkTestFS(2)
	res := RunIOR(fs, IORConfig{
		Clients:      8,
		TransferSize: 1 << 20,
		StoneWall:    sim.Second,
	})
	if res.BytesMoved <= 0 {
		t.Fatal("stonewall moved nothing")
	}
	if res.Duration < sim.Second || res.Duration > 10*sim.Second {
		t.Fatalf("duration %v", res.Duration)
	}
}

func TestRunIORRead(t *testing.T) {
	fs := mkTestFS(3)
	res := RunIOR(fs, IORConfig{
		Clients:      2,
		TransferSize: 1 << 20,
		BlockSize:    8 << 20,
		Read:         true,
	})
	if res.BytesMoved != 2*8<<20 {
		t.Fatalf("read moved %d", res.BytesMoved)
	}
}

func TestIORPeaksAtOneMiB(t *testing.T) {
	// The Fig. 3 shape on a small namespace: 1 MiB transfers must beat
	// tiny transfers clearly.
	sizes := []int64{16 << 10, 1 << 20}
	var res []IORResult
	for i, sz := range sizes {
		fs := mkTestFS(uint64(10 + i))
		res = append(res, RunIOR(fs, IORConfig{
			Clients:      8,
			TransferSize: sz,
			StoneWall:    sim.Second,
		}))
	}
	if res[1].AggregateBps < 3*res[0].AggregateBps {
		t.Fatalf("1 MiB (%.1f MB/s) should be >=3x of 16 KiB (%.1f MB/s)",
			res[1].AggregateBps/1e6, res[0].AggregateBps/1e6)
	}
}

func TestClientScalingMonotoneThenSaturates(t *testing.T) {
	counts := []int{1, 4, 16}
	var agg []float64
	for i, n := range counts {
		fs := mkTestFS(uint64(20 + i))
		r := RunIOR(fs, IORConfig{Clients: n, TransferSize: 1 << 20, StoneWall: sim.Second})
		agg = append(agg, r.AggregateBps)
	}
	if agg[1] < 1.5*agg[0] {
		t.Fatalf("4 clients (%.0f) should scale above 1 client (%.0f)", agg[1], agg[0])
	}
	// Saturation: going 4 -> 16 should not quadruple again on a 1-SSU
	// namespace whose controller caps ~18 GB/s.
	if agg[2] > 3.5*agg[1] {
		t.Fatalf("16 clients (%.0f) scaled suspiciously past 4 clients (%.0f)", agg[2], agg[1])
	}
}

func TestPlacers(t *testing.T) {
	tor := topology.TitanTorus()
	rp := RandomPlacer(tor, 7)
	up := UniformPlacer(tor)
	seen := map[topology.Coord]bool{}
	for i := 0; i < 100; i++ {
		c := rp(i)
		if !tor.Contains(c) {
			t.Fatalf("random placer out of torus: %v", c)
		}
		seen[c] = true
		if !tor.Contains(up(i)) {
			t.Fatalf("uniform placer out of torus")
		}
	}
	if len(seen) < 90 {
		t.Fatalf("random placer collided heavily: %d unique of 100", len(seen))
	}
	if rp(5) != rp(5) {
		t.Fatal("placer not deterministic")
	}
}

func TestCheckpointSizingTitan(t *testing.T) {
	// Scaled-down E2: writers dump memory; throughput must be in the
	// vicinity of the controller envelope so the 6-minute law holds when
	// scaled. Uses the test namespace (1 SSU = ~18 GB/s controller).
	fs := mkTestFS(30)
	res := RunCheckpoint(fs, CheckpointConfig{
		Writers:      16,
		BytesPerRank: 32 << 20,
		TransferSize: 1 << 20,
	})
	if res.BytesMoved != 16*32<<20 {
		t.Fatalf("moved %d", res.BytesMoved)
	}
	gbps := res.AggregateBps / 1e9
	if gbps < 1 || gbps > 20 {
		t.Fatalf("checkpoint rate %.2f GB/s outside expected 1-SSU envelope", gbps)
	}
}

func TestAnalyticsLatencyBound(t *testing.T) {
	fs := mkTestFS(31)
	res := RunAnalytics(fs, AnalyticsConfig{
		Readers:     4,
		Requests:    25,
		RequestSize: 64 << 10,
	})
	if res.Latency.N != 100 {
		t.Fatalf("latency samples = %d", res.Latency.N)
	}
	// Random 64 KiB reads: a few ms to tens of ms each.
	if res.Latency.Mean < 1 || res.Latency.Mean > 200 {
		t.Fatalf("mean latency %.2f ms implausible", res.Latency.Mean)
	}
	if res.P95Millis < res.Latency.Mean {
		t.Fatalf("p95 %.2f below mean %.2f", res.P95Millis, res.Latency.Mean)
	}
}

func TestMixedWorkloadCharacteristics(t *testing.T) {
	fs := mkTestFS(32)
	cfg := DefaultMixed()
	cfg.Duration = 4 * sim.Second
	cfg.MeanArrival = 4 * sim.Millisecond
	cfg.LargeMaxUnits = 4
	tr := RunMixed(fs, cfg, rng.New(99))
	if tr.Writes+tr.Reads < 2000 {
		t.Fatalf("only %d requests generated", tr.Writes+tr.Reads)
	}
	wf := tr.WriteFraction()
	if wf < 0.55 || wf > 0.65 {
		t.Fatalf("write fraction = %.3f, want ~0.60", wf)
	}
	// Bimodal sizes: substantial mass below 16 KiB and at >= 1 MiB.
	small, large := 0, 0
	for _, s := range tr.Sizes {
		if s <= 16<<10 {
			small++
		}
		if s >= 1<<20 {
			large++
		}
	}
	frac := func(n int) float64 { return float64(n) / float64(len(tr.Sizes)) }
	if frac(small) < 0.3 || frac(large) < 0.3 {
		t.Fatalf("size bimodality lost: small=%.2f large=%.2f", frac(small), frac(large))
	}
	// Inter-arrival tail: fitting above the median gap should recover a
	// heavy tail (alpha well under 3) as the paper found.
	fit := stats.FitPareto(tr.InterArrivals, stats.Percentile(tr.InterArrivals, 0.5))
	if fit.Alpha <= 0.2 || fit.Alpha > 3.0 {
		t.Fatalf("inter-arrival Pareto tail alpha = %.2f, want heavy tail", fit.Alpha)
	}
	if fit.N < 100 {
		t.Fatalf("tail fit used only %d gaps", fit.N)
	}
}

func TestFairLIODiskSweepShape(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(40)
	d := disk.New(eng, 0, disk.NLSAS2TB(), disk.Nominal(), src.Split("d"))
	seq := RunFairLIODisk(eng, d, FairLIOConfig{
		RequestSize: 1 << 20, QueueDepth: 4, WriteFrac: 0, Random: false,
		Duration: 2 * sim.Second,
	}, src.Split("a"))
	d2 := disk.New(eng, 1, disk.NLSAS2TB(), disk.Nominal(), src.Split("d2"))
	rnd := RunFairLIODisk(eng, d2, FairLIOConfig{
		RequestSize: 1 << 20, QueueDepth: 4, WriteFrac: 0, Random: true,
		Duration: 2 * sim.Second,
	}, src.Split("b"))
	if seq.MBps <= 0 || rnd.MBps <= 0 {
		t.Fatal("no throughput measured")
	}
	ratio := rnd.MBps / seq.MBps
	if ratio < 0.15 || ratio > 0.35 {
		t.Fatalf("random/seq = %.3f (%.0f/%.0f MB/s), want ~0.2-0.25", ratio, rnd.MBps, seq.MBps)
	}
	if seq.LatencyMs.N == 0 || rnd.LatencyMs.Mean <= seq.LatencyMs.Mean {
		t.Fatalf("random latency (%.2f) should exceed sequential (%.2f)",
			rnd.LatencyMs.Mean, seq.LatencyMs.Mean)
	}
}

func TestFairLIOGroupSequentialWrite(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(41)
	groups := raid.BuildGroups(eng, 1, raid.Spider2Group(), disk.NLSAS2TB(), disk.DefaultPopulation(), src.Split("g"))
	res := RunFairLIOGroup(eng, groups[0], FairLIOConfig{
		RequestSize: 1 << 20, QueueDepth: 8, WriteFrac: 1, Random: false,
		Duration: 2 * sim.Second,
	}, src.Split("w"))
	// Full-stripe sequential writes across 8 data disks: several hundred
	// MB/s.
	if res.MBps < 300 || res.MBps > 1200 {
		t.Fatalf("group sequential write = %.0f MB/s, want ~500-1000", res.MBps)
	}
}

func TestObdSurveyPhases(t *testing.T) {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(42))
	var file *lustre.File
	fs.Create("survey", 1, func(f *lustre.File) { file = f })
	eng.Run()
	drv := objDriver{obj: file.Objects[0]}
	res := RunObdSurvey(eng, drv, 32<<20, 1<<20, 4)
	if res.WriteMBps <= 0 || res.ReadMBps <= 0 || res.RewriteMBps <= 0 {
		t.Fatalf("survey produced zeros: %+v", res)
	}
}

type objDriver struct{ obj *lustre.Object }

func (d objDriver) Write(size int64, done func())             { d.obj.Write(size, done) }
func (d objDriver) Read(size int64, random bool, done func()) { d.obj.Read(size, random, done) }
