package provision

import (
	"strings"
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func TestValidateScriptsOrdering(t *testing.T) {
	ordered, err := ValidateScripts(Spider2Scripts())
	if err != nil {
		t.Fatalf("spider scripts invalid: %v", err)
	}
	for i := 1; i < len(ordered); i++ {
		if ordered[i].Order < ordered[i-1].Order {
			t.Fatal("not sorted by order")
		}
	}
}

func TestValidateScriptsDetectsViolation(t *testing.T) {
	bad := []ConfigScript{
		{Order: 10, Name: "srp", Needs: []string{"ifcfg"}, Produces: []string{"srp.conf"}},
		{Order: 20, Name: "network", Produces: []string{"ifcfg"}},
	}
	if _, err := ValidateScripts(bad); err == nil {
		t.Fatal("expected dependency violation")
	} else if !strings.Contains(err.Error(), "srp") {
		t.Fatalf("error should name the script: %v", err)
	}
}

func TestBootNodeDiskless(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(1)
	var res BootResult
	if err := BootNode(eng, DisklessProfile(), Spider2Scripts(), src, func(r BootResult) { res = r }); err != nil {
		t.Fatalf("BootNode: %v", err)
	}
	eng.Run()
	// 45 + 20 + 9 (scripts) + 15 = 89 s.
	if res.Duration != 89*sim.Second {
		t.Fatalf("boot took %v, want 89s", res.Duration)
	}
	if res.Retries != 0 {
		t.Fatalf("retries = %d", res.Retries)
	}
}

func TestDisklessBootsFasterThanDiskFull(t *testing.T) {
	boot := func(p BootProfile, seed uint64) sim.Time {
		eng := sim.NewEngine()
		var res BootResult
		if err := BootNode(eng, p, Spider2Scripts(), rng.New(seed), func(r BootResult) { res = r }); err != nil {
			t.Fatalf("BootNode: %v", err)
		}
		eng.Run()
		return res.Duration
	}
	dl := boot(DisklessProfile(), 2)
	df := boot(DiskFullProfile(), 2)
	if dl >= df {
		t.Fatalf("diskless (%v) should boot faster than disk-full (%v)", dl, df)
	}
}

func TestFleetBootMTTR(t *testing.T) {
	eng := sim.NewEngine()
	dlTime, dlRetries, err := FleetBoot(eng, 288, DisklessProfile(), Spider2Scripts(), 64, rng.New(3))
	if err != nil {
		t.Fatalf("FleetBoot: %v", err)
	}
	eng2 := sim.NewEngine()
	dfTime, dfRetries, err := FleetBoot(eng2, 288, DiskFullProfile(), Spider2Scripts(), 64, rng.New(3))
	if err != nil {
		t.Fatalf("FleetBoot: %v", err)
	}
	if dlTime >= dfTime {
		t.Fatalf("diskless fleet (%v) should beat disk-full (%v)", dlTime, dfTime)
	}
	if dfRetries <= dlRetries {
		t.Fatalf("disk-full retries (%d) should exceed diskless (%d)", dfRetries, dlRetries)
	}
}

func TestNodeCostSavings(t *testing.T) {
	saving := NodeCost(DiskFull) - NodeCost(Diskless)
	if saving < 500 {
		t.Fatalf("diskless saving = $%.0f per node, want material", saving)
	}
	// 288 OSS + 440 routers: fleet-level saving.
	fleet := saving * (288 + 440)
	if fleet < 400_000 {
		t.Fatalf("fleet saving $%.0f", fleet)
	}
}

func TestConvergeDisklessFasterAndCleaner(t *testing.T) {
	eng := sim.NewEngine()
	dl := Converge(eng, 288, Diskless, rng.New(4))
	eng2 := sim.NewEngine()
	df := Converge(eng2, 288, DiskFull, rng.New(4))
	if dl.Duration >= df.Duration {
		t.Fatalf("diskless converge (%v) should beat disk-full (%v)", dl.Duration, df.Duration)
	}
	if df.Failures <= dl.Failures {
		t.Fatalf("disk-full failures (%d) should exceed diskless (%d)", df.Failures, dl.Failures)
	}
}

func TestBootNodeInvalidScriptsErrors(t *testing.T) {
	eng := sim.NewEngine()
	bad := []ConfigScript{{Order: 1, Name: "x", Needs: []string{"missing"}}}
	err := BootNode(eng, DisklessProfile(), bad, rng.New(5), nil)
	if err == nil {
		t.Fatal("expected validation error")
	}
	if !strings.Contains(err.Error(), "x") {
		t.Fatalf("error should name the script: %v", err)
	}
	if eng.Pending() != 0 {
		t.Fatalf("invalid scripts must schedule nothing, %d pending", eng.Pending())
	}
	if _, _, err := FleetBoot(eng, 4, DisklessProfile(), bad, 2, rng.New(5)); err == nil {
		t.Fatal("FleetBoot should propagate the validation error")
	}
	if err := FleetBootAsync(eng, 4, DisklessProfile(), bad, 2, rng.New(5), func(int) {}); err == nil {
		t.Fatal("FleetBootAsync should propagate the validation error")
	}
}
