// Package provision models the cluster deployment machinery of §IV-A:
// GeDI-style diskless booting (tftp + read-only NFS root + boot-time
// configuration scripts run in integer order, the /etc/gedi.d feature
// OLCF added for Spider II) versus disk-full nodes, and BCFG2-style
// configuration convergence. The payoffs the paper claims — lower cost,
// fewer moving parts, faster mean time to repair — are measurable here.
package provision

import (
	"fmt"
	"sort"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// ConfigScript is one /etc/gedi.d entry: it runs at boot in Order
// position, consumes configs produced by earlier scripts, and produces
// its own before the depending service starts.
type ConfigScript struct {
	Order    int
	Name     string
	Produces []string
	Needs    []string
	Runtime  sim.Time
}

// ValidateScripts checks that integer-order execution satisfies every
// dependency (each Needs is Produced by a strictly earlier script).
// It returns the execution order or an error naming the violation.
func ValidateScripts(scripts []ConfigScript) ([]ConfigScript, error) {
	ordered := append([]ConfigScript(nil), scripts...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Order < ordered[j].Order })
	produced := map[string]bool{}
	for _, s := range ordered {
		for _, need := range s.Needs {
			if !produced[need] {
				return nil, fmt.Errorf("provision: script %q (order %d) needs %q before it is produced",
					s.Name, s.Order, need)
			}
		}
		for _, p := range s.Produces {
			produced[p] = true
		}
	}
	return ordered, nil
}

// Spider2Scripts returns the boot scripts the paper describes: network
// configuration, then the InfiniBand srp_daemon configuration, then the
// subnet manager, then Lustre service configs.
func Spider2Scripts() []ConfigScript {
	return []ConfigScript{
		{Order: 10, Name: "network", Produces: []string{"ifcfg"}, Runtime: 2 * sim.Second},
		{Order: 20, Name: "srp-daemon", Needs: []string{"ifcfg"}, Produces: []string{"srp.conf"}, Runtime: sim.Second},
		{Order: 30, Name: "ib-subnet-manager", Needs: []string{"ifcfg"}, Produces: []string{"opensm.conf"}, Runtime: sim.Second},
		{Order: 40, Name: "lustre-targets", Needs: []string{"srp.conf"}, Produces: []string{"ldev.conf"}, Runtime: 3 * sim.Second},
		{Order: 50, Name: "ramdisks", Needs: []string{"ifcfg"}, Produces: []string{"etc-var-opt"}, Runtime: 2 * sim.Second},
	}
}

// NodeKind selects the provisioning model.
type NodeKind int

// Provisioning models.
const (
	Diskless NodeKind = iota
	DiskFull
)

// BootProfile gives the phase durations of a node boot.
type BootProfile struct {
	Kind NodeKind
	// PXE through kernel+initrd load.
	Firmware sim.Time
	// Root: NFS read-only mount (diskless) or local fsck+mount
	// (disk-full; slower and failure-prone).
	Root sim.Time
	// ServiceStart after configs are built.
	ServiceStart sim.Time
	// RootFailProb is the chance the root phase fails and the boot
	// restarts (disk-full nodes carry local-disk risk).
	RootFailProb float64
}

// DisklessProfile mirrors a GeDI node.
func DisklessProfile() BootProfile {
	return BootProfile{Kind: Diskless, Firmware: 45 * sim.Second, Root: 20 * sim.Second,
		ServiceStart: 15 * sim.Second, RootFailProb: 0.002}
}

// DiskFullProfile mirrors a conventionally imaged node.
func DiskFullProfile() BootProfile {
	return BootProfile{Kind: DiskFull, Firmware: 45 * sim.Second, Root: 90 * sim.Second,
		ServiceStart: 15 * sim.Second, RootFailProb: 0.03}
}

// BootResult reports one node boot.
type BootResult struct {
	Duration sim.Time
	Retries  int
}

// BootNode simulates one boot: firmware, root (with retry on failure),
// ordered config scripts, then services. It returns the validation
// error without scheduling anything when the scripts do not validate.
func BootNode(eng *sim.Engine, profile BootProfile, scripts []ConfigScript, src *rng.Source, done func(BootResult)) error {
	ordered, err := ValidateScripts(scripts)
	if err != nil {
		return err
	}
	bootOrdered(eng, profile, ordered, src, done)
	return nil
}

// bootOrdered schedules one boot of pre-validated, pre-sorted scripts.
func bootOrdered(eng *sim.Engine, profile BootProfile, ordered []ConfigScript, src *rng.Source, done func(BootResult)) {
	var res BootResult
	start := eng.Now()
	var rootPhase func()
	rootPhase = func() {
		eng.After(profile.Root, func() {
			if src.Bool(profile.RootFailProb) {
				res.Retries++
				eng.After(profile.Firmware, rootPhase) // reboot
				return
			}
			var scriptsTotal sim.Time
			for _, s := range ordered {
				scriptsTotal += s.Runtime
			}
			eng.After(scriptsTotal+profile.ServiceStart, func() {
				res.Duration = eng.Now() - start
				done(res)
			})
		})
	}
	eng.After(profile.Firmware, rootPhase)
}

// FleetBoot boots n nodes concurrently (bounded by parallel, the
// console/dhcp capacity) and reports the time to full fleet readiness.
// Scripts are validated once up front; an invalid set boots nothing.
func FleetBoot(eng *sim.Engine, n int, profile BootProfile, scripts []ConfigScript, parallel int, src *rng.Source) (total sim.Time, retries int, err error) {
	ordered, err := ValidateScripts(scripts)
	if err != nil {
		return 0, 0, err
	}
	if parallel < 1 {
		parallel = 1
	}
	start := eng.Now()
	remaining := n
	launched := 0
	var launch func()
	launch = func() {
		if launched >= n {
			return
		}
		launched++
		bootOrdered(eng, profile, ordered, src.Split(fmt.Sprintf("node-%d", launched)), func(r BootResult) {
			retries += r.Retries
			remaining--
			launch()
		})
	}
	for i := 0; i < parallel && i < n; i++ {
		launch()
	}
	eng.Run()
	return eng.Now() - start, retries, nil
}

// NodeCost returns the per-node hardware cost under each model: a
// diskless node saves the RAID controller, backplane, cabling, carriers,
// and drives (Lesson 7's acquisition/maintenance saving).
func NodeCost(kind NodeKind) float64 {
	base := 6500.0
	if kind == DiskFull {
		return base + 350 /*raid ctlr*/ + 150 /*backplane+cabling*/ + 2*180 /*drives*/
	}
	return base
}

// ConvergeResult reports a BCFG2 configuration push.
type ConvergeResult struct {
	Duration sim.Time
	Failures int
}

// Converge applies a configuration change to n nodes. Diskless fleets
// rebuild one image then reboot (fast, uniform); disk-full fleets run
// per-node package transactions with retry on failure.
func Converge(eng *sim.Engine, n int, kind NodeKind, src *rng.Source) ConvergeResult {
	start := eng.Now()
	var res ConvergeResult
	switch kind {
	case Diskless:
		imageBuild := 4 * sim.Minute
		// Spider2Scripts always validates; boot with the ordered set.
		ordered, _ := ValidateScripts(Spider2Scripts())
		eng.After(imageBuild, func() {
			fleetAsyncOrdered(eng, n, DisklessProfile(), ordered, 64, src, func(retries int) {
				res.Failures = retries
			})
		})
		eng.Run()
	case DiskFull:
		// An OS/Lustre-base update on imaged nodes: per-node package
		// transaction plus a reboot, pushed 64 wide, with transaction
		// failures retried — the slow, drift-prone path Lesson 7 argues
		// against.
		launched := 0
		var launch func()
		apply := func(retry func()) {
			d := 2*sim.Minute + sim.Time(src.Intn(int(sim.Minute)))
			eng.After(d, func() {
				if src.Bool(0.05) {
					res.Failures++
					retry()
					return
				}
				bootOrdered(eng, DiskFullProfile(), nil, src.Split(fmt.Sprintf("cvg-%d", launched)), func(r BootResult) {
					res.Failures += r.Retries
					launch()
				})
			})
		}
		launch = func() {
			if launched >= n {
				return
			}
			launched++
			var self func()
			self = func() { apply(self) }
			self()
		}
		for i := 0; i < 64 && i < n; i++ {
			launch()
		}
		eng.Run()
	}
	res.Duration = eng.Now() - start
	return res
}

// FleetBootAsync is FleetBoot without the engine drain, for embedding in
// larger scenarios; done receives the total retry count when the fleet
// is up. An invalid script set is reported without scheduling anything.
func FleetBootAsync(eng *sim.Engine, n int, profile BootProfile, scripts []ConfigScript, parallel int, src *rng.Source, done func(retries int)) error {
	ordered, err := ValidateScripts(scripts)
	if err != nil {
		return err
	}
	fleetAsyncOrdered(eng, n, profile, ordered, parallel, src, done)
	return nil
}

func fleetAsyncOrdered(eng *sim.Engine, n int, profile BootProfile, ordered []ConfigScript, parallel int, src *rng.Source, done func(retries int)) {
	if parallel < 1 {
		parallel = 1
	}
	remaining := n
	launched := 0
	retries := 0
	var launch func()
	launch = func() {
		if launched >= n {
			return
		}
		launched++
		bootOrdered(eng, profile, ordered, src.Split(fmt.Sprintf("anode-%d", launched)), func(r BootResult) {
			retries += r.Retries
			remaining--
			if remaining == 0 {
				done(retries)
				return
			}
			launch()
		})
	}
	for i := 0; i < parallel && i < n; i++ {
		launch()
	}
}
