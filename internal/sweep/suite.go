package sweep

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
)

// Clock returns monotonic nanoseconds. The caller injects it (cmd
// binaries pass a wall clock, tests a counter) so this package stays
// wall-clock-free under the no-wallclock invariant; a nil Clock records
// zero durations.
type Clock func() int64

// Entry is one named sweep a suite runs.
type Entry struct {
	Label    string
	Replicas int
	Seed     uint64
	Body     Body
}

// Record is one entry's outcome in the BENCH_sweep.json artifact: the
// merged statistics plus the serial-vs-parallel double-run evidence.
type Record struct {
	Label    string `json:"label"`
	Replicas int    `json:"replicas"`
	Seed     uint64 `json:"seed"`
	Workers  int    `json:"workers"`
	// SerialNs and ParallelNs time the same sweep at 1 worker and at
	// Workers workers; Speedup is their ratio. On a single-CPU host the
	// ratio is ~1 by physics — the CPUs field says which case this is.
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	// Deterministic records that the serial and parallel merged reports
	// were byte-identical; Fingerprint is their (shared) fingerprint.
	Deterministic bool          `json:"deterministic"`
	Fingerprint   string        `json:"fingerprint"`
	Errors        int           `json:"errors"`
	Metrics       []MetricStats `json:"metrics"`
}

// Suite is the JSON artifact (BENCH_sweep.json) format.
type Suite struct {
	Schema string `json:"schema"`
	// CPUs is runtime.GOMAXPROCS on the generating host — the ceiling on
	// any honest wall-clock speedup below.
	CPUs    int      `json:"cpus"`
	Workers int      `json:"workers"`
	Sweeps  []Record `json:"sweeps"`
}

// RunSuite runs every entry twice — serially (1 worker) and on a
// workers-wide pool — verifies the merged reports are byte-identical,
// and records per-metric statistics, timings, and the speedup. It
// errors if any entry's double-run diverges: a nondeterministic sweep
// is a broken sweep, not a slow one.
func RunSuite(entries []Entry, workers int, clock Clock) (Suite, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	now := func() int64 { return 0 }
	if clock != nil {
		now = clock
	}
	s := Suite{Schema: "spiderfs-sweep-bench/1", CPUs: runtime.GOMAXPROCS(0), Workers: workers}
	for _, e := range entries {
		cfg := Config{Label: e.Label, Seed: e.Seed, Replicas: e.Replicas, Workers: 1}
		t0 := now()
		serial, err := Run(cfg, e.Body)
		if err != nil {
			return s, fmt.Errorf("sweep suite %s (serial): %w", e.Label, err)
		}
		t1 := now()
		cfg.Workers = workers
		parallel, err := Run(cfg, e.Body)
		if err != nil {
			return s, fmt.Errorf("sweep suite %s (parallel): %w", e.Label, err)
		}
		t2 := now()

		rec := Record{
			Label:      e.Label,
			Replicas:   e.Replicas,
			Seed:       e.Seed,
			Workers:    workers,
			SerialNs:   t1 - t0,
			ParallelNs: t2 - t1,
			Errors:     parallel.Errors,
			Metrics:    parallel.Aggregate(),
		}
		rec.Deterministic = serial.Report() == parallel.Report()
		rec.Fingerprint = fmt.Sprintf("%016x", parallel.Fingerprint())
		if rec.ParallelNs > 0 {
			rec.Speedup = float64(rec.SerialNs) / float64(rec.ParallelNs)
		}
		s.Sweeps = append(s.Sweeps, rec)
		if !rec.Deterministic {
			return s, fmt.Errorf("sweep suite %s: serial (fingerprint %016x) and parallel (%016x) merged reports differ",
				e.Label, serial.Fingerprint(), parallel.Fingerprint())
		}
	}
	return s, nil
}

// Render formats the suite as a table for stdout.
func (s Suite) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep suite: %d workers on %d CPU(s)\n", s.Workers, s.CPUs)
	for _, r := range s.Sweeps {
		fmt.Fprintf(&b, "%s: %d replicas, serial %.0f ms -> parallel %.0f ms (%.2fx), deterministic=%v, fingerprint %s\n",
			r.Label, r.Replicas, float64(r.SerialNs)/1e6, float64(r.ParallelNs)/1e6,
			r.Speedup, r.Deterministic, r.Fingerprint)
		for _, m := range r.Metrics {
			fmt.Fprintf(&b, "  %-24s mean %.4f ± %.4f (95%% CI, n=%d), stddev %.4f, range [%.4f, %.4f]\n",
				m.Name, m.Mean, m.CI95, m.N, m.Stddev, m.Min, m.Max)
		}
	}
	return b.String()
}

// JSON renders the artifact.
func (s Suite) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
