package sweep

import (
	"fmt"
	"strings"

	"spiderfs/internal/stats"
)

// MetricStats is the cross-replica aggregate of one named metric:
// moments, extremes, median, and the 95% confidence-interval half-width
// of the mean (Student-t, so small replica counts are honest).
type MetricStats struct {
	Name   string  `json:"name"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	CI95   float64 `json:"ci95_half"`
}

// Aggregate merges same-named metrics across replicas. Metric names
// appear in first-recorded order (replica index order, then record
// order within a replica) — never map order — so the aggregate listing
// is part of the byte-identical report contract. Failed replicas
// contribute no samples.
func (res *Result) Aggregate() []MetricStats {
	var names []string
	slot := map[string]int{}
	samples := [][]float64{}
	for _, r := range res.Replicas {
		if r.Err != "" {
			continue
		}
		for _, m := range r.Metrics {
			i, ok := slot[m.Name]
			if !ok {
				i = len(names)
				slot[m.Name] = i
				names = append(names, m.Name)
				samples = append(samples, nil)
			}
			samples[i] = append(samples[i], m.Value)
		}
	}
	out := make([]MetricStats, len(names))
	for i, name := range names {
		var s stats.Summary
		for _, v := range samples[i] {
			s.Add(v)
		}
		out[i] = MetricStats{
			Name:   name,
			N:      int(s.N),
			Mean:   s.Mean,
			Stddev: s.Stddev(),
			Min:    s.Min,
			Max:    s.Max,
			P50:    stats.Percentile(samples[i], 0.5),
			CI95:   s.CI95Half(),
		}
	}
	return out
}

// Report renders the merged sweep as a fixed-width table. Two runs of
// the same config must produce byte-identical output regardless of
// worker count — the double-run test compares exactly this string.
func (res *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep %s: %d replicas, seed %d, %d failed (fingerprint %016x)\n",
		res.Label, len(res.Replicas), res.Seed, res.Errors, res.Fingerprint())
	fmt.Fprintf(&b, "  %-24s %4s %12s %12s %12s %12s %12s\n",
		"metric", "n", "mean", "ci95±", "stddev", "min", "max")
	for _, m := range res.Aggregate() {
		fmt.Fprintf(&b, "  %-24s %4d %12.4f %12.4f %12.4f %12.4f %12.4f\n",
			m.Name, m.N, m.Mean, m.CI95, m.Stddev, m.Min, m.Max)
	}
	for _, r := range res.Replicas {
		if r.Err != "" {
			fmt.Fprintf(&b, "  replica %d failed: %s\n", r.Index, r.Err)
		}
	}
	return b.String()
}
