package sweep

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"spiderfs/internal/sim"
)

// simBody is a miniature but representative replica: it builds a
// private engine, schedules work driven by the replica stream, and
// records aggregate metrics.
func simBody(r *Rep) error {
	eng := sim.NewEngine()
	var sum float64
	var fired int
	for i := 0; i < 50; i++ {
		d := sim.FromSeconds(r.Src.Exp(2.0))
		eng.After(d, func() {
			fired++
			sum += r.Src.Float64()
		})
	}
	eng.Run()
	r.Record("fired", float64(fired))
	r.Record("sum", sum)
	r.Record("end_s", eng.Now().Seconds())
	return nil
}

// TestSweepDeterministicAcrossWorkers is the double-run contract: the
// merged report must be byte-identical between a serial run and a
// maximally parallel run of the same seed set.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	base := Config{Label: "det", Seed: 99, Replicas: 24}

	serialCfg := base
	serialCfg.Workers = 1
	serial, err := Run(serialCfg, simBody)
	if err != nil {
		t.Fatal(err)
	}
	parallelCfg := base
	parallelCfg.Workers = 8
	parallel, err := Run(parallelCfg, simBody)
	if err != nil {
		t.Fatal(err)
	}

	if sr, pr := serial.Report(), parallel.Report(); sr != pr {
		t.Fatalf("serial and parallel merged reports differ:\n--- serial\n%s\n--- parallel\n%s", sr, pr)
	}
	if serial.Fingerprint() != parallel.Fingerprint() {
		t.Fatalf("fingerprints differ: %016x vs %016x", serial.Fingerprint(), parallel.Fingerprint())
	}
	// Sanity: the sweep actually produced differing replicas (streams
	// are independent, not copies).
	if serial.Replicas[0].Seed == serial.Replicas[1].Seed {
		t.Fatal("replica seeds identical; stream splitting is broken")
	}
	if serial.Replicas[0].Metrics[1].Value == serial.Replicas[1].Metrics[1].Value {
		t.Fatal("replica metrics identical; replicas are not independent")
	}
}

// TestSweepDeterministicGrid extends the double-run to a parameter
// grid: one replica per grid point, index order preserved.
func TestSweepDeterministicGrid(t *testing.T) {
	grid := Cross(
		Axis{Name: "rate", Values: []float64{1, 2, 4}},
		Axis{Name: "load", Values: []float64{0.25, 0.5}},
	)
	if len(grid) != 6 {
		t.Fatalf("Cross produced %d points, want 6", len(grid))
	}
	body := func(r *Rep) error {
		rate, ok := r.Param("rate")
		if !ok {
			return errors.New("missing rate")
		}
		load, _ := r.Param("load")
		r.Record("work", rate*load+r.Src.Float64())
		return nil
	}
	run := func(workers int) *Result {
		res, err := Run(Config{Label: "grid", Seed: 5, Grid: grid, Workers: workers}, body)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	if a.Report() != b.Report() {
		t.Fatalf("grid reports differ across worker counts")
	}
	// Grid order is row-major with the last axis fastest.
	want := [][2]float64{{1, 0.25}, {1, 0.5}, {2, 0.25}, {2, 0.5}, {4, 0.25}, {4, 0.5}}
	for i, r := range a.Replicas {
		if r.Params[0].Value != want[i][0] || r.Params[1].Value != want[i][1] {
			t.Fatalf("replica %d params = %v, want %v", i, r.Params, want[i])
		}
	}
}

func TestSweepErrorsAndPanicsAreConfined(t *testing.T) {
	body := func(r *Rep) error {
		switch r.Index {
		case 2:
			return fmt.Errorf("replica %d refused", r.Index)
		case 5:
			panic("replica 5 exploded")
		}
		r.Record("ok", 1)
		return nil
	}
	res, err := Run(Config{Label: "errs", Seed: 1, Replicas: 8, Workers: 4}, body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 2 {
		t.Fatalf("Errors = %d, want 2", res.Errors)
	}
	if res.Replicas[2].Err != "replica 2 refused" {
		t.Errorf("replica 2 err = %q", res.Replicas[2].Err)
	}
	if !strings.Contains(res.Replicas[5].Err, "replica 5 exploded") {
		t.Errorf("replica 5 err = %q", res.Replicas[5].Err)
	}
	// Failed replicas contribute no samples to the aggregate.
	agg := res.Aggregate()
	if len(agg) != 1 || agg[0].Name != "ok" || agg[0].N != 6 {
		t.Fatalf("aggregate = %+v, want ok with n=6", agg)
	}
	// The failure report is part of the deterministic output.
	if !strings.Contains(res.Report(), "replica 5 failed") {
		t.Error("report omits the failed replica")
	}
}

func TestSweepConfigValidation(t *testing.T) {
	if _, err := Run(Config{Label: "x"}, simBody); err == nil {
		t.Error("zero replicas should error")
	}
	if _, err := Run(Config{Label: "x", Replicas: 1}, nil); err == nil {
		t.Error("nil body should error")
	}
}

func TestAggregateStatsAndOrder(t *testing.T) {
	body := func(r *Rep) error {
		// Record in an order that differs from alphabetical so the
		// first-seen contract is observable.
		r.Record("zeta", float64(r.Index))
		r.Record("alpha", 10)
		return nil
	}
	res, err := Run(Config{Label: "agg", Seed: 3, Replicas: 5, Workers: 3}, body)
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Aggregate()
	if agg[0].Name != "zeta" || agg[1].Name != "alpha" {
		t.Fatalf("aggregate order = [%s %s], want first-seen [zeta alpha]", agg[0].Name, agg[1].Name)
	}
	z := agg[0]
	if z.N != 5 || z.Mean != 2 || z.Min != 0 || z.Max != 4 || z.P50 != 2 {
		t.Errorf("zeta stats = %+v", z)
	}
	if z.CI95 <= 0 {
		t.Errorf("zeta CI95 = %v, want > 0", z.CI95)
	}
	if a := agg[1]; a.Stddev != 0 || a.CI95 != 0 || a.Mean != 10 {
		t.Errorf("alpha stats = %+v, want constant", a)
	}
}

func TestRunSuiteDoubleRunAndClock(t *testing.T) {
	var tick int64
	clock := func() int64 { tick += 1000; return tick }
	s, err := RunSuite([]Entry{
		{Label: "a", Replicas: 6, Seed: 11, Body: simBody},
		{Label: "b", Replicas: 4, Seed: 12, Body: simBody},
	}, 4, clock)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sweeps) != 2 {
		t.Fatalf("%d records, want 2", len(s.Sweeps))
	}
	for _, r := range s.Sweeps {
		if !r.Deterministic {
			t.Errorf("%s: double-run not deterministic", r.Label)
		}
		if r.SerialNs != 1000 || r.ParallelNs != 1000 || r.Speedup != 1 {
			t.Errorf("%s: clock plumbing wrong: %+v", r.Label, r)
		}
		if len(r.Fingerprint) != 16 {
			t.Errorf("%s: fingerprint %q", r.Label, r.Fingerprint)
		}
		if len(r.Metrics) == 0 {
			t.Errorf("%s: no merged metrics", r.Label)
		}
	}
	if _, err := s.JSON(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Render(), "deterministic=true") {
		t.Error("render omits determinism evidence")
	}
}
