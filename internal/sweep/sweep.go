// Package sweep is the deterministic parallel replica runner: it fans N
// independent simulation configurations (seed sweeps, parameter grids)
// across a bounded worker pool and merges the results in replica-index
// order, so the aggregate report is byte-identical whatever GOMAXPROCS
// or the scheduler do.
//
// The determinism contract has three legs:
//
//  1. Every replica's randomness is derived up front, serially, from the
//     sweep seed via internal/rng stream splitting — worker scheduling
//     can reorder execution but never the streams.
//  2. Workers share nothing: each replica body builds its own sim.Engine
//     and model stack and writes only its own result slot.
//  3. Results are merged by replica index, never by completion order,
//     and the package itself is registered as an ordered sink with
//     simlint (feeding a Rep from map iteration is flagged).
//
// The serial-vs-parallel double-run test in this package and the
// `-count=2 'Deterministic'` line in verify.sh enforce the contract.
package sweep

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"

	"spiderfs/internal/rng"
)

// Metric is one named scalar a replica records. Metrics are kept in
// record order; the merge aggregates same-named metrics across replicas.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Param is one grid-axis coordinate assigned to a replica.
type Param struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Axis is one dimension of a parameter grid.
type Axis struct {
	Name   string
	Values []float64
}

// Cross returns the full cartesian product of the axes, one []Param per
// grid point, in row-major (last axis fastest) order.
func Cross(axes ...Axis) [][]Param {
	points := [][]Param{nil}
	for _, ax := range axes {
		next := make([][]Param, 0, len(points)*len(ax.Values))
		for _, p := range points {
			for _, v := range ax.Values {
				row := make([]Param, len(p), len(p)+1)
				copy(row, p)
				next = append(next, append(row, Param{Name: ax.Name, Value: v}))
			}
		}
		points = next
	}
	return points
}

// Rep is the per-replica context handed to a Body. It is confined to
// one worker goroutine for the duration of the body.
type Rep struct {
	// Index is the replica's position in the sweep, 0-based.
	Index int
	// Seed is a 64-bit seed derived for this replica; bodies that build
	// models seeded by integer (chaos.Config.Seed and friends) use it.
	Seed uint64
	// Src is the replica's private random stream, split from the sweep
	// seed by replica index. Never shared between replicas.
	Src *rng.Source
	// Params carries the grid coordinates for grid sweeps (empty for
	// plain seed sweeps).
	Params []Param

	metrics []Metric
}

// Record appends one named observation to the replica's result.
func (r *Rep) Record(name string, v float64) {
	r.metrics = append(r.metrics, Metric{Name: name, Value: v})
}

// Param returns the named grid coordinate, or (0, false).
func (r *Rep) Param(name string) (float64, bool) {
	for _, p := range r.Params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return 0, false
}

// Body runs one replica end to end. Bodies must draw all randomness
// from r.Src/r.Seed and must not touch state shared with other
// replicas; a returned error (or panic, which the pool converts to an
// error) marks the replica failed without aborting the sweep.
type Body func(r *Rep) error

// Config declares a sweep.
type Config struct {
	// Label names the sweep; it salts the replica streams, so two sweeps
	// of the same seed with different labels are independent.
	Label string
	// Seed is the root seed every replica stream is split from.
	Seed uint64
	// Replicas is the number of replicas for a seed sweep. Ignored when
	// Grid is set (each grid point is one replica).
	Replicas int
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Grid, when set, runs one replica per point (see Cross).
	Grid [][]Param
}

// Replica is one replica's merged result.
type Replica struct {
	Index   int      `json:"index"`
	Seed    uint64   `json:"seed"`
	Params  []Param  `json:"params,omitempty"`
	Metrics []Metric `json:"metrics"`
	Err     string   `json:"err,omitempty"`
}

// Result is the merged outcome of a sweep: every replica in index
// order, independent of worker count and scheduling.
type Result struct {
	Label    string    `json:"label"`
	Seed     uint64    `json:"seed"`
	Workers  int       `json:"workers"`
	Replicas []Replica `json:"replicas"`
	Errors   int       `json:"errors"`
}

// Run executes the sweep and returns the merged result. Two runs of the
// same Config (Workers aside) produce byte-identical merged reports.
func Run(cfg Config, body Body) (*Result, error) {
	n := cfg.Replicas
	if len(cfg.Grid) > 0 {
		n = len(cfg.Grid)
	}
	if n <= 0 {
		return nil, fmt.Errorf("sweep: config needs Replicas > 0 or a non-empty Grid")
	}
	if body == nil {
		return nil, fmt.Errorf("sweep: nil body")
	}

	// Derive every replica's stream serially, in index order, before any
	// worker starts: Split advances the parent stream, so derivation
	// order is part of the contract.
	root := rng.New(cfg.Seed).Split("sweep/" + cfg.Label)
	reps := make([]*Rep, n)
	for i := 0; i < n; i++ {
		src := root.Split(fmt.Sprintf("replica-%05d", i))
		reps[i] = &Rep{Index: i, Seed: src.Uint64(), Src: src}
		if len(cfg.Grid) > 0 {
			reps[i].Params = cfg.Grid[i]
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Shared-nothing pool: each worker claims indices from the channel
	// and writes only its own result slots; the merge below never looks
	// at completion order. This own-slot shape (out[i] with a
	// worker-local i) is the one goroutine write simlint's
	// shard-isolation check sanctions in this package.
	out := make([]Replica, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = runReplica(reps[i], body)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	res := &Result{Label: cfg.Label, Seed: cfg.Seed, Workers: workers, Replicas: out}
	for i := range out {
		if out[i].Err != "" {
			res.Errors++
		}
	}
	return res, nil
}

// runReplica executes one body, converting a panic into a per-replica
// error so a single bad configuration cannot take down the whole sweep.
func runReplica(r *Rep, body Body) (out Replica) {
	out = Replica{Index: r.Index, Seed: r.Seed, Params: r.Params}
	defer func() {
		if v := recover(); v != nil {
			out.Err = fmt.Sprintf("panic: %v", v)
			out.Metrics = nil
		}
	}()
	if err := body(r); err != nil {
		out.Err = err.Error()
	}
	out.Metrics = r.metrics
	return out
}

// Fingerprint hashes the merged result — label, seed, and every
// replica's seed, params, metrics, and error in index order. Serial and
// parallel runs of the same config must agree.
func (res *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	w64 := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	h.Write([]byte(res.Label))
	w64(res.Seed)
	for _, r := range res.Replicas {
		w64(uint64(int64(r.Index)))
		w64(r.Seed)
		for _, p := range r.Params {
			h.Write([]byte(p.Name))
			w64(math.Float64bits(p.Value))
		}
		for _, m := range r.Metrics {
			h.Write([]byte(m.Name))
			w64(math.Float64bits(m.Value))
		}
		h.Write([]byte(r.Err))
	}
	return h.Sum64()
}
