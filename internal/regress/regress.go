// Package regress is the bench-regression gate: it compares a
// committed BENCH_*.json artifact against a freshly generated one and
// reports findings where the fresh run has gotten worse. The gate is
// schema-aware — each artifact family declares which of its metrics
// are deterministic (exact or near-exact gates: sweep fingerprints,
// metric means, allocation counts) and which are wall-clock-derived
// (loose tolerances or no gate at all, because CI runners are noisy).
//
// The package takes bytes and returns findings; all file I/O and exit
// codes live in cmd/benchsuite, keeping this package environment-free.
package regress

import (
	"encoding/json"
	"fmt"
	"math"
)

// Tolerances for the wall-clock-adjacent gates. Deterministic gates
// (fingerprints, sweep means) do not use these.
const (
	// allocRatioFloorFrac: the netsim ordered-vs-map allocation ratio
	// may fall to this fraction of the committed value before the gate
	// trips. Allocation counts are stable across runs, but compiler
	// versions shift them slightly.
	allocRatioFloorFrac = 0.70
	// allocsPerOpSlack: per-result allocs/op may exceed the committed
	// count by this factor (plus one alloc of absolute slack).
	allocsPerOpSlack = 1.25
	// overheadCeiling: spantrace's documented acceptance ceiling —
	// tracing may cost at most this fraction of wall clock. Gated as an
	// absolute ceiling, not relative to the committed (often negative,
	// i.e. in-noise) value.
	overheadCeiling = 0.05
	// spansPerOpTolFrac: spans emitted per benchmark op are a sampling
	// count, deterministic up to batch rounding.
	spansPerOpTolFrac = 0.10
	// sweepMeanTol: sweep metric means are fully deterministic; only
	// float formatting round-trip error is allowed.
	sweepMeanTol = 1e-9
	// scrubOverheadCeiling: background scrubbing at the default
	// interval may tax foreground read latency by at most this
	// fraction. Gated as an absolute ceiling (like the spantrace
	// overhead), since the committed value sits well under it.
	scrubOverheadCeiling = 0.25
)

// Finding is one gate violation.
type Finding struct {
	Artifact string // file name, e.g. BENCH_sweep.json
	Check    string // short gate name, e.g. sweep-fingerprint
	Detail   string // human-readable committed-vs-fresh explanation
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Artifact, f.Check, f.Detail)
}

type header struct {
	Schema string `json:"schema"`
}

// Compare gates a fresh artifact against the committed one. The schema
// field of the committed bytes selects the rule set; a fresh artifact
// with a different schema is itself a finding (the generator changed
// shape without updating the committed baseline). The returned error
// covers malformed input, not regressions.
func Compare(artifact string, committed, fresh []byte) ([]Finding, error) {
	var ch, fh header
	if err := json.Unmarshal(committed, &ch); err != nil {
		return nil, fmt.Errorf("regress %s: committed artifact: %w", artifact, err)
	}
	if err := json.Unmarshal(fresh, &fh); err != nil {
		return nil, fmt.Errorf("regress %s: fresh artifact: %w", artifact, err)
	}
	if ch.Schema != fh.Schema {
		return []Finding{{artifact, "schema",
			fmt.Sprintf("committed %q vs fresh %q", ch.Schema, fh.Schema)}}, nil
	}
	switch ch.Schema {
	case "spiderfs-netsim-bench/1":
		return compareNetsim(artifact, committed, fresh)
	case "spiderfs-spantrace-bench/1":
		return compareSpantrace(artifact, committed, fresh)
	case "spiderfs-sweep-bench/1":
		return compareSweep(artifact, committed, fresh)
	case "spiderfs-integrity-bench/1":
		return compareIntegrity(artifact, committed, fresh)
	case "spiderfs-serve-bench/1":
		return compareServe(artifact, committed, fresh)
	case "spiderfs-ledger-bench/1":
		return compareLedger(artifact, committed, fresh)
	}
	return nil, fmt.Errorf("regress %s: unknown schema %q", artifact, ch.Schema)
}

type netsimDoc struct {
	Results []struct {
		Name        string  `json:"name"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"results"`
	Shard *struct {
		Runs []struct {
			Workers     int    `json:"workers"`
			Fingerprint string `json:"fingerprint"`
		} `json:"runs"`
		Deterministic bool    `json:"deterministic"`
		Speedup       float64 `json:"speedup"`
	} `json:"shard"`
	AllocRatio float64 `json:"start_finish_alloc_ratio"`
	Speedup    float64 `json:"start_finish_speedup"`
}

func compareNetsim(artifact string, committed, fresh []byte) ([]Finding, error) {
	var c, f netsimDoc
	if err := decodeBoth(artifact, committed, fresh, &c, &f); err != nil {
		return nil, err
	}
	var out []Finding
	if floor := c.AllocRatio * allocRatioFloorFrac; f.AllocRatio < floor {
		out = append(out, Finding{artifact, "alloc-ratio",
			fmt.Sprintf("start_finish_alloc_ratio %.2f fell below floor %.2f (committed %.2f)",
				f.AllocRatio, floor, c.AllocRatio)})
	}
	// The ordered path must still beat the map baseline outright; the
	// committed margin is ~7x, so 1.0 is a generous noise allowance.
	if f.Speedup < 1.0 {
		out = append(out, Finding{artifact, "speedup",
			fmt.Sprintf("start_finish_speedup %.2f < 1.0 (ordered path slower than map baseline; committed %.2f)",
				f.Speedup, c.Speedup)})
	}
	for _, cr := range c.Results {
		for _, fr := range f.Results {
			if fr.Name != cr.Name {
				continue
			}
			if ceil := cr.AllocsPerOp*allocsPerOpSlack + 1; fr.AllocsPerOp > ceil {
				out = append(out, Finding{artifact, "allocs-per-op",
					fmt.Sprintf("%s allocs/op %.0f exceeds ceiling %.0f (committed %.0f)",
						cr.Name, fr.AllocsPerOp, ceil, cr.AllocsPerOp)})
			}
		}
	}
	out = append(out, compareShard(artifact, c, f)...)
	return out, nil
}

// compareShard gates the sharded-engine section: the fresh run must
// still carry the section, every worker count must have double-run to
// one fingerprint (Deterministic), and every run's fingerprint must
// equal the serial (workers=1) run's — exact equality, the parallel
// correctness property. Speedup is recorded only: a single-CPU host
// regenerating the artifact legitimately reports < 1.
func compareShard(artifact string, c, f netsimDoc) []Finding {
	if c.Shard == nil {
		return nil
	}
	if f.Shard == nil {
		return []Finding{{artifact, "shard-missing",
			"committed artifact has a shard section but the fresh run does not"}}
	}
	var out []Finding
	if !f.Shard.Deterministic {
		out = append(out, Finding{artifact, "shard-deterministic",
			"sharded double-runs diverged (serial vs parallel fingerprints differ)"})
	}
	if len(f.Shard.Runs) == 0 {
		out = append(out, Finding{artifact, "shard-fingerprint", "shard section has no runs"})
		return out
	}
	serial := f.Shard.Runs[0]
	for _, r := range f.Shard.Runs[1:] {
		if r.Fingerprint != serial.Fingerprint {
			out = append(out, Finding{artifact, "shard-fingerprint",
				fmt.Sprintf("workers=%d fingerprint %s != serial %s (exact identity required)",
					r.Workers, r.Fingerprint, serial.Fingerprint)})
		}
	}
	return out
}

type spantraceDoc struct {
	Overhead   float64 `json:"overhead_frac"`
	SpansPerOp float64 `json:"spans_per_op"`
}

func compareSpantrace(artifact string, committed, fresh []byte) ([]Finding, error) {
	var c, f spantraceDoc
	if err := decodeBoth(artifact, committed, fresh, &c, &f); err != nil {
		return nil, err
	}
	var out []Finding
	if f.Overhead > overheadCeiling {
		out = append(out, Finding{artifact, "overhead",
			fmt.Sprintf("overhead_frac %.4f exceeds ceiling %.2f (committed %.4f)",
				f.Overhead, overheadCeiling, c.Overhead)})
	}
	if !withinFrac(f.SpansPerOp, c.SpansPerOp, spansPerOpTolFrac) {
		out = append(out, Finding{artifact, "spans-per-op",
			fmt.Sprintf("spans_per_op %.1f drifted beyond %.0f%% of committed %.1f",
				f.SpansPerOp, spansPerOpTolFrac*100, c.SpansPerOp)})
	}
	return out, nil
}

// sweepRec is the gated slice of one sweep record; sweep-family and
// integrity-family artifacts both carry lists of these.
type sweepRec struct {
	Label         string `json:"label"`
	Deterministic bool   `json:"deterministic"`
	Fingerprint   string `json:"fingerprint"`
	Errors        int    `json:"errors"`
	Metrics       []struct {
		Name string  `json:"name"`
		Mean float64 `json:"mean"`
	} `json:"metrics"`
}

type sweepDoc struct {
	Sweeps []sweepRec `json:"sweeps"`
}

func compareSweep(artifact string, committed, fresh []byte) ([]Finding, error) {
	var c, f sweepDoc
	if err := decodeBoth(artifact, committed, fresh, &c, &f); err != nil {
		return nil, err
	}
	return compareSweepRecords(artifact, c.Sweeps, f.Sweeps), nil
}

// compareSweepRecords applies the deterministic sweep gates — exact
// fingerprints, exact metric means, zero replica errors, double-run
// determinism — to every committed record.
func compareSweepRecords(artifact string, committed, fresh []sweepRec) []Finding {
	var out []Finding
	for _, cs := range committed {
		found := false
		for _, fs := range fresh {
			if fs.Label != cs.Label {
				continue
			}
			found = true
			if !fs.Deterministic {
				out = append(out, Finding{artifact, "sweep-deterministic",
					fmt.Sprintf("%s: serial and parallel runs diverged", cs.Label)})
			}
			if fs.Errors > 0 {
				out = append(out, Finding{artifact, "sweep-errors",
					fmt.Sprintf("%s: %d replicas failed (committed %d)", cs.Label, fs.Errors, cs.Errors)})
			}
			// The fingerprint covers every replica's seed, params, and
			// metrics: any behavioral change in the simulation shows up
			// here exactly.
			if fs.Fingerprint != cs.Fingerprint {
				out = append(out, Finding{artifact, "sweep-fingerprint",
					fmt.Sprintf("%s: fingerprint %s != committed %s", cs.Label, fs.Fingerprint, cs.Fingerprint)})
			}
			for _, cm := range cs.Metrics {
				got, ok := findMean(fs.Metrics, cm.Name)
				if !ok {
					out = append(out, Finding{artifact, "sweep-metric",
						fmt.Sprintf("%s: metric %s missing from fresh run", cs.Label, cm.Name)})
					continue
				}
				if !withinFrac(got, cm.Mean, sweepMeanTol) {
					out = append(out, Finding{artifact, "sweep-metric",
						fmt.Sprintf("%s: %s mean %v != committed %v", cs.Label, cm.Name, got, cm.Mean)})
				}
			}
			break
		}
		if !found {
			out = append(out, Finding{artifact, "sweep-missing",
				fmt.Sprintf("sweep %s absent from fresh run", cs.Label)})
		}
	}
	return out
}

type integrityDoc struct {
	Sweeps              []sweepRec `json:"sweeps"`
	UndetectedAtDefault float64    `json:"undetected_reads_at_default"`
	UndetectedNoScrub   float64    `json:"undetected_reads_no_scrub"`
	ScrubOverheadFrac   float64    `json:"scrub_overhead_frac"`
}

// compareIntegrity gates BENCH_integrity.json: the standard exact sweep
// gates on every E19 record, plus two headline properties of the fresh
// run itself — zero undetected corrupt reads at the default scrub
// interval (a hard invariant, not a drift check) and a bounded
// foreground overhead for background scrubbing.
func compareIntegrity(artifact string, committed, fresh []byte) ([]Finding, error) {
	var c, f integrityDoc
	if err := decodeBoth(artifact, committed, fresh, &c, &f); err != nil {
		return nil, err
	}
	out := compareSweepRecords(artifact, c.Sweeps, f.Sweeps)
	if f.UndetectedAtDefault != 0 {
		out = append(out, Finding{artifact, "undetected-corrupt-reads",
			fmt.Sprintf("undetected_reads_at_default %v != 0 (committed %v): silent corruption reached clients at the default scrub interval",
				f.UndetectedAtDefault, c.UndetectedAtDefault)})
	}
	if f.UndetectedNoScrub <= 0 {
		out = append(out, Finding{artifact, "exposure-baseline",
			fmt.Sprintf("undetected_reads_no_scrub %v: the unscrubbed baseline shows no exposure, so the zero-at-default gate proves nothing",
				f.UndetectedNoScrub)})
	}
	if f.ScrubOverheadFrac > scrubOverheadCeiling {
		out = append(out, Finding{artifact, "scrub-overhead",
			fmt.Sprintf("scrub_overhead_frac %.4f exceeds ceiling %.2f (committed %.4f)",
				f.ScrubOverheadFrac, scrubOverheadCeiling, c.ScrubOverheadFrac)})
	}
	return out, nil
}

type serveDoc struct {
	Fingerprint   string `json:"fingerprint"`
	Deterministic bool   `json:"deterministic"`
	Errors        int    `json:"errors"`
	Paths         []struct {
		Path     string `json:"path"`
		Sessions int    `json:"sessions"`
	} `json:"paths"`
}

// compareServe gates BENCH_serve.json: the probe fingerprint is exact
// (a pooled session must reproduce the cold run bit for bit), the
// cold-vs-warm double run must agree on every seed (Deterministic),
// zero sessions may fail, and every committed execution path must still
// be measured with at least one session. The latency-derived fields —
// sessions/sec, percentiles, warm/cache speedups — are recorded only:
// a single-CPU host regenerating the artifact legitimately reports
// different ratios.
func compareServe(artifact string, committed, fresh []byte) ([]Finding, error) {
	var c, f serveDoc
	if err := decodeBoth(artifact, committed, fresh, &c, &f); err != nil {
		return nil, err
	}
	var out []Finding
	if !f.Deterministic {
		out = append(out, Finding{artifact, "serve-deterministic",
			"cold and warm-pool runs diverged (per-seed session fingerprints differ)"})
	}
	if f.Errors > 0 {
		out = append(out, Finding{artifact, "serve-errors",
			fmt.Sprintf("%d sessions failed (committed %d)", f.Errors, c.Errors)})
	}
	if f.Fingerprint != c.Fingerprint {
		out = append(out, Finding{artifact, "serve-fingerprint",
			fmt.Sprintf("probe fingerprint %s != committed %s (exact identity required)",
				f.Fingerprint, c.Fingerprint)})
	}
	for _, cp := range c.Paths {
		found := false
		for _, fp := range f.Paths {
			if fp.Path != cp.Path {
				continue
			}
			found = true
			if fp.Sessions == 0 {
				out = append(out, Finding{artifact, "serve-path",
					fmt.Sprintf("path %s measured zero sessions (committed %d)", cp.Path, cp.Sessions)})
			}
			break
		}
		if !found {
			out = append(out, Finding{artifact, "serve-path",
				fmt.Sprintf("execution path %s absent from fresh run", cp.Path)})
		}
	}
	return out, nil
}

type ledgerDoc struct {
	CampaignEntries int      `json:"campaign_entries"`
	CampaignAnchors int      `json:"campaign_anchors"`
	CampaignDrops   int      `json:"campaign_drops"`
	CampaignRoots   []string `json:"campaign_roots"`
	CampaignHead    string   `json:"campaign_head"`
	Deterministic   bool     `json:"deterministic"`
	TracedIdentical bool     `json:"traced_identical"`
	AuditClean      bool     `json:"audit_clean"`
	TamperTotal     int      `json:"tamper_total"`
	TampersDetected int      `json:"tampers_detected"`
	Tampers         []struct {
		Name     string `json:"name"`
		Detected bool   `json:"detected"`
	} `json:"tampers"`
	Batches []struct {
		MaxBatch int    `json:"max_batch"`
		Entries  int    `json:"entries"`
		Anchors  int    `json:"anchors"`
		Head     string `json:"head"`
	} `json:"batches"`
}

// compareLedger gates BENCH_ledger.json. The root sequence, head, and
// per-batch anchor heads are hash-exact: any divergence means the
// operations ledger's determinism contract broke. The three booleans
// and the full tamper scorecard are hard invariants of the fresh run.
// The wall-clock throughput fields (append_ns, entries_per_sec) are
// recorded, not gated.
func compareLedger(artifact string, committed, fresh []byte) ([]Finding, error) {
	var c, f ledgerDoc
	if err := decodeBoth(artifact, committed, fresh, &c, &f); err != nil {
		return nil, err
	}
	var out []Finding
	if !f.Deterministic {
		out = append(out, Finding{artifact, "ledger-deterministic",
			"double-run campaign ledger exports are not byte-identical"})
	}
	if !f.TracedIdentical {
		out = append(out, Finding{artifact, "ledger-traced",
			"attaching the span tracer changed the anchored root sequence"})
	}
	if !f.AuditClean {
		out = append(out, Finding{artifact, "ledger-audit",
			"the untampered campaign export no longer audits clean"})
	}
	if f.CampaignEntries != c.CampaignEntries || f.CampaignAnchors != c.CampaignAnchors ||
		f.CampaignDrops != c.CampaignDrops {
		out = append(out, Finding{artifact, "ledger-counts",
			fmt.Sprintf("entries/anchors/drops %d/%d/%d != committed %d/%d/%d",
				f.CampaignEntries, f.CampaignAnchors, f.CampaignDrops,
				c.CampaignEntries, c.CampaignAnchors, c.CampaignDrops)})
	}
	if f.CampaignHead != c.CampaignHead {
		out = append(out, Finding{artifact, "ledger-head",
			fmt.Sprintf("campaign head %.16s.. != committed %.16s.. (exact identity required)",
				f.CampaignHead, c.CampaignHead)})
	}
	if len(f.CampaignRoots) != len(c.CampaignRoots) {
		out = append(out, Finding{artifact, "ledger-roots",
			fmt.Sprintf("%d roots != committed %d", len(f.CampaignRoots), len(c.CampaignRoots))})
	} else {
		for i := range c.CampaignRoots {
			if f.CampaignRoots[i] != c.CampaignRoots[i] {
				out = append(out, Finding{artifact, "ledger-roots",
					fmt.Sprintf("root %d %.16s.. != committed %.16s.. (first divergence)",
						i, f.CampaignRoots[i], c.CampaignRoots[i])})
				break
			}
		}
	}
	if f.TamperTotal < c.TamperTotal || f.TampersDetected != f.TamperTotal {
		out = append(out, Finding{artifact, "ledger-tampers",
			fmt.Sprintf("tampers detected %d of %d (committed %d of %d): the auditor lost coverage",
				f.TampersDetected, f.TamperTotal, c.TampersDetected, c.TamperTotal)})
	}
	for _, ft := range f.Tampers {
		if !ft.Detected {
			out = append(out, Finding{artifact, "ledger-tampers",
				fmt.Sprintf("tamper class %s went undetected", ft.Name)})
		}
	}
	for _, cb := range c.Batches {
		found := false
		for _, fb := range f.Batches {
			if fb.MaxBatch != cb.MaxBatch {
				continue
			}
			found = true
			if fb.Entries != cb.Entries || fb.Anchors != cb.Anchors || fb.Head != cb.Head {
				out = append(out, Finding{artifact, "ledger-batch",
					fmt.Sprintf("max_batch %d: %d entries/%d anchors head %.16s.. != committed %d/%d head %.16s..",
						cb.MaxBatch, fb.Entries, fb.Anchors, fb.Head,
						cb.Entries, cb.Anchors, cb.Head)})
			}
			break
		}
		if !found {
			out = append(out, Finding{artifact, "ledger-batch",
				fmt.Sprintf("max_batch %d point absent from fresh run", cb.MaxBatch)})
		}
	}
	return out, nil
}

func findMean(metrics []struct {
	Name string  `json:"name"`
	Mean float64 `json:"mean"`
}, name string) (float64, bool) {
	for _, m := range metrics {
		if m.Name == name {
			return m.Mean, true
		}
	}
	return 0, false
}

func decodeBoth(artifact string, committed, fresh []byte, c, f any) error {
	if err := json.Unmarshal(committed, c); err != nil {
		return fmt.Errorf("regress %s: committed artifact: %w", artifact, err)
	}
	if err := json.Unmarshal(fresh, f); err != nil {
		return fmt.Errorf("regress %s: fresh artifact: %w", artifact, err)
	}
	return nil
}

// withinFrac reports whether got is within tol×|want| of want (exact
// match required when want is zero and tol scales nothing).
func withinFrac(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}
