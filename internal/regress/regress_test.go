package regress

import (
	"strings"
	"testing"
)

const netsimCommitted = `{
  "schema": "spiderfs-netsim-bench/1",
  "results": [
    {"name": "start_finish/map_baseline", "ns_per_op": 11399.5, "allocs_per_op": 62},
    {"name": "start_finish/ordered", "ns_per_op": 1663.5, "allocs_per_op": 4}
  ],
  "shard": {
    "regions": 8, "storage_shards": 36, "lookahead_ns": 120, "cpus": 8,
    "runs": [
      {"workers": 1, "ns_per_op": 91000000, "ns_per_flow_event": 5500, "fingerprint": "4a385d102758467e"},
      {"workers": 2, "ns_per_op": 52000000, "ns_per_flow_event": 3100, "fingerprint": "4a385d102758467e"},
      {"workers": 4, "ns_per_op": 31000000, "ns_per_flow_event": 1900, "fingerprint": "4a385d102758467e"},
      {"workers": 8, "ns_per_op": 24000000, "ns_per_flow_event": 1450, "fingerprint": "4a385d102758467e"}
    ],
    "deterministic": true,
    "speedup": 3.79
  },
  "start_finish_alloc_ratio": 15.5,
  "start_finish_speedup": 6.85
}`

const spantraceCommitted = `{
  "schema": "spiderfs-spantrace-bench/1",
  "overhead_frac": -0.084,
  "spans_per_op": 518.75
}`

const sweepCommitted = `{
  "schema": "spiderfs-sweep-bench/1",
  "cpus": 8,
  "workers": 8,
  "sweeps": [
    {
      "label": "e18-chaos", "replicas": 32, "seed": 42, "workers": 8,
      "serial_ns": 250000000, "parallel_ns": 60000000, "speedup": 4.1,
      "deterministic": true, "fingerprint": "64bbdc892ff233d8", "errors": 0,
      "metrics": [
        {"name": "availability", "n": 32, "mean": 0.9964},
        {"name": "incidents", "n": 32, "mean": 26.25}
      ]
    }
  ]
}`

const integrityCommitted = `{
  "schema": "spiderfs-integrity-bench/1",
  "cpus": 8,
  "workers": 8,
  "default_scrub_interval_s": 30,
  "undetected_reads_at_default": 0,
  "undetected_reads_no_scrub": 5.125,
  "rebuild_latent_hits_at_default": 0,
  "rebuild_latent_hits_no_scrub": 35.5,
  "lost_stripes_no_scrub": 1.0,
  "scrub_overhead_frac": 0.134,
  "sweeps": [
    {
      "label": "e19-scrub-default", "replicas": 8, "seed": 42, "workers": 8,
      "serial_ns": 90000000, "parallel_ns": 30000000, "speedup": 3.0,
      "deterministic": true, "fingerprint": "abcdef0123456789", "errors": 0,
      "metrics": [
        {"name": "undetected_reads", "n": 8, "mean": 0},
        {"name": "scrub_repairs", "n": 8, "mean": 45.25}
      ]
    }
  ]
}`

const serveCommitted = `{
  "schema": "spiderfs-serve-bench/1",
  "cpus": 8,
  "workers": 2,
  "pool_size": 2,
  "fingerprint": "6f1d2c3b4a596877",
  "deterministic": true,
  "errors": 0,
  "cache_hits": 12,
  "cache_misses": 13,
  "cache_evictions": 0,
  "pool_reuses": 10,
  "warm_speedup": 1.8,
  "cache_speedup": 240.5,
  "paths": [
    {"path": "cold", "sessions": 12, "sessions_per_sec": 310.5, "p50_ns": 3200000, "p99_ns": 5100000},
    {"path": "warm", "sessions": 12, "sessions_per_sec": 560.2, "p50_ns": 1800000, "p99_ns": 2900000},
    {"path": "cache", "sessions": 12, "sessions_per_sec": 9100.0, "p50_ns": 13000, "p99_ns": 41000}
  ]
}`

func mustCompare(t *testing.T, artifact, committed, fresh string) []Finding {
	t.Helper()
	out, err := Compare(artifact, []byte(committed), []byte(fresh))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func wantCheck(t *testing.T, findings []Finding, check string) {
	t.Helper()
	for _, f := range findings {
		if f.Check == check {
			return
		}
	}
	t.Errorf("no %s finding in %v", check, findings)
}

func TestIdenticalArtifactsPass(t *testing.T) {
	for _, c := range []struct{ name, doc string }{
		{"BENCH_netsim.json", netsimCommitted},
		{"BENCH_spantrace.json", spantraceCommitted},
		{"BENCH_sweep.json", sweepCommitted},
		{"BENCH_integrity.json", integrityCommitted},
		{"BENCH_serve.json", serveCommitted},
		{"BENCH_ledger.json", ledgerCommitted},
	} {
		if out := mustCompare(t, c.name, c.doc, c.doc); len(out) != 0 {
			t.Errorf("%s vs itself: %v", c.name, out)
		}
	}
}

// TestPerturbedSweepFails is the sabotage test: hand-edit the fresh
// artifact the way a behavioral regression would (different
// fingerprint, shifted mean) and the gate must trip.
func TestPerturbedSweepFails(t *testing.T) {
	perturbed := strings.Replace(sweepCommitted, "64bbdc892ff233d8", "deadbeefdeadbeef", 1)
	perturbed = strings.Replace(perturbed, `"mean": 0.9964`, `"mean": 0.9876`, 1)
	out := mustCompare(t, "BENCH_sweep.json", sweepCommitted, perturbed)
	wantCheck(t, out, "sweep-fingerprint")
	wantCheck(t, out, "sweep-metric")
}

func TestSweepStructuralRegressions(t *testing.T) {
	broken := strings.Replace(sweepCommitted, `"deterministic": true`, `"deterministic": false`, 1)
	broken = strings.Replace(broken, `"errors": 0`, `"errors": 3`, 1)
	out := mustCompare(t, "BENCH_sweep.json", sweepCommitted, broken)
	wantCheck(t, out, "sweep-deterministic")
	wantCheck(t, out, "sweep-errors")

	empty := `{"schema": "spiderfs-sweep-bench/1", "sweeps": []}`
	wantCheck(t, mustCompare(t, "BENCH_sweep.json", sweepCommitted, empty), "sweep-missing")
}

func TestSweepSpeedupNotGated(t *testing.T) {
	// Wall-clock speedup varies by host CPU count and is recorded, not
	// gated: a 1-CPU runner regenerating the artifact must still pass.
	slow := strings.Replace(sweepCommitted, `"speedup": 4.1`, `"speedup": 0.93`, 1)
	if out := mustCompare(t, "BENCH_sweep.json", sweepCommitted, slow); len(out) != 0 {
		t.Errorf("speedup drift should not trip the gate: %v", out)
	}
}

// TestIntegrityGates is the sabotage suite for BENCH_integrity.json:
// any undetected corrupt read at the default interval is a hard
// failure, a vanished exposure baseline invalidates the gate, excess
// scrub overhead trips the ceiling, and the inherited sweep gates
// (fingerprints, means) stay exact.
func TestIntegrityGates(t *testing.T) {
	leak := strings.Replace(integrityCommitted,
		`"undetected_reads_at_default": 0`, `"undetected_reads_at_default": 0.25`, 1)
	wantCheck(t, mustCompare(t, "BENCH_integrity.json", integrityCommitted, leak),
		"undetected-corrupt-reads")

	vacuous := strings.Replace(integrityCommitted,
		`"undetected_reads_no_scrub": 5.125`, `"undetected_reads_no_scrub": 0`, 1)
	wantCheck(t, mustCompare(t, "BENCH_integrity.json", integrityCommitted, vacuous),
		"exposure-baseline")

	heavy := strings.Replace(integrityCommitted,
		`"scrub_overhead_frac": 0.134`, `"scrub_overhead_frac": 0.41`, 1)
	wantCheck(t, mustCompare(t, "BENCH_integrity.json", integrityCommitted, heavy),
		"scrub-overhead")

	drift := strings.Replace(integrityCommitted, "abcdef0123456789", "deadbeefdeadbeef", 1)
	drift = strings.Replace(drift, `{"name": "scrub_repairs", "n": 8, "mean": 45.25}`,
		`{"name": "scrub_repairs", "n": 8, "mean": 44.0}`, 1)
	out := mustCompare(t, "BENCH_integrity.json", integrityCommitted, drift)
	wantCheck(t, out, "sweep-fingerprint")
	wantCheck(t, out, "sweep-metric")

	// In-band overhead wobble on an otherwise identical artifact passes.
	wobble := strings.Replace(integrityCommitted,
		`"scrub_overhead_frac": 0.134`, `"scrub_overhead_frac": 0.168`, 1)
	if out := mustCompare(t, "BENCH_integrity.json", integrityCommitted, wobble); len(out) != 0 {
		t.Errorf("in-band overhead tripped the gate: %v", out)
	}
}

func TestNetsimGates(t *testing.T) {
	bad := strings.Replace(netsimCommitted, `"start_finish_alloc_ratio": 15.5`,
		`"start_finish_alloc_ratio": 3.2`, 1)
	wantCheck(t, mustCompare(t, "BENCH_netsim.json", netsimCommitted, bad), "alloc-ratio")

	slow := strings.Replace(netsimCommitted, `"start_finish_speedup": 6.85`,
		`"start_finish_speedup": 0.8`, 1)
	wantCheck(t, mustCompare(t, "BENCH_netsim.json", netsimCommitted, slow), "speedup")

	leaky := strings.Replace(netsimCommitted,
		`{"name": "start_finish/ordered", "ns_per_op": 1663.5, "allocs_per_op": 4}`,
		`{"name": "start_finish/ordered", "ns_per_op": 1663.5, "allocs_per_op": 40}`, 1)
	wantCheck(t, mustCompare(t, "BENCH_netsim.json", netsimCommitted, leaky), "allocs-per-op")

	// Small drift stays inside the tolerances.
	drift := strings.Replace(netsimCommitted, `"start_finish_alloc_ratio": 15.5`,
		`"start_finish_alloc_ratio": 13.0`, 1)
	if out := mustCompare(t, "BENCH_netsim.json", netsimCommitted, drift); len(out) != 0 {
		t.Errorf("in-tolerance drift tripped the gate: %v", out)
	}
}

// TestShardGates is the sabotage suite for the sharded-engine section:
// the fresh run must keep the section, stay deterministic across
// double-runs, and every worker count's fingerprint must exactly equal
// the fresh serial run's. Parallel speedup is recorded, never gated —
// a 1-CPU host regenerating the artifact cannot exceed 1.
func TestShardGates(t *testing.T) {
	gone := strings.Replace(netsimCommitted, `"deterministic": true,
    "speedup": 3.79`, `"deterministic": true, "speedup": 3.79`, 1)
	gone = strings.Replace(gone, `"shard": {`, `"shard_disabled": {`, 1)
	wantCheck(t, mustCompare(t, "BENCH_netsim.json", netsimCommitted, gone), "shard-missing")

	racy := strings.Replace(netsimCommitted, `"deterministic": true`,
		`"deterministic": false`, 1)
	wantCheck(t, mustCompare(t, "BENCH_netsim.json", netsimCommitted, racy), "shard-deterministic")

	drift := strings.Replace(netsimCommitted,
		`{"workers": 4, "ns_per_op": 31000000, "ns_per_flow_event": 1900, "fingerprint": "4a385d102758467e"}`,
		`{"workers": 4, "ns_per_op": 31000000, "ns_per_flow_event": 1900, "fingerprint": "deadbeefdeadbeef"}`, 1)
	wantCheck(t, mustCompare(t, "BENCH_netsim.json", netsimCommitted, drift), "shard-fingerprint")

	// Fingerprint identity is within the fresh artifact: a fresh serial
	// fingerprint that differs from the committed one (workload retuned)
	// passes as long as every worker count agrees with it.
	retuned := strings.Replace(netsimCommitted, "4a385d102758467e", "0123456789abcdef", 4)
	if out := mustCompare(t, "BENCH_netsim.json", netsimCommitted, retuned); len(out) != 0 {
		t.Errorf("internally consistent fingerprints tripped the gate: %v", out)
	}

	slow := strings.Replace(netsimCommitted, `"speedup": 3.79`, `"speedup": 0.91`, 1)
	if out := mustCompare(t, "BENCH_netsim.json", netsimCommitted, slow); len(out) != 0 {
		t.Errorf("shard speedup drift should not trip the gate: %v", out)
	}
}

func TestSpantraceGates(t *testing.T) {
	bad := strings.Replace(spantraceCommitted, `"overhead_frac": -0.084`,
		`"overhead_frac": 0.11`, 1)
	wantCheck(t, mustCompare(t, "BENCH_spantrace.json", spantraceCommitted, bad), "overhead")

	sparse := strings.Replace(spantraceCommitted, `"spans_per_op": 518.75`,
		`"spans_per_op": 120.0`, 1)
	wantCheck(t, mustCompare(t, "BENCH_spantrace.json", spantraceCommitted, sparse), "spans-per-op")
}

// TestServeGates is the sabotage suite for BENCH_serve.json: a drifted
// probe fingerprint, a cold-vs-warm divergence, any failed session, or
// a vanished/empty execution path must each trip the gate, while the
// latency-derived fields (speedups, sessions/sec, percentiles) may
// swing freely — a 1-CPU host regenerating the artifact reports
// different ratios and must still pass.
func TestServeGates(t *testing.T) {
	drift := strings.Replace(serveCommitted, "6f1d2c3b4a596877", "deadbeefdeadbeef", 1)
	wantCheck(t, mustCompare(t, "BENCH_serve.json", serveCommitted, drift), "serve-fingerprint")

	racy := strings.Replace(serveCommitted, `"deterministic": true`, `"deterministic": false`, 1)
	wantCheck(t, mustCompare(t, "BENCH_serve.json", serveCommitted, racy), "serve-deterministic")

	failed := strings.Replace(serveCommitted, `"errors": 0`, `"errors": 2`, 1)
	wantCheck(t, mustCompare(t, "BENCH_serve.json", serveCommitted, failed), "serve-errors")

	gone := strings.Replace(serveCommitted, `"path": "warm"`, `"path": "lukewarm"`, 1)
	wantCheck(t, mustCompare(t, "BENCH_serve.json", serveCommitted, gone), "serve-path")

	hollow := strings.Replace(serveCommitted, `{"path": "cache", "sessions": 12`,
		`{"path": "cache", "sessions": 0`, 1)
	wantCheck(t, mustCompare(t, "BENCH_serve.json", serveCommitted, hollow), "serve-path")

	// Timing swings never gate: halve every rate, invert both speedups.
	slow := strings.Replace(serveCommitted, `"warm_speedup": 1.8`, `"warm_speedup": 0.4`, 1)
	slow = strings.Replace(slow, `"cache_speedup": 240.5`, `"cache_speedup": 0.9`, 1)
	slow = strings.Replace(slow, `"sessions_per_sec": 560.2`, `"sessions_per_sec": 4.1`, 1)
	slow = strings.Replace(slow, `"p99_ns": 2900000`, `"p99_ns": 990000000`, 1)
	if out := mustCompare(t, "BENCH_serve.json", serveCommitted, slow); len(out) != 0 {
		t.Errorf("latency drift should not trip the gate: %v", out)
	}
}

func TestSchemaMismatchAndErrors(t *testing.T) {
	other := strings.Replace(spantraceCommitted, "spiderfs-spantrace-bench/1",
		"spiderfs-spantrace-bench/2", 1)
	wantCheck(t, mustCompare(t, "BENCH_spantrace.json", spantraceCommitted, other), "schema")

	if _, err := Compare("x.json", []byte("{not json"), []byte("{}")); err == nil {
		t.Error("malformed committed artifact should error")
	}
	if _, err := Compare("x.json", []byte(`{"schema":"nope/9"}`), []byte(`{"schema":"nope/9"}`)); err == nil {
		t.Error("unknown schema should error")
	}
}

const ledgerCommitted = `{
  "schema": "spiderfs-ledger-bench/1",
  "cpus": 8,
  "seed": 7,
  "campaign_entries": 42,
  "campaign_anchors": 14,
  "campaign_drops": 0,
  "campaign_roots": ["aaaa000000000001", "aaaa000000000002"],
  "campaign_head": "b6e21a5d6da66887",
  "deterministic": true,
  "traced_identical": true,
  "audit_clean": true,
  "tamper_total": 5,
  "tampers_detected": 5,
  "tampers": [
    {"name": "entry-mutation", "detected": true, "class": "entry-mutation", "epoch": 5},
    {"name": "entry-deletion", "detected": true, "class": "sequence-gap", "epoch": 8},
    {"name": "chain-truncation", "detected": true, "class": "history-truncation", "epoch": 12},
    {"name": "batch-reorder", "detected": true, "class": "anchor-break", "epoch": 2},
    {"name": "forged-suffix", "detected": true, "class": "root-divergence", "epoch": 12}
  ],
  "batches": [
    {"max_batch": 64, "entries": 8192, "anchors": 128, "head": "cccc000000000064", "append_ns": 4100000, "entries_per_sec": 1998048.0},
    {"max_batch": 4096, "entries": 8192, "anchors": 3, "head": "cccc000000004096", "append_ns": 3900000, "entries_per_sec": 2100512.0}
  ]
}`

// TestLedgerGates is the sabotage suite for BENCH_ledger.json: a
// shifted root or head, a lost determinism/audit property, an
// undetected tamper class, or a drifted batch anchor head must each
// trip its gate, while wall-clock throughput drift passes.
func TestLedgerGates(t *testing.T) {
	drift := strings.Replace(ledgerCommitted, `"campaign_head": "b6e21a5d6da66887"`,
		`"campaign_head": "deadbeefdeadbeef"`, 1)
	wantCheck(t, mustCompare(t, "BENCH_ledger.json", ledgerCommitted, drift), "ledger-head")

	root := strings.Replace(ledgerCommitted, `"aaaa000000000002"`, `"aaaa00000000beef"`, 1)
	wantCheck(t, mustCompare(t, "BENCH_ledger.json", ledgerCommitted, root), "ledger-roots")

	nondet := strings.Replace(ledgerCommitted, `"deterministic": true`, `"deterministic": false`, 1)
	wantCheck(t, mustCompare(t, "BENCH_ledger.json", ledgerCommitted, nondet), "ledger-deterministic")

	traced := strings.Replace(ledgerCommitted, `"traced_identical": true`, `"traced_identical": false`, 1)
	wantCheck(t, mustCompare(t, "BENCH_ledger.json", ledgerCommitted, traced), "ledger-traced")

	dirty := strings.Replace(ledgerCommitted, `"audit_clean": true`, `"audit_clean": false`, 1)
	wantCheck(t, mustCompare(t, "BENCH_ledger.json", ledgerCommitted, dirty), "ledger-audit")

	missed := strings.Replace(ledgerCommitted, `"tampers_detected": 5`, `"tampers_detected": 4`, 1)
	missed = strings.Replace(missed,
		`{"name": "forged-suffix", "detected": true`, `{"name": "forged-suffix", "detected": false`, 1)
	wantCheck(t, mustCompare(t, "BENCH_ledger.json", ledgerCommitted, missed), "ledger-tampers")

	counts := strings.Replace(ledgerCommitted, `"campaign_entries": 42`, `"campaign_entries": 41`, 1)
	wantCheck(t, mustCompare(t, "BENCH_ledger.json", ledgerCommitted, counts), "ledger-counts")

	batch := strings.Replace(ledgerCommitted, `"head": "cccc000000004096"`,
		`"head": "cccc0000dead4096"`, 1)
	wantCheck(t, mustCompare(t, "BENCH_ledger.json", ledgerCommitted, batch), "ledger-batch")

	gone := strings.Replace(ledgerCommitted,
		`{"max_batch": 4096, "entries": 8192, "anchors": 3, "head": "cccc000000004096", "append_ns": 3900000, "entries_per_sec": 2100512.0}`,
		``, 1)
	gone = strings.Replace(gone, `, "entries_per_sec": 1998048.0},`, `, "entries_per_sec": 1998048.0}`, 1)
	wantCheck(t, mustCompare(t, "BENCH_ledger.json", ledgerCommitted, gone), "ledger-batch")

	// Wall-clock throughput drift on an otherwise identical artifact
	// passes: append_ns and entries_per_sec are recorded, not gated.
	wall := strings.Replace(ledgerCommitted, `"append_ns": 4100000`, `"append_ns": 9900000`, 1)
	wall = strings.Replace(wall, `"entries_per_sec": 1998048.0`, `"entries_per_sec": 820000.0`, 1)
	if out := mustCompare(t, "BENCH_ledger.json", ledgerCommitted, wall); len(out) != 0 {
		t.Errorf("wall-clock drift tripped the gate: %v", out)
	}
}
