package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// simScoped reports whether p is one of the module's internal
// simulation packages — the hermetic, deterministic substrate. The
// analyzer itself is excluded: it must read the tree it checks.
func simScoped(m *Module, p *Package) bool {
	if p.Path == m.Path+"/internal/lint" || strings.HasPrefix(p.Path, m.Path+"/internal/lint/") {
		return false
	}
	return strings.HasPrefix(p.Path, m.Path+"/internal/")
}

// corePkg reports whether p is one of the engine-adjacent packages
// where every map iteration is banned outright, not just near sinks.
func corePkg(m *Module, p *Package) bool {
	for _, core := range []string{"/internal/sim", "/internal/netsim", "/internal/chaos"} {
		full := m.Path + core
		if p.Path == full || strings.HasPrefix(p.Path, full+"/") {
			return true
		}
	}
	return false
}

// bannedUse walks p's non-test files and reports every use of one of
// the named package-level objects (or any object when names is nil)
// from the given dependency package.
func bannedUse(m *Module, p *Package, fromPath string, names map[string]bool, check, format string) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	var diags []Diagnostic
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != fromPath {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || recvTypeName(fn) != "" {
				return true // type/const reference or method call, not a package-level function
			}
			if names != nil && !names[obj.Name()] {
				return true
			}
			diags = append(diags, Diagnostic{
				Check:   check,
				Pos:     m.Fset.Position(sel.Pos()),
				Message: fmt.Sprintf(format, fromPath+"."+obj.Name()),
			})
			return true
		})
	}
	return diags
}

// checkNoWallclock bans wall-clock time sources in simulation packages.
// Simulated experiments read time only from the sim.Engine clock; a
// single time.Now would couple results to the host machine and break
// bit-identical reruns (DESIGN.md determinism contract).
var checkNoWallclock = &Check{
	Name: "no-wallclock",
	Doc:  "internal/ simulation packages must not read the wall clock (time.Now, time.Since, timers)",
	run: func(m *Module, p *Package) []Diagnostic {
		if !simScoped(m, p) {
			return nil
		}
		banned := map[string]bool{
			"Now": true, "Since": true, "Until": true, "Sleep": true,
			"After": true, "AfterFunc": true, "Tick": true,
			"NewTimer": true, "NewTicker": true,
		}
		return bannedUse(m, p, "time", banned, "no-wallclock",
			"%s reads the wall clock; simulation code must use the sim.Engine clock")
	},
}

// checkNoGlobalRand bans math/rand entirely. The global functions are
// seeded per-process (nondeterministic across runs); even rand.New
// bypasses the repo's named-stream discipline in internal/rng that
// keeps sub-models statistically independent under refactoring.
var checkNoGlobalRand = &Check{
	Name: "no-global-rand",
	Doc:  "math/rand is banned; draw randomness from seeded internal/rng streams",
	run: func(m *Module, p *Package) []Diagnostic {
		if p.Path == m.Path+"/internal/rng" {
			return nil // the one package allowed to own raw generators
		}
		var diags []Diagnostic
		for _, from := range []string{"math/rand", "math/rand/v2"} {
			diags = append(diags, bannedUse(m, p, from, nil, "no-global-rand",
				"%s bypasses the seeded internal/rng streams; derive a Source with rng.New/Split")...)
		}
		return diags
	},
}

// checkOrderedMapRange is the PR 2 bug class, mechanized: iterating a
// Go map yields a randomized order, so a map range anywhere it can
// reach event scheduling or report/trace emission makes two identical
// runs diverge. Inside the engine-adjacent packages (sim, netsim,
// chaos) every map range is flagged; elsewhere a map range is flagged
// when its enclosing function schedules engine events or writes
// report/trace output — directly, any number of call hops away through
// the module call graph, or through a function/method value it hands
// off as a callback. The diagnostic spells out the whole hazard path
// (f → g → h → sim.Engine.At) so the reader does not have to rebuild
// the chain by hand.
var checkOrderedMapRange = &Check{
	Name: "ordered-map-range",
	Doc:  "no map iteration in engine packages or near event-scheduling/report-writing code (transitive)",
	run: func(m *Module, p *Package) []Diagnostic {
		if p.Info == nil {
			return nil
		}
		core := corePkg(m, p)
		fs := m.factsWith(p)
		var diags []Diagnostic
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				reason, hazardous := "", false
				if core {
					reason, hazardous = "inside an engine-adjacent package", true
				} else {
					var path string
					reason, path, hazardous = fs.hazard(obj)
					if hazardous {
						reason += " (path: " + path + ")"
					}
				}
				if !hazardous {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					rs, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					t := p.Info.TypeOf(rs.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						return true
					}
					diags = append(diags, Diagnostic{
						Check: "ordered-map-range",
						Pos:   m.Fset.Position(rs.Pos()),
						Message: fmt.Sprintf(
							"map iteration order is randomized and this function %s; iterate an ordered registry or sorted keys",
							reason),
					})
					return true
				})
			}
		}
		return diags
	},
}

// checkNoLibraryPanic enforces the PR 1 hardening: library code
// reports failures as errors (counted, injectable, recoverable —
// §IV-E treats operator-visible failure handling as a first-class
// concern); panicking is reserved for main packages, tests, and
// explicitly annotated can't-happen invariant assertions.
var checkNoLibraryPanic = &Check{
	Name: "no-library-panic",
	Doc:  "no panic() in library code outside _test.go and main packages",
	run: func(m *Module, p *Package) []Diagnostic {
		if p.Info == nil || p.Name == "main" {
			return nil
		}
		var diags []Diagnostic
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				diags = append(diags, Diagnostic{
					Check:   "no-library-panic",
					Pos:     m.Fset.Position(call.Pos()),
					Message: "library code must return errors, not panic; annotate provable invariant assertions with //simlint:allow no-library-panic <why>",
				})
				return true
			})
		}
		return diags
	},
}

// checkStdlibOnlyImports enforces the repo's stdlib-only rule in every
// file, tests included: the only import paths allowed are standard
// library packages and the module's own.
var checkStdlibOnlyImports = &Check{
	Name: "stdlib-only-imports",
	Doc:  "only standard-library and module-local import paths are allowed",
	run: func(m *Module, p *Package) []Diagnostic {
		var diags []Diagnostic
		files := append(append([]*ast.File(nil), p.Files...), p.TestFiles...)
		for _, file := range files {
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if modulePathMember(m.Path, path) || stdlibPath(path) {
					continue
				}
				diags = append(diags, Diagnostic{
					Check:   "stdlib-only-imports",
					Pos:     m.Fset.Position(imp.Pos()),
					Message: fmt.Sprintf("import %q is neither standard library nor module-local; the module is stdlib-only", path),
				})
			}
		}
		return diags
	},
}

// checkEnvFreeSim keeps simulation packages hermetic: experiment
// outcomes must be a function of configuration and seed alone, never
// of the host environment or filesystem. I/O belongs at the edges
// (cmd/ tools), passed in as io.Reader/io.Writer or parsed data.
var checkEnvFreeSim = &Check{
	Name: "env-free-sim",
	Doc:  "internal/ simulation packages must not read the process environment or filesystem",
	run: func(m *Module, p *Package) []Diagnostic {
		if !simScoped(m, p) {
			return nil
		}
		banned := map[string]bool{
			"Getenv": true, "LookupEnv": true, "Environ": true,
			"ReadFile": true, "WriteFile": true, "ReadDir": true,
			"Open": true, "OpenFile": true, "Create": true,
			"Getwd": true, "Hostname": true, "UserHomeDir": true,
		}
		return bannedUse(m, p, "os", banned, "env-free-sim",
			"%s makes a simulation package non-hermetic; accept io.Reader/io.Writer or data from the caller")
	},
}
