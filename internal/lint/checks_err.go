package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkDroppedError statically enforces the PR 1 "counted error paths"
// contract: simulation code converted its panic paths into returned
// errors precisely so that failures are counted, injectable, and
// recoverable — a call site that throws the error away un-counts it
// again. A bare statement call (plain, go, or defer) to a module-local
// function returning error is flagged. The explicit discard `_ = f()`
// stays legal: it is greppable, visibly deliberate, and the reviewable
// equivalent of an inline annotation.
var checkDroppedError = &Check{
	Name: "dropped-error",
	Doc:  "module-local calls returning error must not be discarded in internal/ sim packages",
	run: func(m *Module, p *Package) []Diagnostic {
		if p.Info == nil || !simScoped(m, p) {
			return nil
		}
		var diags []Diagnostic
		flag := func(call *ast.CallExpr, how string) {
			fn := calleeOf(p.Info, call.Fun)
			if fn == nil || fn.Pkg() == nil || !modulePathMember(m.Path, fn.Pkg().Path()) {
				return
			}
			if !returnsError(fn) {
				return
			}
			diags = append(diags, Diagnostic{
				Check: "dropped-error",
				Pos:   m.Fset.Position(call.Pos()),
				Message: fmt.Sprintf(
					"%s discards the error from %s; handle it, count it, or discard explicitly with _ =", how, fn.Name()),
			})
		}
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if call, ok := st.X.(*ast.CallExpr); ok {
						flag(call, "statement call")
					}
				case *ast.GoStmt:
					flag(st.Call, "go statement")
				case *ast.DeferStmt:
					flag(st.Call, "defer statement")
				}
				return true
			})
		}
		return diags
	},
}

// returnsError reports whether any of fn's results is the built-in
// error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return true
		}
	}
	return false
}
