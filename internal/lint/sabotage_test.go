package lint

import (
	"strings"
	"testing"
)

// The PR 2 regression, reconstructed in memory: a tracker that
// schedules completion events straight out of a Go map range. Same
// model, same seed — but the engine sees a different scheduling order
// every run, so traces diverge. simlint must refuse it.
const sabotageSrc = `package sabotage

import "spiderfs/internal/sim"

type Tracker struct {
	eng     *sim.Engine
	pending map[string]sim.Time
}

func (t *Tracker) ScheduleCompletions(done func(string)) {
	for name, at := range t.pending {
		n := name
		t.eng.At(at, func() { done(n) })
	}
}
`

// The ordered-registry rewrite PR 2 shipped: an insertion-ordered
// slice is the scheduling source; the map (if any) is only a lookup
// index. Zero diagnostics.
const orderedSrc = `package sabotage

import "spiderfs/internal/sim"

type item struct {
	name string
	at   sim.Time
}

type Tracker struct {
	eng   *sim.Engine
	order []item            // insertion-ordered registry drives scheduling
	index map[string]int    // lookup only, never ranged
}

func (t *Tracker) ScheduleCompletions(done func(string)) {
	for _, it := range t.order {
		n := it.name
		t.eng.At(it.at, func() { done(n) })
	}
}
`

// TestSabotageMapRangeScheduling mirrors the PR 2 sabotage-validation
// pattern: the map-range version of the completion scheduler must trip
// ordered-map-range, and the ordered-registry rewrite must be clean —
// so reverting that fix can never land silently again.
func TestSabotageMapRangeScheduling(t *testing.T) {
	m := loadRepo(t)

	pkg, err := m.TypecheckSource("spiderfs/internal/sabotage", map[string]string{
		"sabotage.go": sabotageSrc,
	})
	if err != nil {
		t.Fatalf("TypecheckSource: %v", err)
	}
	diags := m.RunPackage(pkg, Checks())
	if len(diags) != 1 {
		t.Fatalf("sabotage package: got %d diagnostics %v, want exactly 1", len(diags), diags)
	}
	d := diags[0]
	if d.Check != "ordered-map-range" {
		t.Fatalf("check = %s, want ordered-map-range", d.Check)
	}
	if !strings.Contains(d.Message, "schedules engine events") {
		t.Fatalf("message should name the scheduling hazard: %q", d.Message)
	}

	fixed, err := m.TypecheckSource("spiderfs/internal/sabotage", map[string]string{
		"ordered.go": orderedSrc,
	})
	if err != nil {
		t.Fatalf("TypecheckSource(fixed): %v", err)
	}
	if diags := m.RunPackage(fixed, Checks()); len(diags) != 0 {
		t.Fatalf("ordered rewrite should be clean, got %v", diags)
	}
}

// TestSabotageSingleCheckSelection proves checks run independently: the
// same sabotage source is silent when only an unrelated check runs.
func TestSabotageSingleCheckSelection(t *testing.T) {
	m := loadRepo(t)
	pkg, err := m.TypecheckSource("spiderfs/internal/sabotage", map[string]string{
		"sabotage.go": sabotageSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if diags := m.RunPackage(pkg, []*Check{checkNoWallclock}); len(diags) != 0 {
		t.Fatalf("no-wallclock alone should be silent here, got %v", diags)
	}
	if diags := m.RunPackage(pkg, []*Check{checkOrderedMapRange}); len(diags) != 1 {
		t.Fatalf("ordered-map-range alone should fire once, got %v", diags)
	}
}
