package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The PR 2 regression, reconstructed in memory: a tracker that
// schedules completion events straight out of a Go map range. Same
// model, same seed — but the engine sees a different scheduling order
// every run, so traces diverge. simlint must refuse it.
const sabotageSrc = `package sabotage

import "spiderfs/internal/sim"

type Tracker struct {
	eng     *sim.Engine
	pending map[string]sim.Time
}

func (t *Tracker) ScheduleCompletions(done func(string)) {
	for name, at := range t.pending {
		n := name
		t.eng.At(at, func() { done(n) })
	}
}
`

// The ordered-registry rewrite PR 2 shipped: an insertion-ordered
// slice is the scheduling source; the map (if any) is only a lookup
// index. Zero diagnostics.
const orderedSrc = `package sabotage

import "spiderfs/internal/sim"

type item struct {
	name string
	at   sim.Time
}

type Tracker struct {
	eng   *sim.Engine
	order []item            // insertion-ordered registry drives scheduling
	index map[string]int    // lookup only, never ranged
}

func (t *Tracker) ScheduleCompletions(done func(string)) {
	for _, it := range t.order {
		n := it.name
		t.eng.At(it.at, func() { done(n) })
	}
}
`

// TestSabotageMapRangeScheduling mirrors the PR 2 sabotage-validation
// pattern: the map-range version of the completion scheduler must trip
// ordered-map-range, and the ordered-registry rewrite must be clean —
// so reverting that fix can never land silently again.
func TestSabotageMapRangeScheduling(t *testing.T) {
	m := loadRepo(t)

	pkg, err := m.TypecheckSource("spiderfs/internal/sabotage", map[string]string{
		"sabotage.go": sabotageSrc,
	})
	if err != nil {
		t.Fatalf("TypecheckSource: %v", err)
	}
	diags := m.RunPackage(pkg, Checks())
	if len(diags) != 1 {
		t.Fatalf("sabotage package: got %d diagnostics %v, want exactly 1", len(diags), diags)
	}
	d := diags[0]
	if d.Check != "ordered-map-range" {
		t.Fatalf("check = %s, want ordered-map-range", d.Check)
	}
	if !strings.Contains(d.Message, "schedules engine events") {
		t.Fatalf("message should name the scheduling hazard: %q", d.Message)
	}

	fixed, err := m.TypecheckSource("spiderfs/internal/sabotage", map[string]string{
		"ordered.go": orderedSrc,
	})
	if err != nil {
		t.Fatalf("TypecheckSource(fixed): %v", err)
	}
	if diags := m.RunPackage(fixed, Checks()); len(diags) != 0 {
		t.Fatalf("ordered rewrite should be clean, got %v", diags)
	}
}

// TestSabotageTransitivePath is the whole-program upgrade's sharpest
// regression: a map range three calls from the scheduler, with the
// diagnostic spelling the full chain. The one-hop analyzer this
// replaced was provably blind here.
func TestSabotageTransitivePath(t *testing.T) {
	m := loadRepo(t)
	pkg, err := m.TypecheckSource("spiderfs/internal/sabotage", map[string]string{
		"deep.go": `package sabotage

import "spiderfs/internal/sim"

type entry struct{ at sim.Time }

func arm(eng *sim.Engine, e entry)   { eng.At(e.at, func() {}) }
func relay(eng *sim.Engine, e entry) { arm(eng, e) }
func stage(eng *sim.Engine, e entry) { relay(eng, e) }

func drain(eng *sim.Engine, pending map[string]sim.Time) {
	for _, at := range pending {
		stage(eng, entry{at: at})
	}
}
`,
	})
	if err != nil {
		t.Fatalf("TypecheckSource: %v", err)
	}
	diags := m.RunPackage(pkg, []*Check{checkOrderedMapRange})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want exactly 1", len(diags), diags)
	}
	msg := diags[0].Message
	for _, want := range []string{"schedules engine events", "drain → stage → relay → arm → sim.Engine.At"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q missing %q", msg, want)
		}
	}
}

// TestSabotageCallbackHandOff pins the calleeOf fix: a hazardous method
// handed off as a method value (never called directly) still taints the
// handing function.
func TestSabotageCallbackHandOff(t *testing.T) {
	m := loadRepo(t)
	pkg, err := m.TypecheckSource("spiderfs/internal/sabotage", map[string]string{
		"handoff.go": `package sabotage

import "spiderfs/internal/sim"

type trig struct{ eng *sim.Engine }

func (t *trig) fire(at sim.Time) { t.eng.At(at, func() {}) }

func each(ats []sim.Time, f func(sim.Time)) {
	for _, at := range ats {
		f(at)
	}
}

func (t *trig) flush(pending map[string]sim.Time) {
	for _, at := range pending {
		each([]sim.Time{at}, t.fire)
	}
}
`,
	})
	if err != nil {
		t.Fatalf("TypecheckSource: %v", err)
	}
	diags := m.RunPackage(pkg, []*Check{checkOrderedMapRange})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want exactly 1 (the handed-off callback must be an edge)", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "flush → fire → sim.Engine.At") {
		t.Errorf("diagnostic %q should spell the hand-off path", diags[0].Message)
	}
}

// TestSabotageShardIsolation seeds a cross-shard captured write into an
// in-memory copy of the real internal/shard sources and asserts
// shard-isolation refuses it — so the Send/outbox seam PR 7 shipped
// cannot be bypassed silently, even by code living inside the package.
func TestSabotageShardIsolation(t *testing.T) {
	m := loadRepo(t)
	files := map[string]string{}
	for _, name := range []string{"shard.go", "fabric.go"} {
		src, err := os.ReadFile(filepath.Join("../shard", name))
		if err != nil {
			t.Fatalf("reading real shard source: %v", err)
		}
		files[name] = string(src)
	}

	// The unmodified copy must be clean: the real worker pool writes
	// nothing captured (engines are shared-nothing during a quantum).
	clean, err := m.TypecheckSource("spiderfs/internal/shard", files)
	if err != nil {
		t.Fatalf("TypecheckSource(clean): %v", err)
	}
	if diags := m.RunPackage(clean, []*Check{checkShardIsolation}); len(diags) != 0 {
		t.Fatalf("pristine internal/shard copy should be clean, got %v", diags)
	}

	// Sabotage: a per-quantum event tally accumulated straight across
	// worker goroutines — the exact seam bypass the barrier exists to
	// prevent.
	files["sabotage.go"] = `package shard

import "sync"

func (r *Runner) racyEventTally() uint64 {
	var total uint64
	var wg sync.WaitGroup
	for _, s := range r.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			total += s.Eng.Fired()
		}(s)
	}
	wg.Wait()
	return total
}
`
	sab, err := m.TypecheckSource("spiderfs/internal/shard", files)
	if err != nil {
		t.Fatalf("TypecheckSource(sabotage): %v", err)
	}
	diags := m.RunPackage(sab, []*Check{checkShardIsolation})
	if len(diags) != 1 {
		t.Fatalf("seeded cross-shard write: got %d diagnostics %v, want exactly 1", len(diags), diags)
	}
	d := diags[0]
	if d.Check != "shard-isolation" || d.File != "sabotage.go" {
		t.Fatalf("diagnostic %v should be shard-isolation in sabotage.go", d)
	}
	if !strings.Contains(d.Message, "total") || !strings.Contains(d.Message, "Shard.Send") {
		t.Errorf("message %q should name the captured target and point at the Send seam", d.Message)
	}
}

// TestSabotageSingleCheckSelection proves checks run independently: the
// same sabotage source is silent when only an unrelated check runs.
func TestSabotageSingleCheckSelection(t *testing.T) {
	m := loadRepo(t)
	pkg, err := m.TypecheckSource("spiderfs/internal/sabotage", map[string]string{
		"sabotage.go": sabotageSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if diags := m.RunPackage(pkg, []*Check{checkNoWallclock}); len(diags) != 0 {
		t.Fatalf("no-wallclock alone should be silent here, got %v", diags)
	}
	if diags := m.RunPackage(pkg, []*Check{checkOrderedMapRange}); len(diags) != 1 {
		t.Fatalf("ordered-map-range alone should fire once, got %v", diags)
	}
}
