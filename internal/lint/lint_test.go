package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// moduleOnce caches the (srcimporter-backed) load of the real module;
// loading pulls the full stdlib dependency closure from source, so the
// tests share one instance.
var (
	moduleOnce sync.Once
	moduleVal  *Module
	moduleErr  error
)

func loadRepo(t *testing.T) *Module {
	t.Helper()
	moduleOnce.Do(func() {
		moduleVal, moduleErr = LoadModule("../..")
	})
	if moduleErr != nil {
		t.Fatalf("LoadModule: %v", moduleErr)
	}
	return moduleVal
}

// TestRepositoryIsClean is the tier-1 gate in test form: the committed
// tree must produce zero diagnostics (violations are either fixed or
// carry a reasoned //simlint:allow).
func TestRepositoryIsClean(t *testing.T) {
	m := loadRepo(t)
	diags := m.Run(Checks())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(m.Pkgs) < 30 {
		t.Fatalf("loaded only %d packages; loader is missing parts of the tree", len(m.Pkgs))
	}
}

// TestCorpus runs every check over the want-marker corpus: each
// testdata/src case is one package whose `// want check [check...]`
// trailing comments enumerate the diagnostics that must fire on that
// line — and every unmarked line must stay silent.
func TestCorpus(t *testing.T) {
	m := loadRepo(t)
	cases, err := os.ReadDir("testdata/src")
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	if len(cases) == 0 {
		t.Fatal("empty corpus")
	}
	for _, c := range cases {
		if !c.IsDir() {
			continue
		}
		t.Run(c.Name(), func(t *testing.T) {
			runCorpusCase(t, m, filepath.Join("testdata/src", c.Name()))
		})
	}
}

func runCorpusCase(t *testing.T, m *Module, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	files := map[string]string{}
	importPath := "spiderfs/internal/" + filepath.Base(dir)
	// want[file:line] is the multiset of check names expected there.
	want := map[string][]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		files[name] = string(src)
		for i, line := range strings.Split(string(src), "\n") {
			if p, ok := strings.CutPrefix(line, "//simlint:importpath "); ok {
				importPath = strings.TrimSpace(p)
			}
			if _, marks, ok := strings.Cut(line, "// want "); ok {
				key := fmt.Sprintf("%s:%d", name, i+1)
				want[key] = append(want[key], strings.Fields(marks)...)
			}
		}
	}
	pkg, err := m.TypecheckSource(importPath, files)
	if err != nil {
		t.Fatalf("TypecheckSource: %v", err)
	}
	got := map[string][]string{}
	for _, d := range m.RunPackage(pkg, Checks()) {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		got[key] = append(got[key], d.Check)
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		w, g := append([]string(nil), want[k]...), append([]string(nil), got[k]...)
		sort.Strings(w)
		sort.Strings(g)
		if strings.Join(w, " ") != strings.Join(g, " ") {
			t.Errorf("%s: want [%s], got [%s]", k, strings.Join(w, " "), strings.Join(g, " "))
		}
	}
}

// TestEveryCheckIsCorpusCovered guards the corpus itself: each of the
// six checks must have at least one proven-failing marker and at least
// one clean fixture package, so a regression that silently disables a
// check cannot hide behind an empty corpus.
func TestEveryCheckIsCorpusCovered(t *testing.T) {
	fails := map[string]int{}
	cleanDirs := 0
	dirs, err := os.ReadDir("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		marked := false
		entries, err := os.ReadDir(filepath.Join("testdata/src", d.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			src, err := os.ReadFile(filepath.Join("testdata/src", d.Name(), e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for _, line := range strings.Split(string(src), "\n") {
				if _, marks, ok := strings.Cut(line, "// want "); ok {
					marked = true
					for _, name := range strings.Fields(marks) {
						fails[name]++
					}
				}
			}
		}
		if !marked {
			cleanDirs++
		}
	}
	for _, c := range Checks() {
		if fails[c.Name] == 0 {
			t.Errorf("check %s has no failing corpus case", c.Name)
		}
	}
	if cleanDirs < len(Checks()) {
		t.Errorf("only %d clean fixture packages for %d checks", cleanDirs, len(Checks()))
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"//simlint:allow no-wallclock benchmark harness", "no-wallclock"},
		{"//simlint:allow a,b reason text", "a b"},
		{"//simlint:allow", ""},
		{"// simlint:allow no-wallclock", ""}, // directives tolerate no space after //
		{"// plain comment", ""},
	}
	for _, c := range cases {
		got := strings.Join(parseAllow(c.in), " ")
		if got != c.want {
			t.Errorf("parseAllow(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStdlibPath(t *testing.T) {
	for path, want := range map[string]bool{
		"fmt":                   true,
		"encoding/json":         true,
		"github.com/acme/x":     false,
		"golang.org/x/tools":    false,
		"example.com":           false,
		"container/heap":        true,
		"gonum.org/v1/plot":     false,
		"internal/whatever/sub": true,
	} {
		if got := stdlibPath(path); got != want {
			t.Errorf("stdlibPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestModulePathParsing(t *testing.T) {
	if got := modulePath("module spiderfs\n\ngo 1.22\n"); got != "spiderfs" {
		t.Errorf("modulePath = %q", got)
	}
	if got := modulePath("// junk\n"); got != "" {
		t.Errorf("modulePath on junk = %q", got)
	}
}

func TestJSONShape(t *testing.T) {
	d := Diagnostic{Check: "no-wallclock", Message: "m"}
	d.File, d.Line, d.Col = "a.go", 3, 7
	if s := d.String(); s != "a.go:3:7: no-wallclock: m" {
		t.Errorf("String() = %q", s)
	}
}

// TestCheckDocs keeps the -list output (and DESIGN.md's invariant
// table) honest: every check carries a stable name and a doc line.
func TestCheckDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Checks() {
		if c.Name == "" || c.Doc == "" {
			t.Errorf("check %+v missing name or doc", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate check name %s", c.Name)
		}
		seen[c.Name] = true
		if LookupCheck(c.Name) != c {
			t.Errorf("LookupCheck(%s) does not round-trip", c.Name)
		}
	}
	if LookupCheck("no-such-check") != nil {
		t.Error("LookupCheck should return nil for unknown names")
	}
}
