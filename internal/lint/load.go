package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package of the module.
type Package struct {
	Path      string      // import path
	Name      string      // package clause name
	Dir       string      // directory on disk
	Files     []*ast.File // non-test files, typechecked
	TestFiles []*ast.File // _test.go files, parsed for syntax-only checks
	Types     *types.Package
	Info      *types.Info

	loadErrs []Diagnostic
	allows   allowDirectives
}

// Module is the fully loaded module: every package under the root,
// typechecked against the standard library.
type Module struct {
	Root string // module root directory
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path

	// LoadErrors carries module-level problems (unreadable go.mod,
	// import cycles) as diagnostics under the pseudo-check "load".
	LoadErrors []Diagnostic

	stdlib  types.Importer
	local   map[string]*Package
	loading map[string]bool
	facts   *facts
}

// LoadModule parses and typechecks every package under root (skipping
// testdata, hidden, and underscore directories). Type errors do not
// abort the load; they become diagnostics so checks can still run over
// whatever typechecked.
func LoadModule(root string) (*Module, error) {
	modfile := filepath.Join(root, "go.mod")
	data, err := os.ReadFile(modfile)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", modfile, err)
	}
	path := modulePath(string(data))
	if path == "" {
		return nil, fmt.Errorf("lint: no module clause in %s", modfile)
	}
	fset := token.NewFileSet()
	m := &Module{
		Root:    root,
		Path:    path,
		Fset:    fset,
		stdlib:  importer.ForCompiler(fset, "source", nil),
		local:   map[string]*Package{},
		loading: map[string]bool{},
	}
	var dirs []string
	if err := collectDirs(root, &dirs); err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := path
		if rel != "." {
			ip = path + "/" + filepath.ToSlash(rel)
		}
		p, err := m.load(ip)
		if err != nil {
			return nil, err
		}
		if p != nil {
			// load memoizes, so packages pulled in early as
			// dependencies are not duplicated here.
			found := false
			for _, q := range m.Pkgs {
				if q == p {
					found = true
					break
				}
			}
			if !found {
				m.Pkgs = append(m.Pkgs, p)
			}
		}
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[0] == "module" {
			return fields[1]
		}
	}
	return ""
}

// collectDirs appends every directory under root that contains .go
// files, skipping testdata and hidden/underscore directories — the
// same exclusions the go tool applies.
func collectDirs(dir string, out *[]string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	hasGo := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				continue
			}
			if err := collectDirs(filepath.Join(dir, name), out); err != nil {
				return err
			}
			continue
		}
		if strings.HasSuffix(name, ".go") {
			hasGo = true
		}
	}
	if hasGo {
		*out = append(*out, dir)
	}
	return nil
}

// Import implements types.Importer: module-local paths load (and
// typecheck) from source under the module root; everything else is
// delegated to the stdlib source importer. Unknown paths error, which
// the tolerant typechecker records as a load diagnostic — that is how
// a third-party import surfaces even before stdlib-only-imports runs.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		p, err := m.load(path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("no Go files in %s", path)
		}
		return p.Types, nil
	}
	if !stdlibPath(path) {
		return nil, fmt.Errorf("non-stdlib import %q (module is stdlib-only)", path)
	}
	return m.stdlib.Import(path)
}

// stdlibPath reports whether path can only be a standard-library
// package: the first path element of every non-stdlib module contains
// a dot (a domain), stdlib packages never do.
func stdlibPath(path string) bool {
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}

// load parses and typechecks one module-local package by import path,
// memoized. It returns nil for a directory without non-test Go files.
func (m *Module) load(ip string) (*Package, error) {
	if p, ok := m.local[ip]; ok {
		return p, nil
	}
	if m.loading[ip] {
		return nil, fmt.Errorf("import cycle through %s", ip)
	}
	m.loading[ip] = true
	defer delete(m.loading, ip)

	rel := strings.TrimPrefix(strings.TrimPrefix(ip, m.Path), "/")
	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", ip, err)
	}
	var files, testFiles []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", full, err)
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, f)
		} else {
			files = append(files, f)
		}
	}
	if len(files) == 0 && len(testFiles) == 0 {
		m.local[ip] = nil
		return nil, nil
	}
	p := &Package{Path: ip, Dir: dir, Files: files, TestFiles: testFiles}
	if len(files) > 0 {
		p.Name = files[0].Name.Name
		m.typecheck(p)
	} else {
		p.Name = testFiles[0].Name.Name
		p.Types = types.NewPackage(ip, strings.TrimSuffix(p.Name, "_test"))
	}
	m.local[ip] = p
	return p, nil
}

// typecheck runs the tolerant typechecker over p's non-test files,
// recording every type error as a "load" diagnostic on the package.
func (m *Module) typecheck(p *Package) {
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: m,
		Error: func(err error) {
			d := Diagnostic{Check: "load", Message: err.Error()}
			if terr, ok := err.(types.Error); ok {
				d.Pos = terr.Fset.Position(terr.Pos)
				d.Message = terr.Msg
			}
			p.loadErrs = append(p.loadErrs, d)
		},
	}
	tpkg, _ := conf.Check(p.Path, m.Fset, p.Files, p.Info)
	if tpkg == nil {
		tpkg = types.NewPackage(p.Path, p.Name)
	}
	p.Types = tpkg
}

// TypecheckSource typechecks an in-memory package against the module
// (so fixtures can import module packages) and returns it ready for
// RunPackage. files maps file name to source. Sabotage fixtures and
// the testdata corpus load through here; type errors become "load"
// diagnostics on the returned package rather than failing the call.
func (m *Module) TypecheckSource(importPath string, files map[string]string) (*Package, error) {
	var names []string
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var parsed, tests []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, name, files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		if strings.HasSuffix(name, "_test.go") {
			tests = append(tests, f)
		} else {
			parsed = append(parsed, f)
		}
	}
	if len(parsed) == 0 {
		return nil, fmt.Errorf("lint: package %s has no non-test files", importPath)
	}
	p := &Package{Path: importPath, Name: parsed[0].Name.Name, Files: parsed, TestFiles: tests}
	m.typecheck(p)
	return p, nil
}
