package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
)

// Suppression debt: every //simlint:allow directive is a hole punched
// through an invariant, and holes accumulate silently — the paper's
// §IV-E incident class (human error) is exactly the failure mode of
// discipline that nobody re-audits. simlint -debt turns the directives
// into a managed inventory: each site is located, its reason captured,
// and its usefulness verified (a directive that suppresses nothing is
// stale and must go). A committed baseline pins the accepted totals,
// and the gate fails CI when debt grows, a site ships without a
// reason, or a directive goes stale.

// DebtSite is one //simlint:allow directive found in the module.
type DebtSite struct {
	File   string   `json:"file"` // module-root-relative, forward slashes
	Line   int      `json:"line"`
	Checks []string `json:"checks"`
	Reason string   `json:"reason,omitempty"`
	Used   bool     `json:"used"` // suppressed at least one diagnostic
}

// CheckDebt is the per-check slice of the inventory, kept as a sorted
// list (not a map) so report emission is deterministic by construction.
type CheckDebt struct {
	Check string `json:"check"`
	Sites int    `json:"sites"`
}

// DebtReport is the full suppression-debt inventory.
type DebtReport struct {
	Total    int         `json:"total"`
	PerCheck []CheckDebt `json:"per_check"`
	Sites    []DebtSite  `json:"sites"`
}

// Baseline pins the accepted debt totals a repository has consciously
// signed off on. It deliberately omits line numbers: moving a site
// around is refactoring, adding one is new debt.
type Baseline struct {
	Total    int         `json:"total"`
	PerCheck []CheckDebt `json:"per_check"`
}

// Baseline derives the pin from a fresh report.
func (r DebtReport) Baseline() Baseline {
	per := make([]CheckDebt, len(r.PerCheck))
	copy(per, r.PerCheck)
	return Baseline{Total: r.Total, PerCheck: per}
}

// sites returns the count pinned for check, zero if absent.
func (b Baseline) sites(check string) int {
	for _, c := range b.PerCheck {
		if c.Check == check {
			return c.Sites
		}
	}
	return 0
}

// Debt inventories every allow directive in the module and marks which
// ones actually suppress a diagnostic from the given checks.
func (m *Module) Debt(checks []*Check) DebtReport {
	return m.debtOver(m.Pkgs, checks)
}

// debtOver is Debt over an explicit package list (fixture packages in
// tests, the whole module in production).
func (m *Module) debtOver(pkgs []*Package, checks []*Check) DebtReport {
	var sites []DebtSite
	type key struct {
		file string
		line int
	}
	index := map[key]int{} // directive position -> sites index
	for _, p := range pkgs {
		files := append(append([]*ast.File(nil), p.Files...), p.TestFiles...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason, ok := parseAllowDirective(c.Text)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					index[key{pos.Filename, pos.Line}] = len(sites)
					sites = append(sites, DebtSite{
						File:   m.relPath(pos.Filename),
						Line:   pos.Line,
						Checks: names,
						Reason: reason,
					})
				}
			}
		}
		// Usage: a directive is alive iff the unfiltered run produces a
		// diagnostic it matches (same file, its line or the line below,
		// check named).
		for _, d := range m.runPackageUnfiltered(p, checks) {
			pos := d.Pos
			for _, line := range []int{pos.Line, pos.Line - 1} {
				i, ok := index[key{pos.Filename, line}]
				if !ok {
					continue
				}
				for _, name := range sites[i].Checks {
					if name == d.Check {
						sites[i].Used = true
					}
				}
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].File != sites[j].File {
			return sites[i].File < sites[j].File
		}
		return sites[i].Line < sites[j].Line
	})
	counts := map[string]int{}
	for _, s := range sites {
		for _, name := range s.Checks {
			counts[name]++
		}
	}
	var per []CheckDebt
	for name, n := range counts {
		per = append(per, CheckDebt{Check: name, Sites: n})
	}
	sort.Slice(per, func(i, j int) bool { return per[i].Check < per[j].Check })
	return DebtReport{Total: len(sites), PerCheck: per, Sites: sites}
}

// relPath rewrites a fileset position filename relative to the module
// root with forward slashes, so baselines are host-independent.
func (m *Module) relPath(name string) string {
	rel, err := filepath.Rel(m.Root, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(name)
	}
	return filepath.ToSlash(rel)
}

// runPackageUnfiltered is runPackage without the allow filter: the
// debt inventory needs to see what each directive would have silenced.
func (m *Module) runPackageUnfiltered(p *Package, checks []*Check) []Diagnostic {
	diags := append([]Diagnostic(nil), p.loadErrs...)
	for _, c := range checks {
		diags = append(diags, c.run(m, p)...)
	}
	for i := range diags {
		diags[i].File = diags[i].Pos.Filename
		diags[i].Line = diags[i].Pos.Line
	}
	return diags
}

// GateDebt compares a fresh inventory against the committed baseline
// and returns the policy violations, empty when the gate passes:
//
//   - a directive without a reason (never baselined — reasons are the
//     reviewable half of the escape hatch),
//   - a stale directive that suppresses nothing (dead weight that hides
//     real future violations on its line),
//   - total or per-check growth beyond the baseline.
//
// Shrinking debt passes; Tighten reports when the pin can be lowered.
func GateDebt(base Baseline, r DebtReport) []string {
	var fails []string
	for _, s := range r.Sites {
		if s.Reason == "" {
			fails = append(fails, fmt.Sprintf("%s:%d: //simlint:allow %s has no reason; the reason is the reviewable half of the directive",
				s.File, s.Line, strings.Join(s.Checks, ",")))
		}
		if !s.Used {
			fails = append(fails, fmt.Sprintf("%s:%d: stale //simlint:allow %s suppresses nothing; delete it",
				s.File, s.Line, strings.Join(s.Checks, ",")))
		}
	}
	if r.Total > base.Total {
		fails = append(fails, fmt.Sprintf("suppression debt grew: %d sites, baseline pins %d; fix the new site or consciously raise the baseline with -debt -update",
			r.Total, base.Total))
	}
	for _, c := range r.PerCheck {
		if c.Sites > base.sites(c.Check) {
			fails = append(fails, fmt.Sprintf("suppression debt for %s grew: %d sites, baseline pins %d",
				c.Check, c.Sites, base.sites(c.Check)))
		}
	}
	return fails
}

// Tighten reports where the baseline is looser than reality, so a
// debt-reducing PR can also ratchet the pin down.
func Tighten(base Baseline, r DebtReport) []string {
	var notes []string
	if r.Total < base.Total {
		notes = append(notes, fmt.Sprintf("debt shrank: %d sites, baseline pins %d; ratchet with -debt -update", r.Total, base.Total))
	}
	return notes
}
