// Sabotage fixture for deep transitive hazard propagation: the map
// range sits three call hops from the scheduler sink. The one-hop rule
// this corpus originally pinned would have been blind here; the
// whole-program fixpoint reports the full chain
// drainAll → stage → relay → arm → sim.Engine.At.
package maprangedeep

import "spiderfs/internal/sim"

type task struct {
	name string
	at   sim.Time
}

// hop 3: the only function that touches the engine.
func arm(eng *sim.Engine, t task) {
	eng.At(t.at, func() {})
}

// hop 2.
func relay(eng *sim.Engine, t task) {
	arm(eng, t)
}

// hop 1.
func stage(eng *sim.Engine, t task) {
	relay(eng, t)
}

// The hazard: iteration order of pending leaks into event order three
// calls later.
func drainAll(eng *sim.Engine, pending map[string]sim.Time) {
	for name, at := range pending { // want ordered-map-range
		stage(eng, task{name: name, at: at})
	}
}
