// Clean counterpart: scrubbers and E19 replicas driven from ordered
// collections only — slices in, sorted keys where a map is
// unavoidable, maps used purely for O(1) lookup.
package integritysinkok

import (
	"sort"

	"spiderfs/internal/integrity"
	"spiderfs/internal/raid"
	"spiderfs/internal/sim"
)

// slices are ordered; launching scrubbers from one is fine.
func startAll(eng *sim.Engine, groups []*raid.Group) []*integrity.Scrubber {
	out := make([]*integrity.Scrubber, 0, len(groups))
	for _, g := range groups {
		s := integrity.New(eng, g, integrity.DefaultConfig())
		s.Start()
		out = append(out, s)
	}
	return out
}

// map used as an index, drained through a sorted key slice before any
// scrubber is started.
func startNamed(eng *sim.Engine, byName map[string]*raid.Group) []*integrity.Scrubber {
	names := make([]string, 0, len(byName))
	for name := range byName { //simlint:allow ordered-map-range keys are sorted before any scrubber starts
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*integrity.Scrubber, 0, len(names))
	for _, name := range names {
		s := integrity.New(eng, byName[name], integrity.DefaultConfig())
		s.Start()
		out = append(out, s)
	}
	return out
}

// map lookup (no range) feeding a scenario replay stays silent.
func replayNamed(cfgs map[string]integrity.ScenarioConfig, label string) integrity.ScenarioResult {
	return integrity.RunScenario(cfgs[label])
}
