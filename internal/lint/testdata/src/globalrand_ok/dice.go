// Clean fixture: randomness drawn from a seeded internal/rng stream.
package globalrandok

import "spiderfs/internal/rng"

func roll(src *rng.Source) int {
	return src.Intn(6)
}

func split(src *rng.Source) *rng.Source {
	return src.Split("dice")
}
