// Clean fixture: stdlib and module-local imports only.
package importsok

import (
	"sort"

	"spiderfs/internal/sim"
)

func horizon(ts []sim.Time) sim.Time {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	if len(ts) == 0 {
		return 0
	}
	return ts[len(ts)-1]
}
