// Clean fixture: map iteration in pure computation, far from any
// scheduling or emission sink, is legitimate and stays unflagged.
package maprangeok

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
