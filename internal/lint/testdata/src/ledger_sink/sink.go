//simlint:importpath spiderfs/internal/ledger/sinkfix

// Sabotage fixture: the ledger package is an append-order sink — every
// Append extends a hash chain, so entry order IS the Merkle root.
// Feeding Append from a map range bakes Go's random iteration order
// into the anchored roots, and two identical campaigns stop agreeing
// on their root sequences. Flagged directly and one call away, like
// the other sinks. The fixture's import path also places it inside
// internal/ledger, where the single-writer discipline applies: a
// go-funclit write to captured state bypasses the one-appender seam.
package sinkfix

import (
	"sync"

	"spiderfs/internal/ledger"
	"spiderfs/internal/sim"
)

// direct: the range and the Append live in the same function.
func appendAll(l *ledger.Ledger, at sim.Time, incidents map[string]string) int {
	n := 0
	for actor, detail := range incidents { // want ordered-map-range
		if err := l.Append(at, actor, "hardware", "incident", detail); err == nil {
			n++
		}
	}
	return n
}

func appendOne(l *ledger.Ledger, at sim.Time, actor, detail string) error {
	return l.Append(at, actor, "operator", "repair", detail)
}

// one hop: the range feeds appendOne, which extends the chain.
func appendRepairs(l *ledger.Ledger, at sim.Time, repairs map[string]string) {
	for actor, detail := range repairs { // want ordered-map-range
		if err := appendOne(l, at, actor, detail); err != nil {
			return
		}
	}
}

// captured-state write from a go funclit: inside internal/ledger the
// chain has exactly one appender, so a goroutine accumulating into
// shared captured state is the seam bypass — the mutex only hides it
// from the race detector.
func auditAll(exports []*ledger.Export) int {
	clean := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, exp := range exports {
		wg.Add(1)
		go func(exp *ledger.Export) {
			defer wg.Done()
			if len(ledger.Audit(exp)) == 0 {
				mu.Lock()
				clean++ // want shard-isolation
				mu.Unlock()
			}
		}(exp)
	}
	wg.Wait()
	return clean
}
