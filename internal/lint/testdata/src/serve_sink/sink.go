//simlint:importpath spiderfs/internal/serve/sinkfix

// Sabotage fixture: the serve package is a session-admission sink —
// session IDs are assigned in Submit order and the /v1/stats listing
// follows admission order, so feeding Submit (or RunSolo) from a map
// range bakes Go's random iteration order into the service's observable
// state. Flagged directly and one call away, like the other sinks. The
// fixture's import path also places it inside internal/serve, where the
// shard-isolation discipline applies: a go-funclit write to captured
// state bypasses the session-confined worker seam.
package sinkfix

import (
	"sync"

	"spiderfs/internal/serve"
)

// direct: the range and the Submit live in the same function.
func submitAll(svc *serve.Service, specs map[string]serve.Spec) []*serve.Session {
	var out []*serve.Session
	for _, spec := range specs { // want ordered-map-range
		sess, err := svc.Submit(spec)
		if err == nil {
			out = append(out, sess)
		}
	}
	return out
}

func submitOne(svc *serve.Service, spec serve.Spec) *serve.Session {
	sess, err := svc.Submit(spec)
	if err != nil {
		return nil
	}
	return sess
}

// one hop: the range feeds submitOne, which admits sessions.
func submitByName(svc *serve.Service, specs map[string]serve.Spec) []*serve.Session {
	var out []*serve.Session
	for _, spec := range specs { // want ordered-map-range
		if sess := submitOne(svc, spec); sess != nil {
			out = append(out, sess)
		}
	}
	return out
}

// solo runs per map entry are just as nondeterministic: the report
// order follows iteration order.
func soloPerEntry(specs map[string]serve.Spec) []*serve.Report {
	var out []*serve.Report
	for _, spec := range specs { // want ordered-map-range
		rep, err := serve.RunSolo(spec, nil)
		if err == nil {
			out = append(out, rep)
		}
	}
	return out
}

// captured-state write from a go funclit: inside internal/serve a
// goroutine may write only its own session's state under its lock (or
// its own slot); accumulating into shared captured state is the seam
// bypass, mutex or not.
func waitAll(sessions []*serve.Session) int {
	done := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, sess := range sessions {
		wg.Add(1)
		go func(sess *serve.Session) {
			defer wg.Done()
			if _, err := sess.Wait(); err == nil {
				mu.Lock()
				done++ // want shard-isolation
				mu.Unlock()
			}
		}(sess)
	}
	wg.Wait()
	return done
}
