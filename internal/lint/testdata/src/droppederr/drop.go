// Sabotage fixture for dropped errors: the PR 1 contract made every
// simulation failure a counted, returned error — a call site that
// ignores the return un-counts it. Bare statement calls (plain, go,
// defer) to module-local error-returning functions are flagged; the
// explicit `_ =` discard is the sanctioned, greppable escape.
package droppederr

import "errors"

type device struct {
	healthy bool
}

func (d *device) flush() error {
	if !d.healthy {
		return errors.New("droppederr: device offline")
	}
	return nil
}

func step(d *device) error {
	return d.flush()
}

// bare statement call: the error evaporates.
func tick(d *device) {
	step(d) // want dropped-error
}

// go statement: the error evaporates on another goroutine.
func tickAsync(d *device) {
	go step(d) // want dropped-error
}

// defer statement: the classic deferred-close shape.
func tickDeferred(d *device) {
	defer d.flush() // want dropped-error
	step(d)         // want dropped-error
}

// explicit discard is deliberate and stays legal.
func tickExplicit(d *device) {
	_ = step(d)
}

// handled: the shape the check pushes toward.
func tickHandled(d *device) error {
	if err := step(d); err != nil {
		return err
	}
	return nil
}
