// Sabotage fixture: the shard package is a delivery sink — cross-shard
// sends are buffered in outbox order and merged at the window barrier
// in (shard index, send order), so feeding Send from a map range bakes
// Go's random iteration order into the merged event sequence and the
// run fingerprint. Flagged directly and one call away, like the other
// recording sinks.
package shardsink

import (
	"sort"

	"spiderfs/internal/shard"
	"spiderfs/internal/sim"
)

// direct: the range and the cross-shard Send share a function.
func sendAll(s *shard.Shard, at sim.Time, dests map[int]func()) {
	for dst, fn := range dests { // want ordered-map-range
		s.Send(at, dst, fn)
	}
}

func forward(s *shard.Shard, at sim.Time, dst int, fn func()) {
	s.Send(at, dst, fn)
}

// one hop: the range feeds forward, which sends across shards.
func forwardAll(s *shard.Shard, at sim.Time, dests map[int]func()) {
	for dst, fn := range dests { // want ordered-map-range
		forward(s, at, dst, fn)
	}
}

// building runners per map entry is just as nondeterministic: the
// shards' initial events follow iteration order.
func runPerEntry(plans map[string]int) []*shard.Runner {
	var out []*shard.Runner
	for _, n := range plans { // want ordered-map-range
		out = append(out, shard.NewRunner(n, sim.Microsecond, 1))
	}
	return out
}

// sorted-keys rewrite: the deterministic shape the check pushes toward.
func sendSorted(s *shard.Shard, at sim.Time, dests map[int]func()) {
	dsts := make([]int, 0, len(dests))
	for dst := range dests { //simlint:allow ordered-map-range destinations are sorted before any send
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	for _, dst := range dsts {
		s.Send(at, dst, dests[dst])
	}
}
