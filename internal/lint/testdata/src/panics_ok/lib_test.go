package panicsok

// Test files may panic freely; the check never looks at them.
func mustTake(b *Box) int {
	n, err := b.Take()
	if err != nil {
		panic(err)
	}
	return n
}
