// Clean fixture: errors for runtime failures, one annotated
// invariant assertion for a provable can't-happen state.
package panicsok

import "errors"

var errClosed = errors.New("panicsok: closed")

type Box struct {
	n      int
	closed bool
}

func (b *Box) Take() (int, error) {
	if b.closed {
		return 0, errClosed
	}
	if b.n < 0 {
		panic("panicsok: negative count") //simlint:allow no-library-panic can't-happen internal invariant: Put never stores negatives
	}
	return b.n, nil
}

func (b *Box) Put(n int) error {
	if n < 0 {
		return errors.New("panicsok: negative input")
	}
	b.n = n
	return nil
}
