// Sabotage fixture: the sweep package is a recording sink — replica
// metrics are merged in first-recorded order and hashed into the sweep
// fingerprint, so feeding Record (or the runner itself) from a map
// range bakes Go's random iteration order into the merged report.
// Flagged directly and one call away, like the trace and span sinks.
package sweepsink

import (
	"sort"

	"spiderfs/internal/sweep"
)

// direct: the range and the Record live in the same function.
func recordAll(r *sweep.Rep, totals map[string]float64) {
	for name, v := range totals { // want ordered-map-range
		r.Record(name, v)
	}
}

func put(r *sweep.Rep, name string, v float64) {
	r.Record(name, v)
}

// one hop: the range feeds put, which records metrics.
func putAll(r *sweep.Rep, totals map[string]float64) {
	for name, v := range totals { // want ordered-map-range
		put(r, name, v)
	}
}

// launching sweeps per map entry is just as nondeterministic: the
// result order follows iteration order.
func runPerEntry(bodies map[string]sweep.Body) []*sweep.Result {
	var out []*sweep.Result
	for label, body := range bodies { // want ordered-map-range
		res, err := sweep.Run(sweep.Config{Label: label, Seed: 1, Replicas: 2}, body)
		if err == nil {
			out = append(out, res)
		}
	}
	return out
}

// sorted-keys rewrite: the deterministic shape the check pushes toward.
func recordSorted(r *sweep.Rep, totals map[string]float64) {
	names := make([]string, 0, len(totals))
	for name := range totals { //simlint:allow ordered-map-range keys are sorted before any metric is recorded
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r.Record(name, totals[name])
	}
}
