// Clean fixture: hermetic simulation code takes readers and data from
// the caller; the cmd/ layer owns the filesystem.
package envreadok

import (
	"io"
)

func load(r io.Reader) ([]byte, error) {
	return io.ReadAll(r)
}

func emit(w io.Writer, b []byte) error {
	_, err := w.Write(b)
	return err
}
