// Clean fixture: simulation code reads time from the engine clock.
package wallclockok

import "spiderfs/internal/sim"

func horizon(eng *sim.Engine) sim.Time {
	return eng.Now() + 5*sim.Second
}
