// Clean counterpart: span recording driven from ordered collections
// only — slices in, sorted keys where a map is unavoidable.
package spantracesinkok

import (
	"sort"

	"spiderfs/internal/spantrace"
)

type hop struct {
	name  string
	bytes int64
}

// slices are ordered; recording from one is fine.
func markHops(tr *spantrace.Tracer, parent spantrace.SpanID, hops []hop) {
	for _, h := range hops {
		tr.Mark(spantrace.Fabric, "hop", parent, h.bytes, h.name)
	}
}

// map used as a set, drained through a sorted key slice before any
// span is recorded.
func markByName(tr *spantrace.Tracer, parent spantrace.SpanID, byName map[string]int64) {
	names := make([]string, 0, len(byName))
	for name := range byName { //simlint:allow ordered-map-range keys are sorted before any span is recorded
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tr.Mark(spantrace.Fabric, "hop", parent, byName[name], name)
	}
}
