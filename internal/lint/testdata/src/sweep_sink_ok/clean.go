// Clean counterpart: sweep bodies and launchers driven from ordered
// collections only — slices in, sorted keys where a map is
// unavoidable, maps used purely for O(1) lookup.
package sweepsinkok

import (
	"sort"

	"spiderfs/internal/sweep"
)

type total struct {
	name  string
	value float64
}

// slices are ordered; recording from one is fine.
func recordTotals(r *sweep.Rep, totals []total) {
	for _, t := range totals {
		r.Record(t.name, t.value)
	}
}

// map used as an index, drained through a sorted key slice before any
// metric is recorded.
func recordByName(r *sweep.Rep, byName map[string]float64) {
	names := make([]string, 0, len(byName))
	for name := range byName { //simlint:allow ordered-map-range keys are sorted before any metric is recorded
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r.Record(name, byName[name])
	}
}

// map lookup (no range) feeding a sweep launch stays silent.
func runNamed(bodies map[string]sweep.Body, label string) (*sweep.Result, error) {
	return sweep.Run(sweep.Config{Label: label, Seed: 1, Replicas: 2}, bodies[label])
}
