// Regression fixture for callee resolution of function and method
// values: a hazard handed off as a callback used to be invisible,
// because only direct call expressions grew call-graph edges. Passing
// engine.At itself — or a method whose body schedules — as a value now
// marks the handing function hazardous.
package callbackvalue

import "spiderfs/internal/sim"

type job struct {
	name string
	at   sim.Time
}

// runEach is an innocent higher-order driver: it never touches the
// engine itself, it only invokes what it was handed.
func runEach(jobs []job, f func(job)) {
	for _, j := range jobs {
		f(j)
	}
}

type sched struct {
	eng *sim.Engine
}

// fire is the direct hazard the callbacks below smuggle around.
func (s *sched) fire(j job) {
	s.eng.At(j.at, func() {})
}

// method value handed to a driver: flushAll never calls fire, but the
// reference s.fire is an edge, so the range is three names from the
// sink (flushAll → fire → sim.Engine.At).
func (s *sched) flushAll(pending map[string]sim.Time) {
	for name, at := range pending { // want ordered-map-range
		runEach([]job{{name: name, at: at}}, s.fire)
	}
}

// func value bound to a local first — same edge, one assignment later.
func (s *sched) flushViaLocal(pending map[string]sim.Time) {
	h := s.fire
	for name, at := range pending { // want ordered-map-range
		h(job{name: name, at: at})
	}
}

// the sink's own method value passed as a callback: eng.At handed to a
// scheduler-shaped parameter is a direct hazard.
func handOff(eng *sim.Engine, pending map[string]sim.Time) {
	schedule := func(at func(sim.Time, func()) *sim.Event, t sim.Time) {
		at(t, func() {})
	}
	for _, t := range pending { // want ordered-map-range
		schedule(eng.At, t)
	}
}
