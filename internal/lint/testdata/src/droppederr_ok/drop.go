// Clean counterpart to droppederr: errors are returned, counted, or
// explicitly discarded, and calls to functions that return nothing (or
// non-error values) are never flagged.
package droppederrok

import "errors"

type counter struct {
	failures int
}

func (c *counter) bump() {
	c.failures++
}

func work(ok bool) error {
	if !ok {
		return errors.New("droppederrok: step failed")
	}
	return nil
}

func size() int { return 42 }

// counted error path: the paper's operating model for partial failure.
func runCounted(c *counter, steps []bool) int {
	for _, ok := range steps {
		if err := work(ok); err != nil {
			c.bump()
		}
	}
	return c.failures
}

// void and non-error calls are not the check's business.
func runOther(c *counter) int {
	c.bump()
	return size()
}

// explicit discard with a visible underscore.
func runDiscard() {
	_ = work(true)
}
