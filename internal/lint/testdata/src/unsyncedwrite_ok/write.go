// Clean counterpart to unsyncedwrite: the three legal shapes — a
// mutex-guarded write (legal outside the shard plane, where only
// memory safety is at stake), own-slot writes into a private index,
// and goroutine-local state drained through a channel.
package unsyncedwriteok

import "sync"

// mutex-mediated accumulation: sync mediation is visible in the body.
func countLocked(parts [][]int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, part := range parts {
		wg.Add(1)
		go func(part []int) {
			defer wg.Done()
			sum := 0
			for _, v := range part {
				sum += v
			}
			mu.Lock()
			total += sum
			mu.Unlock()
		}(part)
	}
	wg.Wait()
	return total
}

// own-slot fan-out: each worker owns sums[w].
func countSlotted(parts [][]int) []int {
	sums := make([]int, len(parts))
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, v := range parts[w] {
				sums[w] += v
			}
		}(w)
	}
	wg.Wait()
	return sums
}

// channel drain: goroutines keep everything local and send results.
func countChan(parts [][]int) int {
	res := make(chan int, len(parts))
	for _, part := range parts {
		go func(part []int) {
			sum := 0
			for _, v := range part {
				sum += v
			}
			res <- sum
		}(part)
	}
	total := 0
	for range parts {
		total += <-res
	}
	return total
}
