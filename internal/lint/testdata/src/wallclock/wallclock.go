// Sabotage fixture: wall-clock reads inside a simulation package.
package wallclock

import "time"

func stamp() int64 {
	t := time.Now() // want no-wallclock
	return t.UnixNano()
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want no-wallclock
}

func timer() *time.Timer {
	return time.NewTimer(time.Second) // want no-wallclock
}

func sleepy() {
	time.Sleep(time.Millisecond) // want no-wallclock
}

func allowed() time.Duration {
	// Durations and calendar math are fine; only clock reads are banned.
	d := 3 * time.Second
	return d
}
