// Sabotage fixture: the spantrace package is a recording sink — span
// IDs come from a per-tracer rng stream and every record lands in the
// exported trace, so feeding it from a map range bakes Go's random
// iteration order into the artifact. Flagged directly and one call
// away, like the trace and report sinks.
package spantracesink

import (
	"sort"

	"spiderfs/internal/spantrace"
)

// direct: the range and the Mark live in the same function.
func markAll(tr *spantrace.Tracer, parent spantrace.SpanID, hops map[string]int64) {
	for name, n := range hops { // want ordered-map-range
		tr.Mark(spantrace.Fabric, "hop", parent, n, name)
	}
}

func stamp(tr *spantrace.Tracer, parent spantrace.SpanID, op string, n int64) {
	sp := tr.Begin(spantrace.OSS, op, parent, n)
	tr.End(sp)
}

// one hop: the range feeds stamp, which records spans.
func stampAll(tr *spantrace.Tracer, parent spantrace.SpanID, ops map[string]int64) {
	for op, n := range ops { // want ordered-map-range
		stamp(tr, parent, op, n)
	}
}

// sorted-keys rewrite: the deterministic shape the check pushes toward.
func markSorted(tr *spantrace.Tracer, parent spantrace.SpanID, hops map[string]int64) {
	names := make([]string, 0, len(hops))
	for name := range hops { //simlint:allow ordered-map-range keys are sorted before any span is recorded
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tr.Mark(spantrace.Fabric, "hop", parent, hops[name], name)
	}
}
