// Sabotage fixture: the integrity package is a scheduling sink — a
// scrubber's scan order and an E19 replica's repair sequence feed the
// campaign and sweep fingerprints, so launching scrubbers or replaying
// scenarios from a map range bakes Go's random iteration order into
// the artifacts. Flagged directly and one call away, like the trace,
// span, and sweep sinks.
package integritysink

import (
	"sort"

	"spiderfs/internal/integrity"
	"spiderfs/internal/raid"
	"spiderfs/internal/sim"
)

// direct: the range and the scrubber launch live in the same function.
func startAll(eng *sim.Engine, groups map[string]*raid.Group) []*integrity.Scrubber {
	var out []*integrity.Scrubber
	for _, g := range groups { // want ordered-map-range
		s := integrity.New(eng, g, integrity.DefaultConfig())
		s.Start()
		out = append(out, s)
	}
	return out
}

func launch(eng *sim.Engine, g *raid.Group) *integrity.Scrubber {
	s := integrity.New(eng, g, integrity.DefaultConfig())
	s.Start()
	return s
}

// one hop: the range feeds launch, which starts scrubbers.
func startEach(eng *sim.Engine, groups map[string]*raid.Group) []*integrity.Scrubber {
	var out []*integrity.Scrubber
	for _, g := range groups { // want ordered-map-range
		out = append(out, launch(eng, g))
	}
	return out
}

// replaying E19 per map entry is just as nondeterministic: the result
// order follows iteration order.
func replay(cfgs map[string]integrity.ScenarioConfig) []integrity.ScenarioResult {
	var out []integrity.ScenarioResult
	for _, cfg := range cfgs { // want ordered-map-range
		out = append(out, integrity.RunScenario(cfg))
	}
	return out
}

// sorted-keys rewrite: the deterministic shape the check pushes toward.
func startSorted(eng *sim.Engine, groups map[string]*raid.Group) []*integrity.Scrubber {
	names := make([]string, 0, len(groups))
	for name := range groups { //simlint:allow ordered-map-range keys are sorted before any scrubber starts
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*integrity.Scrubber, 0, len(names))
	for _, name := range names {
		out = append(out, launch(eng, groups[name]))
	}
	return out
}
