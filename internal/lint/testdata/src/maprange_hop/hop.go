// Sabotage fixture for the transitive hazard rule: outside the engine
// packages, a map range is flagged when the surrounding function
// schedules engine events or writes report output — directly, or any
// number of statically resolved calls away.
package maprangehop

import (
	"fmt"
	"io"
	"sort"

	"spiderfs/internal/sim"
)

type job struct {
	name string
	at   sim.Time
}

// direct: the range and the eng.At live in the same function.
func scheduleAll(eng *sim.Engine, jobs map[string]sim.Time, done func(string)) {
	for name, at := range jobs { // want ordered-map-range
		n := name
		eng.At(at, func() { done(n) })
	}
}

func kick(eng *sim.Engine, j job) {
	eng.After(j.at, func() {})
}

// one hop: the range feeds kick, which schedules.
func scheduleViaHelper(eng *sim.Engine, jobs map[string]sim.Time) {
	for name, at := range jobs { // want ordered-map-range
		kick(eng, job{name: name, at: at})
	}
}

// report writing counts as a sink too.
func dump(w io.Writer, counts map[string]int) {
	for name, n := range counts { // want ordered-map-range
		fmt.Fprintf(w, "%s %d\n", name, n)
	}
}

func middle(eng *sim.Engine, j job) {
	kick(eng, j)
}

// two hops: range -> middle -> kick -> eng.After. The fixpoint
// propagation sees through any depth; the diagnostic spells the path
// scheduleTwoHops → middle → kick → sim.Engine.After.
func scheduleTwoHops(eng *sim.Engine, jobs map[string]sim.Time) {
	for name, at := range jobs { // want ordered-map-range
		middle(eng, job{name: name, at: at})
	}
}

// annotated: order-insensitivity argued at the site.
func countThenReport(w io.Writer, counts map[string]int) {
	total := 0
	for _, n := range counts { //simlint:allow ordered-map-range commutative sum; emission below is a single aggregate line
		total += n
	}
	fmt.Fprintf(w, "total %d\n", total)
}

// sorted-keys rewrite: the deterministic shape the check pushes toward.
func dumpSorted(w io.Writer, counts map[string]int) {
	names := make([]string, 0, len(counts))
	for name := range counts { //simlint:allow ordered-map-range keys are sorted before any output happens
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, counts[name])
	}
}
