//simlint:importpath spiderfs/cmd/tcase

// Clean fixture: main packages may panic — a CLI crashing loudly on a
// bad flag is the intended failure mode.
package main

func main() {
	panic("usage: tcase <arg>")
}
