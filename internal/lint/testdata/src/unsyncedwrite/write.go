// Sabotage fixture for unsynced shared writes: outside the shard
// plane, a goroutine writing captured state without sync mediation is
// a data race the race detector only catches when the scheduler
// cooperates. simlint flags the write shape itself.
package unsyncedwrite

import "sync"

// bare captured counter: the textbook race.
func countAll(parts [][]int) int {
	total := 0
	var wg sync.WaitGroup
	for _, part := range parts {
		wg.Add(1)
		go func(part []int) {
			defer wg.Done()
			for _, v := range part {
				total += v // want unsynced-shared-write
			}
		}(part)
	}
	wg.Wait()
	return total
}

// captured error slot: last writer wins, nondeterministically.
func firstError(steps []func() error) error {
	var firstErr error
	var wg sync.WaitGroup
	for _, step := range steps {
		wg.Add(1)
		go func(step func() error) {
			defer wg.Done()
			if err := step(); err != nil {
				firstErr = err // want unsynced-shared-write
			}
		}(step)
	}
	wg.Wait()
	return firstErr
}

// shared map write races even with a goroutine-local key.
func index(names []string) map[string]bool {
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			seen[name] = true // want unsynced-shared-write
		}(name)
	}
	wg.Wait()
	return seen
}
