// Clean counterpart to maprange_deep: the same three-hop call chain
// down to the scheduler, but driven from an insertion-ordered slice.
// The map (if the caller keeps one) is a lookup index, never ranged —
// so deep propagation alone produces no diagnostic without a map range
// to anchor it.
package maprangedeepok

import "spiderfs/internal/sim"

type task struct {
	name string
	at   sim.Time
}

func arm(eng *sim.Engine, t task) {
	eng.At(t.at, func() {})
}

func relay(eng *sim.Engine, t task) {
	arm(eng, t)
}

func stage(eng *sim.Engine, t task) {
	relay(eng, t)
}

// Ordered registry drives the scheduling; deterministic at any depth.
func drainAll(eng *sim.Engine, pending []task) {
	for _, t := range pending {
		stage(eng, t)
	}
}
