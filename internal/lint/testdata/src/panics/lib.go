// Sabotage fixture: panics in library code.
package panics

import "fmt"

func Divide(a, b int) int {
	if b == 0 {
		panic("divide by zero") // want no-library-panic
	}
	return a / b
}

func Parse(s string) int {
	if s == "" {
		panic(fmt.Errorf("empty input")) // want no-library-panic
	}
	return len(s)
}
