// Sabotage fixture: math/rand instead of seeded internal/rng streams.
package globalrand

import "math/rand"

func roll() int {
	return rand.Intn(6) // want no-global-rand
}

func noisy() float64 {
	return rand.Float64() // want no-global-rand
}

func localStream() *rand.Rand {
	// Even a locally seeded generator bypasses the named-stream
	// discipline; both constructor calls are flagged.
	return rand.New(rand.NewSource(42)) // want no-global-rand no-global-rand
}
