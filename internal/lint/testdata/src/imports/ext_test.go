// Sabotage fixture: a third-party import. It lives in a _test.go file
// so only the import scanner sees it (test files are parsed, not
// typechecked), proving the check covers tests too.
package imports

import (
	"testing"

	"github.com/acme/widget" // want stdlib-only-imports
)

func TestWidget(t *testing.T) {
	_ = widget.New()
}
