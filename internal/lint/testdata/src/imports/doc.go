// Package imports hosts the stdlib-only-imports sabotage fixture.
package imports
