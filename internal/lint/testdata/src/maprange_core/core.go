//simlint:importpath spiderfs/internal/netsim/tcase

// Sabotage fixture: inside an engine-adjacent package every map
// iteration is banned, even ones that never reach a sink — hot-path
// refactors move code too easily for a narrower rule to stay safe.
package tcase

func sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want ordered-map-range
		total += v
	}
	return total
}

func overSlice(s []float64) float64 {
	var total float64
	for _, v := range s { // slices are ordered; not flagged
		total += v
	}
	return total
}
