//simlint:importpath spiderfs/internal/shard/fixture2

// Clean counterpart to shardiso: the sanctioned worker-pool shapes.
// Each goroutine claims indices and writes only its own slot (the
// internal/sweep pattern), or keeps everything goroutine-local and
// returns results through the slot.
package fixture2

import "sync"

type replica struct {
	seed uint64
	out  uint64
}

func run(r replica) uint64 { return r.seed * 2654435761 }

// own-slot writes: out[i] with i claimed inside the goroutine is
// private memory; the merge below never depends on completion order.
func runAll(reps []replica, workers int) []uint64 {
	out := make([]uint64, len(reps))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = run(reps[i])
			}
		}()
	}
	for i := range reps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// goroutine-local state only: accumulator declared inside the go func,
// result handed out through the private slot.
func sumPerWorker(parts [][]uint64) []uint64 {
	sums := make([]uint64, len(parts))
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local uint64
			for _, v := range parts[w] {
				local += v
			}
			sums[w] = local
		}(w)
	}
	wg.Wait()
	return sums
}
