// Sabotage fixture: environment and filesystem reads inside a
// simulation package.
package envread

import "os"

func configured() string {
	return os.Getenv("SPIDER_MODE") // want env-free-sim
}

func load(path string) ([]byte, error) {
	return os.ReadFile(path) // want env-free-sim
}

func openIt(path string) (*os.File, error) {
	return os.Open(path) // want env-free-sim
}
