//simlint:importpath spiderfs/internal/shard/fixture

// Sabotage fixture for shard isolation: inside internal/shard (and
// internal/sweep) a goroutine may write only its own slot. Writing
// state captured from outside the go func — a scalar, a shared map, a
// fixed slice index — bypasses the Send/outbox seam that keeps the
// parallel run's merge order deterministic, and is flagged even when a
// mutex would make it race-free.
package fixture

import "sync"

type result struct {
	fired uint64
}

// scalar accumulation across workers: the classic seam bypass.
func tallyAcross(parts [][]uint64) uint64 {
	var total uint64
	var wg sync.WaitGroup
	for _, part := range parts {
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			for _, v := range part {
				total += v // want shard-isolation
			}
		}(part)
	}
	wg.Wait()
	return total
}

// shared map write: target is shared no matter where the key came from.
func collect(names []string) map[string]int {
	seen := map[string]int{}
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			seen[name]++ // want shard-isolation
		}(name)
	}
	wg.Wait()
	return seen
}

// fixed slice index: every worker shares slot zero.
func firstOnly(parts []result) []uint64 {
	out := make([]uint64, 1)
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p result) {
			defer wg.Done()
			out[0] = p.fired // want shard-isolation
		}(p)
	}
	wg.Wait()
	return out
}

// a lock does not excuse it here: mutex order is scheduler order, and
// scheduler order is exactly what the window barrier must not see.
func lockedTally(parts [][]uint64) uint64 {
	var mu sync.Mutex
	var total uint64
	var wg sync.WaitGroup
	for _, part := range parts {
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			mu.Lock()
			for _, v := range part {
				total += v // want shard-isolation
			}
			mu.Unlock()
		}(part)
	}
	wg.Wait()
	return total
}
