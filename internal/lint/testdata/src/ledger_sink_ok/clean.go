//simlint:importpath spiderfs/internal/ledger/sinkfixok

// Clean counterpart: the ledger driven from ordered collections only —
// slices in, sorted keys where a map is unavoidable, maps used purely
// for O(1) lookup — and parallel audits writing their own slots.
package sinkfixok

import (
	"sort"
	"sync"

	"spiderfs/internal/ledger"
	"spiderfs/internal/sim"
)

// slices are ordered; appending from one is fine.
func appendList(l *ledger.Ledger, at sim.Time, actors []string) error {
	for _, actor := range actors {
		if err := l.Append(at, actor, "hardware", "incident", ""); err != nil {
			return err
		}
	}
	return nil
}

// map used as an index, drained through a sorted key slice before any
// entry extends the chain.
func appendByActor(l *ledger.Ledger, at sim.Time, incidents map[string]string) error {
	actors := make([]string, 0, len(incidents))
	for actor := range incidents { //simlint:allow ordered-map-range keys are sorted before any entry extends the chain
		actors = append(actors, actor)
	}
	sort.Strings(actors)
	for _, actor := range actors {
		if err := l.Append(at, actor, "hardware", "incident", incidents[actor]); err != nil {
			return err
		}
	}
	return nil
}

// map lookup (no range) feeding an append stays silent.
func appendNamed(l *ledger.Ledger, at sim.Time, incidents map[string]string, actor string) error {
	return l.Append(at, actor, "hardware", "incident", incidents[actor])
}

// own-slot parallel audit: each goroutine writes only out[i] with a
// goroutine-local index — the sanctioned fan-in shape.
func auditAll(exports []*ledger.Export) []int {
	out := make([]int, len(exports))
	var wg sync.WaitGroup
	for i, exp := range exports {
		wg.Add(1)
		go func(i int, exp *ledger.Export) {
			defer wg.Done()
			out[i] = len(ledger.Audit(exp))
		}(i, exp)
	}
	wg.Wait()
	return out
}
