// Clean counterpart to callback_value: handing around callbacks that
// never reach a determinism sink creates edges but no hazard, and a
// map range next to them stays legal.
package callbackvalueok

import "strings"

type row struct {
	name  string
	count int
}

func apply(rows []row, f func(row) string) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, f(r))
	}
	return out
}

func render(r row) string {
	return r.name + ":" + strings.Repeat("*", r.count)
}

// render is handed off as a value, but it only builds strings — no
// engine, no report writer — so the map range is order-insensitive
// as far as the determinism contract cares (the result is returned,
// not emitted).
func renderAll(counts map[string]int) []string {
	var rows []row
	for name, n := range counts {
		rows = append(rows, row{name: name, count: n})
	}
	return apply(rows, render)
}
