// Clean counterpart: cross-shard sends driven from ordered collections
// only — slices in, sorted keys where a map is unavoidable, maps used
// purely for O(1) lookup.
package shardsinkok

import (
	"sort"

	"spiderfs/internal/shard"
	"spiderfs/internal/sim"
)

type hop struct {
	dst int
	fn  func()
}

// slices are ordered; sending from one is fine.
func sendHops(s *shard.Shard, at sim.Time, hops []hop) {
	for _, h := range hops {
		s.Send(at, h.dst, h.fn)
	}
}

// map used as an index, drained through a sorted key slice before any
// cross-shard event is sent.
func sendByDst(s *shard.Shard, at sim.Time, byDst map[int]func()) {
	dsts := make([]int, 0, len(byDst))
	for dst := range byDst { //simlint:allow ordered-map-range destinations are sorted before any send
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	for _, dst := range dsts {
		s.Send(at, dst, byDst[dst])
	}
}

// map lookup (no range) feeding a send stays silent.
func sendNamed(s *shard.Shard, at sim.Time, byName map[string]hop, name string) {
	h := byName[name]
	s.Send(at, h.dst, h.fn)
}
