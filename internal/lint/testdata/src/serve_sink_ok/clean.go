//simlint:importpath spiderfs/internal/serve/sinkfixok

// Clean counterpart: the service driven from ordered collections only —
// slices in, sorted keys where a map is unavoidable, maps used purely
// for O(1) lookup — and parallel waits writing their own slots.
package sinkfixok

import (
	"sort"
	"sync"

	"spiderfs/internal/serve"
)

// slices are ordered; submitting from one is fine.
func submitList(svc *serve.Service, specs []serve.Spec) []*serve.Session {
	out := make([]*serve.Session, 0, len(specs))
	for _, spec := range specs {
		sess, err := svc.Submit(spec)
		if err == nil {
			out = append(out, sess)
		}
	}
	return out
}

// map used as an index, drained through a sorted key slice before any
// session is admitted.
func submitByName(svc *serve.Service, specs map[string]serve.Spec) []*serve.Session {
	names := make([]string, 0, len(specs))
	for name := range specs { //simlint:allow ordered-map-range keys are sorted before any session is admitted
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*serve.Session, 0, len(names))
	for _, name := range names {
		sess, err := svc.Submit(specs[name])
		if err == nil {
			out = append(out, sess)
		}
	}
	return out
}

// map lookup (no range) feeding a submit stays silent.
func submitNamed(svc *serve.Service, specs map[string]serve.Spec, name string) (*serve.Session, error) {
	return svc.Submit(specs[name])
}

// own-slot parallel wait: each goroutine writes only out[i] with a
// goroutine-local index — the sanctioned fan-in shape.
func waitAll(sessions []*serve.Session) []*serve.Report {
	out := make([]*serve.Report, len(sessions))
	var wg sync.WaitGroup
	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *serve.Session) {
			defer wg.Done()
			rep, err := sess.Wait()
			if err == nil {
				out[i] = rep
			}
		}(i, sess)
	}
	wg.Wait()
	return out
}
