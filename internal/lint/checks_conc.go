package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The concurrency checks below target the one place the repo allows
// goroutines on the simulation side: the quantum worker pools in
// internal/shard and internal/sweep (PR 5/7). Their safety argument is
// shared-nothing execution — each worker touches only its own shard
// slot, and cross-shard influence moves exclusively through
// Shard.Send's outbox, merged serially at the barrier. A write from a
// `go func` body to state captured from outside that goroutine is
// exactly the bypass of that seam which turns a deterministic parallel
// run into a racy one, so it is flagged statically, before the race
// detector ever gets a chance to catch it probabilistically.

// shardScoped reports whether p is one of the packages whose goroutine
// discipline is the Send/outbox seam (internal/shard, internal/sweep)
// or, for internal/serve, the session-confined worker seam: a service
// goroutine may write only through its own session's lock or the
// service mutex, so captured-state writes from go funclits are flagged
// the same way. internal/ledger is scoped too: the hash chain admits
// exactly one appender, so a goroutine mutating captured ledger state
// bypasses the single-writer seam even when a mutex makes it race-free.
func shardScoped(m *Module, p *Package) bool {
	for _, s := range []string{"/internal/shard", "/internal/sweep", "/internal/serve", "/internal/ledger"} {
		full := m.Path + s
		if p.Path == full || strings.HasPrefix(p.Path, full+"/") {
			return true
		}
	}
	return false
}

// capturedWrite is one assignment inside a go-funclit whose target
// lives outside the goroutine.
type capturedWrite struct {
	pos    token.Pos
	target string // printable form of the written expression
	locked bool   // the goroutine body takes a sync lock
}

// goFuncWrites walks fn's body and reports every write to captured
// state inside each `go func() {...}` launched there. The one exempt
// shape is the own-slot write: indexing a captured slice or array with
// a goroutine-local coordinate (`out[i] = ...` where i is claimed
// inside the goroutine) writes memory no other worker touches — that is
// the sanctioned fan-out idiom in internal/sweep. Map writes and
// fixed-index writes share their target with every other worker and
// stay flagged.
func goFuncWrites(p *Package, body *ast.BlockStmt) []capturedWrite {
	var writes []capturedWrite
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		locked := bodyLocks(p, lit)
		for _, w := range litCapturedWrites(p, lit) {
			w.locked = locked
			writes = append(writes, w)
		}
		return true
	})
	return writes
}

// bodyLocks reports whether the funclit body calls Lock/RLock from
// package sync — the signal that the author is mediating shared access
// with a mutex rather than the shard seam.
func bodyLocks(p *Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(p.Info, call.Fun)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		if fn.Name() == "Lock" || fn.Name() == "RLock" {
			found = true
		}
		return true
	})
	return found
}

// litCapturedWrites collects writes to captured targets inside lit,
// skipping nested goroutines (they are visited as their own GoStmt).
func litCapturedWrites(p *Package, lit *ast.FuncLit) []capturedWrite {
	var writes []capturedWrite
	record := func(lhs ast.Expr, define bool) {
		if define {
			return // := declares goroutine-locals
		}
		if w, captured := classifyWrite(p, lit, lhs); captured {
			writes = append(writes, w)
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			return false // its own goroutine, visited separately
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				record(lhs, st.Tok == token.DEFINE)
			}
		case *ast.IncDecStmt:
			record(st.X, false)
		case *ast.RangeStmt:
			if st.Tok == token.ASSIGN {
				record(st.Key, false)
				record(st.Value, false)
			}
		}
		return true
	})
	return writes
}

// classifyWrite decomposes one assignment target down to its base
// identifier and decides whether it writes captured state.
func classifyWrite(p *Package, lit *ast.FuncLit, lhs ast.Expr) (capturedWrite, bool) {
	var indexes []*ast.IndexExpr
	expr := lhs
walk:
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			indexes = append(indexes, e)
			expr = e.X
		case *ast.Ident:
			break walk
		default:
			return capturedWrite{}, false // computed base (call result etc.)
		}
	}
	base := expr.(*ast.Ident)
	if base.Name == "_" {
		return capturedWrite{}, false
	}
	obj := p.Info.ObjectOf(base)
	v, ok := obj.(*types.Var)
	if !ok || declaredInside(lit, v) {
		return capturedWrite{}, false // goroutine-local (or not a variable)
	}
	// Own-slot exemption: some step of the access chain indexes a
	// slice/array with a goroutine-local coordinate.
	for _, ix := range indexes {
		t := p.Info.TypeOf(ix.X)
		if t == nil {
			continue
		}
		u := t.Underlying()
		if ptr, isPtr := u.(*types.Pointer); isPtr {
			u = ptr.Elem().Underlying()
		}
		switch u.(type) {
		case *types.Slice, *types.Array:
			if indexIsLocal(p, lit, ix.Index) {
				return capturedWrite{}, false
			}
		}
	}
	return capturedWrite{pos: lhs.Pos(), target: types.ExprString(lhs)}, true
}

// declaredInside reports whether v's declaration lies lexically inside
// lit (including its parameter list).
func declaredInside(lit *ast.FuncLit, v *types.Var) bool {
	return v.Pos() >= lit.Pos() && v.Pos() < lit.End()
}

// indexIsLocal reports whether idx contains at least one
// goroutine-local variable (a per-worker coordinate) and no captured
// ones: `out[i]` with i claimed inside the goroutine is a private slot,
// `out[0]` or `out[j]` with shared j is not.
func indexIsLocal(p *Package, lit *ast.FuncLit, idx ast.Expr) bool {
	local, captured := false, false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := p.Info.ObjectOf(id).(*types.Var); ok {
			if declaredInside(lit, v) {
				local = true
			} else {
				captured = true
			}
		}
		return true
	})
	return local && !captured
}

// checkShardIsolation enforces the Send/outbox seam inside the shard
// and sweep worker pools: a goroutine there may write only its own
// slot; every other cross-goroutine effect must be a Shard.Send merged
// at the barrier. Even a mutex-guarded write is flagged — a lock makes
// the write safe for the race detector but still couples shards in a
// scheduler-dependent order, which is exactly what the conservative
// window proof forbids.
var checkShardIsolation = &Check{
	Name: "shard-isolation",
	Doc:  "goroutines in internal/shard and internal/sweep write only their own slot; cross-shard effects go through Send",
	run: func(m *Module, p *Package) []Diagnostic {
		if p.Info == nil || !shardScoped(m, p) {
			return nil
		}
		var diags []Diagnostic
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				for _, w := range goFuncWrites(p, fd.Body) {
					diags = append(diags, Diagnostic{
						Check: "shard-isolation",
						Pos:   m.Fset.Position(w.pos),
						Message: fmt.Sprintf(
							"goroutine writes %s, captured from outside its shard slot; route cross-shard effects through Shard.Send and the outbox barrier", w.target),
					})
				}
			}
		}
		return diags
	},
}

// checkUnsyncedSharedWrite covers the rest of the simulation tree: any
// other internal/ package that launches a goroutine writing captured
// state without taking a sync lock is a data race waiting for the race
// detector to get lucky. Unlike shard-isolation this check accepts
// mutex-mediated writes — outside the shard plane there is no window
// proof to protect, only memory safety.
var checkUnsyncedSharedWrite = &Check{
	Name: "unsynced-shared-write",
	Doc:  "goroutines in internal/ sim packages must not write captured state without sync mediation",
	run: func(m *Module, p *Package) []Diagnostic {
		if p.Info == nil || !simScoped(m, p) || shardScoped(m, p) {
			return nil
		}
		var diags []Diagnostic
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				for _, w := range goFuncWrites(p, fd.Body) {
					if w.locked {
						continue
					}
					diags = append(diags, Diagnostic{
						Check: "unsynced-shared-write",
						Pos:   m.Fset.Position(w.pos),
						Message: fmt.Sprintf(
							"goroutine writes captured %s without sync mediation; guard it with a mutex or give each worker its own slot", w.target),
					})
				}
			}
		}
		return diags
	},
}
