package lint

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestSuppressionDebtGate is the debt gate in test form: the committed
// tree's //simlint:allow inventory must pass against the committed
// baseline — every site reasoned, every site actually suppressing
// something, totals no higher than the pin. This is the same predicate
// `simlint -debt` enforces in verify.sh and CI.
func TestSuppressionDebtGate(t *testing.T) {
	m := loadRepo(t)
	report := m.Debt(Checks())

	data, err := os.ReadFile("../../.simlint-baseline.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	for _, f := range GateDebt(base, report) {
		t.Errorf("debt gate: %s", f)
	}
	if report.Total == 0 {
		t.Fatal("debt inventory found no sites; the collector is broken")
	}
	// The pin is exact in both directions inside the repo's own test:
	// a debt-reducing change must also ratchet the baseline, so the
	// committed number always states the truth.
	if notes := Tighten(base, report); len(notes) != 0 {
		t.Errorf("baseline is loose: %v (run: go run ./cmd/simlint -debt -update)", notes)
	}
}

// TestDebtInventoryShape spot-checks the inventory against known
// committed sites: module-root-relative paths, captured reasons, and
// per-check totals consistent with the site list.
func TestDebtInventoryShape(t *testing.T) {
	m := loadRepo(t)
	report := m.Debt(Checks())

	counts := map[string]int{}
	foundBaselineRange := false
	for _, s := range report.Sites {
		if strings.Contains(s.File, "\\") || strings.HasPrefix(s.File, "/") || strings.HasPrefix(s.File, "..") {
			t.Errorf("site path %q is not module-root-relative", s.File)
		}
		if len(s.Checks) == 0 {
			t.Errorf("%s:%d: site with no check names survived parsing", s.File, s.Line)
		}
		for _, c := range s.Checks {
			counts[c]++
		}
		if s.File == "internal/netbench/baseline.go" {
			foundBaselineRange = true
			if !strings.Contains(s.Reason, "frozen") {
				t.Errorf("netbench baseline site lost its reason: %q", s.Reason)
			}
		}
	}
	if !foundBaselineRange {
		t.Error("inventory missed the internal/netbench/baseline.go ordered-map-range site")
	}
	if len(report.Sites) != report.Total {
		t.Errorf("Total %d != len(Sites) %d", report.Total, len(report.Sites))
	}
	for _, c := range report.PerCheck {
		if counts[c.Check] != c.Sites {
			t.Errorf("PerCheck[%s] = %d, sites say %d", c.Check, c.Sites, counts[c.Check])
		}
	}
}

// TestDebtStaleDetection proves usage tracking end to end on a fixture
// module package: one directive that suppresses a real diagnostic, one
// that suppresses nothing.
func TestDebtStaleDetection(t *testing.T) {
	m := loadRepo(t)
	pkg, err := m.TypecheckSource("spiderfs/internal/debtfix", map[string]string{
		"debtfix.go": `package debtfix

func provoke() {
	panic("debtfix: annotated") //simlint:allow no-library-panic fixture: proves usage tracking
}

func calm() int {
	x := 1 //simlint:allow no-wallclock fixture: nothing on this line to suppress
	return x
}
`,
	})
	if err != nil {
		t.Fatalf("TypecheckSource: %v", err)
	}

	// Filtered run: the annotated panic is silenced, the stale
	// directive changes nothing.
	if diags := m.RunPackage(pkg, Checks()); len(diags) != 0 {
		t.Fatalf("fixture should be clean after filtering, got %v", diags)
	}

	// The inventory over the same package must mark one site used, one
	// stale.
	report := m.debtOver([]*Package{pkg}, Checks())
	if report.Total != 2 {
		t.Fatalf("inventory found %d sites, want 2: %+v", report.Total, report.Sites)
	}
	for _, s := range report.Sites {
		wantUsed := s.Checks[0] == "no-library-panic"
		if s.Used != wantUsed {
			t.Errorf("%s site: Used = %v, want %v", s.Checks[0], s.Used, wantUsed)
		}
	}
	if fails := GateDebt(Baseline{Total: 2, PerCheck: report.PerCheck}, report); len(fails) != 1 || !strings.Contains(fails[0], "stale") {
		t.Errorf("gate should flag exactly the stale site, got %v", fails)
	}
}

func TestParseAllowDirectiveReasons(t *testing.T) {
	cases := []struct {
		in     string
		names  string
		reason string
		ok     bool
	}{
		{"//simlint:allow no-wallclock benchmark harness", "no-wallclock", "benchmark harness", true},
		{"//simlint:allow a,b  spaced   reason", "a b", "spaced   reason", true},
		{"//simlint:allow bare-no-reason", "bare-no-reason", "", true},
		{"//simlint:allow", "", "", false},
		{"// not a directive", "", "", false},
	}
	for _, c := range cases {
		names, reason, ok := parseAllowDirective(c.in)
		if got := strings.Join(names, " "); got != c.names || reason != c.reason || ok != c.ok {
			t.Errorf("parseAllowDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, got, reason, ok, c.names, c.reason, c.ok)
		}
	}
}

// TestGateDebtPolicy exercises the gate rules on synthetic reports.
func TestGateDebtPolicy(t *testing.T) {
	used := func(file string, line int, check, reason string) DebtSite {
		return DebtSite{File: file, Line: line, Checks: []string{check}, Reason: reason, Used: true}
	}
	base := Baseline{Total: 2, PerCheck: []CheckDebt{{Check: "no-library-panic", Sites: 2}}}

	ok := DebtReport{
		Total:    2,
		PerCheck: []CheckDebt{{Check: "no-library-panic", Sites: 2}},
		Sites: []DebtSite{
			used("a.go", 1, "no-library-panic", "why"),
			used("b.go", 2, "no-library-panic", "why"),
		},
	}
	if fails := GateDebt(base, ok); len(fails) != 0 {
		t.Errorf("clean report should pass, got %v", fails)
	}

	grown := ok
	grown.Total = 3
	grown.PerCheck = []CheckDebt{{Check: "no-library-panic", Sites: 3}}
	grown.Sites = append(append([]DebtSite(nil), ok.Sites...), used("c.go", 3, "no-library-panic", "why"))
	fails := GateDebt(base, grown)
	if len(fails) != 2 {
		t.Errorf("growth should fail total and per-check, got %v", fails)
	}

	reasonless := ok
	reasonless.Sites = []DebtSite{used("a.go", 1, "no-library-panic", ""), ok.Sites[1]}
	if fails := GateDebt(base, reasonless); len(fails) != 1 || !strings.Contains(fails[0], "no reason") {
		t.Errorf("reasonless site should fail, got %v", fails)
	}

	stale := ok
	stale.Sites = []DebtSite{{File: "a.go", Line: 1, Checks: []string{"no-library-panic"}, Reason: "why"}, ok.Sites[1]}
	if fails := GateDebt(base, stale); len(fails) != 1 || !strings.Contains(fails[0], "stale") {
		t.Errorf("stale site should fail, got %v", fails)
	}

	newCheck := ok
	newCheck.PerCheck = append(append([]CheckDebt(nil), ok.PerCheck...), CheckDebt{Check: "dropped-error", Sites: 1})
	if fails := GateDebt(base, newCheck); len(fails) != 1 || !strings.Contains(fails[0], "dropped-error") {
		t.Errorf("debt under a new check should fail against a baseline that never pinned it, got %v", fails)
	}

	shrunk := DebtReport{Total: 1, PerCheck: []CheckDebt{{Check: "no-library-panic", Sites: 1}}, Sites: ok.Sites[:1]}
	if fails := GateDebt(base, shrunk); len(fails) != 0 {
		t.Errorf("shrinking debt should pass the gate, got %v", fails)
	}
	if notes := Tighten(base, shrunk); len(notes) != 1 {
		t.Errorf("shrinking debt should suggest a ratchet, got %v", notes)
	}
}
