// Package lint implements simlint, the repository's determinism and
// hygiene analyzer suite. It loads every package in the module with
// nothing but the standard library (go/parser, go/types, go/importer)
// and enforces the invariants behind the reproduction contract in
// DESIGN.md: simulated time only, seeded randomness only, no map
// iteration feeding event scheduling or report output (enforced
// transitively over a whole-program call graph that follows callbacks
// handed off as function/method values, with diagnostics spelling the
// full hazard path), no panics in library code, stdlib-only imports,
// hermetic (env-free) simulation packages, shard-isolation for the
// parallel worker pools, no unsynced captured writes in goroutines,
// and no dropped module-local errors.
//
// The escape-hatch directives themselves are managed debt: Debt
// inventories every //simlint:allow site, verifies it still suppresses
// something and carries a reason, and GateDebt pins the totals against
// a committed baseline (.simlint-baseline.json, enforced by verify.sh
// and CI via simlint -debt).
//
// Each invariant is a named Check producing file:line:col diagnostics.
// A site that is provably order-insensitive or intentionally excepted
// is silenced with an escape-hatch comment on the offending line or
// the line directly above it:
//
//	//simlint:allow <check>[,<check>...] <reason>
//
// The reason is free text and is strongly encouraged; the directive
// without at least one check name is inert.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding from one check.
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

// String formats the diagnostic the way compilers do, so editors and CI
// annotators can parse it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// A Check is one named invariant. Checks are pure: they read the loaded
// module and report diagnostics, never mutating anything.
type Check struct {
	Name string // stable identifier used in diagnostics and allow comments
	Doc  string // one-line description
	run  func(m *Module, p *Package) []Diagnostic
}

// Checks returns the full suite in stable order.
func Checks() []*Check {
	return []*Check{
		checkNoWallclock,
		checkNoGlobalRand,
		checkOrderedMapRange,
		checkNoLibraryPanic,
		checkStdlibOnlyImports,
		checkEnvFreeSim,
		checkShardIsolation,
		checkUnsyncedSharedWrite,
		checkDroppedError,
	}
}

// LookupCheck returns the named check, or nil.
func LookupCheck(name string) *Check {
	for _, c := range Checks() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Run executes the given checks over every package in the module,
// filters allow-directives, and returns the surviving diagnostics in
// (file, line, col, check) order. Load and typecheck problems surface
// as diagnostics under the pseudo-check "load" so a broken tree cannot
// silently pass.
func (m *Module) Run(checks []*Check) []Diagnostic {
	diags := append([]Diagnostic(nil), m.LoadErrors...)
	for _, p := range m.Pkgs {
		diags = append(diags, m.runPackage(p, checks)...)
	}
	return finish(diags)
}

// RunPackage executes the checks over a single package (typically one
// produced by TypecheckSource for sabotage fixtures), including that
// package's typecheck diagnostics.
func (m *Module) RunPackage(p *Package, checks []*Check) []Diagnostic {
	return finish(m.runPackage(p, checks))
}

func (m *Module) runPackage(p *Package, checks []*Check) []Diagnostic {
	diags := append([]Diagnostic(nil), p.loadErrs...)
	for _, c := range checks {
		diags = append(diags, c.run(m, p)...)
	}
	return p.filterAllowed(m.Fset, diags)
}

func finish(diags []Diagnostic) []Diagnostic {
	for i := range diags {
		diags[i].File = diags[i].Pos.Filename
		diags[i].Line = diags[i].Pos.Line
		diags[i].Col = diags[i].Pos.Column
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}

// allowDirectives maps file name -> directive line -> allowed check
// names. A directive silences matching diagnostics on its own line
// (trailing comment) and on the line directly below it (standalone
// comment above the offending statement).
type allowDirectives map[string]map[int]map[string]bool

const allowPrefix = "//simlint:allow"

// parseAllow extracts check names from one comment's raw text, or nil.
func parseAllow(text string) []string {
	names, _, _ := parseAllowDirective(text)
	return names
}

// parseAllowDirective splits one comment's raw text into the directive's
// check names and free-text reason. ok is false for non-directives and
// for the inert no-name form.
func parseAllowDirective(text string) (names []string, reason string, ok bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", false
	}
	first := fields[0]
	rem := strings.TrimPrefix(rest, first)
	for _, n := range strings.Split(first, ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, "", false
	}
	return names, strings.TrimSpace(rem), true
}

func collectAllows(fset *token.FileSet, files []*ast.File) allowDirectives {
	dirs := allowDirectives{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := dirs[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					dirs[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = map[string]bool{}
					byLine[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return dirs
}

func (p *Package) filterAllowed(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	if p.allows == nil {
		all := append(append([]*ast.File(nil), p.Files...), p.TestFiles...)
		p.allows = collectAllows(fset, all)
	}
	kept := diags[:0]
	for _, d := range diags {
		byLine := p.allows[d.Pos.Filename]
		if byLine != nil && (byLine[d.Pos.Line][d.Check] || byLine[d.Pos.Line-1][d.Check]) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
