package lint

import (
	"go/ast"
	"go/types"
)

// facts records, for every function declaration analyzed so far, whether
// it directly schedules engine events or writes report/trace output, and
// which module-local functions it calls. ordered-map-range combines the
// two for its one-hop transitive hazard test.
type facts struct {
	modpath string
	direct  map[*types.Func]string        // func -> reason it is hazardous
	calls   map[*types.Func][]*types.Func // module-local callees, AST order
}

// moduleFacts lazily builds facts over every module package.
func (m *Module) moduleFacts() *facts {
	if m.facts == nil {
		m.facts = &facts{modpath: m.Path, direct: map[*types.Func]string{}, calls: map[*types.Func][]*types.Func{}}
		for _, p := range m.Pkgs {
			m.facts.addPackage(p)
		}
	}
	return m.facts
}

// factsWith returns module facts extended with p (used for fixture
// packages typechecked via TypecheckSource, which are not in m.Pkgs).
func (m *Module) factsWith(p *Package) *facts {
	base := m.moduleFacts()
	for _, q := range m.Pkgs {
		if q == p {
			return base
		}
	}
	ext := &facts{modpath: base.modpath, direct: map[*types.Func]string{}, calls: map[*types.Func][]*types.Func{}}
	for k, v := range base.direct {
		ext.direct[k] = v
	}
	for k, v := range base.calls {
		ext.calls[k] = v
	}
	ext.addPackage(p)
	return ext
}

func (f *facts) addPackage(p *Package) {
	if p.Info == nil {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			// Everything lexically inside the declaration counts as
			// the declaration, closures included: a callback built
			// here fires on behalf of this function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(p.Info, call)
				if callee == nil {
					return true
				}
				if reason, hazardous := markerCall(f.modpath, callee); hazardous {
					if _, seen := f.direct[obj]; !seen {
						f.direct[obj] = reason
					}
					return true
				}
				if pkg := callee.Pkg(); pkg != nil && modulePathMember(f.modpath, pkg.Path()) {
					f.calls[obj] = append(f.calls[obj], callee)
				}
				return true
			})
		}
	}
}

// hazard reports whether fn directly schedules/writes, or does so one
// call hop away through a module-local callee.
func (f *facts) hazard(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	if reason, ok := f.direct[fn]; ok {
		return reason, true
	}
	for _, callee := range f.calls[fn] {
		if reason, ok := f.direct[callee]; ok {
			return reason + " (via " + callee.Name() + ")", true
		}
	}
	return "", false
}

// calleeOf statically resolves the function object a call invokes, or
// nil for dynamic calls (function values, interface methods).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// markerCall classifies callee as event-scheduling or report/trace
// writing. These are the sinks whose input order the determinism
// contract freezes: the sim.Engine scheduling API, the trace package,
// and the stream/report encoders library code emits artifacts through.
func markerCall(modpath string, callee *types.Func) (string, bool) {
	pkg := callee.Pkg()
	if pkg == nil {
		return "", false
	}
	recv := recvTypeName(callee)
	switch pkg.Path() {
	case modpath + "/internal/sim":
		if recv == "Engine" {
			switch callee.Name() {
			case "At", "After", "Reschedule":
				return "schedules engine events", true
			}
		}
	case modpath + "/internal/trace":
		return "writes trace output", true
	case modpath + "/internal/spantrace":
		return "records span-trace output", true
	case modpath + "/internal/sweep":
		return "records sweep results", true
	case modpath + "/internal/integrity":
		return "drives the integrity scrub plane", true
	case modpath + "/internal/shard":
		return "delivers cross-shard events", true
	case "fmt":
		switch callee.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			return "writes report output", true
		}
	case "encoding/json":
		if recv == "Encoder" && callee.Name() == "Encode" {
			return "writes report output", true
		}
		switch callee.Name() {
		case "Marshal", "MarshalIndent":
			return "writes report output", true
		}
	case "encoding/csv":
		if recv == "Writer" {
			switch callee.Name() {
			case "Write", "WriteAll":
				return "writes report output", true
			}
		}
	}
	return "", false
}

// recvTypeName returns the name of the receiver's named type (through
// one pointer), or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// modulePathMember reports whether path is the module or inside it.
func modulePathMember(modpath, path string) bool {
	return path == modpath || len(path) > len(modpath) && path[:len(modpath)] == modpath && path[len(modpath)] == '/'
}
