package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// sinkInfo describes one hazardous sink: why touching it freezes input
// order, and a printable name for hazard-path diagnostics.
type sinkInfo struct {
	reason string // e.g. "schedules engine events"
	sink   string // e.g. "sim.Engine.At"
}

// facts is the module's whole-program hazard database: for every
// function declaration analyzed so far, whether it directly touches a
// determinism sink (schedules engine events, writes report/trace
// output), and every module-local function it calls *or references* —
// a method value or func value handed off as a callback counts as a
// call edge, because whoever receives it may invoke it. ordered-map-range
// runs a fixpoint reachability query over this graph, so a hazard any
// number of call hops from the sink is still found, with the full path.
type facts struct {
	modpath string
	direct  map[*types.Func]sinkInfo       // func -> the sink it touches directly
	calls   map[*types.Func][]*types.Func  // module-local callees/references, AST order
	memo    map[*types.Func]*hazardSummary // fixpoint cache, nil entry = proven safe
}

// hazardSummary is the memoized result of a reachability query.
type hazardSummary struct {
	reason string
	path   []*types.Func // fn ... direct-sink-toucher, inclusive
	sink   string
}

// moduleFacts lazily builds facts over every module package.
func (m *Module) moduleFacts() *facts {
	if m.facts == nil {
		m.facts = newFacts(m.Path)
		for _, p := range m.Pkgs {
			m.facts.addPackage(p)
		}
	}
	return m.facts
}

func newFacts(modpath string) *facts {
	return &facts{
		modpath: modpath,
		direct:  map[*types.Func]sinkInfo{},
		calls:   map[*types.Func][]*types.Func{},
		memo:    map[*types.Func]*hazardSummary{},
	}
}

// factsWith returns module facts extended with p (used for fixture
// packages typechecked via TypecheckSource, which are not in m.Pkgs).
func (m *Module) factsWith(p *Package) *facts {
	base := m.moduleFacts()
	for _, q := range m.Pkgs {
		if q == p {
			return base
		}
	}
	ext := newFacts(base.modpath)
	for k, v := range base.direct {
		ext.direct[k] = v
	}
	for k, v := range base.calls {
		ext.calls[k] = v
	}
	ext.addPackage(p)
	return ext
}

func (f *facts) addPackage(p *Package) {
	if p.Info == nil {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			// Everything lexically inside the declaration counts as
			// the declaration, closures included: a callback built
			// here fires on behalf of this function. Walking every
			// identifier (rather than only call expressions) is what
			// makes handed-off callbacks visible: `pool.Each(t.emit)`
			// records an edge to emit exactly as `t.emit()` would.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				callee, ok := p.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if si, hazardous := markerCall(f.modpath, callee); hazardous {
					if _, seen := f.direct[obj]; !seen {
						f.direct[obj] = si
					}
					return true
				}
				if pkg := callee.Pkg(); pkg != nil && modulePathMember(f.modpath, pkg.Path()) {
					f.calls[obj] = append(f.calls[obj], callee)
				}
				return true
			})
		}
	}
}

// hazard reports whether fn touches a determinism sink anywhere in its
// transitive call graph. The returned reason names the sink class; the
// path spells out the whole chain for the diagnostic, e.g.
//
//	flush → emit → record → sim.Engine.At
//
// Resolution is a breadth-first search over the call/reference graph,
// so the reported path is a shortest one, and edge order (AST order,
// packages sorted by import path) makes it deterministic.
func (f *facts) hazard(fn *types.Func) (reason, path string, ok bool) {
	sum := f.reach(fn)
	if sum == nil {
		return "", "", false
	}
	var b strings.Builder
	for i, hop := range sum.path {
		if i > 0 {
			b.WriteString(" → ")
		}
		b.WriteString(hop.Name())
	}
	b.WriteString(" → ")
	b.WriteString(sum.sink)
	return sum.reason, b.String(), true
}

// reach runs the memoized BFS behind hazard.
func (f *facts) reach(fn *types.Func) *hazardSummary {
	if fn == nil {
		return nil
	}
	if sum, seen := f.memo[fn]; seen {
		return sum
	}
	type node struct {
		fn   *types.Func
		prev int // index of predecessor in visit order, -1 for the root
	}
	visit := []node{{fn: fn, prev: -1}}
	seen := map[*types.Func]bool{fn: true}
	found := -1
	for i := 0; i < len(visit) && found < 0; i++ {
		cur := visit[i]
		if _, direct := f.direct[cur.fn]; direct {
			found = i
			break
		}
		for _, callee := range f.calls[cur.fn] {
			if seen[callee] {
				continue
			}
			seen[callee] = true
			visit = append(visit, node{fn: callee, prev: i})
		}
	}
	var sum *hazardSummary
	if found >= 0 {
		si := f.direct[visit[found].fn]
		var rev []*types.Func
		for i := found; i >= 0; i = visit[i].prev {
			rev = append(rev, visit[i].fn)
		}
		path := make([]*types.Func, len(rev))
		for i, hop := range rev {
			path[len(rev)-1-i] = hop
		}
		sum = &hazardSummary{reason: si.reason, path: path, sink: si.sink}
	}
	f.memo[fn] = sum
	return sum
}

// calleeOf statically resolves the function object an expression
// denotes: the callee of a call, or a method value / func value used as
// a callback argument. It returns nil for expressions that are not
// statically a single function (interface method values through a nil
// selection, computed function values).
func calleeOf(info *types.Info, expr ast.Expr) *types.Func {
	switch fun := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// markerCall classifies callee as event-scheduling or report/trace
// writing. These are the sinks whose input order the determinism
// contract freezes: the sim.Engine scheduling API, the trace package,
// and the stream/report encoders library code emits artifacts through.
func markerCall(modpath string, callee *types.Func) (sinkInfo, bool) {
	pkg := callee.Pkg()
	if pkg == nil {
		return sinkInfo{}, false
	}
	recv := recvTypeName(callee)
	mark := func(reason string) (sinkInfo, bool) {
		name := pkg.Name() + "."
		if recv != "" {
			name += recv + "."
		}
		return sinkInfo{reason: reason, sink: name + callee.Name()}, true
	}
	switch pkg.Path() {
	case modpath + "/internal/sim":
		if recv == "Engine" {
			switch callee.Name() {
			case "At", "After", "Reschedule":
				return mark("schedules engine events")
			}
		}
	case modpath + "/internal/trace":
		return mark("writes trace output")
	case modpath + "/internal/spantrace":
		return mark("records span-trace output")
	case modpath + "/internal/sweep":
		return mark("records sweep results")
	case modpath + "/internal/integrity":
		return mark("drives the integrity scrub plane")
	case modpath + "/internal/shard":
		return mark("delivers cross-shard events")
	case modpath + "/internal/serve":
		return mark("feeds the session service API")
	case modpath + "/internal/ledger":
		return mark("appends operations-ledger entries")
	case "fmt":
		switch callee.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			return mark("writes report output")
		}
	case "encoding/json":
		if recv == "Encoder" && callee.Name() == "Encode" {
			return mark("writes report output")
		}
		switch callee.Name() {
		case "Marshal", "MarshalIndent":
			return mark("writes report output")
		}
	case "encoding/csv":
		if recv == "Writer" {
			switch callee.Name() {
			case "Write", "WriteAll":
				return mark("writes report output")
			}
		}
	}
	return sinkInfo{}, false
}

// recvTypeName returns the name of the receiver's named type (through
// one pointer), or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// modulePathMember reports whether path is the module or inside it.
func modulePathMember(modpath, path string) bool {
	return path == modpath || len(path) > len(modpath) && path[:len(modpath)] == modpath && path[len(modpath)] == '/'
}
