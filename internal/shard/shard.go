// Package shard runs several sim.Engines in parallel under a
// conservative time-window barrier, turning the single-threaded
// discrete-event simulator into a sharded parallel one without giving up
// bit-identical traces.
//
// The model is classic conservative parallel discrete-event simulation:
// the system is partitioned into weakly-coupled shards (per-SSU storage
// stacks, torus regions of the fabric) that only influence each other
// with a known minimum delay, the Lookahead. Execution proceeds in
// quanta. Before each quantum the runner computes the earliest pending
// event time across all shards, minNext, and sets the window end
//
//	E = minNext + Lookahead.
//
// Every shard then runs its own engine through [now, E) on its own
// worker goroutine — shared-nothing, no locks on the event path. Any
// cross-shard influence is expressed as a Send(at, dst, fn) with
// at >= senderNow + Lookahead; since every event fired during the
// quantum has time t >= minNext, every send satisfies at >= minNext +
// Lookahead = E, i.e. no message can land inside the window that
// produced it. Messages are buffered in per-shard outboxes and delivered
// only at the barrier, in (shard index, send order) — a deterministic
// order independent of how many workers raced through the quantum, so
// the destination engine assigns the same FIFO sequence numbers as a
// serial run and the event-trace fingerprint is byte-identical at any
// worker count (the same double-run recipe internal/sweep uses).
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"spiderfs/internal/sim"
)

// message is one cross-shard event waiting in an outbox.
type message struct {
	at  sim.Time
	dst int
	fn  func()
}

// Shard is one partition of the model: a private engine plus an ordered
// outbox of cross-shard sends. Model code attached to a shard must touch
// only that shard's state from its event callbacks; the runner confines
// each engine to one worker goroutine per quantum, and the barrier is
// the only place state crosses shards. simlint's shard-isolation check
// enforces the seam statically: a goroutine in this package writing
// state captured from outside its own slot fails the build before the
// race detector ever sees it.
type Shard struct {
	Index int
	Eng   *sim.Engine

	r      *Runner
	outbox []message
	trace  *sim.TraceHash
}

// Send schedules fn to run on shard dst at absolute time at. It is the
// only legal way for model code on one shard to affect another. The
// delivery time must respect the lookahead (at >= sender's now +
// Lookahead) and can never fall inside the current window — both are
// causality assertions, so violating them panics rather than silently
// corrupting the merge order.
func (s *Shard) Send(at sim.Time, dst int, fn func()) {
	if at < s.Eng.Now()+s.r.lookahead {
		panic(fmt.Sprintf("shard: send at %v violates lookahead %v from now %v", at, s.r.lookahead, s.Eng.Now())) //simlint:allow no-library-panic causality assertion: a sub-lookahead send breaks the conservative window proof
	}
	if at < s.r.horizon {
		panic(fmt.Sprintf("shard: send at %v lands inside current window ending %v", at, s.r.horizon)) //simlint:allow no-library-panic causality assertion: delivery into an open window would race the quantum
	}
	if dst < 0 || dst >= len(s.r.shards) {
		panic(fmt.Sprintf("shard: send to unknown shard %d of %d", dst, len(s.r.shards))) //simlint:allow no-library-panic caller-contract assertion: shard indices are fixed at partition time
	}
	s.outbox = append(s.outbox, message{at: at, dst: dst, fn: fn})
}

// Status reports how a Run ended.
type Status int

const (
	// Quiescent: every engine drained and every outbox is empty.
	Quiescent Status = iota
	// Stopped: a shard engine has a sticky Stop set (model-initiated
	// pause). State is resumable: ClearStop then Run again.
	Stopped
	// Exhausted: MaxQuanta windows ran without quiescence. The runner
	// stopped every engine (sticky), so a Run without ClearStop returns
	// immediately instead of silently spinning again.
	Exhausted
)

func (s Status) String() string {
	switch s {
	case Quiescent:
		return "quiescent"
	case Stopped:
		return "stopped"
	case Exhausted:
		return "exhausted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Runner drives a set of shards through conservative windows.
type Runner struct {
	shards    []*Shard
	lookahead sim.Time
	workers   int

	// MaxQuanta bounds one Run call's window count; 0 means unlimited.
	// Hitting the bound stops every engine (sticky) and returns
	// Exhausted — the livelock guard for models that never drain.
	MaxQuanta uint64

	horizon    sim.Time // end of the window currently (or last) executed
	windowOpen bool     // a window was interrupted by Stop before its barrier
	quanta     uint64
	merged     uint64 // cross-shard messages delivered at barriers
}

// NewRunner creates n empty shards synchronized with the given lookahead
// and run by up to workers goroutines per quantum. Lookahead must be at
// least one tick: the window [now, minNext+Lookahead) must contain the
// minNext event or no quantum could make progress. workers < 1 is
// treated as 1 (serial); the fingerprint does not depend on workers.
func NewRunner(n int, lookahead sim.Time, workers int) *Runner {
	if n <= 0 {
		panic("shard: runner needs at least one shard") //simlint:allow no-library-panic caller-contract assertion: an empty partition is a builder bug
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("shard: lookahead %v must be >= 1 tick for windows to make progress", lookahead)) //simlint:allow no-library-panic caller-contract assertion: zero lookahead livelocks the conservative window
	}
	if workers < 1 {
		workers = 1
	}
	r := &Runner{lookahead: lookahead, workers: workers}
	r.shards = make([]*Shard, n)
	for i := range r.shards {
		s := &Shard{Index: i, Eng: sim.NewEngine(), r: r, trace: sim.NewTraceHash()}
		s.Eng.SetTrace(s.trace.Observe)
		r.shards[i] = s
	}
	return r
}

// Shard returns shard i (partition builders attach model state to it).
func (r *Runner) Shard(i int) *Shard { return r.shards[i] }

// NumShards returns the partition size.
func (r *Runner) NumShards() int { return len(r.shards) }

// Lookahead returns the minimum cross-shard delay the runner enforces.
func (r *Runner) Lookahead() sim.Time { return r.lookahead }

// Quanta returns how many synchronization windows have executed.
func (r *Runner) Quanta() uint64 { return r.quanta }

// Merged returns how many cross-shard messages barriers have delivered.
func (r *Runner) Merged() uint64 { return r.merged }

// Horizon returns the end of the last executed window: the earliest time
// new work scheduled from outside (between Run calls) may safely use.
func (r *Runner) Horizon() sim.Time { return r.horizon }

// Now returns the maximum engine clock across shards.
func (r *Runner) Now() sim.Time {
	var now sim.Time
	for _, s := range r.shards {
		if t := s.Eng.Now(); t > now {
			now = t
		}
	}
	return now
}

// Events returns the total number of events fired across all shards.
func (r *Runner) Events() uint64 {
	var n uint64
	for _, s := range r.shards {
		n += s.Eng.Fired()
	}
	return n
}

// Fingerprint folds the per-shard event traces, in shard index order,
// into one comparable value. Runs that fired the same events in the same
// per-shard order — regardless of worker count — produce identical
// fingerprints.
func (r *Runner) Fingerprint() uint64 {
	h := sim.NewTraceHash()
	for _, s := range r.shards {
		h.Observe(sim.Time(s.trace.Sum()), s.trace.Events())
	}
	return h.Sum()
}

// stoppedShard returns the first shard with a sticky Stop set, or -1.
func (r *Runner) stoppedShard() int {
	for _, s := range r.shards {
		if s.Eng.Stopped() {
			return s.Index
		}
	}
	return -1
}

// ClearStop re-arms every stopped engine so a Run can resume after a
// model-initiated Stop or an Exhausted return.
func (r *Runner) ClearStop() {
	for _, s := range r.shards {
		s.Eng.ClearStop()
	}
}

// stopAll sets the sticky Stop on every engine.
func (r *Runner) stopAll() {
	for _, s := range r.shards {
		s.Eng.Stop()
	}
}

// Run executes windows until every shard is quiescent (drained engine,
// empty outbox), a shard stops itself, or MaxQuanta is hit. It returns
// why it stopped. A Run entered with a sticky Stop still set returns
// Stopped immediately — the Stop is not silently lost.
//
// Stop/resume is window-exact: a Stop that fires mid-window leaves the
// window open with its end unchanged, outboxes buffered, and the barrier
// unmerged. The next Run (after ClearStop) completes that same window
// before delivering, so every shard fires the same events in the same
// order as an uninterrupted run and the fingerprint is unchanged.
// Re-running the window with a recomputed (smaller) end instead would
// let barrier deliveries land in the past of shards that had already
// reached the original end.
func (r *Runner) Run() Status {
	var ranQuanta uint64
	for {
		if r.stoppedShard() >= 0 {
			return Stopped
		}
		if !r.windowOpen {
			// Window end: minimum next event time across shards plus the
			// lookahead. Outboxes are empty here — the barrier closing the
			// previous window drained them — so pending engine events are
			// the only work left.
			minNext := sim.Time(0)
			any := false
			for _, s := range r.shards {
				if t, ok := s.Eng.NextEventTime(); ok && (!any || t < minNext) {
					minNext = t
					any = true
				}
			}
			if !any {
				return Quiescent
			}
			if r.MaxQuanta > 0 && ranQuanta >= r.MaxQuanta {
				r.stopAll()
				return Exhausted
			}
			r.horizon = minNext + r.lookahead
			r.windowOpen = true
		}
		// RunUntil is inclusive; the window is [.., horizon), so drive
		// each engine through horizon-1. Time is integral nanoseconds, so
		// this is exact. Idle engines still advance their clock to
		// horizon-1, keeping every shard's notion of "the past" aligned at
		// the barrier.
		r.runQuantum(r.horizon - 1)
		ranQuanta++
		r.quanta++
		if r.stoppedShard() >= 0 {
			return Stopped // window stays open; a resumed Run completes it
		}
		// Barrier: deliver outboxes in (shard index, send order). This
		// serial merge is the only place cross-shard state moves, and its
		// order is independent of worker scheduling.
		for _, s := range r.shards {
			for _, m := range s.outbox {
				r.shards[m.dst].Eng.At(m.at, m.fn)
				r.merged++
			}
			s.outbox = s.outbox[:0]
		}
		r.windowOpen = false
	}
}

// runQuantum drives every shard's engine through RunUntil(end) using up
// to r.workers goroutines. Shards are claimed from an atomic counter, so
// which worker runs which shard is scheduler-dependent — but engines are
// shared-nothing during the quantum, so that nondeterminism never
// touches model state or event order.
func (r *Runner) runQuantum(end sim.Time) {
	w := r.workers
	if w > len(r.shards) {
		w = len(r.shards)
	}
	if w <= 1 {
		for _, s := range r.shards {
			s.Eng.RunUntil(end)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(r.shards) {
					return
				}
				r.shards[i].Eng.RunUntil(end)
			}
		}()
	}
	wg.Wait()
}
