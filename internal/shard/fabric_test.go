package shard

import (
	"testing"

	"spiderfs/internal/rng"
)

// run builds a small partition with the given worker count, launches one
// deterministic wave, and drains it.
func runSmallWave(t *testing.T, workers, flows int) *FabricSim {
	t.Helper()
	fs := NewFabricSim(SmallPartition(workers))
	fs.LaunchWave(rng.New(42), flows, 1e6, 0)
	if st := fs.Runner.Run(); st != Quiescent {
		t.Fatalf("workers=%d: Run = %v, want %v", workers, st, Quiescent)
	}
	return fs
}

func TestFabricSimCompletesEveryFlow(t *testing.T) {
	const flows = 400
	fs := runSmallWave(t, 1, flows)
	if fs.Completed() != flows {
		t.Fatalf("completed %d of %d flows", fs.Completed(), flows)
	}
	if got, want := fs.BytesDelivered(), float64(flows)*1e6; got != want {
		t.Fatalf("delivered %g bytes, want %g", got, want)
	}
	if fs.Runner.Merged() == 0 {
		t.Fatal("no cross-shard hand-offs: the partition is not being exercised")
	}
	if fs.Launched() != flows {
		t.Fatalf("launched %d, want %d", fs.Launched(), flows)
	}
}

// The tentpole acceptance test: the sharded run's event-trace
// fingerprint must be byte-identical to the serial (workers=1) run at
// every tested worker count, and stable across double runs — the same
// recipe internal/sweep's determinism gate uses.
func TestFabricSimDeterministicAcrossWorkers(t *testing.T) {
	const flows = 400
	serial := runSmallWave(t, 1, flows)
	for _, workers := range []int{1, 2, 4, 8} {
		a := runSmallWave(t, workers, flows)
		b := runSmallWave(t, workers, flows)
		if a.Runner.Fingerprint() != b.Runner.Fingerprint() {
			t.Fatalf("workers=%d: double-run fingerprints differ: %016x vs %016x",
				workers, a.Runner.Fingerprint(), b.Runner.Fingerprint())
		}
		if a.Runner.Fingerprint() != serial.Runner.Fingerprint() {
			t.Fatalf("workers=%d: fingerprint %016x differs from serial %016x",
				workers, a.Runner.Fingerprint(), serial.Runner.Fingerprint())
		}
		if a.Runner.Events() != serial.Runner.Events() {
			t.Fatalf("workers=%d: fired %d events, serial fired %d",
				workers, a.Runner.Events(), serial.Runner.Events())
		}
		if a.Completed() != serial.Completed() || a.Runner.Now() != serial.Runner.Now() {
			t.Fatalf("workers=%d: completed=%d now=%v, serial completed=%d now=%v",
				workers, a.Completed(), a.Runner.Now(), serial.Completed(), serial.Runner.Now())
		}
	}
}

// Waves launched after a drained Run (scheduled at the runner horizon)
// must keep the simulation deterministic too — the multi-wave shape the
// congestion benchmark uses.
func TestFabricSimDeterministicAcrossWaves(t *testing.T) {
	run := func(workers int) *FabricSim {
		fs := NewFabricSim(SmallPartition(workers))
		src := rng.New(9)
		for wave := 0; wave < 3; wave++ {
			fs.LaunchWave(src, 150, 2e6, fs.Runner.Horizon())
			if st := fs.Runner.Run(); st != Quiescent {
				t.Fatalf("workers=%d wave %d: Run = %v", workers, wave, st)
			}
		}
		return fs
	}
	serial := run(1)
	if serial.Completed() != 450 {
		t.Fatalf("completed %d of 450 flows", serial.Completed())
	}
	for _, workers := range []int{2, 4, 8} {
		p := run(workers)
		if p.Runner.Fingerprint() != serial.Runner.Fingerprint() {
			t.Fatalf("workers=%d: multi-wave fingerprint %016x differs from serial %016x",
				workers, p.Runner.Fingerprint(), serial.Runner.Fingerprint())
		}
	}
}

// Every OSS must resolve to the storage shard whose range contains it,
// and every plan must start in the client's slab and end in the OSS's
// storage shard.
func TestFabricSimPartitionCoverage(t *testing.T) {
	fs := NewFabricSim(SmallPartition(1))
	cfg := fs.Cfg
	for oss := 0; oss < cfg.OSSes; oss++ {
		st := fs.storageOf(oss)
		if oss < st.olo || oss >= st.ohi {
			t.Fatalf("OSS %d resolved to shard range [%d,%d)", oss, st.olo, st.ohi)
		}
	}
	t1 := cfg.Net.Torus
	src := rng.New(3)
	for i := 0; i < 200; i++ {
		c := t1.CoordOf(src.Intn(t1.Nodes()))
		oss := src.Intn(cfg.OSSes)
		st := fs.storageOf(oss)
		rid := st.rlo + src.Intn(st.rhi-st.rlo)
		segs := fs.plan(c, rid, oss)
		if segs[0].shard != fs.xToRegion[c.X] {
			t.Fatalf("plan for client %v starts on shard %d, want slab %d", c, segs[0].shard, fs.xToRegion[c.X])
		}
		if last := segs[len(segs)-1]; last.shard != st.s.Index || len(last.links) != 2 {
			t.Fatalf("plan tail on shard %d with %d links, want storage shard %d with 2",
				last.shard, len(last.links), st.s.Index)
		}
		for k := 1; k < len(segs); k++ {
			if segs[k].shard == segs[k-1].shard {
				t.Fatalf("consecutive segments on shard %d: hand-off to self", segs[k].shard)
			}
		}
	}
}
