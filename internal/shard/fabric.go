package shard

import (
	"fmt"

	"spiderfs/internal/netsim"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// FabricConfig describes a partitioned Spider I/O fabric: the torus cut
// into contiguous X-slab region shards (dimension-ordered routing walks
// X first, so a path crosses each slab at most once and runs its whole
// Y/Z phase inside the final slab), and the router/OSS population cut
// into storage shards, each owning a contiguous router range and OSS
// range and modeling the [router forwarding, OSS port] tail of the path.
// The SAN core tier is omitted from the sharded model: FGR keeps almost
// all traffic off the core (see BENCH results for the monolithic
// fabric), and a shared core link would couple every storage shard to
// every other, destroying the partition. DESIGN.md states this
// approximation.
type FabricConfig struct {
	Net     netsim.FabricConfig
	Regions int // X-slab region shards
	Storage int // storage shards (router+OSS ranges)
	OSSes   int
	Routers int

	// Lookahead is both the conservative synchronization window slack and
	// the modeled hand-off latency between path segments (the per-hop
	// latency the monolithic fabric pre-charges is paid here at each
	// shard boundary instead).
	Lookahead sim.Time
	Workers   int
}

// Spider2Partition returns the production-scale partition: the Titan
// torus cut into regions X-slabs, Spider II's 440 routers and 288 OSSes
// cut into storage shards, synchronized at the Gemini hop latency.
func Spider2Partition(regions, storage, workers int) FabricConfig {
	net := netsim.Spider2Fabric()
	return FabricConfig{
		Net:       net,
		Regions:   regions,
		Storage:   storage,
		OSSes:     288,
		Routers:   440,
		Lookahead: net.GeminiLatency,
		Workers:   workers,
	}
}

// SmallPartition returns a test-scale partition (a 6x4x4 torus, three
// slabs, two storage shards) that still exercises every seam:
// multi-slab gemini paths, wraparound hops, and cross-shard hand-offs.
func SmallPartition(workers int) FabricConfig {
	net := netsim.Spider2Fabric()
	net.Torus = topology.Torus{NX: 6, NY: 4, NZ: 4}
	return FabricConfig{
		Net:       net,
		Regions:   3,
		Storage:   2,
		OSSes:     12,
		Routers:   16,
		Lookahead: net.GeminiLatency,
		Workers:   workers,
	}
}

// planSeg is one shard-local stretch of a flow's path.
type planSeg struct {
	shard int
	links []*netsim.Link
}

// flight is one transfer moving through its path segments.
type flight struct {
	segs  []planSeg
	bytes float64
}

type regionShard struct {
	s   *Shard
	net *netsim.Network
	rf  *netsim.RegionFabric
}

type storageShard struct {
	s         *Shard
	net       *netsim.Network
	rlo, rhi  int // router ID range [rlo, rhi)
	olo, ohi  int // OSS index range [olo, ohi)
	routerFwd []*netsim.Link
	ossPort   []*netsim.Link

	// Written only from this shard's engine; read after Run returns.
	completed uint64
	bytes     float64
}

// FabricSim is the sharded counterpart of netsim.Fabric + its driver: a
// Runner whose shards 0..Regions-1 hold torus slabs and whose shards
// Regions..Regions+Storage-1 hold router/OSS tails.
type FabricSim struct {
	Cfg    FabricConfig
	Runner *Runner

	regions     []*regionShard
	storage     []*storageShard
	xToRegion   []int
	routerCoord []topology.Coord
	launched    uint64
}

// NewFabricSim builds the partition. Every link of every shard is
// created in a fixed serial order, so engine sequence numbering — and
// with it the run fingerprint — depends only on the configuration.
func NewFabricSim(cfg FabricConfig) *FabricSim {
	t := cfg.Net.Torus
	if cfg.Regions < 1 || cfg.Regions > t.NX {
		panic(fmt.Sprintf("shard: %d region slabs for torus X dimension %d", cfg.Regions, t.NX)) //simlint:allow no-library-panic caller-contract assertion: invalid partition is a builder bug
	}
	if cfg.Storage < 1 || cfg.Storage > cfg.OSSes || cfg.Storage > cfg.Routers {
		panic(fmt.Sprintf("shard: %d storage shards for %d OSSes / %d routers", cfg.Storage, cfg.OSSes, cfg.Routers)) //simlint:allow no-library-panic caller-contract assertion: invalid partition is a builder bug
	}
	fs := &FabricSim{Cfg: cfg, Runner: NewRunner(cfg.Regions+cfg.Storage, cfg.Lookahead, cfg.Workers)}

	fs.xToRegion = make([]int, t.NX)
	fs.regions = make([]*regionShard, cfg.Regions)
	for i := 0; i < cfg.Regions; i++ {
		x0 := i * t.NX / cfg.Regions
		x1 := (i + 1) * t.NX / cfg.Regions
		for x := x0; x < x1; x++ {
			fs.xToRegion[x] = i
		}
		s := fs.Runner.Shard(i)
		net := netsim.NewNetwork(s.Eng)
		fs.regions[i] = &regionShard{s: s, net: net, rf: netsim.NewRegionFabric(net, cfg.Net, x0, x1)}
	}

	// Routers sit evenly spaced along the torus index space, mirroring
	// the monolithic placement's intent without its cabinet bookkeeping.
	fs.routerCoord = make([]topology.Coord, cfg.Routers)
	for rid := 0; rid < cfg.Routers; rid++ {
		fs.routerCoord[rid] = t.CoordOf(rid * t.Nodes() / cfg.Routers)
	}

	fs.storage = make([]*storageShard, cfg.Storage)
	for i := 0; i < cfg.Storage; i++ {
		s := fs.Runner.Shard(cfg.Regions + i)
		st := &storageShard{
			s:   s,
			net: netsim.NewNetwork(s.Eng),
			rlo: i * cfg.Routers / cfg.Storage,
			rhi: (i + 1) * cfg.Routers / cfg.Storage,
			olo: i * cfg.OSSes / cfg.Storage,
			ohi: (i + 1) * cfg.OSSes / cfg.Storage,
		}
		for rid := st.rlo; rid < st.rhi; rid++ {
			st.routerFwd = append(st.routerFwd, st.net.NewLink(fmt.Sprintf("rtr%d-fwd", rid), cfg.Net.RouterBps, cfg.Net.IBLatency))
		}
		for oss := st.olo; oss < st.ohi; oss++ {
			st.ossPort = append(st.ossPort, st.net.NewLink(fmt.Sprintf("oss%d-port", oss), cfg.Net.IBPortBps, cfg.Net.IBLatency))
		}
		fs.storage[i] = st
	}
	return fs
}

// storageOf returns the storage shard serving an OSS index.
func (fs *FabricSim) storageOf(oss int) *storageShard {
	i := oss * fs.Cfg.Storage / fs.Cfg.OSSes
	// Integer range splits are not perfectly inverted by this division;
	// walk to the owning range (at most one step either way).
	for fs.storage[i].olo > oss {
		i--
	}
	for fs.storage[i].ohi <= oss {
		i++
	}
	return fs.storage[i]
}

// plan builds the per-shard path segments for one transfer: injection
// and gemini hops grouped by owning slab (a hop's link belongs to its
// source node's slab), then the router/OSS tail on the storage shard.
func (fs *FabricSim) plan(c topology.Coord, rid, oss int) []planSeg {
	t := fs.Cfg.Net.Torus
	first := fs.xToRegion[c.X]
	segs := []planSeg{{shard: first, links: []*netsim.Link{fs.regions[first].rf.InjectLink(c)}}}
	cur := c
	t.Walk(c, fs.routerCoord[rid], func(next topology.Coord) {
		own := fs.xToRegion[cur.X]
		if segs[len(segs)-1].shard != own {
			segs = append(segs, planSeg{shard: own})
		}
		seg := &segs[len(segs)-1]
		seg.links = append(seg.links, fs.regions[own].rf.GeminiLink(cur, netsim.StepDir(t, cur, next)))
		cur = next
	})
	st := fs.storageOf(oss)
	segs = append(segs, planSeg{
		shard: st.s.Index,
		links: []*netsim.Link{st.routerFwd[rid-st.rlo], st.ossPort[oss-st.olo]},
	})
	return segs
}

// startSegment launches segment k of f on its owning shard's network
// (the caller must be running on that shard's engine) and chains the
// next segment through the barrier at completion.
func (fs *FabricSim) startSegment(f *flight, k int) {
	seg := f.segs[k]
	var net *netsim.Network
	if seg.shard < fs.Cfg.Regions {
		net = fs.regions[seg.shard].net
	} else {
		net = fs.storage[seg.shard-fs.Cfg.Regions].net
	}
	sh := fs.Runner.Shard(seg.shard)
	net.StartFlow(seg.links, f.bytes, func() {
		if k+1 < len(f.segs) {
			sh.Send(sh.Eng.Now()+fs.Cfg.Lookahead, f.segs[k+1].shard, func() {
				fs.startSegment(f, k+1)
			})
			return
		}
		st := fs.storage[seg.shard-fs.Cfg.Regions]
		st.completed++
		st.bytes += f.bytes
	})
}

// LaunchWave schedules flows transfers of bytes each, starting at time
// at (which must be >= Runner.Horizon()). All randomness — client
// coordinate, OSS, and router within the OSS's storage shard — is drawn
// serially from src before anything runs, the same pre-derivation
// recipe internal/sweep uses, so the wave is identical at any worker
// count. Routers are picked within the destination storage shard's
// range: the sharded analogue of FGR's "router attached to the
// destination's switch" discipline.
func (fs *FabricSim) LaunchWave(src *rng.Source, flows int, bytes float64, at sim.Time) {
	t := fs.Cfg.Net.Torus
	for i := 0; i < flows; i++ {
		c := t.CoordOf(src.Intn(t.Nodes()))
		oss := src.Intn(fs.Cfg.OSSes)
		st := fs.storageOf(oss)
		rid := st.rlo + src.Intn(st.rhi-st.rlo)
		f := &flight{segs: fs.plan(c, rid, oss), bytes: bytes}
		fs.regions[f.segs[0].shard].s.Eng.At(at, func() { fs.startSegment(f, 0) })
		fs.launched++
	}
}

// Launched returns the number of flows scheduled so far.
func (fs *FabricSim) Launched() uint64 { return fs.launched }

// Completed sums finished transfers across storage shards. Read it only
// after Run has returned.
func (fs *FabricSim) Completed() uint64 {
	var n uint64
	for _, st := range fs.storage {
		n += st.completed
	}
	return n
}

// BytesDelivered sums delivered payload bytes across storage shards.
func (fs *FabricSim) BytesDelivered() float64 {
	var b float64
	for _, st := range fs.storage {
		b += st.bytes
	}
	return b
}

// Links returns the total link count across all shards (scale report).
func (fs *FabricSim) Links() int {
	n := 0
	for _, r := range fs.regions {
		n += r.rf.Links()
	}
	for _, st := range fs.storage {
		n += len(st.routerFwd) + len(st.ossPort)
	}
	return n
}
