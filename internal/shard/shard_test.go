package shard

import (
	"testing"

	"spiderfs/internal/sim"
)

// Two shards bouncing a message back and forth across the barrier: the
// smallest model with genuine cross-shard causality.
func TestRunnerPingPongQuiesces(t *testing.T) {
	r := NewRunner(2, 10, 1)
	const hops = 8
	var hop func(s *Shard, n int)
	hop = func(s *Shard, n int) {
		if n == 0 {
			return
		}
		dst := 1 - s.Index
		s.Send(s.Eng.Now()+r.Lookahead(), dst, func() { hop(r.Shard(dst), n-1) })
	}
	r.Shard(0).Eng.At(0, func() { hop(r.Shard(0), hops) })

	if st := r.Run(); st != Quiescent {
		t.Fatalf("Run = %v, want %v", st, Quiescent)
	}
	if r.Merged() != hops {
		t.Fatalf("Merged = %d, want %d", r.Merged(), hops)
	}
	if got := r.Events(); got != hops+1 {
		t.Fatalf("Events = %d, want %d", got, hops+1)
	}
	// The last hop fires at hops * lookahead.
	if r.Now() < sim.Time(hops*10) {
		t.Fatalf("Now = %v, want >= %v", r.Now(), sim.Time(hops*10))
	}
	for i := 0; i < r.NumShards(); i++ {
		if p := r.Shard(i).Eng.Pending(); p != 0 {
			t.Fatalf("shard %d Pending = %d after quiescence", i, p)
		}
	}
}

// A model-initiated Stop pauses the runner mid-window; the window is
// completed on resume, so the final trace — and its fingerprint — is
// identical to an uninterrupted run firing the same events.
func TestRunnerStopResumePreservesFingerprint(t *testing.T) {
	build := func(stopAt35 bool) *Runner {
		r := NewRunner(2, 10, 1)
		var hop func(s *Shard, n int)
		hop = func(s *Shard, n int) {
			if n == 0 {
				return
			}
			dst := 1 - s.Index
			s.Send(s.Eng.Now()+r.Lookahead(), dst, func() { hop(r.Shard(dst), n-1) })
		}
		r.Shard(0).Eng.At(0, func() { hop(r.Shard(0), 8) })
		// Both runners fire an event at (35, same seq); only the stopping
		// one halts there. The trace records (time, seq), so the pair is
		// comparable event-for-event.
		fn := func() {}
		if stopAt35 {
			eng := r.Shard(1).Eng
			fn = eng.Stop
		}
		r.Shard(1).Eng.At(35, fn)
		return r
	}

	plain := build(false)
	if st := plain.Run(); st != Quiescent {
		t.Fatalf("uninterrupted Run = %v, want %v", st, Quiescent)
	}

	r := build(true)
	if st := r.Run(); st != Stopped {
		t.Fatalf("Run = %v, want %v", st, Stopped)
	}
	// Sticky: running again without clearing must not lose the Stop.
	if st := r.Run(); st != Stopped {
		t.Fatalf("re-Run while stopped = %v, want %v", st, Stopped)
	}
	r.ClearStop()
	if st := r.Run(); st != Quiescent {
		t.Fatalf("resumed Run = %v, want %v", st, Quiescent)
	}
	if r.Fingerprint() != plain.Fingerprint() {
		t.Fatalf("stop/resume fingerprint %016x differs from uninterrupted %016x",
			r.Fingerprint(), plain.Fingerprint())
	}
	if r.Events() != plain.Events() {
		t.Fatalf("stop/resume fired %d events, uninterrupted %d", r.Events(), plain.Events())
	}
}

// MaxQuanta is the livelock guard: hitting it stops every engine with
// the sticky flag, so a follow-up Run cannot silently spin again.
func TestRunnerMaxQuantaExhausts(t *testing.T) {
	r := NewRunner(2, 10, 1)
	a := r.Shard(0)
	remaining := 10
	var tick func()
	tick = func() {
		remaining--
		if remaining > 0 {
			a.Eng.After(20, tick)
		}
	}
	a.Eng.At(0, tick)

	r.MaxQuanta = 2
	if st := r.Run(); st != Exhausted {
		t.Fatalf("Run = %v, want %v", st, Exhausted)
	}
	if remaining != 8 {
		t.Fatalf("remaining = %d after 2 quanta, want 8", remaining)
	}
	if st := r.Run(); st != Stopped {
		t.Fatalf("Run after Exhausted = %v, want %v (sticky Stop)", st, Stopped)
	}
	r.ClearStop()
	r.MaxQuanta = 0
	if st := r.Run(); st != Quiescent {
		t.Fatalf("unbounded Run = %v, want %v", st, Quiescent)
	}
	if remaining != 0 {
		t.Fatalf("remaining = %d, want 0", remaining)
	}
}

func TestSendCausalityPanics(t *testing.T) {
	r := NewRunner(2, 10, 1)
	s := r.Shard(0)
	mustPanic(t, "sub-lookahead send", func() { s.Send(s.Eng.Now()+5, 1, func() {}) })
	mustPanic(t, "unknown destination", func() { s.Send(s.Eng.Now()+10, 7, func() {}) })
	mustPanic(t, "zero lookahead runner", func() { NewRunner(2, 0, 1) })
	mustPanic(t, "empty runner", func() { NewRunner(0, 10, 1) })
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{Quiescent: "quiescent", Stopped: "stopped", Exhausted: "exhausted", Status(9): "Status(9)"} {
		if st.String() != want {
			t.Fatalf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}
