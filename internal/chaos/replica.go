package chaos

import "spiderfs/internal/sweep"

// CampaignReplica returns a sweep body that runs one independent chaos
// campaign (E18) per replica: the base configuration with the replica's
// derived seed, so a sweep measures the availability distribution over
// many fault schedules rather than one point sample. Each campaign
// builds its own center and engine; replicas share nothing.
func CampaignReplica(base Config) sweep.Body {
	return func(r *sweep.Rep) error {
		cfg := base
		cfg.Seed = r.Seed
		rep := Run(cfg)

		r.Record("availability", rep.Availability)
		r.Record("ost_downtime_h", rep.OSTDowntime.Seconds()/3600)
		r.Record("disk_failures", float64(rep.DiskFailures))
		r.Record("oss_crashes", float64(rep.OSSCrashes))
		r.Record("routers_killed", float64(rep.RoutersKilled))
		r.Record("cascades", float64(rep.Cascades))
		r.Record("incidents", float64(rep.Incidents))
		r.Record("rpc_retries", float64(rep.RPCRetries))
		r.Record("probe_stalls", float64(rep.ProbeStalls))
		r.Record("mean_probe_mbps", rep.MeanProbeMBps)
		r.Record("min_probe_mbps", rep.MinProbeMBps)
		return nil
	}
}
