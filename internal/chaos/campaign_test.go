package chaos

import (
	"sync"
	"testing"

	"spiderfs/internal/sim"
)

const testSeed = 7

// The featured quick campaign is used by several tests; run it once.
var (
	quickOnce sync.Once
	quickRep  *Report
)

func featured(t *testing.T) *Report {
	t.Helper()
	quickOnce.Do(func() { quickRep = Run(QuickConfig(testSeed)) })
	return quickRep
}

// The campaign-level determinism contract: the same configuration,
// including the seed, produces a bit-identical report across runs.
func TestCampaignDeterministic(t *testing.T) {
	r1 := featured(t)
	r2 := Run(QuickConfig(testSeed))
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Fatalf("fingerprints differ: %x vs %x", r1.Fingerprint(), r2.Fingerprint())
	}
	if r1.DiskFailures != r2.DiskFailures || r1.Rebuilds != r2.Rebuilds ||
		r1.GroupsLost != r2.GroupsLost {
		t.Fatalf("failure counts differ: %d/%d/%d vs %d/%d/%d",
			r1.DiskFailures, r1.Rebuilds, r1.GroupsLost,
			r2.DiskFailures, r2.Rebuilds, r2.GroupsLost)
	}
	if r1.Availability != r2.Availability || r1.OSTDowntime != r2.OSTDowntime {
		t.Fatalf("availability differs: %v/%v vs %v/%v",
			r1.Availability, r1.OSTDowntime, r2.Availability, r2.OSTDowntime)
	}
}

// The event-granular determinism contract: two in-process runs of a
// congestion-heavy full-center campaign (dense probe pulses drive many
// same-instant flow completions through the shared fabric) must produce
// byte-identical engine event traces, not just matching aggregate
// fingerprints. This is the center-wide regression test for the ordered
// flow registries in netsim: scheduling any event from map iteration
// reorders the engine's FIFO tie-break seq and diverges the trace.
func TestCampaignEventTraceDeterministic(t *testing.T) {
	cfg := QuickConfig(testSeed)
	cfg.TraceEvents = true
	// Congestion-heavy: probe every 15 minutes so striped writes from
	// every namespace overlap in the fabric for most of the window.
	cfg.ProbeInterval = 15 * sim.Minute
	r1 := Run(cfg)
	r2 := Run(cfg)
	if r1.TraceEvents == 0 {
		t.Fatal("trace observed no events")
	}
	if r1.TraceEvents != r2.TraceEvents {
		t.Fatalf("event counts differ: %d vs %d", r1.TraceEvents, r2.TraceEvents)
	}
	if r1.EventTrace != r2.EventTrace {
		t.Fatalf("event traces differ: %x vs %x", r1.EventTrace, r2.EventTrace)
	}
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Fatalf("fingerprints differ: %x vs %x", r1.Fingerprint(), r2.Fingerprint())
	}
}

// One quick campaign must deliver the entire fault menu without a
// panic, and the report must show the center absorbing it.
func TestCampaignDeliversFullFaultMenu(t *testing.T) {
	r := featured(t)
	if r.DiskFailures == 0 || r.Rebuilds == 0 {
		t.Fatalf("no disk failure activity: %d failures, %d rebuilds", r.DiskFailures, r.Rebuilds)
	}
	if r.OSSCrashes == 0 {
		t.Fatal("no OSS crashes delivered")
	}
	if r.RouterBursts == 0 || r.RoutersKilled == 0 {
		t.Fatalf("no router bursts: %d/%d", r.RouterBursts, r.RoutersKilled)
	}
	if r.CableDegradations == 0 {
		t.Fatal("no cable degradations delivered")
	}
	if r.MDSOutages != 1 {
		t.Fatalf("MDS outages = %d, want the scripted 1", r.MDSOutages)
	}
	if r.Cascades == 0 {
		t.Fatal("no cascade propagation recorded")
	}
	if r.Incidents == 0 {
		t.Fatal("no incidents coalesced from the event stream")
	}
	if r.Probes == 0 {
		t.Fatal("no probes completed")
	}
	if r.UnavailableProbes == 0 {
		t.Fatal("the MDS outage should catch at least one probe pulse")
	}
	if !(r.Availability > 0.9 && r.Availability < 1) {
		t.Fatalf("availability = %v, want in (0.9, 1)", r.Availability)
	}
	if r.OSTDowntime == 0 {
		t.Fatal("outage ledger recorded no OST downtime")
	}
}

// With ARN armed, senders never discover dead routers the hard way.
func TestFeaturedCampaignHasNoRouterStalls(t *testing.T) {
	r := featured(t)
	if r.StalledSends != 0 || r.StallTime != 0 {
		t.Fatalf("ARN run stalled %d sends (%v)", r.StalledSends, r.StallTime)
	}
}

// The headline experiment: disarming imperative recovery and ARN, with
// an identical fault schedule (same seed), must visibly grow the outage
// ledger — longer OST downtime, lower availability, and real router
// stalls — while the featured run shrinks all three.
func TestAblationGrowsOutageLedger(t *testing.T) {
	feat := featured(t)
	abl := Run(QuickConfig(testSeed).Ablated())

	// Same fault schedule delivered: the processes draw from the same
	// named splits regardless of the feature flags.
	if feat.DiskFailures != abl.DiskFailures {
		t.Fatalf("disk schedules diverged: %d vs %d", feat.DiskFailures, abl.DiskFailures)
	}
	if feat.RouterBursts != abl.RouterBursts || feat.RoutersKilled != abl.RoutersKilled {
		t.Fatalf("router schedules diverged: %d/%d vs %d/%d",
			feat.RouterBursts, feat.RoutersKilled, abl.RouterBursts, abl.RoutersKilled)
	}
	if f, a := feat.OSSCrashes+feat.SkippedFaults, abl.OSSCrashes+abl.SkippedFaults; f != a {
		t.Fatalf("OSS crash schedules diverged: %d vs %d", f, a)
	}

	if abl.OSTDowntime <= feat.OSTDowntime {
		t.Fatalf("ablated OST downtime %v not larger than featured %v",
			abl.OSTDowntime, feat.OSTDowntime)
	}
	if abl.Availability >= feat.Availability {
		t.Fatalf("ablated availability %v not below featured %v",
			abl.Availability, feat.Availability)
	}
	if abl.StalledSends == 0 || abl.StallTime == 0 {
		t.Fatal("without ARN the router bursts should stall senders")
	}
	if abl.StallTime <= feat.StallTime {
		t.Fatalf("ablated stall time %v not larger than featured %v",
			abl.StallTime, feat.StallTime)
	}
	if feat.MeanProbeMBps <= abl.MeanProbeMBps {
		t.Fatalf("featured probe throughput %.1f MB/s not above ablated %.1f MB/s",
			feat.MeanProbeMBps, abl.MeanProbeMBps)
	}
}

func TestReportRendersAndRollsUp(t *testing.T) {
	r := featured(t)
	s := r.String()
	if len(s) == 0 {
		t.Fatal("empty report")
	}
	kinds := r.Kinds()
	if len(kinds) == 0 {
		t.Fatal("no kind rollup")
	}
	var osts, groups bool
	for _, k := range kinds {
		if k.Kind == KindOST {
			osts = true
			if k.Components != r.OSTs {
				t.Fatalf("OST rollup %d components, report says %d", k.Components, r.OSTs)
			}
			if k.Failures > 0 && (k.MTBF == 0 || k.MTTR == 0) {
				t.Fatalf("OST rollup with %d failures lacks MTBF/MTTR", k.Failures)
			}
		}
		if k.Kind == KindGroup {
			groups = true
		}
	}
	if !osts || !groups {
		t.Fatal("rollup missing OST or group rows")
	}
	if len(r.Timeline) == 0 {
		t.Fatal("no timeline entries recorded")
	}
}
