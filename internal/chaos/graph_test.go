package chaos

import (
	"testing"

	"spiderfs/internal/monitor"
	"spiderfs/internal/sim"
)

// buildTestGraph wires a miniature center slice:
//
//	mds            oss0          grp0  grp1
//	  \             |  \          |     |
//	   ns           |   +-- ost0 -+     |
//	    \           +------- ost1 ------+
//	     (ost0, ost1 also depend on mds)
func buildTestGraph(eng *sim.Engine, led *Ledger) *Graph {
	g := NewGraph(eng, led)
	g.Add("mds", KindMDS)
	g.Add("ns", KindNamespace, "mds")
	g.Add("oss0", KindOSS)
	g.Add("grp0", KindGroup)
	g.Add("grp1", KindGroup)
	g.Add("ost0", KindOST, "grp0", "oss0", "mds")
	g.Add("ost1", KindOST, "grp1", "oss0", "mds")
	return g
}

func TestGraphCascadeDownAndUp(t *testing.T) {
	eng := sim.NewEngine()
	g := buildTestGraph(eng, nil)
	var events []monitor.Event
	g.Events = func(ev monitor.Event) { events = append(events, ev) }

	g.Fail("oss0")
	if !g.Down("oss0") || !g.Down("ost0") || !g.Down("ost1") {
		t.Fatal("OSS failure must take both served OSTs down")
	}
	if g.Down("grp0") || g.Down("ns") || g.Down("mds") {
		t.Fatal("fault leaked to components that do not depend on the OSS")
	}
	if g.Cascades != 2 || len(events) != 2 {
		t.Fatalf("cascades = %d, events = %d, want 2/2", g.Cascades, len(events))
	}
	if events[0].Component != "ost0" || events[1].Component != "ost1" {
		t.Fatalf("cascade order %v, want insertion order ost0, ost1", events)
	}
	g.Recover("oss0")
	if g.Down("oss0") || g.Down("ost0") || g.Down("ost1") {
		t.Fatal("recovery must clear the cascade")
	}
}

// Overlapping faults: an OST with both its group lost and its OSS down
// stays down until BOTH causes clear — the cause-set semantics.
func TestGraphOverlappingCauses(t *testing.T) {
	eng := sim.NewEngine()
	g := buildTestGraph(eng, nil)
	g.Fail("grp0")
	g.Fail("oss0")
	g.Recover("oss0")
	if !g.Down("ost0") {
		t.Fatal("ost0 lost its group; OSS recovery alone must not revive it")
	}
	if g.Down("ost1") {
		t.Fatal("ost1 has no remaining cause")
	}
	g.Recover("grp0")
	if g.Down("ost0") {
		t.Fatal("both causes cleared; ost0 must be up")
	}
}

// A diamond (ns and ost both reach mds; mds failure reaches ost both
// directly and through nothing else) must count one downtime interval,
// not one per path, and double-Fail must be idempotent.
func TestGraphDiamondAndIdempotence(t *testing.T) {
	eng := sim.NewEngine()
	led := NewLedger(eng)
	g := buildTestGraph(eng, led)

	g.Fail("mds")
	g.Fail("mds") // idempotent
	if !g.Down("ns") || !g.Down("ost0") || !g.Down("ost1") {
		t.Fatal("MDS outage must take namespace and OSTs down")
	}
	eng.RunFor(10 * sim.Minute)
	g.Recover("mds")
	for _, s := range led.Stats() {
		switch s.Name {
		case "mds", "ns", "ost0", "ost1":
			if s.Failures != 1 {
				t.Fatalf("%s failures = %d, want exactly 1", s.Name, s.Failures)
			}
			if s.Downtime != 10*sim.Minute {
				t.Fatalf("%s downtime = %v, want 10min", s.Name, s.Downtime)
			}
		default:
			if s.Failures != 0 || s.Downtime != 0 {
				t.Fatalf("%s should be untouched, got %+v", s.Name, s)
			}
		}
	}
}

func TestGraphDownCount(t *testing.T) {
	eng := sim.NewEngine()
	g := buildTestGraph(eng, nil)
	g.Fail("oss0")
	if n := g.DownCount(KindOST); n != 2 {
		t.Fatalf("down OSTs = %d, want 2", n)
	}
	if n := g.DownCount(KindGroup); n != 0 {
		t.Fatalf("down groups = %d, want 0", n)
	}
}

func TestLedgerAccrualAndClose(t *testing.T) {
	eng := sim.NewEngine()
	led := NewLedger(eng)
	g := NewGraph(eng, led)
	g.Add("oss", KindOSS)

	g.Fail("oss")
	eng.RunFor(sim.Minute)
	g.Recover("oss")
	eng.RunFor(sim.Minute)
	g.Fail("oss")
	eng.RunFor(30 * sim.Second)
	led.Close() // open outage settles at the close point

	s := led.Stats()[0]
	if s.Failures != 2 {
		t.Fatalf("failures = %d", s.Failures)
	}
	if s.Downtime != sim.Minute+30*sim.Second {
		t.Fatalf("downtime = %v, want 1.5min", s.Downtime)
	}
	window := eng.Now()
	if s.MTBF(window) != window/2 {
		t.Fatalf("MTBF = %v, want window/2", s.MTBF(window))
	}
	if s.MTTR() != 45*sim.Second {
		t.Fatalf("MTTR = %v, want 45s", s.MTTR())
	}
	// Close is idempotent-ish: closing again immediately adds nothing.
	led.Close()
	if got := led.Stats()[0].Downtime; got != s.Downtime {
		t.Fatalf("second Close changed downtime: %v -> %v", s.Downtime, got)
	}
}

func TestLedgerKindDowntime(t *testing.T) {
	eng := sim.NewEngine()
	led := NewLedger(eng)
	g := NewGraph(eng, led)
	g.Add("ost0", KindOST)
	g.Add("ost1", KindOST)
	g.Fail("ost0")
	eng.RunFor(sim.Minute)
	g.Recover("ost0")
	n, fails, down := led.KindDowntime(KindOST)
	if n != 2 || fails != 1 || down != sim.Minute {
		t.Fatalf("kind rollup = (%d, %d, %v)", n, fails, down)
	}
}
