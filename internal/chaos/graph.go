// Package chaos is the center-wide chaos campaign engine: a
// failure-domain graph over the assembled facility (disks, RAID groups,
// OSTs, OSSes, metadata servers, cables, LNET routers), a declarative
// campaign specification composing scripted and stochastic fault
// processes, and the availability accounting — per-component
// downtime/MTBF/MTTR ledgers rolled up into a center-availability and
// degraded-throughput report. The campaign replays, at once, the whole
// fault menu of §IV: correlated enclosure losses during rebuild, OSS
// crashes with or without imperative recovery, LNET router death bursts
// with or without asymmetric router notification, in-place cable
// degradation, and metadata-server outages.
package chaos

import (
	"fmt"

	"spiderfs/internal/monitor"
	"spiderfs/internal/sim"
)

// Kind classifies a failure-domain node.
type Kind int

// Node kinds, ordered roughly bottom-up through the I/O path.
const (
	KindGroup Kind = iota // RAID-6 group (one LUN)
	KindOST
	KindOSS
	KindMDS
	KindNamespace
	KindCable // IB cable feeding a router
	KindRouter
)

func (k Kind) String() string {
	switch k {
	case KindGroup:
		return "raid-group"
	case KindOST:
		return "ost"
	case KindOSS:
		return "oss"
	case KindMDS:
		return "mds"
	case KindNamespace:
		return "namespace"
	case KindCable:
		return "cable"
	case KindRouter:
		return "router"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is one component in the failure-domain graph. A node is down
// while it has at least one active root cause: itself (a direct fault)
// or any failed node it transitively depends on. Tracking the full
// cause set, rather than a boolean, makes overlapping faults compose
// correctly — an OST whose OSS crashed while its RAID group was lost
// stays down until both causes clear — and handles diamond-shaped
// dependency patterns without double counting.
type Node struct {
	Name string
	Kind Kind

	dependents []*Node // nodes that depend on this one, insertion order
	causes     map[string]bool
}

// Down reports whether the node is currently unavailable.
func (n *Node) Down() bool { return len(n.causes) > 0 }

// Graph is the failure-domain graph for one simulated center.
type Graph struct {
	eng    *sim.Engine
	nodes  map[string]*Node
	order  []*Node
	ledger *Ledger

	// Events, when set, receives one cascade event for every node taken
	// down by a fault in a component it depends on (the injected fault
	// itself is the injector's event to report).
	Events func(monitor.Event)

	// Cascades counts dependent nodes taken down by propagation.
	Cascades int
}

// NewGraph builds an empty graph. The ledger (may be nil) receives
// down/up transitions for every node.
func NewGraph(eng *sim.Engine, ledger *Ledger) *Graph {
	return &Graph{eng: eng, nodes: map[string]*Node{}, ledger: ledger}
}

// Add registers a node depending on the named, previously added nodes.
// Dependencies must form a DAG (enforced by the add-before-use order).
func (g *Graph) Add(name string, kind Kind, deps ...string) *Node {
	if _, dup := g.nodes[name]; dup {
		panic(fmt.Sprintf("chaos: duplicate node %q", name)) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	n := &Node{Name: name, Kind: kind, causes: map[string]bool{}}
	for _, d := range deps {
		dn := g.nodes[d]
		if dn == nil {
			panic(fmt.Sprintf("chaos: node %q depends on unknown %q", name, d)) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
		}
		dn.dependents = append(dn.dependents, n)
	}
	g.nodes[name] = n
	g.order = append(g.order, n)
	if g.ledger != nil {
		g.ledger.register(name, kind)
	}
	return n
}

// Node returns the named node, or nil.
func (g *Graph) Node(name string) *Node { return g.nodes[name] }

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node { return append([]*Node(nil), g.order...) }

// Down reports whether the named node is currently unavailable. Unknown
// names are up (the graph only tracks components with failure modes).
func (g *Graph) Down(name string) bool {
	n := g.nodes[name]
	return n != nil && n.Down()
}

// Fail injects a direct fault into the named node. The fault cascades:
// every transitive dependent gains this node as an active root cause
// and, if it was up, goes down — surfaced through the ledger and as a
// cascade event. Failing an already-failed node is a no-op.
func (g *Graph) Fail(name string) {
	n := g.nodes[name]
	if n == nil {
		panic(fmt.Sprintf("chaos: Fail unknown node %q", name)) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	g.addCause(n, name, true)
}

// Recover clears the named node's direct fault. Dependents lose this
// root cause and come back up once their cause sets empty.
func (g *Graph) Recover(name string) {
	n := g.nodes[name]
	if n == nil {
		panic(fmt.Sprintf("chaos: Recover unknown node %q", name)) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	g.removeCause(n, name)
}

func (g *Graph) addCause(n *Node, cause string, root bool) {
	if n.causes[cause] {
		// Already reached through another dependency path (diamond): the
		// entire downstream of n carries this cause already.
		return
	}
	wasDown := n.Down()
	n.causes[cause] = true
	if !wasDown {
		if g.ledger != nil {
			g.ledger.down(n.Name)
		}
		if !root {
			g.Cascades++
			if g.Events != nil {
				g.Events(monitor.Event{
					At: g.eng.Now(), Component: n.Name,
					Class: monitor.Software, Kind: "cascade-offline",
				})
			}
		}
	}
	for _, d := range n.dependents {
		g.addCause(d, cause, false)
	}
}

func (g *Graph) removeCause(n *Node, cause string) {
	if !n.causes[cause] {
		return
	}
	delete(n.causes, cause)
	if !n.Down() && g.ledger != nil {
		g.ledger.up(n.Name)
	}
	for _, d := range n.dependents {
		g.removeCause(d, cause)
	}
}

// DownCount returns how many nodes of the given kind are currently down.
func (g *Graph) DownCount(kind Kind) int {
	c := 0
	for _, n := range g.order {
		if n.Kind == kind && n.Down() {
			c++
		}
	}
	return c
}
