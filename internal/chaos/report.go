package chaos

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"spiderfs/internal/ledger"
	"spiderfs/internal/sim"
)

// maxTimeline caps the narrative fault log carried in a report.
const maxTimeline = 40

// Report is the outcome of one campaign: fault counts, resilience
// counters, the per-component availability ledger, and the delivered
// (possibly degraded) probe throughput.
type Report struct {
	Seed            uint64
	Window          sim.Time
	Imperative, ARN bool

	// Fault menu delivered.
	DiskFailures          int
	Rebuilds              int
	GroupsLost            int
	OSSCrashes            int
	SkippedFaults         int
	RouterBursts          int
	RoutersKilled         int
	CableCuts             int
	CableDegradations     int
	MDSOutages            int
	EnclosureGroupsFailed int
	Cascades              int

	// Resilience counters (the error paths that used to be panics).
	DroppedFlows    uint64
	StalledSends    uint64
	StallTime       sim.Time
	RPCTimeouts     uint64
	RPCRetries      uint64
	BackoffWaits    uint64
	BackoffWait     sim.Time
	GroupIOErrors   uint64
	OSSDoubleFaults uint64

	// Data-integrity plane: what the scrubber and read-time verification
	// found, fixed, and could not fix. LatentDataLoss counts stripes
	// whose defects exceeded parity — escalated to the ledger as
	// data-loss events, never panicked.
	CorruptionStorms       int
	ScrubPasses            int
	ScrubbedStripes        int64
	ScrubRepairs           uint64
	RepairedChunks         uint64
	UREsDetected           uint64
	ChecksumMismatches     uint64
	UndetectedCorruptReads uint64
	RebuildLatentHits      uint64
	ScrubRebuildOverlaps   int
	LatentDataLoss         int64
	LostStripeReads        uint64
	ReadEIOs               uint64

	// Monitoring view.
	Incidents         int
	HardwareIncidents int

	// Availability accounting.
	OSTs         int
	OSTDowntime  sim.Time
	Availability float64

	// Degraded-throughput probes.
	ProbesLaunched    int
	Probes            int // completed within the window
	ProbeStalls       int
	UnavailableProbes int
	MeanProbeMBps     float64
	MinProbeMBps      float64

	// Operations ledger (internal/ledger): every monitor event, operator
	// repair action, and scrub escalation, hash-chained and anchored
	// under per-epoch Merkle roots. The root sequence and head extend
	// the campaign fingerprint, so determinism regressions surface as
	// root divergence. LedgerDrops counts appends the ledger refused
	// (always zero in a healthy run). Ops carries the full export for
	// auditing and incident replay.
	LedgerEntries int
	LedgerAnchors int
	LedgerDrops   int
	LedgerRoots   []string
	LedgerHead    string
	Ops           *ledger.Export

	// Event-trace audit (populated when Config.TraceEvents is set):
	// a fingerprint over every fired engine event's (time, seq) pair
	// and the number of events observed. Two runs of the same
	// configuration must agree on both — the event-granular form of the
	// determinism contract, which catches scheduling-order divergence
	// even when the aggregate counters happen to collide.
	EventTrace  uint64
	TraceEvents uint64

	Components []ComponentStats
	Timeline   []string

	probeSamples []float64
}

// KindSummary is a per-kind rollup of the component ledger.
type KindSummary struct {
	Kind       Kind
	Components int
	Failures   int
	Downtime   sim.Time
	MTBF       sim.Time // per component of this kind, mean
	MTTR       sim.Time
}

// Kinds rolls the component ledger up by kind, in kind order.
func (r *Report) Kinds() []KindSummary {
	var out []KindSummary
	for k := KindGroup; k <= KindRouter; k++ {
		s := KindSummary{Kind: k}
		for _, c := range r.Components {
			if c.Kind != k {
				continue
			}
			s.Components++
			s.Failures += c.Failures
			s.Downtime += c.Downtime
		}
		if s.Components == 0 {
			continue
		}
		if s.Failures > 0 {
			// Fleet MTBF: observed window x components / failures.
			s.MTBF = sim.Time(float64(r.Window) * float64(s.Components) / float64(s.Failures))
			s.MTTR = s.Downtime / sim.Time(s.Failures)
		}
		out = append(out, s)
	}
	return out
}

// Fingerprint hashes every deterministic quantity in the report.
// Two runs of the same configuration must produce equal fingerprints —
// the campaign-level determinism contract.
func (r *Report) Fingerprint() uint64 {
	h := fnv.New64a()
	u := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	i := func(v int) { u(uint64(int64(v))) }
	t := func(v sim.Time) { u(uint64(v)) }
	f := func(v float64) { u(math.Float64bits(v)) }

	u(r.Seed)
	t(r.Window)
	i(r.DiskFailures)
	i(r.Rebuilds)
	i(r.GroupsLost)
	i(r.OSSCrashes)
	i(r.SkippedFaults)
	i(r.RouterBursts)
	i(r.RoutersKilled)
	i(r.CableCuts)
	i(r.CableDegradations)
	i(r.MDSOutages)
	i(r.EnclosureGroupsFailed)
	i(r.Cascades)
	u(r.DroppedFlows)
	u(r.StalledSends)
	t(r.StallTime)
	u(r.RPCTimeouts)
	u(r.RPCRetries)
	u(r.BackoffWaits)
	t(r.BackoffWait)
	u(r.GroupIOErrors)
	u(r.OSSDoubleFaults)
	i(r.CorruptionStorms)
	i(r.ScrubPasses)
	i(int(r.ScrubbedStripes))
	u(r.ScrubRepairs)
	u(r.RepairedChunks)
	u(r.UREsDetected)
	u(r.ChecksumMismatches)
	u(r.UndetectedCorruptReads)
	u(r.RebuildLatentHits)
	i(r.ScrubRebuildOverlaps)
	i(int(r.LatentDataLoss))
	u(r.LostStripeReads)
	u(r.ReadEIOs)
	i(r.Incidents)
	i(r.HardwareIncidents)
	i(r.OSTs)
	t(r.OSTDowntime)
	f(r.Availability)
	i(r.ProbesLaunched)
	i(r.Probes)
	i(r.UnavailableProbes)
	f(r.MeanProbeMBps)
	f(r.MinProbeMBps)
	i(r.LedgerEntries)
	i(r.LedgerAnchors)
	i(r.LedgerDrops)
	for _, root := range r.LedgerRoots {
		h.Write([]byte(root))
	}
	h.Write([]byte(r.LedgerHead))
	u(r.EventTrace)
	u(r.TraceEvents)
	for _, c := range r.Components {
		h.Write([]byte(c.Name))
		i(c.Failures)
		t(c.Downtime)
	}
	for _, s := range r.probeSamples {
		f(s)
	}
	return h.Sum64()
}

// String renders the operator-facing campaign report.
func (r *Report) String() string {
	var b strings.Builder
	feat := func(on bool) string {
		if on {
			return "on"
		}
		return "off"
	}
	fmt.Fprintf(&b, "chaos campaign: %v window, seed %d (imperative recovery %s, ARN %s)\n",
		r.Window, r.Seed, feat(r.Imperative), feat(r.ARN))
	fmt.Fprintf(&b, "faults delivered:\n")
	fmt.Fprintf(&b, "  disk failures %d (rebuilds %d, groups lost %d)\n",
		r.DiskFailures, r.Rebuilds, r.GroupsLost)
	fmt.Fprintf(&b, "  oss crashes %d (skipped double-faults %d)\n", r.OSSCrashes, r.SkippedFaults)
	fmt.Fprintf(&b, "  router bursts %d: %d routers killed, %d by cable cut\n",
		r.RouterBursts, r.RoutersKilled, r.CableCuts)
	fmt.Fprintf(&b, "  cable degradations %d, mds outages %d, enclosure-loss groups failed %d\n",
		r.CableDegradations, r.MDSOutages, r.EnclosureGroupsFailed)
	fmt.Fprintf(&b, "cascade propagation: %d dependent components taken down\n", r.Cascades)
	fmt.Fprintf(&b, "error paths exercised: %d dropped flows, %d stalled sends (%v stalled), "+
		"%d rpc timeouts (%d backed off, %v extra wait), %d group EIOs\n",
		r.DroppedFlows, r.StalledSends, r.StallTime, r.RPCTimeouts,
		r.BackoffWaits, r.BackoffWait, r.GroupIOErrors)
	fmt.Fprintf(&b, "integrity: %d scrub passes over %d stripes, %d repairs (%d by scrub), "+
		"%d UREs, %d checksum mismatches\n",
		r.ScrubPasses, r.ScrubbedStripes, r.RepairedChunks, r.ScrubRepairs,
		r.UREsDetected, r.ChecksumMismatches)
	fmt.Fprintf(&b, "data loss: %d stripes beyond parity (latent), %d undetected corrupt reads, "+
		"%d rebuild latent hits, %d EIO reads\n",
		r.LatentDataLoss, r.UndetectedCorruptReads, r.RebuildLatentHits, r.ReadEIOs)
	fmt.Fprintf(&b, "monitoring: %d incidents coalesced (%d hardware-rooted)\n",
		r.Incidents, r.HardwareIncidents)
	fmt.Fprintf(&b, "operations ledger: %d entries in %d anchored batches (%d refused), head %.16s..\n",
		r.LedgerEntries, r.LedgerAnchors, r.LedgerDrops, r.LedgerHead)
	fmt.Fprintf(&b, "availability: %.5f (%v of OST downtime across %d OSTs)\n",
		r.Availability, r.OSTDowntime, r.OSTs)
	fmt.Fprintf(&b, "probes: %d completed of %d (stalled %d, namespace-unavailable %d); "+
		"throughput mean %.1f MB/s, worst %.1f MB/s\n",
		r.Probes, r.ProbesLaunched, r.ProbeStalls, r.UnavailableProbes,
		r.MeanProbeMBps, r.MinProbeMBps)
	fmt.Fprintf(&b, "component ledger (by kind):\n")
	fmt.Fprintf(&b, "  %-10s %10s %9s %14s %14s %14s\n",
		"kind", "components", "failures", "downtime", "MTBF", "MTTR")
	for _, k := range r.Kinds() {
		mtbf, mttr := "-", "-"
		if k.Failures > 0 {
			mtbf, mttr = k.MTBF.String(), k.MTTR.String()
		}
		fmt.Fprintf(&b, "  %-10s %10d %9d %14v %14s %14s\n",
			k.Kind, k.Components, k.Failures, k.Downtime, mtbf, mttr)
	}
	return b.String()
}
