package chaos

import (
	"fmt"
	"strings"
	"testing"
)

// The quick campaign arms the whole integrity plane; the featured run
// must show it working: scrub passes covering the fleet, real repairs,
// UREs and mismatches detected, and no corruption served to probes.
func TestCampaignIntegrityPlaneActive(t *testing.T) {
	r := featured(t)
	if r.CorruptionStorms != 1 {
		t.Fatalf("corruption storms = %d, want the scripted 1", r.CorruptionStorms)
	}
	if r.ScrubPasses == 0 || r.ScrubbedStripes == 0 {
		t.Fatalf("scrubber idle: %d passes over %d stripes", r.ScrubPasses, r.ScrubbedStripes)
	}
	if r.ScrubRepairs == 0 || r.ChecksumMismatches == 0 || r.UREsDetected == 0 {
		t.Fatalf("no integrity findings: repairs=%d mismatches=%d UREs=%d",
			r.ScrubRepairs, r.ChecksumMismatches, r.UREsDetected)
	}
	if r.RebuildLatentHits == 0 {
		t.Fatal("no latent errors crossed a rebuild window; the quick campaign should exercise it")
	}
	if r.UndetectedCorruptReads != 0 {
		t.Fatalf("%d undetected corrupt reads with the scrubber on", r.UndetectedCorruptReads)
	}
}

// Satellite: scrub-escalated stripes surface in the availability report
// as data-loss accounting, and the campaign fingerprint stays
// bit-identical across runs with the scrubber and a dense storm on.
func TestScrubEscalatedDataLossInReport(t *testing.T) {
	cfg := QuickConfig(11)
	// Dense enough that some stripes exceed parity during rebuild
	// windows: real latent data loss, counted rather than panicked.
	cfg.CorruptionStormErrors = 30000
	r1 := Run(cfg)
	if r1.LatentDataLoss == 0 {
		t.Fatal("dense storm escalated no stripes beyond parity")
	}
	if r1.ScrubRepairs == 0 {
		t.Fatal("scrubber repaired nothing under the dense storm")
	}
	s := r1.String()
	want := fmt.Sprintf("data loss: %d stripes beyond parity", r1.LatentDataLoss)
	if !strings.Contains(s, want) {
		t.Fatalf("availability report missing %q:\n%s", want, s)
	}
	r2 := Run(cfg)
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Fatalf("fingerprints with scrubber + storm diverged: %x vs %x",
			r1.Fingerprint(), r2.Fingerprint())
	}
	if r2.LatentDataLoss != r1.LatentDataLoss || r2.RebuildLatentHits != r1.RebuildLatentHits {
		t.Fatalf("data-loss accounting diverged: %d/%d vs %d/%d",
			r1.LatentDataLoss, r1.RebuildLatentHits, r2.LatentDataLoss, r2.RebuildLatentHits)
	}
}

// Disabling the scrubber on an otherwise identical configuration must
// not shift any fault schedule (the scrubber draws no randomness) and
// must leave the storm's corruption in place for rebuilds to trip over.
func TestScrubberAblationKeepsFaultSchedule(t *testing.T) {
	on := featured(t)
	cfg := QuickConfig(testSeed)
	cfg.ScrubInterval = 0
	off := Run(cfg)
	if on.DiskFailures != off.DiskFailures || on.RoutersKilled != off.RoutersKilled ||
		on.OSSCrashes+on.SkippedFaults != off.OSSCrashes+off.SkippedFaults {
		t.Fatalf("fault schedules diverged with scrubber off: disks %d/%d routers %d/%d",
			on.DiskFailures, off.DiskFailures, on.RoutersKilled, off.RoutersKilled)
	}
	if off.ScrubPasses != 0 || off.ScrubRepairs != 0 {
		t.Fatalf("scrub-off run scrubbed: %d passes, %d repairs", off.ScrubPasses, off.ScrubRepairs)
	}
	if off.ChecksumMismatches >= on.ChecksumMismatches {
		t.Fatalf("without scrub reads found more mismatches (%d) than scrubbed runs (%d)?",
			off.ChecksumMismatches, on.ChecksumMismatches)
	}
}
