package chaos

import (
	"fmt"

	"spiderfs/internal/sim"
)

// ComponentStats is one component's availability record over a campaign
// window: how often it failed and how long it was out of service.
type ComponentStats struct {
	Name     string
	Kind     Kind
	Failures int
	Downtime sim.Time

	down      bool
	downSince sim.Time
}

// MTBF is the mean time between failures over the observation window
// (zero when the component never failed).
func (s ComponentStats) MTBF(window sim.Time) sim.Time {
	if s.Failures == 0 {
		return 0
	}
	return window / sim.Time(s.Failures)
}

// MTTR is the mean time to repair across the component's failures.
func (s ComponentStats) MTTR() sim.Time {
	if s.Failures == 0 {
		return 0
	}
	return s.Downtime / sim.Time(s.Failures)
}

// Ledger accrues per-component downtime during a campaign. The graph
// feeds it down/up transitions; Close settles components still down at
// the end of the window so their open outage is charged.
type Ledger struct {
	eng    *sim.Engine
	order  []*ComponentStats
	byName map[string]*ComponentStats
}

// NewLedger builds an empty ledger on eng.
func NewLedger(eng *sim.Engine) *Ledger {
	return &Ledger{eng: eng, byName: map[string]*ComponentStats{}}
}

func (l *Ledger) register(name string, kind Kind) {
	if _, dup := l.byName[name]; dup {
		panic(fmt.Sprintf("chaos: ledger already tracks %q", name)) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	s := &ComponentStats{Name: name, Kind: kind}
	l.byName[name] = s
	l.order = append(l.order, s)
}

func (l *Ledger) down(name string) {
	s := l.byName[name]
	if s == nil || s.down {
		return
	}
	s.down = true
	s.downSince = l.eng.Now()
	s.Failures++
}

func (l *Ledger) up(name string) {
	s := l.byName[name]
	if s == nil || !s.down {
		return
	}
	s.down = false
	s.Downtime += l.eng.Now() - s.downSince
}

// Close settles open outages at the current time (end of the campaign
// window). Components still down remain marked down; calling Close
// again later accrues only the additional time.
func (l *Ledger) Close() {
	now := l.eng.Now()
	for _, s := range l.order {
		if s.down {
			s.Downtime += now - s.downSince
			s.downSince = now
		}
	}
}

// Stats returns a copy of every component's record, in registration
// order (deterministic).
func (l *Ledger) Stats() []ComponentStats {
	out := make([]ComponentStats, len(l.order))
	for i, s := range l.order {
		out[i] = *s
	}
	return out
}

// KindDowntime sums downtime and failures across components of a kind.
func (l *Ledger) KindDowntime(kind Kind) (components, failures int, downtime sim.Time) {
	for _, s := range l.order {
		if s.Kind != kind {
			continue
		}
		components++
		failures += s.Failures
		downtime += s.Downtime
	}
	return
}
