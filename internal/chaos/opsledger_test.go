package chaos

import (
	"encoding/json"
	"strings"
	"testing"

	"spiderfs/internal/ledger"
	"spiderfs/internal/rng"
	"spiderfs/internal/spantrace"
)

// The operations-ledger determinism contract: the same configuration
// produces byte-identical root sequences and head, the export audits
// clean, and attaching the span tracer (an observer) leaves every root
// untouched.
func TestCampaignLedgerDeterministic(t *testing.T) {
	r1 := featured(t)
	r2 := Run(QuickConfig(testSeed))

	if r1.LedgerEntries == 0 || r1.LedgerAnchors == 0 {
		t.Fatalf("quick campaign appended %d entries in %d anchors, want both positive",
			r1.LedgerEntries, r1.LedgerAnchors)
	}
	if r1.LedgerDrops != 0 {
		t.Fatalf("ledger refused %d appends in a healthy run", r1.LedgerDrops)
	}
	if len(r1.LedgerRoots) != r1.LedgerAnchors {
		t.Fatalf("%d roots for %d anchors", len(r1.LedgerRoots), r1.LedgerAnchors)
	}

	if r1.LedgerHead != r2.LedgerHead {
		t.Fatalf("heads differ: %s vs %s", r1.LedgerHead, r2.LedgerHead)
	}
	if len(r1.LedgerRoots) != len(r2.LedgerRoots) {
		t.Fatalf("root counts differ: %d vs %d", len(r1.LedgerRoots), len(r2.LedgerRoots))
	}
	for i := range r1.LedgerRoots {
		if r1.LedgerRoots[i] != r2.LedgerRoots[i] {
			t.Fatalf("root %d diverged: %s vs %s", i, r1.LedgerRoots[i], r2.LedgerRoots[i])
		}
	}
	b1, err1 := json.Marshal(r1.Ops)
	b2, err2 := json.Marshal(r2.Ops)
	if err1 != nil || err2 != nil {
		t.Fatalf("export marshal: %v / %v", err1, err2)
	}
	if string(b1) != string(b2) {
		t.Fatal("ledger exports are not byte-identical across runs")
	}

	// The tracer is an observer: arming it must not shift a single root.
	cfg := QuickConfig(testSeed)
	cfg.Tracer = spantrace.New(rng.New(99), 4)
	r3 := Run(cfg)
	if r3.LedgerHead != r1.LedgerHead {
		t.Fatalf("traced head %s diverged from untraced %s", r3.LedgerHead, r1.LedgerHead)
	}
	for i := range r1.LedgerRoots {
		if r3.LedgerRoots[i] != r1.LedgerRoots[i] {
			t.Fatalf("traced root %d diverged", i)
		}
	}
}

// The campaign export must audit clean, chain every monitor event and
// operator action, and carry the kinds the fault menu delivers.
func TestCampaignLedgerAuditsCleanAndComplete(t *testing.T) {
	r := featured(t)
	if fs := ledger.Audit(r.Ops); len(fs) != 0 {
		t.Fatalf("campaign ledger audit found %d findings: %v", len(fs), fs)
	}
	if r.Ops.Head != r.LedgerHead {
		t.Fatalf("export head %s vs report head %s", r.Ops.Head, r.LedgerHead)
	}
	if len(r.Ops.Entries) != r.LedgerEntries {
		t.Fatalf("export carries %d entries, report says %d", len(r.Ops.Entries), r.LedgerEntries)
	}
	// Every coalesced incident's underlying events funnel through the
	// ledger, plus the operator actions — so the ledger is at least as
	// busy as the incident stream.
	if r.LedgerEntries < r.Incidents {
		t.Fatalf("%d ledger entries for %d incidents", r.LedgerEntries, r.Incidents)
	}
	seen := map[string]bool{}
	actors := map[string]bool{}
	for _, e := range r.Ops.Entries {
		seen[e.Action] = true
		actors[e.Class] = true
	}
	for _, want := range []string{"oss-crash", "mds-outage", "mds-recovered", "router-repaired"} {
		if !seen[want] {
			keys := make([]string, 0, len(seen))
			for k := range seen {
				keys = append(keys, k)
			}
			t.Fatalf("ledger carries no %q action; saw %s", want, strings.Join(keys, ", "))
		}
	}
	if !actors["operator"] || !actors["hardware"] {
		t.Fatalf("ledger missing operator or hardware entry classes: %v", actors)
	}
}
