package chaos

import (
	"fmt"

	"spiderfs/internal/center"
	"spiderfs/internal/disk"
	"spiderfs/internal/failure"
	"spiderfs/internal/integrity"
	"spiderfs/internal/ledger"
	"spiderfs/internal/lustre"
	"spiderfs/internal/monitor"
	"spiderfs/internal/netsim"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/topology"
)

// Config declares a chaos campaign: which center to build, which
// resilience features are armed, and the composition of scripted and
// stochastic fault processes to drive against it. Every process draws
// from its own named split of the seed, so the fault schedule is
// identical between a featured and an ablated run of the same seed —
// the property the outage-ledger comparison relies on.
type Config struct {
	Seed     uint64
	Duration sim.Time

	// Center shape (see center.Config).
	Scale      int
	Namespaces int
	Small      bool

	// Resilience features under test. Ablated() clears both.
	Imperative bool // imperative recovery (§IV-D)
	ARN        bool // asymmetric router notification (§IV-D)

	// Stochastic disk failures with replace-and-rebuild.
	DiskAFR      float64
	ReplaceDelay sim.Time
	RebuildChunk int64
	RebuildPause sim.Time

	// OSS crash + failover process (Poisson, mean interval per center).
	OSSCrashInterval sim.Time

	// LNET router death bursts; CableCutFraction of the kills are
	// attributed to a cut IB cable (the fault cascades cable -> router
	// through the failure-domain graph).
	RouterBurstInterval sim.Time
	RouterBurstSize     int
	RouterRepair        sim.Time
	CableCutFraction    float64

	// In-place cable degradation (§IV-A): a router uplink drops to
	// DegradeFrac of nominal bandwidth until repaired.
	CableDegradeInterval sim.Time
	CableDegradeFrac     float64
	CableRepair          sim.Time

	// Data-integrity plane (§IV-E). MediaFaults arms rate-driven latent
	// media errors (drive-reported UREs and silent bit rot) on every
	// member disk; CorruptionStormAt sprays CorruptionStormErrors silent
	// sectors uniformly across the fleet (a firmware-bug-class event); a
	// positive ScrubInterval runs a background scrubber over every RAID
	// group with the rebuild-style batch/pause throttle. VerifyPolicy
	// selects when foreground reads verify stripe checksums.
	MediaFaults           disk.FaultConfig
	CorruptionStormAt     sim.Time
	CorruptionStormErrors int
	ScrubInterval         sim.Time
	ScrubBatch            int64
	ScrubPause            sim.Time
	VerifyPolicy          raid.VerifyPolicy

	// Scripted MDS outage against namespace 0 (zero At disables).
	MDSOutageAt       sim.Time
	MDSOutageDuration sim.Time

	// Scripted enclosure loss during rebuild against namespace 0's first
	// couplet (zero At disables): a disk is replaced and rebuilding when
	// an enclosure housing one member of every group drops — the §IV-E
	// compounding, survivable under the Spider II 10x1 layout.
	EnclosureLossAt sim.Time
	EnclosureRepair sim.Time

	// Probe pulses measure delivered write throughput through the full
	// client -> fabric -> OSS -> RAID path at a fixed cadence, so the
	// report can quantify degraded operation, not just downtime.
	ProbeInterval sim.Time
	ProbeBytes    int64

	// LedgerEpoch is the anchoring cadence of the operations ledger
	// (internal/ledger): every monitor event, operator repair action,
	// and scrub escalation is appended as a hash-chained entry, and the
	// accumulated batch is sealed under a Merkle root each time an entry
	// crosses into a new epoch. Zero means the ledger default (one
	// anchor per simulated hour). The ledger is an observer — it
	// schedules no events and draws no randomness — so arming or
	// re-cadencing it never perturbs the fault schedule, and its root
	// sequence extends the campaign fingerprint.
	LedgerEpoch sim.Time

	// TraceEvents arms the engine's event-trace audit: the report's
	// EventTrace/TraceEvents fields then fingerprint every fired event's
	// (time, seq) pair, so two runs can be compared at event granularity
	// rather than only through the aggregated report fingerprint.
	TraceEvents bool

	// Tracer, when set, is attached to the center and handed to the
	// probe clients, so sampled probe RPCs are recorded end to end by
	// the spantrace plane (retry storms, OSS stalls, reroutes, rebuild
	// interference). The tracer never perturbs the run: the
	// observer-effect tests compare EventTrace with and without it.
	Tracer *spantrace.Tracer
}

// DefaultConfig is the 7-day full-scale campaign over both namespaces
// with the funded resilience features armed.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:     seed,
		Duration: 7 * sim.Day,

		Scale:      1,
		Namespaces: 2,

		Imperative: true,
		ARN:        true,

		DiskAFR:      0.03,
		ReplaceDelay: 4 * sim.Hour,
		RebuildChunk: 1 << 16,
		RebuildPause: 10 * sim.Second,

		OSSCrashInterval: 12 * sim.Hour,

		MediaFaults:           disk.FaultConfig{UREPerGBRead: 0.0005, SilentPerGBWritten: 0.001},
		CorruptionStormAt:     4 * sim.Day,
		CorruptionStormErrors: 400,
		// Scrub quanta sized for 2 TB members (~15M stripes per group,
		// 2,016 groups): 8 GiB batches every 30 min walk a full device
		// in ~5 days — the realistic background-scrub duty cycle — while
		// keeping the campaign's event count bounded. The quick config
		// below re-tightens all three for its 2 GiB members.
		ScrubInterval: 12 * sim.Hour,
		ScrubBatch:    1 << 16,
		ScrubPause:    30 * sim.Minute,

		RouterBurstInterval: 24 * sim.Hour,
		RouterBurstSize:     3,
		RouterRepair:        2 * sim.Hour,
		CableCutFraction:    0.3,

		CableDegradeInterval: 12 * sim.Hour,
		CableDegradeFrac:     0.25,
		CableRepair:          6 * sim.Hour,

		MDSOutageAt:       3*sim.Day + 5*sim.Hour,
		MDSOutageDuration: 20 * sim.Minute,

		EnclosureLossAt: 2 * sim.Day,
		EnclosureRepair: 4 * sim.Hour,

		ProbeInterval: 2 * sim.Hour,
		ProbeBytes:    64 << 20,

		LedgerEpoch: sim.Hour,
	}
}

// QuickConfig is a one-day campaign over the small test center, dense
// enough that every fault process fires — examples and tests use it.
func QuickConfig(seed uint64) Config {
	c := DefaultConfig(seed)
	c.Duration = sim.Day
	c.Small = true
	// The small center has ~320 drives; the production AFR would deliver
	// roughly zero failures per simulated day, so run it absurdly hot (as
	// the operations example does) to see the whole menu in one day.
	c.DiskAFR = 8
	c.ReplaceDelay = 30 * sim.Minute
	c.OSSCrashInterval = 3 * sim.Hour
	c.RouterBurstInterval = 6 * sim.Hour
	// A quarter of the 64-router fleet per burst, so probe traffic
	// reliably lands on dead routers and the ARN ablation has teeth.
	c.RouterBurstSize = 16
	c.RouterRepair = 90 * sim.Minute
	c.CableDegradeInterval = 5 * sim.Hour
	c.CableRepair = 2 * sim.Hour
	c.MDSOutageAt = 14 * sim.Hour
	c.MDSOutageDuration = 10 * sim.Minute
	// Media wear hot enough that scrub passes find and repair real
	// defects within the single simulated day.
	c.MediaFaults = disk.FaultConfig{UREPerGBRead: 0.02, SilentPerGBWritten: 0.05}
	c.CorruptionStormAt = 8 * sim.Hour
	c.CorruptionStormErrors = 300
	c.ScrubInterval = 2 * sim.Hour
	c.ScrubBatch = 512
	c.ScrubPause = 500 * sim.Millisecond
	c.EnclosureLossAt = 5 * sim.Hour
	c.EnclosureRepair = 2 * sim.Hour
	c.ProbeInterval = sim.Hour
	c.ProbeBytes = 16 << 20
	// The small center's 2 GB disks still take a while to rebuild; keep
	// batches small so rebuilds interleave with probe traffic.
	c.RebuildChunk = 1 << 12
	c.RebuildPause = 5 * sim.Second
	return c
}

// Ablated returns the configuration with both funded resilience
// features disarmed — the baseline for the outage-ledger comparison.
func (c Config) Ablated() Config {
	c.Imperative = false
	c.ARN = false
	return c
}

// campaign is the run state.
type campaign struct {
	cfg    Config
	c      *center.Center
	eng    *sim.Engine
	graph  *Graph
	ledger *Ledger        // per-component downtime stats (MTBF/MTTR)
	ops    *ledger.Ledger // tamper-evident operations ledger
	coal   *monitor.Coalescer

	grpName   map[*raid.Group]string
	injectors []*failure.Injector
	probers   []*lustre.Client
	scrubbers []*integrity.Scrubber
	degraded  map[int]bool // router-uplink index -> currently degraded
	uplinks   []*netsim.Link

	rep *Report
}

// Run executes the campaign and returns its report. The run is
// deterministic: the same configuration (seed included) produces a
// bit-identical report.
func Run(cfg Config) *Report {
	if cfg.Duration <= 0 {
		panic("chaos: campaign needs a positive duration") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	cc := center.New(center.Config{
		Scale: cfg.Scale, Namespaces: cfg.Namespaces, Seed: cfg.Seed,
		Small: cfg.Small, UseFabric: true, RouteMode: netsim.RouteFGR,
	})
	cc.Fabric.SetNotification(cfg.ARN)
	if cfg.Tracer != nil {
		cc.AttachTracer(cfg.Tracer)
	}

	eng := cc.Eng
	var th *sim.TraceHash
	if cfg.TraceEvents {
		th = sim.NewTraceHash()
		eng.SetTrace(th.Observe)
	}
	downLedger := NewLedger(eng)
	graph := NewGraph(eng, downLedger)
	p := &campaign{
		cfg: cfg, c: cc, eng: eng, graph: graph, ledger: downLedger,
		ops:      ledger.New(ledger.Config{Epoch: cfg.LedgerEpoch}),
		coal:     monitor.NewCoalescer(30 * sim.Second),
		grpName:  map[*raid.Group]string{},
		degraded: map[int]bool{},
		uplinks:  cc.Fabric.RouterUpLinks(),
		rep: &Report{
			Seed: cfg.Seed, Window: cfg.Duration,
			Imperative: cfg.Imperative, ARN: cfg.ARN,
			MinProbeMBps: -1,
		},
	}
	graph.Events = p.ingest

	p.buildGraph()
	p.startDiskFailures()
	p.startOSSCrashes()
	p.startRouterBursts()
	p.startCableDegradation()
	p.scheduleMDSOutage()
	p.scheduleEnclosureLoss()
	p.scheduleCorruptionStorm()
	p.startScrubbers()
	p.startProbes()

	eng.RunUntil(cfg.Duration)
	for _, in := range p.injectors {
		in.Stop()
	}
	for _, s := range p.scrubbers {
		s.Stop()
	}
	downLedger.Close()
	p.ops.Close()
	p.coal.Close()
	p.finishReport()
	if th != nil {
		p.rep.EventTrace = th.Sum()
		p.rep.TraceEvents = th.Events()
	}
	return p.rep
}

// ingest forwards an event into the incident coalescer and appends it
// to the operations ledger (events arrive in time order because
// everything runs on one engine).
func (p *campaign) ingest(ev monitor.Event) {
	p.coal.Ingest(ev)
	p.opAppend(ev.At, ev.Component, ev.Class.String(), ev.Kind, "")
}

// opAppend records one ledger entry. The ledger refuses out-of-order
// or post-close appends as errors, never panics; on one engine those
// cannot happen, so a refusal is counted and surfaced in the report
// (and would trip the BENCH_ledger gate) rather than dropped silently.
func (p *campaign) opAppend(at sim.Time, actor, class, action, detail string) {
	if err := p.ops.Append(at, actor, class, action, detail); err != nil {
		p.rep.LedgerDrops++
	}
}

func (p *campaign) emit(component string, class monitor.EventClass, kind string) {
	p.ingest(monitor.Event{At: p.eng.Now(), Component: component, Class: class, Kind: kind})
	p.note("%v %s %s", p.eng.Now(), component, kind)
}

func (p *campaign) note(format string, args ...interface{}) {
	if len(p.rep.Timeline) < maxTimeline {
		p.rep.Timeline = append(p.rep.Timeline, fmt.Sprintf(format, args...))
	}
}

func nsName(fs *lustre.FS) string             { return fs.Name }
func mdsName(fs *lustre.FS) string            { return fs.Name + "-mds" }
func ossName(fs *lustre.FS, i int) string     { return fmt.Sprintf("%s-oss%d", fs.Name, i) }
func ostName(fs *lustre.FS, i int) string     { return fmt.Sprintf("%s-ost%d", fs.Name, i) }
func grpNodeName(fs *lustre.FS, i int) string { return fmt.Sprintf("%s-grp%d", fs.Name, i) }
func routerName(rid int) string               { return fmt.Sprintf("rtr%d", rid) }
func cableName(rid int) string                { return fmt.Sprintf("cable%d", rid) }

// buildGraph registers the center's failure domains: per namespace the
// MDS, the namespace depending on it, every OSS, and every OST
// depending on its RAID group, its serving OSS, and the MDS; plus one
// cable -> router chain per LNET router.
func (p *campaign) buildGraph() {
	media := rng.New(p.cfg.Seed).Split("chaos-media")
	for ns, fs := range p.c.Namespaces {
		p.graph.Add(mdsName(fs), KindMDS)
		p.graph.Add(nsName(fs), KindNamespace, mdsName(fs))
		for i := range fs.OSSes {
			p.graph.Add(ossName(fs, i), KindOSS)
		}
		groups := p.c.GroupsOf(ns)
		for i, g := range groups {
			gn := grpNodeName(fs, i)
			p.grpName[g] = gn
			p.graph.Add(gn, KindGroup)
			p.graph.Add(ostName(fs, i), KindOST, gn, ossName(fs, fs.OSSOf(i)), mdsName(fs))
			g.RebuildChunk = p.cfg.RebuildChunk
			g.RebuildPause = p.cfg.RebuildPause
			g.Verify = p.cfg.VerifyPolicy
			if p.cfg.MediaFaults.Enabled() {
				for j, d := range g.Disks() {
					d.SetFaultInjection(p.cfg.MediaFaults, media.Split(fmt.Sprintf("%s-d%d", gn, j)))
				}
			}
			g.OnStripeLoss = func(int64) {
				// A stripe whose defects exceeded parity: latent data
				// loss, surfaced to monitoring like any other fault.
				p.emit(gn, monitor.Hardware, "latent-data-loss")
			}
		}
	}
	for rid := 0; rid < p.c.Fabric.NumRouters(); rid++ {
		p.graph.Add(cableName(rid), KindCable)
		p.graph.Add(routerName(rid), KindRouter, cableName(rid))
	}
}

func (p *campaign) startDiskFailures() {
	if p.cfg.DiskAFR <= 0 {
		return
	}
	for ns := range p.c.Namespaces {
		in := failure.NewInjector(p.eng, p.c.GroupsOf(ns), failure.DiskFailureConfig{
			AnnualFailureRate: p.cfg.DiskAFR, ReplaceDelay: p.cfg.ReplaceDelay,
		}, rng.New(p.cfg.Seed).Split(fmt.Sprintf("chaos-disks-%d", ns)))
		in.Events = p.ingest
		in.OnGroupFailed = func(g *raid.Group) {
			p.note("%v %s raid group lost (data loss)", p.eng.Now(), p.grpName[g])
			p.graph.Fail(p.grpName[g])
		}
		in.Start()
		p.injectors = append(p.injectors, in)
	}
}

// startOSSCrashes runs the Poisson OSS crash-and-failover process. A
// draw landing on a server already down is a skipped fault (counted),
// not a panic: FailOSS reports the condition as an error.
func (p *campaign) startOSSCrashes() {
	if p.cfg.OSSCrashInterval <= 0 {
		return
	}
	src := rng.New(p.cfg.Seed).Split("chaos-oss")
	rec := lustre.DefaultRecovery(p.cfg.Imperative)
	var next func()
	next = func() {
		p.eng.After(sim.FromSeconds(src.Exp(1/p.cfg.OSSCrashInterval.Seconds())), func() {
			ns := src.Intn(len(p.c.Namespaces))
			fs := p.c.Namespaces[ns]
			i := src.Intn(len(fs.OSSes))
			name := ossName(fs, i)
			if err := lustre.FailOSS(fs, i, rec, func(outage sim.Time) {
				p.graph.Recover(name)
			}); err != nil {
				p.rep.SkippedFaults++
			} else {
				p.rep.OSSCrashes++
				p.emit(name, monitor.Software, "oss-crash")
				p.graph.Fail(name)
			}
			next()
		})
	}
	next()
}

// startRouterBursts kills batches of LNET routers. A fraction of the
// kills are attributed to a cut cable, exercising the cable -> router
// cascade; the rest are direct router deaths (LBUG-class). Either way
// the fabric stops routing through them until the repair.
func (p *campaign) startRouterBursts() {
	if p.cfg.RouterBurstInterval <= 0 || p.cfg.RouterBurstSize <= 0 {
		return
	}
	f := p.c.Fabric
	src := rng.New(p.cfg.Seed).Split("chaos-routers")
	var next func()
	next = func() {
		p.eng.After(sim.FromSeconds(src.Exp(1/p.cfg.RouterBurstInterval.Seconds())), func() {
			p.rep.RouterBursts++
			for k := 0; k < p.cfg.RouterBurstSize; k++ {
				rid := -1
				for tries := 0; tries < 4*f.NumRouters(); tries++ {
					cand := src.Intn(f.NumRouters())
					if !f.RouterFailed(cand) {
						rid = cand
						break
					}
				}
				if rid < 0 {
					break // entire fleet already dead
				}
				f.FailRouter(rid)
				p.rep.RoutersKilled++
				root := routerName(rid)
				if src.Bool(p.cfg.CableCutFraction) {
					root = cableName(rid)
					p.rep.CableCuts++
					p.emit(root, monitor.Hardware, "cable-cut")
				} else {
					p.emit(root, monitor.Software, "router-lbug")
				}
				p.graph.Fail(root)
				deadRID, deadRoot := rid, root
				p.eng.After(p.cfg.RouterRepair, func() {
					f.RecoverRouter(deadRID)
					p.graph.Recover(deadRoot)
					p.opAppend(p.eng.Now(), deadRoot, "operator", "router-repaired", "")
				})
			}
			next()
		})
	}
	next()
}

// startCableDegradation drops a router uplink to a fraction of its
// nominal bandwidth (the in-place-diagnosable §IV-A failure mode). The
// link stays up — this degrades throughput without downtime.
func (p *campaign) startCableDegradation() {
	if p.cfg.CableDegradeInterval <= 0 || len(p.uplinks) == 0 {
		return
	}
	net := p.c.Fabric.Net
	src := rng.New(p.cfg.Seed).Split("chaos-cables")
	var next func()
	next = func() {
		p.eng.After(sim.FromSeconds(src.Exp(1/p.cfg.CableDegradeInterval.Seconds())), func() {
			idx := src.Intn(len(p.uplinks))
			if !p.degraded[idx] {
				p.degraded[idx] = true
				l := p.uplinks[idx]
				net.Degrade(l, p.cfg.CableDegradeFrac)
				p.rep.CableDegradations++
				p.emit(l.Name, monitor.Hardware, "hca-symbol-errors")
				p.eng.After(p.cfg.CableRepair, func() {
					net.Restore(l)
					delete(p.degraded, idx)
				})
			}
			next()
		})
	}
	next()
}

func (p *campaign) scheduleMDSOutage() {
	if p.cfg.MDSOutageAt <= 0 || p.cfg.MDSOutageDuration <= 0 {
		return
	}
	fs := p.c.Namespaces[0]
	p.eng.At(p.cfg.MDSOutageAt, func() {
		p.rep.MDSOutages++
		p.emit(mdsName(fs), monitor.Software, "mds-outage")
		p.graph.Fail(mdsName(fs))
		p.eng.After(p.cfg.MDSOutageDuration, func() {
			p.graph.Recover(mdsName(fs))
			p.opAppend(p.eng.Now(), mdsName(fs), "operator", "mds-recovered", "")
		})
	})
}

// scheduleEnclosureLoss replays the §IV-E compounding against namespace
// 0's first couplet under the corrected Spider II layout: a rebuild is
// in flight when an enclosure drops, taking one member of every group.
// Each group degrades but survives (10x1 housing), and repair crews
// restore the lost members with fresh drives.
func (p *campaign) scheduleEnclosureLoss() {
	if p.cfg.EnclosureLossAt <= 0 {
		return
	}
	layout := raid.Spider2Layout()
	src := rng.New(p.cfg.Seed).Split("chaos-enclosure")
	p.eng.At(p.cfg.EnclosureLossAt, func() {
		cp := p.c.CoupletsOf(0, layout)[0]
		groups := cp.Groups()
		g0 := groups[0]
		if g0.State() == raid.Healthy {
			g0.FailDisk(0)
			p.emit(p.grpName[g0]+"-disk0", monitor.Hardware, "disk-failure")
			repl := disk.New(p.eng, 2_000_000, g0.Disks()[0].Config(), disk.Nominal(), src.Split("repl0"))
			g0.StartRebuild(0, repl, nil)
		}
		p.eng.After(sim.Hour, func() {
			before := make([]raid.State, len(groups))
			for i, g := range groups {
				before[i] = g.State()
			}
			cp.FailEnclosure(1)
			p.emit("enclosure1", monitor.Hardware, "enclosure-loss")
			for i, g := range groups {
				if g.State() == raid.Failed && before[i] != raid.Failed {
					p.rep.EnclosureGroupsFailed++
					p.graph.Fail(p.grpName[g])
				}
			}
			// Repair: the enclosure's drive slot (member 1 of every group
			// under the 10x1 layout) is restocked once crews swap the
			// enclosure. Groups mid-rebuild on another member are picked up
			// by a second sweep.
			member := 1
			repair := func(tag string) func() {
				return func() {
					restocked := 0
					for i, g := range groups {
						if g.State() != raid.Degraded {
							continue
						}
						repl := disk.New(p.eng, 2_100_000+i, g.Disks()[member].Config(),
							disk.Nominal(), src.Split(fmt.Sprintf("%s-%d", tag, i)))
						g.StartRebuild(member, repl, nil)
						restocked++
					}
					p.opAppend(p.eng.Now(), "enclosure1", "operator", "repair-sweep-"+tag,
						fmt.Sprintf("%d degraded groups restocked", restocked))
				}
			}
			p.eng.After(p.cfg.EnclosureRepair, repair("r1"))
			p.eng.After(2*p.cfg.EnclosureRepair+6*sim.Hour, repair("r2"))
		})
	})
}

// scheduleCorruptionStorm sprays silent bit rot uniformly across every
// member disk in the fleet — the firmware-bug-class event that seeds
// the latent errors scrubbing exists to find before rebuilds do.
func (p *campaign) scheduleCorruptionStorm() {
	if p.cfg.CorruptionStormAt <= 0 || p.cfg.CorruptionStormErrors <= 0 {
		return
	}
	src := rng.New(p.cfg.Seed).Split("chaos-corruption")
	p.eng.At(p.cfg.CorruptionStormAt, func() {
		var dsks []*disk.Disk
		for ns := range p.c.Namespaces {
			for _, g := range p.c.GroupsOf(ns) {
				dsks = append(dsks, g.Disks()...)
			}
		}
		for k := 0; k < p.cfg.CorruptionStormErrors; k++ {
			d := dsks[src.Intn(len(dsks))]
			d.InjectError(src.Int63n(d.Config().Capacity), disk.Silent)
		}
		p.rep.CorruptionStorms++
		p.emit("fleet", monitor.Hardware, "corruption-storm")
	})
}

// startScrubbers arms one background scrubber per RAID group. The
// scrubber draws no randomness, so enabling it perturbs no fault
// schedule — only the I/O it issues and the repairs it makes.
func (p *campaign) startScrubbers() {
	if p.cfg.ScrubInterval <= 0 {
		return
	}
	for ns := range p.c.Namespaces {
		for _, g := range p.c.GroupsOf(ns) {
			s := integrity.New(p.eng, g, integrity.Config{
				BatchStripes: p.cfg.ScrubBatch,
				BatchPause:   p.cfg.ScrubPause,
				PassInterval: p.cfg.ScrubInterval,
			})
			gn := p.grpName[g]
			s.Escalate = func(lost int) {
				p.opAppend(p.eng.Now(), gn, "integrity", "scrub-escalation",
					fmt.Sprintf("%d stripes beyond parity", lost))
			}
			s.Start()
			p.scrubbers = append(p.scrubbers, s)
		}
	}
}

// startProbes pulses a striped write through the full I/O path of every
// namespace on a fixed cadence and records delivered throughput. A
// probe against a namespace whose MDS is down is recorded as an
// unavailable sample; a probe stalled past the end of the window (OSS
// recovery pending, or its flow dropped by a dead router fleet) counts
// as stalled.
func (p *campaign) startProbes() {
	if p.cfg.ProbeInterval <= 0 || p.cfg.ProbeBytes <= 0 {
		return
	}
	for ns, fs := range p.c.Namespaces {
		ns, fs := ns, fs
		cl := lustre.NewClient(9000+ns, topology.Coord{X: 1, Y: 1, Z: 1}, fs, p.c.Transport(ns))
		cl.RPCTimeout = 100 * sim.Second
		cl.BackoffSrc = rng.New(p.cfg.Seed).Split(fmt.Sprintf("chaos-backoff-%d", ns))
		cl.Tracer = p.cfg.Tracer
		p.probers = append(p.probers, cl)
		pulse := 0
		var tick func()
		tick = func() {
			k := pulse
			pulse++
			if p.graph.Down(nsName(fs)) {
				p.rep.UnavailableProbes++
			} else {
				p.rep.ProbesLaunched++
				start := p.eng.Now()
				path := fmt.Sprintf("chaos-probe/ns%d/p%05d", ns, k)
				fs.Create(path, 4, func(f *lustre.File) {
					cl.WriteStream(f, p.cfg.ProbeBytes, 1<<20, func(n int64) {
						dur := p.eng.Now() - start
						if dur > 0 {
							p.rep.probeSamples = append(p.rep.probeSamples,
								float64(n)/dur.Seconds()/1e6)
						}
						p.rep.Probes++
						fs.Unlink(path, nil)
					})
				})
			}
			p.eng.After(p.cfg.ProbeInterval, tick)
		}
		tick()
	}
}

func (p *campaign) finishReport() {
	r := p.rep
	f := p.c.Fabric
	r.DroppedFlows = f.DroppedFlows
	r.StalledSends = f.StalledSends
	r.StallTime = f.StallTime
	r.Cascades = p.graph.Cascades
	for _, in := range p.injectors {
		r.DiskFailures += in.Failures
		r.Rebuilds += in.Rebuilds
		r.GroupsLost += in.DataLoss
	}
	for _, cl := range p.probers {
		r.RPCTimeouts += cl.RPCTimeouts
		r.RPCRetries += cl.RPCRetries
		r.BackoffWaits += cl.BackoffWaits
		r.BackoffWait += cl.BackoffWait
	}
	for ns, fs := range p.c.Namespaces {
		for _, g := range p.c.GroupsOf(ns) {
			r.GroupIOErrors += g.IOErrors
			r.UREsDetected += g.UREsDetected
			r.ChecksumMismatches += g.ChecksumMismatches
			r.RepairedChunks += g.RepairedChunks
			r.ScrubRepairs += g.ScrubRepairs
			r.UndetectedCorruptReads += g.UndetectedCorruptReads
			r.RebuildLatentHits += g.RebuildLatentHits
			r.LatentDataLoss += g.UnrecoverableStripes
			r.LostStripeReads += g.LostStripeReads
		}
		for _, s := range fs.OSSes {
			r.OSSDoubleFaults += s.DoubleFaults
		}
		for _, o := range fs.OSTs {
			r.ReadEIOs += o.ReadEIOs
		}
	}
	for _, s := range p.scrubbers {
		r.ScrubPasses += s.Passes
		r.ScrubbedStripes += s.ScannedStripes
		r.ScrubRebuildOverlaps += s.RebuildOverlaps
	}
	r.Incidents = len(p.coal.Incidents)
	for _, inc := range p.coal.Incidents {
		if inc.RootClass == monitor.Hardware {
			r.HardwareIncidents++
		}
	}
	r.LedgerEntries = p.ops.Len()
	r.LedgerAnchors = p.ops.AnchorCount()
	r.LedgerRoots = p.ops.Roots()
	r.LedgerHead = p.ops.Head()
	r.Ops = p.ops.Export()
	r.Components = p.ledger.Stats()
	nOST, _, ostDown := p.ledger.KindDowntime(KindOST)
	r.OSTs = nOST
	r.OSTDowntime = ostDown
	if nOST > 0 && r.Window > 0 {
		r.Availability = 1 - float64(ostDown)/(float64(nOST)*float64(r.Window))
	}
	r.ProbeStalls = r.ProbesLaunched - r.Probes
	if n := len(r.probeSamples); n > 0 {
		sum := 0.0
		min := r.probeSamples[0]
		for _, s := range r.probeSamples {
			sum += s
			if s < min {
				min = s
			}
		}
		r.MeanProbeMBps = sum / float64(n)
		r.MinProbeMBps = min
	} else {
		r.MinProbeMBps = 0
	}
}
