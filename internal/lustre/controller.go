// Package lustre models the Lustre parallel file system stack as
// deployed on Spider: object storage targets (OSTs) backed by RAID-6
// groups behind DDN-style storage controllers with write-back caches,
// object storage servers (OSSes), a single metadata server (MDS) per
// namespace, striped files, and pipelined client RPC streams.
//
// The model captures the levers the paper's operational lessons turn on:
// per-RPC software overheads (obdfilter), stripe-aligned vs partial
// stripe writes, controller cache backpressure, fill-level fragmentation
// and inner-zone slowdown, single-MDS metadata limits, and stat cost
// proportional to stripe count.
package lustre

import (
	"spiderfs/internal/sim"
)

// ControllerConfig describes one storage-controller couplet (one per
// SSU: 56 OSTs behind it in Spider II).
type ControllerConfig struct {
	// Bps is the couplet's aggregate streaming bandwidth. Spider II's
	// original controllers delivered ~18 GB/s per SSU (36 SSUs -> ~650
	// GB/s across both namespaces); the CPU/memory upgrade described in
	// §V-C raised it to ~30 GB/s.
	Bps float64
	// FixedPerRPC is firmware per-request overhead.
	FixedPerRPC sim.Time
	// Slots is the number of requests serviced concurrently.
	Slots int
	// CacheBytes is the write-back cache size; inbound writes beyond it
	// block until dirty data flushes to disk.
	CacheBytes int64
}

// Spider2Controller returns the pre-upgrade SFA-class controller.
func Spider2Controller() ControllerConfig {
	return ControllerConfig{Bps: 18e9, FixedPerRPC: 60 * sim.Microsecond, Slots: 16, CacheBytes: 8 << 30}
}

// Spider2ControllerUpgraded returns the post-upgrade controller (faster
// CPU and memory; §V-C reports 320 -> 510 GB/s per namespace).
func Spider2ControllerUpgraded() ControllerConfig {
	return ControllerConfig{Bps: 30e9, FixedPerRPC: 30 * sim.Microsecond, Slots: 24, CacheBytes: 16 << 30}
}

// Controller is the shared couplet serving all OSTs of one SSU. It
// provides request servicing (CPU/bandwidth) and write-back cache
// admission control.
type Controller struct {
	ID  int
	cfg ControllerConfig
	eng *sim.Engine
	srv *sim.Server

	dirty   int64 // bytes admitted but not yet flushed to disk
	waiters []ctrlWaiter

	// Counters.
	RPCs         uint64
	BytesIn      int64
	CacheStalls  uint64
	PeakDirty    int64
	FlushedBytes int64
}

type ctrlWaiter struct {
	size int64
	fn   func()
}

// NewController builds a controller couplet on eng.
func NewController(eng *sim.Engine, id int, cfg ControllerConfig) *Controller {
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	return &Controller{ID: id, cfg: cfg, eng: eng, srv: sim.NewServer(eng, "ctrl", cfg.Slots)}
}

// Config returns the controller configuration.
func (c *Controller) Config() ControllerConfig { return c.cfg }

// Dirty returns the bytes currently held dirty in cache.
func (c *Controller) Dirty() int64 { return c.dirty }

// Utilization returns the request-servicing utilization.
func (c *Controller) Utilization() float64 { return c.srv.Utilization() }

// QueueLen returns requests waiting for a controller service slot — a
// live congestion signal the placement library reads.
func (c *Controller) QueueLen() int { return c.srv.QueueLen() + len(c.waiters) }

// serviceTime is the request-processing cost of moving size bytes
// through the couplet.
func (c *Controller) serviceTime(size int64) sim.Time {
	perSlot := c.cfg.Bps / float64(c.cfg.Slots)
	return c.cfg.FixedPerRPC + sim.FromSeconds(float64(size)/perSlot)
}

// AdmitWrite blocks (logically) until cache space for size bytes is
// available, then services the request and calls done when the data is
// safely in cache (write-back semantics: the RPC acks before the disk
// flush).
func (c *Controller) AdmitWrite(size int64, done func()) {
	if size <= 0 {
		panic("lustre: controller write of non-positive size") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	if c.dirty+size > c.cfg.CacheBytes && c.dirty > 0 {
		c.CacheStalls++
		c.waiters = append(c.waiters, ctrlWaiter{size: size, fn: func() { c.AdmitWrite(size, done) }})
		return
	}
	c.dirty += size
	if c.dirty > c.PeakDirty {
		c.PeakDirty = c.dirty
	}
	c.RPCs++
	c.BytesIn += size
	c.srv.Submit(c.serviceTime(size), done)
}

// ServiceRead runs a read request through the couplet (read-through: the
// caller chains the disk read after this completes).
func (c *Controller) ServiceRead(size int64, done func()) {
	if size <= 0 {
		panic("lustre: controller read of non-positive size") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	c.RPCs++
	c.srv.Submit(c.serviceTime(size), done)
}

// Flushed informs the controller that size dirty bytes reached disk,
// freeing cache space and admitting stalled writers.
func (c *Controller) Flushed(size int64) {
	c.dirty -= size
	c.FlushedBytes += size
	if c.dirty < 0 {
		c.dirty = 0
	}
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		if c.dirty+w.size > c.cfg.CacheBytes && c.dirty > 0 {
			break
		}
		c.waiters = c.waiters[1:]
		// Re-run the admission on a fresh event to keep stack depth flat.
		c.eng.After(0, w.fn)
	}
}
