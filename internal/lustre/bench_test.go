package lustre

import (
	"fmt"
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// BenchmarkWriteRPCPath measures the full client write RPC chain
// (transport -> OSS CPU -> controller cache) per MiB.
func BenchmarkWriteRPCPath(b *testing.B) {
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(1))
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	var file *File
	fs.Create("bench/f", 4, func(f *File) { file = f })
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.WriteStream(file, 1<<20, 1<<20, nil)
		if i%32 == 31 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkMetadataCreate measures namespace create throughput.
func BenchmarkMetadataCreate(b *testing.B) {
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Create(fmt.Sprintf("bench/d%d/f%d", i%64, i), 1, nil)
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkNamespaceBuild measures full namespace construction (the
// fixed cost every experiment pays).
func BenchmarkNamespaceBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		_ = Build(eng, TestNamespace(), rng.New(uint64(i)))
	}
}
