package lustre

import (
	"spiderfs/internal/netsim"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/topology"
)

// Transport carries RPC payloads from a client to an OSS. The lustre
// package ships two implementations: NullTransport (infinite network,
// for file-system-level studies) and FabricTransport (the full
// Gemini+IB path).
type Transport interface {
	Send(from topology.Coord, oss int, bytes int64, done func())
}

// NullTransport delivers instantly; use it to benchmark the storage
// stack in isolation (the paper's obdfilter-survey level).
type NullTransport struct{ Eng *sim.Engine }

// Send implements Transport.
func (n NullTransport) Send(_ topology.Coord, _ int, _ int64, done func()) {
	n.Eng.After(0, done)
}

// FabricTransport routes payloads over a netsim.Fabric with the chosen
// routing discipline. Sends go through the fabric's router-failure
// path: a dead router stalls the sender (without ARN) or is routed
// around (with ARN), and a send with no eligible router left is
// recorded as a dropped flow instead of panicking.
type FabricTransport struct {
	Fabric *netsim.Fabric
	Mode   netsim.RouteMode
	Src    *rng.Source
}

// Send implements Transport.
func (t FabricTransport) Send(from topology.Coord, oss int, bytes int64, done func()) {
	t.Fabric.StartClientFlow(from, oss, t.Mode, float64(bytes), t.Src, done)
}

// Client is one compute-node Lustre client issuing pipelined RPC
// streams, like an IOR file-per-process rank.
type Client struct {
	ID    int
	Coord topology.Coord
	FS    *FS
	TR    Transport

	// Window is the number of RPCs kept in flight (Lustre's
	// max_rpcs_in_flight, default 8).
	Window int

	// MaxRPC caps the wire RPC size (1 MiB in Lustre of the Spider II
	// era): application transfers larger than this are split, which is
	// why Fig. 3 plateaus past 1 MiB rather than improving.
	MaxRPC int64

	// Tracer, when set, samples issued RPCs as spantrace root spans;
	// every layer the request crosses attaches child spans under them.
	Tracer *spantrace.Tracer

	// RPCTimeout, when positive, arms a watchdog on every issued RPC.
	// An RPC still unacknowledged when the watchdog expires counts one
	// timeout and one (modeled) resend, and the watchdog re-arms — so a
	// send stalled behind a dead server or router is visible in the
	// counters even though the simulated RPC eventually replays. Zero
	// disables the watchdog.
	RPCTimeout sim.Time

	// RetryBackoffCap bounds the exponential watchdog backoff: each
	// consecutive expiration of the same RPC doubles the re-arm delay up
	// to this cap, so a long server outage costs O(log) retries instead
	// of hammering every RPCTimeout. Zero means 8x RPCTimeout.
	RetryBackoffCap sim.Time

	// BackoffSrc, when set, jitters backed-off re-arm delays by ±25% so
	// a thundering herd of stalled clients desynchronizes. Only
	// backed-off arms draw from it — the first watchdog of every RPC
	// uses RPCTimeout exactly, so a client that never stalls consumes
	// nothing from the stream (determinism isolation).
	BackoffSrc *rng.Source

	BytesWritten int64
	BytesRead    int64
	RPCsSent     uint64
	// RPCTimeouts counts watchdog expirations (stalled sends);
	// RPCRetries counts the resends those expirations model.
	RPCTimeouts uint64
	RPCRetries  uint64
	// BackoffWaits counts expirations of backed-off (longer-than-base)
	// watchdogs; BackoffWait accumulates the extra delay they waited
	// beyond RPCTimeout.
	BackoffWaits uint64
	BackoffWait  sim.Time
}

// backoffCap returns the effective backoff ceiling.
func (c *Client) backoffCap() sim.Time {
	if c.RetryBackoffCap > 0 {
		return c.RetryBackoffCap
	}
	return 8 * c.RPCTimeout
}

// NewClient builds a client at the given torus coordinate.
func NewClient(id int, coord topology.Coord, fs *FS, tr Transport) *Client {
	return &Client{ID: id, Coord: coord, FS: fs, TR: tr, Window: 8, MaxRPC: 1 << 20}
}

// stream drives one pipelined RPC stream.
type stream struct {
	c           *Client
	f           *File
	xfer        int64
	total       int64 // 0 means unbounded (stonewall-only)
	deadline    sim.Time
	hasDeadline bool
	write       bool
	random      bool

	issued    int64
	acked     int64
	inFlight  int
	stopped   bool
	done      func(bytes int64)
	stripeIdx int
}

func (s *stream) pump() {
	eng := s.c.FS.eng
	for s.inFlight < s.c.Window && !s.stopped {
		if s.total > 0 && s.issued >= s.total {
			break
		}
		if s.hasDeadline && eng.Now() >= s.deadline {
			s.stopped = true
			break
		}
		size := s.xfer
		if max := s.c.MaxRPC; max > 0 && size > max {
			size = max
		}
		if s.total > 0 && s.issued+size > s.total {
			size = s.total - s.issued
		}
		s.issue(size)
	}
	if s.inFlight == 0 {
		finished := s.total > 0 && s.acked >= s.total
		timedOut := s.stopped || (s.hasDeadline && eng.Now() >= s.deadline)
		if finished || timedOut {
			if s.done != nil {
				d := s.done
				s.done = nil
				d(s.acked)
			}
		}
	}
}

func (s *stream) issue(size int64) {
	s.issued += size
	s.inFlight++
	s.c.RPCsSent++
	oi := s.f.OSTIndices[s.stripeIdx%len(s.f.OSTIndices)]
	obj := s.f.Objects[s.stripeIdx%len(s.f.OSTIndices)]
	s.stripeIdx++
	ossIdx := s.c.FS.ostOSS[oi]
	oss := s.c.FS.OSSes[ossIdx]
	fs := s.c.FS
	// Sample the RPC as a spantrace root. ctx is the request context
	// threaded to deeper layers: the root span when sampled, NoSpan when
	// this request was considered and skipped (suppresses fabric
	// self-sampling), 0 when tracing is off entirely.
	tr := s.c.Tracer
	var rpcSpan, ctx spantrace.SpanID
	if tr != nil {
		op := "rpc-read"
		if s.write {
			op = "rpc-write"
		}
		rpcSpan = tr.SampleRoot(spantrace.Client, op, size)
		ctx = rpcSpan
		if ctx == 0 {
			ctx = spantrace.NoSpan
		}
	}
	var watchdog *sim.Event
	if cl := s.c; cl.RPCTimeout > 0 {
		delay := cl.RPCTimeout
		var arm func()
		arm = func() {
			d := delay
			if d > cl.RPCTimeout && cl.BackoffSrc != nil {
				// ±25% deterministic jitter, drawn only on backed-off
				// arms so unstalled clients touch no rng stream.
				d = d - d/4 + sim.Time(cl.BackoffSrc.Float64()*float64(d/2))
			}
			armed := d
			watchdog = fs.eng.After(d, func() {
				cl.RPCTimeouts++
				cl.RPCRetries++
				if armed > cl.RPCTimeout {
					cl.BackoffWaits++
					cl.BackoffWait += armed - cl.RPCTimeout
				}
				tr.Mark(spantrace.Client, "rpc-retry", rpcSpan, size, "")
				if delay *= 2; delay > cl.backoffCap() {
					delay = cl.backoffCap()
				}
				arm()
			})
		}
		arm()
	}
	complete := func() {
		watchdog.Cancel()
		tr.End(rpcSpan)
		s.inFlight--
		s.acked += size
		if s.write {
			s.c.BytesWritten += size
			s.f.MTime = fs.eng.Now()
		} else {
			s.c.BytesRead += size
			s.f.ATime = fs.eng.Now()
		}
		s.pump()
	}
	// Each synchronous call boundary is bracketed with Swap so deeper
	// layers see this RPC as their parent context; deferred callbacks
	// re-install the captured context before descending further.
	if s.write {
		old := tr.Swap(ctx)
		s.c.TR.Send(s.c.Coord, ossIdx, size, func() {
			o1 := tr.Swap(ctx)
			oss.Service(size, func() {
				o2 := tr.Swap(ctx)
				obj.Write(size, complete)
				tr.Swap(o2)
			})
			tr.Swap(o1)
		})
		tr.Swap(old)
	} else {
		// Read: request travels to the OSS, data is produced, and the
		// payload returns over the same fabric path class.
		old := tr.Swap(ctx)
		oss.Service(size, func() {
			o1 := tr.Swap(ctx)
			obj.Read(size, s.random, func() {
				o2 := tr.Swap(ctx)
				s.c.TR.Send(s.c.Coord, ossIdx, size, complete)
				tr.Swap(o2)
			})
			tr.Swap(o1)
		})
		tr.Swap(old)
	}
}

// WriteStream writes total bytes to f in xfer-sized RPCs, round-robin
// across the file's stripes, keeping Window RPCs in flight. done (may be
// nil) receives the bytes acknowledged.
func (c *Client) WriteStream(f *File, total, xfer int64, done func(int64)) {
	if xfer <= 0 || total <= 0 {
		panic("lustre: WriteStream needs positive sizes") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	s := &stream{c: c, f: f, xfer: xfer, total: total, write: true, done: done}
	s.pump()
}

// WriteUntil writes xfer-sized RPCs to f until the deadline (stonewall
// mode, as the paper's IOR runs used), then reports bytes acknowledged.
func (c *Client) WriteUntil(f *File, deadline sim.Time, xfer int64, done func(int64)) {
	if xfer <= 0 {
		panic("lustre: WriteUntil needs positive xfer") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	s := &stream{c: c, f: f, xfer: xfer, deadline: deadline, hasDeadline: true, write: true, done: done}
	s.pump()
}

// ReadStream reads total bytes from f; random selects a seeky access
// pattern (data analytics) versus streaming.
func (c *Client) ReadStream(f *File, total, xfer int64, random bool, done func(int64)) {
	if xfer <= 0 || total <= 0 {
		panic("lustre: ReadStream needs positive sizes") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	s := &stream{c: c, f: f, xfer: xfer, total: total, random: random, done: done}
	s.pump()
}

// ReadUntil reads until the deadline (stonewall), reporting bytes read.
func (c *Client) ReadUntil(f *File, deadline sim.Time, xfer int64, random bool, done func(int64)) {
	if xfer <= 0 {
		panic("lustre: ReadUntil needs positive xfer") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	s := &stream{c: c, f: f, xfer: xfer, deadline: deadline, hasDeadline: true, random: random, done: done}
	s.pump()
}
