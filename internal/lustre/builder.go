package lustre

import (
	"fmt"

	"spiderfs/internal/disk"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// Params sizes a namespace build. One SSU carries OSTsPerSSU RAID
// groups behind one controller couplet and OSSPerSSU object storage
// servers.
type Params struct {
	Name       string
	NumSSU     int
	OSTsPerSSU int
	OSSPerSSU  int

	GroupCfg raid.GroupConfig
	DiskCfg  disk.Config
	DiskSpec disk.PopulationSpec
	CtrlCfg  ControllerConfig
	OSSCfg   OSSConfig
	MDSCfg   MDSConfig

	DefaultStripeCount int
	DefaultStripeSize  int64
}

// Spider2Namespace returns one of Spider II's two namespaces at full
// scale: 18 SSUs x 56 OSTs x 10 disks = 10,080 drives, 1,008 OSTs, 144
// OSSes (the real file system was 36 SSUs split into two namespaces).
func Spider2Namespace() Params {
	return Params{
		Name:               "atlas1",
		NumSSU:             18,
		OSTsPerSSU:         56,
		OSSPerSSU:          8,
		GroupCfg:           raid.Spider2Group(),
		DiskCfg:            disk.NLSAS2TB(),
		DiskSpec:           disk.DefaultPopulation(),
		CtrlCfg:            Spider2Controller(),
		OSSCfg:             Spider2OSS(),
		MDSCfg:             Spider2MDS(),
		DefaultStripeCount: 4,
		DefaultStripeSize:  1 << 20,
	}
}

// Scale returns a copy with SSU count divided by f (minimum 1),
// preserving the per-SSU shape so per-SSU behaviour is unchanged and
// aggregate numbers scale linearly. Used to keep big sweeps tractable.
func (p Params) Scale(f int) Params {
	if f < 1 {
		f = 1
	}
	p.NumSSU = p.NumSSU / f
	if p.NumSSU < 1 {
		p.NumSSU = 1
	}
	return p
}

// TestNamespace returns a tiny namespace for unit tests: 1 SSU, 4 OSTs
// on small disks.
func TestNamespace() Params {
	p := Spider2Namespace()
	p.Name = "test"
	p.NumSSU = 1
	p.OSTsPerSSU = 4
	p.OSSPerSSU = 2
	p.DiskCfg.Capacity = 2 << 30
	return p
}

// Build manufactures the namespace: disks, RAID groups, controllers,
// OSTs, OSSes, and MDS, wired together on eng.
func Build(eng *sim.Engine, p Params, src *rng.Source) *FS {
	if p.NumSSU < 1 || p.OSTsPerSSU < 1 || p.OSSPerSSU < 1 {
		panic("lustre: invalid namespace shape") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	var osts []*OST
	var osses []*OSS
	var ctrls []*Controller
	var ostOSS []int
	ostID := 0
	for ssu := 0; ssu < p.NumSSU; ssu++ {
		ctrl := NewController(eng, ssu, p.CtrlCfg)
		ctrls = append(ctrls, ctrl)
		groups := raid.BuildGroups(eng, p.OSTsPerSSU, p.GroupCfg, p.DiskCfg, p.DiskSpec, src.Split(fmt.Sprintf("ssu-%d", ssu)))
		ssuOSSBase := len(osses)
		for i := 0; i < p.OSSPerSSU; i++ {
			osses = append(osses, NewOSS(eng, ssuOSSBase+i, p.OSSCfg))
		}
		for i, g := range groups {
			ost := NewOST(eng, ostID, g, ctrl, src.Split(fmt.Sprintf("ost-%d", ostID)))
			osts = append(osts, ost)
			ostOSS = append(ostOSS, ssuOSSBase+i%p.OSSPerSSU)
			ostID++
		}
	}
	fs := NewFS(eng, p.Name, NewMDS(eng, p.MDSCfg), osts, osses, ctrls, ostOSS)
	fs.DefaultStripeCount = p.DefaultStripeCount
	fs.DefaultStripeSize = p.DefaultStripeSize
	return fs
}
