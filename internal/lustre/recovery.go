package lustre

import (
	"fmt"

	"spiderfs/internal/sim"
)

// RecoveryConfig models Lustre's server-failure recovery path. OLCF
// direct-funded "imperative recovery" (§IV-D): instead of clients
// discovering a failed-over server by RPC timeout, the management
// server notifies them immediately, collapsing the reconnect phase from
// minutes to seconds.
type RecoveryConfig struct {
	// Detection is the time for the HA framework to declare the server
	// dead and start the failover partner.
	Detection sim.Time
	// ClientTimeout is how long clients take to notice without
	// imperative recovery (RPC/bulk timeouts plus backoff).
	ClientTimeout sim.Time
	// IRNotify is the MGS notification latency with imperative recovery.
	IRNotify sim.Time
	// Replay is the transaction-replay window once clients reconnect.
	Replay sim.Time
	// Imperative selects the funded feature.
	Imperative bool
}

// DefaultRecovery mirrors production Lustre constants of the era.
func DefaultRecovery(imperative bool) RecoveryConfig {
	return RecoveryConfig{
		Detection:     15 * sim.Second,
		ClientTimeout: 300 * sim.Second,
		IRNotify:      5 * sim.Second,
		Replay:        30 * sim.Second,
		Imperative:    imperative,
	}
}

// OutageDuration returns the total unavailability window the
// configuration implies.
func (c RecoveryConfig) OutageDuration() sim.Time {
	reconnect := c.ClientTimeout
	if c.Imperative {
		reconnect = c.IRNotify
	}
	return c.Detection + reconnect + c.Replay
}

// FailOSS crashes the given OSS now and schedules its recovery per cfg.
// In-flight and newly issued RPCs to the server stall and replay when
// the failover completes; done (may be nil) receives the realized
// outage duration. Faulting a server that is already down is a
// recoverable condition — chaos campaigns sample servers at random —
// so it is reported as an error (and counted on the OSS) rather than
// panicking the run.
func FailOSS(fs *FS, oss int, cfg RecoveryConfig, done func(outage sim.Time)) error {
	if oss < 0 || oss >= len(fs.OSSes) {
		return fmt.Errorf("lustre: FailOSS index %d out of range [0,%d)", oss, len(fs.OSSes))
	}
	s := fs.OSSes[oss]
	if s.Down() {
		s.DoubleFaults++
		return fmt.Errorf("lustre: OSS %d already down", oss)
	}
	start := fs.eng.Now()
	s.Fail()
	fs.eng.After(cfg.OutageDuration(), func() {
		s.Recover()
		if done != nil {
			done(fs.eng.Now() - start)
		}
	})
	return nil
}
