package lustre

import (
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

func TestReadUntilStonewall(t *testing.T) {
	eng, fs := testFS(t, 90)
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	var file *File
	fs.Create("r/f", 2, func(f *File) { file = f })
	eng.Run()
	client.WriteStream(file, 32<<20, 1<<20, nil)
	eng.Run()
	var read int64
	client.ReadUntil(file, eng.Now()+sim.Second, 1<<20, false, func(n int64) { read = n })
	eng.Run()
	if read <= 0 {
		t.Fatal("stonewall read moved nothing")
	}
}

func TestWriteUntilPastDeadlineCompletesEmpty(t *testing.T) {
	eng, fs := testFS(t, 91)
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	var file *File
	fs.Create("w/f", 1, func(f *File) { file = f })
	eng.Run()
	called := false
	client.WriteUntil(file, 0, 1<<20, func(n int64) {
		called = true
		if n != 0 {
			t.Errorf("past-deadline stonewall wrote %d", n)
		}
	})
	eng.Run()
	if !called {
		t.Fatal("completion callback never ran")
	}
}

func TestControllerOversizeWriteAdmitted(t *testing.T) {
	// A single write larger than the cache must not deadlock: it is
	// admitted when the cache is empty.
	eng := sim.NewEngine()
	ctrl := NewController(eng, 0, ControllerConfig{
		Bps: 1e9, FixedPerRPC: sim.Microsecond, Slots: 2, CacheBytes: 1 << 20,
	})
	done := false
	ctrl.AdmitWrite(8<<20, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("oversize write deadlocked")
	}
	ctrl.Flushed(8 << 20)
	if ctrl.Dirty() != 0 {
		t.Fatalf("dirty = %d", ctrl.Dirty())
	}
}

func TestControllerWaitersDrainInOrder(t *testing.T) {
	eng := sim.NewEngine()
	ctrl := NewController(eng, 0, ControllerConfig{
		Bps: 1e12, FixedPerRPC: sim.Microsecond, Slots: 4, CacheBytes: 2 << 20,
	})
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		ctrl.AdmitWrite(1<<20, func() { order = append(order, i) })
	}
	eng.Run()
	// First two admitted; remaining stalled.
	if ctrl.CacheStalls != 2 {
		t.Fatalf("stalls = %d, want 2", ctrl.CacheStalls)
	}
	ctrl.Flushed(2 << 20)
	eng.Run()
	if len(order) != 4 {
		t.Fatalf("completions = %v", order)
	}
}

func TestObjectFlushTimerForcesResidual(t *testing.T) {
	eng, fs := testFS(t, 92)
	ost := fs.OSTs[0]
	obj := ost.NewObject()
	// A partial write smaller than a stripe stays buffered until the
	// flush timer forces it out.
	obj.Write(256<<10, nil)
	eng.RunUntil(eng.Now() + ost.FlushDelay + 200*sim.Millisecond)
	if ost.Controller().Dirty() != 0 {
		t.Fatalf("residual not flushed: dirty=%d", ost.Controller().Dirty())
	}
	if ost.FragmentedFlushes == 0 {
		t.Fatal("forced residual flush not recorded")
	}
}

func TestObjectExplicitFlush(t *testing.T) {
	eng, fs := testFS(t, 93)
	obj := fs.OSTs[0].NewObject()
	obj.Write(256<<10, nil)
	flushed := false
	eng.After(sim.Millisecond, func() {
		obj.Flush(func() { flushed = true })
	})
	eng.Run()
	if !flushed {
		t.Fatal("explicit flush never completed")
	}
	// Flushing an empty buffer completes too.
	again := false
	obj.Flush(func() { again = true })
	eng.Run()
	if !again {
		t.Fatal("empty flush never completed")
	}
}

func TestDestroyReleasesDirtyCache(t *testing.T) {
	eng, fs := testFS(t, 94)
	ost := fs.OSTs[0]
	obj := ost.NewObject()
	obj.Write(512<<10, nil)
	eng.RunUntil(eng.Now() + sim.Millisecond) // in cache, not yet force-flushed
	if ost.Controller().Dirty() == 0 {
		t.Fatal("test setup: nothing dirty")
	}
	obj.Destroy()
	if ost.Controller().Dirty() != 0 {
		t.Fatalf("destroy left %d dirty", ost.Controller().Dirty())
	}
	if ost.Used() != 0 {
		t.Fatalf("destroy left %d used", ost.Used())
	}
	eng.Run()
}

func TestSetFillRejectsOutOfRange(t *testing.T) {
	_, fs := testFS(t, 95)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fs.OSTs[0].SetFill(1.5)
}

func TestPreloadNegativePanics(t *testing.T) {
	_, fs := testFS(t, 96)
	obj := fs.OSTs[0].NewObject()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	obj.Preload(-1)
}

func TestFabriclessBuildDeterminism(t *testing.T) {
	// Two identical builds produce identical OST capacity layouts and
	// identical first-write behaviour.
	run := func() (int64, sim.Time) {
		eng := sim.NewEngine()
		fs := Build(eng, TestNamespace(), rng.New(1234))
		client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
		var file *File
		fs.Create("det/f", 4, func(f *File) { file = f })
		eng.Run()
		client.WriteStream(file, 16<<20, 1<<20, nil)
		eng.Run()
		return fs.TotalUsed(), eng.Now()
	}
	u1, t1 := run()
	u2, t2 := run()
	if u1 != u2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", u1, t1, u2, t2)
	}
}
