package lustre

import (
	"fmt"

	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
)

// JournalMode selects how the OST's file system journal commits. Stock
// ldiskfs committed the journal synchronously into the data LUN on the
// write path; OLCF direct-funded "high-performance Lustre journaling"
// (§IV-D), which commits asynchronously off the write path.
type JournalMode int

// Journal modes.
const (
	// HPJournal is the funded asynchronous journaling (the production
	// configuration once the improvement landed).
	HPJournal JournalMode = iota
	// SyncJournal is the original behaviour: every flush pays a small
	// synchronous journal write into a dedicated LUN region, seeking
	// between journal and data.
	SyncJournal
)

// journalReserve is the LUN tail reserved for the journal region.
const journalReserve int64 = 128 << 20

// journalSyncBarrier is the per-commit ordering stall of synchronous
// ldiskfs journaling (transaction close + flush barrier).
const journalSyncBarrier = 10 * sim.Millisecond

// OST is one object storage target: a RAID-6 LUN behind a shared
// controller, exported through an OSS. Object writes accumulate in the
// controller's write-back cache per object and flush to disk as full
// stripes when the stream is sequential, or as partial-stripe (RMW)
// writes when fragmentation forces it.
type OST struct {
	ID     int
	eng    *sim.Engine
	group  *raid.Group
	ctrl   *Controller
	src    *rng.Source
	tracer *spantrace.Tracer

	// FlushDelay bounds how long a residual partial-stripe buffer may
	// sit before being forced to disk.
	FlushDelay sim.Time

	// Journal selects the commit mode (§IV-D ablation).
	Journal JournalMode

	used        int64 // bytes allocated to objects
	allocPtr    int64 // next sequential allocation LBA
	journalPtr  int64 // offset within the journal region (SyncJournal)
	uncommitted int   // flushes since the last journal commit
	// JournalBatch is how many flushes share one synchronous journal
	// commit (jbd2 groups transactions); 1 commits on every flush.
	JournalBatch int

	// Counters.
	WriteRPCs, ReadRPCs uint64
	BytesWritten        int64
	BytesRead           int64
	FragmentedFlushes   uint64
	SequentialFlushes   uint64
	JournalCommits      uint64
	// Integrity outcomes of read RPCs, as surfaced by the RAID layer:
	// EIO (unrecoverable stripe — the client gets an error, not data),
	// repaired-inline, and silently-corrupt-served.
	ReadEIOs      uint64
	RepairedReads uint64
	CorruptReads  uint64
}

// NewOST wires an OST over a RAID group and its SSU controller.
func NewOST(eng *sim.Engine, id int, group *raid.Group, ctrl *Controller, src *rng.Source) *OST {
	return &OST{
		ID: id, eng: eng, group: group, ctrl: ctrl, src: src,
		FlushDelay:   50 * sim.Millisecond,
		JournalBatch: 4,
	}
}

// SetTracer attaches the tracing plane to this OST and everything
// below it (RAID group and member disks).
func (o *OST) SetTracer(tr *spantrace.Tracer) {
	o.tracer = tr
	o.group.SetTracer(tr)
}

// Group exposes the underlying RAID group (QA and monitoring use).
func (o *OST) Group() *raid.Group { return o.group }

// Controller returns the SSU controller this OST shares.
func (o *OST) Controller() *Controller { return o.ctrl }

// Capacity returns the LUN capacity in bytes.
func (o *OST) Capacity() int64 { return o.group.Capacity() }

// Used returns bytes allocated on the OST.
func (o *OST) Used() int64 { return o.used }

// Fill returns the fill fraction in [0, 1].
func (o *OST) Fill() float64 { return float64(o.used) / float64(o.Capacity()) }

// SetFill pre-populates the OST to the given fill fraction without
// performing I/O (used to study fill-level degradation, Lesson 10).
func (o *OST) SetFill(frac float64) {
	if frac < 0 || frac > 1 {
		panic("lustre: fill fraction out of range") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	o.used = int64(frac * float64(o.Capacity()))
	o.allocPtr = o.used
}

// FragmentProb returns the probability that the next extent allocation
// is discontiguous. Allocation stays essentially contiguous below 50%
// fill and degrades steeply beyond — the behaviour behind OLCF's
// observation of performance loss past 50-70% utilization.
func (o *OST) FragmentProb() float64 {
	f := o.Fill()
	if f <= 0.5 {
		return 0.02
	}
	p := 0.02 + (f-0.5)/0.45*0.85
	if p > 0.9 {
		p = 0.9
	}
	return p
}

// Object is a per-file allocation on one OST. Writes to the same object
// are stream-detected; its buffered bytes live in the controller cache
// until flushed.
type Object struct {
	ost        *OST
	Size       int64
	buffered   int64
	readPtr    int64
	flushTimer *sim.Event
}

// NewObject allocates an object on the OST.
func (o *OST) NewObject() *Object { return &Object{ost: o} }

// Preload grows the object by n bytes without performing I/O — used to
// stage populated namespaces for tool and purge studies where only
// metadata shape matters.
func (obj *Object) Preload(n int64) {
	if n < 0 {
		panic("lustre: negative preload") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	obj.Size += n
	obj.ost.used += n
}

// seqAlloc returns the next sequential LBA for n bytes, wrapping if the
// device end is reached. Allocations are extent-aligned the way
// obdfilter lays out objects: stripe-aligned for stripe-sized-or-larger
// extents (so streaming writes stay full-stripe and avoid RMW),
// chunk-aligned below that.
func (o *OST) seqAlloc(n int64) int64 {
	align := o.group.Config().ChunkSize
	if n >= o.stripe() {
		align = o.stripe()
	}
	if rem := o.allocPtr % align; rem != 0 {
		o.allocPtr += align - rem
	}
	if o.allocPtr+n > o.dataCap() {
		o.allocPtr = 0
	}
	lba := o.allocPtr
	o.allocPtr += n
	return lba
}

// randAlloc returns a random LBA for n bytes within the used region
// (fragmented placement).
func (o *OST) randAlloc(n int64) int64 {
	limit := o.used
	if limit < n {
		limit = n
	}
	if limit+n > o.dataCap() {
		limit = o.dataCap() - n
	}
	if limit <= 0 {
		return 0
	}
	return o.src.Int63n(limit)
}

// stripe returns the full-stripe size (the optimal I/O unit; 1 MiB for
// the Spider geometry).
func (o *OST) stripe() int64 { return o.group.Config().StripeDataSize() }

// dataCap is the LUN capacity available to data (journal region
// excluded).
func (o *OST) dataCap() int64 { return o.Capacity() - journalReserve }

// flushToDisk writes one data extent, preceded by a synchronous journal
// commit into the journal region when SyncJournal is configured — the
// journal/data head ping-pong the funded async journaling eliminated.
func (o *OST) flushToDisk(lba, n int64, after func()) {
	fsp := o.tracer.Begin(spantrace.OST, "flush", o.tracer.Cur(), n)
	if fsp != 0 {
		inner := after
		after = func() {
			o.tracer.End(fsp)
			if inner != nil {
				inner()
			}
		}
	}
	if o.Journal == SyncJournal {
		o.uncommitted++
		if batch := o.JournalBatch; batch < 1 || o.uncommitted >= batch {
			o.uncommitted = 0
			o.JournalCommits++
			// The journal record itself lands in the controller cache
			// (a 4 KiB append within the reserved region); the cost the
			// funded async journaling removed is the synchronous
			// ordering barrier the write path stalls on.
			o.journalPtr += 4096
			if o.journalPtr >= journalReserve-4096 {
				o.journalPtr = 0
			}
			jsp := o.tracer.Begin(spantrace.OST, "journal-commit", fsp, 4096)
			o.ctrl.AdmitWrite(4096, nil)
			o.eng.After(journalSyncBarrier, func() {
				o.tracer.End(jsp)
				o.ctrl.Flushed(4096)
				old := o.tracer.Swap(fsp)
				o.group.Write(lba, n, after)
				o.tracer.Swap(old)
			})
			return
		}
	} else {
		o.JournalCommits++ // async commits happen off the write path
	}
	old := o.tracer.Swap(fsp)
	o.group.Write(lba, n, after)
	o.tracer.Swap(old)
}

// Write ingests size bytes of an object write RPC. done fires when the
// data is accepted into controller cache (write-back ack). Disk flushes
// proceed asynchronously: sequential streams flush as full stripes,
// fragmented allocations flush immediately as partial-stripe RMW.
func (obj *Object) Write(size int64, done func()) {
	o := obj.ost
	if size <= 0 {
		panic("lustre: object write of non-positive size") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	o.WriteRPCs++
	sp := o.tracer.Begin(spantrace.OST, "ost-write", o.tracer.Cur(), size)
	o.ctrl.AdmitWrite(size, func() {
		o.BytesWritten += size
		o.used += size
		obj.Size += size
		obj.buffered += size
		old := o.tracer.Swap(sp)
		if o.src.Bool(o.FragmentProb()) {
			obj.flushFragmented()
		} else {
			obj.flushFullStripes()
		}
		obj.armFlushTimer()
		o.tracer.Swap(old)
		// The span covers admission through the write-back ack; the
		// flush continues underneath as the "flush" child.
		o.tracer.End(sp)
		if done != nil {
			done()
		}
	})
}

// WriteSync ingests a write RPC that acknowledges only after the data
// reaches disk (no write-back ack) — the semantics obdfilter-survey
// measures, and what the benchmark suite uses for block-vs-FS overhead
// comparisons. random forces overwrite-in-place at a random position
// within the used region (a random-update workload); otherwise
// placement follows the allocator's fill-dependent policy.
func (obj *Object) WriteSync(size int64, random bool, done func()) {
	o := obj.ost
	if size <= 0 {
		panic("lustre: object write of non-positive size") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	o.WriteRPCs++
	sp := o.tracer.Begin(spantrace.OST, "ost-writesync", o.tracer.Cur(), size)
	o.ctrl.AdmitWrite(size, func() {
		o.BytesWritten += size
		o.used += size
		obj.Size += size
		var lba int64
		if random || o.src.Bool(o.FragmentProb()) {
			lba = o.randAlloc(size)
			o.FragmentedFlushes++
		} else {
			lba = o.seqAlloc(size)
			o.SequentialFlushes++
		}
		old := o.tracer.Swap(sp)
		o.flushToDisk(lba, size, func() {
			o.ctrl.Flushed(size)
			o.tracer.End(sp)
			if done != nil {
				done()
			}
		})
		o.tracer.Swap(old)
	})
}

// flushFullStripes writes out as many complete stripes as are buffered,
// sequentially allocated (no RMW).
func (obj *Object) flushFullStripes() {
	o := obj.ost
	s := obj.ost.stripe()
	for obj.buffered >= s {
		obj.buffered -= s
		lba := o.seqAlloc(s)
		o.SequentialFlushes++
		n := s
		o.flushToDisk(lba, n, func() { o.ctrl.Flushed(n) })
	}
}

// flushFragmented forces everything buffered to a random location as a
// partial-stripe write (read-modify-write at the RAID layer unless it
// happens to be stripe-sized and aligned).
func (obj *Object) flushFragmented() {
	o := obj.ost
	if obj.buffered <= 0 {
		return
	}
	n := obj.buffered
	obj.buffered = 0
	lba := o.randAlloc(n)
	o.FragmentedFlushes++
	o.flushToDisk(lba, n, func() { o.ctrl.Flushed(n) })
}

// armFlushTimer (re)schedules the forced flush of a residual partial
// buffer so dirty data is bounded in time.
func (obj *Object) armFlushTimer() {
	if obj.buffered <= 0 {
		if obj.flushTimer != nil {
			obj.flushTimer.Cancel()
			obj.flushTimer = nil
		}
		return
	}
	if obj.flushTimer != nil && obj.flushTimer.Pending() {
		return
	}
	o := obj.ost
	obj.flushTimer = o.eng.After(o.FlushDelay, func() {
		obj.flushTimer = nil
		if obj.buffered > 0 {
			n := obj.buffered
			obj.buffered = 0
			lba := o.seqAlloc(n)
			o.FragmentedFlushes++
			// Timer flushes belong to no single request: clear the
			// request context so the flush is not misattributed to
			// whatever span happens to be current when the timer fires.
			old := o.tracer.Swap(0)
			o.flushToDisk(lba, n, func() { o.ctrl.Flushed(n) })
			o.tracer.Swap(old)
		}
	})
}

// Flush forces any residual buffered bytes to disk (file close/fsync).
func (obj *Object) Flush(done func()) {
	o := obj.ost
	if obj.flushTimer != nil {
		obj.flushTimer.Cancel()
		obj.flushTimer = nil
	}
	if obj.buffered <= 0 {
		o.eng.After(0, done)
		return
	}
	n := obj.buffered
	obj.buffered = 0
	lba := o.seqAlloc(n)
	o.flushToDisk(lba, n, func() {
		o.ctrl.Flushed(n)
		if done != nil {
			done()
		}
	})
}

// Read services a read RPC of size bytes. random selects a seeky access
// pattern (analytics) versus a streaming one. done fires when data is
// returned (read-through: controller service + disk read).
func (obj *Object) Read(size int64, random bool, done func()) {
	o := obj.ost
	if size <= 0 {
		panic("lustre: object read of non-positive size") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	o.ReadRPCs++
	sp := o.tracer.Begin(spantrace.OST, "ost-read", o.tracer.Cur(), size)
	o.ctrl.ServiceRead(size, func() {
		o.BytesRead += size
		var lba int64
		if random || o.src.Bool(o.FragmentProb()) {
			lba = o.randAlloc(size)
		} else {
			if obj.readPtr+size > o.dataCap() {
				obj.readPtr = 0
			}
			lba = obj.readPtr
			obj.readPtr += size
		}
		old := o.tracer.Swap(sp)
		o.group.ReadChecked(lba, size, func(oc raid.ReadOutcome) {
			if oc.EIO {
				o.ReadEIOs++
			}
			o.RepairedReads += uint64(oc.Repaired)
			o.CorruptReads += uint64(oc.Undetected)
			o.tracer.End(sp)
			if done != nil {
				done()
			}
		})
		o.tracer.Swap(old)
	})
}

// Destroy releases the object's bytes (unlink).
func (obj *Object) Destroy() {
	o := obj.ost
	if obj.flushTimer != nil {
		obj.flushTimer.Cancel()
		obj.flushTimer = nil
	}
	if obj.buffered > 0 {
		o.ctrl.Flushed(obj.buffered) // dirty data discarded with the object
		obj.buffered = 0
	}
	o.used -= obj.Size
	if o.used < 0 {
		o.used = 0
	}
	obj.Size = 0
}

func (o *OST) String() string {
	return fmt.Sprintf("ost%d(fill=%.1f%%)", o.ID, o.Fill()*100)
}
