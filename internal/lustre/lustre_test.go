package lustre

import (
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

func testFS(t *testing.T, seed uint64) (*sim.Engine, *FS) {
	t.Helper()
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(seed))
	return eng, fs
}

func TestBuildShapes(t *testing.T) {
	_, fs := testFS(t, 1)
	if len(fs.OSTs) != 4 || len(fs.OSSes) != 2 || len(fs.Ctrls) != 1 {
		t.Fatalf("shape: %d osts, %d osses, %d ctrls", len(fs.OSTs), len(fs.OSSes), len(fs.Ctrls))
	}
	for i := range fs.OSTs {
		if oss := fs.OSSOf(i); oss < 0 || oss >= 2 {
			t.Fatalf("ost %d mapped to oss %d", i, oss)
		}
	}
}

func TestSpider2NamespaceShape(t *testing.T) {
	p := Spider2Namespace()
	if p.NumSSU*p.OSTsPerSSU != 1008 {
		t.Fatalf("OSTs per namespace = %d, want 1008", p.NumSSU*p.OSTsPerSSU)
	}
	if p.NumSSU*p.OSSPerSSU != 144 {
		t.Fatalf("OSSes per namespace = %d, want 144", p.NumSSU*p.OSSPerSSU)
	}
	// 10,080 disks * 2 TB ~ 20 PB raw per namespace; 16 PB data.
	raw := int64(p.NumSSU*p.OSTsPerSSU*p.GroupCfg.Width()) * p.DiskCfg.Capacity
	if raw != 20_160_000_000_000_000/1*2016/2016 {
		// 10,080 * 2e12 = 2.016e16
		if raw != 20_160_000_000_000_000 {
			t.Fatalf("raw capacity = %d", raw)
		}
	}
	scaled := p.Scale(6)
	if scaled.NumSSU != 3 {
		t.Fatalf("scaled SSUs = %d", scaled.NumSSU)
	}
}

func TestCreateWriteReadUnlink(t *testing.T) {
	eng, fs := testFS(t, 2)
	tr := NullTransport{Eng: eng}
	client := NewClient(0, topology.Coord{}, fs, tr)
	var file *File
	fs.Create("proj/run1/out.dat", 2, func(f *File) { file = f })
	eng.Run()
	if file == nil {
		t.Fatal("create callback never ran")
	}
	if file.StripeCount() != 2 {
		t.Fatalf("stripes = %d", file.StripeCount())
	}

	var wrote int64
	client.WriteStream(file, 8<<20, 1<<20, func(n int64) { wrote = n })
	eng.Run()
	if wrote != 8<<20 {
		t.Fatalf("wrote %d", wrote)
	}
	if file.Size() != 8<<20 {
		t.Fatalf("file size %d", file.Size())
	}
	if client.BytesWritten != 8<<20 {
		t.Fatalf("client counter %d", client.BytesWritten)
	}

	var read int64
	client.ReadStream(file, 4<<20, 1<<20, false, func(n int64) { read = n })
	eng.Run()
	if read != 4<<20 {
		t.Fatalf("read %d", read)
	}

	fs.Unlink("proj/run1/out.dat", nil)
	eng.Run()
	if fs.NumFiles != 0 {
		t.Fatalf("files = %d after unlink", fs.NumFiles)
	}
	if u := fs.TotalUsed(); u != 0 {
		t.Fatalf("used = %d after unlink", u)
	}
}

func TestWriteDistributesAcrossStripes(t *testing.T) {
	eng, fs := testFS(t, 3)
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	var file *File
	fs.Create("wide", 4, func(f *File) { file = f })
	eng.Run()
	client.WriteStream(file, 16<<20, 1<<20, nil)
	eng.Run()
	for i, obj := range file.Objects {
		if obj.Size != 4<<20 {
			t.Fatalf("stripe %d got %d bytes, want 4 MiB", i, obj.Size)
		}
	}
}

func TestStonewallStopsAtDeadline(t *testing.T) {
	eng, fs := testFS(t, 4)
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	var file *File
	fs.Create("wall", 4, func(f *File) { file = f })
	eng.Run()
	deadline := eng.Now() + 2*sim.Second
	var wrote int64
	client.WriteUntil(file, deadline, 1<<20, func(n int64) { wrote = n })
	eng.Run()
	if wrote <= 0 {
		t.Fatal("stonewall wrote nothing")
	}
	// Completion should come shortly after the deadline (drain time), not
	// run unbounded.
	if eng.Now() > deadline+5*sim.Second {
		t.Fatalf("stonewall drained at %v, deadline %v", eng.Now(), deadline)
	}
}

func TestMDSCountersAndStatGlimpse(t *testing.T) {
	eng, fs := testFS(t, 5)
	var file *File
	fs.Create("f1", 4, func(f *File) { file = f })
	eng.Run()
	if fs.MDS.Creates != 1 {
		t.Fatalf("creates = %d", fs.MDS.Creates)
	}
	before := fs.OSSes[0].RPCs + fs.OSSes[1].RPCs
	statted := false
	fs.Stat(file, func() { statted = true })
	eng.Run()
	if !statted || fs.MDS.Stats != 1 {
		t.Fatalf("stat: done=%v count=%d", statted, fs.MDS.Stats)
	}
	glimpses := fs.OSSes[0].RPCs + fs.OSSes[1].RPCs - before
	if glimpses != 4 {
		t.Fatalf("glimpse RPCs = %d, want stripeCount=4", glimpses)
	}
}

func TestStatCostScalesWithStripeCount(t *testing.T) {
	// When the OSS side is the constraint, stat on stripe-4 files takes
	// ~2x the wall time of stripe-1 (4 glimpses over 2 OSSes vs 1): the
	// paper's "set stripe count 1 on small files" guidance.
	run := func(stripes int) sim.Time {
		eng := sim.NewEngine()
		p := TestNamespace()
		p.MDSCfg.Stat = sim.Microsecond // make glimpses the bottleneck
		p.OSSCfg.Cores = 1
		fs := Build(eng, p, rng.New(6))
		var file *File
		fs.Create("f", stripes, func(f *File) { file = f })
		eng.Run()
		start := eng.Now()
		for i := 0; i < 500; i++ {
			fs.Stat(file, nil)
		}
		eng.Run()
		return eng.Now() - start
	}
	t1, t4 := run(1), run(4)
	if float64(t4) < 1.5*float64(t1) {
		t.Fatalf("stat stripe4 (%v) should cost ~2x stripe1 (%v)", t4, t1)
	}
}

func TestFullStripeWritesAvoidRMW(t *testing.T) {
	eng, fs := testFS(t, 7)
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	var file *File
	fs.Create("aligned", 1, func(f *File) { file = f })
	eng.Run()
	client.WriteStream(file, 32<<20, 1<<20, nil)
	eng.Run()
	ost := fs.OSTs[file.OSTIndices[0]]
	if ost.SequentialFlushes == 0 {
		t.Fatal("no sequential full-stripe flushes")
	}
	g := ost.Group()
	if g.PartialWrite > g.FullStripeWrite/4 {
		t.Fatalf("too many RMW writes for aligned stream: partial=%d full=%d",
			g.PartialWrite, g.FullStripeWrite)
	}
}

func TestHighFillCausesFragmentation(t *testing.T) {
	eng, fs := testFS(t, 8)
	for _, ost := range fs.OSTs {
		ost.SetFill(0.9)
	}
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	var file *File
	fs.Create("frag", 1, func(f *File) { file = f })
	eng.Run()
	client.WriteStream(file, 32<<20, 1<<20, nil)
	eng.Run()
	ost := fs.OSTs[file.OSTIndices[0]]
	if ost.FragmentedFlushes == 0 {
		t.Fatal("90% full OST produced no fragmented flushes")
	}
	if ost.FragmentProb() < 0.5 {
		t.Fatalf("fragment probability at 90%% fill = %f", ost.FragmentProb())
	}
}

func TestFillLevelDegradesThroughput(t *testing.T) {
	run := func(fill float64) float64 {
		eng, fs := testFS(t, 9)
		for _, ost := range fs.OSTs {
			ost.SetFill(fill)
		}
		client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
		var file *File
		fs.Create("f", 4, func(f *File) { file = f })
		eng.Run()
		start := eng.Now()
		total := int64(64 << 20)
		client.WriteStream(file, total, 1<<20, nil)
		eng.Run()
		return float64(total) / 1e6 / (eng.Now() - start).Seconds()
	}
	empty := run(0.1)
	full := run(0.9)
	if full >= empty*0.9 {
		t.Fatalf("90%% full (%.1f MB/s) should be clearly slower than 10%% full (%.1f MB/s)", full, empty)
	}
}

func TestControllerCacheBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	p := TestNamespace()
	p.CtrlCfg.CacheBytes = 4 << 20 // tiny cache to force stalls
	fs := Build(eng, p, rng.New(10))
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	var file *File
	fs.Create("big", 1, func(f *File) { file = f })
	eng.Run()
	client.WriteStream(file, 64<<20, 1<<20, nil)
	eng.Run()
	ctrl := fs.Ctrls[0]
	if ctrl.CacheStalls == 0 {
		t.Fatal("expected cache stalls with 4 MiB cache and 64 MiB write")
	}
	if ctrl.Dirty() != 0 {
		t.Fatalf("dirty = %d after quiesce", ctrl.Dirty())
	}
	if ctrl.PeakDirty > 5<<20 {
		t.Fatalf("peak dirty %d exceeded cache bound", ctrl.PeakDirty)
	}
}

func TestMkdirAllAndOpen(t *testing.T) {
	eng, fs := testFS(t, 11)
	fs.MkdirAll("a/b/c", nil)
	eng.Run()
	if fs.MDS.Mkdirs != 3 {
		t.Fatalf("mkdirs = %d", fs.MDS.Mkdirs)
	}
	fs.Create("a/b/c/file", 1, nil)
	eng.Run()
	var got *File
	fs.Open("a/b/c/file", func(f *File) { got = f })
	eng.Run()
	if got == nil {
		t.Fatal("open failed to resolve")
	}
	var missing *File = &File{}
	fs.Open("a/b/c/nope", func(f *File) { missing = f })
	eng.Run()
	if missing != nil {
		t.Fatal("open of missing file should yield nil")
	}
}

func TestWalkDeterministicOrder(t *testing.T) {
	eng, fs := testFS(t, 12)
	for _, p := range []string{"z/1", "a/2", "a/1", "m"} {
		fs.Create(p, 1, nil)
	}
	eng.Run()
	var order []string
	fs.Walk(nil, func(f *File) { order = append(order, f.Path) })
	want := []string{"m", "a/1", "a/2", "z/1"}
	if len(order) != len(want) {
		t.Fatalf("walk found %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("walk order %v, want %v", order, want)
		}
	}
}

func TestCreateOnPlacement(t *testing.T) {
	eng, fs := testFS(t, 13)
	var file *File
	fs.CreateOn("placed", []int{3, 1}, func(f *File) { file = f })
	eng.Run()
	if file.OSTIndices[0] != 3 || file.OSTIndices[1] != 1 {
		t.Fatalf("placement ignored: %v", file.OSTIndices)
	}
}

func TestDuplicateCreatePanics(t *testing.T) {
	eng, fs := testFS(t, 14)
	fs.Create("dup", 1, nil)
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fs.Create("dup", 1, nil)
}

func TestRoundRobinAllocatorRotates(t *testing.T) {
	eng, fs := testFS(t, 15)
	counts := map[int]int{}
	for i := 0; i < 8; i++ {
		fs.Create(pathN(i), 1, func(f *File) {
			counts[f.OSTIndices[0]]++
		})
	}
	eng.Run()
	for ost, c := range counts {
		if c != 2 {
			t.Fatalf("ost %d allocated %d files; round robin should balance (counts=%v)", ost, c, counts)
		}
	}
}

func pathN(i int) string {
	return string(rune('a'+i)) + "/f"
}
