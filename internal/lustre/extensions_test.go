package lustre

import (
	"fmt"
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// --- §IV-D high-performance journaling ---

func journalRun(t *testing.T, mode JournalMode) float64 {
	t.Helper()
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(77))
	for _, ost := range fs.OSTs {
		ost.Journal = mode
	}
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	var file *File
	fs.Create("j/data", 4, func(f *File) { file = f })
	eng.Run()
	start := eng.Now()
	total := int64(64 << 20)
	client.WriteStream(file, total, 1<<20, nil)
	eng.Run() // drain to disk: journaling costs show at flush time
	return float64(total) / (eng.Now() - start).Seconds() / 1e6
}

func TestHPJournalingBeatsSyncJournal(t *testing.T) {
	hp := journalRun(t, HPJournal)
	sync := journalRun(t, SyncJournal)
	gain := hp / sync
	if gain < 1.2 {
		t.Fatalf("HP journaling gain = %.2fx (hp %.0f vs sync %.0f MB/s); the funded feature should matter", gain, hp, sync)
	}
	if gain > 12 {
		t.Fatalf("HP journaling gain = %.2fx implausibly large", gain)
	}
}

func TestSyncJournalCountsCommits(t *testing.T) {
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(78))
	fs.OSTs[0].Journal = SyncJournal
	var file *File
	fs.CreateOn("j/f", []int{0}, func(f *File) { file = f })
	eng.Run()
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	client.WriteStream(file, 8<<20, 1<<20, nil)
	eng.Run()
	if fs.OSTs[0].JournalCommits == 0 {
		t.Fatal("no journal commits recorded")
	}
}

// --- §IV-D imperative recovery ---

func TestOSSFailStallsAndReplays(t *testing.T) {
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(79))
	oss := fs.OSSes[0]
	oss.Fail()
	done := false
	oss.Service(1<<20, func() { done = true })
	eng.Run()
	if done {
		t.Fatal("RPC completed against a failed OSS")
	}
	if oss.StalledRPCs != 1 {
		t.Fatalf("stalled = %d", oss.StalledRPCs)
	}
	oss.Recover()
	eng.Run()
	if !done {
		t.Fatal("stalled RPC not replayed at recovery")
	}
	oss.Recover() // idempotent
}

func TestImperativeRecoveryShortensOutage(t *testing.T) {
	run := func(imperative bool) sim.Time {
		eng := sim.NewEngine()
		fs := Build(eng, TestNamespace(), rng.New(80))
		var outage sim.Time
		FailOSS(fs, 0, DefaultRecovery(imperative), func(d sim.Time) { outage = d })
		eng.Run()
		return outage
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("IR outage %v not shorter than %v", with, without)
	}
	// 15+5+30=50s vs 15+300+30=345s.
	if with != 50*sim.Second || without != 345*sim.Second {
		t.Fatalf("outages = %v / %v, want 50s / 345s", with, without)
	}
}

func TestFailOSSStallsApplicationWrites(t *testing.T) {
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(81))
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	var file *File
	fs.CreateOn("app/f", []int{0}, func(f *File) { file = f }) // OST0 -> OSS0
	eng.Run()
	cfg := DefaultRecovery(true)
	FailOSS(fs, 0, cfg, nil)
	var doneAt sim.Time
	client.WriteStream(file, 4<<20, 1<<20, func(int64) { doneAt = eng.Now() })
	eng.Run()
	if doneAt < cfg.OutageDuration() {
		t.Fatalf("write finished at %v, before the %v outage ended", doneAt, cfg.OutageDuration())
	}
}

func TestDoubleFailReturnsError(t *testing.T) {
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(82))
	if err := FailOSS(fs, 0, DefaultRecovery(true), nil); err != nil {
		t.Fatalf("first fault: %v", err)
	}
	if err := FailOSS(fs, 0, DefaultRecovery(true), nil); err == nil {
		t.Fatal("faulting a down OSS should return an error")
	}
	if fs.OSSes[0].DoubleFaults != 1 {
		t.Fatalf("DoubleFaults = %d, want 1", fs.OSSes[0].DoubleFaults)
	}
	if err := FailOSS(fs, len(fs.OSSes), DefaultRecovery(true), nil); err == nil {
		t.Fatal("out-of-range OSS index should return an error")
	}
	// The run stays healthy: recovery completes as scheduled.
	eng.Run()
	if fs.OSSes[0].Down() {
		t.Fatal("OSS should have recovered")
	}
}

func TestRecoverReplaysStalledRPCsFIFO(t *testing.T) {
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(85))
	oss := fs.OSSes[0]
	oss.Fail()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		oss.Service(1<<20, func() { order = append(order, i) })
	}
	if oss.StalledRPCs != 5 {
		t.Fatalf("stalled = %d, want 5", oss.StalledRPCs)
	}
	oss.Recover()
	eng.Run()
	if len(order) != 5 {
		t.Fatalf("completions = %d, want 5", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("replay order %v, want FIFO arrival order", order)
		}
	}
}

func TestRPCWatchdogCountsStalledSends(t *testing.T) {
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(86))
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	client.RPCTimeout = 100 * sim.Second
	var file *File
	fs.CreateOn("app/f", []int{0}, func(f *File) { file = f })
	eng.Run()
	// 345 s outage under exponential backoff: the watchdog fires at
	// t=100 s (base) and t=300 s (backed-off 200 s arm); the 400 s arm
	// is cancelled when the OSS recovers at 345 s.
	cfg := DefaultRecovery(false)
	if err := FailOSS(fs, 0, cfg, nil); err != nil {
		t.Fatal(err)
	}
	client.WriteStream(file, 1<<20, 1<<20, nil)
	eng.Run()
	if client.RPCTimeouts != 2 || client.RPCRetries != 2 {
		t.Fatalf("timeouts/retries = %d/%d, want 2/2 across the %v outage",
			client.RPCTimeouts, client.RPCRetries, cfg.OutageDuration())
	}
	if client.BackoffWaits != 1 || client.BackoffWait != 100*sim.Second {
		t.Fatalf("backoff waits/extra = %d/%v, want 1/100s",
			client.BackoffWaits, client.BackoffWait)
	}
	// A healthy write trips no watchdog.
	before := client.RPCTimeouts
	client.WriteStream(file, 4<<20, 1<<20, nil)
	eng.Run()
	if client.RPCTimeouts != before {
		t.Fatalf("healthy write tripped %d watchdogs", client.RPCTimeouts-before)
	}
}

// --- DNE ---

func TestDNEShardsMetadata(t *testing.T) {
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(83))
	fs.EnableDNE(4, Spider2MDS())
	if len(fs.MDTs) != 4 {
		t.Fatalf("MDTs = %d", len(fs.MDTs))
	}
	// Files in distinct top-level dirs land on multiple MDTs.
	for i := 0; i < 64; i++ {
		fs.Create(fmt.Sprintf("proj%02d/file", i), 1, nil)
	}
	eng.Run()
	active := 0
	var total uint64
	for _, m := range fs.MDTs {
		if m.Creates > 0 {
			active++
		}
		total += m.Creates
	}
	if total != 64 {
		t.Fatalf("creates across MDTs = %d", total)
	}
	if active < 3 {
		t.Fatalf("only %d MDTs received creates; sharding broken", active)
	}
	if fs.MetadataOps() != total {
		t.Fatalf("MetadataOps = %d, want %d", fs.MetadataOps(), total)
	}
}

func TestDNESameDirSameMDT(t *testing.T) {
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(84))
	fs.EnableDNE(4, Spider2MDS())
	for i := 0; i < 20; i++ {
		fs.Create(fmt.Sprintf("fixed/f%02d", i), 1, nil)
	}
	eng.Run()
	nonzero := 0
	for _, m := range fs.MDTs {
		if m.Creates > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("one directory spread across %d MDTs; must stay on its shard", nonzero)
	}
}

func TestDNERaisesMetadataThroughput(t *testing.T) {
	storm := func(mdts int) sim.Time {
		eng := sim.NewEngine()
		fs := Build(eng, TestNamespace(), rng.New(85))
		if mdts > 1 {
			fs.EnableDNE(mdts, Spider2MDS())
		}
		start := eng.Now()
		issued := 0
		var worker func(w int)
		worker = func(w int) {
			if issued >= 2000 {
				return
			}
			i := issued
			issued++
			fs.Create(fmt.Sprintf("dir%03d/f%06d", i%64, i), 1, func(*File) { worker(w) })
		}
		for w := 0; w < 32; w++ {
			worker(w)
		}
		eng.Run()
		return eng.Now() - start
	}
	single := storm(1)
	dne := storm(4)
	speedup := float64(single) / float64(dne)
	if speedup < 2 {
		t.Fatalf("DNE(4) speedup = %.2fx, want >2x", speedup)
	}
}
