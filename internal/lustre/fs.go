package lustre

import (
	"fmt"
	"sort"
	"strings"

	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
)

// File is a striped Lustre file: metadata on the MDS, data objects on
// StripeCount OSTs.
type File struct {
	Path       string
	StripeSize int64
	OSTIndices []int
	Objects    []*Object
	ATime      sim.Time
	MTime      sim.Time
	CTime      sim.Time
}

// Size returns the file size (sum of object sizes).
func (f *File) Size() int64 {
	var s int64
	for _, o := range f.Objects {
		s += o.Size
	}
	return s
}

// StripeCount returns the number of OSTs the file stripes over.
func (f *File) StripeCount() int { return len(f.OSTIndices) }

// Dir is a directory in the namespace tree.
type Dir struct {
	Path  string
	Dirs  map[string]*Dir
	Files map[string]*File
}

func newDir(path string) *Dir {
	return &Dir{Path: path, Dirs: map[string]*Dir{}, Files: map[string]*File{}}
}

// FS is one Lustre namespace: a single MDS, a set of OSTs grouped under
// SSU controllers and exported by OSSes, and the directory tree.
type FS struct {
	Name string
	eng  *sim.Engine

	// MDS is the primary metadata server (MDT0). With DNE (Lustre 2.4's
	// Distributed Namespace, which the paper recommends combining with
	// multiple namespaces), MDTs holds additional metadata targets and
	// top-level directories are hashed across them.
	MDS    *MDS
	MDTs   []*MDS
	OSTs   []*OST
	OSSes  []*OSS
	Ctrls  []*Controller
	ostOSS []int // OST index -> OSS index

	DefaultStripeCount int
	DefaultStripeSize  int64

	root    *Dir
	nextOST int

	NumFiles int64
}

// NewFS assembles a namespace from prebuilt components. ostOSS maps each
// OST to its serving OSS.
func NewFS(eng *sim.Engine, name string, mds *MDS, osts []*OST, osses []*OSS, ctrls []*Controller, ostOSS []int) *FS {
	if len(ostOSS) != len(osts) {
		panic("lustre: ostOSS mapping length mismatch") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return &FS{
		Name: name, eng: eng, MDS: mds, MDTs: []*MDS{mds}, OSTs: osts, OSSes: osses, Ctrls: ctrls,
		ostOSS: ostOSS, DefaultStripeCount: 4, DefaultStripeSize: 1 << 20,
		root: newDir("/"),
	}
}

// EnableDNE adds n-1 extra metadata targets (n total), sharding
// top-level directories across them by name hash. Legacy clients
// blocked DNE at OLCF; the paper recommends DNE plus multiple
// namespaces once clients allow it.
func (fs *FS) EnableDNE(n int, cfg MDSConfig) {
	for len(fs.MDTs) < n {
		fs.MDTs = append(fs.MDTs, NewMDS(fs.eng, cfg))
	}
}

// mdtFor returns the metadata target owning path: MDT0 without DNE,
// otherwise the hash of the top-level directory selects the shard.
func (fs *FS) mdtFor(path string) *MDS {
	if len(fs.MDTs) <= 1 {
		return fs.MDS
	}
	parts := splitPath(path)
	if len(parts) == 0 {
		return fs.MDS
	}
	var h uint32 = 2166136261
	for _, c := range []byte(parts[0]) {
		h = (h ^ uint32(c)) * 16777619
	}
	return fs.MDTs[int(h)%len(fs.MDTs)]
}

// MetadataOps sums operations across all metadata targets.
func (fs *FS) MetadataOps() uint64 {
	var total uint64
	for _, m := range fs.MDTs {
		total += m.Ops()
	}
	return total
}

// Engine returns the engine the namespace runs on.
func (fs *FS) Engine() *sim.Engine { return fs.eng }

// SetTracer attaches the spantrace plane to every instrumented layer
// under this namespace (OSSes, OSTs, RAID groups, disks) and binds the
// tracer to the namespace's engine. Clients opt in individually via
// Client.Tracer.
func (fs *FS) SetTracer(tr *spantrace.Tracer) {
	tr.Bind(fs.eng)
	for _, s := range fs.OSSes {
		s.tracer = tr
	}
	for _, o := range fs.OSTs {
		o.SetTracer(tr)
	}
}

// OSSOf returns the OSS index serving OST ost.
func (fs *FS) OSSOf(ost int) int { return fs.ostOSS[ost] }

// Root returns the root directory.
func (fs *FS) Root() *Dir { return fs.root }

// TotalCapacity returns the namespace capacity in bytes.
func (fs *FS) TotalCapacity() int64 {
	var c int64
	for _, o := range fs.OSTs {
		c += o.Capacity()
	}
	return c
}

// TotalUsed returns allocated bytes across OSTs.
func (fs *FS) TotalUsed() int64 {
	var u int64
	for _, o := range fs.OSTs {
		u += o.Used()
	}
	return u
}

// Fill returns the namespace fill fraction.
func (fs *FS) Fill() float64 { return float64(fs.TotalUsed()) / float64(fs.TotalCapacity()) }

func splitPath(path string) []string {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil
	}
	return strings.Split(path, "/")
}

// lookupDir walks to the directory containing the final path element,
// creating intermediate directories if create is set (without charging
// MDS time — use MkdirAll for the charged operation).
func (fs *FS) lookupDir(parts []string, create bool) (*Dir, bool) {
	d := fs.root
	for _, p := range parts {
		next, ok := d.Dirs[p]
		if !ok {
			if !create {
				return nil, false
			}
			next = newDir(d.Path + p + "/")
			d.Dirs[p] = next
		}
		d = next
	}
	return d, true
}

// MkdirAll creates the directory path (charging one MDS mkdir per
// missing component) and calls done.
func (fs *FS) MkdirAll(path string, done func()) {
	parts := splitPath(path)
	missing := 0
	d := fs.root
	for _, p := range parts {
		next, ok := d.Dirs[p]
		if !ok {
			missing++
			next = newDir(d.Path + p + "/")
			d.Dirs[p] = next
		}
		d = next
	}
	if missing == 0 {
		missing = 1 // lookup still costs one op
	}
	b := sim.NewBarrier(done)
	mdt := fs.mdtFor(path)
	for i := 0; i < missing; i++ {
		b.Add(1)
		mdt.mkdir(b.Done)
	}
	b.Arm()
}

// allocateOSTs picks stripeCount OSTs round-robin (Lustre's default
// allocator). The placement library substitutes its own choice via
// CreateOn.
func (fs *FS) allocateOSTs(stripeCount int) []int {
	if stripeCount < 1 {
		stripeCount = 1
	}
	if stripeCount > len(fs.OSTs) {
		stripeCount = len(fs.OSTs)
	}
	idx := make([]int, stripeCount)
	for i := range idx {
		idx[i] = (fs.nextOST + i) % len(fs.OSTs)
	}
	fs.nextOST = (fs.nextOST + stripeCount) % len(fs.OSTs)
	return idx
}

// Create makes a file with the given stripe count (0 = namespace
// default) and calls done with it after the MDS create completes.
func (fs *FS) Create(path string, stripeCount int, done func(*File)) {
	if stripeCount <= 0 {
		stripeCount = fs.DefaultStripeCount
	}
	fs.CreateOn(path, fs.allocateOSTs(stripeCount), done)
}

// CreateOn makes a file striped over exactly the given OST indices —
// the hook the balanced-placement library (libPIO) uses.
func (fs *FS) CreateOn(path string, osts []int, done func(*File)) {
	parts := splitPath(path)
	if len(parts) == 0 {
		panic("lustre: create with empty path") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	dir, _ := fs.lookupDir(parts[:len(parts)-1], true)
	name := parts[len(parts)-1]
	if _, exists := dir.Files[name]; exists {
		panic(fmt.Sprintf("lustre: file %q already exists", path)) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	f := &File{
		Path:       path,
		StripeSize: fs.DefaultStripeSize,
		OSTIndices: append([]int(nil), osts...),
		CTime:      fs.eng.Now(),
		MTime:      fs.eng.Now(),
		ATime:      fs.eng.Now(),
	}
	for _, oi := range osts {
		if oi < 0 || oi >= len(fs.OSTs) {
			panic("lustre: stripe OST index out of range") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
		}
		f.Objects = append(f.Objects, fs.OSTs[oi].NewObject())
	}
	dir.Files[name] = f
	fs.NumFiles++
	fs.mdtFor(path).create(func() {
		if done != nil {
			done(f)
		}
	})
}

// Open resolves a path to a file (one MDS lookup).
func (fs *FS) Open(path string, done func(*File)) {
	parts := splitPath(path)
	if len(parts) == 0 {
		panic("lustre: open with empty path") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	dir, ok := fs.lookupDir(parts[:len(parts)-1], false)
	var f *File
	if ok {
		f = dir.Files[parts[len(parts)-1]]
	}
	fs.mdtFor(path).lookup(func() {
		if done != nil {
			done(f)
		}
	})
}

// Stat gathers file attributes: one MDS stat plus a glimpse RPC to the
// OSS of every stripe OST (size lives on the OSTs). This is why stat on
// widely striped files is expensive, and why the paper recommends
// stripe count 1 for small files.
func (fs *FS) Stat(f *File, done func()) {
	fs.mdtFor(f.Path).stat(func() {
		b := sim.NewBarrier(done)
		for _, oi := range f.OSTIndices {
			b.Add(1)
			fs.OSSes[fs.ostOSS[oi]].Glimpse(b.Done)
		}
		b.Arm()
	})
}

// Unlink removes the file at path, destroying its objects.
func (fs *FS) Unlink(path string, done func()) {
	parts := splitPath(path)
	dir, ok := fs.lookupDir(parts[:len(parts)-1], false)
	if !ok {
		panic(fmt.Sprintf("lustre: unlink missing dir for %q", path)) //simlint:allow no-library-panic caller-contract assertion: unlinking a path that was never created
	}
	name := parts[len(parts)-1]
	f, ok := dir.Files[name]
	if !ok {
		panic(fmt.Sprintf("lustre: unlink missing file %q", path)) //simlint:allow no-library-panic caller-contract assertion: unlinking a path that was never created
	}
	delete(dir.Files, name)
	fs.NumFiles--
	fs.mdtFor(path).unlink(func() {
		for _, obj := range f.Objects {
			obj.Destroy()
		}
		if done != nil {
			done()
		}
	})
}

// Walk visits every file under dir (the whole namespace when dir is
// nil) in deterministic path order without charging simulation time;
// tools that model traversal cost charge their own MDS ops.
func (fs *FS) Walk(dir *Dir, fn func(*File)) {
	if dir == nil {
		dir = fs.root
	}
	names := make([]string, 0, len(dir.Files))
	for n := range dir.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(dir.Files[n])
	}
	subs := make([]string, 0, len(dir.Dirs))
	for n := range dir.Dirs {
		subs = append(subs, n)
	}
	sort.Strings(subs)
	for _, n := range subs {
		fs.Walk(dir.Dirs[n], fn)
	}
}
