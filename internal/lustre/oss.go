package lustre

import (
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
)

// OSSConfig describes an object storage server's CPU budget.
type OSSConfig struct {
	Cores       int
	FixedPerRPC sim.Time // obdfilter + ptlrpc per-request software cost
	PerByte     sim.Time // data-movement CPU cost per byte
}

// Spider2OSS returns the production OSS class: the software path costs
// ~1 ns/byte (so ~1 GB/s per core of copy work) plus tens of
// microseconds of per-RPC overhead.
func Spider2OSS() OSSConfig {
	return OSSConfig{Cores: 8, FixedPerRPC: 30 * sim.Microsecond, PerByte: 1}
}

// OSS is one object storage server fronting several OSTs. Every data RPC
// passes through its CPU before reaching the controller.
type OSS struct {
	ID     int
	cfg    OSSConfig
	cpu    *sim.Server
	tracer *spantrace.Tracer

	RPCs  uint64
	Bytes int64

	down    bool
	stalled []func()
	// StalledRPCs counts requests that arrived while the server was
	// down and had to wait for recovery.
	StalledRPCs uint64
	// DoubleFaults counts faults injected while the server was already
	// down (rejected by FailOSS).
	DoubleFaults uint64
}

// NewOSS builds an OSS on eng.
func NewOSS(eng *sim.Engine, id int, cfg OSSConfig) *OSS {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	return &OSS{ID: id, cfg: cfg, cpu: sim.NewServer(eng, "oss", cfg.Cores)}
}

// Utilization reports CPU busy fraction.
func (s *OSS) Utilization() float64 { return s.cpu.Utilization() }

// QueueLen reports RPCs waiting for CPU.
func (s *OSS) QueueLen() int { return s.cpu.QueueLen() }

// Service runs the per-RPC software path for size bytes, then done.
// While the server is down (crash/failover in progress), requests stall
// and are replayed at recovery — the behaviour Lustre's recovery
// machinery gives clients.
func (s *OSS) Service(size int64, done func()) {
	if s.down {
		s.StalledRPCs++
		// The stall span covers arrival through recovery replay; the
		// replay re-enters Service under the same request context.
		p := s.tracer.Cur()
		sp := s.tracer.Begin(spantrace.OSS, "oss-stall", p, size)
		s.stalled = append(s.stalled, func() {
			s.tracer.End(sp)
			old := s.tracer.Swap(p)
			s.Service(size, done)
			s.tracer.Swap(old)
		})
		return
	}
	s.RPCs++
	s.Bytes += size
	t := s.cfg.FixedPerRPC + sim.Time(size)*s.cfg.PerByte
	sp := s.tracer.Begin(spantrace.OSS, "oss-service", s.tracer.Cur(), size)
	cb := done
	if sp != 0 {
		cb = func() {
			s.tracer.End(sp)
			if done != nil {
				done()
			}
		}
	}
	s.cpu.Submit(t, cb)
}

// Glimpse runs the small OST attribute callback used by stat on striped
// files (size must be gathered from every OST holding a stripe — why the
// paper tells users to keep small files at stripe count 1).
func (s *OSS) Glimpse(done func()) {
	if s.down {
		s.StalledRPCs++
		s.stalled = append(s.stalled, func() { s.Glimpse(done) })
		return
	}
	s.RPCs++
	s.cpu.Submit(s.cfg.FixedPerRPC/2, done)
}

// Fail takes the server down; requests stall until Recover.
func (s *OSS) Fail() { s.down = true }

// Down reports whether the server is failed.
func (s *OSS) Down() bool { return s.down }

// Recover brings the server back and replays stalled requests in FIFO
// arrival order — the ordering Lustre's transaction-replay window
// guarantees.
func (s *OSS) Recover() {
	if !s.down {
		return
	}
	s.down = false
	stalled := s.stalled
	s.stalled = nil
	for _, fn := range stalled {
		fn()
	}
}
