package lustre

import "spiderfs/internal/sim"

// MDSConfig sets the metadata server's service profile. Lustre (pre-DNE)
// supports a single MDS per namespace — the central scaling limit that
// drove OLCF to multiple namespaces (Lesson 10).
type MDSConfig struct {
	Threads int
	Create  sim.Time
	Stat    sim.Time
	Unlink  sim.Time
	Mkdir   sim.Time
	Lookup  sim.Time
}

// Spider2MDS returns a production-class MDS profile (~20k creates/s,
// ~50k stats/s peak).
func Spider2MDS() MDSConfig {
	return MDSConfig{
		Threads: 8,
		Create:  400 * sim.Microsecond,
		Stat:    150 * sim.Microsecond,
		Unlink:  300 * sim.Microsecond,
		Mkdir:   250 * sim.Microsecond,
		Lookup:  80 * sim.Microsecond,
	}
}

// MDS is the metadata server of one namespace.
type MDS struct {
	cfg MDSConfig
	srv *sim.Server

	Creates, Stats, Unlinks, Mkdirs, Lookups uint64
}

// NewMDS builds an MDS on eng.
func NewMDS(eng *sim.Engine, cfg MDSConfig) *MDS {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	return &MDS{cfg: cfg, srv: sim.NewServer(eng, "mds", cfg.Threads)}
}

// Utilization reports the MDS thread-pool busy fraction — the saturation
// signal for the single-vs-multiple namespace experiment.
func (m *MDS) Utilization() float64 { return m.srv.Utilization() }

// QueueLen reports queued metadata operations.
func (m *MDS) QueueLen() int { return m.srv.QueueLen() }

// MeanWait reports the mean metadata op queueing delay.
func (m *MDS) MeanWait() sim.Time { return m.srv.MeanWait() }

// Ops returns the total operations served.
func (m *MDS) Ops() uint64 {
	return m.Creates + m.Stats + m.Unlinks + m.Mkdirs + m.Lookups
}

func (m *MDS) create(done func()) { m.Creates++; m.srv.Submit(m.cfg.Create, done) }
func (m *MDS) stat(done func())   { m.Stats++; m.srv.Submit(m.cfg.Stat, done) }
func (m *MDS) unlink(done func()) { m.Unlinks++; m.srv.Submit(m.cfg.Unlink, done) }
func (m *MDS) mkdir(done func())  { m.Mkdirs++; m.srv.Submit(m.cfg.Mkdir, done) }
func (m *MDS) lookup(done func()) { m.Lookups++; m.srv.Submit(m.cfg.Lookup, done) }
