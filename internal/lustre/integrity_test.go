package lustre

import (
	"testing"

	"spiderfs/internal/disk"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// --- RPC retry backoff (satellite: exponential backoff with jitter) ---

func backoffOutageRun(t *testing.T, src *rng.Source, cap sim.Time) *Client {
	t.Helper()
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(90))
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	client.RPCTimeout = 20 * sim.Second
	client.RetryBackoffCap = cap
	client.BackoffSrc = src
	var file *File
	fs.CreateOn("app/f", []int{0}, func(f *File) { file = f })
	eng.Run()
	if err := FailOSS(fs, 0, DefaultRecovery(false), nil); err != nil {
		t.Fatal(err)
	}
	client.WriteStream(file, 1<<20, 1<<20, nil)
	eng.Run()
	return client
}

func TestRetryBackoffJitterDeterministic(t *testing.T) {
	a := backoffOutageRun(t, rng.New(3).Split("backoff"), 0)
	b := backoffOutageRun(t, rng.New(3).Split("backoff"), 0)
	if a.RPCTimeouts == 0 || a.BackoffWaits == 0 {
		t.Fatalf("outage tripped %d timeouts / %d backoff waits, want both nonzero",
			a.RPCTimeouts, a.BackoffWaits)
	}
	if a.RPCTimeouts != b.RPCTimeouts || a.BackoffWaits != b.BackoffWaits || a.BackoffWait != b.BackoffWait {
		t.Fatalf("jittered backoff diverged across identical runs: %d/%d/%v vs %d/%d/%v",
			a.RPCTimeouts, a.BackoffWaits, a.BackoffWait,
			b.RPCTimeouts, b.BackoffWaits, b.BackoffWait)
	}
}

func TestBackoffCapBoundsRetrySpacing(t *testing.T) {
	// With the cap at the base timeout the backoff degenerates to fixed
	// re-arms: a 345 s outage with a 20 s watchdog fires ~17 times. With
	// the default (8x) cap the doubling schedule fires far fewer.
	capped := backoffOutageRun(t, nil, 20*sim.Second)
	expo := backoffOutageRun(t, nil, 0)
	if capped.RPCTimeouts <= expo.RPCTimeouts {
		t.Fatalf("capped-at-base fired %d vs exponential %d; backoff should reduce retries",
			capped.RPCTimeouts, expo.RPCTimeouts)
	}
	if expo.RPCTimeouts > 6 {
		t.Fatalf("exponential backoff fired %d times over a 345 s outage", expo.RPCTimeouts)
	}
	if capped.BackoffWaits != 0 {
		t.Fatalf("cap==base produced %d backoff waits; none are backed off", capped.BackoffWaits)
	}
}

func TestHealthyClientDrawsNoBackoffRandomness(t *testing.T) {
	// Stream isolation: a client that never stalls must not consume its
	// backoff stream, so twin sources stay in lockstep.
	used := rng.New(11).Split("backoff")
	twin := rng.New(11).Split("backoff")
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(91))
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	client.RPCTimeout = 20 * sim.Second
	client.BackoffSrc = used
	var file *File
	fs.Create("app/f", 4, func(f *File) { file = f })
	eng.Run()
	client.WriteStream(file, 16<<20, 1<<20, nil)
	eng.Run()
	if client.RPCTimeouts != 0 {
		t.Fatalf("healthy write tripped %d watchdogs", client.RPCTimeouts)
	}
	if used.Float64() != twin.Float64() {
		t.Fatal("healthy client consumed backoff randomness")
	}
}

// --- OST read-path integrity surfacing (EIO vs repaired vs corrupt) ---

func TestOSTReadSurfacesRepairAndCorruption(t *testing.T) {
	eng := sim.NewEngine()
	fs := Build(eng, TestNamespace(), rng.New(92))
	ost := fs.OSTs[0]
	client := NewClient(0, topology.Coord{}, fs, NullTransport{Eng: eng})
	var file *File
	fs.CreateOn("app/f", []int{0}, func(f *File) { file = f })
	eng.Run()
	// Streaming reads start at LBA 0; plant silent rot there.
	g := ost.Group()
	g.Disks()[g.ChunkMember(0, 0)].InjectError(0, disk.Silent)
	client.ReadStream(file, 1<<20, 1<<20, false, nil)
	eng.Run()
	if ost.CorruptReads == 0 {
		t.Fatalf("verify-on-suspect OST served %d corrupt reads, want the planted rot surfaced", ost.CorruptReads)
	}
	// Same fault under verify-always repairs inline instead.
	eng2 := sim.NewEngine()
	fs2 := Build(eng2, TestNamespace(), rng.New(92))
	ost2 := fs2.OSTs[0]
	client2 := NewClient(0, topology.Coord{}, fs2, NullTransport{Eng: eng2})
	var file2 *File
	fs2.CreateOn("app/f", []int{0}, func(f *File) { file2 = f })
	eng2.Run()
	g2 := ost2.Group()
	g2.Verify = raid.VerifyAlways
	g2.Disks()[g2.ChunkMember(0, 0)].InjectError(0, disk.Silent)
	client2.ReadStream(file2, 1<<20, 1<<20, false, nil)
	eng2.Run()
	if ost2.RepairedReads == 0 || ost2.CorruptReads != 0 {
		t.Fatalf("verify-always OST: repaired=%d corrupt=%d, want inline repair",
			ost2.RepairedReads, ost2.CorruptReads)
	}
}
