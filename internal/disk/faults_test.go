package disk

import (
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func testDisk(seed uint64) (*sim.Engine, *Disk) {
	eng := sim.NewEngine()
	cfg := NLSAS2TB()
	cfg.Capacity = 64 << 20
	return eng, New(eng, 0, cfg, Nominal(), rng.New(seed).Split("d"))
}

func TestInjectScanAndChunkOrder(t *testing.T) {
	_, d := testDisk(1)
	d.InjectError(10*SectorSize, URE)
	d.InjectError(300*SectorSize, Silent)
	d.InjectError(301*SectorSize, Silent)
	if got := d.Scan(0, d.Config().Capacity); got.UREs != 1 || got.Silent != 2 {
		t.Fatalf("full scan = %+v, want 1 URE + 2 silent", got)
	}
	if got := d.Scan(0, 64*SectorSize); got.UREs != 1 || got.Silent != 0 {
		t.Fatalf("partial scan = %+v, want the URE only", got)
	}
	chunk := int64(128 << 10) // 32 sectors
	var slots []int64
	d.ScanChunks(0, d.Config().Capacity, chunk, func(lba int64, sr ScanResult) {
		slots = append(slots, lba)
		if lba == 0 && sr.UREs != 1 {
			t.Fatalf("slot 0 = %+v, want the URE", sr)
		}
		if lba != 0 && sr.Silent != 2 {
			t.Fatalf("slot %d = %+v, want both silent sectors", lba, sr)
		}
	})
	want := []int64{0, 300 * SectorSize / chunk * chunk}
	if len(slots) != 2 || slots[0] != want[0] || slots[1] != want[1] {
		t.Fatalf("chunk slots = %v, want %v (ascending)", slots, want)
	}
}

func TestWriteHealsOverwrittenExtent(t *testing.T) {
	eng, d := testDisk(2)
	d.InjectError(4*SectorSize, Silent)
	d.InjectError(1000*SectorSize, URE)
	d.Submit(Op{Write: true, LBA: 0, Size: 64 * SectorSize}, nil)
	eng.Run()
	if d.CorruptSectors() != 1 {
		t.Fatalf("corrupt sectors after overwrite = %d, want 1 (the distant URE)", d.CorruptSectors())
	}
	if d.RepairedSectors != 1 {
		t.Fatalf("RepairedSectors = %d, want 1", d.RepairedSectors)
	}
	if got := d.Scan(1000*SectorSize, SectorSize); got.UREs != 1 {
		t.Fatalf("distant URE gone: %+v", got)
	}
}

func TestTearWriteLeavesSilentBoundary(t *testing.T) {
	_, d := testDisk(3)
	d.TearWrite(0, 256*SectorSize)
	if got := d.Scan(0, 256*SectorSize); got.Silent != 1 || got.UREs != 0 {
		t.Fatalf("torn write scan = %+v, want exactly one silent sector", got)
	}
}

// Rate-driven injection must be deterministic per (seed, op sequence)
// and must draw only from the dedicated fault stream: a disk armed with
// zero rates services commands bit-identically to a never-armed disk.
func TestFaultInjectionDeterminismAndIsolation(t *testing.T) {
	run := func(arm bool, rates FaultConfig) (*Disk, sim.Time) {
		eng, d := testDisk(7)
		if arm {
			d.SetFaultInjection(rates, rng.New(7).Split("faults"))
		}
		src := rng.New(9).Split("ops")
		for i := 0; i < 200; i++ {
			lba := src.Int63n(d.Config().Capacity - (1 << 20))
			d.Submit(Op{Write: i%2 == 0, LBA: lba, Size: 1 << 20}, nil)
		}
		eng.Run()
		return d, eng.Now()
	}

	hot := FaultConfig{UREPerGBWritten: 40, SilentPerGBWritten: 40, UREPerGBRead: 40}
	a, _ := run(true, hot)
	b, _ := run(true, hot)
	if a.InjectedUREs == 0 || a.InjectedSilent == 0 {
		t.Fatalf("hot rates injected nothing: %d UREs, %d silent", a.InjectedUREs, a.InjectedSilent)
	}
	if a.InjectedUREs != b.InjectedUREs || a.InjectedSilent != b.InjectedSilent ||
		a.RepairedSectors != b.RepairedSectors || a.CorruptSectors() != b.CorruptSectors() {
		t.Fatalf("double run diverged: %+v vs %+v", a, b)
	}

	zero, tz := run(true, FaultConfig{})
	_, to := run(false, FaultConfig{})
	if tz != to {
		t.Fatalf("zero-rate armed disk perturbed service times: %v vs %v", tz, to)
	}
	if zero.InjectedUREs != 0 || zero.InjectedSilent != 0 {
		t.Fatalf("zero rates injected defects")
	}
}
