package disk

import (
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// measure drives n ops of the given pattern through a fresh disk and
// returns throughput in MB/s (decimal).
func measure(t *testing.T, seqential bool, opSize int64, n int) float64 {
	t.Helper()
	eng := sim.NewEngine()
	src := rng.New(1)
	d := New(eng, 0, NLSAS2TB(), Nominal(), src.Split("d"))
	var lba int64
	issue := func(i int, done func()) {
		op := Op{Write: false, Size: opSize}
		if seqential {
			op.LBA = lba
			lba += opSize
		} else {
			op.LBA = src.Int63n(d.Config().Capacity - opSize)
		}
		d.Submit(op, done)
	}
	remaining := n
	var kick func()
	kick = func() {
		remaining--
		if remaining > 0 {
			issue(n-remaining, kick)
		}
	}
	issue(0, kick)
	eng.Run()
	sec := eng.Now().Seconds()
	return float64(opSize) * float64(n) / 1e6 / sec
}

func TestSequentialThroughputNearPeak(t *testing.T) {
	mbps := measure(t, true, 1<<20, 500)
	// Outer zone, 1 MiB transfers: expect within ~15% of 140 MB/s
	// (command overhead costs a few percent).
	if mbps < 120 || mbps > 145 {
		t.Fatalf("sequential = %.1f MB/s, want ~130-140", mbps)
	}
}

func TestRandomOverSequentialRatio(t *testing.T) {
	seq := measure(t, true, 1<<20, 500)
	rnd := measure(t, false, 1<<20, 500)
	ratio := rnd / seq
	// The paper: a single NL-SAS drive achieves 20-25% of peak under
	// random 1 MB I/O. Accept 18-30% for simulation noise.
	if ratio < 0.18 || ratio > 0.30 {
		t.Fatalf("random/sequential = %.3f (%.1f / %.1f MB/s), want ~0.20-0.25",
			ratio, rnd, seq)
	}
}

func TestSmallRandomIsIOPSBound(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(2)
	d := New(eng, 0, NLSAS2TB(), Nominal(), src.Split("d"))
	n := 1000
	remaining := n
	var issue func()
	issue = func() {
		remaining--
		if remaining >= 0 {
			d.Submit(Op{LBA: src.Int63n(d.Config().Capacity - 4096), Size: 4096}, issue)
		}
	}
	issue()
	eng.Run()
	iops := float64(n) / eng.Now().Seconds()
	// 7.2k NL-SAS random 4K: order 50-90 IOPS.
	if iops < 40 || iops > 120 {
		t.Fatalf("random 4K IOPS = %.1f, want ~50-90", iops)
	}
}

func TestSlowDiskIsSlower(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(3)
	fast := New(eng, 0, NLSAS2TB(), Nominal(), src.Split("f"))
	slow := New(eng, 1, NLSAS2TB(), Health{SpeedFactor: 0.8, TailProb: 0.0005, TailScale: 30 * sim.Millisecond}, src.Split("s"))
	var ft, st sim.Time
	run := func(d *Disk, out *sim.Time) {
		var lba int64
		n := 200
		var next func()
		next = func() {
			n--
			if n >= 0 {
				d.Submit(Op{LBA: lba, Size: 1 << 20}, next)
				lba += 1 << 20
			} else {
				*out = eng.Now()
			}
		}
		next()
	}
	run(fast, &ft)
	eng.Run()
	base := eng.Now()
	_ = base
	eng2 := sim.NewEngine()
	slow2 := New(eng2, 1, NLSAS2TB(), slow.Health(), rng.New(3).Split("s"))
	run(slow2, &st)
	eng2.Run()
	st = eng2.Now()
	if float64(st)/float64(ft) < 1.15 {
		t.Fatalf("slow disk only %.2fx slower", float64(st)/float64(ft))
	}
}

func TestWeakDiskAccumulatesTailLatency(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(4)
	weak := New(eng, 0, NLSAS2TB(),
		Health{SpeedFactor: 1.0, TailProb: 0.2, TailScale: 60 * sim.Millisecond}, src.Split("w"))
	n := 500
	var next func()
	next = func() {
		n--
		if n >= 0 {
			weak.Submit(Op{LBA: 0, Size: 1 << 20}, next)
		}
	}
	next()
	eng.Run()
	if weak.SlowCmds < 50 {
		t.Fatalf("weak disk recorded only %d slow commands of ~100 expected", weak.SlowCmds)
	}
	if weak.Latency.Max < 30 {
		t.Fatalf("weak disk max latency %.1fms, expected tail excursions", weak.Latency.Max)
	}
}

func TestInvalidOpPanics(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, 0, NLSAS2TB(), Nominal(), rng.New(5))
	for _, op := range []Op{
		{LBA: -1, Size: 4096},
		{LBA: 0, Size: 0},
		{LBA: d.Config().Capacity - 100, Size: 4096},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("op %+v should panic", op)
				}
			}()
			d.Submit(op, nil)
		}()
	}
}

func TestZonedTransferInnerSlower(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(6)
	d := New(eng, 0, NLSAS2TB(), Health{SpeedFactor: 1, TailProb: 0, TailScale: 0}, src)
	cfg := d.Config()
	outer := d.ServiceTime(Op{LBA: 0, Size: 1 << 20})
	d.lastEnd = cfg.Capacity - (1 << 20) // force sequential (no seek) at inner edge
	inner := d.ServiceTime(Op{LBA: cfg.Capacity - (1 << 20), Size: 1 << 20})
	if inner <= outer {
		t.Fatalf("inner zone (%v) should be slower than outer (%v)", inner, outer)
	}
}

func TestPopulationSpread(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(7)
	spec := DefaultPopulation()
	disks := NewPopulation(eng, 5000, NLSAS2TB(), spec, src)
	if len(disks) != 5000 {
		t.Fatalf("population size %d", len(disks))
	}
	slow, weak := 0, 0
	for _, d := range disks {
		h := d.Health()
		if h.SpeedFactor < 0.95 {
			slow++
		}
		if h.TailProb > 0.01 {
			weak++
		}
	}
	slowFrac := float64(slow) / 5000
	weakFrac := float64(weak) / 5000
	if slowFrac < 0.05 || slowFrac > 0.11 {
		t.Fatalf("slow fraction = %.3f, want ~0.075", slowFrac)
	}
	if weakFrac < 0.01 || weakFrac > 0.05 {
		t.Fatalf("weak fraction = %.3f, want ~0.025", weakFrac)
	}
}

func TestPopulationDeterminism(t *testing.T) {
	mk := func() []float64 {
		eng := sim.NewEngine()
		disks := NewPopulation(eng, 100, NLSAS2TB(), DefaultPopulation(), rng.New(42))
		out := make([]float64, len(disks))
		for i, d := range disks {
			out[i] = d.Health().SpeedFactor
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("population not deterministic at disk %d", i)
		}
	}
}
