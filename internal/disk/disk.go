// Package disk models mechanical hard drives at the fidelity the Spider
// deployment lessons require: seek + rotational + zoned transfer service
// times, unit-to-unit speed variability (the "slow disk" population of
// §V-A), and long-tail latency blips from drive-internal recovery.
//
// The model is calibrated so a nominal near-line SAS drive delivers
// ~20-25% of its peak sequential bandwidth under random 1 MiB I/O, the
// rule of thumb the paper used to derive Spider II's 240 GB/s random-I/O
// requirement from its 1 TB/s sequential requirement.
package disk

import (
	"fmt"
	"math"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/stats"
)

// Config describes a disk product.
type Config struct {
	Name     string
	Capacity int64 // bytes

	// Seek model: seekTime(d) = SeekBase + SeekFull*sqrt(d/Capacity),
	// where d is the LBA distance in bytes. A uniformly random pair of
	// positions yields an expected seek of SeekBase + 0.533*SeekFull.
	SeekBase sim.Time
	SeekFull sim.Time

	RPM float64 // spindle speed, for rotational latency

	// PeakMBps is the outer-zone sustained transfer rate in MB/s
	// (decimal megabytes, as vendors quote it). ZoneSlowdown is the
	// fractional rate loss at the innermost zone (0.3 = inner tracks run
	// at 70% of outer).
	PeakMBps     float64
	ZoneSlowdown float64

	// CmdOverhead is fixed per-command processing time.
	CmdOverhead sim.Time
}

// NLSAS2TB returns the 2 TB near-line SAS drive used to build Spider II
// (20,160 of them in the real system).
func NLSAS2TB() Config {
	return Config{
		Name:         "nl-sas-2tb",
		Capacity:     2_000_000_000_000,
		SeekBase:     1 * sim.Millisecond,
		SeekFull:     26 * sim.Millisecond,
		RPM:          7200,
		PeakMBps:     140,
		ZoneSlowdown: 0.35,
		CmdOverhead:  300 * sim.Microsecond,
	}
}

// SATA1TB returns the SATA drive class used in Spider I.
func SATA1TB() Config {
	return Config{
		Name:         "sata-1tb",
		Capacity:     1_000_000_000_000,
		SeekBase:     2 * sim.Millisecond,
		SeekFull:     30 * sim.Millisecond,
		RPM:          7200,
		PeakMBps:     110,
		ZoneSlowdown: 0.35,
		CmdOverhead:  500 * sim.Microsecond,
	}
}

// Op is a single disk command.
type Op struct {
	Write bool
	LBA   int64 // byte offset on the platter
	Size  int64 // bytes
}

// Health captures a drive's hidden performance personality. Healthy
// drives have SpeedFactor ~1; "slow" drives (functional, no errors, just
// below spec) have a lower factor; "weak" drives add frequent long-tail
// latency excursions. The QA tooling must *detect* these from service
// latencies, as the OLCF did — the fields are exported for test oracles
// and fault injection only.
type Health struct {
	SpeedFactor float64 // multiplies transfer rate (1.0 nominal)
	TailProb    float64 // probability a command takes a latency excursion
	TailScale   sim.Time
}

// Nominal returns a healthy personality: firmware recovery excursions
// happen, but only a few times per hundred thousand commands.
func Nominal() Health {
	return Health{SpeedFactor: 1.0, TailProb: 2e-5, TailScale: 30 * sim.Millisecond}
}

// Disk is a single simulated drive attached to an engine. All commands
// are serviced FIFO with a single actuator (queue depth shaping happens
// above, in the RAID/OST layers).
type Disk struct {
	ID     int
	cfg    Config
	health Health
	eng    *sim.Engine
	srv    *sim.Server
	src    *rng.Source

	lastEnd int64 // LBA following the previous command, for sequential detection

	// Latent media-error model (faults.go). faultSrc is a dedicated
	// stream: disarmed disks draw nothing, so enabling injection on one
	// disk never perturbs another model's randomness.
	faults   FaultConfig
	faultSrc *rng.Source
	media    map[int64]CorruptKind // corrupt sector index -> defect kind

	// Tracer, when set, records a span per command plus the
	// seek/rotate/transfer/tail decomposition (spantrace plane).
	Tracer *spantrace.Tracer

	// Counters for the monitoring and QA layers.
	Ops      uint64
	Bytes    int64
	Latency  stats.Summary // per-command service latency in milliseconds
	SlowCmds uint64        // commands that took a tail excursion

	// Integrity counters (faults.go).
	InjectedUREs    uint64 // drive-detectable defects seeded
	InjectedSilent  uint64 // silent (bit-rot) defects seeded
	RepairedSectors uint64 // defects healed by overwrites and repairs
}

// New creates a disk with the given personality.
func New(eng *sim.Engine, id int, cfg Config, health Health, src *rng.Source) *Disk {
	return &Disk{
		ID:     id,
		cfg:    cfg,
		health: health,
		eng:    eng,
		srv:    sim.NewServer(eng, fmt.Sprintf("%s-%d", cfg.Name, id), 1),
		src:    src,
	}
}

// Config returns the disk's product configuration.
func (d *Disk) Config() Config { return d.cfg }

// Health returns the drive personality (test/fault-injection use).
func (d *Disk) Health() Health { return d.health }

// SetHealth replaces the drive personality, modelling a disk swap or a
// firmware update.
func (d *Disk) SetHealth(h Health) { d.health = h }

// ResetStats clears the accumulated latency and throughput counters, as
// after a drive swap (the monitoring history belongs to the old drive).
func (d *Disk) ResetStats() {
	d.Ops = 0
	d.Bytes = 0
	d.Latency = stats.Summary{}
	d.SlowCmds = 0
}

// QueueLen returns the number of commands waiting at the drive.
func (d *Disk) QueueLen() int { return d.srv.QueueLen() }

// Utilization returns the drive's busy fraction since t=0.
func (d *Disk) Utilization() float64 { return d.srv.Utilization() }

// rate returns the transfer rate in bytes/ns at byte position lba.
func (d *Disk) rate(lba int64) float64 {
	frac := float64(lba) / float64(d.cfg.Capacity)
	if frac > 1 {
		frac = 1
	}
	mbps := d.cfg.PeakMBps * (1 - d.cfg.ZoneSlowdown*frac) * d.health.SpeedFactor
	return mbps * 1e6 / float64(sim.Second) // bytes per ns
}

// parts is the service-time decomposition of one command. The rng
// draws happen exactly once, in serviceParts, whether or not tracing
// is on — the decomposition exists so spantrace can attribute the
// mechanics without disturbing the stream.
type parts struct {
	overhead, seek, rotate, transfer, tail sim.Time
}

func (p parts) total() sim.Time {
	return p.overhead + p.seek + p.rotate + p.transfer + p.tail
}

func (d *Disk) serviceParts(op Op) parts {
	p := parts{overhead: d.cfg.CmdOverhead}
	if op.LBA != d.lastEnd {
		dist := op.LBA - d.lastEnd
		if dist < 0 {
			dist = -dist
		}
		frac := math.Sqrt(float64(dist) / float64(d.cfg.Capacity))
		p.seek = d.cfg.SeekBase + sim.Time(float64(d.cfg.SeekFull)*frac)
		// Rotational latency: uniform in [0, one revolution).
		rev := sim.Time(60 * float64(sim.Second) / d.cfg.RPM)
		p.rotate = sim.Time(d.src.Float64() * float64(rev))
	}
	p.transfer = sim.Time(float64(op.Size) / d.rate(op.LBA))
	if d.src.Bool(d.health.TailProb) {
		p.tail = sim.Time(d.src.Exp(1) * float64(d.health.TailScale))
		d.SlowCmds++
	}
	return p
}

// ServiceTime computes the service time of op from the current head
// position without executing it. Exposed for analytic calibration.
// Draws from the disk's rng stream like a real command would.
func (d *Disk) ServiceTime(op Op) sim.Time {
	return d.serviceParts(op).total()
}

// Submit queues op and calls done (may be nil) at completion.
func (d *Disk) Submit(op Op, done func()) {
	if op.Size <= 0 || op.LBA < 0 || op.LBA+op.Size > d.cfg.Capacity {
		panic(fmt.Sprintf("disk: invalid op lba=%d size=%d cap=%d", op.LBA, op.Size, d.cfg.Capacity)) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	d.applyFaults(op)
	pts := d.serviceParts(op)
	st := pts.total()
	d.lastEnd = op.LBA + op.Size
	d.Ops++
	d.Bytes += op.Size
	op2 := "disk-read"
	if op.Write {
		op2 = "disk-write"
	}
	sp := d.Tracer.Begin(spantrace.Disk, op2, d.Tracer.Cur(), op.Size)
	submitted := d.eng.Now()
	d.srv.Submit(st, func() {
		d.Latency.Add(st.Millis())
		if sp != 0 {
			// Decompose retroactively: the actuator started this
			// command total ns before it completed; everything
			// earlier was queueing behind other commands.
			end := d.eng.Now()
			at := end - st
			if at > submitted {
				d.Tracer.Range(spantrace.Disk, "queue", sp, submitted, at, 0)
			}
			for _, ph := range [...]struct {
				op  string
				dur sim.Time
			}{
				{"cmd", pts.overhead},
				{"seek", pts.seek},
				{"rotate", pts.rotate},
				{"transfer", pts.transfer},
				{"tail", pts.tail},
			} {
				if ph.dur > 0 {
					d.Tracer.Range(spantrace.Disk, ph.op, sp, at, at+ph.dur, 0)
					at += ph.dur
				}
			}
			d.Tracer.End(sp)
		}
		if done != nil {
			done()
		}
	})
}

// PopulationSpec controls the statistical spread of drive personalities
// across a manufacturing batch, mirroring what OLCF observed: most drives
// within a few percent of spec, a slow tail several percent below it, and
// a smaller set of drives with latency excursions. Roughly 10% of Spider
// II's initial 20,160 drives were eventually replaced for being slow
// (~1,500 at block level, ~500 more at file system level).
type PopulationSpec struct {
	SpeedSigma  float64 // stddev of the healthy speed factor around 1.0
	SlowFrac    float64 // fraction of drives with a depressed speed factor
	SlowFactor  float64 // mean speed factor of slow drives
	SlowSigma   float64 // spread of slow drives' factors
	WeakFrac    float64 // fraction of drives with elevated tail latency
	WeakTailPr  float64 // per-command excursion probability for weak drives
	WeakTailDur sim.Time
}

// DefaultPopulation mirrors the Spider II acceptance experience.
func DefaultPopulation() PopulationSpec {
	return PopulationSpec{
		SpeedSigma:  0.015,
		SlowFrac:    0.075,
		SlowFactor:  0.82,
		SlowSigma:   0.05,
		WeakFrac:    0.025,
		WeakTailPr:  0.02,
		WeakTailDur: 60 * sim.Millisecond,
	}
}

// NewPopulation manufactures n drives with personalities drawn from spec.
func NewPopulation(eng *sim.Engine, n int, cfg Config, spec PopulationSpec, src *rng.Source) []*Disk {
	disks := make([]*Disk, n)
	for i := 0; i < n; i++ {
		h := Nominal()
		h.SpeedFactor = src.TruncNormal(1.0, spec.SpeedSigma, 0.9, 1.08)
		switch {
		case src.Bool(spec.SlowFrac):
			h.SpeedFactor = src.TruncNormal(spec.SlowFactor, spec.SlowSigma, 0.6, 0.95)
		case src.Bool(spec.WeakFrac / (1 - spec.SlowFrac)):
			h.TailProb = spec.WeakTailPr
			h.TailScale = spec.WeakTailDur
		}
		disks[i] = New(eng, i, cfg, h, src.Split(fmt.Sprintf("disk-%d", i)))
	}
	return disks
}
