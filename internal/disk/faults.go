package disk

import (
	"sort"

	"spiderfs/internal/rng"
)

// Latent media-error model. The paper's scariest storage failure mode is
// the one nothing notices: a latent sector error sits on a platter until
// a rebuild — already running with parity margin spent — reads it. The
// model tracks corruption statistically (which sectors are bad and how a
// read of them behaves), never data bytes: the simulation needs the
// *detectability* of a defect, not its contents.
//
// Determinism contract: all injection draws come from a dedicated fault
// stream installed by SetFaultInjection. A disarmed disk (no stream, or
// all-zero rates) draws nothing and is bit-identical to a build without
// the fault model; an armed disk consumes only its own stream, so the
// service-time streams of every other model are unperturbed.

// CorruptKind classifies a latent media defect.
type CorruptKind uint8

const (
	// URE is a drive-detectable defect: reading the sector surfaces an
	// unrecoverable read error (the drive knows, and says so).
	URE CorruptKind = iota
	// Silent is bit rot: the drive returns corrupt data with no error.
	// Only checksum/parity verification above the drive can catch it.
	Silent
)

// SectorSize is the granularity latent defects are tracked at.
const SectorSize = 4096

// FaultConfig sets media-error injection rates. Rates are expected
// defects per decimal GB transferred; injected counts are Poisson.
type FaultConfig struct {
	// UREPerGBWritten and SilentPerGBWritten inject defects into the
	// extent just written (weak writes, high-fly writes, bit rot seeded
	// at write time).
	UREPerGBWritten    float64
	SilentPerGBWritten float64
	// UREPerGBRead injects drive-detectable defects uniformly across the
	// platter per GB read — media wear, which is what makes long rebuilds
	// dangerous: the more you read, the more latent errors you grow.
	UREPerGBRead float64
}

// Enabled reports whether any injection rate is non-zero.
func (fc FaultConfig) Enabled() bool {
	return fc.UREPerGBWritten > 0 || fc.SilentPerGBWritten > 0 || fc.UREPerGBRead > 0
}

// ScanResult summarizes the latent defects in a scanned extent.
type ScanResult struct {
	UREs   int // drive-detectable sectors
	Silent int // silently corrupt sectors
}

// Corrupt reports whether the extent holds any defect.
func (sr ScanResult) Corrupt() bool { return sr.UREs > 0 || sr.Silent > 0 }

// SetFaultInjection arms (or, with a nil src, disarms) the media-error
// model. The stream must be dedicated to this disk — injection draws
// advance it on every command while armed.
func (d *Disk) SetFaultInjection(fc FaultConfig, src *rng.Source) {
	d.faults = fc
	d.faultSrc = src
}

// InjectError marks the sector containing lba corrupt. Scripted
// corruption storms and tests use it directly; rate-driven injection
// goes through SetFaultInjection.
func (d *Disk) InjectError(lba int64, kind CorruptKind) {
	if lba < 0 || lba >= d.cfg.Capacity {
		return
	}
	d.mark(lba/SectorSize, kind)
}

// TearWrite models a power-fault-interrupted write of [lba, lba+size):
// the sector at the torn boundary is left silently inconsistent (old
// head, new tail — checksums above will disagree, the drive will not).
func (d *Disk) TearWrite(lba, size int64) {
	if size <= 0 || lba < 0 || lba+size > d.cfg.Capacity {
		return
	}
	sectors := size / SectorSize
	if sectors < 1 {
		sectors = 1
	}
	boundary := sectors / 2
	if d.faultSrc != nil {
		boundary = d.faultSrc.Int63n(sectors)
	}
	d.mark(lba/SectorSize+boundary, Silent)
}

// CorruptSectors returns the number of latent-corrupt sectors on the
// platter.
func (d *Disk) CorruptSectors() int { return len(d.media) }

// Scan reports the latent defects in [lba, lba+size) without performing
// any I/O or advancing any stream. The RAID layer's read-time verify
// and the scrubber are built on it.
func (d *Disk) Scan(lba, size int64) ScanResult {
	var sr ScanResult
	if len(d.media) == 0 || size <= 0 {
		return sr
	}
	lo, hi := lba/SectorSize, (lba+size-1)/SectorSize
	for s, kind := range d.media { // order-independent: counting only
		if s < lo || s > hi {
			continue
		}
		if kind == URE {
			sr.UREs++
		} else {
			sr.Silent++
		}
	}
	return sr
}

// ScanChunks invokes fn once per chunk-aligned slot of [lba, lba+size)
// that holds a defect, in ascending LBA order — map iteration order
// never reaches the caller, so scan-driven repair scheduling stays
// deterministic.
func (d *Disk) ScanChunks(lba, size, chunk int64, fn func(chunkLBA int64, sr ScanResult)) {
	if len(d.media) == 0 || size <= 0 || chunk <= 0 {
		return
	}
	sectors := d.sectorsIn(lba, size)
	i := 0
	for i < len(sectors) {
		slot := (sectors[i] * SectorSize) / chunk * chunk
		var sr ScanResult
		for i < len(sectors) && (sectors[i]*SectorSize)/chunk*chunk == slot {
			if d.media[sectors[i]] == URE {
				sr.UREs++
			} else {
				sr.Silent++
			}
			i++
		}
		fn(slot, sr)
	}
}

// Repair clears the latent defects in [lba, lba+size) and returns the
// number of sectors healed. Writes heal implicitly (Submit calls this);
// the explicit form exists for tests and tooling.
func (d *Disk) Repair(lba, size int64) int {
	sectors := d.sectorsIn(lba, size)
	for _, s := range sectors {
		delete(d.media, s)
	}
	d.RepairedSectors += uint64(len(sectors))
	return len(sectors)
}

// sectorsIn returns the corrupt sector indices intersecting
// [lba, lba+size), sorted ascending.
func (d *Disk) sectorsIn(lba, size int64) []int64 {
	if len(d.media) == 0 || size <= 0 {
		return nil
	}
	lo, hi := lba/SectorSize, (lba+size-1)/SectorSize
	var out []int64
	for s := range d.media { // sorted below before anything acts on it
		if s >= lo && s <= hi {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *Disk) mark(sector int64, kind CorruptKind) {
	if d.media == nil {
		d.media = make(map[int64]CorruptKind)
	}
	if prev, ok := d.media[sector]; ok && prev == URE {
		return // drive-detectable beats silent; keep the stronger defect
	}
	d.media[sector] = kind
	if kind == URE {
		d.InjectedUREs++
	} else {
		d.InjectedSilent++
	}
}

// applyFaults runs the per-command side of the model: a write heals the
// extent it overwrites, then rate-driven injection may seed new defects.
// Draws happen only while armed with non-zero rates.
func (d *Disk) applyFaults(op Op) {
	if op.Write && len(d.media) > 0 {
		d.Repair(op.LBA, op.Size)
	}
	if d.faultSrc == nil {
		return
	}
	gb := float64(op.Size) / 1e9
	if op.Write {
		d.injectUniform(op.LBA, op.Size, d.faults.UREPerGBWritten*gb, URE)
		d.injectUniform(op.LBA, op.Size, d.faults.SilentPerGBWritten*gb, Silent)
	} else {
		d.injectUniform(0, d.cfg.Capacity, d.faults.UREPerGBRead*gb, URE)
	}
}

// injectUniform seeds Poisson(lambda) defects uniformly in
// [lba, lba+size).
func (d *Disk) injectUniform(lba, size int64, lambda float64, kind CorruptKind) {
	if lambda <= 0 {
		return
	}
	n := d.faultSrc.Poisson(lambda)
	if n == 0 {
		return
	}
	sectors := size / SectorSize
	if sectors < 1 {
		sectors = 1
	}
	base := lba / SectorSize
	for i := 0; i < n; i++ {
		d.mark(base+d.faultSrc.Int63n(sectors), kind)
	}
}
