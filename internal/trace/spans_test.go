package trace

import (
	"bytes"
	"strings"
	"testing"

	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
)

func sampleSpans() []spantrace.Span {
	return []spantrace.Span{
		{ID: 0xabc, Parent: 0, Layer: spantrace.Client, Op: "rpc-write",
			Start: 0, End: 3 * sim.Millisecond, Bytes: 1 << 20},
		{ID: 0xdef, Parent: 0xabc, Layer: spantrace.Disk, Op: "disk-write",
			Start: sim.Millisecond, End: 2 * sim.Millisecond, Bytes: 1 << 20, Detail: "lun3"},
		// Never closed: must round-trip as end_ns -1.
		{ID: 0x123, Parent: 0xabc, Layer: spantrace.OSS, Op: "oss-service",
			Start: sim.Millisecond, End: -1, Bytes: 64},
	}
}

func TestSpansJSONRoundTrip(t *testing.T) {
	spans := sampleSpans()
	var buf bytes.Buffer
	if err := WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(spans) {
		t.Fatalf("round-tripped %d records, want %d", len(recs), len(spans))
	}
	want := FromSpans(spans)
	for i := range recs {
		if recs[i] != want[i] {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, recs[i], want[i])
		}
	}
	if recs[2].EndNS != -1 {
		t.Fatalf("open span end_ns = %d, want -1", recs[2].EndNS)
	}
	if recs[1].Layer != "disk" || recs[1].Detail != "lun3" {
		t.Fatalf("child record mangled: %+v", recs[1])
	}
}

func TestSpansCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpansCSV(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d CSV lines, want header + 3 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "id,parent,layer,op,start_ns,end_ns,bytes,detail" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "def,abc,disk,disk-write,") {
		t.Fatalf("row 2 = %q (IDs should be hex)", lines[2])
	}
}
