// Package trace provides portable serialization for server-side
// throughput logs — the artifact the IOSI workflow (§VI-B) stores and
// mines. Logs round-trip through JSON (tool interchange) and CSV
// (spreadsheets/plotting), so extracted signatures can be compared
// across runs collected on different days, as the OLCF tooling did.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"spiderfs/internal/iosi"
	"spiderfs/internal/sim"
)

// Log is one serialized throughput series.
type Log struct {
	Name       string    `json:"name"`
	IntervalMS float64   `json:"interval_ms"`
	SamplesBps []float64 `json:"samples_bps"`
}

// FromSeries converts a live sampler series into a portable log.
func FromSeries(name string, s iosi.Series) Log {
	return Log{
		Name:       name,
		IntervalMS: s.Interval.Millis(),
		SamplesBps: append([]float64(nil), s.Samples...),
	}
}

// Series reconstructs the in-memory form.
func (l Log) Series() iosi.Series {
	return iosi.Series{
		Interval: sim.FromSeconds(l.IntervalMS / 1000),
		Samples:  append([]float64(nil), l.SamplesBps...),
	}
}

// Write serializes logs as indented JSON.
func Write(w io.Writer, logs []Log) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(logs)
}

// Read parses logs written by Write.
func Read(r io.Reader) ([]Log, error) {
	var logs []Log
	if err := json.NewDecoder(r).Decode(&logs); err != nil {
		return nil, fmt.Errorf("trace: decoding logs: %w", err)
	}
	for i, l := range logs {
		if l.IntervalMS <= 0 {
			return nil, fmt.Errorf("trace: log %d (%q) has non-positive interval", i, l.Name)
		}
	}
	return logs, nil
}

// WriteCSV emits one log as (t_seconds, bytes_per_sec) rows with a
// header.
func WriteCSV(w io.Writer, l Log) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_seconds", "bytes_per_sec"}); err != nil {
		return err
	}
	for i, v := range l.SamplesBps {
		t := float64(i) * l.IntervalMS / 1000
		if err := cw.Write([]string{
			strconv.FormatFloat(t, 'f', 3, 64),
			strconv.FormatFloat(v, 'f', 0, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a WriteCSV stream; the interval is inferred from the
// first two timestamps (a single-row log gets 1s).
func ReadCSV(r io.Reader, name string) (Log, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return Log{}, fmt.Errorf("trace: reading csv: %w", err)
	}
	if len(rows) < 2 {
		return Log{}, fmt.Errorf("trace: csv has no data rows")
	}
	l := Log{Name: name, IntervalMS: 1000}
	var times []float64
	for _, row := range rows[1:] {
		if len(row) != 2 {
			return Log{}, fmt.Errorf("trace: malformed csv row %v", row)
		}
		t, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return Log{}, fmt.Errorf("trace: bad timestamp %q: %w", row[0], err)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return Log{}, fmt.Errorf("trace: bad sample %q: %w", row[1], err)
		}
		times = append(times, t)
		l.SamplesBps = append(l.SamplesBps, v)
	}
	if len(times) >= 2 {
		l.IntervalMS = (times[1] - times[0]) * 1000
		if l.IntervalMS <= 0 {
			return Log{}, fmt.Errorf("trace: non-increasing timestamps")
		}
	}
	return l, nil
}
