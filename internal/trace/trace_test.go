package trace

import (
	"bytes"
	"strings"
	"testing"

	"spiderfs/internal/iosi"
	"spiderfs/internal/sim"
)

func sample() iosi.Series {
	return iosi.Series{
		Interval: 500 * sim.Millisecond,
		Samples:  []float64{1e9, 2e9, 40e9, 3e9, 41e9, 2e9},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	logs := []Log{FromSeries("run-a", sample()), FromSeries("run-b", sample())}
	var buf bytes.Buffer
	if err := Write(&buf, logs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "run-a" {
		t.Fatalf("got %+v", got)
	}
	s := got[0].Series()
	if s.Interval != 500*sim.Millisecond {
		t.Fatalf("interval = %v", s.Interval)
	}
	if len(s.Samples) != 6 || s.Samples[2] != 40e9 {
		t.Fatalf("samples = %v", s.Samples)
	}
}

func TestReadRejectsBadInterval(t *testing.T) {
	r := strings.NewReader(`[{"name":"x","interval_ms":0,"samples_bps":[1]}]`)
	if _, err := Read(r); err == nil {
		t.Fatal("expected error on zero interval")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l := FromSeries("csvtest", sample())
	var buf bytes.Buffer
	if err := WriteCSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "t_seconds,bytes_per_sec\n") {
		t.Fatalf("missing header: %q", buf.String()[:40])
	}
	got, err := ReadCSV(&buf, "csvtest")
	if err != nil {
		t.Fatal(err)
	}
	if got.IntervalMS != 500 {
		t.Fatalf("interval = %f ms", got.IntervalMS)
	}
	if len(got.SamplesBps) != 6 || got.SamplesBps[4] != 41e9 {
		t.Fatalf("samples = %v", got.SamplesBps)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("header-only\n"), "x"); err == nil {
		t.Fatal("expected error on empty csv")
	}
	bad := "t_seconds,bytes_per_sec\nnot-a-number,5\n"
	if _, err := ReadCSV(strings.NewReader(bad), "x"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSignatureSurvivesRoundTrip(t *testing.T) {
	// The point of the format: IOSI extraction on the round-tripped log
	// equals extraction on the original.
	s := sample()
	before := iosi.ExtractRun(s, 3)
	var buf bytes.Buffer
	if err := Write(&buf, []Log{FromSeries("rt", s)}); err != nil {
		t.Fatal(err)
	}
	logs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after := iosi.ExtractRun(logs[0].Series(), 3)
	if before.BurstsPerRun != after.BurstsPerRun || before.BurstVolume != after.BurstVolume {
		t.Fatalf("signature changed: %+v vs %+v", before, after)
	}
}
