package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"spiderfs/internal/spantrace"
)

// SpanRecord is the portable serialized form of one spantrace span,
// the interchange format for offline analysis of request traces
// (the per-request counterpart of the IOSI throughput Log).
type SpanRecord struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Layer   string `json:"layer"`
	Op      string `json:"op"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"` // -1 if the span never closed
	Bytes   int64  `json:"bytes,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// FromSpans converts a tracer dump to records, preserving order.
func FromSpans(spans []spantrace.Span) []SpanRecord {
	recs := make([]SpanRecord, len(spans))
	for i, s := range spans {
		end := int64(s.End)
		if !s.Done() {
			end = -1
		}
		recs[i] = SpanRecord{
			ID: uint64(s.ID), Parent: uint64(s.Parent),
			Layer: s.Layer.String(), Op: s.Op,
			StartNS: int64(s.Start), EndNS: end,
			Bytes: s.Bytes, Detail: s.Detail,
		}
	}
	return recs
}

// WriteSpans serializes a span dump as indented JSON.
func WriteSpans(w io.Writer, spans []spantrace.Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FromSpans(spans))
}

// ReadSpans parses WriteSpans output.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var recs []SpanRecord
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("trace: decoding spans: %w", err)
	}
	return recs, nil
}

// WriteSpansCSV serializes a span dump as CSV with a header row.
func WriteSpansCSV(w io.Writer, spans []spantrace.Span) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "parent", "layer", "op", "start_ns", "end_ns", "bytes", "detail"}); err != nil {
		return err
	}
	for _, r := range FromSpans(spans) {
		rec := []string{
			strconv.FormatUint(r.ID, 16),
			strconv.FormatUint(r.Parent, 16),
			r.Layer, r.Op,
			strconv.FormatInt(r.StartNS, 10),
			strconv.FormatInt(r.EndNS, 10),
			strconv.FormatInt(r.Bytes, 10),
			r.Detail,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
