package qa

import (
	"testing"

	"spiderfs/internal/disk"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/workload"
)

// buildFleet makes nGroups RAID groups on small disks with the standard
// slow/weak population so campaigns run fast.
func buildFleet(eng *sim.Engine, nGroups int, seed uint64) []*raid.Group {
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 1 << 30
	return raid.BuildGroups(eng, nGroups, raid.Spider2Group(), dcfg, disk.DefaultPopulation(), rng.New(seed))
}

func TestEliminationTightensSpread(t *testing.T) {
	eng := sim.NewEngine()
	groups := buildFleet(eng, 24, 1)
	cfg := DefaultElimination()
	cfg.BenchBytes = 16 << 20
	cfg.SpreadTarget = 0.075 // production contract value
	rep := RunElimination(eng, groups, cfg, rng.New(2))
	if len(rep.Rounds) == 0 {
		t.Fatal("no rounds ran")
	}
	first := rep.Rounds[0]
	last := rep.Rounds[len(rep.Rounds)-1]
	if rep.TotalReplaced == 0 {
		t.Fatal("campaign replaced nothing despite seeded slow disks")
	}
	if last.Spread >= first.Spread {
		t.Fatalf("spread did not improve: %.3f -> %.3f", first.Spread, last.Spread)
	}
	if rep.AfterMBps <= rep.BeforeMBps {
		t.Fatalf("aggregate did not improve: %.0f -> %.0f MB/s", rep.BeforeMBps, rep.AfterMBps)
	}
}

func TestEliminationReplacedFractionPlausible(t *testing.T) {
	// The paper replaced ~2,000 of 20,160 drives (~10%) across block and
	// FS level passes. Our campaign should replace a single-digit to
	// ~15% fraction, not zero and not half the fleet.
	eng := sim.NewEngine()
	groups := buildFleet(eng, 24, 3)
	cfg := DefaultElimination()
	cfg.BenchBytes = 16 << 20
	rep := RunElimination(eng, groups, cfg, rng.New(4))
	total := 24 * 10
	frac := float64(rep.TotalReplaced) / float64(total)
	if frac < 0.01 || frac > 0.25 {
		t.Fatalf("replaced fraction = %.3f (%d/%d), want ~0.05-0.15", frac, rep.TotalReplaced, total)
	}
}

func TestEliminationConvergesOnCleanFleet(t *testing.T) {
	eng := sim.NewEngine()
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 1 << 30
	spec := disk.PopulationSpec{SpeedSigma: 0.005, SlowFrac: 0, SlowFactor: 0.8, SlowSigma: 0.01, WeakFrac: 0}
	groups := raid.BuildGroups(eng, 12, raid.Spider2Group(), dcfg, spec, rng.New(5))
	cfg := DefaultElimination()
	cfg.BenchBytes = 16 << 20
	cfg.SpreadTarget = 0.10
	rep := RunElimination(eng, groups, cfg, rng.New(6))
	if !rep.Converged {
		t.Fatalf("clean fleet failed to converge: %+v", rep.Rounds[len(rep.Rounds)-1])
	}
	if len(rep.Rounds) > 2 {
		t.Fatalf("clean fleet needed %d rounds", len(rep.Rounds))
	}
}

func TestThinFSOverheadSmall(t *testing.T) {
	eng := sim.NewEngine()
	groups := buildFleet(eng, 8, 7)
	thin := NewThinFS(groups, 64<<20)
	oh := thin.CapacityOverhead()
	if oh <= 0 || oh > 0.05 {
		t.Fatalf("thin overhead = %.4f, want small positive", oh)
	}
}

func TestThinFSBenchRuns(t *testing.T) {
	eng := sim.NewEngine()
	groups := buildFleet(eng, 4, 8)
	thin := NewThinFS(groups, 128<<20)
	rates := thin.Bench(eng, workload.FairLIOConfig{
		RequestSize: 1 << 20, QueueDepth: 4, WriteFrac: 1,
		Duration: 500 * sim.Millisecond,
	}, rng.New(9))
	if len(rates) != 4 {
		t.Fatalf("rates = %v", rates)
	}
	for i, r := range rates {
		if r < 100 || r > 2000 {
			t.Fatalf("group %d thin bench = %.0f MB/s implausible", i, r)
		}
	}
}

func TestThinFSZeroSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewThinFS(nil, 0)
}

func TestReportString(t *testing.T) {
	rep := Report{TotalReplaced: 3, BeforeMBps: 100, AfterMBps: 120, Converged: true,
		Rounds: []Round{{Index: 0}}}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}
