package qa

import (
	"math"

	"spiderfs/internal/rng"
)

// Release testing at scale (Lesson 9): OLCF allocates Titan and Spider
// for full-scale tests of candidate Lustre releases because "these
// tests identify edge cases and problems that would not manifest
// themselves otherwise". The model: a release carries latent defects,
// each with a tiny per-client-hour trigger probability; the chance a
// test campaign exposes a defect grows with scale, so a production-size
// test finds what a testbed cannot.

// Defect is one latent bug in a candidate release.
type Defect struct {
	Name string
	// TriggerProb is the chance one client-hour of testing trips it.
	TriggerProb float64
}

// Release is a candidate software version.
type Release struct {
	Version string
	Defects []Defect
}

// ExposureProbability returns the analytic chance that a test at the
// given scale exposes the defect: 1 - (1-p)^(clients*hours).
func ExposureProbability(d Defect, clients int, hours float64) float64 {
	exposure := float64(clients) * hours
	return 1 - math.Pow(1-d.TriggerProb, exposure)
}

// TestCampaign runs a simulated test of the release at the given scale
// and returns the defects it exposed.
func TestCampaign(r Release, clients int, hours float64, src *rng.Source) []Defect {
	var found []Defect
	for _, d := range r.Defects {
		if src.Bool(ExposureProbability(d, clients, hours)) {
			found = append(found, d)
		}
	}
	return found
}

// EscapeRisk returns the probability that at least one defect survives
// the campaign and escapes to production — the number Lesson 9's
// practice drives toward zero by testing at Titan scale.
func EscapeRisk(r Release, clients int, hours float64) float64 {
	pAllFound := 1.0
	for _, d := range r.Defects {
		pAllFound *= ExposureProbability(d, clients, hours)
	}
	return 1 - pAllFound
}
