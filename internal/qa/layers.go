package qa

import (
	"fmt"
	"strings"

	"spiderfs/internal/disk"
	"spiderfs/internal/lustre"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
	"spiderfs/internal/workload"
)

// Layer profiling implements the paper's end-to-end tuning methodology
// (Lesson 12): benchmark every layer of the I/O path from the bottom
// up, establish the expected performance of the next layer from the
// measured one below it, and quantify the loss at each transition.

// LayerReport is one rung of the ladder.
type LayerReport struct {
	Layer        string
	ExpectedMBps float64 // derived from the layer below
	MeasuredMBps float64
	// Efficiency = measured/expected; the "lost performance in
	// traversing from one layer to the next".
	Efficiency float64
}

// ProfileLayers measures the sequential-write ladder of one OST column
// of the given namespace parameters: raw disk, RAID-6 group, OST stack
// (controller + journal + RAID), and the client file system path.
func ProfileLayers(p lustre.Params, seed uint64) []LayerReport {
	var out []LayerReport

	// Layer 1: one raw disk, streaming 1 MiB writes.
	eng := sim.NewEngine()
	src := rng.New(seed)
	d := disk.New(eng, 0, p.DiskCfg, disk.Nominal(), src.Split("d"))
	diskRes := workload.RunFairLIODisk(eng, d, workload.FairLIOConfig{
		RequestSize: 1 << 20, QueueDepth: 4, WriteFrac: 1, Duration: 2 * sim.Second,
	}, src.Split("io"))
	out = append(out, LayerReport{
		Layer:        "disk (raw, seq 1MiB)",
		ExpectedMBps: p.DiskCfg.PeakMBps,
		MeasuredMBps: diskRes.MBps,
		Efficiency:   diskRes.MBps / p.DiskCfg.PeakMBps,
	})

	// Layer 2: one RAID-6 group. Expected: data disks x measured disk
	// rate (parity writes overlap the data writes on separate spindles).
	eng2 := sim.NewEngine()
	src2 := rng.New(seed + 1)
	groups := buildLayerGroups(eng2, p, src2)
	groupRes := workload.RunFairLIOGroup(eng2, groups[0], workload.FairLIOConfig{
		RequestSize: 1 << 20, QueueDepth: 8, WriteFrac: 1, Duration: 2 * sim.Second,
	}, src2.Split("io"))
	expGroup := float64(p.GroupCfg.DataDisks) * diskRes.MBps
	out = append(out, LayerReport{
		Layer:        "raid6 8+2 group (LUN)",
		ExpectedMBps: expGroup,
		MeasuredMBps: groupRes.MBps,
		Efficiency:   groupRes.MBps / expGroup,
	})

	// Layer 3: the OST stack — controller share + journal + RAID,
	// write-through semantics. Expected: min(group rate, the
	// controller's fair share per OST).
	eng3 := sim.NewEngine()
	fs3 := lustre.Build(eng3, p, rng.New(seed+2))
	var file3 *lustre.File
	fs3.CreateOn("layer/ost", []int{0}, func(f *lustre.File) { file3 = f })
	eng3.Run()
	ctrlShare := p.CtrlCfg.Bps / float64(p.OSTsPerSSU) / 1e6
	ostRate := measureObjectSync(eng3, file3.Objects[0], 256<<20)
	expOST := groupRes.MBps
	if ctrlShare < expOST {
		expOST = ctrlShare
	}
	out = append(out, LayerReport{
		Layer:        "OST stack (ctrl+journal+raid)",
		ExpectedMBps: expOST,
		MeasuredMBps: ostRate,
		Efficiency:   ostRate / expOST,
	})

	// Layer 4: the client path (OSS software, write-back pipeline) onto
	// one OST. Expected: the layer-capacity bound (group rate capped by
	// the controller share); write-back pipelining can beat the
	// synchronous OST measurement but not the hardware underneath.
	eng4 := sim.NewEngine()
	fs4 := lustre.Build(eng4, p, rng.New(seed+3))
	client := lustre.NewClient(0, topology.Coord{}, fs4, lustre.NullTransport{Eng: eng4})
	var file4 *lustre.File
	fs4.CreateOn("layer/client", []int{0}, func(f *lustre.File) { file4 = f })
	eng4.Run()
	start := eng4.Now()
	total := int64(256 << 20)
	client.WriteStream(file4, total, 1<<20, nil)
	eng4.Run() // to drain: sustained client-visible rate
	clientRate := float64(total) / (eng4.Now() - start).Seconds() / 1e6
	out = append(out, LayerReport{
		Layer:        "client FS path (1 stripe)",
		ExpectedMBps: expOST,
		MeasuredMBps: clientRate,
		Efficiency:   clientRate / expOST,
	})
	return out
}

func buildLayerGroups(eng *sim.Engine, p lustre.Params, src *rng.Source) []*raid.Group {
	fs := lustre.Build(eng, p, src)
	out := make([]*raid.Group, len(fs.OSTs))
	for i, o := range fs.OSTs {
		out[i] = o.Group()
	}
	return out
}

// measureObjectSync drives synchronous object writes to completion.
func measureObjectSync(eng *sim.Engine, obj *lustre.Object, total int64) float64 {
	start := eng.Now()
	var moved int64
	outstanding := 0
	var issue func()
	issue = func() {
		for outstanding < 8 && moved+int64(outstanding)*(1<<20) < total {
			outstanding++
			obj.WriteSync(1<<20, false, func() {
				outstanding--
				moved += 1 << 20
				issue()
			})
		}
	}
	issue()
	eng.Run()
	return float64(moved) / (eng.Now() - start).Seconds() / 1e6
}

// RenderLayers prints the ladder as the tuning teams read it.
func RenderLayers(reports []LayerReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %12s %12s %10s\n", "layer", "expected", "measured", "efficiency")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-32s %10.1f MB/s %8.1f MB/s %9.0f%%\n",
			r.Layer, r.ExpectedMBps, r.MeasuredMBps, r.Efficiency*100)
	}
	return b.String()
}
