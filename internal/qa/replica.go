package qa

import (
	"fmt"

	"spiderfs/internal/disk"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/sweep"
)

// SlowDiskReplica returns a sweep body that runs one independent E3
// slow-disk elimination campaign (§V-A): a fresh engine and drive fleet
// seeded from the replica stream, the full multi-round
// benchmark/bin/replace loop, and the campaign's headline numbers
// recorded as metrics. Replicas share nothing, so the sweep runner can
// fan them across workers.
func SlowDiskReplica(groups int, cfg EliminationConfig) sweep.Body {
	return func(r *sweep.Rep) error {
		eng := sim.NewEngine()
		dcfg := disk.NLSAS2TB()
		dcfg.Capacity = 1 << 30
		fleet := raid.BuildGroups(eng, groups, raid.Spider2Group(), dcfg,
			disk.DefaultPopulation(), rng.New(r.Seed))
		rep := RunElimination(eng, fleet, cfg, r.Src.Split("elim"))
		if len(rep.Rounds) == 0 {
			return fmt.Errorf("qa: elimination produced no rounds")
		}

		drives := 0
		for _, g := range fleet {
			drives += len(g.Disks())
		}
		first, last := rep.Rounds[0], rep.Rounds[len(rep.Rounds)-1]
		r.Record("rounds", float64(len(rep.Rounds)))
		r.Record("replaced_frac", float64(rep.TotalReplaced)/float64(drives))
		r.Record("initial_spread", first.Spread)
		r.Record("final_spread", last.Spread)
		if rep.Converged {
			r.Record("converged", 1)
		} else {
			r.Record("converged", 0)
		}
		if rep.BeforeMBps > 0 {
			r.Record("aggregate_gain", rep.AfterMBps/rep.BeforeMBps-1)
		}
		return nil
	}
}
