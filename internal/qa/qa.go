// Package qa implements Spider's performance quality-assurance
// practices: the multi-round slow-disk elimination campaign of §V-A
// (benchmark every RAID group, bin by performance, inspect the slowest
// bin's drive latencies, replace outliers, repeat until the variance
// envelope is met) and the "thin file system" reserved test region of
// §V-D that allows destructive performance tests on a production
// system.
package qa

import (
	"fmt"

	"spiderfs/internal/disk"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/stats"
	"spiderfs/internal/workload"
)

// EliminationConfig tunes a slow-disk campaign.
type EliminationConfig struct {
	// BenchBytes is the data written per group per round's measurement.
	BenchBytes int64
	// RequestSize for the per-group benchmark (1 MiB, full stripe).
	RequestSize int64
	// QueueDepth of the per-group benchmark.
	QueueDepth int
	// SpreadTarget is the acceptance envelope: (mean-min)/mean across
	// groups must fall at or below it. Spider II's contract started at
	// 5% and was relaxed to 7.5% in production.
	SpreadTarget float64
	// Bins is the number of performance bins; the slowest InspectBins of
	// them are inspected for replacement candidates.
	Bins        int
	InspectBins int
	// LatencyFactor flags a drive whose mean command latency exceeds
	// LatencyFactor x the median of its group's drives.
	LatencyFactor float64
	// MaxRounds bounds the campaign.
	MaxRounds int
}

// DefaultElimination mirrors the Spider II acceptance campaign.
func DefaultElimination() EliminationConfig {
	return EliminationConfig{
		BenchBytes:    64 << 20,
		RequestSize:   1 << 20,
		QueueDepth:    8,
		SpreadTarget:  0.05,
		Bins:          10,
		InspectBins:   3,
		LatencyFactor: 1.10,
		MaxRounds:     8,
	}
}

// Round reports one benchmark/replace cycle.
type Round struct {
	Index     int
	GroupMBps []float64
	MeanMBps  float64
	MinMBps   float64
	Spread    float64 // (mean-min)/mean
	Replaced  int
}

// Report summarizes a campaign.
type Report struct {
	Rounds        []Round
	TotalReplaced int
	Converged     bool
	// Aggregate bandwidth before and after (sum of group rates).
	BeforeMBps float64
	AfterMBps  float64
}

func (r Report) String() string {
	return fmt.Sprintf("slow-disk campaign: %d rounds, %d disks replaced, %.0f -> %.0f MB/s aggregate, converged=%v",
		len(r.Rounds), r.TotalReplaced, r.BeforeMBps, r.AfterMBps, r.Converged)
}

// benchGroups measures each group's sequential write bandwidth. Drive
// latency counters are reset first so the per-round inspection sees only
// this round's behaviour.
func benchGroups(eng *sim.Engine, groups []*raid.Group, cfg EliminationConfig) []float64 {
	out := make([]float64, len(groups))
	// Warm-up: one untimed write per group aligns every drive's head at
	// the bench region, so round-to-round comparisons measure streaming
	// rate rather than the initial seek.
	for _, g := range groups {
		g.Write(0, cfg.RequestSize, nil)
	}
	eng.Run()
	for _, g := range groups {
		for _, d := range g.Disks() {
			d.ResetStats()
		}
	}
	for i, g := range groups {
		var moved int64
		outstanding := 0
		issue := func() {}
		off := cfg.RequestSize // continue where the warm-up left the heads
		issue = func() {
			for outstanding < cfg.QueueDepth && moved+int64(outstanding)*cfg.RequestSize < cfg.BenchBytes {
				outstanding++
				if off+cfg.RequestSize > g.Capacity() {
					off = 0
				}
				o := off
				off += cfg.RequestSize
				g.Write(o, cfg.RequestSize, func() {
					outstanding--
					moved += cfg.RequestSize
					issue()
				})
			}
		}
		start := eng.Now()
		issue()
		eng.Run()
		dur := eng.Now() - start
		if dur > 0 {
			out[i] = float64(moved) / 1e6 / dur.Seconds()
		}
	}
	return out
}

// replaceSlowDisks inspects the slowest bin's groups, replacing drives
// whose mean command latency is an outlier within their group. Returns
// the number of replacements.
func replaceSlowDisks(groups []*raid.Group, mbps []float64, cfg EliminationConfig, src *rng.Source) int {
	bins := stats.QuantileBins(mbps, cfg.Bins)
	inspect := cfg.InspectBins
	if inspect < 1 {
		inspect = 1
	}
	if inspect > len(bins.Members) {
		inspect = len(bins.Members)
	}
	var candidates []int
	for b := 0; b < inspect; b++ {
		candidates = append(candidates, bins.Members[b]...)
	}
	replaced := 0
	for _, gi := range candidates {
		g := groups[gi]
		disks := g.Disks()
		lats := make([]float64, len(disks))
		for i, d := range disks {
			lats[i] = d.Latency.Mean
		}
		median := stats.Percentile(lats, 0.5)
		if median <= 0 {
			continue
		}
		for i, d := range disks {
			if lats[i] > cfg.LatencyFactor*median {
				// Swap in a healthy drive from spares.
				h := disk.Nominal()
				h.SpeedFactor = src.TruncNormal(1.0, 0.015, 0.95, 1.05)
				d.SetHealth(h)
				d.ResetStats()
				replaced++
				_ = i
			}
		}
	}
	return replaced
}

func spreadOf(mbps []float64) (mean, min, spread float64) {
	var s stats.Summary
	for _, v := range mbps {
		s.Add(v)
	}
	if s.Mean == 0 {
		return 0, 0, 0
	}
	return s.Mean, s.Min, (s.Mean - s.Min) / s.Mean
}

// RunElimination executes the campaign and returns the report.
func RunElimination(eng *sim.Engine, groups []*raid.Group, cfg EliminationConfig, src *rng.Source) Report {
	var rep Report
	for round := 0; round < cfg.MaxRounds; round++ {
		mbps := benchGroups(eng, groups, cfg)
		mean, min, spread := spreadOf(mbps)
		r := Round{Index: round, GroupMBps: mbps, MeanMBps: mean, MinMBps: min, Spread: spread}
		if round == 0 {
			rep.BeforeMBps = mean * float64(len(groups))
		}
		rep.AfterMBps = mean * float64(len(groups))
		if spread <= cfg.SpreadTarget {
			rep.Rounds = append(rep.Rounds, r)
			rep.Converged = true
			return rep
		}
		r.Replaced = replaceSlowDisks(groups, mbps, cfg, src)
		rep.TotalReplaced += r.Replaced
		rep.Rounds = append(rep.Rounds, r)
		if r.Replaced == 0 {
			// Nothing left to swap in the slowest bin; declare done.
			rep.Converged = spread <= cfg.SpreadTarget
			return rep
		}
	}
	return rep
}

// ThinFS is the reserved test region: a small slice at the head of each
// RAID LUN kept free of user data so destructive benchmarks can run for
// the lifetime of the system (§V-D).
type ThinFS struct {
	Groups    []*raid.Group
	SliceSize int64 // reserved bytes per group
}

// NewThinFS reserves sliceSize bytes on each group.
func NewThinFS(groups []*raid.Group, sliceSize int64) *ThinFS {
	if sliceSize <= 0 {
		panic("qa: thin slice must be positive") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return &ThinFS{Groups: groups, SliceSize: sliceSize}
}

// CapacityOverhead returns the fraction of total capacity consumed by
// the reservation (what the acquisition must budget for).
func (t *ThinFS) CapacityOverhead() float64 {
	var total int64
	for _, g := range t.Groups {
		total += g.Capacity()
	}
	return float64(t.SliceSize*int64(len(t.Groups))) / float64(total)
}

// Bench runs the block benchmark confined to each group's reserved
// slice, returning per-group MB/s. It is safe against production data by
// construction (the slice holds none).
func (t *ThinFS) Bench(eng *sim.Engine, cfg workload.FairLIOConfig, src *rng.Source) []float64 {
	out := make([]float64, len(t.Groups))
	for i, g := range t.Groups {
		res := runSliceBench(eng, g, t.SliceSize, cfg, src.Split(fmt.Sprintf("thin-%d", i)))
		out[i] = res
	}
	return out
}

func runSliceBench(eng *sim.Engine, g *raid.Group, slice int64, cfg workload.FairLIOConfig, src *rng.Source) float64 {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	var moved int64
	var off int64
	outstanding := 0
	end := eng.Now() + cfg.Duration
	var issue func()
	issue = func() {
		for outstanding < cfg.QueueDepth && eng.Now() < end {
			outstanding++
			var o int64
			if cfg.Random {
				o = src.Int63n(slice - cfg.RequestSize)
				o -= o % cfg.RequestSize
			} else {
				if off+cfg.RequestSize > slice {
					off = 0
				}
				o = off
				off += cfg.RequestSize
			}
			done := func() {
				outstanding--
				moved += cfg.RequestSize
				issue()
			}
			if src.Bool(cfg.WriteFrac) {
				g.Write(o, cfg.RequestSize, done)
			} else {
				g.Read(o, cfg.RequestSize, done)
			}
		}
	}
	start := eng.Now()
	issue()
	eng.Run()
	dur := eng.Now() - start
	if dur <= 0 {
		return 0
	}
	return float64(moved) / 1e6 / dur.Seconds()
}
