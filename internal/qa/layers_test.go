package qa

import (
	"strings"
	"testing"

	"spiderfs/internal/lustre"
)

func TestProfileLayersLadder(t *testing.T) {
	p := lustre.TestNamespace()
	reports := ProfileLayers(p, 1)
	if len(reports) != 4 {
		t.Fatalf("layers = %d, want 4", len(reports))
	}
	names := []string{"disk", "raid6", "OST stack", "client"}
	for i, r := range reports {
		if !strings.Contains(r.Layer, strings.Split(names[i], " ")[0]) {
			t.Fatalf("layer %d = %q, want ~%q", i, r.Layer, names[i])
		}
		if r.MeasuredMBps <= 0 || r.ExpectedMBps <= 0 {
			t.Fatalf("layer %q has zero rates: %+v", r.Layer, r)
		}
		// Each layer should achieve a sane fraction of its expectation —
		// losses exist (that's the lesson) but not collapses, and a
		// layer cannot beat its expectation by much.
		if r.Efficiency < 0.3 || r.Efficiency > 1.25 {
			t.Fatalf("layer %q efficiency %.2f out of range: %+v", r.Layer, r.Efficiency, r)
		}
	}
	// The ladder's invariant: the raw disk is the fastest per-device
	// layer; the full stack measures below data-disks x disk rate.
	disk := reports[0].MeasuredMBps
	group := reports[1].MeasuredMBps
	if group > 8*disk {
		t.Fatalf("group (%f) exceeds 8x disk (%f)", group, disk)
	}
}

func TestRenderLayers(t *testing.T) {
	reports := []LayerReport{{Layer: "disk", ExpectedMBps: 140, MeasuredMBps: 133, Efficiency: 0.95}}
	out := RenderLayers(reports)
	if !strings.Contains(out, "disk") || !strings.Contains(out, "95%") {
		t.Fatalf("render: %q", out)
	}
}
