package qa

import (
	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/topology"
)

// SpanLadder rebuilds the Lesson-12 profiling ladder from the tracing
// plane instead of isolated per-layer probes: one fully-sampled client
// streams 1 MiB writes through a single OST column of the namespace,
// and the per-layer bandwidth ladder falls out of the span waterfall —
// every rung measured simultaneously on the same I/O, which is what
// the paper's bottom-up methodology was approximating with serial
// benchmarks. Returns the waterfall, deepest layer first.
func SpanLadder(p lustre.Params, seed uint64) []spantrace.Rung {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, p, rng.New(seed))
	tr := spantrace.New(rng.New(seed^0x51a9_7ace), 1)
	fs.SetTracer(tr)

	cl := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	cl.Tracer = tr
	var file *lustre.File
	fs.CreateOn("span/ladder", []int{0}, func(f *lustre.File) { file = f })
	eng.Run()

	cl.WriteStream(file, 256<<20, 1<<20, nil)
	eng.Run()
	return spantrace.Waterfall(tr.Spans())
}
