package qa

import (
	"math"
	"testing"

	"spiderfs/internal/rng"
)

func candidate() Release {
	return Release{
		Version: "lustre-2.x-rc",
		Defects: []Defect{
			{Name: "ldlm-race", TriggerProb: 1e-5},
			{Name: "lnet-credit-leak", TriggerProb: 3e-6},
			{Name: "recovery-hang", TriggerProb: 1e-6},
		},
	}
}

func TestExposureProbabilityMonotoneInScale(t *testing.T) {
	d := Defect{TriggerProb: 1e-5}
	small := ExposureProbability(d, 128, 8)   // a testbed
	large := ExposureProbability(d, 18688, 8) // Titan
	if small >= large {
		t.Fatalf("scale must increase exposure: %f vs %f", small, large)
	}
	// At Titan scale an 1e-5 defect is near-certain to trip in a shift.
	if large < 0.7 {
		t.Fatalf("Titan-scale exposure = %f, want high", large)
	}
	if small > 0.05 {
		t.Fatalf("testbed exposure = %f, want low (the Lesson 9 point)", small)
	}
}

func TestEscapeRiskDropsWithScale(t *testing.T) {
	r := candidate()
	// Same wall-clock shift on a testbed vs a multi-day full-scale
	// campaign on Titan (what the OLCF actually ran before upgrades).
	testbed := EscapeRisk(r, 128, 8)
	titan := EscapeRisk(r, 18688, 72)
	if titan >= testbed {
		t.Fatalf("escape risk should drop with scale: %f vs %f", titan, testbed)
	}
	if testbed < 0.9 {
		t.Fatalf("testbed escape risk = %f; the latent defects should escape a small test", testbed)
	}
	if titan > 0.5 {
		t.Fatalf("titan escape risk = %f, want materially reduced", titan)
	}
}

func TestTestCampaignFindsAtScale(t *testing.T) {
	r := candidate()
	src := rng.New(7)
	// Average over trials: Titan-scale campaigns find more defects.
	trials := 200
	var smallFound, bigFound int
	for i := 0; i < trials; i++ {
		smallFound += len(TestCampaign(r, 128, 8, src.Split("s")))
		bigFound += len(TestCampaign(r, 18688, 8, src.Split("b")))
	}
	if bigFound <= smallFound {
		t.Fatalf("at-scale campaigns found %d vs testbed %d", bigFound, smallFound)
	}
}

func TestExposureProbabilityBounds(t *testing.T) {
	d := Defect{TriggerProb: 0}
	if ExposureProbability(d, 10000, 100) != 0 {
		t.Fatal("zero-probability defect cannot be exposed")
	}
	d = Defect{TriggerProb: 1}
	if p := ExposureProbability(d, 1, 1); math.Abs(p-1) > 1e-12 {
		t.Fatalf("certain defect exposure = %f", p)
	}
}
