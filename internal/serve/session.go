package serve

import "sync"

// Session states, in lifecycle order.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Event is one progress record of a session: admission, execution
// start (annotated cold/warm/cache-hit), per-wave progress, and the
// terminal transition. Seq is the event's index in the session's
// stream, so a poller can resume from where its last read ended.
type Event struct {
	Seq   int    `json:"seq"`
	State string `json:"state"`
	Note  string `json:"note,omitempty"`
}

// Session is one submitted spec moving through the service. All fields
// behind mu; the cond broadcasts every append so progress streams wake
// without polling.
type Session struct {
	// ID is the service-assigned session identifier.
	ID string
	// Token is the session's service-plane random token, drawn from the
	// isolated rng.New(cfg.Seed).Split("serve/<session-id>") stream.
	Token uint64
	// Spec is the normalized spec (canonical; Spec.Key() is the cache key).
	Spec Spec

	mu     sync.Mutex
	cond   *sync.Cond
	state  string
	events []Event
	report *Report
	errmsg string
	cached bool // answered from the result cache
	warm   bool // executed on a pooled (reused) instance
	latNs  int64
}

func newSession(id string, token uint64, spec Spec) *Session {
	s := &Session{ID: id, Token: token, Spec: spec, state: StateQueued}
	s.cond = sync.NewCond(&s.mu)
	s.append(StateQueued, "")
	return s
}

// append records an event in the session's current state. Callers that
// change state set it first (under mu via the helpers below).
func (s *Session) append(state, note string) {
	s.events = append(s.events, Event{Seq: len(s.events), State: state, Note: note})
	s.cond.Broadcast()
}

// start transitions queued -> running, annotated with the execution
// path ("cold", "warm", or "cache").
func (s *Session) start(path string) {
	s.mu.Lock()
	s.state = StateRunning
	s.append(StateRunning, path)
	s.mu.Unlock()
}

// note records mid-run progress (wave completions).
func (s *Session) note(msg string) {
	s.mu.Lock()
	s.append(StateRunning, msg)
	s.mu.Unlock()
}

// finish publishes the report and transitions to done.
func (s *Session) finish(rep *Report, cached, warm bool, latNs int64) {
	s.mu.Lock()
	s.state = StateDone
	s.report = rep
	s.cached = cached
	s.warm = warm
	s.latNs = latNs
	s.append(StateDone, "fingerprint "+rep.Fingerprint)
	s.mu.Unlock()
}

// fail transitions to failed with the error message.
func (s *Session) fail(msg string, latNs int64) {
	s.mu.Lock()
	s.state = StateFailed
	s.errmsg = msg
	s.latNs = latNs
	s.append(StateFailed, msg)
	s.mu.Unlock()
}

// Snapshot is a point-in-time view of a session, shaped for the JSON
// the poll endpoint serves.
type Snapshot struct {
	ID     string  `json:"id"`
	Token  string  `json:"token"`
	Key    string  `json:"key"`
	State  string  `json:"state"`
	Events int     `json:"events"`
	Cached bool    `json:"cached,omitempty"`
	Warm   bool    `json:"warm,omitempty"`
	Error  string  `json:"error,omitempty"`
	Report *Report `json:"report,omitempty"`
}

// Snapshot returns the session's current view.
func (s *Session) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		ID: s.ID, Token: hex(s.Token), Key: s.Spec.Key(),
		State: s.state, Events: len(s.events),
		Cached: s.cached, Warm: s.warm, Error: s.errmsg, Report: s.report,
	}
}

// Terminal reports whether the session has reached done or failed.
func (s *Session) Terminal() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == StateDone || s.state == StateFailed
}

// LatencyNs returns the session's recorded execution wall latency —
// worker pickup to terminal state — or 0 when the service has no clock
// or the session is not terminal yet. The bench harness reads this.
func (s *Session) LatencyNs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latNs
}

// Report returns the final report once done, or (nil, false).
func (s *Session) Report() (*Report, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report, s.report != nil
}

// Wait blocks until the session is terminal and returns its report (nil
// when failed). Sessions always terminate — the worker pool drains the
// admission queue and every scenario run is finite — so Wait is bounded
// by execution, never by other tenants' streams.
func (s *Session) Wait() (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.state != StateDone && s.state != StateFailed {
		s.cond.Wait()
	}
	if s.state == StateFailed {
		return nil, errSessionFailed(s.errmsg)
	}
	return s.report, nil
}

// EventsSince blocks until the session has events past seq (or is
// terminal), then returns the new tail and whether the session is
// terminal. A progress stream calls this in a loop: each call returns
// at least one event until the terminal event has been delivered.
func (s *Session) EventsSince(seq int) ([]Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	for len(s.events) <= seq && s.state != StateDone && s.state != StateFailed {
		s.cond.Wait()
	}
	if seq > len(s.events) {
		seq = len(s.events)
	}
	tail := make([]Event, len(s.events)-seq)
	copy(tail, s.events[seq:])
	return tail, s.state == StateDone || s.state == StateFailed
}

type errSessionFailed string

func (e errSessionFailed) Error() string { return "serve: session failed: " + string(e) }
