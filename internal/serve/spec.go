// Package serve is the multi-tenant simulation service plane: a warm
// pool of engine/fabric instances serving concurrent scenario sessions
// behind a stdlib-only net/http API (cmd/spidersimd). A session is one
// scenario spec — a congestion workload, a chaos campaign, or a seed
// sweep — submitted over HTTP, executed by a bounded worker pool, and
// answered with a report whose fingerprint is bit-identical to the same
// spec/seed run solo through the one-shot CLI.
//
// The determinism contract extends the repo-wide one to tenancy:
//
//  1. Every model stream a session consumes is derived from the spec's
//     own seed with stable labels, exactly as RunSolo derives them —
//     never from service state — so N concurrent sessions reproduce N
//     serial solo runs bit for bit.
//  2. Service-plane randomness (session tokens) comes from an isolated
//     per-session stream, rng.New(cfg.Seed).Split("serve/<session-id>"),
//     which shares no state across sessions and never feeds a model.
//  3. Warm-pool reuse goes through the sim.Engine.Reset and
//     netsim.Fabric.Reset seams, which restore the just-built state —
//     sequence numbers included — so a pooled run's event trace equals
//     a cold run's exactly.
//
// Load is shed, never queued unboundedly: admission is a bounded queue,
// and an overflowing submit is refused immediately with a Retry-After
// hint (HTTP 429 at the API layer).
package serve

import (
	"fmt"
	"strings"
)

// Spec declares one scenario session. The zero fields of the chosen
// kind are filled with defaults by Normalize; Key() canonicalizes the
// normalized spec into the result-cache key, so two submissions that
// normalize identically share one cached report.
type Spec struct {
	// Kind selects the scenario: "workload" (congestion waves on the
	// pooled fabric), "chaos" (a center-wide chaos campaign), or "sweep"
	// (one entry of the registered seed-sweep catalog).
	Kind string `json:"kind"`
	// Seed is the root of every model stream the session draws.
	Seed uint64 `json:"seed"`

	// Full selects the production-scale shape (Titan torus fabric for
	// workloads, the 7-day full-scale campaign for chaos) instead of the
	// small center.
	Full bool `json:"full,omitempty"`

	// Workload parameters: Waves waves of Flows client->OSS transfers of
	// Bytes each, drained to quiescence between waves.
	Waves int     `json:"waves,omitempty"`
	Flows int     `json:"flows,omitempty"`
	Bytes float64 `json:"bytes,omitempty"`

	// Chaos parameter: campaign length override in simulated days.
	Days int `json:"days,omitempty"`

	// Sweep parameters: the catalog label to run and an optional replica
	// override.
	Sweep    string `json:"sweep,omitempty"`
	Replicas int    `json:"replicas,omitempty"`
}

// Workload defaults: three waves of 256 x 16 MB transfers keep a small
// session under ~10ms of wall clock while still congesting every OSS
// port, so service tests and benchmarks stay fast.
const (
	defaultWaves = 3
	defaultFlows = 256
	defaultBytes = 16e6
)

// Normalize validates the spec and fills kind-appropriate defaults,
// clearing parameters that belong to other kinds so Key() is canonical.
func (s *Spec) Normalize() error {
	switch s.Kind {
	case "workload":
		if s.Waves <= 0 {
			s.Waves = defaultWaves
		}
		if s.Flows <= 0 {
			s.Flows = defaultFlows
		}
		if s.Bytes <= 0 {
			s.Bytes = defaultBytes
		}
		s.Days, s.Sweep, s.Replicas = 0, "", 0
	case "chaos":
		if s.Days < 0 {
			return fmt.Errorf("serve: negative days %d", s.Days)
		}
		s.Waves, s.Flows, s.Bytes, s.Sweep, s.Replicas = 0, 0, 0, "", 0
	case "sweep":
		if s.Sweep == "" {
			return fmt.Errorf("serve: sweep spec needs a sweep label")
		}
		if strings.ContainsAny(s.Sweep, "/ \t\n") {
			return fmt.Errorf("serve: invalid sweep label %q", s.Sweep)
		}
		if s.Replicas < 0 {
			return fmt.Errorf("serve: negative replicas %d", s.Replicas)
		}
		s.Full, s.Waves, s.Flows, s.Bytes, s.Days = false, 0, 0, 0, 0
	default:
		return fmt.Errorf("serve: unknown kind %q (want workload, chaos, or sweep)", s.Kind)
	}
	return nil
}

// Key returns the canonical (spec, seed) fingerprint used as the result
// cache key. Field order is fixed and only the normalized fields of the
// spec's kind participate, so equal work maps to equal keys.
func (s Spec) Key() string {
	switch s.Kind {
	case "workload":
		return fmt.Sprintf("workload/seed=%d/full=%t/waves=%d/flows=%d/bytes=%g",
			s.Seed, s.Full, s.Waves, s.Flows, s.Bytes)
	case "chaos":
		return fmt.Sprintf("chaos/seed=%d/full=%t/days=%d", s.Seed, s.Full, s.Days)
	case "sweep":
		return fmt.Sprintf("sweep/seed=%d/label=%s/replicas=%d", s.Seed, s.Sweep, s.Replicas)
	}
	return "invalid/" + s.Kind
}
