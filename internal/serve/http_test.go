package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"spiderfs/internal/ledger"
)

func postSpec(t *testing.T, ts *httptest.Server, body string) (*http.Response, Snapshot) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp, snap
}

// drainEvents reads the ndjson progress stream to EOF (the handler
// closes it after the terminal event) and returns the events.
func drainEvents(t *testing.T, ts *httptest.Server, id string, seq int) []Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/events?seq=" + strconv.Itoa(seq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestHTTPSessionLifecycle submits over HTTP, streams progress to the
// terminal event, and byte-compares the served report against the
// one-shot solo run — the API half of the determinism contract.
func TestHTTPSessionLifecycle(t *testing.T) {
	svc := New(Config{Workers: 2, PoolSize: 1, QueueDepth: 8})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, snap := postSpec(t, ts, `{"kind":"workload","seed":42,"waves":2,"flows":64,"bytes":4e6}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if snap.ID == "" || snap.Token == "" || snap.Key == "" {
		t.Fatalf("incomplete snapshot %+v", snap)
	}

	events := drainEvents(t, ts, snap.ID, 0)
	if len(events) < 4 { // queued, running, 2 waves, done
		t.Fatalf("only %d events: %+v", len(events), events)
	}
	if events[0].State != StateQueued || events[len(events)-1].State != StateDone {
		t.Fatalf("event stream ends wrong: %+v", events)
	}
	if !strings.HasPrefix(events[len(events)-1].Note, "fingerprint ") {
		t.Fatalf("terminal note %q", events[len(events)-1].Note)
	}
	// Resume from mid-stream: the tail after seq=2 must line up.
	tail := drainEvents(t, ts, snap.ID, 2)
	if len(tail) != len(events)-2 || tail[0].Seq != 2 {
		t.Fatalf("resume tail wrong: %+v", tail)
	}

	// Poll endpoint agrees the session is done.
	poll, err := http.Get(ts.URL + "/v1/sessions/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	var done Snapshot
	if err := json.NewDecoder(poll.Body).Decode(&done); err != nil {
		t.Fatal(err)
	}
	poll.Body.Close()
	if done.State != StateDone || done.Report == nil {
		t.Fatalf("poll after terminal: %+v", done)
	}

	// The served report is byte-identical to the solo run.
	want, err := RunSolo(Spec{Kind: "workload", Seed: 42, Waves: 2, Flows: 64, Bytes: 4e6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := http.Get(ts.URL + "/v1/sessions/" + snap.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := io.ReadAll(rep.Body)
	rep.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatusCode != http.StatusOK {
		t.Fatalf("report status %d: %s", rep.StatusCode, gotJSON)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("served report differs from solo run:\n%s\nvs\n%s", gotJSON, wantJSON)
	}

	// Stats endpoint lists the session in admission order.
	st, err := http.Get(ts.URL + "/v1/stats?sessions=1")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if stats.Completed != 1 || len(stats.Sessions) != 1 || stats.Sessions[0].ID != snap.ID {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestHTTPErrors(t *testing.T) {
	svc := New(Config{Workers: 1, PoolSize: 1, QueueDepth: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if resp, _ := postSpec(t, ts, `{"kind":"nonsense"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postSpec(t, ts, `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	for _, path := range []string{"/v1/sessions/s-999999", "/v1/sessions/s-999999/events", "/v1/sessions/s-999999/report"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// A real session with a garbage seq parameter is a 400.
	_, snap := postSpec(t, ts, `{"kind":"workload","seed":7,"waves":1,"flows":16,"bytes":1e6}`)
	resp, err := http.Get(ts.URL + "/v1/sessions/" + snap.ID + "/events?seq=banana")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seq: status %d, want 400", resp.StatusCode)
	}
	if sess, ok := svc.Session(snap.ID); ok {
		_, _ = sess.Wait()
	}
}

// TestHTTPBackpressure429 overflows the admission queue over HTTP and
// demands 429 with a Retry-After header — the shedding contract.
func TestHTTPBackpressure429(t *testing.T) {
	svc := New(Config{Workers: 1, PoolSize: 1, QueueDepth: 1, CacheSize: -1})
	gate := make(chan struct{})
	svc.testGate = gate
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, blocker := postSpec(t, ts, `{"kind":"workload","seed":800,"waves":1,"flows":16,"bytes":1e6}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker status %d", resp.StatusCode)
	}
	<-gate // worker owns the blocker and is parked: the queue slot is free

	if resp, _ := postSpec(t, ts, `{"kind":"workload","seed":801,"waves":1,"flows":16,"bytes":1e6}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("filler status %d", resp.StatusCode)
	}
	resp, _ = postSpec(t, ts, `{"kind":"workload","seed":802,"waves":1,"flows":16,"bytes":1e6}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	// Release both admitted sessions so Close has nothing in flight.
	gate <- struct{}{}
	<-gate
	gate <- struct{}{}
	if sess, ok := svc.Session(blocker.ID); ok {
		_, _ = sess.Wait()
	}
}

// TestHTTPLedgerEndpoint pulls a finished workload session's
// operations-ledger export, audits it clean, and byte-compares it
// against the solo run's — then checks that sweep sessions (which keep
// no ledger) answer 404.
func TestHTTPLedgerEndpoint(t *testing.T) {
	svc := New(Config{Workers: 1, PoolSize: 1, QueueDepth: 8, Sweeps: toyCatalog()})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	_, snap := postSpec(t, ts, `{"kind":"workload","seed":42,"waves":2,"flows":64,"bytes":4e6}`)
	sess, ok := svc.Session(snap.ID)
	if !ok {
		t.Fatal("session vanished")
	}
	if _, err := sess.Wait(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/sessions/" + snap.ID + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ledger status %d: %s", resp.StatusCode, body)
	}
	var exp ledger.Export
	if err := json.Unmarshal(body, &exp); err != nil {
		t.Fatalf("ledger export does not decode: %v", err)
	}
	if fs := ledger.Audit(&exp); len(fs) != 0 {
		t.Fatalf("served ledger audit found %v", fs)
	}
	if len(exp.Entries) != 2 || len(exp.Anchors) != 2 {
		t.Fatalf("2-wave session served %d entries in %d anchors, want 2/2",
			len(exp.Entries), len(exp.Anchors))
	}

	// Byte-identical to the solo run's export — the pooled-replay half
	// of the ledger determinism contract.
	want, err := RunSolo(Spec{Kind: "workload", Seed: 42, Waves: 2, Flows: 64, Bytes: 4e6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want.Ledger)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(&exp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("served ledger differs from solo run:\n%s\nvs\n%s", gotJSON, wantJSON)
	}

	// Sweep sessions keep no ledger: 404.
	_, sw := postSpec(t, ts, `{"kind":"sweep","seed":11,"sweep":"toy"}`)
	if sess, ok := svc.Session(sw.ID); ok {
		if _, err := sess.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	resp, err = http.Get(ts.URL + "/v1/sessions/" + sw.ID + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("sweep ledger status %d, want 404", resp.StatusCode)
	}
}
