package serve

import (
	"fmt"

	"spiderfs/internal/chaos"
	"spiderfs/internal/ledger"
	"spiderfs/internal/netsim"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/sweep"
	"spiderfs/internal/topology"
)

// instance is one warm engine/fabric pair. The service reuses instances
// across workload sessions through the Reset seams instead of paying
// the fabric build (68,440 links at full scale) per session.
type instance struct {
	eng  *sim.Engine
	fab  *netsim.Fabric
	full bool
}

// buildInstance constructs a cold engine/fabric pair. The small shape
// matches the repo's small center (5x4x4 torus, 16 I/O modules in 4
// groups, 16 OSSes); full mirrors the production deployment the
// netbench suite drives (Titan torus, 110 modules, 288 OSSes).
func buildInstance(full bool) *instance {
	eng := sim.NewEngine()
	cfg := netsim.Spider2Fabric()
	var pl topology.Placement
	nOSS := 16
	if full {
		pl = topology.PlaceRouters(topology.TitanCabinets(), cfg.Torus, 110, 9)
		nOSS = 288
	} else {
		cfg.Torus = topology.Torus{NX: 5, NY: 4, NZ: 4}
		pl = topology.PlaceRouters(topology.CabinetGrid{Cols: 5, Rows: 2}, cfg.Torus, 16, 4)
	}
	return &instance{eng: eng, fab: netsim.NewFabric(eng, cfg, pl, nOSS), full: full}
}

// RunSolo executes one normalized spec on fresh state — the one-shot
// CLI path (`spidersim session`) and the reference the service's
// pooled results must match bit for bit. catalog supplies the sweep
// entries "sweep"-kind specs may name; nil is fine for the other kinds.
func RunSolo(spec Spec, catalog []sweep.Entry) (*Report, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case "workload":
		inst := buildInstance(spec.Full)
		return runWorkload(inst.eng, inst.fab, spec, nil), nil
	case "chaos":
		return runChaos(spec), nil
	default:
		return runSweepEntry(spec, catalog)
	}
}

// runWorkload drives the session's congestion waves on the given
// engine/fabric — cold or pooled, the code path is identical, which is
// what makes warm reuse fingerprint-safe. All randomness comes from a
// named split of the spec seed; the engine trace plus the fabric's
// outcome counters form the fingerprint.
func runWorkload(eng *sim.Engine, fab *netsim.Fabric, spec Spec, note func(string)) *Report {
	th := sim.NewTraceHash()
	eng.SetTrace(th.Observe)
	src := rng.New(spec.Seed).Split("serve/workload")
	tor := fab.Cfg.Torus
	nodes, nOSS := tor.Nodes(), fab.NumOSS()
	// The session ledger records one milestone per drained wave at
	// simulated time, then anchors each as its own Merkle batch — so a
	// pooled replay of the same spec yields byte-identical roots (the
	// engine clock resets with the instance). Appends at the monotone
	// engine clock on an open ledger cannot fail, so the error is
	// discarded; the ledger never perturbs the run.
	ops := ledger.New(ledger.Config{})
	for w := 0; w < spec.Waves; w++ {
		for i := 0; i < spec.Flows; i++ {
			c := tor.CoordOf(src.Intn(nodes))
			fab.StartClientFlow(c, src.Intn(nOSS), netsim.RouteFGR, spec.Bytes, src, nil)
		}
		eng.Run()
		_ = ops.Append(eng.Now(), spec.Key(), "workload",
			fmt.Sprintf("wave-%d-drained", w+1),
			fmt.Sprintf("%d flows, %d total events fired", spec.Flows, eng.Fired()))
		ops.Seal()
		if note != nil {
			note(fmt.Sprintf("wave %d/%d drained", w+1, spec.Waves))
		}
	}
	ops.Close()
	eng.SetTrace(nil)

	fp := newFingerprinter()
	fp.word(th.Sum())
	fp.word(eng.Fired())
	fp.word(fab.Net.FlowsCompleted)
	fp.float(fab.Net.BytesDelivered)
	fp.word(fab.StalledSends)
	fp.word(fab.DroppedFlows)
	return &Report{
		Kind: spec.Kind, Key: spec.Key(), Seed: spec.Seed,
		Fingerprint: hex(fp.sum()),
		Metrics: []Metric{
			{Name: "events", Value: float64(eng.Fired())},
			{Name: "flows_completed", Value: float64(fab.Net.FlowsCompleted)},
			{Name: "bytes_delivered", Value: fab.Net.BytesDelivered},
			{Name: "stalled_sends", Value: float64(fab.StalledSends)},
			{Name: "dropped_flows", Value: float64(fab.DroppedFlows)},
		},
		Ledger: ops.Export(),
	}
}

// runChaos replays the chaos campaign exactly as `spidersim chaos`
// configures it: the quick 1-day small center, or the 7-day full-scale
// campaign with Full, with an optional day-count override.
func runChaos(spec Spec) *Report {
	cfg := chaos.QuickConfig(spec.Seed)
	if spec.Full {
		cfg = chaos.DefaultConfig(spec.Seed)
	}
	if spec.Days > 0 {
		cfg.Duration = sim.Time(spec.Days) * sim.Day
	}
	rep := chaos.Run(cfg)
	return &Report{
		Kind: spec.Kind, Key: spec.Key(), Seed: spec.Seed,
		Fingerprint: hex(rep.Fingerprint()),
		Metrics: []Metric{
			{Name: "availability", Value: rep.Availability},
			{Name: "ost_downtime_s", Value: rep.OSTDowntime.Seconds()},
			{Name: "stalled_sends", Value: float64(rep.StalledSends)},
			{Name: "dropped_flows", Value: float64(rep.DroppedFlows)},
			{Name: "incidents", Value: float64(rep.Incidents)},
		},
		Ledger: rep.Ops,
	}
}

// runSweepEntry runs one catalog sweep through the deterministic
// parallel replica runner. The entry's own seed and body are part of
// the catalog; the spec may only scale the replica count.
func runSweepEntry(spec Spec, catalog []sweep.Entry) (*Report, error) {
	for _, e := range catalog {
		if e.Label != spec.Sweep {
			continue
		}
		replicas := e.Replicas
		if spec.Replicas > 0 {
			replicas = spec.Replicas
		}
		res, err := sweep.Run(sweep.Config{
			Label: e.Label, Seed: e.Seed, Replicas: replicas,
		}, e.Body)
		if err != nil {
			return nil, err
		}
		return &Report{
			Kind: spec.Kind, Key: spec.Key(), Seed: spec.Seed,
			Fingerprint: hex(res.Fingerprint()),
			Metrics: []Metric{
				{Name: "replicas", Value: float64(len(res.Replicas))},
				{Name: "errors", Value: float64(res.Errors)},
			},
		}, nil
	}
	return nil, fmt.Errorf("serve: sweep %q not in the registered catalog", spec.Sweep)
}
