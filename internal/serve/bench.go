package serve

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
)

// Bench parameters: enough sessions per path for stable percentiles,
// small enough that regenerating BENCH_serve.json stays in CI budget.
const (
	benchSessions = 12
	benchSeedBase = 1000
)

// PathStat is one execution path's latency distribution.
type PathStat struct {
	Path           string  `json:"path"` // cold | warm | cache
	Sessions       int     `json:"sessions"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	P50Ns          float64 `json:"p50_ns"`
	P99Ns          float64 `json:"p99_ns"`
}

// Suite is the BENCH_serve.json artifact. Fingerprint, Deterministic,
// and Errors are exact-gated by internal/regress; the latency-derived
// fields (sessions/sec, percentiles, speedups) are recorded but never
// gated — a 1-CPU CI host legitimately reports different ratios.
type Suite struct {
	Schema   string `json:"schema"`
	CPUs     int    `json:"cpus"`
	Workers  int    `json:"workers"`
	PoolSize int    `json:"pool_size"`

	// Fingerprint is the probe spec's report fingerprint — identical on
	// every host, gated exactly.
	Fingerprint string `json:"fingerprint"`
	// Deterministic records that every seed produced the same
	// fingerprint on the cold path and the warm-pool path.
	Deterministic bool `json:"deterministic"`
	// Errors counts failed sessions across all phases (gated at zero).
	Errors int `json:"errors"`

	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	PoolReuses     uint64 `json:"pool_reuses"`

	// WarmSpeedup and CacheSpeedup compare p50 latencies against the
	// cold path (recorded, not gated).
	WarmSpeedup  float64 `json:"warm_speedup"`
	CacheSpeedup float64 `json:"cache_speedup"`

	Paths []PathStat `json:"paths"`
}

// benchSpec is the probe workload every phase runs (seed varied per
// session to defeat the cache where the pool is under test).
func benchSpec(seed uint64) Spec {
	return Spec{Kind: "workload", Seed: seed, Waves: 2, Flows: 128, Bytes: 8e6}
}

// runPhase submits one session per seed on svc, waits for all of them,
// and returns per-seed fingerprints (index-aligned with seeds; empty on
// failure) plus the latency distribution. Submission retries on ErrBusy
// by waiting for an earlier session — the bench drives the service at
// its own pace; shedding is exercised by the backpressure tests.
func runPhase(svc *Service, path string, seeds []uint64, clock func() int64) (PathStat, []string, int) {
	var t0 int64
	if clock != nil {
		t0 = clock()
	}
	prints := make([]string, len(seeds))
	sessions := make([]*Session, len(seeds))
	var pending []*Session
	errs := 0
	for i, seed := range seeds {
		for {
			sess, err := svc.Submit(benchSpec(seed))
			if err == nil {
				sessions[i] = sess
				pending = append(pending, sess)
				break
			}
			if len(pending) == 0 {
				// Queue full with nothing of ours outstanding: give up on
				// this seed (counted as an error below).
				errs++
				break
			}
			_, _ = pending[0].Wait()
			pending = pending[1:]
		}
	}
	var lats []float64
	for i, sess := range sessions {
		if sess == nil {
			continue
		}
		rep, err := sess.Wait()
		if err != nil {
			errs++
			continue
		}
		prints[i] = rep.Fingerprint
		lats = append(lats, float64(sess.LatencyNs()))
	}
	st := PathStat{Path: path, Sessions: len(lats)}
	if len(lats) > 0 {
		sort.Float64s(lats)
		st.P50Ns = lats[len(lats)/2]
		st.P99Ns = lats[(len(lats)*99+99)/100-1]
	}
	if clock != nil && len(lats) > 0 {
		if wall := clock() - t0; wall > 0 {
			st.SessionsPerSec = float64(len(lats)) / (float64(wall) / 1e9)
		}
	}
	return st, prints, errs
}

// RunBench measures sessions/sec and latency percentiles for the three
// execution paths — cold build, warm-pool reuse, and cache hit — and
// cross-checks that cold and warm runs of every seed agree on their
// fingerprints. clock supplies wall nanoseconds (nil leaves timing
// fields zero, as the deterministic tests do).
func RunBench(clock func() int64) Suite {
	const workers = 2
	seeds := make([]uint64, benchSessions)
	for i := range seeds {
		seeds[i] = benchSeedBase + uint64(i)
	}
	s := Suite{
		Schema: "spiderfs-serve-bench/1", CPUs: runtime.NumCPU(),
		Workers: workers, PoolSize: workers,
	}

	// Cold: no warm retention, distinct seeds — every session builds.
	coldSvc := New(Config{Workers: workers, PoolSize: 0, QueueDepth: benchSessions, CacheSize: 0, Clock: clock})
	cold, coldPrints, coldErrs := runPhase(coldSvc, "cold", seeds, clock)
	coldSvc.Close()

	// Warm: prewarmed pool, cache disabled, same seeds — every session
	// reuses a reset instance.
	warmSvc := New(Config{Workers: workers, PoolSize: workers, QueueDepth: benchSessions, CacheSize: 0, Clock: clock})
	warmSvc.Prewarm(workers, false)
	warm, warmPrints, warmErrs := runPhase(warmSvc, "warm", seeds, clock)
	_, s.PoolReuses, _, _ = warmSvc.pool.counters()
	warmSvc.Close()

	// Cache: one priming miss, then the same spec repeatedly — hits.
	cacheSvc := New(Config{Workers: workers, PoolSize: workers, QueueDepth: benchSessions + 1, Clock: clock})
	prime := make([]uint64, 1, benchSessions+1)
	prime[0] = seeds[0]
	_, _, primeErrs := runPhase(cacheSvc, "prime", prime, clock)
	hits := make([]uint64, benchSessions)
	for i := range hits {
		hits[i] = seeds[0]
	}
	cache, _, cacheErrs := runPhase(cacheSvc, "cache", hits, clock)
	st := cacheSvc.Stats(false)
	s.CacheHits, s.CacheMisses, s.CacheEvictions = st.CacheHits, st.CacheMisses, st.CacheEvictions
	cacheSvc.Close()

	s.Errors = coldErrs + warmErrs + primeErrs + cacheErrs
	s.Deterministic = true
	for i := range seeds {
		if coldPrints[i] == "" || coldPrints[i] != warmPrints[i] {
			s.Deterministic = false
		}
	}
	s.Fingerprint = coldPrints[0]
	if warm.P50Ns > 0 {
		s.WarmSpeedup = cold.P50Ns / warm.P50Ns
	}
	if cache.P50Ns > 0 {
		s.CacheSpeedup = cold.P50Ns / cache.P50Ns
	}
	s.Paths = []PathStat{cold, warm, cache}
	return s
}

// Render formats the suite for stdout.
func (s Suite) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %14s %14s %14s\n", "path", "sessions", "sessions/s", "p50 ms", "p99 ms")
	for _, p := range s.Paths {
		fmt.Fprintf(&b, "%-8s %10d %14.1f %14.3f %14.3f\n",
			p.Path, p.Sessions, p.SessionsPerSec, p.P50Ns/1e6, p.P99Ns/1e6)
	}
	fmt.Fprintf(&b, "fingerprint %s, deterministic %v, errors %d\n", s.Fingerprint, s.Deterministic, s.Errors)
	fmt.Fprintf(&b, "cache: %d hits / %d misses / %d evictions; pool reuses: %d\n",
		s.CacheHits, s.CacheMisses, s.CacheEvictions, s.PoolReuses)
	fmt.Fprintf(&b, "speedup vs cold p50: warm %.2fx, cache %.2fx (recorded, not gated: 1-CPU hosts differ)\n",
		s.WarmSpeedup, s.CacheSpeedup)
	return b.String()
}

// JSON renders the artifact.
func (s Suite) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
