package serve

import "container/list"

// cache is an LRU result cache keyed on canonical Spec.Key() strings.
// Reports are immutable once published, so hits hand out the shared
// pointer. The map is only ever indexed by key — the eviction order
// lives in the intrusive list, never in map iteration.
type cache struct {
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	rep *Report
}

func newCache(max int) *cache {
	if max < 0 {
		max = 0
	}
	return &cache{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached report for key, refreshing its recency. The
// caller holds the service mutex.
func (c *cache) get(key string) (*Report, bool) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).rep, true
	}
	c.misses++
	return nil, false
}

// put inserts (or refreshes) a report, evicting the least recently
// used entry past capacity. The caller holds the service mutex.
func (c *cache) put(key string, rep *Report) {
	if c.max == 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).rep = rep
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, rep: rep})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}
