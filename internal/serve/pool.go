package serve

import "sync"

// pool keeps warm engine/fabric instances per shape. Acquire pops a
// warm instance or builds cold; Release resets through the
// Engine.Reset/Fabric.Reset seams and shelves the instance for the
// next session, discarding it instead if the reset is refused (a
// session that ended with flows in flight must not leak state into a
// later tenant).
type pool struct {
	mu    sync.Mutex
	small []*instance
	full  []*instance
	max   int // warm instances retained per shape

	builds   uint64
	reuses   uint64
	discards uint64
}

func newPool(max int) *pool {
	if max < 0 {
		max = 0
	}
	return &pool{max: max}
}

func (p *pool) shelf(full bool) *[]*instance {
	if full {
		return &p.full
	}
	return &p.small
}

// acquire returns an instance for the shape and whether it came warm
// from the pool.
func (p *pool) acquire(full bool) (*instance, bool) {
	p.mu.Lock()
	shelf := p.shelf(full)
	if n := len(*shelf); n > 0 {
		inst := (*shelf)[n-1]
		(*shelf)[n-1] = nil
		*shelf = (*shelf)[:n-1]
		p.reuses++
		p.mu.Unlock()
		return inst, true
	}
	p.builds++
	p.mu.Unlock()
	// Build outside the lock: a full-scale fabric build is the expensive
	// path warm pooling exists to amortize, and holding the pool mutex
	// across it would serialize every concurrent cold session.
	return buildInstance(full), false
}

// release resets the instance and shelves it. A failed reset or a full
// shelf discards the instance instead — never an error for the caller,
// since the next acquire simply builds cold.
func (p *pool) release(inst *instance) {
	inst.eng.Reset()
	if err := inst.fab.Reset(); err != nil {
		p.mu.Lock()
		p.discards++
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	shelf := p.shelf(inst.full)
	if len(*shelf) < p.max {
		*shelf = append(*shelf, inst)
	} else {
		p.discards++
	}
	p.mu.Unlock()
}

// prewarm builds n instances of the shape directly into the shelf (up
// to the retention cap), so a benchmark's first sessions already hit
// the warm path.
func (p *pool) prewarm(n int, full bool) {
	for i := 0; i < n; i++ {
		inst := buildInstance(full)
		p.mu.Lock()
		shelf := p.shelf(full)
		if len(*shelf) >= p.max {
			p.mu.Unlock()
			return
		}
		*shelf = append(*shelf, inst)
		p.builds++
		p.mu.Unlock()
	}
}

// counters returns (builds, reuses, discards, warm-now).
func (p *pool) counters() (uint64, uint64, uint64, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.builds, p.reuses, p.discards, len(p.small) + len(p.full)
}
