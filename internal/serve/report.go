package serve

import (
	"encoding/json"
	"math"

	"spiderfs/internal/ledger"
)

// Metric is one named scalar of a session report, kept in a fixed
// record order so the marshaled report is byte-stable.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Report is the final result of a session. Two runs of the same
// normalized spec — solo or pooled, alone or among 64 concurrent
// sessions — produce byte-identical reports; Fingerprint condenses
// that identity into one comparable value.
type Report struct {
	Kind        string   `json:"kind"`
	Key         string   `json:"key"`
	Seed        uint64   `json:"seed"`
	Fingerprint string   `json:"fingerprint"`
	Metrics     []Metric `json:"metrics"`

	// Ledger is the session's tamper-evident operations ledger —
	// per-wave milestones for workload sessions, the full campaign
	// export for chaos sessions, absent for sweep sessions. It is
	// deterministic (entry hashes derive from simulated time only) but
	// deliberately not folded into Fingerprint: the fingerprint pins the
	// model outcome, the ledger pins the operational narrative, and the
	// auditor — not the fingerprint — is what proves the narrative
	// untampered.
	Ledger *ledger.Export `json:"ledger,omitempty"`
}

// Metric returns the named metric's value, or (0, false).
func (r *Report) Metric(name string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// JSON marshals the report with a trailing newline — the exact bytes
// the /v1/sessions/{id}/report endpoint serves, and what the CLI
// prints, so the byte-identity contract is testable end to end.
func (r *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// fingerprinter folds 64-bit words into an FNV-1a fingerprint (the
// same offset/prime as hash/fnv and sim.TraceHash).
type fingerprinter struct{ h uint64 }

func newFingerprinter() *fingerprinter { return &fingerprinter{h: 14695981039346656037} }

func (f *fingerprinter) word(v uint64) {
	for i := 0; i < 8; i++ {
		f.h ^= (v >> (8 * i)) & 0xff
		f.h *= 1099511628211
	}
}

func (f *fingerprinter) float(v float64) { f.word(math.Float64bits(v)) }

func (f *fingerprinter) sum() uint64 { return f.h }

// hex renders a fingerprint the way every artifact in the repo does.
func hex(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := range b {
		b[i] = digits[(v>>(60-4*i))&0xf]
	}
	return string(b[:])
}
