package serve

import (
	"fmt"
	"sync"

	"spiderfs/internal/rng"
	"spiderfs/internal/sweep"
)

// Config declares a Service. Zero values take the documented defaults.
type Config struct {
	// Seed roots the service-plane random streams (session tokens).
	// Model randomness never derives from it — sessions draw from their
	// spec's own seed, which is what makes results reproduce solo runs.
	Seed uint64
	// Workers is the number of concurrent session executors (default 2).
	Workers int
	// QueueDepth bounds the admission queue; a submit past this depth is
	// shed with ErrBusy rather than queued (default 64).
	QueueDepth int
	// PoolSize is the number of warm instances retained per fabric shape
	// (default 2; 0 disables warm reuse — every workload runs cold).
	PoolSize int
	// CacheSize bounds the LRU result cache in entries (default 128;
	// 0 disables caching).
	CacheSize int
	// Sweeps is the catalog "sweep"-kind specs may name (typically
	// benchsuite.SweepEntries; nil leaves the kind unavailable).
	Sweeps []sweep.Entry
	// Clock, when set, timestamps session latencies (wall nanoseconds).
	// The simulation plane never reads it — leaving it nil (as tests do)
	// only zeroes the recorded latencies.
	Clock func() int64
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PoolSize < 0 {
		c.PoolSize = 0
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
}

// ErrBusy is returned by Submit when the admission queue is full. The
// API layer translates it to 429 with a Retry-After of the hinted
// seconds; the hint is the queue depth over the worker count — how
// long the backlog takes to drain at one session-second per session —
// computed from counters, never from wall clock.
type ErrBusy struct{ RetryAfter int }

func (e ErrBusy) Error() string {
	return fmt.Sprintf("serve: admission queue full, retry after %ds", e.RetryAfter)
}

// Service executes scenario sessions from a bounded admission queue on
// a fixed worker pool, reusing warm engine/fabric instances and
// answering repeated (spec, seed) submissions from the result cache.
type Service struct {
	cfg   Config
	pool  *pool
	queue chan *Session
	wg    sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	sessions map[string]*Session
	order    []string // session IDs in admission order (maps are lookup-only)
	nextID   uint64
	cache    *cache

	submitted uint64
	rejected  uint64
	completed uint64
	failed    uint64

	// testGate, when set (by tests, before the first Submit), makes each
	// worker announce a pickup with a send and park until the test
	// releases it with a send back — the deterministic seam the
	// backpressure tests use to hold the queue full while they overflow
	// it. Nil in production; the channel handoff orders the accesses.
	testGate chan struct{}
}

// New starts a service. Close releases its workers.
func New(cfg Config) *Service {
	cfg.fill()
	s := &Service{
		cfg:      cfg,
		pool:     newPool(cfg.PoolSize),
		queue:    make(chan *Session, cfg.QueueDepth),
		sessions: make(map[string]*Session),
		cache:    newCache(cfg.CacheSize),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops admission, drains queued sessions, and waits for the
// workers to exit. Safe to call once.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// Prewarm builds n warm instances of the given shape into the pool so
// the first sessions already reuse instead of building.
func (s *Service) Prewarm(n int, full bool) { s.pool.prewarm(n, full) }

// Submit validates and admits a spec. It never blocks: when the
// admission queue is full the spec is shed with ErrBusy carrying the
// Retry-After hint. The returned session is already registered and
// observable via Session/Wait/EventsSince.
func (s *Service) Submit(spec Spec) (*Session, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: service closed")
	}
	s.nextID++
	id := fmt.Sprintf("s-%06d", s.nextID)
	// Per-session service-plane rng isolation: the token stream is split
	// off a fresh source by session ID, so no session's draws perturb
	// another's and the stream is reproducible from (Seed, ID) alone.
	token := rng.New(s.cfg.Seed).Split("serve/" + id).Uint64()
	sess := newSession(id, token, spec)
	select {
	case s.queue <- sess:
		s.submitted++
		s.sessions[id] = sess
		s.order = append(s.order, id)
		s.mu.Unlock()
		return sess, nil
	default:
		s.rejected++
		s.nextID-- // shed sessions don't consume IDs
		retry := (s.cfg.QueueDepth + s.cfg.Workers - 1) / s.cfg.Workers
		if retry < 1 {
			retry = 1
		}
		s.mu.Unlock()
		return nil, ErrBusy{RetryAfter: retry}
	}
}

// Session looks a session up by ID.
func (s *Service) Session(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// worker drains the admission queue. Workers are the only goroutines
// the service launches; they share nothing but the mutex-guarded
// service state and each session's own lock.
func (s *Service) worker() {
	defer s.wg.Done()
	for sess := range s.queue {
		if g := s.testGate; g != nil {
			g <- struct{}{} // announce pickup
			<-g             // wait for release
		}
		s.run(sess)
	}
}

// run executes one session: result cache first, then the warm pool for
// workloads, cold execution otherwise.
func (s *Service) run(sess *Session) {
	var t0 int64
	if s.cfg.Clock != nil {
		t0 = s.cfg.Clock()
	}
	elapsed := func() int64 {
		if s.cfg.Clock == nil {
			return 0
		}
		return s.cfg.Clock() - t0
	}

	key := sess.Spec.Key()
	s.mu.Lock()
	rep, hit := s.cache.get(key)
	s.mu.Unlock()
	if hit {
		sess.start("cache")
		s.finish(sess, rep, true, false, elapsed())
		return
	}

	var err error
	warm := false
	if sess.Spec.Kind == "workload" {
		var inst *instance
		inst, warm = s.pool.acquire(sess.Spec.Full)
		if warm {
			sess.start("warm")
		} else {
			sess.start("cold")
		}
		rep = runWorkload(inst.eng, inst.fab, sess.Spec, sess.note)
		s.pool.release(inst)
	} else {
		sess.start("cold")
		rep, err = RunSolo(sess.Spec, s.cfg.Sweeps)
	}
	if err != nil {
		s.mu.Lock()
		s.failed++
		s.mu.Unlock()
		sess.fail(err.Error(), elapsed())
		return
	}
	s.mu.Lock()
	s.cache.put(key, rep)
	s.mu.Unlock()
	s.finish(sess, rep, false, warm, elapsed())
}

func (s *Service) finish(sess *Session, rep *Report, cached, warm bool, latNs int64) {
	s.mu.Lock()
	s.completed++
	s.mu.Unlock()
	sess.finish(rep, cached, warm, latNs)
}

// Stats is the service-wide counter snapshot /v1/stats serves.
type Stats struct {
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Queued    int    `json:"queued"`

	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`

	PoolBuilds   uint64 `json:"pool_builds"`
	PoolReuses   uint64 `json:"pool_reuses"`
	PoolDiscards uint64 `json:"pool_discards"`
	PoolWarm     int    `json:"pool_warm"`

	Sessions []Snapshot `json:"sessions,omitempty"`
}

// Stats snapshots the counters. withSessions additionally lists every
// session in admission order (the ordered ID slice, not map iteration,
// so the listing is deterministic).
func (s *Service) Stats(withSessions bool) Stats {
	s.mu.Lock()
	st := Stats{
		Submitted: s.submitted, Rejected: s.rejected,
		Completed: s.completed, Failed: s.failed,
		Queued:         len(s.queue),
		CacheHits:      s.cache.hits,
		CacheMisses:    s.cache.misses,
		CacheEvictions: s.cache.evictions,
	}
	var listed []*Session
	if withSessions {
		for _, id := range s.order {
			listed = append(listed, s.sessions[id])
		}
	}
	s.mu.Unlock()
	st.PoolBuilds, st.PoolReuses, st.PoolDiscards, st.PoolWarm = s.pool.counters()
	for _, sess := range listed {
		st.Sessions = append(st.Sessions, sess.Snapshot())
	}
	return st
}
