package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"spiderfs/internal/sweep"
)

// toyCatalog is a minimal sweep catalog for tests: each replica records
// a few draws from its private stream, so the merged fingerprint is
// seed-sensitive without the cost of a full scenario sweep.
func toyCatalog() []sweep.Entry {
	return []sweep.Entry{{
		Label: "toy", Replicas: 4, Seed: 77,
		Body: func(r *sweep.Rep) error {
			r.Record("draw", float64(r.Src.Intn(1000)))
			r.Record("index", float64(r.Index))
			return nil
		},
	}}
}

func workloadSpec(seed uint64) Spec {
	return Spec{Kind: "workload", Seed: seed, Waves: 2, Flows: 64, Bytes: 4e6}
}

func TestSpecNormalizeAndKey(t *testing.T) {
	s := Spec{Kind: "workload", Seed: 9, Days: 3, Sweep: "junk"}
	if err := s.Normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if s.Waves != defaultWaves || s.Flows != defaultFlows || s.Bytes != defaultBytes {
		t.Fatalf("defaults not filled: %+v", s)
	}
	if s.Days != 0 || s.Sweep != "" {
		t.Fatalf("foreign-kind fields not cleared: %+v", s)
	}
	want := fmt.Sprintf("workload/seed=9/full=false/waves=%d/flows=%d/bytes=%g",
		defaultWaves, defaultFlows, defaultBytes)
	if s.Key() != want {
		t.Fatalf("key = %q, want %q", s.Key(), want)
	}

	// Two submissions that normalize identically share one key.
	a, b := Spec{Kind: "chaos", Seed: 4}, Spec{Kind: "chaos", Seed: 4, Waves: 7}
	if a.Normalize() != nil || b.Normalize() != nil {
		t.Fatal("chaos normalize failed")
	}
	if a.Key() != b.Key() {
		t.Fatalf("equivalent specs got distinct keys %q vs %q", a.Key(), b.Key())
	}

	for _, bad := range []Spec{
		{Kind: "nope", Seed: 1},
		{Kind: "chaos", Seed: 1, Days: -1},
		{Kind: "sweep", Seed: 1},
		{Kind: "sweep", Seed: 1, Sweep: "a/b"},
		{Kind: "sweep", Seed: 1, Sweep: "toy", Replicas: -2},
	} {
		bad := bad
		if err := bad.Normalize(); err == nil {
			t.Errorf("spec %+v: expected a normalize error", bad)
		}
	}
}

// TestRunSoloKindsDeterministic runs every kind twice and demands
// byte-identical reports — the reference half of the service contract.
func TestRunSoloKindsDeterministic(t *testing.T) {
	cat := toyCatalog()
	for _, spec := range []Spec{
		workloadSpec(11),
		{Kind: "chaos", Seed: 11},
		{Kind: "sweep", Seed: 11, Sweep: "toy"},
	} {
		r1, err := RunSolo(spec, cat)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		r2, err := RunSolo(spec, cat)
		if err != nil {
			t.Fatalf("%s rerun: %v", spec.Kind, err)
		}
		j1, err1 := r1.JSON()
		j2, err2 := r2.JSON()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: json: %v %v", spec.Kind, err1, err2)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("%s: solo reruns diverge:\n%s\nvs\n%s", spec.Kind, j1, j2)
		}
		if r1.Fingerprint == "" {
			t.Fatalf("%s: empty fingerprint", spec.Kind)
		}
	}

	if _, err := RunSolo(Spec{Kind: "sweep", Seed: 1, Sweep: "missing"}, cat); err == nil {
		t.Fatal("unknown sweep label should fail")
	}
}

// TestServiceKindsMatchSolo submits one spec of every kind through the
// full service path and compares the report bytes against RunSolo.
func TestServiceKindsMatchSolo(t *testing.T) {
	cat := toyCatalog()
	svc := New(Config{Workers: 2, PoolSize: 2, QueueDepth: 8, Sweeps: cat})
	defer svc.Close()
	for _, spec := range []Spec{
		workloadSpec(21),
		{Kind: "chaos", Seed: 21},
		{Kind: "sweep", Seed: 21, Sweep: "toy"},
	} {
		want, err := RunSolo(spec, cat)
		if err != nil {
			t.Fatalf("%s solo: %v", spec.Kind, err)
		}
		sess, err := svc.Submit(spec)
		if err != nil {
			t.Fatalf("%s submit: %v", spec.Kind, err)
		}
		got, err := sess.Wait()
		if err != nil {
			t.Fatalf("%s session: %v", spec.Kind, err)
		}
		wj, _ := want.JSON()
		gj, _ := got.JSON()
		if !bytes.Equal(wj, gj) {
			t.Fatalf("%s: service report differs from solo:\n%s\nvs\n%s", spec.Kind, gj, wj)
		}
	}
}

// TestServicePoolReuseFingerprint drives sessions through one retained
// warm instance and demands each matches its solo-run fingerprint.
func TestServicePoolReuseFingerprint(t *testing.T) {
	svc := New(Config{Workers: 1, PoolSize: 1, QueueDepth: 8, CacheSize: -1})
	defer svc.Close()
	for i, seed := range []uint64{301, 302, 303, 304} {
		spec := workloadSpec(seed)
		want, err := RunSolo(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Fingerprint != want.Fingerprint {
			t.Fatalf("seed %d: pooled fingerprint %s != solo %s", seed, rep.Fingerprint, want.Fingerprint)
		}
		snap := sess.Snapshot()
		if wantWarm := i > 0; snap.Warm != wantWarm {
			t.Fatalf("session %d: warm = %v, want %v", i, snap.Warm, wantWarm)
		}
	}
	st := svc.Stats(false)
	if st.PoolReuses != 3 || st.PoolBuilds != 1 {
		t.Fatalf("pool counters: builds %d reuses %d, want 1/3", st.PoolBuilds, st.PoolReuses)
	}
	if st.CacheHits != 0 {
		t.Fatalf("cache disabled but %d hits", st.CacheHits)
	}
}

// TestServiceCacheHit resubmits an identical spec and expects the
// second session to be answered from the cache with the same report.
func TestServiceCacheHit(t *testing.T) {
	svc := New(Config{Workers: 1, PoolSize: 1, QueueDepth: 8, CacheSize: 4})
	defer svc.Close()
	spec := workloadSpec(55)
	first, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := first.Wait()
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.Submit(Spec{Kind: "workload", Seed: 55, Waves: 2, Flows: 64, Bytes: 4e6})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := second.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("cache hit should hand out the shared report pointer")
	}
	if !second.Snapshot().Cached || first.Snapshot().Cached {
		t.Fatal("cached flags wrong way around")
	}
	st := svc.Stats(false)
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache counters: %d hits %d misses, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

func TestCacheEviction(t *testing.T) {
	c := newCache(2)
	a, b, d := &Report{Kind: "a"}, &Report{Kind: "b"}, &Report{Kind: "d"}
	c.put("a", a)
	c.put("b", b)
	if _, ok := c.get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a should be cached")
	}
	c.put("d", d)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived eviction")
	}
	if c.evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.evictions)
	}
}

// TestServiceBackpressure fills the admission queue behind a gated
// worker and expects the overflowing submit to be shed immediately with
// a Retry-After hint — never queued, never blocked. The test gate holds
// the worker between pickup and execution so the queue state at each
// submit is exact, not a race against a fast worker.
func TestServiceBackpressure(t *testing.T) {
	svc := New(Config{Workers: 1, PoolSize: 1, QueueDepth: 1, CacheSize: -1})
	gate := make(chan struct{})
	svc.testGate = gate
	defer svc.Close()
	// passGate lets the parked worker run one session: consume its
	// pickup announcement, then release it.
	passGate := func() { <-gate; gate <- struct{}{} }

	blocker, err := svc.Submit(workloadSpec(900))
	if err != nil {
		t.Fatal(err)
	}
	<-gate // worker owns the blocker and is parked: the queue slot is free
	queued, err := svc.Submit(workloadSpec(901))
	if err != nil {
		t.Fatalf("queue-filling submit: %v", err)
	}
	_, err = svc.Submit(workloadSpec(902))
	busy, ok := err.(ErrBusy)
	if !ok {
		t.Fatalf("overflow submit: got %v, want ErrBusy", err)
	}
	if busy.RetryAfter < 1 {
		t.Fatalf("RetryAfter = %d, want >= 1", busy.RetryAfter)
	}
	st := svc.Stats(false)
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}

	// The shed spec left no residue: both admitted sessions complete and
	// the retried submit after drain is admitted.
	gate <- struct{}{} // release the blocker
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	passGate()
	if _, err := queued.Wait(); err != nil {
		t.Fatal(err)
	}
	retry, err := svc.Submit(workloadSpec(902))
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	passGate()
	if _, err := retry.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestServeConcurrentSessionsDeterministic is the tenancy contract: 64
// sessions submitted from 8 goroutines onto a small warm pool — so
// instances are reused across tenants while sessions interleave — with
// concurrent progress polls, must each reproduce the fingerprint of a
// serial solo run of the same spec.
func TestServeConcurrentSessionsDeterministic(t *testing.T) {
	const (
		goroutines = 8
		perG       = 8
		total      = goroutines * perG
	)
	specs := make([]Spec, total)
	want := make([]string, total)
	for i := range specs {
		specs[i] = workloadSpec(5000 + uint64(i))
		rep, err := RunSolo(specs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep.Fingerprint
	}

	svc := New(Config{Workers: 4, PoolSize: 3, QueueDepth: total, CacheSize: -1})
	defer svc.Close()

	// Phase 1: all 64 sessions submitted before any result is consumed,
	// so the full set is in flight on 4 workers and 3 warm instances.
	sessions := make([]*Session, total)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				i := g*perG + k
				sess, err := svc.Submit(specs[i])
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				sessions[i] = sess
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Phase 2: each goroutine polls its sessions' event streams while
	// they execute — interleaved observation must not perturb results.
	got := make([]string, total)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				i := g*perG + k
				seq := 0
				for {
					tail, terminal := sessions[i].EventsSince(seq)
					seq += len(tail)
					if terminal {
						break
					}
				}
				rep, err := sessions[i].Wait()
				if err != nil {
					t.Errorf("session %d: %v", i, err)
					return
				}
				got[i] = rep.Fingerprint
			}
		}(g)
	}
	wg.Wait()

	for i := range want {
		if got[i] != want[i] {
			t.Errorf("session %d (seed %d): fingerprint %s != solo %s",
				i, specs[i].Seed, got[i], want[i])
		}
	}
	st := svc.Stats(false)
	if st.Completed != total {
		t.Fatalf("completed = %d, want %d", st.Completed, total)
	}
	if st.PoolReuses == 0 {
		t.Fatal("no warm reuse under concurrent load — pool inert")
	}
}

// TestRunBenchSmoke exercises the bench harness with no clock: timing
// fields stay zero but the gated fields must hold.
func TestRunBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is not short")
	}
	s := RunBench(nil)
	if s.Schema != "spiderfs-serve-bench/1" {
		t.Fatalf("schema %q", s.Schema)
	}
	if !s.Deterministic {
		t.Fatal("cold and warm fingerprints diverged")
	}
	if s.Errors != 0 {
		t.Fatalf("errors = %d", s.Errors)
	}
	if s.Fingerprint == "" {
		t.Fatal("empty probe fingerprint")
	}
	if s.CacheHits == 0 || s.PoolReuses == 0 {
		t.Fatalf("bench paths not exercised: hits %d reuses %d", s.CacheHits, s.PoolReuses)
	}
	if len(s.Paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(s.Paths))
	}
	if _, err := s.JSON(); err != nil {
		t.Fatal(err)
	}
	if s.Render() == "" {
		t.Fatal("empty render")
	}
}
