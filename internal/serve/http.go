package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/sessions              submit a spec; 202 + session snapshot,
//	                               or 429 + Retry-After when shedding
//	GET  /v1/sessions/{id}         poll a session snapshot
//	GET  /v1/sessions/{id}/events  chunked progress stream (ndjson),
//	                               ?seq=N resumes past the first N events
//	GET  /v1/sessions/{id}/report  final report (202 while running)
//	GET  /v1/sessions/{id}/ledger  session operations-ledger export
//	                               (202 while running, 404 for kinds
//	                               that keep none)
//	GET  /v1/stats                 service counters; ?sessions=1 lists all
//
// Every response is JSON; no handler blocks past its own session's
// bounded execution (submission itself never blocks at all).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleSubmit)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSession)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/sessions/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/sessions/{id}/ledger", s.handleLedger)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad spec: " + err.Error()})
		return
	}
	sess, err := s.Submit(spec)
	if err != nil {
		var busy ErrBusy
		if errors.As(err, &busy) {
			w.Header().Set("Retry-After", strconv.Itoa(busy.RetryAfter))
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, sess.Snapshot())
}

func (s *Service) lookup(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	sess, ok := s.Session(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown session " + r.PathValue("id")})
	}
	return sess, ok
}

func (s *Service) handleSession(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, sess.Snapshot())
	}
}

// handleEvents streams the session's progress events as
// newline-delimited JSON, flushing each chunk, until the terminal
// event has been delivered. ?seq=N skips the first N events (resume).
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	seq := 0
	if q := r.URL.Query().Get("seq"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad seq: " + err.Error()})
			return
		}
		seq = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		tail, terminal := sess.EventsSince(seq)
		for _, ev := range tail {
			if err := enc.Encode(ev); err != nil {
				return // client went away
			}
		}
		seq += len(tail)
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			// The terminal transition appends its event before the state
			// flips, so a terminal read has already delivered everything.
			return
		}
	}
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	snap := sess.Snapshot()
	switch snap.State {
	case StateDone:
		rep, _ := sess.Report()
		data, err := rep.JSON()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	case StateFailed:
		writeJSON(w, http.StatusUnprocessableEntity, apiError{Error: snap.Error})
	default:
		writeJSON(w, http.StatusAccepted, snap)
	}
}

// handleLedger serves the finished session's tamper-evident
// operations-ledger export, ready for `spidersim ledger verify`
// against a trusted root sequence. Sweep sessions keep no ledger and
// answer 404.
func (s *Service) handleLedger(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	snap := sess.Snapshot()
	switch snap.State {
	case StateDone:
		rep, _ := sess.Report()
		if rep.Ledger == nil {
			writeJSON(w, http.StatusNotFound,
				apiError{Error: rep.Kind + " sessions keep no operations ledger"})
			return
		}
		writeJSON(w, http.StatusOK, rep.Ledger)
	case StateFailed:
		writeJSON(w, http.StatusUnprocessableEntity, apiError{Error: snap.Error})
	default:
		writeJSON(w, http.StatusAccepted, snap)
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats(r.URL.Query().Get("sessions") != ""))
}
