package placement

import (
	"fmt"
	"testing"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

func testFS(seed uint64) (*sim.Engine, *lustre.FS) {
	// Two SSUs so the balancer has an independent controller + OSS set
	// to steer toward: OSTs 0-3 share controller 0 (OSSes 0-1), OSTs 4-7
	// share controller 1 (OSSes 2-3).
	eng := sim.NewEngine()
	p := lustre.TestNamespace()
	p.NumSSU = 2
	p.OSTsPerSSU = 4
	p.OSSPerSSU = 2
	fs := lustre.Build(eng, p, rng.New(seed))
	return eng, fs
}

func TestSuggestReturnsDistinctValidOSTs(t *testing.T) {
	_, fs := testFS(1)
	b := New(fs, Weights{})
	for sc := 1; sc <= 8; sc++ {
		got := b.Suggest(sc)
		if len(got) != sc {
			t.Fatalf("suggest(%d) returned %d", sc, len(got))
		}
		seen := map[int]bool{}
		for _, o := range got {
			if o < 0 || o >= len(fs.OSTs) || seen[o] {
				t.Fatalf("suggest(%d) = %v invalid", sc, got)
			}
			seen[o] = true
		}
	}
	if got := b.Suggest(100); len(got) != len(fs.OSTs) {
		t.Fatalf("oversized suggest returned %d", len(got))
	}
}

func TestSuggestSpreadsAcrossOSSes(t *testing.T) {
	_, fs := testFS(2)
	b := New(fs, Weights{})
	got := b.Suggest(4)
	osses := map[int]bool{}
	for _, o := range got {
		osses[fs.OSSOf(o)] = true
	}
	if len(osses) != 4 {
		t.Fatalf("4 stripes on %d distinct OSSes, want 4 (%v)", len(osses), got)
	}
}

func TestSuggestAvoidsFullOSTs(t *testing.T) {
	_, fs := testFS(3)
	// Fill half the OSTs nearly full.
	for i := 0; i < 4; i++ {
		fs.OSTs[i].SetFill(0.95)
	}
	b := New(fs, Weights{})
	got := b.Suggest(4)
	for _, o := range got {
		if o < 4 {
			t.Fatalf("balancer picked nearly full OST %d (%v)", o, got)
		}
	}
}

func TestSuggestAvoidsQueuedOSS(t *testing.T) {
	eng, fs := testFS(4)
	// Saturate OSS 0 (serving OSTs 0 and 4) with CPU work.
	hot := fs.OSSes[0]
	for i := 0; i < 200; i++ {
		hot.Service(1<<20, nil)
	}
	// Don't run the engine: the queue is live now.
	b := New(fs, Weights{})
	got := b.Suggest(2)
	for _, o := range got {
		if fs.OSSOf(o) == 0 {
			t.Fatalf("balancer picked OST %d behind saturated OSS (%v)", o, got)
		}
	}
	eng.Run()
}

func TestRoundRobinTieBreakRotates(t *testing.T) {
	_, fs := testFS(5)
	b := New(fs, Weights{})
	first := map[int]bool{}
	for i := 0; i < len(fs.OSTs); i++ {
		first[b.Suggest(1)[0]] = true
	}
	if len(first) < len(fs.OSTs)/2 {
		t.Fatalf("idle-system suggestions reused only %d OSTs", len(first))
	}
}

func TestImbalanceMetric(t *testing.T) {
	if Imbalance(nil) != 0 {
		t.Fatal("empty imbalance should be 0")
	}
	if Imbalance([]float64{2, 2, 2}) != 0 {
		t.Fatal("uniform imbalance should be 0")
	}
	v := Imbalance([]float64{0, 4})
	if v != 2 {
		t.Fatalf("imbalance = %f, want (4-0)/2 = 2", v)
	}
}

// The E5 experiment in miniature: with half the OSTs under background
// contention, libPIO-placed jobs must beat default round-robin placement
// substantially.
func TestBalancedPlacementBeatsDefaultUnderContention(t *testing.T) {
	run := func(balanced bool) float64 {
		eng, fs := testFS(6)
		// Background noise: hammer OSTs 0..3 continuously.
		noise := lustre.NewClient(1000, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
		var noiseFiles []*lustre.File
		for i := 0; i < 4; i++ {
			fs.CreateOn(fmt.Sprintf("noise/%d", i), []int{i}, func(f *lustre.File) {
				noiseFiles = append(noiseFiles, f)
			})
		}
		eng.Run()
		for _, f := range noiseFiles {
			noise.WriteUntil(f, eng.Now()+2*sim.Second, 1<<20, nil)
		}
		// Let the noise establish queues before the job places its file:
		// libPIO reads live load, so the system must actually be loaded.
		eng.RunUntil(eng.Now() + 50*sim.Millisecond)
		// The default allocator is load-blind; its rotor lands on the hot
		// OSTs. libPIO sees the queues and steers away.
		var job *lustre.File
		if balanced {
			b := New(fs, Weights{})
			b.CreateBalanced("job/out", 2, func(f *lustre.File) { job = f })
		} else {
			fs.CreateOn("job/out", []int{0, 1}, func(f *lustre.File) { job = f })
		}
		eng.RunUntil(eng.Now() + 10*sim.Millisecond)
		client := lustre.NewClient(0, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
		start := eng.Now()
		totalBytes := int64(32 << 20)
		doneAt := sim.Time(0)
		client.WriteStream(job, totalBytes, 1<<20, func(int64) { doneAt = eng.Now() })
		eng.Run()
		if doneAt == 0 {
			t.Fatal("job never finished")
		}
		return float64(totalBytes) / (doneAt - start).Seconds()
	}
	def := run(false)
	bal := run(true)
	improvement := bal/def - 1
	if improvement < 0.3 {
		t.Fatalf("libPIO improvement = %.0f%% (bal %.1f vs def %.1f MB/s), want >30%%",
			improvement*100, bal/1e6, def/1e6)
	}
}
