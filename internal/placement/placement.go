// Package placement implements the balanced data placement runtime the
// paper calls libPIO (§VI-A): a thin library that observes live load on
// storage components (OSS queues, controller queues and cache pressure,
// OST fill) and steers new files onto the least-contended OSTs. The
// paper reports >70% per-job gains for synthetic workloads under
// contention and ~24% for S3D in a noisy production environment after a
// ~30-line integration.
package placement

import (
	"sort"

	"spiderfs/internal/lustre"
)

// Weights tune the composite load score. Zero values fall back to
// DefaultWeights.
type Weights struct {
	OSSQueue  float64 // per queued RPC at the serving OSS
	CtrlQueue float64 // per queued request at the SSU controller
	CacheDirt float64 // per unit of controller cache fill fraction
	Fill      float64 // per unit of OST fill fraction
}

// DefaultWeights balances transient congestion (queues) against
// structural pressure (cache, fill).
func DefaultWeights() Weights {
	return Weights{OSSQueue: 1.0, CtrlQueue: 1.0, CacheDirt: 4.0, Fill: 2.0}
}

// Balancer suggests OST sets for new files.
type Balancer struct {
	fs *lustre.FS
	w  Weights
	// rr breaks score ties fairly so equally idle OSTs rotate.
	rr int
}

// New builds a balancer over a namespace.
func New(fs *lustre.FS, w Weights) *Balancer {
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	return &Balancer{fs: fs, w: w}
}

// Score returns the current load score of one OST; lower is better.
func (b *Balancer) Score(ost int) float64 {
	o := b.fs.OSTs[ost]
	oss := b.fs.OSSes[b.fs.OSSOf(ost)]
	ctrl := o.Controller()
	dirtFrac := float64(ctrl.Dirty()) / float64(ctrl.Config().CacheBytes)
	return b.w.OSSQueue*float64(oss.QueueLen()) +
		b.w.CtrlQueue*float64(ctrl.QueueLen()) +
		b.w.CacheDirt*dirtFrac +
		b.w.Fill*o.Fill()
}

// Suggest returns stripeCount OST indices, least-loaded first, spreading
// the selection across distinct OSSes and controllers where the scores
// allow it.
func (b *Balancer) Suggest(stripeCount int) []int {
	n := len(b.fs.OSTs)
	if stripeCount < 1 {
		stripeCount = 1
	}
	if stripeCount > n {
		stripeCount = n
	}
	type cand struct {
		ost   int
		score float64
	}
	cands := make([]cand, n)
	for i := 0; i < n; i++ {
		// Rotate the index origin so ties break differently every call.
		ost := (i + b.rr) % n
		cands[i] = cand{ost: ost, score: b.Score(ost)}
	}
	b.rr = (b.rr + 1) % n
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score < cands[j].score })

	picked := make([]int, 0, stripeCount)
	usedOSS := map[int]int{}
	usedCtrl := map[*lustre.Controller]int{}
	// First pass: prefer unique OSS and controller, but never trade a
	// lightly loaded OST for a heavily loaded one just for diversity —
	// only candidates near the k-th best score qualify.
	threshold := cands[stripeCount-1].score + 1.0
	for _, c := range cands {
		if len(picked) == stripeCount {
			break
		}
		if c.score > threshold {
			break // sorted: everything after is worse
		}
		ossID := b.fs.OSSOf(c.ost)
		ctrl := b.fs.OSTs[c.ost].Controller()
		if usedOSS[ossID] > 0 || usedCtrl[ctrl] > 1 {
			continue
		}
		picked = append(picked, c.ost)
		usedOSS[ossID]++
		usedCtrl[ctrl]++
	}
	// Second pass: fill remaining slots by pure score.
	if len(picked) < stripeCount {
		chosen := map[int]bool{}
		for _, p := range picked {
			chosen[p] = true
		}
		for _, c := range cands {
			if len(picked) == stripeCount {
				break
			}
			if !chosen[c.ost] {
				picked = append(picked, c.ost)
				chosen[c.ost] = true
			}
		}
	}
	return picked
}

// CreateBalanced creates a file placed by the balancer — the whole
// libPIO client API surface (the "30 lines" integration is swapping
// fs.Create for this call).
func (b *Balancer) CreateBalanced(path string, stripeCount int, done func(*lustre.File)) {
	b.fs.CreateOn(path, b.Suggest(stripeCount), done)
}

// LoadSnapshot reports the per-OST score vector (diagnostics and tests).
func (b *Balancer) LoadSnapshot() []float64 {
	out := make([]float64, len(b.fs.OSTs))
	for i := range out {
		out[i] = b.Score(i)
	}
	return out
}

// Imbalance returns (max-min)/mean of the snapshot — the load-imbalance
// metric libPIO aims to reduce. Returns 0 for an idle system.
func Imbalance(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	min, max, sum := scores[0], scores[0], 0.0
	for _, s := range scores {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
		sum += s
	}
	mean := sum / float64(len(scores))
	if mean == 0 {
		return 0
	}
	return (max - min) / mean
}
