package purge

import (
	"fmt"
	"strings"
	"testing"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func freshFS(seed uint64) (*sim.Engine, *lustre.FS) {
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(seed))
	return eng, fs
}

// mkFiles creates n preloaded files under prefix at the current time.
func mkFiles(fs *lustre.FS, prefix string, n int, size int64) {
	for i := 0; i < n; i++ {
		fs.Create(fmt.Sprintf("%s/f%03d", prefix, i), 1, func(f *lustre.File) {
			f.Objects[0].Preload(size)
		})
	}
}

func TestSweepDeletesOnlyExpired(t *testing.T) {
	eng, fs := freshFS(1)
	mkFiles(fs, "old", 20, 1<<20)
	eng.Run()
	// Advance past the retention window, then create fresh files.
	eng.RunUntil(15 * sim.Day)
	mkFiles(fs, "new", 10, 1<<20)
	eng.Run()

	p := New(fs, Spider2Policy())
	var rep SweepReport
	p.Sweep(func(r SweepReport) { rep = r })
	eng.Run()

	if rep.Scanned != 30 {
		t.Fatalf("scanned %d", rep.Scanned)
	}
	if rep.Deleted != 20 {
		t.Fatalf("deleted %d, want the 20 expired", rep.Deleted)
	}
	if rep.BytesFreed != 20<<20 {
		t.Fatalf("freed %d", rep.BytesFreed)
	}
	if fs.NumFiles != 10 {
		t.Fatalf("files left = %d", fs.NumFiles)
	}
	if rep.FillAfter >= rep.FillBefore {
		t.Fatalf("fill did not drop: %f -> %f", rep.FillBefore, rep.FillAfter)
	}
}

func TestAccessRefreshesRetention(t *testing.T) {
	eng, fs := freshFS(2)
	mkFiles(fs, "data", 5, 1<<20)
	eng.Run()
	// Touch one file at day 10 by reading it.
	var touched *lustre.File
	fs.Open("data/f002", func(f *lustre.File) { touched = f })
	eng.Run()
	eng.RunUntil(10 * sim.Day)
	touched.ATime = eng.Now() // analytics job read it

	eng.RunUntil(15 * sim.Day)
	p := New(fs, Spider2Policy())
	p.Sweep(nil)
	eng.Run()
	if fs.NumFiles != 1 {
		t.Fatalf("files left = %d, want only the touched one", fs.NumFiles)
	}
	var left []string
	fs.Walk(nil, func(f *lustre.File) { left = append(left, f.Path) })
	if len(left) != 1 || left[0] != "data/f002" {
		t.Fatalf("survivor = %v", left)
	}
}

func TestExemptPaths(t *testing.T) {
	eng, fs := freshFS(3)
	mkFiles(fs, "scratch", 5, 1<<20)
	mkFiles(fs, "keep", 5, 1<<20)
	eng.Run()
	eng.RunUntil(20 * sim.Day)
	pol := Spider2Policy()
	pol.Exempt = func(path string) bool { return strings.HasPrefix(path, "keep/") }
	p := New(fs, pol)
	p.Sweep(nil)
	eng.Run()
	if fs.NumFiles != 5 {
		t.Fatalf("files left = %d, want 5 exempt", fs.NumFiles)
	}
}

func TestPeriodicSweepsHoldUtilization(t *testing.T) {
	eng, fs := freshFS(4)
	p := New(fs, Policy{MaxAge: 3 * sim.Day, Interval: sim.Day, Concurrency: 8})
	p.Start()
	// A daily job writes new files; without purging, fill grows
	// unboundedly. Note each day's files expire 3 days later.
	day := 0
	var producer func()
	producer = func() {
		if day >= 12 {
			return
		}
		mkFiles(fs, fmt.Sprintf("day%02d", day), 8, 8<<20)
		day++
		eng.After(sim.Day, producer)
	}
	producer()
	eng.RunUntil(12 * sim.Day)
	p.Stop()
	eng.Run()

	if len(p.Sweeps) < 10 {
		t.Fatalf("only %d sweeps in 12 days", len(p.Sweeps))
	}
	if p.Deleted == 0 {
		t.Fatal("periodic purge deleted nothing")
	}
	// Steady state: roughly 4 days of production retained (~32 files).
	if fs.NumFiles > 50 {
		t.Fatalf("%d files retained; purge failed to bound capacity", fs.NumFiles)
	}
}

func TestStopCancelsPending(t *testing.T) {
	eng, fs := freshFS(5)
	p := New(fs, Policy{MaxAge: sim.Day, Interval: sim.Day, Concurrency: 2})
	p.Start()
	p.Stop()
	eng.Run()
	if len(p.Sweeps) != 0 {
		t.Fatalf("sweeps ran after stop: %d", len(p.Sweeps))
	}
}

func TestInvalidPolicyPanics(t *testing.T) {
	_, fs := freshFS(6)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(fs, Policy{MaxAge: 0, Concurrency: 1})
}
