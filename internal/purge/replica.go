package purge

import (
	"fmt"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/sweep"
	"spiderfs/internal/tools"
)

// ResidencyConfig shapes one E13 purge-residency replica: days of
// production at a Poisson-distributed daily file rate under the given
// policy. The stochastic production is what makes a seed sweep
// informative — each replica sees a different arrival schedule, and the
// merged report shows how tightly the 14-day policy bounds residency
// across them.
type ResidencyConfig struct {
	Policy      Policy
	Days        int
	FilesPerDay int // mean of the daily Poisson draw
	FileSize    int64
}

// DefaultResidency mirrors the E13 benchmark: 25 days of production
// under the 14-day Spider policy.
func DefaultResidency() ResidencyConfig {
	return ResidencyConfig{
		Policy:      Policy{MaxAge: 14 * sim.Day, Interval: sim.Day, Concurrency: 16},
		Days:        25,
		FilesPerDay: 20,
		FileSize:    8 << 20,
	}
}

// ResidencyReplica returns a sweep body that runs one independent E13
// residency campaign (§IV-C): a namespace built from the replica seed,
// daily production, the periodic purger, and the steady-state residency
// and fill recorded as metrics.
func ResidencyReplica(cfg ResidencyConfig) sweep.Body {
	return func(r *sweep.Rep) error {
		eng := sim.NewEngine()
		fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(r.Seed))
		p := New(fs, cfg.Policy)
		p.Start()
		arrivals := r.Src.Split("production")
		day := 0
		var producer func()
		producer = func() {
			if day >= cfg.Days {
				return
			}
			if files := arrivals.Poisson(float64(cfg.FilesPerDay)); files > 0 {
				tools.Populate(fs, tools.TreeSpec{
					Dirs: 1, FilesPerDir: files, FileSize: cfg.FileSize,
					Root: fmt.Sprintf("day%02d", day),
				})
			}
			day++
			eng.After(sim.Day, producer)
		}
		producer()
		eng.RunUntil(sim.Time(cfg.Days) * sim.Day)
		p.Stop()
		eng.Run()
		if len(p.Sweeps) == 0 {
			return fmt.Errorf("purge: no sweeps ran in %d days", cfg.Days)
		}

		last := p.Sweeps[len(p.Sweeps)-1]
		r.Record("resident_files", float64(fs.NumFiles))
		r.Record("resident_days", float64(fs.NumFiles)/float64(cfg.FilesPerDay))
		r.Record("deleted_files", float64(p.Deleted))
		r.Record("purge_sweeps", float64(len(p.Sweeps)))
		r.Record("freed_gib", float64(p.Freed)/(1<<30))
		r.Record("final_fill", last.FillAfter)
		return nil
	}
}
