// Package purge implements the automatic capacity-trimming mechanism of
// §IV-C: files not created, modified, or accessed within a contiguous
// window (14 days on Spider) are deleted by a periodic sweep, keeping
// utilization below the level where performance degrades.
package purge

import (
	"spiderfs/internal/lustre"
	"spiderfs/internal/sim"
)

// Policy configures the purger.
type Policy struct {
	// MaxAge is the retention window (14 days at OLCF).
	MaxAge sim.Time
	// Interval between sweeps (daily at OLCF).
	Interval sim.Time
	// Concurrency is how many unlinks are kept in flight per sweep.
	Concurrency int
	// Exempt returns true for paths the purge must never touch
	// (optional).
	Exempt func(path string) bool
}

// Spider2Policy returns the production policy.
func Spider2Policy() Policy {
	return Policy{MaxAge: 14 * sim.Day, Interval: sim.Day, Concurrency: 16}
}

// SweepReport summarizes one sweep.
type SweepReport struct {
	At         sim.Time
	Scanned    int
	Deleted    int
	BytesFreed int64
	FillBefore float64
	FillAfter  float64
}

// Purger runs the policy against a namespace.
type Purger struct {
	fs     *lustre.FS
	policy Policy

	pending *sim.Event
	stopped bool

	Sweeps  []SweepReport
	Deleted int64
	Freed   int64
}

// New builds a purger; call Start for periodic sweeps or Sweep for a
// single pass.
func New(fs *lustre.FS, policy Policy) *Purger {
	if policy.MaxAge <= 0 || policy.Concurrency <= 0 {
		panic("purge: invalid policy") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return &Purger{fs: fs, policy: policy}
}

// lastTouch is the most recent of the file's three timestamps, matching
// the paper's "not created, modified, or accessed within a contiguous 14
// day range".
func lastTouch(f *lustre.File) sim.Time {
	t := f.ATime
	if f.MTime > t {
		t = f.MTime
	}
	if f.CTime > t {
		t = f.CTime
	}
	return t
}

// Sweep scans the namespace and unlinks expired files, invoking done
// with the report when the pass completes.
func (p *Purger) Sweep(done func(SweepReport)) {
	eng := p.fs.Engine()
	now := eng.Now()
	rep := SweepReport{At: now, FillBefore: p.fs.Fill()}
	var victims []*lustre.File
	p.fs.Walk(nil, func(f *lustre.File) {
		rep.Scanned++
		if p.policy.Exempt != nil && p.policy.Exempt(f.Path) {
			return
		}
		if now-lastTouch(f) > p.policy.MaxAge {
			victims = append(victims, f)
		}
	})
	next := 0
	b := sim.NewBarrier(func() {
		rep.FillAfter = p.fs.Fill()
		p.Sweeps = append(p.Sweeps, rep)
		if done != nil {
			done(rep)
		}
	})
	var worker func()
	worker = func() {
		if next >= len(victims) {
			b.Done()
			return
		}
		f := victims[next]
		next++
		size := f.Size()
		p.fs.Unlink(f.Path, func() {
			rep.Deleted++
			rep.BytesFreed += size
			p.Deleted++
			p.Freed += size
			worker()
		})
	}
	for i := 0; i < p.policy.Concurrency; i++ {
		b.Add(1)
		worker()
	}
	b.Arm()
}

// Start schedules periodic sweeps; Stop cancels them.
func (p *Purger) Start() {
	if p.policy.Interval <= 0 {
		panic("purge: Start needs a positive interval") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	p.schedule()
}

func (p *Purger) schedule() {
	p.pending = p.fs.Engine().After(p.policy.Interval, func() {
		if p.stopped {
			return
		}
		p.Sweep(func(SweepReport) { p.schedule() })
	})
}

// Stop halts periodic sweeping.
func (p *Purger) Stop() {
	p.stopped = true
	if p.pending != nil {
		p.pending.Cancel()
		p.pending = nil
	}
}
