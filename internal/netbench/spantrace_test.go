package netbench

import "testing"

// The verify bench smoke drives these at -benchtime=1x so the traced
// and untraced congestion paths both stay runnable; the real overhead
// numbers come from the checked-in BENCH_spantrace.json artifact.
func BenchmarkSpantraceUntraced(b *testing.B) {
	spider2Spans(0, 128, nil)(b)
}

func BenchmarkSpantraceSampled(b *testing.B) {
	var spans float64
	spider2Spans(spantraceEvery, 128, &spans)(b)
	b.ReportMetric(spans, "spans/op")
}

// A quick span-suite run must produce both measurements, a sane span
// count, and a renderable artifact. The 5% overhead ceiling is only
// asserted on the full-scale artifact (cmd/benchsuite -spantrace):
// at the shrunken smoke scale the absolute per-op time is so small
// that scheduler noise swamps the tracer's real cost.
func TestSpanSuiteQuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	s := RunSpans(false)
	if s.SampleEvery != spantraceEvery {
		t.Fatalf("sample_every = %d, want %d", s.SampleEvery, spantraceEvery)
	}
	if s.Untraced.NsPerOp <= 0 || s.Traced.NsPerOp <= 0 {
		t.Fatalf("missing measurements: untraced %v, traced %v", s.Untraced.NsPerOp, s.Traced.NsPerOp)
	}
	// 128 flows at 1-in-64 sampling → about 2 roots/op, each with a
	// send+flow pair and a handful of hop marks.
	if s.SpansPerOp <= 0 || s.SpansPerOp > 128 {
		t.Fatalf("spans/op = %.1f, want a small positive count", s.SpansPerOp)
	}
	out, err := s.JSON()
	if err != nil || len(out) == 0 {
		t.Fatalf("JSON render failed: %v", err)
	}
	if len(s.Render()) == 0 {
		t.Fatal("empty table render")
	}
}
