// Package netbench benchmarks netsim's flow solver against a frozen
// copy of the map-based implementation it replaced, and drives a
// Spider II-sized fabric (18,688 clients, 440 LNET routers, 288 OSSes)
// through a congestion-heavy workload to record ns/flow-event at
// production scale. Command benchsuite -netsim runs the suite and
// emits BENCH_netsim.json.
package netbench

import (
	"spiderfs/internal/sim"
)

// The types below are the pre-refactor netsim algorithm, kept verbatim
// in miniature: per-link flow membership in a map[*mapFlow]struct{}, an
// affected-set map allocated on every start and finish, reassignment by
// map iteration, and cancel+reschedule of the completion event even
// when the fair-share rate did not change. It exists only so the suite
// can measure the ordered registries against the exact bookkeeping they
// replaced, on identical workloads.

type mapLink struct {
	cap     float64
	latency sim.Time
	flows   map[*mapFlow]struct{}
}

type mapFlow struct {
	path       []*mapLink
	size       float64
	remaining  float64
	rate       float64
	lastUpdate sim.Time
	completion *sim.Event
	done       func()
}

type mapNetwork struct {
	eng            *sim.Engine
	flowsStarted   uint64
	flowsCompleted uint64
}

func newMapNetwork(eng *sim.Engine) *mapNetwork { return &mapNetwork{eng: eng} }

func (n *mapNetwork) newLink(capBps float64, latency sim.Time) *mapLink {
	return &mapLink{cap: capBps, latency: latency, flows: map[*mapFlow]struct{}{}}
}

func (n *mapNetwork) start(path []*mapLink, size float64, done func()) *mapFlow {
	n.flowsStarted++
	f := &mapFlow{path: path, size: size, remaining: size,
		lastUpdate: n.eng.Now(), done: done}
	if len(path) == 0 {
		n.eng.After(0, func() { n.finish(f) })
		return f
	}
	var latency sim.Time
	for _, l := range path {
		l.flows[f] = struct{}{}
		latency += l.latency
	}
	f.lastUpdate = n.eng.Now() + latency
	n.reassign(n.affected(f))
	return f
}

// affected allocates a fresh set on every call — the per-event garbage
// the ordered implementation's epoch stamps eliminate.
func (n *mapNetwork) affected(f *mapFlow) map[*mapFlow]struct{} {
	set := map[*mapFlow]struct{}{f: {}}
	for _, l := range f.path {
		for g := range l.flows {
			set[g] = struct{}{}
		}
	}
	return set
}

func (n *mapNetwork) advance(f *mapFlow) {
	now := n.eng.Now()
	dt := now - f.lastUpdate
	if dt > 0 && f.rate > 0 {
		moved := f.rate * dt.Seconds()
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
	}
	if now > f.lastUpdate {
		f.lastUpdate = now
	}
}

// reassign iterates the affected set in Go map order — the scheduling
// nondeterminism the ordered registries fix — and unconditionally
// cancels and reschedules every completion event.
func (n *mapNetwork) reassign(flows map[*mapFlow]struct{}) {
	for f := range flows { //simlint:allow ordered-map-range deliberately frozen nondeterministic baseline the ordered registries are measured against
		n.advance(f)
		rate := -1.0
		for _, l := range f.path {
			share := l.cap / float64(len(l.flows))
			if rate < 0 || share < rate {
				rate = share
			}
		}
		if rate < 0 {
			rate = 0
		}
		f.rate = rate
		f.completion.Cancel()
		f.completion = nil
		if rate <= 0 {
			continue
		}
		dur := sim.FromSeconds(f.remaining / rate)
		start := f.lastUpdate
		if start < n.eng.Now() {
			start = n.eng.Now()
		}
		at := start + dur
		if at < n.eng.Now() {
			at = n.eng.Now()
		}
		ff := f
		f.completion = n.eng.At(at, func() { n.finish(ff) })
	}
}

func (n *mapNetwork) finish(f *mapFlow) {
	n.advance(f)
	f.remaining = 0
	aff := n.affected(f)
	delete(aff, f)
	for _, l := range f.path {
		delete(l.flows, f)
	}
	f.rate = 0
	f.completion = nil
	n.flowsCompleted++
	n.reassign(aff)
	if f.done != nil {
		f.done()
	}
}
