package netbench

import (
	"fmt"
	"runtime"
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/shard"
)

// The sharded congestion workload: the same wave-and-drain shape as
// spider2Congestion, but on the partitioned fabric (torus X-slab region
// shards plus router/OSS storage shards) driven by the conservative
// barrier runner. Each op launches one wave and drains it; the
// fingerprint runs use a separate fixed wave count so the trace they
// hash never depends on the benchmark's iteration calibration.
const (
	shardSeed        = 7
	shardFPWaves     = 3
	shardFullRegions = 8
	shardFullStorage = 36 // one shard per SSU: 2 namespaces x 18 SSUs
)

// shardWorkerCounts are the worker counts measured and fingerprinted;
// index 0 is the serial reference every other count must match.
var shardWorkerCounts = []int{1, 2, 4, 8}

// ShardRun is one sharded congestion measurement at a worker count.
type ShardRun struct {
	Workers         int     `json:"workers"`
	NsPerOp         float64 `json:"ns_per_op"`
	FlowEventsPerOp float64 `json:"flow_events_per_op"`
	NsPerFlowEvent  float64 `json:"ns_per_flow_event"`
	Fingerprint     string  `json:"fingerprint"`
}

// ShardSection is the sharded-engine block of BENCH_netsim.json. The
// gate (internal/regress) requires Deterministic and exact fingerprint
// identity across the runs; Speedup is recorded, not gated, because a
// single-CPU host cannot exceed 1.
type ShardSection struct {
	Regions       int        `json:"regions"`
	StorageShards int        `json:"storage_shards"`
	LookaheadNs   int64      `json:"lookahead_ns"`
	CPUs          int        `json:"cpus"`
	Runs          []ShardRun `json:"runs"`
	// Deterministic is true when every worker count double-ran to the
	// same fingerprint and every fingerprint equals the serial run's.
	Deterministic bool `json:"deterministic"`
	// Speedup is the serial ns/op over the best parallel ns/op.
	Speedup float64 `json:"speedup"`
}

func shardConfig(full bool, workers int) (cfg shard.FabricConfig, batch int, bytes float64) {
	if full {
		return shard.Spider2Partition(shardFullRegions, shardFullStorage, workers), spider2Batch, spider2Bytes
	}
	return shard.SmallPartition(workers), 128, 8e6
}

// shardFingerprint runs the fixed-wave workload once and returns the
// event-trace fingerprint and total events fired.
func shardFingerprint(cfg shard.FabricConfig, batch int, bytes float64) (uint64, uint64) {
	fs := shard.NewFabricSim(cfg)
	src := rng.New(shardSeed)
	for i := 0; i < shardFPWaves; i++ {
		fs.LaunchWave(src, batch, bytes, fs.Runner.Horizon())
		fs.Runner.Run()
	}
	return fs.Runner.Fingerprint(), fs.Runner.Events()
}

func shardCongestion(cfg shard.FabricConfig, batch int, bytes float64, events *float64) func(b *testing.B) {
	return func(b *testing.B) {
		fs := shard.NewFabricSim(cfg)
		src := rng.New(shardSeed)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fs.LaunchWave(src, batch, bytes, fs.Runner.Horizon())
			fs.Runner.Run()
		}
		b.StopTimer()
		*events = float64(fs.Runner.Events()) / float64(b.N)
	}
}

// RunShard measures the sharded congestion workload at each worker
// count and double-runs the fixed-wave fingerprint at each, the
// serial-vs-parallel recipe the sweep suite uses.
func RunShard(full bool) *ShardSection {
	cfg, _, _ := shardConfig(full, 1)
	sec := &ShardSection{
		Regions:       cfg.Regions,
		StorageShards: cfg.Storage,
		LookaheadNs:   int64(cfg.Lookahead),
		CPUs:          runtime.NumCPU(),
		Deterministic: true,
	}
	var serialFP uint64
	for i, w := range shardWorkerCounts {
		cfg, batch, bytes := shardConfig(full, w)
		fp, _ := shardFingerprint(cfg, batch, bytes)
		again, _ := shardFingerprint(cfg, batch, bytes)
		if fp != again {
			sec.Deterministic = false
		}
		if i == 0 {
			serialFP = fp
		} else if fp != serialFP {
			sec.Deterministic = false
		}
		var events float64
		r := testing.Benchmark(shardCongestion(cfg, batch, bytes, &events))
		run := ShardRun{
			Workers:         w,
			NsPerOp:         float64(r.T.Nanoseconds()) / float64(r.N),
			FlowEventsPerOp: events,
			Fingerprint:     fmt.Sprintf("%016x", fp),
		}
		if events > 0 {
			run.NsPerFlowEvent = run.NsPerOp / events
		}
		sec.Runs = append(sec.Runs, run)
	}
	serial := sec.Runs[0].NsPerOp
	best := 0.0
	for _, r := range sec.Runs[1:] {
		if best == 0 || r.NsPerOp < best {
			best = r.NsPerOp
		}
	}
	if best > 0 {
		sec.Speedup = serial / best
	}
	return sec
}
