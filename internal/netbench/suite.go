package netbench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"spiderfs/internal/netsim"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// Result is one benchmark measurement.
type Result struct {
	Name            string  `json:"name"`
	NsPerOp         float64 `json:"ns_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	FlowEventsPerOp float64 `json:"flow_events_per_op,omitempty"`
	NsPerFlowEvent  float64 `json:"ns_per_flow_event,omitempty"`
}

// Scale records the fabric dimensions of the full-scale benchmark.
type Scale struct {
	Clients    int `json:"clients"`
	Routers    int `json:"routers"`
	OSSes      int `json:"osses"`
	TorusNodes int `json:"torus_nodes"`
	Links      int `json:"links"`
}

// Suite is the JSON artifact (BENCH_netsim.json) format.
type Suite struct {
	Schema string `json:"schema"`
	// Scale is present when the full Spider II-scale benchmark ran.
	Scale   *Scale   `json:"scale,omitempty"`
	Results []Result `json:"results"`
	// Shard records the sharded parallel engine's congestion numbers and
	// the serial-vs-parallel fingerprint identity (see shard.go).
	Shard *ShardSection `json:"shard,omitempty"`
	// The headline regression numbers: the ordered registries versus the
	// frozen map baseline on the identical start/finish churn workload.
	StartFinishAllocRatio float64 `json:"start_finish_alloc_ratio"`
	StartFinishSpeedup    float64 `json:"start_finish_speedup"`
}

func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// The churn workload: flows of 1 MB across one or two of eight shared
// 1 GB/s links, picks drawn from a fixed seed, the engine drained every
// 64 starts. Both implementations consume the identical pick stream, so
// the comparison isolates the bookkeeping.
const (
	churnLinks = 8
	churnDrain = 64
	churnSeed  = 1
)

func churnOrdered(b *testing.B) {
	eng := sim.NewEngine()
	n := netsim.NewNetwork(eng)
	links := make([]*netsim.Link, churnLinks)
	for i := range links {
		links[i] = n.NewLink("l", 1e9, 0)
	}
	src := rng.New(churnSeed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := []*netsim.Link{links[src.Intn(churnLinks)], links[src.Intn(churnLinks)]}
		if path[0] == path[1] {
			path = path[:1]
		}
		n.StartFlow(path, 1e6, nil)
		if i%churnDrain == churnDrain-1 {
			eng.Run()
		}
	}
	eng.Run()
}

func churnBaseline(b *testing.B) {
	eng := sim.NewEngine()
	n := newMapNetwork(eng)
	links := make([]*mapLink, churnLinks)
	for i := range links {
		links[i] = n.newLink(1e9, 0)
	}
	src := rng.New(churnSeed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := []*mapLink{links[src.Intn(churnLinks)], links[src.Intn(churnLinks)]}
		if path[0] == path[1] {
			path = path[:1]
		}
		n.start(path, 1e6, nil)
		if i%churnDrain == churnDrain-1 {
			eng.Run()
		}
	}
	eng.Run()
}

// The full-scale workload: Titan's 18,688 compute clients (two per
// Gemini ASIC on the 25x16x24 torus), the production router placement
// (110 I/O modules, 440 LNET routers), and Spider II's 288 OSSes. Each
// op launches a wave of striped writes — enough concurrency that every
// OSS port and router serves several flows at once — and drains it, so
// the measured cost is the start/finish/re-rate path under congestion.
const (
	spider2Clients = 18688
	spider2OSSes   = 288
	spider2Batch   = 2048
	spider2Bytes   = 32e6
)

func spider2Congestion(events *float64, scale *Scale) func(b *testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine()
		cfg := netsim.Spider2Fabric()
		pl := topology.PlaceRouters(topology.TitanCabinets(), cfg.Torus, 110, 9)
		f := netsim.NewFabric(eng, cfg, pl, spider2OSSes)
		if scale != nil {
			*scale = Scale{
				Clients:    spider2Clients,
				Routers:    f.NumRouters(),
				OSSes:      spider2OSSes,
				TorusNodes: cfg.Torus.Nodes(),
				Links:      len(f.Net.Links()),
			}
		}
		src := rng.New(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < spider2Batch; j++ {
				client := src.Intn(spider2Clients)
				c := cfg.Torus.CoordOf(client % cfg.Torus.Nodes())
				f.StartClientFlow(c, src.Intn(spider2OSSes), netsim.RouteFGR, spider2Bytes, src, nil)
			}
			eng.Run()
		}
		b.StopTimer()
		*events = float64(eng.Fired()) / float64(b.N)
	}
}

// Run executes the suite. full=false skips the Spider II-scale fabric
// benchmark (tests use that; the checked-in artifact is generated with
// full=true via `go run ./cmd/benchsuite -netsim -out BENCH_netsim.json`).
func Run(full bool) Suite {
	s := Suite{Schema: "spiderfs-netsim-bench/1"}
	base := measure("start_finish/map_baseline", churnBaseline)
	ord := measure("start_finish/ordered", churnOrdered)
	s.Results = append(s.Results, base, ord)
	if ord.AllocsPerOp > 0 {
		s.StartFinishAllocRatio = float64(base.AllocsPerOp) / float64(ord.AllocsPerOp)
	}
	if ord.NsPerOp > 0 {
		s.StartFinishSpeedup = base.NsPerOp / ord.NsPerOp
	}
	if full {
		var events float64
		var scale Scale
		r := measure("spider2_congestion/ordered", spider2Congestion(&events, &scale))
		r.FlowEventsPerOp = events
		if events > 0 {
			r.NsPerFlowEvent = r.NsPerOp / events
		}
		s.Results = append(s.Results, r)
		s.Scale = &scale
	}
	s.Shard = RunShard(full)
	return s
}

// Render formats the suite as a table for stdout.
func (s Suite) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %12s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, r := range s.Results {
		fmt.Fprintf(&b, "%-28s %14.0f %12d %12d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.FlowEventsPerOp > 0 {
			fmt.Fprintf(&b, "%-28s %.0f flow events/op, %.0f ns/flow-event\n",
				"", r.FlowEventsPerOp, r.NsPerFlowEvent)
		}
	}
	if s.Scale != nil {
		fmt.Fprintf(&b, "scale: %d clients, %d routers, %d OSSes, %d torus nodes, %d links\n",
			s.Scale.Clients, s.Scale.Routers, s.Scale.OSSes, s.Scale.TorusNodes, s.Scale.Links)
	}
	if s.Shard != nil {
		fmt.Fprintf(&b, "sharded engine: %d regions + %d storage shards, lookahead %dns, %d CPUs\n",
			s.Shard.Regions, s.Shard.StorageShards, s.Shard.LookaheadNs, s.Shard.CPUs)
		for _, r := range s.Shard.Runs {
			fmt.Fprintf(&b, "  workers=%d %14.0f ns/op  %.0f flow events/op, %.0f ns/flow-event, fingerprint %s\n",
				r.Workers, r.NsPerOp, r.FlowEventsPerOp, r.NsPerFlowEvent, r.Fingerprint)
		}
		fmt.Fprintf(&b, "  deterministic across workers: %v; speedup %.2fx (recorded, not gated)\n",
			s.Shard.Deterministic, s.Shard.Speedup)
	}
	fmt.Fprintf(&b, "start/finish vs map baseline: %.1fx fewer allocs/op, %.1fx faster\n",
		s.StartFinishAllocRatio, s.StartFinishSpeedup)
	return b.String()
}

// JSON renders the artifact.
func (s Suite) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
