package netbench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"spiderfs/internal/netsim"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/topology"
)

// The spantrace overhead benchmark: the Spider II-scale congestion
// workload run twice on identical seeds — once untraced, once with a
// sampling tracer attached to the fabric — so the delta is exactly the
// cost of the tracing plane. The acceptance bar for the plane is <=5%
// wall-clock overhead at 1-in-64 sampling (the always-on production
// setting); anything dearer would make operators turn it off, which is
// how observability planes die.
const spantraceEvery = 64

// spider2Spans is spider2Congestion with an optional tracer. every<=0
// runs untraced; batch lets the smoke tests shrink the wave while the
// artifact uses the production spider2Batch.
func spider2Spans(every, batch int, spans *float64) func(b *testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine()
		cfg := netsim.Spider2Fabric()
		pl := topology.PlaceRouters(topology.TitanCabinets(), cfg.Torus, 110, 9)
		f := netsim.NewFabric(eng, cfg, pl, spider2OSSes)
		var tr *spantrace.Tracer
		if every > 0 {
			tr = spantrace.New(rng.New(9), every)
			tr.Bind(eng)
			f.Tracer = tr
		}
		src := rng.New(7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				client := src.Intn(spider2Clients)
				c := cfg.Torus.CoordOf(client % cfg.Torus.Nodes())
				f.StartClientFlow(c, src.Intn(spider2OSSes), netsim.RouteFGR, spider2Bytes, src, nil)
			}
			eng.Run()
		}
		b.StopTimer()
		if spans != nil {
			*spans = float64(tr.Len()) / float64(b.N)
		}
	}
}

// SpanSuite is the JSON artifact (BENCH_spantrace.json) format.
type SpanSuite struct {
	Schema      string `json:"schema"`
	Scale       *Scale `json:"scale,omitempty"`
	SampleEvery int    `json:"sample_every"`
	// Untraced and Traced run the identical flow schedule; the tracer is
	// the only difference between them.
	Untraced Result `json:"untraced"`
	Traced   Result `json:"traced"`
	// OverheadFrac is (traced - untraced) / untraced wall clock;
	// the acceptance ceiling is 0.05 at 1-in-64 sampling.
	OverheadFrac float64 `json:"overhead_frac"`
	SpansPerOp   float64 `json:"spans_per_op"`
}

// RunSpans measures tracing overhead. full=true uses the production
// 2,048-flow waves of the Spider II congestion benchmark (the artifact
// generator: `go run ./cmd/benchsuite -spantrace -out
// BENCH_spantrace.json`); full=false shrinks the wave so tests stay
// quick.
func RunSpans(full bool) SpanSuite {
	batch := 128
	if full {
		batch = spider2Batch
	}
	s := SpanSuite{Schema: "spiderfs-spantrace-bench/1", SampleEvery: spantraceEvery}
	s.Untraced = measure("spider2_congestion/untraced", spider2Spans(0, batch, nil))
	var spans float64
	s.Traced = measure(fmt.Sprintf("spider2_congestion/traced_1in%d", spantraceEvery),
		spider2Spans(spantraceEvery, batch, &spans))
	s.SpansPerOp = spans
	if s.Untraced.NsPerOp > 0 {
		s.OverheadFrac = (s.Traced.NsPerOp - s.Untraced.NsPerOp) / s.Untraced.NsPerOp
	}
	if full {
		cfg := netsim.Spider2Fabric()
		eng := sim.NewEngine()
		f := netsim.NewFabric(eng, cfg, topology.PlaceRouters(topology.TitanCabinets(), cfg.Torus, 110, 9), spider2OSSes)
		s.Scale = &Scale{
			Clients:    spider2Clients,
			Routers:    f.NumRouters(),
			OSSes:      spider2OSSes,
			TorusNodes: cfg.Torus.Nodes(),
			Links:      len(f.Net.Links()),
		}
	}
	return s
}

// Render formats the span suite as a table for stdout.
func (s SpanSuite) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %14s %12s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, r := range []Result{s.Untraced, s.Traced} {
		fmt.Fprintf(&b, "%-36s %14.0f %12d %12d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	if s.Scale != nil {
		fmt.Fprintf(&b, "scale: %d clients, %d routers, %d OSSes, %d torus nodes, %d links\n",
			s.Scale.Clients, s.Scale.Routers, s.Scale.OSSes, s.Scale.TorusNodes, s.Scale.Links)
	}
	fmt.Fprintf(&b, "tracing overhead at 1-in-%d sampling: %.2f%% wall clock, %.0f spans/op (ceiling 5%%)\n",
		s.SampleEvery, s.OverheadFrac*100, s.SpansPerOp)
	return b.String()
}

// JSON renders the artifact.
func (s SpanSuite) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
