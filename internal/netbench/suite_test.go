package netbench

import (
	"testing"

	"spiderfs/internal/netsim"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// The frozen baseline must still be a faithful copy of the fluid model:
// on an identical workload, both solvers complete the same flows and
// the drain finishes at (floating-point-near) the same instant. If the
// baseline drifted, the benchmark comparison would be meaningless.
func TestBaselineMatchesOrderedSolver(t *testing.T) {
	const flows = 200
	type pick struct{ a, b int }
	src := rng.New(13)
	picks := make([]pick, flows)
	for i := range picks {
		picks[i] = pick{src.Intn(churnLinks), src.Intn(churnLinks)}
	}

	ordEng := sim.NewEngine()
	ordNet := netsim.NewNetwork(ordEng)
	ordLinks := make([]*netsim.Link, churnLinks)
	for i := range ordLinks {
		ordLinks[i] = ordNet.NewLink("l", 1e9, 0)
	}
	for _, p := range picks {
		path := []*netsim.Link{ordLinks[p.a], ordLinks[p.b]}
		if p.a == p.b {
			path = path[:1]
		}
		ordNet.StartFlow(path, 1e6, nil)
	}
	ordEng.Run()

	baseEng := sim.NewEngine()
	baseNet := newMapNetwork(baseEng)
	baseLinks := make([]*mapLink, churnLinks)
	for i := range baseLinks {
		baseLinks[i] = baseNet.newLink(1e9, 0)
	}
	for _, p := range picks {
		path := []*mapLink{baseLinks[p.a], baseLinks[p.b]}
		if p.a == p.b {
			path = path[:1]
		}
		baseNet.start(path, 1e6, nil)
	}
	baseEng.Run()

	if ordNet.FlowsCompleted != flows || baseNet.flowsCompleted != flows {
		t.Fatalf("completions: ordered %d, baseline %d, want %d",
			ordNet.FlowsCompleted, baseNet.flowsCompleted, flows)
	}
	// The two implementations advance flows at different instants, so
	// their remaining-bytes arithmetic may differ in the last float bits;
	// allow a microsecond of drift on a multi-second drain.
	d := ordEng.Now() - baseEng.Now()
	if d < 0 {
		d = -d
	}
	if d > sim.Microsecond {
		t.Fatalf("drain ends diverge: ordered %v, baseline %v", ordEng.Now(), baseEng.Now())
	}
}

// The refactor's headline claim, checked cheaply with AllocsPerRun: a
// fan-in burst (8 flows sharing one link) followed by a drain must
// allocate at least 2x less under the ordered registries than under the
// map baseline. The baseline pays an affected-set map per start/finish
// and re-allocates every sibling's completion event on each arrival;
// the ordered path allocates only the flow, its path, and one event.
func TestOrderedHalvesStartFinishAllocations(t *testing.T) {
	const fanIn = 8
	ordEng := sim.NewEngine()
	ordNet := netsim.NewNetwork(ordEng)
	ordLink := ordNet.NewLink("l", 1e9, 0)
	ordered := testing.AllocsPerRun(100, func() {
		for i := 0; i < fanIn; i++ {
			ordNet.StartFlow([]*netsim.Link{ordLink}, 1e6, nil)
		}
		ordEng.Run()
	})

	baseEng := sim.NewEngine()
	baseNet := newMapNetwork(baseEng)
	baseLink := baseNet.newLink(1e9, 0)
	baseline := testing.AllocsPerRun(100, func() {
		for i := 0; i < fanIn; i++ {
			baseNet.start([]*mapLink{baseLink}, 1e6, nil)
		}
		baseEng.Run()
	})

	if ordered*2 > baseline {
		t.Fatalf("ordered start/finish allocates %.1f/run vs baseline %.1f/run, want >=2x fewer",
			ordered, baseline)
	}
}

// A quick (non-full) suite run must produce both churn results and the
// headline ratios; this keeps the artifact generator exercised in CI.
func TestSuiteQuickRun(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	s := Run(false)
	if len(s.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(s.Results))
	}
	if s.StartFinishAllocRatio < 2 {
		t.Fatalf("alloc ratio %.2f, want >= 2 (acceptance floor)", s.StartFinishAllocRatio)
	}
	if s.Results[0].Name != "start_finish/map_baseline" || s.Results[1].Name != "start_finish/ordered" {
		t.Fatalf("unexpected result names: %q, %q", s.Results[0].Name, s.Results[1].Name)
	}
	if s.Shard == nil {
		t.Fatal("suite is missing its shard section")
	}
	if !s.Shard.Deterministic {
		t.Fatalf("sharded runs diverged: %+v", s.Shard.Runs)
	}
	if len(s.Shard.Runs) != 4 || s.Shard.Runs[0].Workers != 1 {
		t.Fatalf("shard runs %+v: want workers 1,2,4,8", s.Shard.Runs)
	}
	for _, r := range s.Shard.Runs {
		if r.Fingerprint != s.Shard.Runs[0].Fingerprint {
			t.Fatalf("workers=%d fingerprint %s != serial %s", r.Workers, r.Fingerprint, s.Shard.Runs[0].Fingerprint)
		}
	}
	out, err := s.JSON()
	if err != nil || len(out) == 0 {
		t.Fatalf("JSON render failed: %v", err)
	}
	if len(s.Render()) == 0 {
		t.Fatal("empty table render")
	}
}
