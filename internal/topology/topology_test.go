package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestIndexCoordRoundTrip(t *testing.T) {
	tor := Torus{NX: 5, NY: 4, NZ: 3}
	f := func(raw uint16) bool {
		i := int(raw) % tor.Nodes()
		return tor.Index(tor.CoordOf(i)) == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceWraparound(t *testing.T) {
	tor := Torus{NX: 10, NY: 10, NZ: 10}
	// 0 -> 9 along X is 1 hop via wraparound, not 9.
	if d := tor.Distance(Coord{0, 0, 0}, Coord{9, 0, 0}); d != 1 {
		t.Fatalf("wrap distance = %d, want 1", d)
	}
	if d := tor.Distance(Coord{0, 0, 0}, Coord{5, 0, 0}); d != 5 {
		t.Fatalf("half-way distance = %d, want 5", d)
	}
	if d := tor.Distance(Coord{1, 2, 3}, Coord{1, 2, 3}); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	tor := TitanTorus()
	f := func(a, b uint16) bool {
		ca := tor.CoordOf(int(a) % tor.Nodes())
		cb := tor.CoordOf(int(b) % tor.Nodes())
		return tor.Distance(ca, cb) == tor.Distance(cb, ca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the dimension-ordered path has length equal to the torus
// distance, each step moves exactly one hop, and it ends at the target.
func TestPathProperty(t *testing.T) {
	tor := Torus{NX: 7, NY: 5, NZ: 6}
	f := func(a, b uint16) bool {
		ca := tor.CoordOf(int(a) % tor.Nodes())
		cb := tor.CoordOf(int(b) % tor.Nodes())
		path := tor.Path(ca, cb)
		if len(path) != tor.Distance(ca, cb) {
			return false
		}
		prev := ca
		for _, c := range path {
			if tor.Distance(prev, c) != 1 {
				return false
			}
			prev = c
		}
		return len(path) == 0 || path[len(path)-1] == cb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTitanDims(t *testing.T) {
	tor := TitanTorus()
	if tor.Nodes() != 25*16*24 {
		t.Fatalf("titan nodes = %d", tor.Nodes())
	}
	grid := TitanCabinets()
	if grid.Cabinets() != 200 {
		t.Fatalf("cabinets = %d", grid.Cabinets())
	}
}

func TestPlaceRoutersSpiderConfig(t *testing.T) {
	p := PlaceRouters(TitanCabinets(), TitanTorus(), 110, 9)
	if len(p.Modules) != 110 {
		t.Fatalf("modules = %d", len(p.Modules))
	}
	// 440 distinct router IDs.
	seen := map[int]bool{}
	for _, m := range p.Modules {
		for _, r := range m.RouterIDs {
			if seen[r] {
				t.Fatalf("duplicate router id %d", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != 440 {
		t.Fatalf("routers = %d, want 440", len(seen))
	}
	// Every group is populated and group count respected.
	counts := map[int]int{}
	for _, m := range p.Modules {
		if m.Group < 0 || m.Group >= 9 {
			t.Fatalf("module group %d out of range", m.Group)
		}
		counts[m.Group]++
	}
	if len(counts) != 9 {
		t.Fatalf("populated groups = %d, want 9", len(counts))
	}
	for g, c := range counts {
		if c < 8 || c > 18 {
			t.Fatalf("group %d has %d modules; want roughly balanced (~12)", g, c)
		}
	}
	// Modules must be inside the torus and on valid cabinets.
	for _, m := range p.Modules {
		if !p.Torus.Contains(m.Coord) {
			t.Fatalf("module coord %v outside torus", m.Coord)
		}
		if m.Col < 0 || m.Col >= 25 || m.Row < 0 || m.Row >= 8 {
			t.Fatalf("module cabinet (%d,%d) invalid", m.Col, m.Row)
		}
	}
}

func TestGroupZonesAreColumnBands(t *testing.T) {
	p := PlaceRouters(TitanCabinets(), TitanTorus(), 110, 9)
	// Group must be nondecreasing in X.
	prev := -1
	for x := 0; x < 25; x++ {
		g := p.GroupOf(Coord{X: x})
		if g < prev {
			t.Fatalf("group not monotone in X at %d", x)
		}
		prev = g
	}
}

func TestPlacementReducesDistance(t *testing.T) {
	good := PlaceRouters(TitanCabinets(), TitanTorus(), 110, 9)
	// A clumped placement: all modules in the first few cabinets.
	clumped := good
	clumped.Modules = append([]IOModule(nil), good.Modules...)
	for i := range clumped.Modules {
		clumped.Modules[i].Coord = Coord{X: 0, Y: 0, Z: i % 24}
	}
	dGood := good.MeanClientRouterDistance(false)
	dClumped := clumped.MeanClientRouterDistance(false)
	if dGood >= dClumped {
		t.Fatalf("spread placement (%f) should beat clumped (%f)", dGood, dClumped)
	}
	if dGood > 6 {
		t.Fatalf("mean client-router distance %f too large for 110 modules", dGood)
	}
}

func TestFGRGroupRestrictionCostsLittle(t *testing.T) {
	p := PlaceRouters(TitanCabinets(), TitanTorus(), 110, 9)
	free := p.MeanClientRouterDistance(false)
	zoned := p.MeanClientRouterDistance(true)
	if zoned < free {
		t.Fatalf("restricting choice cannot reduce distance: zoned=%f free=%f", zoned, free)
	}
	// The whole point of zone banding: the restriction should cost well
	// under 2x.
	if zoned > 2*free+1 {
		t.Fatalf("zone restriction too costly: zoned=%f free=%f", zoned, free)
	}
}

func TestNearestModule(t *testing.T) {
	p := PlaceRouters(TitanCabinets(), TitanTorus(), 10, 2)
	m, d := p.NearestModule(p.Modules[3].Coord, nil)
	if d != 0 || m.Coord != p.Modules[3].Coord {
		t.Fatalf("nearest to a module coord should be itself (d=%d)", d)
	}
}

func TestRenderXYMap(t *testing.T) {
	p := PlaceRouters(TitanCabinets(), TitanTorus(), 110, 9)
	out := p.RenderXYMap()
	if !strings.Contains(out, "110 modules (440 routers) in 9 groups") {
		t.Fatalf("map summary missing:\n%s", out)
	}
	if strings.Count(out, "\n") < 9 {
		t.Fatalf("map should have one line per row:\n%s", out)
	}
	// At least one group letter appears.
	if !strings.ContainsAny(out, "ABCDEFGHI") {
		t.Fatalf("no group letters in map:\n%s", out)
	}
}

func TestBadCoordPanics(t *testing.T) {
	tor := Torus{NX: 2, NY: 2, NZ: 2}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tor.Index(Coord{5, 0, 0})
}
