package topology

import (
	"fmt"
	"strings"
)

// CabinetGrid is the machine-room view of the torus: Titan's 200
// cabinets stand in 8 rows of 25 columns. Column c maps to torus X=c;
// each row spans two Y coordinates (16 Y positions / 8 rows); the Z
// dimension runs within a cabinet (cages and blades).
type CabinetGrid struct {
	Cols, Rows int
}

// TitanCabinets returns Titan's 25x8 cabinet grid.
func TitanCabinets() CabinetGrid { return CabinetGrid{Cols: 25, Rows: 8} }

// Cabinets returns the number of cabinets.
func (g CabinetGrid) Cabinets() int { return g.Cols * g.Rows }

// TorusXY returns the torus X and the first of the two torus Y
// coordinates covered by the cabinet at (col, row).
func (g CabinetGrid) TorusXY(col, row int) (x, y int) { return col, row * 2 }

// IOModule is a blade of four I/O (LNET router) nodes. The four routers
// of a module connect to four different InfiniBand leaf switches of the
// module's router group, so a single switch failure degrades rather than
// severs the module.
type IOModule struct {
	Cabinet   int   // col*Rows + row
	Col, Row  int   // cabinet grid position
	Coord     Coord // torus position of the module's Gemini
	Group     int   // router group (~ SSU index block)
	RouterIDs [4]int
}

// Placement is a complete router placement over the machine.
type Placement struct {
	Grid    CabinetGrid
	Torus   Torus
	Groups  int // number of router groups
	Modules []IOModule
}

// SwitchesPerGroup is how many InfiniBand leaf switches serve one router
// group; each module's four routers fan out across all four.
const SwitchesPerGroup = 4

// PlaceRouters computes a topology-aware router placement: nModules I/O
// modules spread across the cabinet grid in a regular lattice, assigned
// to nGroups router groups by contiguous column bands so that every
// group's routers are physically clustered (the paper's "zones"). Router
// IDs are dense in [0, 4*nModules).
//
// This mirrors the published Spider II configuration when called with
// nModules=110, nGroups=9 (440 routers, 36 leaf switches).
func PlaceRouters(grid CabinetGrid, torus Torus, nModules, nGroups int) Placement {
	if nModules <= 0 || nGroups <= 0 {
		panic("topology: need positive module and group counts") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	p := Placement{Grid: grid, Torus: torus, Groups: nGroups}
	total := grid.Cabinets()
	rid := 0
	for i := 0; i < nModules; i++ {
		// Spread modules across cabinets with a maximal-separation stride.
		cab := (i * total) / nModules
		col := cab % grid.Cols
		row := (cab / grid.Cols) % grid.Rows
		x, y := grid.TorusXY(col, row)
		// Alternate Z within cabinets so modules spread along Z too.
		z := (i * torus.NZ / nModules) % torus.NZ
		m := IOModule{
			Cabinet: col*grid.Rows + row,
			Col:     col, Row: row,
			Coord: Coord{X: x, Y: y, Z: z},
			Group: groupForColumn(col, grid.Cols, nGroups),
		}
		for k := 0; k < 4; k++ {
			m.RouterIDs[k] = rid
			rid++
		}
		p.Modules = append(p.Modules, m)
	}
	return p
}

// groupForColumn bands the columns into nGroups contiguous zones.
func groupForColumn(col, cols, nGroups int) int {
	g := col * nGroups / cols
	if g >= nGroups {
		g = nGroups - 1
	}
	return g
}

// GroupOf returns the router group of a client coordinate: the zone
// band its X position falls into. FGR clients prefer routers of their
// own zone.
func (p Placement) GroupOf(c Coord) int {
	return groupForColumn(c.X, p.Grid.Cols, p.Groups)
}

// ModulesInGroup returns the modules belonging to group g.
func (p Placement) ModulesInGroup(g int) []IOModule {
	var out []IOModule
	for _, m := range p.Modules {
		if m.Group == g {
			out = append(out, m)
		}
	}
	return out
}

// NearestModule returns the module (in the given slice, or all modules if
// nil) with minimal torus distance from c, and that distance.
func (p Placement) NearestModule(c Coord, among []IOModule) (IOModule, int) {
	if among == nil {
		among = p.Modules
	}
	if len(among) == 0 {
		panic("topology: no modules to choose from") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	best := among[0]
	bestD := p.Torus.Distance(c, best.Coord)
	for _, m := range among[1:] {
		if d := p.Torus.Distance(c, m.Coord); d < bestD {
			best, bestD = m, d
		}
	}
	return best, bestD
}

// MeanClientRouterDistance computes the mean torus distance from every
// torus position to its nearest router module, optionally restricted to
// the client's own group (the FGR discipline) or any module (free
// choice). This is the objective OLCF optimized when placing routers.
func (p Placement) MeanClientRouterDistance(restrictToGroup bool) float64 {
	sum := 0
	n := 0
	for i := 0; i < p.Torus.Nodes(); i++ {
		c := p.Torus.CoordOf(i)
		var among []IOModule
		if restrictToGroup {
			among = p.ModulesInGroup(p.GroupOf(c))
		}
		_, d := p.NearestModule(c, among)
		sum += d
		n++
	}
	return float64(sum) / float64(n)
}

// RenderXYMap renders the Fig.2-style XY cabinet map: one cell per
// cabinet, '.' for cabinets without I/O modules and the group letter for
// cabinets containing at least one module of that group.
func (p Placement) RenderXYMap() string {
	cell := make(map[[2]int]rune)
	for _, m := range p.Modules {
		key := [2]int{m.Col, m.Row}
		cell[key] = rune('A' + m.Group%26)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Titan I/O router placement (X = column 0..%d, Y = row 0..%d)\n",
		p.Grid.Cols-1, p.Grid.Rows-1)
	for row := p.Grid.Rows - 1; row >= 0; row-- {
		fmt.Fprintf(&b, "Y%-2d ", row)
		for col := 0; col < p.Grid.Cols; col++ {
			if r, ok := cell[[2]int{col, row}]; ok {
				b.WriteRune(r)
			} else {
				b.WriteRune('.')
			}
			b.WriteRune(' ')
		}
		b.WriteRune('\n')
	}
	b.WriteString("    ")
	for col := 0; col < p.Grid.Cols; col++ {
		b.WriteRune(rune('0' + col%10))
		b.WriteRune(' ')
	}
	b.WriteRune('\n')
	fmt.Fprintf(&b, "%d modules (%d routers) in %d groups; letters mark cabinets with I/O modules\n",
		len(p.Modules), 4*len(p.Modules), p.Groups)
	return b.String()
}
