// Package topology provides the geometric substrate of the Titan/Spider
// integration: the Gemini 3D torus, the cabinet grid it is folded into,
// and the placement of Lustre I/O routers onto that grid (the subject of
// Fig. 2 and Lesson 14 in the paper).
package topology

import "fmt"

// Coord is a position in a 3D torus.
type Coord struct{ X, Y, Z int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// Torus is a 3D torus with wraparound links in every dimension.
type Torus struct{ NX, NY, NZ int }

// TitanTorus returns Titan's Gemini torus dimensions (25 x 16 x 24
// Gemini ASICs; each ASIC fronts two compute nodes).
func TitanTorus() Torus { return Torus{NX: 25, NY: 16, NZ: 24} }

// Nodes returns the number of torus positions.
func (t Torus) Nodes() int { return t.NX * t.NY * t.NZ }

// Contains reports whether c is a valid coordinate.
func (t Torus) Contains(c Coord) bool {
	return c.X >= 0 && c.X < t.NX && c.Y >= 0 && c.Y < t.NY && c.Z >= 0 && c.Z < t.NZ
}

// Index linearizes a coordinate.
func (t Torus) Index(c Coord) int {
	if !t.Contains(c) {
		panic(fmt.Sprintf("topology: coord %v outside torus %dx%dx%d", c, t.NX, t.NY, t.NZ)) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return (c.X*t.NY+c.Y)*t.NZ + c.Z
}

// CoordOf inverts Index.
func (t Torus) CoordOf(i int) Coord {
	if i < 0 || i >= t.Nodes() {
		panic("topology: index out of range") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	z := i % t.NZ
	i /= t.NZ
	y := i % t.NY
	x := i / t.NY
	return Coord{x, y, z}
}

// axisDist returns the wraparound distance and step direction (+1/-1)
// along one axis of length n.
func axisDist(a, b, n int) (dist, dir int) {
	fwd := (b - a + n) % n
	bwd := n - fwd
	if fwd == 0 {
		return 0, 0
	}
	if fwd <= bwd {
		return fwd, +1
	}
	return bwd, -1
}

// Distance returns the minimal hop count between a and b (wraparound
// Manhattan distance).
func (t Torus) Distance(a, b Coord) int {
	dx, _ := axisDist(a.X, b.X, t.NX)
	dy, _ := axisDist(a.Y, b.Y, t.NY)
	dz, _ := axisDist(a.Z, b.Z, t.NZ)
	return dx + dy + dz
}

// Path returns the dimension-ordered (X, then Y, then Z) route from a to
// b, excluding a and including b. Gemini uses dimension-ordered routing,
// so this is the deterministic path traffic actually takes.
func (t Torus) Path(a, b Coord) []Coord {
	path := make([]Coord, 0, t.Distance(a, b))
	t.Walk(a, b, func(c Coord) { path = append(path, c) })
	return path
}

// Walk visits the dimension-ordered route from a to b (excluding a,
// including b) without allocating — the form hot path construction in
// netsim uses, where a []Coord per transfer would dominate allocations.
func (t Torus) Walk(a, b Coord, visit func(Coord)) {
	cur := a
	step := func(axis byte) {
		var n, dist, dir int
		switch axis {
		case 'x':
			n = t.NX
			dist, dir = axisDist(cur.X, b.X, n)
		case 'y':
			n = t.NY
			dist, dir = axisDist(cur.Y, b.Y, n)
		case 'z':
			n = t.NZ
			dist, dir = axisDist(cur.Z, b.Z, n)
		}
		for i := 0; i < dist; i++ {
			switch axis {
			case 'x':
				cur.X = (cur.X + dir + n) % n
			case 'y':
				cur.Y = (cur.Y + dir + n) % n
			case 'z':
				cur.Z = (cur.Z + dir + n) % n
			}
			visit(cur)
		}
	}
	step('x')
	step('y')
	step('z')
}
