// Package tools implements the scalable file system utilities of §VI-C:
// LustreDU (server-side disk usage that spares the MDS the stat storm a
// standard du causes), and the parallel dcp/dfind/dtar developed with
// LLNL/LANL/DDN, each next to its single-threaded baseline so the
// scaling argument is measurable.
package tools

import (
	"fmt"
	"strings"

	"spiderfs/internal/lustre"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// TreeSpec populates a directory tree for tool studies.
type TreeSpec struct {
	Dirs        int
	FilesPerDir int
	FileSize    int64
	StripeCount int
	Root        string
}

// Populate creates the tree (charging MDS create/mkdir ops) and preloads
// file sizes without data I/O. Run the engine afterwards to complete the
// metadata operations.
func Populate(fs *lustre.FS, spec TreeSpec) {
	if spec.Root == "" {
		spec.Root = "proj"
	}
	if spec.StripeCount <= 0 {
		spec.StripeCount = 1
	}
	for d := 0; d < spec.Dirs; d++ {
		dir := fmt.Sprintf("%s/d%04d", spec.Root, d)
		fs.MkdirAll(dir, nil)
		for f := 0; f < spec.FilesPerDir; f++ {
			size := spec.FileSize
			fs.Create(fmt.Sprintf("%s/f%04d", dir, f), spec.StripeCount, func(file *lustre.File) {
				per := size / int64(len(file.Objects))
				for _, obj := range file.Objects {
					obj.Preload(per)
				}
			})
		}
	}
}

// DUResult reports a disk-usage scan.
type DUResult struct {
	Bytes    int64
	Files    int
	Duration sim.Time
	MDSOps   uint64 // metadata operations the scan itself cost
}

// SerialDU is the standard du: walk the tree and stat every file, one
// at a time, through the MDS (plus a glimpse per stripe). done receives
// the result when the scan completes.
func SerialDU(fs *lustre.FS, dir *lustre.Dir, done func(DUResult)) {
	eng := fs.Engine()
	var files []*lustre.File
	fs.Walk(dir, func(f *lustre.File) { files = append(files, f) })
	start := eng.Now()
	mdsBefore := fs.MDS.Ops()
	res := DUResult{Files: len(files)}
	var next func(i int)
	next = func(i int) {
		if i == len(files) {
			res.Duration = eng.Now() - start
			res.MDSOps = fs.MDS.Ops() - mdsBefore
			done(res)
			return
		}
		f := files[i]
		fs.Stat(f, func() {
			res.Bytes += f.Size()
			next(i + 1)
		})
	}
	next(0)
}

// LustreDU is the server-side scan: usage is aggregated from the OSTs
// directly (one query per OST through its OSS), never touching the MDS —
// the tool OLCF runs once per day to enforce usage policy.
func LustreDU(fs *lustre.FS, dir *lustre.Dir, done func(DUResult)) {
	eng := fs.Engine()
	start := eng.Now()
	mdsBefore := fs.MDS.Ops()
	res := DUResult{}
	fs.Walk(dir, func(f *lustre.File) {
		res.Files++
		res.Bytes += f.Size()
	})
	b := sim.NewBarrier(func() {
		res.Duration = eng.Now() - start
		res.MDSOps = fs.MDS.Ops() - mdsBefore
		done(res)
	})
	for i := range fs.OSTs {
		b.Add(1)
		fs.OSSes[fs.OSSOf(i)].Glimpse(b.Done)
	}
	b.Arm()
}

// FindResult reports a tree search.
type FindResult struct {
	Matches  int
	Visited  int
	Duration sim.Time
}

// SerialFind walks the tree issuing one MDS lookup per entry,
// sequentially — the standard find.
func SerialFind(fs *lustre.FS, dir *lustre.Dir, pred func(*lustre.File) bool, done func(FindResult)) {
	runFind(fs, dir, pred, 1, done)
}

// DFind is the parallel find: workers consume the entry list
// concurrently, overlapping MDS latency.
func DFind(fs *lustre.FS, dir *lustre.Dir, pred func(*lustre.File) bool, workers int, done func(FindResult)) {
	if workers < 1 {
		workers = 1
	}
	runFind(fs, dir, pred, workers, done)
}

func runFind(fs *lustre.FS, dir *lustre.Dir, pred func(*lustre.File) bool, workers int, done func(FindResult)) {
	eng := fs.Engine()
	var files []*lustre.File
	fs.Walk(dir, func(f *lustre.File) { files = append(files, f) })
	start := eng.Now()
	res := FindResult{Visited: len(files)}
	next := 0
	b := sim.NewBarrier(func() {
		res.Duration = eng.Now() - start
		done(res)
	})
	var worker func()
	worker = func() {
		if next >= len(files) {
			b.Done()
			return
		}
		f := files[next]
		next++
		fs.Open(f.Path, func(got *lustre.File) {
			if got != nil && pred(got) {
				res.Matches++
			}
			worker()
		})
	}
	for i := 0; i < workers; i++ {
		b.Add(1)
		worker()
	}
	b.Arm()
}

// CopyResult reports a copy job.
type CopyResult struct {
	Files    int
	Bytes    int64
	Duration sim.Time
}

// SerialCopy copies files one at a time (read source, write
// destination) — the standard cp -r.
func SerialCopy(fs *lustre.FS, files []*lustre.File, destPrefix string, done func(CopyResult)) {
	runCopy(fs, files, destPrefix, 1, done)
}

// DCP is the parallel copy: workers move files concurrently.
func DCP(fs *lustre.FS, files []*lustre.File, destPrefix string, workers int, done func(CopyResult)) {
	if workers < 1 {
		workers = 1
	}
	runCopy(fs, files, destPrefix, workers, done)
}

func runCopy(fs *lustre.FS, files []*lustre.File, destPrefix string, workers int, done func(CopyResult)) {
	eng := fs.Engine()
	client := lustre.NewClient(-1, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	start := eng.Now()
	res := CopyResult{}
	next := 0
	b := sim.NewBarrier(func() {
		res.Duration = eng.Now() - start
		done(res)
	})
	var worker func()
	worker = func() {
		if next >= len(files) {
			b.Done()
			return
		}
		src := files[next]
		next++
		size := src.Size()
		destPath := destPrefix + "/" + sanitize(src.Path)
		fs.Create(destPath, src.StripeCount(), func(dst *lustre.File) {
			if size == 0 {
				res.Files++
				worker()
				return
			}
			client.ReadStream(src, size, 1<<20, false, func(int64) {
				client.WriteStream(dst, size, 1<<20, func(int64) {
					res.Files++
					res.Bytes += size
					worker()
				})
			})
		})
	}
	for i := 0; i < workers; i++ {
		b.Add(1)
		worker()
	}
	b.Arm()
}

func sanitize(p string) string { return strings.ReplaceAll(p, "/", "_") }

// TarResult reports an archive job.
type TarResult struct {
	Files    int
	Bytes    int64
	Duration sim.Time
}

// SerialTar reads each file and appends it to one archive stream,
// sequentially — the standard tar.
func SerialTar(fs *lustre.FS, files []*lustre.File, archivePath string, done func(TarResult)) {
	runTar(fs, files, archivePath, 1, done)
}

// DTar overlaps file reads with archive writing using parallel readers;
// the archive itself remains a single append stream.
func DTar(fs *lustre.FS, files []*lustre.File, archivePath string, readers int, done func(TarResult)) {
	if readers < 1 {
		readers = 1
	}
	runTar(fs, files, archivePath, readers, done)
}

func runTar(fs *lustre.FS, files []*lustre.File, archivePath string, readers int, done func(TarResult)) {
	eng := fs.Engine()
	client := lustre.NewClient(-2, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
	res := TarResult{}
	fs.Create(archivePath, 4, func(archive *lustre.File) {
		start := eng.Now()
		next := 0
		b := sim.NewBarrier(func() {
			res.Duration = eng.Now() - start
			done(res)
		})
		var worker func()
		worker = func() {
			if next >= len(files) {
				b.Done()
				return
			}
			src := files[next]
			next++
			size := src.Size()
			if size == 0 {
				res.Files++
				worker()
				return
			}
			client.ReadStream(src, size, 1<<20, false, func(int64) {
				client.WriteStream(archive, size, 1<<20, func(int64) {
					res.Files++
					res.Bytes += size
					worker()
				})
			})
		}
		for i := 0; i < readers; i++ {
			b.Add(1)
			worker()
		}
		b.Arm()
	})
}
