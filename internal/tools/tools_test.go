package tools

import (
	"strings"
	"testing"

	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func populated(t *testing.T, seed uint64, dirs, filesPerDir int) (*sim.Engine, *lustre.FS) {
	t.Helper()
	eng := sim.NewEngine()
	fs := lustre.Build(eng, lustre.TestNamespace(), rng.New(seed))
	Populate(fs, TreeSpec{Dirs: dirs, FilesPerDir: filesPerDir, FileSize: 4 << 20, StripeCount: 2})
	eng.Run()
	return eng, fs
}

func TestPopulateShape(t *testing.T) {
	_, fs := populated(t, 1, 5, 10)
	if fs.NumFiles != 50 {
		t.Fatalf("files = %d", fs.NumFiles)
	}
	count := 0
	var bytes int64
	fs.Walk(nil, func(f *lustre.File) { count++; bytes += f.Size() })
	if count != 50 {
		t.Fatalf("walk found %d", count)
	}
	if bytes != 50*4<<20 {
		t.Fatalf("bytes = %d", bytes)
	}
}

func TestSerialDUvsLustreDU(t *testing.T) {
	eng, fs := populated(t, 2, 10, 20)
	var serial, server DUResult
	SerialDU(fs, nil, func(r DUResult) { serial = r })
	eng.Run()
	LustreDU(fs, nil, func(r DUResult) { server = r })
	eng.Run()

	if serial.Bytes != server.Bytes || serial.Files != server.Files {
		t.Fatalf("results disagree: serial=%+v server=%+v", serial, server)
	}
	if serial.Bytes != 200*4<<20 {
		t.Fatalf("bytes = %d", serial.Bytes)
	}
	// The whole point: du hammers the MDS (one stat per file), LustreDU
	// does not touch it.
	if serial.MDSOps < 200 {
		t.Fatalf("serial du issued only %d MDS ops", serial.MDSOps)
	}
	if server.MDSOps != 0 {
		t.Fatalf("LustreDU issued %d MDS ops, want 0", server.MDSOps)
	}
	if server.Duration >= serial.Duration {
		t.Fatalf("LustreDU (%v) not faster than du (%v)", server.Duration, serial.Duration)
	}
	if float64(serial.Duration)/float64(server.Duration) < 5 {
		t.Fatalf("speedup only %.1fx", float64(serial.Duration)/float64(server.Duration))
	}
}

func TestDFindSpeedupAndSameAnswer(t *testing.T) {
	eng, fs := populated(t, 3, 10, 20)
	pred := func(f *lustre.File) bool { return strings.HasSuffix(f.Path, "3") }
	var serial, parallel FindResult
	SerialFind(fs, nil, pred, func(r FindResult) { serial = r })
	eng.Run()
	DFind(fs, nil, pred, 8, func(r FindResult) { parallel = r })
	eng.Run()
	if serial.Matches != parallel.Matches || serial.Visited != parallel.Visited {
		t.Fatalf("answers differ: %+v vs %+v", serial, parallel)
	}
	if serial.Matches == 0 {
		t.Fatal("predicate matched nothing; test is vacuous")
	}
	speedup := float64(serial.Duration) / float64(parallel.Duration)
	if speedup < 3 {
		t.Fatalf("dfind speedup = %.1fx with 8 workers", speedup)
	}
}

func TestDCPSpeedupAndIntegrity(t *testing.T) {
	eng, fs := populated(t, 4, 4, 8)
	var files []*lustre.File
	fs.Walk(nil, func(f *lustre.File) { files = append(files, f) })

	var serial CopyResult
	SerialCopy(fs, files, "copy-serial", func(r CopyResult) { serial = r })
	eng.Run()
	var parallel CopyResult
	DCP(fs, files, "copy-dcp", 8, func(r CopyResult) { parallel = r })
	eng.Run()

	if serial.Files != 32 || parallel.Files != 32 {
		t.Fatalf("file counts: %d / %d", serial.Files, parallel.Files)
	}
	if serial.Bytes != parallel.Bytes {
		t.Fatalf("bytes differ: %d vs %d", serial.Bytes, parallel.Bytes)
	}
	speedup := float64(serial.Duration) / float64(parallel.Duration)
	if speedup < 2 {
		t.Fatalf("dcp speedup = %.1fx with 8 workers", speedup)
	}
}

func TestDTarSpeedup(t *testing.T) {
	eng, fs := populated(t, 5, 4, 8)
	var files []*lustre.File
	fs.Walk(nil, func(f *lustre.File) { files = append(files, f) })

	var serial TarResult
	SerialTar(fs, files, "arch/serial.tar", func(r TarResult) { serial = r })
	eng.Run()
	var parallel TarResult
	DTar(fs, files, "arch/dtar.tar", 8, func(r TarResult) { parallel = r })
	eng.Run()

	if serial.Files != parallel.Files || serial.Bytes != parallel.Bytes {
		t.Fatalf("results differ: %+v vs %+v", serial, parallel)
	}
	if parallel.Duration >= serial.Duration {
		t.Fatalf("dtar (%v) not faster than tar (%v)", parallel.Duration, serial.Duration)
	}
}

func TestCopyEmptyList(t *testing.T) {
	eng, fs := populated(t, 6, 1, 1)
	ran := false
	SerialCopy(fs, nil, "dst", func(r CopyResult) { ran = r.Files == 0 })
	eng.Run()
	if !ran {
		t.Fatal("empty copy never completed")
	}
}
