package stats

import (
	"math"
	"testing"
	"testing/quick"

	"spiderfs/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasic(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N != 8 || !almost(s.Mean, 5, 1e-12) {
		t.Fatalf("N=%d mean=%f", s.N, s.Mean)
	}
	if !almost(s.Variance(), 32.0/7.0, 1e-9) {
		t.Fatalf("variance=%f", s.Variance())
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min=%f max=%f", s.Min, s.Max)
	}
	if !almost(s.CoV(), s.Stddev()/5, 1e-12) {
		t.Fatalf("cov=%f", s.CoV())
	}
}

func TestSummaryMergeEqualsSequential(t *testing.T) {
	f := func(seed uint64, split uint8) bool {
		r := rng.New(seed)
		n := 200
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Normal(3, 2)
		}
		k := int(split) % n
		var whole, a, b Summary
		for _, v := range vals {
			whole.Add(v)
		}
		for _, v := range vals[:k] {
			a.Add(v)
		}
		for _, v := range vals[k:] {
			b.Add(v)
		}
		a.Merge(b)
		return a.N == whole.N &&
			almost(a.Mean, whole.Mean, 1e-9) &&
			almost(a.Variance(), whole.Variance(), 1e-6) &&
			a.Min == whole.Min && a.Max == whole.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(v, 0); got != 1 {
		t.Fatalf("p0 = %f", got)
	}
	if got := Percentile(v, 1); got != 10 {
		t.Fatalf("p100 = %f", got)
	}
	if got := Percentile(v, 0.5); !almost(got, 5.5, 1e-12) {
		t.Fatalf("p50 = %f", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestQuantilesMatchPercentile(t *testing.T) {
	v := []float64{9, 1, 7, 3, 5}
	qs := Quantiles(v, 0.25, 0.5, 0.75)
	for i, p := range []float64{0.25, 0.5, 0.75} {
		if !almost(qs[i], Percentile(v, p), 1e-12) {
			t.Fatalf("quantile %f mismatch", p)
		}
	}
}

func TestAutocorrelationPeriodic(t *testing.T) {
	series := make([]float64, 400)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / 50)
	}
	if c := Autocorrelation(series, 50); c < 0.8 {
		t.Fatalf("lag-50 autocorrelation of period-50 signal = %f", c)
	}
	if c := Autocorrelation(series, 25); c > -0.5 {
		t.Fatalf("lag-25 (half period) autocorrelation = %f, want strongly negative", c)
	}
	lag, corr := DominantPeriod(series, 10, 100)
	if lag != 50 || corr < 0.8 {
		t.Fatalf("dominant period = %d (corr %f), want 50", lag, corr)
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	if Autocorrelation([]float64{1, 2}, 5) != 0 {
		t.Fatal("lag beyond series should be 0")
	}
	if Autocorrelation([]float64{3, 3, 3, 3}, 1) != 0 {
		t.Fatal("zero-variance series should be 0")
	}
}

func TestFitParetoRecoversAlpha(t *testing.T) {
	r := rng.New(99)
	const alpha, xm = 1.6, 0.001
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = r.Pareto(alpha, xm)
	}
	fit := FitPareto(samples, xm)
	if !almost(fit.Alpha, alpha, 0.05) {
		t.Fatalf("fit alpha = %f, want ~%f", fit.Alpha, alpha)
	}
	if fit.N != len(samples) {
		t.Fatalf("fit used %d samples", fit.N)
	}
}

func TestFitParetoAutoXm(t *testing.T) {
	fit := FitPareto([]float64{1, 2, 4, 8}, 0)
	if fit.Xm != 1 {
		t.Fatalf("auto xm = %f, want sample min 1", fit.Xm)
	}
	if fit.Alpha <= 0 {
		t.Fatalf("alpha = %f", fit.Alpha)
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if !almost(slope, 2, 1e-9) || !almost(intercept, 1, 1e-9) {
		t.Fatalf("fit = %f, %f", slope, intercept)
	}
	if s, i := LinearFit(x[:1], y[:1]); s != 0 || i != 0 {
		t.Fatal("degenerate fit should be zeros")
	}
}

func TestCCDF(t *testing.T) {
	values := []float64{1, 2, 3, 4}
	out := CCDF(values, []float64{0, 2, 4})
	want := []float64{1, 0.5, 0}
	for i := range want {
		if !almost(out[i], want[i], 1e-12) {
			t.Fatalf("CCDF = %v, want %v", out, want)
		}
	}
}

func TestLinearHistogram(t *testing.T) {
	h := NewLinearHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(10)
	for i := 0; i < 10; i++ {
		if h.Count(i) != 1 {
			t.Fatalf("bucket %d count = %d", i, h.Count(i))
		}
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Fatalf("under=%d over=%d", h.Underflow(), h.Overflow())
	}
	if h.Total() != 12 {
		t.Fatalf("total=%d", h.Total())
	}
}

func TestLogHistogramBucketsGrow(t *testing.T) {
	h := NewLogHistogram(1, 1<<20, 20)
	prevWidth := 0.0
	for i := 0; i < h.Buckets(); i++ {
		lo, hi := h.BucketBounds(i)
		if hi-lo <= prevWidth {
			t.Fatalf("log buckets not growing at %d", i)
		}
		prevWidth = hi - lo
	}
	h.Add(4096)
	found := false
	for i := 0; i < h.Buckets(); i++ {
		lo, hi := h.BucketBounds(i)
		if 4096 >= lo && 4096 < hi && h.Count(i) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("4096 not placed in correct bucket")
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewLinearHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if f := h.FractionBelow(50); !almost(f, 0.5, 0.02) {
		t.Fatalf("FractionBelow(50) = %f", f)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewLinearHistogram(0, 10, 5)
	b := NewLinearHistogram(0, 10, 5)
	a.Add(1)
	b.Add(1)
	b.Add(9)
	a.Merge(b)
	if a.Total() != 3 {
		t.Fatalf("merged total = %d", a.Total())
	}
	if a.Count(0) != 2 {
		t.Fatalf("bucket0 = %d", a.Count(0))
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLinearHistogram(0, 10, 5).Merge(NewLinearHistogram(0, 10, 6))
}

// Property: histogram total equals adds, and every in-range value lands
// in the bucket whose bounds contain it.
func TestHistogramPlacementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := NewLogHistogram(1, 1e6, 30)
		for i := 0; i < 500; i++ {
			h.Add(r.BoundedPareto(1.1, 1, 1e6-1))
		}
		var sum uint64
		for i := 0; i < h.Buckets(); i++ {
			sum += h.Count(i)
		}
		return sum+h.Underflow()+h.Overflow() == h.Total() && h.Total() == 500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileBins(t *testing.T) {
	values := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	bins := QuantileBins(values, 5)
	if len(bins.Members) != 5 {
		t.Fatalf("bins = %d", len(bins.Members))
	}
	// Slowest bin should contain the indices of the two smallest values.
	slow := bins.Members[0]
	if len(slow) != 2 || values[slow[0]] != 10 || values[slow[1]] != 20 {
		t.Fatalf("slowest bin = %v", slow)
	}
	fast := bins.Members[4]
	if values[fast[1]] != 100 {
		t.Fatalf("fastest bin = %v", fast)
	}
	total := 0
	for _, m := range bins.Members {
		total += len(m)
	}
	if total != len(values) {
		t.Fatalf("bins cover %d of %d", total, len(values))
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewLinearHistogram(0, 10, 2)
	h.Add(1)
	h.Add(6)
	h.Add(-1)
	out := h.Render(20)
	if out == "" || len(out) < 10 {
		t.Fatalf("render too short: %q", out)
	}
}
