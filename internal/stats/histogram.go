package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bucket histogram. Buckets may be linear or
// logarithmic; values below the first edge land in an underflow bucket
// and values at or above the last edge land in an overflow bucket.
type Histogram struct {
	edges     []float64 // len B+1 ascending
	counts    []uint64  // len B
	underflow uint64
	overflow  uint64
	total     uint64
}

// NewLinearHistogram covers [lo, hi) with n equal-width buckets.
func NewLinearHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo {
		panic("stats: invalid linear histogram parameters") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	edges := make([]float64, n+1)
	w := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + w*float64(i)
	}
	edges[n] = hi
	return &Histogram{edges: edges, counts: make([]uint64, n)}
}

// NewLogHistogram covers [lo, hi) with n buckets whose widths grow
// geometrically. lo must be positive. I/O size and latency distributions
// are long-tailed, so log bucketing is the default in this repo.
func NewLogHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || lo <= 0 || hi <= lo {
		panic("stats: invalid log histogram parameters") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	edges := make([]float64, n+1)
	ratio := math.Pow(hi/lo, 1/float64(n))
	edges[0] = lo
	for i := 1; i <= n; i++ {
		edges[i] = edges[i-1] * ratio
	}
	edges[n] = hi
	return &Histogram{edges: edges, counts: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.edges[0] {
		h.underflow++
		return
	}
	if x >= h.edges[len(h.edges)-1] {
		h.overflow++
		return
	}
	// binary search for the bucket
	lo, hi := 0, len(h.counts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if h.edges[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	h.counts[lo]++
}

// Total returns the number of observations including under/overflow.
func (h *Histogram) Total() uint64 { return h.total }

// Buckets returns the number of (non-overflow) buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Count returns the count in bucket i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// BucketBounds returns the [lo, hi) edges of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	return h.edges[i], h.edges[i+1]
}

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() uint64 { return h.underflow }
func (h *Histogram) Overflow() uint64  { return h.overflow }

// FractionBelow returns the fraction of observations strictly below x,
// linearly interpolating within the containing bucket.
func (h *Histogram) FractionBelow(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	cum := h.underflow
	for i := range h.counts {
		lo, hi := h.edges[i], h.edges[i+1]
		if x < lo {
			break
		}
		if x >= hi {
			cum += h.counts[i]
			continue
		}
		frac := (x - lo) / (hi - lo)
		cum += uint64(frac * float64(h.counts[i]))
		break
	}
	return float64(cum) / float64(h.total)
}

// Merge adds the counts of o (which must have identical bucketing).
func (h *Histogram) Merge(o *Histogram) {
	if len(h.edges) != len(o.edges) {
		panic("stats: merging histograms with different bucketing") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	for i, e := range h.edges {
		if e != o.edges[i] {
			panic("stats: merging histograms with different bucketing") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
		}
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.underflow += o.underflow
	h.overflow += o.overflow
	h.total += o.total
}

// Render returns a multi-line ASCII rendering with proportional bars,
// used by the CLI tools to print distribution tables.
func (h *Histogram) Render(width int) string {
	if width < 10 {
		width = 10
	}
	var max uint64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		lo, hi := h.BucketBounds(i)
		bar := 0
		if max > 0 {
			bar = int(float64(c) / float64(max) * float64(width))
		}
		fmt.Fprintf(&b, "[%12.4g, %12.4g) %10d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	if h.underflow > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.overflow)
	}
	return b.String()
}

// Bins divides a set of labeled measurements into q quantile bins and is
// used for the paper's "performance bins" slow-disk analysis (§V-A):
// RAID groups are binned by measured bandwidth and the lowest bin is
// inspected for slow disks.
type Bins struct {
	// Members[i] lists the indices of members of bin i, ascending bins by
	// value (bin 0 = slowest).
	Members [][]int
	// Edges[i] is the upper value bound of bin i.
	Edges []float64
}

// QuantileBins assigns each value's index to one of q equal-population
// bins ordered by value.
func QuantileBins(values []float64, q int) Bins {
	if q < 1 {
		q = 1
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sortIdx(idx, values)
	bins := Bins{Members: make([][]int, q), Edges: make([]float64, q)}
	for b := 0; b < q; b++ {
		lo := b * len(values) / q
		hi := (b + 1) * len(values) / q
		bins.Members[b] = append([]int(nil), idx[lo:hi]...)
		if hi > lo {
			bins.Edges[b] = values[idx[hi-1]]
		} else if b > 0 {
			bins.Edges[b] = bins.Edges[b-1]
		}
	}
	return bins
}

func sortIdx(idx []int, values []float64) {
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] < values[idx[j]] })
}
