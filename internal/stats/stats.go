// Package stats provides the statistical primitives used by the Spider
// workload characterization, performance QA, and experiment reporting:
// streaming moments, histograms, percentiles, autocorrelation, Pareto
// tail fitting, and performance binning.
package stats

import (
	"math"
	"sort"
)

// Summary accumulates streaming count/mean/variance/min/max using
// Welford's algorithm. The zero value is ready to use.
type Summary struct {
	N        uint64
	Mean     float64
	m2       float64
	Min, Max float64
	Sum      float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.N++
	s.Sum += x
	if s.N == 1 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	delta := x - s.Mean
	s.Mean += delta / float64(s.N)
	s.m2 += delta * (x - s.Mean)
}

// Variance returns the sample (n-1) variance, or 0 for fewer than two
// observations.
func (s *Summary) Variance() float64 {
	if s.N < 2 {
		return 0
	}
	return s.m2 / float64(s.N-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// CoV returns the coefficient of variation (stddev/mean), or 0 when the
// mean is zero.
func (s *Summary) CoV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev() / math.Abs(s.Mean)
}

// Merge combines another summary into s (parallel Welford merge).
func (s *Summary) Merge(o Summary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	n := s.N + o.N
	delta := o.Mean - s.Mean
	mean := s.Mean + delta*float64(o.N)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.N)*float64(o.N)/float64(n)
	s.N, s.Mean, s.m2 = n, mean, m2
	s.Sum += o.Sum
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Percentile returns the p-quantile (0 <= p <= 1) of values using linear
// interpolation between order statistics. It sorts a copy; for repeated
// queries over the same data use Quantiles. Returns NaN on empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	return quantileSorted(v, p)
}

// Quantiles returns the quantiles at each p (each in [0,1]) with a single
// sort of the input copy.
func Quantiles(values []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(values) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	for i, p := range ps {
		out[i] = quantileSorted(v, p)
	}
	return out
}

func quantileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Autocorrelation returns the lag-k sample autocorrelation of the series,
// or 0 when it is undefined (short series or zero variance). The paper's
// IOSI tool uses autocorrelation to find periodic I/O bursts.
func Autocorrelation(series []float64, lag int) float64 {
	n := len(series)
	if lag <= 0 || lag >= n {
		return 0
	}
	mean := 0.0
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := series[i] - mean
		den += d * d
		if i+lag < n {
			num += d * (series[i+lag] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// DominantPeriod scans lags in [minLag, maxLag] and returns the lag with
// the highest autocorrelation plus that correlation value. Returns (0, 0)
// when no lag is admissible.
func DominantPeriod(series []float64, minLag, maxLag int) (lag int, corr float64) {
	if minLag < 1 {
		minLag = 1
	}
	if maxLag >= len(series) {
		maxLag = len(series) - 1
	}
	best, bestCorr := 0, math.Inf(-1)
	for l := minLag; l <= maxLag; l++ {
		c := Autocorrelation(series, l)
		if c > bestCorr {
			best, bestCorr = l, c
		}
	}
	if best == 0 {
		return 0, 0
	}
	return best, bestCorr
}

// ParetoFit holds maximum-likelihood Pareto tail parameters.
type ParetoFit struct {
	Alpha float64 // tail index
	Xm    float64 // scale (minimum)
	N     int     // samples used
}

// FitPareto fits a Pareto distribution by MLE to the samples at or above
// xm. If xm <= 0 the sample minimum is used. Samples below xm are
// discarded. Returns a zero fit when fewer than 2 samples qualify.
func FitPareto(samples []float64, xm float64) ParetoFit {
	if xm <= 0 {
		// Auto-scale: the smallest strictly positive sample. Zero
		// samples (e.g. simultaneous arrivals) are not usable as a
		// Pareto scale and are excluded from the fit below anyway.
		for _, v := range samples {
			if v > 0 && (xm <= 0 || v < xm) {
				xm = v
			}
		}
	}
	if xm <= 0 {
		return ParetoFit{}
	}
	var sum float64
	n := 0
	for _, v := range samples {
		if v >= xm && v > 0 {
			sum += math.Log(v / xm)
			n++
		}
	}
	if n < 2 || sum <= 0 {
		return ParetoFit{Xm: xm, N: n}
	}
	return ParetoFit{Alpha: float64(n) / sum, Xm: xm, N: n}
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It returns zeros when the fit is undefined.
func LinearFit(x, y []float64) (slope, intercept float64) {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope = (float64(n)*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / float64(n)
	return slope, intercept
}

// CCDF returns the empirical complementary CDF of values evaluated at
// each point in xs: the fraction of values strictly greater than x.
func CCDF(values, xs []float64) []float64 {
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	out := make([]float64, len(xs))
	for i, x := range xs {
		idx := sort.SearchFloat64s(v, math.Nextafter(x, math.Inf(1)))
		out[i] = float64(len(v)-idx) / float64(len(v))
	}
	return out
}
