package stats

import "math"

// tCrit95 holds two-sided 95% Student-t critical values t_{0.975,df}
// for df = 1..30; beyond the table the anchors below interpolate toward
// the normal limit. Replica counts in sweeps are small (tens), so the
// exact small-df values matter: a normal approximation at df=4 would
// understate the half-width by almost 30%.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit95Anchors extends the table with the usual large-df anchors.
var tCrit95Anchors = []struct {
	df int
	t  float64
}{{30, 2.042}, {40, 2.021}, {60, 2.000}, {120, 1.980}}

const tCrit95Normal = 1.960 // df -> infinity

// TCritical95 returns the two-sided 95% Student-t critical value for
// the given degrees of freedom, interpolating linearly in 1/df between
// the standard anchors above df=30. It returns NaN for df < 1.
func TCritical95(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	for i := 0; i+1 < len(tCrit95Anchors); i++ {
		lo, hi := tCrit95Anchors[i], tCrit95Anchors[i+1]
		if df <= hi.df {
			// Interpolate in 1/df, the variable the t quantile is
			// nearly linear in across this range.
			f := (1/float64(lo.df) - 1/float64(df)) / (1/float64(lo.df) - 1/float64(hi.df))
			return lo.t + f*(hi.t-lo.t)
		}
	}
	last := tCrit95Anchors[len(tCrit95Anchors)-1]
	// Between the last anchor and the normal limit, again in 1/df.
	f := (1/float64(last.df) - 1/float64(df)) / (1 / float64(last.df))
	return last.t + f*(tCrit95Normal-last.t)
}

// CI95Half returns the half-width of the 95% confidence interval for
// the mean accumulated in s: t_{0.975,N-1} * stddev / sqrt(N). It is 0
// for fewer than two observations (no spread information).
func (s *Summary) CI95Half() float64 {
	if s.N < 2 {
		return 0
	}
	return TCritical95(int(s.N)-1) * s.Stddev() / math.Sqrt(float64(s.N))
}

// MeanCI95 returns the sample mean of values and the half-width of its
// 95% confidence interval. The half-width is 0 for fewer than two
// values.
func MeanCI95(values []float64) (mean, half float64) {
	var s Summary
	for _, v := range values {
		s.Add(v)
	}
	return s.Mean, s.CI95Half()
}
