package stats

import (
	"math"
	"testing"
)

func TestTCritical95Table(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {5, 2.571}, {10, 2.228}, {30, 2.042},
		{40, 2.021}, {60, 2.000}, {120, 1.980},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// Interpolated values sit between their anchors and decrease
	// monotonically toward the normal limit.
	prev := TCritical95(30)
	for _, df := range []int{35, 50, 90, 200, 1000, 100000} {
		got := TCritical95(df)
		if got >= prev || got < tCrit95Normal {
			t.Errorf("TCritical95(%d) = %v, want in (%v, %v)", df, got, tCrit95Normal, prev)
		}
		prev = got
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Error("TCritical95(0) should be NaN")
	}
}

func TestMeanCI95(t *testing.T) {
	// n=5, mean 30, sample stddev sqrt(250)=15.811...:
	// half = 2.776 * 15.8114 / sqrt(5) = 19.6304...
	vals := []float64{10, 20, 30, 40, 50}
	mean, half := MeanCI95(vals)
	if mean != 30 {
		t.Errorf("mean = %v, want 30", mean)
	}
	want := 2.776 * math.Sqrt(250) / math.Sqrt(5)
	if math.Abs(half-want) > 1e-9 {
		t.Errorf("half = %v, want %v", half, want)
	}

	// Degenerate inputs: no spread info -> zero half-width.
	if _, h := MeanCI95(nil); h != 0 {
		t.Errorf("half of empty = %v, want 0", h)
	}
	if _, h := MeanCI95([]float64{7}); h != 0 {
		t.Errorf("half of singleton = %v, want 0", h)
	}

	// Identical values -> zero half-width, exact mean.
	m, h := MeanCI95([]float64{3, 3, 3, 3})
	if m != 3 || h != 0 {
		t.Errorf("constant series: mean %v half %v, want 3, 0", m, h)
	}
}

func TestSummaryCI95HalfMatchesMeanCI95(t *testing.T) {
	vals := []float64{1.5, 2.25, -4, 8, 0.5, 3, 3, 9.75}
	var s Summary
	for _, v := range vals {
		s.Add(v)
	}
	_, want := MeanCI95(vals)
	if got := s.CI95Half(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Summary.CI95Half = %v, want %v", got, want)
	}
}
