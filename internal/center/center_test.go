package center

import (
	"testing"

	"spiderfs/internal/lustre"
	"spiderfs/internal/netsim"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/workload"
)

func TestNewSmallCenter(t *testing.T) {
	c := New(Config{Small: true, Namespaces: 2, UseFabric: true, Seed: 1})
	if len(c.Namespaces) != 2 {
		t.Fatalf("namespaces = %d", len(c.Namespaces))
	}
	if c.Fabric == nil {
		t.Fatal("fabric missing")
	}
	if c.ossBase[1] != len(c.Namespaces[0].OSSes) {
		t.Fatalf("oss base = %v", c.ossBase)
	}
}

func TestCenterIORThroughFabric(t *testing.T) {
	c := New(Config{Small: true, Namespaces: 1, UseFabric: true, RouteMode: netsim.RouteFGR, Seed: 2})
	res := c.RunIOR(0, workload.IORConfig{
		Clients:      8,
		TransferSize: 1 << 20,
		StoneWall:    500 * sim.Millisecond,
	})
	if res.BytesMoved <= 0 {
		t.Fatal("no data moved through fabric")
	}
	rep := c.Fabric.Congestion(c.Eng.Now())
	if rep.MaxUtilization <= 0 {
		t.Fatal("fabric shows no utilization")
	}
}

func TestFGRReducesCongestionAtCenterScale(t *testing.T) {
	// When storage is the binding constraint both disciplines deliver
	// the same aggregate; FGR's value (Lesson 14) is eliminating core
	// crossings and network hot spots — assert those directly, with
	// throughput no worse.
	run := func(mode netsim.RouteMode) (float64, netsim.CongestionReport) {
		c := New(Config{Small: true, Namespaces: 1, UseFabric: true, RouteMode: mode, Seed: 3})
		res := c.RunIOR(0, workload.IORConfig{
			Clients:      16,
			TransferSize: 1 << 20,
			StoneWall:    500 * sim.Millisecond,
		})
		return res.AggregateBps, c.Fabric.Congestion(c.Eng.Now())
	}
	fgr, fgrRep := run(netsim.RouteFGR)
	naive, naiveRep := run(netsim.RouteNaive)
	if fgrRep.CoreBytes != 0 {
		t.Fatalf("FGR pushed %.2e bytes through the core", fgrRep.CoreBytes)
	}
	if naiveRep.CoreBytes == 0 {
		t.Fatal("naive routing should cross the core")
	}
	if fgrRep.MeanGeminiUtil > naiveRep.MeanGeminiUtil {
		t.Fatalf("FGR gemini util %.4f should not exceed naive %.4f",
			fgrRep.MeanGeminiUtil, naiveRep.MeanGeminiUtil)
	}
	if fgr < 0.95*naive {
		t.Fatalf("FGR throughput (%.0f) fell below naive (%.0f)", fgr, naive)
	}
}

func TestDataCentricWorkflowBeatsExclusive(t *testing.T) {
	// Same storage hardware: one shared namespace vs two exclusive ones
	// with a 10 GB/s DTN between them.
	mkFS := func(seed uint64) *lustre.FS {
		eng := sim.NewEngine()
		return lustre.Build(eng, lustre.TestNamespace(), rng.New(seed))
	}
	shared := mkFS(4)
	dc := DataCentricWorkflow(shared, 256<<20, 4, 4)

	eng := sim.NewEngine()
	simFS := lustre.Build(eng, lustre.TestNamespace(), rng.New(5))
	p := lustre.TestNamespace()
	p.Name = "viz"
	vizFS := lustre.Build(eng, p, rng.New(6))
	ex := ExclusiveWorkflow(simFS, vizFS, 256<<20, 4, 4, 10e9)

	if dc.BytesMoved != 0 {
		t.Fatalf("data-centric moved %d bytes between systems", dc.BytesMoved)
	}
	if ex.BytesMoved != 256<<20 {
		t.Fatalf("exclusive moved %d", ex.BytesMoved)
	}
	if ex.TransferTime <= 0 {
		t.Fatal("exclusive workflow should pay transfer time")
	}
	if dc.Total >= ex.Total {
		t.Fatalf("data-centric total (%v) should beat exclusive (%v)", dc.Total, ex.Total)
	}
}

func TestMetadataStormNamespaceSplit(t *testing.T) {
	// E11: identical storage, one vs two MDSes. Two namespaces should
	// raise aggregate metadata throughput substantially.
	run := func(n int) MetadataLoadResult {
		eng := sim.NewEngine()
		var namespaces []*lustre.FS
		for i := 0; i < n; i++ {
			p := lustre.TestNamespace()
			p.Name = "ns" + string(rune('a'+i))
			namespaces = append(namespaces, lustre.Build(eng, p, rng.New(uint64(10+i))))
		}
		return MetadataStorm(namespaces, 3000, 64)
	}
	one := run(1)
	two := run(2)
	if one.Utilization < 0.85 {
		t.Fatalf("single MDS should saturate under the storm (util %.2f)", one.Utilization)
	}
	gain := two.OpsPerSec / one.OpsPerSec
	if gain < 1.6 {
		t.Fatalf("two namespaces gained only %.2fx metadata throughput", gain)
	}
	if two.MeanWait >= one.MeanWait {
		t.Fatalf("wait did not improve: %v -> %v", one.MeanWait, two.MeanWait)
	}
}

func TestBlastRadius(t *testing.T) {
	eng := sim.NewEngine()
	a := lustre.Build(eng, lustre.TestNamespace(), rng.New(20))
	p := lustre.TestNamespace()
	p.Name = "b"
	b := lustre.Build(eng, p, rng.New(21))
	for i := 0; i < 10; i++ {
		a.Create(pathN("a", i), 1, nil)
		b.Create(pathN("b", i), 1, nil)
	}
	eng.Run()
	single := BlastRadius([]*lustre.FS{a}, 0)
	if single != 1.0 {
		t.Fatalf("single namespace blast = %f, want 1.0", single)
	}
	split := BlastRadius([]*lustre.FS{a, b}, 0)
	if split != 0.5 {
		t.Fatalf("split blast = %f, want 0.5", split)
	}
}

func pathN(prefix string, i int) string {
	return prefix + "/f" + string(rune('0'+i))
}

func TestControllerUpgradeRaisesThroughput(t *testing.T) {
	// E14 in miniature: same shape, upgraded controller, optimally
	// placed clients -> clearly higher aggregate.
	run := func(upgraded bool) float64 {
		c := New(Config{Small: true, Namespaces: 1, Upgraded: upgraded, Seed: 30})
		res := c.RunIOR(0, workload.IORConfig{
			Clients:      32,
			TransferSize: 1 << 20,
			StoneWall:    sim.Second,
		})
		return res.AggregateBps
	}
	before := run(false)
	after := run(true)
	ratio := after / before
	if ratio < 1.2 {
		t.Fatalf("upgrade gained only %.2fx (%.1f -> %.1f GB/s)", ratio, before/1e9, after/1e9)
	}
}
