package center

import (
	"fmt"
	"strings"
)

// RenderArchitecture prints a Fig. 1-style text diagram of the
// assembled center: compute platforms, the LNET router layer, the SION
// InfiniBand SAN, and the Spider namespaces with their hardware counts.
func (c *Center) RenderArchitecture() string {
	var b strings.Builder
	tor := c.Torus
	nClients := tor.Nodes() * 2 // two nodes per Gemini
	routers := 4 * len(c.Placement.Modules)
	leaves := c.Placement.Groups * 4

	line := func(s string) { b.WriteString(s + "\n") }
	line("+------------------------------------------------------------------+")
	line(fmt.Sprintf("| Titan (Cray XK7)  %d x %d x %d Gemini 3D torus, ~%d clients", tor.NX, tor.NY, tor.NZ, nClients))
	line(fmt.Sprintf("|   %d I/O modules = %d LNET routers in %d FGR groups",
		len(c.Placement.Modules), routers, c.Placement.Groups))
	line("+---------------------------|--------------------------------------+")
	line("                            | SION InfiniBand SAN")
	line(fmt.Sprintf("              %d leaf switches <-> core tier", leaves))
	line("                            |")
	for i, fs := range c.Namespaces {
		disks := 0
		for _, o := range fs.OSTs {
			disks += o.Group().Config().Width()
		}
		line("+---------------------------|--------------------------------------+")
		line(fmt.Sprintf("| Spider namespace %q (%d of %d)", fs.Name, i+1, len(c.Namespaces)))
		line(fmt.Sprintf("|   %d OSSes -> %d SSU controllers -> %d OSTs (RAID-6 8+2) -> %d disks",
			len(fs.OSSes), len(fs.Ctrls), len(fs.OSTs), disks))
		line(fmt.Sprintf("|   %d MDT(s); capacity %.1f TiB", len(fs.MDTs), float64(fs.TotalCapacity())/(1<<40)))
	}
	line("+------------------------------------------------------------------+")
	line("other platforms (analysis, visualization, DTNs) mount the same")
	line("namespaces over SION: the data-centric model of Sec. II.")
	return b.String()
}
