package center

import (
	"fmt"
	"sort"
)

// Project is one allocation in OLCF's §IV-C classification model:
// projects are characterized by their capacity and bandwidth
// requirements and distributed among the namespaces so both dimensions
// stay balanced (Lesson 10).
type Project struct {
	Name          string
	CapacityBytes float64
	BandwidthBps  float64
}

// Assignment maps projects onto namespaces.
type Assignment struct {
	// NamespaceOf[projectName] = namespace index.
	NamespaceOf map[string]int
	// CapacityLoad and BandwidthLoad per namespace.
	CapacityLoad  []float64
	BandwidthLoad []float64
}

// Imbalance returns (max-min)/mean for one load dimension.
func loadImbalance(load []float64) float64 {
	if len(load) == 0 {
		return 0
	}
	min, max, sum := load[0], load[0], 0.0
	for _, v := range load {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	mean := sum / float64(len(load))
	if mean == 0 {
		return 0
	}
	return (max - min) / mean
}

// CapacityImbalance and BandwidthImbalance report the balance quality.
func (a Assignment) CapacityImbalance() float64  { return loadImbalance(a.CapacityLoad) }
func (a Assignment) BandwidthImbalance() float64 { return loadImbalance(a.BandwidthLoad) }

// DistributeProjects assigns projects to n namespaces with a greedy
// two-dimensional balancer: projects are placed largest-first onto the
// namespace with the lowest combined normalized load. This is the
// static model OLCF used to spread Spider I's projects over four
// namespaces and Spider II's over two.
func DistributeProjects(projects []Project, n int) Assignment {
	if n < 1 {
		panic("center: need at least one namespace") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	a := Assignment{
		NamespaceOf:   map[string]int{},
		CapacityLoad:  make([]float64, n),
		BandwidthLoad: make([]float64, n),
	}
	var totCap, totBW float64
	for _, p := range projects {
		if p.CapacityBytes < 0 || p.BandwidthBps < 0 {
			panic(fmt.Sprintf("center: project %q has negative requirements", p.Name)) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
		}
		totCap += p.CapacityBytes
		totBW += p.BandwidthBps
	}
	if totCap == 0 {
		totCap = 1
	}
	if totBW == 0 {
		totBW = 1
	}
	// Largest combined footprint first: big rocks placed while choices
	// remain.
	ordered := append([]Project(nil), projects...)
	weight := func(p Project) float64 {
		return p.CapacityBytes/totCap + p.BandwidthBps/totBW
	}
	sort.SliceStable(ordered, func(i, j int) bool { return weight(ordered[i]) > weight(ordered[j]) })

	for _, p := range ordered {
		best, bestLoad := 0, 0.0
		for ns := 0; ns < n; ns++ {
			load := a.CapacityLoad[ns]/totCap + a.BandwidthLoad[ns]/totBW
			if ns == 0 || load < bestLoad {
				best, bestLoad = ns, load
			}
		}
		a.NamespaceOf[p.Name] = best
		a.CapacityLoad[best] += p.CapacityBytes
		a.BandwidthLoad[best] += p.BandwidthBps
	}
	return a
}

// RoundRobinProjects is the naive baseline: assignment order, ignoring
// requirements.
func RoundRobinProjects(projects []Project, n int) Assignment {
	if n < 1 {
		panic("center: need at least one namespace") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	a := Assignment{
		NamespaceOf:   map[string]int{},
		CapacityLoad:  make([]float64, n),
		BandwidthLoad: make([]float64, n),
	}
	for i, p := range projects {
		ns := i % n
		a.NamespaceOf[p.Name] = ns
		a.CapacityLoad[ns] += p.CapacityBytes
		a.BandwidthLoad[ns] += p.BandwidthBps
	}
	return a
}
