package center

import (
	"fmt"
	"testing"

	"spiderfs/internal/iosi"
	"spiderfs/internal/lustre"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/stats"
	"spiderfs/internal/topology"
)

func ckptApp(name string, period, burst sim.Time, bps float64) AppSignature {
	return AppSignature{Name: name, Period: period, BurstDur: burst, BurstBps: bps}
}

func TestScheduleSpreadsAcrossNamespaces(t *testing.T) {
	apps := []AppSignature{
		ckptApp("a", 10*sim.Second, sim.Second, 100e9),
		ckptApp("b", 10*sim.Second, sim.Second, 90e9),
		ckptApp("c", 10*sim.Second, sim.Second, 10e9),
		ckptApp("d", 10*sim.Second, sim.Second, 10e9),
	}
	slots := ScheduleApps(apps, 2)
	if len(slots) != 4 {
		t.Fatalf("slots = %v", slots)
	}
	if slots["a"].Namespace == slots["b"].Namespace {
		t.Fatal("the two heavy apps must land on different namespaces")
	}
}

func TestScheduleStaggersPhases(t *testing.T) {
	apps := []AppSignature{
		ckptApp("x", 10*sim.Second, 2*sim.Second, 50e9),
		ckptApp("y", 10*sim.Second, 2*sim.Second, 50e9),
		ckptApp("z", 10*sim.Second, 2*sim.Second, 50e9),
	}
	slots := ScheduleApps(apps, 1)
	// All on namespace 0, but with non-overlapping burst windows.
	names := []string{"x", "y", "z"}
	for i, a := range names {
		for _, b := range names[i+1:] {
			ov := BurstOverlap(apps[idxOf(apps, a)], apps[idxOf(apps, b)],
				slots[a].PhaseOffset, slots[b].PhaseOffset)
			if ov > 0 {
				t.Fatalf("apps %s and %s overlap %.2f despite stagger", a, b, ov)
			}
		}
	}
}

func idxOf(apps []AppSignature, name string) int {
	for i, a := range apps {
		if a.Name == name {
			return i
		}
	}
	return -1
}

func TestBurstOverlapGeometry(t *testing.T) {
	a := ckptApp("a", 10*sim.Second, 2*sim.Second, 1)
	b := ckptApp("b", 10*sim.Second, 2*sim.Second, 1)
	if ov := BurstOverlap(a, b, 0, 0); ov != 1 {
		t.Fatalf("aligned identical bursts overlap = %f, want 1", ov)
	}
	if ov := BurstOverlap(a, b, 0, 5*sim.Second); ov != 0 {
		t.Fatalf("opposite-phase bursts overlap = %f, want 0", ov)
	}
	if ov := BurstOverlap(a, b, 0, sim.Second); ov != 0.5 {
		t.Fatalf("half-shifted bursts overlap = %f, want 0.5", ov)
	}
	// Wraparound: burst at the end of the period overlaps one at the
	// start.
	if ov := BurstOverlap(a, b, 9*sim.Second, 0); ov != 0.5 {
		t.Fatalf("wraparound overlap = %f, want 0.5", ov)
	}
	// Differing periods fall back to duty-cycle product.
	c := ckptApp("c", 7*sim.Second, 2*sim.Second, 1)
	want := a.DutyCycle() * c.DutyCycle()
	if ov := BurstOverlap(a, c, 0, 0); ov != want {
		t.Fatalf("mixed-period overlap = %f, want %f", ov, want)
	}
}

func TestFromIOSI(t *testing.T) {
	sig := iosi.Signature{Period: 30 * sim.Second, BurstDuration: 3 * sim.Second, BurstVolume: 90e9}
	app := FromIOSI("s3d", sig)
	if app.BurstBps != 30e9 {
		t.Fatalf("burst bps = %g", app.BurstBps)
	}
	if app.DutyCycle() != 0.1 {
		t.Fatalf("duty = %f", app.DutyCycle())
	}
}

// The end-to-end value: two identical checkpointing apps on one
// namespace finish their dumps faster when the scheduler staggers them
// than when they burst in phase.
func TestStaggeredCheckpointsBeatAligned(t *testing.T) {
	run := func(offset sim.Time) float64 {
		eng := sim.NewEngine()
		p := lustre.TestNamespace()
		// Proportional miniature controller (as in the Small center), so
		// two simultaneous dumps genuinely contend.
		p.CtrlCfg.Bps = 2.5e9
		p.CtrlCfg.Slots = 8
		fs := lustre.Build(eng, p, rng.New(321))
		var durations []float64
		app := func(id int, start sim.Time) {
			client := lustre.NewClient(id, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
			period := 2 * sim.Second
			fs.Create(fmt.Sprintf("app%d/ckpt", id), 4, func(file *lustre.File) {
				var dump func(n int)
				dump = func(n int) {
					if n == 0 {
						return
					}
					t0 := eng.Now()
					client.WriteStream(file, 96<<20, 1<<20, func(int64) {
						durations = append(durations, (eng.Now() - t0).Seconds())
						eng.After(period, func() { dump(n - 1) })
					})
				}
				if eng.Now() >= start {
					dump(5)
				} else {
					eng.At(start, func() { dump(5) })
				}
			})
		}
		app(0, 0)
		app(1, offset)
		eng.Run()
		return stats.Percentile(durations, 0.95)
	}
	aligned := run(0)
	staggered := run(sim.Second) // half the period, as the scheduler would pick
	if staggered >= aligned {
		t.Fatalf("staggered p95 dump %.3fs not better than aligned %.3fs", staggered, aligned)
	}
	if aligned/staggered < 1.3 {
		t.Fatalf("stagger gain only %.2fx (aligned %.3fs vs staggered %.3fs)",
			aligned/staggered, aligned, staggered)
	}
}

func TestScheduleInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ScheduleApps(nil, 0)
}
