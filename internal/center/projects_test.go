package center

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"spiderfs/internal/rng"
)

func skewedProjects(n int, seed uint64) []Project {
	src := rng.New(seed)
	out := make([]Project, n)
	for i := range out {
		// Long-tailed project sizes, as allocation programs produce.
		out[i] = Project{
			Name:          fmt.Sprintf("proj%03d", i),
			CapacityBytes: src.Pareto(2.2, 10e12),
			BandwidthBps:  src.Pareto(2.5, 1e9),
		}
	}
	return out
}

func TestDistributeCoversAllProjects(t *testing.T) {
	projects := skewedProjects(40, 1)
	a := DistributeProjects(projects, 2)
	if len(a.NamespaceOf) != 40 {
		t.Fatalf("assigned %d of 40", len(a.NamespaceOf))
	}
	var cap0 float64
	for _, p := range projects {
		ns := a.NamespaceOf[p.Name]
		if ns < 0 || ns > 1 {
			t.Fatalf("project %s on namespace %d", p.Name, ns)
		}
		if ns == 0 {
			cap0 += p.CapacityBytes
		}
	}
	if cap0 != a.CapacityLoad[0] {
		t.Fatalf("capacity bookkeeping: %g vs %g", cap0, a.CapacityLoad[0])
	}
}

func TestDistributeBeatsRoundRobin(t *testing.T) {
	combined := func(a Assignment) float64 {
		var totCap, totBW float64
		for ns := range a.CapacityLoad {
			totCap += a.CapacityLoad[ns]
			totBW += a.BandwidthLoad[ns]
		}
		loads := make([]float64, len(a.CapacityLoad))
		for ns := range loads {
			loads[ns] = a.CapacityLoad[ns]/totCap + a.BandwidthLoad[ns]/totBW
		}
		return loadImbalance(loads)
	}
	worse := 0
	for seed := uint64(0); seed < 10; seed++ {
		projects := skewedProjects(60, seed)
		smart := DistributeProjects(projects, 2)
		naive := RoundRobinProjects(projects, 2)
		// The balancer optimizes the combined normalized load; compare
		// on that objective.
		if combined(smart) > combined(naive) {
			worse++
		}
		// The model's whole purpose: keep both dimensions tight.
		if smart.CapacityImbalance() > 0.5 {
			t.Fatalf("seed %d: balanced capacity imbalance %.2f too high", seed, smart.CapacityImbalance())
		}
		if smart.BandwidthImbalance() > 0.7 {
			t.Fatalf("seed %d: balanced bandwidth imbalance %.2f too high", seed, smart.BandwidthImbalance())
		}
	}
	if worse > 2 {
		t.Fatalf("greedy balancer lost to round-robin on %d/10 seeds", worse)
	}
}

// Property: loads are conserved — per-namespace sums equal the project
// totals.
func TestDistributeConservationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%4) + 1
		projects := skewedProjects(25, seed)
		a := DistributeProjects(projects, n)
		var wantCap, wantBW, gotCap, gotBW float64
		for _, p := range projects {
			wantCap += p.CapacityBytes
			wantBW += p.BandwidthBps
		}
		for ns := 0; ns < n; ns++ {
			gotCap += a.CapacityLoad[ns]
			gotBW += a.BandwidthLoad[ns]
		}
		return almostEq(gotCap, wantCap) && almostEq(gotBW, wantBW)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(b+1)
}

func TestDistributeInvalidInputsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DistributeProjects(nil, 0)
}

func TestRenderArchitecture(t *testing.T) {
	c := New(Config{Small: true, Namespaces: 2, Seed: 5})
	out := c.RenderArchitecture()
	for _, want := range []string{"Gemini 3D torus", "LNET routers", "Spider namespace", "RAID-6 8+2", "MDT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("architecture rendering missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "Spider namespace") != 2 {
		t.Fatal("should render both namespaces")
	}
}
