package center

import (
	"testing"

	"spiderfs/internal/netsim"
	"spiderfs/internal/rng"
	"spiderfs/internal/shard"
)

// The plan must tile the torus X dimension and the OSS population
// exactly once, with storage spans aligned to SSU boundaries.
func TestShardPlanCoversCenterExactlyOnce(t *testing.T) {
	c := New(Config{Small: true, Namespaces: 2, Seed: 1})
	p := c.ShardPlan(3)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Regions() != 3 {
		t.Fatalf("Regions = %d, want 3", p.Regions())
	}
	// Small center: 2 namespaces x 2 SSUs of 8 OSSes.
	if len(p.StorageSpans) != 4 || p.OSSes() != 32 {
		t.Fatalf("got %d storage spans over %d OSSes, want 4 over 32", len(p.StorageSpans), p.OSSes())
	}
	for i, s := range p.StorageSpans {
		if s.Hi-s.Lo != 8 {
			t.Fatalf("span %d: [%d,%d) is not one 8-OSS SSU", i, s.Lo, s.Hi)
		}
	}
	// Every namespace's OSS range must be a whole number of spans.
	for ns := range c.Namespaces {
		base := c.ossBase[ns]
		found := false
		for _, s := range p.StorageSpans {
			if s.Lo == base {
				found = true
			}
			if s.Lo < base && base < s.Hi {
				t.Fatalf("namespace %d base %d splits span [%d,%d)", ns, base, s.Lo, s.Hi)
			}
		}
		if !found {
			t.Fatalf("no span starts at namespace %d base %d", ns, base)
		}
	}
}

func TestShardPlanValidateRejectsBadPlans(t *testing.T) {
	c := New(Config{Small: true, Namespaces: 1, Seed: 1})
	good := c.ShardPlan(2)
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	bad := good
	bad.RegionBounds = []int{0, 3} // does not reach NX=5
	if bad.Validate() == nil {
		t.Fatal("accepted region bounds that do not cover the torus")
	}
	bad = good
	bad.StorageSpans = append([]Span(nil), good.StorageSpans...)
	bad.StorageSpans[0].Hi-- // gap before span 1
	if bad.Validate() == nil {
		t.Fatal("accepted storage spans with a coverage gap")
	}
	bad = good
	bad.Routers = len(good.StorageSpans) - 1
	if bad.Validate() == nil {
		t.Fatal("accepted fewer routers than storage shards")
	}
}

// The realized sharded fabric must honor the plan: same shard counts,
// same even OSS split, and a deterministic drained run.
func TestShardPlanRealizesFabricSim(t *testing.T) {
	c := New(Config{Small: true, Namespaces: 2, Seed: 1})
	p := c.ShardPlan(3)
	fcfg := netsim.Spider2Fabric()
	fcfg.Torus = c.Torus
	fs := shard.NewFabricSim(p.FabricConfig(fcfg, 2))
	if got, want := fs.Runner.NumShards(), p.Regions()+len(p.StorageSpans); got != want {
		t.Fatalf("runner has %d shards, plan wants %d", got, want)
	}
	fs.LaunchWave(rng.New(5), 200, 1e6, 0)
	if st := fs.Runner.Run(); st != shard.Quiescent {
		t.Fatalf("Run = %v, want %v", st, shard.Quiescent)
	}
	if fs.Completed() != 200 {
		t.Fatalf("completed %d of 200 flows", fs.Completed())
	}
}
