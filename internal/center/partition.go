package center

import (
	"fmt"

	"spiderfs/internal/netsim"
	"spiderfs/internal/shard"
)

// Span is a half-open index range [Lo, Hi).
type Span struct{ Lo, Hi int }

// ShardPlan describes how a built center's hardware partitions into the
// weakly-coupled shards the parallel engine (internal/shard) runs:
// contiguous torus X-slabs for the fabric (dimension-ordered routing
// crosses each slab at most once) and SSU-aligned OSS spans for storage,
// so a disk/RAID/OST stack never straddles two shards. The plan is the
// seam between the center's assembly and the sharded runner: it is
// derived from a built center, validated for exact coverage, and handed
// to shard.NewFabricSim.
type ShardPlan struct {
	// RegionBounds has one more entry than there are region shards;
	// region i owns torus nodes with RegionBounds[i] <= X < RegionBounds[i+1].
	RegionBounds []int
	// StorageSpans lists, per storage shard, the OSS index range it owns
	// (fabric-global OSS numbering, one span per SSU across namespaces).
	StorageSpans []Span
	Routers      int
	torusNX      int
	osses        int
}

// ShardPlan partitions the center into regions torus X-slabs plus one
// storage shard per SSU. regions is clamped to [1, NX].
func (c *Center) ShardPlan(regions int) ShardPlan {
	if regions < 1 {
		regions = 1
	}
	if regions > c.Torus.NX {
		regions = c.Torus.NX
	}
	p := ShardPlan{Routers: 4 * len(c.Placement.Modules), torusNX: c.Torus.NX}
	p.RegionBounds = make([]int, regions+1)
	for i := range p.RegionBounds {
		p.RegionBounds[i] = i * c.Torus.NX / regions
	}
	for ns, fs := range c.Namespaces {
		nSSU := len(fs.Ctrls)
		perSSU := len(fs.OSSes) / nSSU
		base := c.ossBase[ns]
		for s := 0; s < nSSU; s++ {
			p.StorageSpans = append(p.StorageSpans, Span{Lo: base + s*perSSU, Hi: base + (s+1)*perSSU})
		}
		p.osses += len(fs.OSSes)
	}
	return p
}

// Validate checks the plan covers the hardware exactly once and that its
// storage spans coincide with the even contiguous split
// shard.NewFabricSim builds — SSU-aligned spans satisfy this because
// every SSU carries the same OSS count.
func (p ShardPlan) Validate() error {
	if len(p.RegionBounds) < 2 || p.RegionBounds[0] != 0 || p.RegionBounds[len(p.RegionBounds)-1] != p.torusNX {
		return fmt.Errorf("region bounds %v do not cover X range [0,%d)", p.RegionBounds, p.torusNX)
	}
	for i := 1; i < len(p.RegionBounds); i++ {
		if p.RegionBounds[i] <= p.RegionBounds[i-1] {
			return fmt.Errorf("region bound %d: %d not above %d", i, p.RegionBounds[i], p.RegionBounds[i-1])
		}
	}
	n := len(p.StorageSpans)
	if n == 0 {
		return fmt.Errorf("no storage spans")
	}
	next := 0
	for i, s := range p.StorageSpans {
		if s.Lo != next || s.Hi <= s.Lo {
			return fmt.Errorf("storage span %d: [%d,%d) does not continue from %d", i, s.Lo, s.Hi, next)
		}
		if want := (Span{Lo: i * p.osses / n, Hi: (i + 1) * p.osses / n}); s != want {
			return fmt.Errorf("storage span %d: [%d,%d) is not the even split [%d,%d) the sharded fabric builds",
				i, s.Lo, s.Hi, want.Lo, want.Hi)
		}
		next = s.Hi
	}
	if next != p.osses {
		return fmt.Errorf("storage spans cover %d of %d OSSes", next, p.osses)
	}
	if p.Routers < n {
		return fmt.Errorf("%d routers cannot serve %d storage shards", p.Routers, n)
	}
	return nil
}

// Regions returns the region shard count.
func (p ShardPlan) Regions() int { return len(p.RegionBounds) - 1 }

// OSSes returns the total OSS count the plan covers.
func (p ShardPlan) OSSes() int { return p.osses }

// FabricConfig realizes the plan as a sharded fabric configuration for
// the given torus, synchronized at the Gemini hop latency.
func (p ShardPlan) FabricConfig(cfg netsim.FabricConfig, workers int) shard.FabricConfig {
	return shard.FabricConfig{
		Net:       cfg,
		Regions:   p.Regions(),
		Storage:   len(p.StorageSpans),
		OSSes:     p.osses,
		Routers:   p.Routers,
		Lookahead: cfg.GeminiLatency,
		Workers:   workers,
	}
}
