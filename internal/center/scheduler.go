package center

import (
	"sort"

	"spiderfs/internal/iosi"
	"spiderfs/internal/sim"
)

// IOSI-driven resource allocation (Lesson 18 / §VI-B): "IOSI can be
// used to dynamically detect I/O patterns and aid users and
// administrators to allocate resources in an efficient manner." Given
// per-application signatures mined from server logs, the scheduler
// spreads bursty applications across namespaces and staggers their
// burst phases so checkpoints do not collide.

// AppSignature is the scheduler's view of one application.
type AppSignature struct {
	Name     string
	Period   sim.Time
	BurstDur sim.Time
	BurstBps float64 // bandwidth demand during a burst
}

// FromIOSI converts a mined signature into scheduler input.
func FromIOSI(name string, sig iosi.Signature) AppSignature {
	bps := 0.0
	if sig.BurstDuration > 0 {
		bps = sig.BurstVolume / sig.BurstDuration.Seconds()
	}
	return AppSignature{Name: name, Period: sig.Period, BurstDur: sig.BurstDuration, BurstBps: bps}
}

// DutyCycle returns the fraction of time the app bursts.
func (a AppSignature) DutyCycle() float64 {
	if a.Period <= 0 {
		return 1
	}
	d := float64(a.BurstDur) / float64(a.Period)
	if d > 1 {
		return 1
	}
	return d
}

// Slot is one scheduling decision: which namespace the app's files
// should live on and how much to delay its first burst so that bursts
// on the same namespace interleave (time-division of the burst window).
type Slot struct {
	Namespace   int
	PhaseOffset sim.Time
}

// ScheduleApps assigns apps to n namespaces. Placement is greedy
// largest-demand-first onto the namespace with the lowest accumulated
// burst demand (duty x bandwidth); within a namespace, phase offsets
// stack each app's burst window after the previous one, modulo the
// period, so equal-period applications never burst together while
// capacity allows.
func ScheduleApps(apps []AppSignature, n int) map[string]Slot {
	if n < 1 {
		panic("center: scheduler needs at least one namespace") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	out := make(map[string]Slot, len(apps))
	ordered := append([]AppSignature(nil), apps...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].DutyCycle()*ordered[i].BurstBps > ordered[j].DutyCycle()*ordered[j].BurstBps
	})
	load := make([]float64, n)
	nextOffset := make([]sim.Time, n)
	for _, a := range ordered {
		best := 0
		for ns := 1; ns < n; ns++ {
			if load[ns] < load[best] {
				best = ns
			}
		}
		off := nextOffset[best]
		if a.Period > 0 {
			off %= a.Period
		}
		out[a.Name] = Slot{Namespace: best, PhaseOffset: off}
		load[best] += a.DutyCycle() * a.BurstBps
		nextOffset[best] += a.BurstDur
	}
	return out
}

// BurstOverlap estimates the expected fraction of one app's burst time
// spent overlapping another's, for two equal-period apps with the given
// phase offsets — the quantity the stagger minimizes. Zero period means
// always-on (full overlap).
func BurstOverlap(a, b AppSignature, offA, offB sim.Time) float64 {
	if a.Period <= 0 || b.Period <= 0 || a.Period != b.Period {
		// Differing or unknown periods: expected overlap of random
		// phases is the product of duty cycles.
		return a.DutyCycle() * b.DutyCycle()
	}
	p := a.Period
	// Overlap of intervals [offA, offA+burstA) and [offB, offB+burstB)
	// on a circle of circumference p.
	startA := offA % p
	startB := offB % p
	overlap := circleOverlap(startA, a.BurstDur, startB, b.BurstDur, p)
	if a.BurstDur == 0 {
		return 0
	}
	return overlap.Seconds() / a.BurstDur.Seconds()
}

func circleOverlap(s1 sim.Time, d1 sim.Time, s2 sim.Time, d2 sim.Time, p sim.Time) sim.Time {
	var total sim.Time
	// Unroll the circle across two periods and intersect linearly.
	for _, shift := range []sim.Time{-p, 0, p} {
		a0, a1 := s1, s1+d1
		b0, b1 := s2+shift, s2+d2+shift
		lo, hi := maxT(a0, b0), minT(a1, b1)
		if hi > lo {
			total += hi - lo
		}
	}
	if total > d1 {
		total = d1
	}
	return total
}

func maxT(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func minT(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
