// Package center assembles the complete OLCF model: Titan's torus and
// clients, the SION fabric with LNET routers, and the Spider II
// namespaces — the data-centric architecture the paper advocates — plus
// the machine-exclusive alternative it was weighed against. The top
// experiments (data-centric vs exclusive workflows, single vs multiple
// namespaces, controller upgrades) run at this level.
package center

import (
	"fmt"

	"spiderfs/internal/lustre"
	"spiderfs/internal/netsim"
	"spiderfs/internal/raid"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/topology"
	"spiderfs/internal/workload"
)

// Config shapes a center build.
type Config struct {
	// Scale divides the Spider II hardware (18/Scale SSUs per
	// namespace) and the router fleet, keeping per-SSU behaviour and
	// ratios intact while bounding event counts.
	Scale int
	// Namespaces is how many independent Lustre namespaces share the
	// hardware (Spider II ran two).
	Namespaces int
	// UseFabric wires clients through the Gemini+SION network; without
	// it clients attach with a null transport (storage-stack studies).
	UseFabric bool
	RouteMode netsim.RouteMode
	// Upgraded selects the post-§V-C controller.
	Upgraded bool
	Seed     uint64
	// Small selects a reduced torus/cabinet topology for unit tests.
	Small bool
}

// Center is the assembled facility.
type Center struct {
	Eng        *sim.Engine
	Src        *rng.Source
	Cfg        Config
	Torus      topology.Torus
	Placement  topology.Placement
	Fabric     *netsim.Fabric // nil when !UseFabric
	Namespaces []*lustre.FS
	// ossBase[i] is namespace i's first OSS index in the fabric's OSS
	// numbering.
	ossBase []int
}

// New builds a center.
func New(cfg Config) *Center {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.Namespaces < 1 {
		cfg.Namespaces = 1
	}
	eng := sim.NewEngine()
	src := rng.New(cfg.Seed)
	c := &Center{Eng: eng, Src: src, Cfg: cfg}

	var grid topology.CabinetGrid
	var modules, groups int
	if cfg.Small {
		c.Torus = topology.Torus{NX: 5, NY: 4, NZ: 4}
		grid = topology.CabinetGrid{Cols: 5, Rows: 2}
		modules, groups = 16, 4
	} else {
		c.Torus = topology.TitanTorus()
		grid = topology.TitanCabinets()
		modules, groups = 110/cfg.Scale, 9
		if modules < groups {
			modules = groups
		}
	}
	c.Placement = topology.PlaceRouters(grid, c.Torus, modules, groups)

	p := lustre.Spider2Namespace().Scale(cfg.Scale)
	if cfg.Upgraded {
		p.CtrlCfg = lustre.Spider2ControllerUpgraded()
	}
	if cfg.Small {
		// A proportional miniature of one Spider II namespace: 2 SSUs of
		// 8 OSTs each on small disks, with the controller scaled to its
		// OST count so the controller remains the binding constraint, as
		// it was at full scale.
		p.NumSSU = 2
		p.OSTsPerSSU = 8
		p.OSSPerSSU = 8
		p.DiskCfg.Capacity = 2 << 30
		ratio := float64(p.OSTsPerSSU) / 56
		p.CtrlCfg.Bps *= ratio
		p.CtrlCfg.CacheBytes = int64(float64(p.CtrlCfg.CacheBytes) * ratio)
		p.CtrlCfg.Slots = 8
	}
	totalOSS := 0
	for i := 0; i < cfg.Namespaces; i++ {
		pi := p
		pi.Name = fmt.Sprintf("atlas%d", i+1)
		fs := lustre.Build(eng, pi, src.Split(pi.Name))
		c.Namespaces = append(c.Namespaces, fs)
		c.ossBase = append(c.ossBase, totalOSS)
		totalOSS += len(fs.OSSes)
	}

	if cfg.UseFabric {
		fcfg := netsim.Spider2Fabric()
		fcfg.Torus = c.Torus
		c.Fabric = netsim.NewFabric(eng, fcfg, c.Placement, totalOSS)
	}
	return c
}

// fabricTransport maps a namespace's OSS indices onto the shared fabric.
type fabricTransport struct {
	fabric  *netsim.Fabric
	mode    netsim.RouteMode
	ossBase int
	src     *rng.Source
}

// Send implements lustre.Transport. Sends go through the fabric's
// router-failure path so that dead LNET routers stall (without ARN) or
// are routed around (with ARN), and a send with no eligible router left
// is recorded as a dropped flow instead of panicking — the semantics a
// chaos campaign needs to keep running through correlated faults.
func (t fabricTransport) Send(from topology.Coord, oss int, bytes int64, done func()) {
	t.fabric.StartClientFlow(from, t.ossBase+oss, t.mode, float64(bytes), t.src, done)
}

// AttachTracer wires the spantrace plane through every instrumented
// layer of the center — fabric, OSSes, OSTs, RAID groups, disks — and
// binds the tracer to the center's engine. Clients opt in via
// lustre.Client.Tracer / workload.IORConfig.Tracer.
func (c *Center) AttachTracer(tr *spantrace.Tracer) {
	tr.Bind(c.Eng)
	if c.Fabric != nil {
		c.Fabric.Tracer = tr
	}
	for _, fs := range c.Namespaces {
		fs.SetTracer(tr)
	}
}

// Transport returns the transport clients of namespace ns should use.
func (c *Center) Transport(ns int) lustre.Transport {
	if c.Fabric == nil {
		return lustre.NullTransport{Eng: c.Eng}
	}
	return fabricTransport{fabric: c.Fabric, mode: c.Cfg.RouteMode, ossBase: c.ossBase[ns], src: c.Src.Split(fmt.Sprintf("tr-%d", ns))}
}

// GroupsOf returns namespace ns's RAID groups in OST order (fault
// injection and chaos campaigns address storage hardware through this).
func (c *Center) GroupsOf(ns int) []*raid.Group {
	fs := c.Namespaces[ns]
	out := make([]*raid.Group, 0, len(fs.OSTs))
	for _, o := range fs.OSTs {
		out = append(out, o.Group())
	}
	return out
}

// CoupletsOf wraps namespace ns's per-SSU RAID groups in controller
// couplets under the given enclosure layout, so enclosure-level faults
// can be injected against a built center. The couplets share the
// namespace's live groups; they are constructed on demand because the
// builder itself does not model enclosures.
func (c *Center) CoupletsOf(ns int, layout raid.EnclosureLayout) []*raid.Couplet {
	fs := c.Namespaces[ns]
	groups := c.GroupsOf(ns)
	perSSU := len(groups) / len(fs.Ctrls)
	out := make([]*raid.Couplet, 0, len(fs.Ctrls))
	for ssu := 0; ssu < len(fs.Ctrls); ssu++ {
		out = append(out, raid.NewCouplet(c.Eng, ssu, layout, groups[ssu*perSSU:(ssu+1)*perSSU]))
	}
	return out
}

// RunIOR runs the IOR benchmark against namespace ns with the center's
// transport and the given placer.
func (c *Center) RunIOR(ns int, cfg workload.IORConfig) workload.IORResult {
	cfg.Transport = c.Transport(ns)
	if cfg.Placer == nil {
		cfg.Placer = workload.RandomPlacer(c.Torus, c.Cfg.Seed)
	}
	return workload.RunIOR(c.Namespaces[ns], cfg)
}

// WorkflowResult compares the scientific-workflow cost under the two
// architectures (E6): a simulation writes its output, then an analysis
// platform consumes it.
type WorkflowResult struct {
	WriteTime    sim.Time
	TransferTime sim.Time // zero in the data-centric model
	ReadTime     sim.Time
	Total        sim.Time
	BytesMoved   int64 // extra inter-system traffic (exclusive model)
}

// DataCentricWorkflow runs the workflow on one shared namespace: the
// analysis reads the simulation's output in place.
func DataCentricWorkflow(fs *lustre.FS, dataBytes int64, writers, readers int) WorkflowResult {
	eng := fs.Engine()
	var res WorkflowResult
	files := writeDataset(fs, "shared/sim", dataBytes, writers, &res)
	start := eng.Now()
	readDataset(fs, files, readers)
	eng.Run()
	res.ReadTime = eng.Now() - start
	res.Total = res.WriteTime + res.ReadTime
	return res
}

// ExclusiveWorkflow runs the workflow across two machine-exclusive
// namespaces: write to the simulation PFS, copy through a data-transfer
// node at dtnBps, then read from the analysis PFS.
func ExclusiveWorkflow(simFS, vizFS *lustre.FS, dataBytes int64, writers, readers int, dtnBps float64) WorkflowResult {
	eng := simFS.Engine()
	var res WorkflowResult
	writeDataset(simFS, "excl/sim", dataBytes, writers, &res)

	// DTN copy: read from simFS and write to vizFS through a
	// bandwidth-capped mover.
	start := eng.Now()
	mover := lustre.NewClient(-10, topology.Coord{}, simFS, lustre.NullTransport{Eng: eng})
	sink := lustre.NewClient(-11, topology.Coord{}, vizFS, lustre.NullTransport{Eng: eng})
	var copied *lustre.File
	vizFS.Create("excl/copy", 4, func(f *lustre.File) { copied = f })
	eng.Run()
	var srcFile *lustre.File
	simFS.Open("excl/sim/rank0000000", func(f *lustre.File) { srcFile = f })
	eng.Run()
	if srcFile == nil {
		panic("center: exclusive workflow lost its dataset") //simlint:allow no-library-panic can't-happen internal invariant: exclusive workflows pin their dataset
	}
	// The DTN is the bottleneck: cap the copy at dtnBps by pacing
	// chunked reads/writes.
	chunk := int64(64 << 20)
	remaining := dataBytes
	var step func()
	step = func() {
		if remaining <= 0 {
			return
		}
		n := chunk
		if n > remaining {
			n = remaining
		}
		remaining -= n
		floor := sim.FromSeconds(float64(n) / dtnBps)
		issued := eng.Now()
		mover.ReadStream(srcFile, n, 1<<20, false, func(int64) {
			sink.WriteStream(copied, n, 1<<20, func(int64) {
				elapsed := eng.Now() - issued
				if elapsed < floor {
					eng.After(floor-elapsed, step)
				} else {
					step()
				}
			})
		})
	}
	step()
	eng.Run()
	res.TransferTime = eng.Now() - start
	res.BytesMoved = dataBytes

	start = eng.Now()
	readDataset(vizFS, []*lustre.File{copied}, readers)
	eng.Run()
	res.ReadTime = eng.Now() - start
	res.Total = res.WriteTime + res.TransferTime + res.ReadTime
	return res
}

func writeDataset(fs *lustre.FS, dir string, dataBytes int64, writers int, res *WorkflowResult) []*lustre.File {
	eng := fs.Engine()
	files := make([]*lustre.File, writers)
	clients := make([]*lustre.Client, writers)
	for i := 0; i < writers; i++ {
		i := i
		clients[i] = lustre.NewClient(i, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
		fs.Create(fmt.Sprintf("%s/rank%07d", dir, i), 4, func(f *lustre.File) { files[i] = f })
	}
	eng.Run()
	start := eng.Now()
	per := dataBytes / int64(writers)
	for i, cl := range clients {
		cl.WriteStream(files[i], per, 1<<20, nil)
	}
	eng.Run()
	res.WriteTime = eng.Now() - start
	return files
}

func readDataset(fs *lustre.FS, files []*lustre.File, readers int) {
	eng := fs.Engine()
	for r := 0; r < readers; r++ {
		cl := lustre.NewClient(100+r, topology.Coord{}, fs, lustre.NullTransport{Eng: eng})
		f := files[r%len(files)]
		size := f.Size() / int64(readers/len(files)+1)
		if size < 1<<20 {
			size = 1 << 20
		}
		cl.ReadStream(f, size, 1<<20, false, nil)
	}
}

// MetadataLoadResult reports the E11 namespace experiment.
type MetadataLoadResult struct {
	OpsPerSec   float64
	MeanWait    sim.Time
	Utilization float64
}

// MetadataStorm drives a create+stat storm (files each created then
// statted) against the namespaces round-robin and reports aggregate
// metadata throughput. With one namespace the single MDS saturates;
// splitting the same hardware into two namespaces doubles the ceiling.
func MetadataStorm(namespaces []*lustre.FS, files int, concurrency int) MetadataLoadResult {
	eng := namespaces[0].Engine()
	start := eng.Now()
	issued := 0
	var worker func(w int)
	worker = func(w int) {
		if issued >= files {
			return
		}
		i := issued
		issued++
		fs := namespaces[i%len(namespaces)]
		fs.Create(fmt.Sprintf("storm/w%d/f%07d", w, i), 1, func(f *lustre.File) {
			fs.Stat(f, func() { worker(w) })
		})
	}
	if concurrency < 1 {
		concurrency = 1
	}
	for w := 0; w < concurrency; w++ {
		worker(w)
	}
	eng.Run()
	dur := eng.Now() - start
	res := MetadataLoadResult{}
	if dur > 0 {
		res.OpsPerSec = float64(files*2) / dur.Seconds()
	}
	var wait sim.Time
	var util float64
	for _, fs := range namespaces {
		wait += fs.MDS.MeanWait()
		util += fs.MDS.Utilization()
	}
	res.MeanWait = wait / sim.Time(len(namespaces))
	res.Utilization = util / float64(len(namespaces))
	return res
}

// BlastRadius returns the fraction of the center's files made
// unavailable by the loss of namespace ns — the failure-domain argument
// for multiple namespaces.
func BlastRadius(namespaces []*lustre.FS, ns int) float64 {
	var total, lost int64
	for i, fs := range namespaces {
		total += fs.NumFiles
		if i == ns {
			lost += fs.NumFiles
		}
	}
	if total == 0 {
		return 0
	}
	return float64(lost) / float64(total)
}
