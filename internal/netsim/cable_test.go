package netsim

import (
	"math"
	"strings"
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

func TestDegradeSlowsActiveFlow(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("cable", 1e9, 0)
	var doneAt sim.Time
	n.StartFlow([]*Link{l}, 1e9, func() { doneAt = eng.Now() })
	eng.At(sim.FromSeconds(0.5), func() { n.Degrade(l, 0.25) })
	eng.Run()
	// 0.5 GB in the first 0.5 s, then 0.5 GB at 250 MB/s = 2 s more.
	if math.Abs(doneAt.Seconds()-2.5) > 1e-6 {
		t.Fatalf("done at %v, want 2.5s", doneAt)
	}
}

func TestRestoreRecovers(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("cable", 1e9, 0)
	n.Degrade(l, 0.1)
	if l.Cap != 1e8 {
		t.Fatalf("cap = %g", l.Cap)
	}
	n.Restore(l)
	if l.Cap != 1e9 {
		t.Fatalf("restored cap = %g", l.Cap)
	}
	n.Restore(l) // idempotent
	if l.Cap != 1e9 {
		t.Fatal("double restore changed capacity")
	}
}

func TestDegradeBadFracPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("cable", 1e9, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.Degrade(l, 0)
}

// The §IV-A procedure: exercise the fabric, then rank sibling cables by
// normalized throughput; the degraded one surfaces at the top.
func TestDiagnoseCablesFindsWeakLink(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	src := rng.New(9)
	// Degrade one router's uplink to 20%.
	weak := f.RouterUpLinks()[7]
	f.Net.Degrade(weak, 0.2)
	// Exercise each uplink in isolation with sustained offered load for
	// a fixed window (the in-place procedure drives point tests over the
	// suspect path class so shared-link effects don't confound it).
	for _, up := range f.RouterUpLinks() {
		f.Net.StartFlow([]*Link{up}, 1e13, nil)
	}
	eng.RunUntil(2 * sim.Second)
	f.Net.Sync()
	suspects := DiagnoseCables(f.RouterUpLinks(), eng.Now().Seconds())
	if len(suspects) == 0 {
		t.Fatal("no suspects returned")
	}
	if !strings.Contains(suspects[0].Name, weak.Name) {
		t.Fatalf("worst suspect = %s, want %s (ranked list head)", suspects[0].Name, weak.Name)
	}
	if suspects[0].RatioToMedian > 0.7 {
		t.Fatalf("weak cable ratio %.2f should flag below 0.7", suspects[0].RatioToMedian)
	}
	_ = src
}

func TestDiagnoseCablesSkipsIdle(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	idle := n.NewLink("idle", 1e9, 0)
	busy := n.NewLink("busy", 1e9, 0)
	n.StartFlow([]*Link{busy}, 1e8, nil)
	eng.Run()
	suspects := DiagnoseCables([]*Link{idle, busy}, eng.Now().Seconds())
	if len(suspects) != 1 || suspects[0].Name != "busy" {
		t.Fatalf("suspects = %+v", suspects)
	}
	if DiagnoseCables(nil, 1) != nil {
		t.Fatal("empty input should return nil")
	}
}

// mkCarried builds a link that has carried bytes over one second, for
// diagnosis-math tests.
func mkCarried(n *Network, name string, bytes float64) *Link {
	l := n.NewLink(name, 1e9, 0)
	l.BytesCarried = bytes
	return l
}

// Even-sized sibling groups must use the mean of the two middle
// throughputs as the median. The upper-middle element alone biased
// RatioToMedian low: with rates {2,4,6,8} the old code divided by 6, so
// a healthy 4 looked like ratio 0.67 — below the 0.7 suspect line.
func TestDiagnoseCablesEvenMedian(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	links := []*Link{
		mkCarried(n, "a", 2e9),
		mkCarried(n, "b", 4e9),
		mkCarried(n, "c", 6e9),
		mkCarried(n, "d", 8e9),
	}
	rows := DiagnoseCables(links, 1)
	// Median = (4+6)/2 = 5 GB/s.
	byName := map[string]CableSuspect{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if got := byName["b"].RatioToMedian; math.Abs(got-4.0/5.0) > 1e-9 {
		t.Fatalf("ratio(b) = %v, want 0.8 (upper-middle median would give %v)", got, 4.0/6.0)
	}
	if byName["b"].RatioToMedian < 0.7 {
		t.Fatal("healthy middle link flagged as suspect under even-group median")
	}
	if got := byName["a"].RatioToMedian; math.Abs(got-2.0/5.0) > 1e-9 {
		t.Fatalf("ratio(a) = %v, want 0.4", got)
	}
}

// Equal ratios must rank in link-name order, so the report is stable
// run to run (the worst-first sort previously had no tie-break).
func TestDiagnoseCablesDeterministicTieBreak(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	// Insertion order deliberately scrambled; all carry identical bytes.
	names := []string{"rtr9", "rtr1", "rtr5", "rtr3", "rtr7"}
	var links []*Link
	for _, nm := range names {
		links = append(links, mkCarried(n, nm, 3e9))
	}
	for trial := 0; trial < 3; trial++ {
		rows := DiagnoseCables(links, 1)
		want := []string{"rtr1", "rtr3", "rtr5", "rtr7", "rtr9"}
		for i, r := range rows {
			if r.Name != want[i] {
				t.Fatalf("trial %d: rank %d = %s, want %s", trial, i, r.Name, want[i])
			}
		}
	}
}

func TestDegradedFabricVisibleInCongestion(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	src := rng.New(10)
	weak := f.RouterUpLinks()[3]
	f.Net.Degrade(weak, 0.3)
	done := 0
	for i := 0; i < 16; i++ {
		c := f.Cfg.Torus.CoordOf((i * 5) % f.Cfg.Torus.Nodes())
		f.StartClientFlow(c, i%32, RouteFGR, 2e8, src, func() { done++ })
	}
	eng.Run()
	if done != 16 {
		t.Fatalf("done = %d", done)
	}
	_ = topology.Coord{}
}
