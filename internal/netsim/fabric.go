package netsim

import (
	"fmt"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/topology"
)

// FabricConfig sets the link capacities of the end-to-end I/O path.
// Defaults mirror the Titan/Spider II deployment: Gemini torus links of
// a few GB/s with a slower Y dimension, LNET routers forwarding ~2.8
// GB/s each, and FDR InfiniBand at ~6 GB/s per port.
type FabricConfig struct {
	Torus topology.Torus

	GeminiXBps   float64
	GeminiYBps   float64
	GeminiZBps   float64
	InjectBps    float64 // compute node NIC injection
	RouterBps    float64 // LNET router forwarding capacity
	IBPortBps    float64 // router/OSS <-> leaf switch port
	CoreTrunkBps float64 // leaf <-> core aggregate trunk

	GeminiLatency sim.Time
	IBLatency     sim.Time
}

// Spider2Fabric returns the production-like configuration.
func Spider2Fabric() FabricConfig {
	return FabricConfig{
		Torus:         topology.TitanTorus(),
		GeminiXBps:    9.4e9,
		GeminiYBps:    4.7e9, // Gemini's Y dimension has half the links
		GeminiZBps:    9.4e9,
		InjectBps:     2.9e9,
		RouterBps:     2.8e9,
		IBPortBps:     6.0e9,
		CoreTrunkBps:  40e9,
		GeminiLatency: 2 * sim.Microsecond,
		IBLatency:     1 * sim.Microsecond,
	}
}

// Fabric is the built network: torus links, injection links, router
// forwarding links, and the two-tier InfiniBand SAN. OSS endpoints are
// identified by index; each OSS attaches to one leaf switch.
type Fabric struct {
	Cfg       FabricConfig
	Net       *Network
	Placement topology.Placement

	// gem[nodeIdx][dir] with dir 0..5 = +x,-x,+y,-y,+z,-z.
	gem    [][]*Link
	inject []*Link

	routerFwd []*Link // per router ID
	routerUp  []*Link // router -> its leaf switch port
	leafDown  []*Link // leaf switch -> attached OSS port group (shared per OSS)

	ossLeaf []int   // OSS index -> leaf switch
	ossPort []*Link // leaf -> OSS port

	coreUp   []*Link // leaf -> core
	coreDown []*Link // core -> leaf

	nLeaves int
	eng     *sim.Engine

	// groupMods caches Placement.ModulesInGroup per group: the FGR
	// router selection runs once per RPC, so it must not allocate.
	groupMods [][]topology.IOModule

	// Router failure state (see routerfail.go).
	failedRouters map[int]bool
	arn           bool
	StalledSends  uint64
	StallTime     sim.Time
	// DroppedFlows counts sends abandoned because no eligible router
	// remained (the whole fleet dead or blacklisted); OnDrop, when set,
	// is the error path invoked for each such send.
	DroppedFlows uint64
	OnDrop       func(oss int, bytes float64)

	// Tracer, when set, records fabric spans for sampled requests (and
	// self-samples raw sends that arrive with no request context). It
	// must be bound to this fabric's engine. See internal/spantrace.
	Tracer *spantrace.Tracer
}

const (
	dirXPlus = iota
	dirXMinus
	dirYPlus
	dirYMinus
	dirZPlus
	dirZMinus
)

// NewFabric builds the full I/O fabric. nOSS object storage servers are
// attached round-robin to the placement's leaf switches
// (placement.Groups * topology.SwitchesPerGroup leaves).
func NewFabric(eng *sim.Engine, cfg FabricConfig, placement topology.Placement, nOSS int) *Fabric {
	f := &Fabric{
		Cfg:       cfg,
		Net:       NewNetwork(eng),
		Placement: placement,
		nLeaves:   placement.Groups * topology.SwitchesPerGroup,
		eng:       eng,
	}
	f.groupMods = make([][]topology.IOModule, placement.Groups)
	for g := range f.groupMods {
		f.groupMods[g] = placement.ModulesInGroup(g)
	}
	t := cfg.Torus
	n := t.Nodes()
	f.gem = make([][]*Link, n)
	f.inject = make([]*Link, n)
	for i := 0; i < n; i++ {
		c := t.CoordOf(i)
		f.gem[i] = make([]*Link, 6)
		mk := func(dir int, cap float64, tag string) {
			f.gem[i][dir] = f.Net.NewLink(fmt.Sprintf("gem%v%s", c, tag), cap, cfg.GeminiLatency)
		}
		mk(dirXPlus, cfg.GeminiXBps, "+x")
		mk(dirXMinus, cfg.GeminiXBps, "-x")
		mk(dirYPlus, cfg.GeminiYBps, "+y")
		mk(dirYMinus, cfg.GeminiYBps, "-y")
		mk(dirZPlus, cfg.GeminiZBps, "+z")
		mk(dirZMinus, cfg.GeminiZBps, "-z")
		f.inject[i] = f.Net.NewLink(fmt.Sprintf("inj%v", c), cfg.InjectBps, cfg.GeminiLatency)
	}

	nRouters := 4 * len(placement.Modules)
	f.routerFwd = make([]*Link, nRouters)
	f.routerUp = make([]*Link, nRouters)
	for _, m := range placement.Modules {
		for k, rid := range m.RouterIDs {
			sw := m.Group*topology.SwitchesPerGroup + k
			f.routerFwd[rid] = f.Net.NewLink(fmt.Sprintf("rtr%d-fwd", rid), cfg.RouterBps, cfg.IBLatency)
			f.routerUp[rid] = f.Net.NewLink(fmt.Sprintf("rtr%d-sw%d", rid, sw), cfg.IBPortBps, cfg.IBLatency)
		}
	}

	f.coreUp = make([]*Link, f.nLeaves)
	f.coreDown = make([]*Link, f.nLeaves)
	for s := 0; s < f.nLeaves; s++ {
		f.coreUp[s] = f.Net.NewLink(fmt.Sprintf("leaf%d-core", s), cfg.CoreTrunkBps, cfg.IBLatency)
		f.coreDown[s] = f.Net.NewLink(fmt.Sprintf("core-leaf%d", s), cfg.CoreTrunkBps, cfg.IBLatency)
	}

	f.ossLeaf = make([]int, nOSS)
	f.ossPort = make([]*Link, nOSS)
	for i := 0; i < nOSS; i++ {
		leaf := i % f.nLeaves
		f.ossLeaf[i] = leaf
		f.ossPort[i] = f.Net.NewLink(fmt.Sprintf("leaf%d-oss%d", leaf, i), cfg.IBPortBps, cfg.IBLatency)
	}
	return f
}

// Reset returns the fabric to its just-built state without rebuilding
// the ~68k-link topology: router failures are recovered, ARN disabled,
// stall/drop counters zeroed, the tracer and drop hook detached, and
// the underlying network reset (degraded cables restored, link and flow
// counters cleared). Call it after the owning engine has drained and
// been Reset, so the capacity integrals restart at time zero; a reset
// with flows still in flight is refused. This is the seam that lets the
// warm pool (internal/serve) reuse a full-scale fabric across sessions
// while reproducing fresh-build fingerprints bit for bit.
func (f *Fabric) Reset() error {
	if err := f.Net.Reset(); err != nil {
		return err
	}
	f.failedRouters = nil
	f.arn = false
	f.StalledSends = 0
	f.StallTime = 0
	f.DroppedFlows = 0
	f.OnDrop = nil
	f.Tracer = nil
	return nil
}

// OSSLeaf returns the leaf switch an OSS attaches to.
func (f *Fabric) OSSLeaf(oss int) int { return f.ossLeaf[oss] }

// NumOSS returns the number of attached object storage servers.
func (f *Fabric) NumOSS() int { return len(f.ossPort) }

// NumRouters returns the number of LNET routers.
func (f *Fabric) NumRouters() int { return len(f.routerFwd) }

// routerSwitch returns the leaf switch router rid attaches to.
func (f *Fabric) routerSwitch(rid int) int {
	m := f.Placement.Modules[rid/4]
	return m.Group*topology.SwitchesPerGroup + rid%4
}

// geminiPath appends the dimension-ordered torus links from a to b to
// dst. It allocates nothing beyond dst's own growth, so pathVia can
// build a whole client->OSS path in one right-sized allocation — paths
// are built once per RPC, which makes this part of the flow-start hot
// path at full scale.
func (f *Fabric) geminiPath(dst []*Link, a, b topology.Coord) []*Link {
	t := f.Cfg.Torus
	cur := a
	t.Walk(a, b, func(next topology.Coord) {
		dst = append(dst, f.gem[t.Index(cur)][StepDir(t, cur, next)])
		cur = next
	})
	return dst
}

// StepDir returns the torus link direction (0..5: +x,-x,+y,-y,+z,-z —
// the per-node link ordering NewFabric and NewRegionFabric both build)
// for the unit hop cur->next produced by Torus.Walk. It is the shared
// seam between the monolithic fabric's path builder and the sharded
// partition's cross-region path segmenter (internal/shard).
func StepDir(t topology.Torus, cur, next topology.Coord) int {
	switch {
	case next.X != cur.X:
		if (cur.X+1)%t.NX == next.X {
			return dirXPlus
		}
		return dirXMinus
	case next.Y != cur.Y:
		if (cur.Y+1)%t.NY == next.Y {
			return dirYPlus
		}
		return dirYMinus
	default:
		if (cur.Z+1)%t.NZ == next.Z {
			return dirZPlus
		}
		return dirZMinus
	}
}

// RouteMode selects the routing discipline.
type RouteMode int

const (
	// RouteFGR is fine-grained routing: pick the router attached to the
	// destination's leaf switch whose module is topologically closest to
	// the client (Lesson 14's congestion avoidance).
	RouteFGR RouteMode = iota
	// RouteNaive picks a uniformly random router; traffic whose router
	// leaf differs from the destination leaf crosses the core switches.
	RouteNaive
)

// ClientPath computes the end-to-end link path from a compute client at
// coordinate c to OSS oss: injection, Gemini hops to the chosen router,
// router forwarding, router->leaf, (core crossing if leaves differ),
// leaf->OSS port.
func (f *Fabric) ClientPath(c topology.Coord, oss int, mode RouteMode, src *rng.Source) []*Link {
	rid := f.selectRouter(c, f.ossLeaf[oss], mode, src, nil)
	if rid < 0 {
		panic("netsim: no eligible router") //simlint:allow no-library-panic healthy-fabric query; failure-aware sends go through Send, which counts drops
	}
	return f.pathVia(c, oss, rid)
}

// CongestionReport summarizes fabric hot spots after a run.
type CongestionReport struct {
	MaxUtilization float64
	HotLink        string
	MeanGeminiUtil float64
	CoreBytes      float64 // bytes that crossed the core tier
}

// Congestion computes the report at the current simulation time.
func (f *Fabric) Congestion(now sim.Time) CongestionReport {
	r := CongestionReport{}
	r.MaxUtilization, r.HotLink = f.Net.MaxLinkUtilization()
	var sum float64
	var n int
	for _, node := range f.gem {
		for _, l := range node {
			sum += l.Utilization(now)
			n++
		}
	}
	if n > 0 {
		r.MeanGeminiUtil = sum / float64(n)
	}
	for _, l := range f.coreUp {
		r.CoreBytes += l.BytesCarried
	}
	for _, l := range f.coreDown {
		r.CoreBytes += l.BytesCarried
	}
	return r
}
