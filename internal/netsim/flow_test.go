package netsim

import (
	"math"
	"testing"

	"spiderfs/internal/sim"
)

func TestSingleFlowFullBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("l", 1e9, 0)
	done := false
	n.StartFlow([]*Link{l}, 1e9, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("flow never completed")
	}
	// 1 GB at 1 GB/s = 1 s.
	if math.Abs(eng.Now().Seconds()-1.0) > 1e-6 {
		t.Fatalf("completion at %v, want 1s", eng.Now())
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("l", 1e9, 0)
	completions := 0
	n.StartFlow([]*Link{l}, 1e9, func() { completions++ })
	n.StartFlow([]*Link{l}, 1e9, func() { completions++ })
	eng.Run()
	if completions != 2 {
		t.Fatalf("completions = %d", completions)
	}
	// Both share: each runs at 500 MB/s -> both finish at 2 s.
	if math.Abs(eng.Now().Seconds()-2.0) > 1e-6 {
		t.Fatalf("completion at %v, want 2s", eng.Now())
	}
}

func TestFlowDepartureRedistributesBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("l", 1e9, 0)
	var firstDone, secondDone sim.Time
	n.StartFlow([]*Link{l}, 0.5e9, func() { firstDone = eng.Now() })
	n.StartFlow([]*Link{l}, 1.0e9, func() { secondDone = eng.Now() })
	eng.Run()
	// Shared at 500 MB/s: first finishes at 1s. Second has 0.5 GB left,
	// then gets the full 1 GB/s -> finishes at 1.5s.
	if math.Abs(firstDone.Seconds()-1.0) > 1e-6 {
		t.Fatalf("first done at %v, want 1s", firstDone)
	}
	if math.Abs(secondDone.Seconds()-1.5) > 1e-6 {
		t.Fatalf("second done at %v, want 1.5s", secondDone)
	}
}

func TestMultiLinkBottleneck(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	fast := n.NewLink("fast", 10e9, 0)
	slow := n.NewLink("slow", 1e9, 0)
	n.StartFlow([]*Link{fast, slow}, 1e9, nil)
	eng.Run()
	if math.Abs(eng.Now().Seconds()-1.0) > 1e-6 {
		t.Fatalf("bottleneck not respected: done at %v", eng.Now())
	}
}

func TestLateArrivalSlowsExistingFlow(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("l", 1e9, 0)
	var done1 sim.Time
	n.StartFlow([]*Link{l}, 1e9, func() { done1 = eng.Now() })
	eng.At(sim.FromSeconds(0.5), func() {
		n.StartFlow([]*Link{l}, 1e9, nil)
	})
	eng.Run()
	// Flow 1: 0.5 GB in first 0.5 s, then 0.5 GB at 500 MB/s = 1 more
	// second -> done at 1.5 s.
	if math.Abs(done1.Seconds()-1.5) > 1e-6 {
		t.Fatalf("first flow done at %v, want 1.5s", done1)
	}
}

func TestLinkAccounting(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("l", 1e9, 0)
	n.StartFlow([]*Link{l}, 2e9, nil)
	eng.Run()
	if math.Abs(l.BytesCarried-2e9) > 1e3 {
		t.Fatalf("bytes carried = %g, want 2e9", l.BytesCarried)
	}
	if l.MaxFlows != 1 {
		t.Fatalf("max flows = %d", l.MaxFlows)
	}
	u := l.Utilization(eng.Now())
	if math.Abs(u-1.0) > 0.01 {
		t.Fatalf("utilization = %f, want ~1", u)
	}
}

func TestEmptyPathCompletesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	done := false
	n.StartFlow(nil, 100, func() { done = true })
	eng.Run()
	if !done || eng.Now() != 0 {
		t.Fatalf("empty-path flow: done=%v now=%v", done, eng.Now())
	}
}

func TestLatencyDelaysCompletion(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("l", 1e9, sim.Millisecond)
	n.StartFlow([]*Link{l}, 1e9, nil)
	eng.Run()
	want := 1.001
	if math.Abs(eng.Now().Seconds()-want) > 1e-6 {
		t.Fatalf("done at %v, want %vs", eng.Now(), want)
	}
}

func TestNetworkCounters(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("l", 1e9, 0)
	for i := 0; i < 5; i++ {
		n.StartFlow([]*Link{l}, 1e8, nil)
	}
	eng.Run()
	if n.FlowsStarted != 5 || n.FlowsCompleted != 5 {
		t.Fatalf("started=%d completed=%d", n.FlowsStarted, n.FlowsCompleted)
	}
	if math.Abs(n.BytesDelivered-5e8) > 1 {
		t.Fatalf("delivered = %g", n.BytesDelivered)
	}
}

func TestManyFlowsConvergeToFairShare(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("l", 1e9, 0)
	const k = 100
	var last sim.Time
	for i := 0; i < k; i++ {
		n.StartFlow([]*Link{l}, 1e7, func() { last = eng.Now() })
	}
	eng.Run()
	// k flows of 10 MB sharing 1 GB/s finish together at k*10MB/1GBps = 1s.
	if math.Abs(last.Seconds()-1.0) > 1e-3 {
		t.Fatalf("last completion at %v, want ~1s", last)
	}
}

func TestZeroCapacityLinkPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.NewLink("bad", 0, 0)
}

func TestZeroSizeFlowPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("l", 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.StartFlow([]*Link{l}, 0, nil)
}
