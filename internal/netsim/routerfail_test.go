package netsim

import (
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

func TestFailRouterStateAndRecovery(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	f.FailRouter(3)
	if !f.RouterFailed(3) || f.RouterFailed(4) {
		t.Fatal("failure state wrong")
	}
	f.RecoverRouter(3)
	if f.RouterFailed(3) {
		t.Fatal("recovery did not clear failure")
	}
}

func TestARNRoutesAroundDeadRouterImmediately(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	f.SetNotification(true)
	src := rng.New(1)
	c := topology.Coord{X: 1, Y: 1, Z: 1}
	oss := 0
	// Kill the FGR-preferred router for this (client, oss) pair.
	rid := f.selectRouter(c, f.OSSLeaf(oss), RouteFGR, src, nil)
	f.FailRouter(rid)
	done := false
	f.StartClientFlow(c, oss, RouteFGR, 1e8, src, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("flow never completed")
	}
	if f.StalledSends != 0 {
		t.Fatalf("ARN sender stalled %d times; notification should avoid the dead router", f.StalledSends)
	}
}

func TestNoARNStallsThenRetries(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	f.SetNotification(false)
	src := rng.New(2)
	c := topology.Coord{X: 1, Y: 1, Z: 1}
	oss := 0
	rid := f.selectRouter(c, f.OSSLeaf(oss), RouteFGR, src, nil)
	f.FailRouter(rid)
	done := false
	var doneAt sim.Time
	f.StartClientFlow(c, oss, RouteFGR, 1e8, src, func() { done = true; doneAt = eng.Now() })
	eng.Run()
	if !done {
		t.Fatal("flow never completed")
	}
	if f.StalledSends != 1 {
		t.Fatalf("stalls = %d, want exactly 1 (then blacklist + retry)", f.StalledSends)
	}
	if doneAt < RouterTimeout {
		t.Fatalf("completion at %v, before the %v router timeout", doneAt, RouterTimeout)
	}
	if f.StallTime != RouterTimeout {
		t.Fatalf("stall time = %v", f.StallTime)
	}
}

func TestRouterExhaustionDropsFlow(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	f.SetNotification(true)
	src := rng.New(3)
	for rid := 0; rid < f.NumRouters(); rid++ {
		f.FailRouter(rid)
	}
	var droppedOSS int
	var droppedBytes float64
	f.OnDrop = func(oss int, bytes float64) { droppedOSS, droppedBytes = oss, bytes }
	done := false
	f.StartClientFlow(topology.Coord{}, 2, RouteNaive, 1e6, src, func() { done = true })
	eng.Run()
	if done {
		t.Fatal("a dropped flow must not report completion")
	}
	if f.DroppedFlows != 1 {
		t.Fatalf("DroppedFlows = %d, want 1", f.DroppedFlows)
	}
	if droppedOSS != 2 || droppedBytes != 1e6 {
		t.Fatalf("OnDrop saw (%d, %g), want (2, 1e6)", droppedOSS, droppedBytes)
	}
	// Recovery makes the fabric usable again — the condition is
	// transient, not fatal.
	for rid := 0; rid < f.NumRouters(); rid++ {
		f.RecoverRouter(rid)
	}
	f.StartClientFlow(topology.Coord{}, 2, RouteNaive, 1e6, src, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("flow after recovery never completed")
	}
}

func TestNoARNExhaustionStallsThenDrops(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	f.SetNotification(false)
	src := rng.New(5)
	for rid := 0; rid < f.NumRouters(); rid++ {
		f.FailRouter(rid)
	}
	done := false
	f.StartClientFlow(topology.Coord{X: 1}, 0, RouteFGR, 1e6, src, func() { done = true })
	eng.Run()
	if done {
		t.Fatal("flow with every router dead must not complete")
	}
	if f.DroppedFlows != 1 {
		t.Fatalf("DroppedFlows = %d, want 1", f.DroppedFlows)
	}
	// Without ARN the sender discovered each dead router the hard way
	// before giving up: stalls were paid and recorded.
	if f.StalledSends == 0 || f.StallTime == 0 {
		t.Fatalf("stalls = %d / %v, want > 0 before the drop", f.StalledSends, f.StallTime)
	}
}

func TestHealthyFabricFlowsUnaffectedByARNFlag(t *testing.T) {
	for _, arn := range []bool{false, true} {
		eng := sim.NewEngine()
		f := smallFabric(eng)
		f.SetNotification(arn)
		src := rng.New(4)
		done := 0
		for i := 0; i < 8; i++ {
			f.StartClientFlow(topology.Coord{X: i % 5}, i%32, RouteFGR, 1e8, src, func() { done++ })
		}
		eng.Run()
		if done != 8 || f.StalledSends != 0 {
			t.Fatalf("arn=%v: done=%d stalls=%d", arn, done, f.StalledSends)
		}
	}
}
