package netsim

import (
	"fmt"

	"spiderfs/internal/topology"
)

// RegionFabric is the torus/injection slice of a Fabric restricted to a
// contiguous X-slab of the torus, built on its own Network (and hence
// its own sim.Engine). It is the partition seam the sharded engine
// (internal/shard) cuts the fabric along: dimension-ordered routing
// walks X before Y and Z, so a client->router path crosses each slab at
// most once and every Y/Z hop stays inside the final slab — slabs are
// the weakly-coupled regions the conservative barrier synchronizes.
//
// The slab owns all six Gemini links and the injection link of every
// node with X0 <= x < X1, including the +x/-x links that cross into the
// neighboring slab (a torus link belongs to its source node).
type RegionFabric struct {
	Cfg    FabricConfig
	Net    *Network
	X0, X1 int // slab covers torus nodes with X0 <= x < X1

	gem    [][]*Link // [local node][dir 0..5]
	inject []*Link   // [local node]
}

// NewRegionFabric builds the slab's links on net. Link capacities,
// latencies, and per-node link layout match NewFabric exactly, so a
// partition of slabs covers the same torus hardware as the monolithic
// fabric.
func NewRegionFabric(net *Network, cfg FabricConfig, x0, x1 int) *RegionFabric {
	t := cfg.Torus
	if x0 < 0 || x1 <= x0 || x1 > t.NX {
		panic(fmt.Sprintf("netsim: region slab [%d,%d) outside torus X dimension %d", x0, x1, t.NX)) //simlint:allow no-library-panic caller-contract assertion: invalid partition bounds are a builder bug
	}
	r := &RegionFabric{Cfg: cfg, Net: net, X0: x0, X1: x1}
	n := (x1 - x0) * t.NY * t.NZ
	r.gem = make([][]*Link, n)
	r.inject = make([]*Link, n)
	// Local index order mirrors the global torus index order (x-major,
	// then y, then z — see Torus.Index) restricted to the slab, so link
	// creation order — and with it every engine seq assignment during the
	// build — is deterministic and matches the monolithic fabric's walk.
	for x := x0; x < x1; x++ {
		for y := 0; y < t.NY; y++ {
			for z := 0; z < t.NZ; z++ {
				c := topology.Coord{X: x, Y: y, Z: z}
				i := r.local(c)
				r.gem[i] = make([]*Link, 6)
				mk := func(dir int, cap float64, tag string) {
					r.gem[i][dir] = net.NewLink(fmt.Sprintf("gem%v%s", c, tag), cap, cfg.GeminiLatency)
				}
				mk(dirXPlus, cfg.GeminiXBps, "+x")
				mk(dirXMinus, cfg.GeminiXBps, "-x")
				mk(dirYPlus, cfg.GeminiYBps, "+y")
				mk(dirYMinus, cfg.GeminiYBps, "-y")
				mk(dirZPlus, cfg.GeminiZBps, "+z")
				mk(dirZMinus, cfg.GeminiZBps, "-z")
				r.inject[i] = net.NewLink(fmt.Sprintf("inj%v", c), cfg.InjectBps, cfg.GeminiLatency)
			}
		}
	}
	return r
}

// local maps a slab coordinate to its index in the link arrays.
func (r *RegionFabric) local(c topology.Coord) int {
	t := r.Cfg.Torus
	return ((c.X-r.X0)*t.NY+c.Y)*t.NZ + c.Z
}

// Owns reports whether the slab owns node c (and so its links).
func (r *RegionFabric) Owns(c topology.Coord) bool { return c.X >= r.X0 && c.X < r.X1 }

// GeminiLink returns node c's torus link in direction dir (see StepDir).
func (r *RegionFabric) GeminiLink(c topology.Coord, dir int) *Link {
	if !r.Owns(c) {
		panic(fmt.Sprintf("netsim: node %v outside region slab [%d,%d)", c, r.X0, r.X1)) //simlint:allow no-library-panic caller-contract assertion: the path segmenter must route each hop to its owning slab
	}
	return r.gem[r.local(c)][dir]
}

// InjectLink returns node c's compute-NIC injection link.
func (r *RegionFabric) InjectLink(c topology.Coord) *Link {
	if !r.Owns(c) {
		panic(fmt.Sprintf("netsim: node %v outside region slab [%d,%d)", c, r.X0, r.X1)) //simlint:allow no-library-panic caller-contract assertion: flows inject at their home slab
	}
	return r.inject[r.local(c)]
}

// Links returns how many links the slab built (scale reporting).
func (r *RegionFabric) Links() int { return 7 * len(r.inject) }
