package netsim

import "sort"

// Degraded-cable support (§IV-A): "single cable failures can cause
// performance degradation in accessing the file system. OLCF has
// developed procedures for diagnosing a cable in-place." A degraded
// cable still links up but delivers a fraction of its bandwidth
// (symbol errors force retransmits/width reduction); the diagnosis
// procedure compares sibling links' delivered throughput.

// Degrade reduces the link's capacity to frac of nominal (0 < frac <=
// 1). Flows currently on the link are re-rated in insertion order;
// capacity-seconds are settled first so Utilization keeps reporting
// against the historically available bandwidth.
func (n *Network) Degrade(l *Link, frac float64) {
	if frac <= 0 || frac > 1 {
		panic("netsim: degrade fraction out of range") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	if l.nominal == 0 {
		l.nominal = l.Cap
	}
	l.accrueCap(n.eng.Now())
	l.Cap = l.nominal * frac
	n.reassign(n.affectedLink(l))
}

// Restore returns a degraded link to nominal capacity.
func (n *Network) Restore(l *Link) {
	if l.nominal != 0 {
		l.accrueCap(n.eng.Now())
		l.Cap = l.nominal
		l.nominal = 0
		n.reassign(n.affectedLink(l))
	}
}

// CableSuspect is one row of the in-place diagnosis report.
type CableSuspect struct {
	Name string
	// PerFlowBps is the link's mean delivered bytes/sec per unit of
	// flow-seconds observed — the metric that exposes a weak cable among
	// siblings carrying statistically identical traffic.
	Throughput float64
	// RatioToMedian below ~0.7 marks a suspect.
	RatioToMedian float64
}

// DiagnoseCables compares the utilization-normalized throughput of a
// sibling group of links (e.g. all router->leaf ports) at time now and
// returns them ranked worst-first. Links that carried no traffic are
// skipped — the procedure requires exercising the path, as OLCF's did.
// For even-sized sibling groups the median is the mean of the two
// middle throughputs (taking the upper-middle element alone biases
// RatioToMedian low); equal ratios are broken by link name so the
// ranking is deterministic.
func DiagnoseCables(links []*Link, nowSeconds float64) []CableSuspect {
	var rates []float64
	var rows []CableSuspect
	for _, l := range links {
		if l.BytesCarried <= 0 || nowSeconds <= 0 {
			continue
		}
		r := l.BytesCarried / nowSeconds
		rates = append(rates, r)
		rows = append(rows, CableSuspect{Name: l.Name, Throughput: r})
	}
	if len(rows) == 0 {
		return nil
	}
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	for i := range rows {
		if median > 0 {
			rows[i].RatioToMedian = rows[i].Throughput / median
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].RatioToMedian != rows[j].RatioToMedian {
			return rows[i].RatioToMedian < rows[j].RatioToMedian
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// RouterUpLinks exposes the router->leaf port links for cable
// diagnosis sweeps.
func (f *Fabric) RouterUpLinks() []*Link { return append([]*Link(nil), f.routerUp...) }
