package netsim

import (
	"math"
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// checkRegistries validates every intrusive invariant the ordered sets
// rely on: each active flow's linkIdx back-pointers land on its own
// registry entries, every registry entry points back at a live flow,
// and the active list's swap-remove indices are consistent.
func checkRegistries(t *testing.T, n *Network) {
	t.Helper()
	for i, f := range n.active {
		if f.activeIdx != i {
			t.Fatalf("active[%d].activeIdx = %d", i, f.activeIdx)
		}
		if len(f.linkIdx) != len(f.path) {
			t.Fatalf("flow has %d links but %d indices", len(f.path), len(f.linkIdx))
		}
		for k, l := range f.path {
			idx := f.linkIdx[k]
			if idx < 0 || int(idx) >= len(l.flows) {
				t.Fatalf("linkIdx[%d] = %d out of range [0,%d)", k, idx, len(l.flows))
			}
			e := l.flows[idx]
			if e.f != f || e.slot != k {
				t.Fatalf("registry entry mismatch: got (%p,%d), want (%p,%d)", e.f, e.slot, f, k)
			}
		}
	}
	for _, l := range n.links {
		for i, e := range l.flows {
			if e.f.linkIdx[e.slot] != int32(i) {
				t.Fatalf("link %q entry %d back-pointer = %d", l.Name, i, e.f.linkIdx[e.slot])
			}
			if e.f.activeIdx < 0 {
				t.Fatalf("link %q holds finished flow", l.Name)
			}
		}
	}
}

// TestOrderedRegistrySwapRemove churns flows across shared links with
// interleaved completions and validates the swap-remove bookkeeping
// after every step.
func TestOrderedRegistrySwapRemove(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	src := rng.New(5)
	links := make([]*Link, 6)
	for i := range links {
		links[i] = n.NewLink("l", 1e9, 0)
	}
	for i := 0; i < 400; i++ {
		a, b := src.Intn(6), src.Intn(6)
		path := []*Link{links[a]}
		if a != b {
			path = append(path, links[b])
		}
		n.StartFlow(path, 1e5+float64(src.Intn(1e6)), nil)
		checkRegistries(t, n)
		if i%7 == 3 {
			eng.RunFor(sim.Millisecond)
			checkRegistries(t, n)
		}
	}
	eng.Run()
	checkRegistries(t, n)
	if n.ActiveFlows() != 0 {
		t.Fatalf("%d flows still active after drain", n.ActiveFlows())
	}
	if n.FlowsStarted != 400 || n.FlowsCompleted != 400 {
		t.Fatalf("started %d, completed %d", n.FlowsStarted, n.FlowsCompleted)
	}
	for _, l := range n.links {
		if l.Flows() != 0 {
			t.Fatalf("link %q still has %d registry entries", l.Name, l.Flows())
		}
	}
}

// TestUnchangedRateKeepsCompletionEvent: a flow bottlenecked on link A
// must not be rescheduled when traffic on its non-bottleneck link B
// changes without moving its min share — the skip that makes fan-in
// congestion cheap.
func TestUnchangedRateKeepsCompletionEvent(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	slow := n.NewLink("slow", 1e8, 0)  // bottleneck: 100 MB/s
	fast := n.NewLink("fast", 10e9, 0) // plenty of slack
	f := n.StartFlow([]*Link{slow, fast}, 1e8, nil)
	ev := f.completion
	if ev == nil || !ev.Pending() {
		t.Fatal("no completion scheduled")
	}
	at := ev.Time()
	// Ten arrivals on the fast link: f's share there drops from 10 GB/s
	// toward 1 GB/s but stays far above the 100 MB/s bottleneck.
	for i := 0; i < 10; i++ {
		n.StartFlow([]*Link{fast}, 1e6, nil)
	}
	if f.completion != ev || !ev.Pending() || ev.Time() != at {
		t.Fatalf("non-bottleneck churn rescheduled the flow: event %p@%v, want %p@%v",
			f.completion, f.completion.Time(), ev, at)
	}
	// An arrival on the bottleneck must reschedule (rate halves). The
	// event allocation is reused via Engine.Reschedule, so the pointer
	// may stay the same — the time must move.
	n.StartFlow([]*Link{slow}, 1e8, nil)
	if f.completion.Time() == at {
		t.Fatal("bottleneck arrival did not move the completion event")
	}
	eng.Run()
	if n.FlowsCompleted != 12 {
		t.Fatalf("completed %d, want 12", n.FlowsCompleted)
	}
}

// TestUtilizationIntegratesCapacityChanges: utilization must report
// against the capacity that was actually available over the window.
// Before the capacity-seconds fix, a link degraded after carrying
// traffic divided history by the reduced Cap and could exceed 1.0.
func TestUtilizationIntegratesCapacityChanges(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("l", 1e9, 0)
	// 1s at full 1 GB/s, fully used.
	n.StartFlow([]*Link{l}, 1e9, nil)
	eng.Run() // now = 1s, BytesCarried = 1e9
	n.Degrade(l, 0.1)
	// 1s at 100 MB/s, fully used.
	n.StartFlow([]*Link{l}, 1e8, nil)
	eng.Run() // now = 2s
	// Available capacity over [0,2s] = 1e9 + 1e8; carried = 1.1e9.
	if u := l.Utilization(eng.Now()); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("utilization = %v, want 1.0 (old formula: %v)", u, 1.1e9/(1e8*2))
	}
	n.Restore(l)
	eng.RunFor(sim.Second) // 1 idle second at nominal
	// Available = 1e9 + 1e8 + 1e9 = 2.1e9; carried 1.1e9.
	if u := l.Utilization(eng.Now()); math.Abs(u-1.1e9/2.1e9) > 1e-9 {
		t.Fatalf("post-restore utilization = %v, want %v", u, 1.1e9/2.1e9)
	}
	if u := l.Utilization(eng.Now()); u > 1 {
		t.Fatalf("utilization %v exceeds 1", u)
	}
}

// TestDegradeRestoreReRatesOrderedFlows exercises Degrade/Restore on a
// link with several flows and checks rates and registry invariants.
func TestDegradeRestoreReRatesOrderedFlows(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("l", 1e9, 0)
	var flows []*Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, n.StartFlow([]*Link{l}, 1e9, nil))
	}
	for _, f := range flows {
		if f.Rate() != 0.25e9 {
			t.Fatalf("rate = %g, want 250 MB/s", f.Rate())
		}
	}
	n.Degrade(l, 0.5)
	for _, f := range flows {
		if f.Rate() != 0.125e9 {
			t.Fatalf("degraded rate = %g, want 125 MB/s", f.Rate())
		}
	}
	checkRegistries(t, n)
	n.Restore(l)
	for _, f := range flows {
		if f.Rate() != 0.25e9 {
			t.Fatalf("restored rate = %g, want 250 MB/s", f.Rate())
		}
	}
	eng.Run()
	checkRegistries(t, n)
}

// TestLongPathSpillsIndexBuffer covers the fallback when a path is
// longer than the inline index buffer.
func TestLongPathSpillsIndexBuffer(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	path := make([]*Link, linkIdxInline+5)
	for i := range path {
		path[i] = n.NewLink("l", 1e9, 0)
	}
	done := false
	n.StartFlow(path, 1e9, func() { done = true })
	checkRegistries(t, n)
	eng.Run()
	if !done {
		t.Fatal("long-path flow never completed")
	}
	for _, l := range n.links {
		if l.Flows() != 0 {
			t.Fatal("long-path flow left registry entries")
		}
	}
}
