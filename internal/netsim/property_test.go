package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// Property: total bytes delivered equals the sum of flow sizes,
// regardless of arrival times, sizes, and topology (conservation).
func TestFlowConservationProperty(t *testing.T) {
	f := func(seed uint64, sizesRaw [6]uint32, startsRaw [6]uint16) bool {
		eng := sim.NewEngine()
		n := NewNetwork(eng)
		src := rng.New(seed)
		links := []*Link{
			n.NewLink("a", 1e9, 0),
			n.NewLink("b", 2e9, 0),
			n.NewLink("c", 0.5e9, 0),
		}
		var want float64
		for i := range sizesRaw {
			size := float64(sizesRaw[i]%1000000) + 1
			want += size
			// Random 1-3 link path.
			var path []*Link
			for j := 0; j <= src.Intn(3); j++ {
				path = append(path, links[src.Intn(3)])
			}
			at := sim.Time(startsRaw[i]) * sim.Millisecond
			eng.At(at, func() { n.StartFlow(path, size, nil) })
		}
		eng.Run()
		return n.FlowsCompleted == 6 && math.Abs(n.BytesDelivered-want) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a link never carries more than capacity x elapsed bytes.
func TestLinkCapacityRespectedProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		eng := sim.NewEngine()
		n := NewNetwork(eng)
		src := rng.New(seed)
		l := n.NewLink("l", 1e9, 0)
		k := int(kRaw%20) + 1
		for i := 0; i < k; i++ {
			at := sim.Time(src.Intn(100)) * sim.Millisecond
			size := float64(src.Intn(1e8) + 1e6)
			eng.At(at, func() { n.StartFlow([]*Link{l}, size, nil) })
		}
		eng.Run()
		elapsed := eng.Now().Seconds()
		return l.BytesCarried <= 1e9*elapsed*1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds give bit-identical outcomes (end time and
// delivered bytes) — the determinism the test suite rests on.
func TestNetworkDeterminismProperty(t *testing.T) {
	run := func(seed uint64) (sim.Time, float64) {
		eng := sim.NewEngine()
		n := NewNetwork(eng)
		src := rng.New(seed)
		links := make([]*Link, 5)
		for i := range links {
			links[i] = n.NewLink("l", float64(1+i)*1e8, 0)
		}
		for i := 0; i < 30; i++ {
			path := []*Link{links[src.Intn(5)], links[src.Intn(5)]}
			if path[0] == path[1] {
				path = path[:1]
			}
			at := sim.Time(src.Intn(1000)) * sim.Millisecond
			size := float64(src.Intn(1e8) + 1)
			eng.At(at, func() { n.StartFlow(path, size, nil) })
		}
		eng.Run()
		return eng.Now(), n.BytesDelivered
	}
	f := func(seed uint64) bool {
		t1, b1 := run(seed)
		t2, b2 := run(seed)
		return t1 == t2 && b1 == b2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
