package netsim

import (
	"testing"

	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// A partition of region slabs must rebuild exactly the torus/injection
// hardware the monolithic fabric builds: same per-node link layout, same
// capacities and latencies, every node owned by exactly one slab.
func TestRegionFabricMatchesMonolithicTorus(t *testing.T) {
	cfg := Spider2Fabric()
	cfg.Torus = topology.Torus{NX: 6, NY: 4, NZ: 4}
	tor := cfg.Torus

	eng := sim.NewEngine()
	mono := NewFabric(eng, cfg, topology.PlaceRouters(topology.CabinetGrid{Cols: 6, Rows: 2}, tor, 4, 2), 8)

	bounds := []int{0, 2, 4, 6} // three slabs of width 2
	owners := make([]int, tor.Nodes())
	for i := range owners {
		owners[i] = -1
	}
	for s := 0; s+1 < len(bounds); s++ {
		reng := sim.NewEngine()
		rf := NewRegionFabric(NewNetwork(reng), cfg, bounds[s], bounds[s+1])
		if got, want := rf.Links(), 7*(bounds[s+1]-bounds[s])*tor.NY*tor.NZ; got != want {
			t.Fatalf("slab %d built %d links, want %d", s, got, want)
		}
		for i := 0; i < tor.Nodes(); i++ {
			c := tor.CoordOf(i)
			if !rf.Owns(c) {
				continue
			}
			if owners[i] >= 0 {
				t.Fatalf("node %v owned by slabs %d and %d", c, owners[i], s)
			}
			owners[i] = s
			for dir := 0; dir < 6; dir++ {
				got := rf.GeminiLink(c, dir)
				want := mono.gem[i][dir]
				if got.Cap != want.Cap || got.Latency != want.Latency || got.Name != want.Name {
					t.Fatalf("node %v dir %d: slab link %q cap=%v lat=%v, monolithic %q cap=%v lat=%v",
						c, dir, got.Name, got.Cap, got.Latency, want.Name, want.Cap, want.Latency)
				}
			}
			gi, wi := rf.InjectLink(c), mono.inject[i]
			if gi.Cap != wi.Cap || gi.Latency != wi.Latency || gi.Name != wi.Name {
				t.Fatalf("node %v inject: slab %q cap=%v, monolithic %q cap=%v", c, gi.Name, gi.Cap, wi.Name, wi.Cap)
			}
		}
	}
	for i, s := range owners {
		if s < 0 {
			t.Fatalf("node %v owned by no slab", tor.CoordOf(i))
		}
	}
}

func TestRegionFabricOwnershipPanics(t *testing.T) {
	cfg := Spider2Fabric()
	cfg.Torus = topology.Torus{NX: 4, NY: 2, NZ: 2}
	rf := NewRegionFabric(NewNetwork(sim.NewEngine()), cfg, 0, 2)
	outside := topology.Coord{X: 3, Y: 0, Z: 0}
	if rf.Owns(outside) {
		t.Fatalf("slab [0,2) claims to own %v", outside)
	}
	mustPanic(t, "GeminiLink outside slab", func() { rf.GeminiLink(outside, dirXPlus) })
	mustPanic(t, "InjectLink outside slab", func() { rf.InjectLink(outside) })
	mustPanic(t, "inverted slab bounds", func() { NewRegionFabric(NewNetwork(sim.NewEngine()), cfg, 2, 2) })
}

// StepDir must agree with the per-node link ordering for every unit hop,
// including wraparound hops in both directions.
func TestStepDirCoversAllHops(t *testing.T) {
	tor := topology.Torus{NX: 5, NY: 3, NZ: 4}
	type hop struct {
		d       topology.Coord
		wantDir int
	}
	at := func(c topology.Coord) topology.Coord {
		return topology.Coord{X: (c.X + tor.NX) % tor.NX, Y: (c.Y + tor.NY) % tor.NY, Z: (c.Z + tor.NZ) % tor.NZ}
	}
	for i := 0; i < tor.Nodes(); i++ {
		cur := tor.CoordOf(i)
		for _, h := range []hop{
			{topology.Coord{X: 1}, dirXPlus}, {topology.Coord{X: -1}, dirXMinus},
			{topology.Coord{Y: 1}, dirYPlus}, {topology.Coord{Y: -1}, dirYMinus},
			{topology.Coord{Z: 1}, dirZPlus}, {topology.Coord{Z: -1}, dirZMinus},
		} {
			next := at(topology.Coord{X: cur.X + h.d.X, Y: cur.Y + h.d.Y, Z: cur.Z + h.d.Z})
			if got := StepDir(tor, cur, next); got != h.wantDir {
				t.Fatalf("StepDir(%v -> %v) = %d, want %d", cur, next, got, h.wantDir)
			}
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}
