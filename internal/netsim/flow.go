// Package netsim is a flow-level network simulator for the Spider I/O
// path: Titan's Gemini 3D torus, the LNET router layer, and the SION
// InfiniBand SAN. Transfers are modeled as fluid flows that share link
// bandwidth; rates are reassigned whenever a flow starts or finishes.
//
// Rate assignment is egalitarian fair share: a flow's rate is the
// minimum over its links of capacity/activeFlows. This is a conservative
// approximation of max-min fairness (a link whose flows are bottlenecked
// elsewhere does not redistribute its slack), which errs toward
// congestion — appropriate for studying the congestion phenomena of
// Lesson 14.
package netsim

import (
	"fmt"

	"spiderfs/internal/sim"
)

// Link is a unidirectional channel with fixed capacity shared equally by
// the flows crossing it.
type Link struct {
	Name    string
	Cap     float64  // bytes per second
	Latency sim.Time // propagation/forwarding delay added once per flow

	// nominal remembers pre-degradation capacity (see cable.go).
	nominal float64

	flows map[*Flow]struct{}

	// Congestion accounting.
	BytesCarried float64
	MaxFlows     int
}

// Flows returns the number of flows currently crossing the link.
func (l *Link) Flows() int { return len(l.flows) }

// Utilization returns the fraction of capacity used over [0, now].
func (l *Link) Utilization(now sim.Time) float64 {
	if now <= 0 || l.Cap <= 0 {
		return 0
	}
	return l.BytesCarried / (l.Cap * now.Seconds())
}

// Flow is one in-flight transfer.
type Flow struct {
	path       []*Link
	size       float64
	remaining  float64
	rate       float64
	lastUpdate sim.Time
	completion *sim.Event
	done       func()
	net        *Network
}

// Rate returns the flow's current share in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns bytes not yet delivered (as of the last rate event).
func (f *Flow) Remaining() float64 { return f.remaining }

// Network owns links and flows for one engine.
type Network struct {
	eng    *sim.Engine
	links  []*Link
	active map[*Flow]struct{}

	FlowsStarted   uint64
	FlowsCompleted uint64
	BytesDelivered float64
}

// NewNetwork creates an empty network on eng.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{eng: eng, active: map[*Flow]struct{}{}}
}

// Sync brings every active flow's progress accounting up to the current
// time, so link counters can be read mid-transfer (live monitoring and
// cable diagnosis need this).
func (n *Network) Sync() {
	for f := range n.active {
		n.advance(f)
	}
}

// NewLink creates and registers a link.
func (n *Network) NewLink(name string, capBps float64, latency sim.Time) *Link {
	if capBps <= 0 {
		panic(fmt.Sprintf("netsim: link %q with non-positive capacity", name))
	}
	l := &Link{Name: name, Cap: capBps, Latency: latency, flows: map[*Flow]struct{}{}}
	n.links = append(n.links, l)
	return l
}

// Links returns all registered links (congestion reporting).
func (n *Network) Links() []*Link { return n.links }

// StartFlow launches a transfer of size bytes across path and calls done
// (may be nil) at completion. An empty path completes after zero time.
func (n *Network) StartFlow(path []*Link, size float64, done func()) *Flow {
	if size <= 0 {
		panic("netsim: flow with non-positive size")
	}
	n.FlowsStarted++
	f := &Flow{path: path, size: size, remaining: size, lastUpdate: n.eng.Now(), done: done, net: n}
	if len(path) == 0 {
		n.eng.After(0, func() { n.finish(f) })
		return f
	}
	n.active[f] = struct{}{}
	var latency sim.Time
	for _, l := range path {
		l.flows[f] = struct{}{}
		if len(l.flows) > l.MaxFlows {
			l.MaxFlows = len(l.flows)
		}
		latency += l.Latency
	}
	// Fold path latency into the transfer by pre-charging it as time the
	// flow spends before data moves: schedule the first rate assignment
	// after the latency. For the bulk transfers Spider carries, latency
	// is negligible against transfer time; this keeps bookkeeping simple.
	f.lastUpdate = n.eng.Now() + latency
	n.reassign(f.affected())
	return f
}

// affected returns every flow sharing a link with f (including f).
func (f *Flow) affected() map[*Flow]struct{} {
	set := map[*Flow]struct{}{f: {}}
	for _, l := range f.path {
		for g := range l.flows {
			set[g] = struct{}{}
		}
	}
	return set
}

// advance accrues progress at the current rate up to now.
func (n *Network) advance(f *Flow) {
	now := n.eng.Now()
	dt := now - f.lastUpdate
	if dt > 0 && f.rate > 0 {
		moved := f.rate * dt.Seconds()
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		for _, l := range f.path {
			l.BytesCarried += moved
		}
	}
	if now > f.lastUpdate {
		f.lastUpdate = now
	}
}

// reassign recomputes rates and completion events for the given flows.
func (n *Network) reassign(flows map[*Flow]struct{}) {
	for f := range flows {
		n.advance(f)
		rate := -1.0
		for _, l := range f.path {
			share := l.Cap / float64(len(l.flows))
			if rate < 0 || share < rate {
				rate = share
			}
		}
		if rate < 0 {
			rate = 0
		}
		f.rate = rate
		f.completion.Cancel()
		f.completion = nil
		if rate > 0 {
			dur := sim.FromSeconds(f.remaining / rate)
			start := f.lastUpdate
			if start < n.eng.Now() {
				start = n.eng.Now()
			}
			at := start + dur
			if at < n.eng.Now() {
				at = n.eng.Now()
			}
			ff := f
			f.completion = n.eng.At(at, func() { n.finish(ff) })
		}
	}
}

// finish tears the flow down and redistributes its bandwidth.
func (n *Network) finish(f *Flow) {
	n.advance(f)
	n.BytesDelivered += f.size
	f.remaining = 0
	aff := f.affected()
	delete(aff, f)
	for _, l := range f.path {
		delete(l.flows, f)
	}
	f.rate = 0
	delete(n.active, f)
	n.FlowsCompleted++
	n.reassign(aff)
	if f.done != nil {
		f.done()
	}
}

// MaxLinkUtilization returns the highest utilization across links and
// that link's name — the hot-spot metric of Lesson 14.
func (n *Network) MaxLinkUtilization() (float64, string) {
	now := n.eng.Now()
	best, name := 0.0, ""
	for _, l := range n.links {
		if u := l.Utilization(now); u > best {
			best, name = u, l.Name
		}
	}
	return best, name
}
