// Package netsim is a flow-level network simulator for the Spider I/O
// path: Titan's Gemini 3D torus, the LNET router layer, and the SION
// InfiniBand SAN. Transfers are modeled as fluid flows that share link
// bandwidth; rates are reassigned whenever a flow starts or finishes.
//
// Rate assignment is egalitarian fair share: a flow's rate is the
// minimum over its links of capacity/activeFlows. This is a conservative
// approximation of max-min fairness (a link whose flows are bottlenecked
// elsewhere does not redistribute its slack), which errs toward
// congestion — appropriate for studying the congestion phenomena of
// Lesson 14.
//
// Determinism contract: all flow/link bookkeeping uses insertion-ordered
// intrusive sets (per-link slices with swap-remove, a per-flow epoch
// stamp for affected-set collection), never Go maps, so completion
// events are scheduled — and their seq-based FIFO tie-breaks assigned —
// in an order independent of map randomization. This is also the hot
// path at Spider II scale (tens of thousands of concurrent flows), so
// the start/finish path performs no map operations and skips
// rescheduling flows whose fair-share rate did not change.
package netsim

import (
	"fmt"

	"spiderfs/internal/sim"
)

// linkSlot is one entry of a link's intrusive flow registry. slot is the
// index of this link within the flow's path, so swap-remove can repair
// the moved flow's back-pointer in O(1).
type linkSlot struct {
	f    *Flow
	slot int
}

// Link is a unidirectional channel with fixed capacity shared equally by
// the flows crossing it.
type Link struct {
	Name    string
	Cap     float64  // bytes per second
	Latency sim.Time // propagation/forwarding delay added once per flow

	// nominal remembers pre-degradation capacity (see cable.go).
	nominal float64

	// flows is the insertion-ordered registry of flows crossing the
	// link; flowIdx back-pointers live in each flow's linkIdx.
	flows []linkSlot

	// Capacity-seconds integration across Degrade/Restore, so
	// Utilization reports against the capacity that was actually
	// available over the window rather than the instantaneous Cap.
	capSecs  float64  // integral of Cap dt over [creation, capSince]
	capSince sim.Time // last capacity change (or creation) time

	// Congestion accounting.
	BytesCarried float64
	MaxFlows     int
}

// Flows returns the number of flows currently crossing the link.
func (l *Link) Flows() int { return len(l.flows) }

// accrueCap integrates capacity-seconds up to now. Called before every
// capacity change and by Utilization.
func (l *Link) accrueCap(now sim.Time) {
	if now > l.capSince {
		l.capSecs += l.Cap * (now - l.capSince).Seconds()
		l.capSince = now
	}
}

// capacitySeconds returns the integral of capacity over [creation, now].
func (l *Link) capacitySeconds(now sim.Time) float64 {
	cs := l.capSecs
	if now > l.capSince {
		cs += l.Cap * (now - l.capSince).Seconds()
	}
	return cs
}

// Utilization returns the fraction of the capacity available over
// [creation, now] that was actually used. Capacity changes from
// Degrade/Restore are integrated, so historical utilization stays in
// [0, 1] instead of being misreported against the instantaneous Cap.
func (l *Link) Utilization(now sim.Time) float64 {
	cs := l.capacitySeconds(now)
	if cs <= 0 {
		return 0
	}
	return l.BytesCarried / cs
}

// attach appends f (whose path index is slot) to the link's registry.
func (l *Link) attach(f *Flow, slot int) {
	f.linkIdx[slot] = int32(len(l.flows))
	l.flows = append(l.flows, linkSlot{f: f, slot: slot})
	if len(l.flows) > l.MaxFlows {
		l.MaxFlows = len(l.flows)
	}
}

// detach swap-removes the registry entry at index idx, repairing the
// moved flow's back-pointer.
func (l *Link) detach(idx int32) {
	last := len(l.flows) - 1
	moved := l.flows[last]
	l.flows[idx] = moved
	moved.f.linkIdx[moved.slot] = idx
	l.flows[last] = linkSlot{}
	l.flows = l.flows[:last]
}

// linkIdxInline is the path length covered by a Flow's inline index
// buffer: the longest Titan client->OSS path (torus diameter 12+8+12
// plus injection, router, SAN and OSS-port hops) fits, so the
// start/finish path does not allocate a separate index slice.
const linkIdxInline = 40

// Flow is one in-flight transfer.
type Flow struct {
	path []*Link
	// linkIdx[k] is this flow's index in path[k].flows — the intrusive
	// half of the link registries. It aliases idxBuf for the path
	// lengths any real fabric produces.
	linkIdx    []int32
	idxBuf     [linkIdxInline]int32
	size       float64
	remaining  float64
	rate       float64
	lastUpdate sim.Time
	completion *sim.Event
	done       func()
	net        *Network
	activeIdx  int    // index in Network.active, -1 once finished
	stamp      uint64 // epoch marker for affected-set collection
}

// Rate returns the flow's current share in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns bytes not yet delivered (as of the last rate event).
func (f *Flow) Remaining() float64 { return f.remaining }

// Network owns links and flows for one engine.
type Network struct {
	eng    *sim.Engine
	links  []*Link
	active []*Flow // insertion-ordered; swap-remove via Flow.activeIdx

	epoch   uint64  // current affected-set collection epoch
	scratch []*Flow // reused affected-set buffer (no per-event allocation)

	FlowsStarted   uint64
	FlowsCompleted uint64
	BytesDelivered float64
}

// NewNetwork creates an empty network on eng.
func NewNetwork(eng *sim.Engine) *Network {
	return &Network{eng: eng}
}

// ActiveFlows returns the number of in-flight transfers.
func (n *Network) ActiveFlows() int { return len(n.active) }

// Sync brings every active flow's progress accounting up to the current
// time, so link counters can be read mid-transfer (live monitoring and
// cable diagnosis need this).
func (n *Network) Sync() {
	for _, f := range n.active {
		n.advance(f)
	}
}

// NewLink creates and registers a link.
func (n *Network) NewLink(name string, capBps float64, latency sim.Time) *Link {
	if capBps <= 0 {
		panic(fmt.Sprintf("netsim: link %q with non-positive capacity", name)) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	l := &Link{Name: name, Cap: capBps, Latency: latency, capSince: n.eng.Now()}
	n.links = append(n.links, l)
	return l
}

// Links returns all registered links (congestion reporting).
func (n *Network) Links() []*Link { return n.links }

// StartFlow launches a transfer of size bytes across path and calls done
// (may be nil) at completion. An empty path completes after zero time.
func (n *Network) StartFlow(path []*Link, size float64, done func()) *Flow {
	if size <= 0 {
		panic("netsim: flow with non-positive size") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	n.FlowsStarted++
	f := &Flow{path: path, size: size, remaining: size, lastUpdate: n.eng.Now(),
		done: done, net: n, activeIdx: -1}
	if len(path) == 0 {
		n.eng.After(0, func() { n.finish(f) })
		return f
	}
	f.activeIdx = len(n.active)
	n.active = append(n.active, f)
	if len(path) <= linkIdxInline {
		f.linkIdx = f.idxBuf[:len(path)]
	} else {
		f.linkIdx = make([]int32, len(path))
	}
	var latency sim.Time
	for k, l := range path {
		l.attach(f, k)
		latency += l.Latency
	}
	// Fold path latency into the transfer by pre-charging it as time the
	// flow spends before data moves: schedule the first rate assignment
	// after the latency. For the bulk transfers Spider carries, latency
	// is negligible against transfer time; this keeps bookkeeping simple.
	f.lastUpdate = n.eng.Now() + latency
	n.reassign(n.affected(f))
	return f
}

// affected fills the network's scratch buffer with every flow sharing a
// link with f (f itself first), in deterministic order: path order, then
// each link's registry in insertion order. The per-flow epoch stamp
// deduplicates without allocating; the returned slice is valid until the
// next affected/affectedLink call.
func (n *Network) affected(f *Flow) []*Flow {
	n.epoch++
	s := n.scratch[:0]
	f.stamp = n.epoch
	s = append(s, f)
	for _, l := range f.path {
		for _, e := range l.flows {
			if e.f.stamp != n.epoch {
				e.f.stamp = n.epoch
				s = append(s, e.f)
			}
		}
	}
	n.scratch = s
	return s
}

// affectedLink collects l's flows in insertion order into the scratch
// buffer (same validity rules as affected).
func (n *Network) affectedLink(l *Link) []*Flow {
	n.epoch++
	s := n.scratch[:0]
	for _, e := range l.flows {
		if e.f.stamp != n.epoch {
			e.f.stamp = n.epoch
			s = append(s, e.f)
		}
	}
	n.scratch = s
	return s
}

// advance accrues progress at the current rate up to now.
func (n *Network) advance(f *Flow) {
	now := n.eng.Now()
	dt := now - f.lastUpdate
	if dt > 0 && f.rate > 0 {
		moved := f.rate * dt.Seconds()
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		for _, l := range f.path {
			l.BytesCarried += moved
		}
	}
	if now > f.lastUpdate {
		f.lastUpdate = now
	}
}

// reassign recomputes rates and completion events for the given flows,
// in slice order (the caller guarantees a deterministic order). A flow
// whose fair-share rate is unchanged keeps its scheduled completion
// event untouched: with a constant rate, lazy progress accounting and
// the already-scheduled completion time both remain exact, so the
// cancel+reschedule (two heap operations and an allocation) is skipped.
func (n *Network) reassign(flows []*Flow) {
	for _, f := range flows {
		rate := -1.0
		for _, l := range f.path {
			share := l.Cap / float64(len(l.flows))
			if rate < 0 || share < rate {
				rate = share
			}
		}
		if rate < 0 {
			rate = 0
		}
		if rate == f.rate && f.completion.Pending() {
			continue
		}
		n.advance(f)
		f.rate = rate
		if rate <= 0 {
			f.completion.Cancel()
			f.completion = nil
			continue
		}
		dur := sim.FromSeconds(f.remaining / rate)
		start := f.lastUpdate
		if start < n.eng.Now() {
			start = n.eng.Now()
		}
		at := start + dur
		if at < n.eng.Now() {
			at = n.eng.Now()
		}
		// Move the existing completion event when possible: same FIFO
		// semantics as cancel+reschedule (fresh sequence number), but no
		// allocation and no canceled tombstone left in the event heap.
		if f.completion != nil && n.eng.Reschedule(f.completion, at) {
			continue
		}
		ff := f
		f.completion = n.eng.At(at, func() { n.finish(ff) })
	}
}

// finish tears the flow down and redistributes its bandwidth.
func (n *Network) finish(f *Flow) {
	n.advance(f)
	n.BytesDelivered += f.size
	f.remaining = 0
	aff := n.affected(f) // aff[0] is f itself
	for k, l := range f.path {
		l.detach(f.linkIdx[k])
	}
	f.rate = 0
	f.completion = nil
	if f.activeIdx >= 0 {
		last := len(n.active) - 1
		moved := n.active[last]
		n.active[f.activeIdx] = moved
		moved.activeIdx = f.activeIdx
		n.active[last] = nil
		n.active = n.active[:last]
		f.activeIdx = -1
	}
	n.FlowsCompleted++
	n.reassign(aff[1:])
	if f.done != nil {
		f.done()
	}
}

// reset returns the link to its as-built state at time now: nominal
// capacity restored (undoing any Degrade), congestion counters zeroed,
// and the capacity-seconds integral restarted. The flow registry must
// already be empty — Network.Reset refuses to run with flows in flight.
func (l *Link) reset(now sim.Time) {
	if l.nominal != 0 {
		l.Cap = l.nominal
		l.nominal = 0
	}
	l.capSecs = 0
	l.capSince = now
	l.BytesCarried = 0
	l.MaxFlows = 0
}

// Reset returns the network to its just-built state — links keep their
// topology and capacities (degraded links are restored to nominal) but
// every counter and utilization integral starts over at the engine's
// current time. This is the warm-pool seam: a reset network on a reset
// engine must be indistinguishable from a freshly built one, so resets
// with transfers still in flight are refused (tearing flows down
// mid-transfer would have to invent completion semantics).
func (n *Network) Reset() error {
	if len(n.active) > 0 {
		return fmt.Errorf("netsim: reset with %d flows in flight; drain the engine first", len(n.active))
	}
	n.FlowsStarted = 0
	n.FlowsCompleted = 0
	n.BytesDelivered = 0
	n.epoch = 0
	n.scratch = n.scratch[:0]
	now := n.eng.Now()
	for _, l := range n.links {
		l.reset(now)
	}
	return nil
}

// MaxLinkUtilization returns the highest utilization across links and
// that link's name — the hot-spot metric of Lesson 14.
func (n *Network) MaxLinkUtilization() (float64, string) {
	now := n.eng.Now()
	best, name := 0.0, ""
	for _, l := range n.links {
		if u := l.Utilization(now); u > best {
			best, name = u, l.Name
		}
	}
	return best, name
}
