package netsim

import (
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// congestionRun drives a deliberately nasty scheduling scenario: many
// identically-sized flows funneled through one bottleneck link, so they
// all complete at the same instant and their completion order — and the
// RNG draws their done() callbacks make — is decided purely by event
// scheduling order. Before the ordered intrusive registries, reassign
// iterated a map[*Flow]struct{} here, so the engine's FIFO tie-break
// seq was assigned in randomized map order and this trace differed run
// to run. It returns the completion order, the RNG values drawn in the
// callbacks, and the engine's event-trace fingerprint.
func congestionRun(seed uint64) (order []int, draws []uint64, trace uint64) {
	eng := sim.NewEngine()
	th := sim.NewTraceHash()
	eng.SetTrace(th.Observe)
	n := NewNetwork(eng)
	src := rng.New(seed)

	bottleneck := n.NewLink("bottleneck", 1e9, 0)
	spokes := make([]*Link, 7)
	for i := range spokes {
		spokes[i] = n.NewLink("spoke", 8e9, 0)
	}
	const flows = 96
	for i := 0; i < flows; i++ {
		id := i
		path := []*Link{spokes[src.Intn(len(spokes))], bottleneck}
		n.StartFlow(path, 1e7, func() {
			order = append(order, id)
			draws = append(draws, src.Uint64())
		})
	}
	// A second wave lands mid-flight so starts interleave with the
	// steady state (reassign churn on a congested link).
	eng.At(sim.FromSeconds(0.1), func() {
		for i := 0; i < flows/2; i++ {
			id := flows + i
			path := []*Link{spokes[src.Intn(len(spokes))], bottleneck}
			n.StartFlow(path, 1e7, func() {
				order = append(order, id)
				draws = append(draws, src.Uint64())
			})
		}
	})
	eng.Run()
	return order, draws, th.Sum()
}

// TestSameInstantCompletionsDeterministic is the determinism regression
// test for the ordered flow registries: two in-process runs must agree
// on the exact completion order, the RNG stream consumed by completion
// callbacks, and the engine event trace. Reverting reassign (or the
// affected-set collection) to map iteration makes this fail with
// overwhelming probability — 96 same-instant completions fire in map
// order, and Go randomizes that order per run.
func TestSameInstantCompletionsDeterministic(t *testing.T) {
	o1, d1, t1 := congestionRun(11)
	o2, d2, t2 := congestionRun(11)
	if t1 != t2 {
		t.Fatalf("event traces differ: %x vs %x", t1, t2)
	}
	if len(o1) != len(o2) || len(o1) != 144 {
		t.Fatalf("completion counts: %d vs %d, want 144", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("completion order diverges at %d: flow %d vs flow %d", i, o1[i], o2[i])
		}
		if d1[i] != d2[i] {
			t.Fatalf("callback RNG stream diverges at %d", i)
		}
	}
}

// TestFabricResetDeterministicReuse is the warm-pool seam regression:
// a congestion-heavy scenario (router failure, degraded cable, ARN on)
// run on a reset-and-reused engine/fabric must reproduce the fresh
// build's event trace and outcome counters bit for bit.
func TestFabricResetDeterministicReuse(t *testing.T) {
	cfg := Spider2Fabric()
	cfg.Torus = topology.Torus{NX: 5, NY: 4, NZ: 4}
	pl := topology.PlaceRouters(topology.CabinetGrid{Cols: 5, Rows: 2}, cfg.Torus, 16, 4)
	scenario := func(eng *sim.Engine, f *Fabric) (uint64, uint64, float64) {
		th := sim.NewTraceHash()
		eng.SetTrace(th.Observe)
		f.SetNotification(true)
		src := rng.New(3)
		send := func() {
			c := cfg.Torus.CoordOf(src.Intn(cfg.Torus.Nodes()))
			f.StartClientFlow(c, src.Intn(8), RouteFGR, 16e6, src, nil)
		}
		for i := 0; i < 200; i++ {
			send()
		}
		eng.At(sim.FromSeconds(0.05), func() {
			f.FailRouter(src.Intn(f.NumRouters()))
			f.Net.Degrade(f.RouterUpLinks()[src.Intn(f.NumRouters())], 0.25)
			for i := 0; i < 100; i++ {
				send()
			}
		})
		eng.Run()
		return th.Sum(), f.Net.FlowsCompleted, f.Net.BytesDelivered
	}

	freshEng := sim.NewEngine()
	freshFab := NewFabric(freshEng, cfg, pl, 8)
	wantTrace, wantDone, wantBytes := scenario(freshEng, freshFab)
	if wantDone == 0 {
		t.Fatal("scenario completed no flows")
	}

	eng := sim.NewEngine()
	fab := NewFabric(eng, cfg, pl, 8)
	if _, _, _ = scenario(eng, fab); fab.Net.ActiveFlows() != 0 {
		t.Fatal("drained scenario left flows in flight")
	}
	eng.Reset()
	if err := fab.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if fab.RouterFailed(0) || fab.StalledSends != 0 || fab.Net.FlowsStarted != 0 {
		t.Fatal("fabric state survived Reset")
	}
	gotTrace, gotDone, gotBytes := scenario(eng, fab)
	if gotTrace != wantTrace {
		t.Fatalf("reused fabric trace %#x != fresh trace %#x", gotTrace, wantTrace)
	}
	if gotDone != wantDone || gotBytes != wantBytes {
		t.Fatalf("reused outcome %d/%g != fresh %d/%g", gotDone, gotBytes, wantDone, wantBytes)
	}
}

// TestNetworkResetRefusesInFlight pins the drain-first contract: Reset
// with a transfer mid-flight must fail rather than invent completion
// semantics for it.
func TestNetworkResetRefusesInFlight(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	l := n.NewLink("solo", 1e9, 0)
	n.StartFlow([]*Link{l}, 1e9, nil)
	if err := n.Reset(); err == nil {
		t.Fatal("Reset succeeded with a flow in flight")
	}
	eng.Run()
	if err := n.Reset(); err != nil {
		t.Fatalf("Reset after drain: %v", err)
	}
	if l.BytesCarried != 0 || l.MaxFlows != 0 || n.FlowsStarted != 0 {
		t.Fatal("counters survived Reset")
	}
}

// TestFabricRunDeterministic runs a congestion-heavy full-fabric
// scenario (small torus, fan-in to few OSSes, a router burst and a
// degraded cable mid-run) twice and compares event traces — the
// netsim-level half of the center-wide determinism contract.
func TestFabricRunDeterministic(t *testing.T) {
	run := func() (uint64, uint64, float64) {
		eng := sim.NewEngine()
		th := sim.NewTraceHash()
		eng.SetTrace(th.Observe)
		cfg := Spider2Fabric()
		cfg.Torus = topology.Torus{NX: 5, NY: 4, NZ: 4}
		pl := topology.PlaceRouters(topology.CabinetGrid{Cols: 5, Rows: 2}, cfg.Torus, 16, 4)
		f := NewFabric(eng, cfg, pl, 8)
		f.SetNotification(true)
		src := rng.New(3)
		send := func() {
			c := cfg.Torus.CoordOf(src.Intn(cfg.Torus.Nodes()))
			f.StartClientFlow(c, src.Intn(8), RouteFGR, 16e6, src, nil)
		}
		for i := 0; i < 200; i++ {
			send()
		}
		eng.At(sim.FromSeconds(0.05), func() {
			f.FailRouter(src.Intn(f.NumRouters()))
			f.Net.Degrade(f.RouterUpLinks()[src.Intn(f.NumRouters())], 0.25)
			for i := 0; i < 100; i++ {
				send()
			}
		})
		eng.Run()
		return th.Sum(), f.Net.FlowsCompleted, f.Net.BytesDelivered
	}
	h1, c1, b1 := run()
	h2, c2, b2 := run()
	if h1 != h2 {
		t.Fatalf("fabric event traces differ: %x vs %x", h1, h2)
	}
	if c1 != c2 || b1 != b2 {
		t.Fatalf("fabric outcomes differ: %d/%g vs %d/%g", c1, b1, c2, b2)
	}
	if c1 == 0 {
		t.Fatal("scenario completed no flows")
	}
}
