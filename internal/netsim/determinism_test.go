package netsim

import (
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// congestionRun drives a deliberately nasty scheduling scenario: many
// identically-sized flows funneled through one bottleneck link, so they
// all complete at the same instant and their completion order — and the
// RNG draws their done() callbacks make — is decided purely by event
// scheduling order. Before the ordered intrusive registries, reassign
// iterated a map[*Flow]struct{} here, so the engine's FIFO tie-break
// seq was assigned in randomized map order and this trace differed run
// to run. It returns the completion order, the RNG values drawn in the
// callbacks, and the engine's event-trace fingerprint.
func congestionRun(seed uint64) (order []int, draws []uint64, trace uint64) {
	eng := sim.NewEngine()
	th := sim.NewTraceHash()
	eng.SetTrace(th.Observe)
	n := NewNetwork(eng)
	src := rng.New(seed)

	bottleneck := n.NewLink("bottleneck", 1e9, 0)
	spokes := make([]*Link, 7)
	for i := range spokes {
		spokes[i] = n.NewLink("spoke", 8e9, 0)
	}
	const flows = 96
	for i := 0; i < flows; i++ {
		id := i
		path := []*Link{spokes[src.Intn(len(spokes))], bottleneck}
		n.StartFlow(path, 1e7, func() {
			order = append(order, id)
			draws = append(draws, src.Uint64())
		})
	}
	// A second wave lands mid-flight so starts interleave with the
	// steady state (reassign churn on a congested link).
	eng.At(sim.FromSeconds(0.1), func() {
		for i := 0; i < flows/2; i++ {
			id := flows + i
			path := []*Link{spokes[src.Intn(len(spokes))], bottleneck}
			n.StartFlow(path, 1e7, func() {
				order = append(order, id)
				draws = append(draws, src.Uint64())
			})
		}
	})
	eng.Run()
	return order, draws, th.Sum()
}

// TestSameInstantCompletionsDeterministic is the determinism regression
// test for the ordered flow registries: two in-process runs must agree
// on the exact completion order, the RNG stream consumed by completion
// callbacks, and the engine event trace. Reverting reassign (or the
// affected-set collection) to map iteration makes this fail with
// overwhelming probability — 96 same-instant completions fire in map
// order, and Go randomizes that order per run.
func TestSameInstantCompletionsDeterministic(t *testing.T) {
	o1, d1, t1 := congestionRun(11)
	o2, d2, t2 := congestionRun(11)
	if t1 != t2 {
		t.Fatalf("event traces differ: %x vs %x", t1, t2)
	}
	if len(o1) != len(o2) || len(o1) != 144 {
		t.Fatalf("completion counts: %d vs %d, want 144", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("completion order diverges at %d: flow %d vs flow %d", i, o1[i], o2[i])
		}
		if d1[i] != d2[i] {
			t.Fatalf("callback RNG stream diverges at %d", i)
		}
	}
}

// TestFabricRunDeterministic runs a congestion-heavy full-fabric
// scenario (small torus, fan-in to few OSSes, a router burst and a
// degraded cable mid-run) twice and compares event traces — the
// netsim-level half of the center-wide determinism contract.
func TestFabricRunDeterministic(t *testing.T) {
	run := func() (uint64, uint64, float64) {
		eng := sim.NewEngine()
		th := sim.NewTraceHash()
		eng.SetTrace(th.Observe)
		cfg := Spider2Fabric()
		cfg.Torus = topology.Torus{NX: 5, NY: 4, NZ: 4}
		pl := topology.PlaceRouters(topology.CabinetGrid{Cols: 5, Rows: 2}, cfg.Torus, 16, 4)
		f := NewFabric(eng, cfg, pl, 8)
		f.SetNotification(true)
		src := rng.New(3)
		send := func() {
			c := cfg.Torus.CoordOf(src.Intn(cfg.Torus.Nodes()))
			f.StartClientFlow(c, src.Intn(8), RouteFGR, 16e6, src, nil)
		}
		for i := 0; i < 200; i++ {
			send()
		}
		eng.At(sim.FromSeconds(0.05), func() {
			f.FailRouter(src.Intn(f.NumRouters()))
			f.Net.Degrade(f.RouterUpLinks()[src.Intn(f.NumRouters())], 0.25)
			for i := 0; i < 100; i++ {
				send()
			}
		})
		eng.Run()
		return th.Sum(), f.Net.FlowsCompleted, f.Net.BytesDelivered
	}
	h1, c1, b1 := run()
	h2, c2, b2 := run()
	if h1 != h2 {
		t.Fatalf("fabric event traces differ: %x vs %x", h1, h2)
	}
	if c1 != c2 || b1 != b2 {
		t.Fatalf("fabric outcomes differ: %d/%g vs %d/%g", c1, b1, c2, b2)
	}
	if c1 == 0 {
		t.Fatal("scenario completed no flows")
	}
}
