package netsim

import (
	"strconv"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
	"spiderfs/internal/topology"
)

// Router failure handling and asymmetric router notification (ARN).
// §IV-D: OLCF direct-funded "asymmetric router notification" so that
// when an LNET router dies, peers learn about it immediately instead of
// timing out against it. Without ARN, a sender that selects a dead
// router stalls for the LNET transmit timeout before retrying on
// another route.

// RouterTimeout is the stall a sender pays when it picks a dead router
// without having been notified (LNET transmit/resend timeouts of the
// era).
const RouterTimeout = 50 * sim.Second

// FailRouter marks a router dead. Whether senders avoid it immediately
// depends on NotifyFailures.
func (f *Fabric) FailRouter(rid int) {
	if f.failedRouters == nil {
		f.failedRouters = map[int]bool{}
	}
	f.failedRouters[rid] = true
}

// RecoverRouter returns a router to service.
func (f *Fabric) RecoverRouter(rid int) { delete(f.failedRouters, rid) }

// SetNotification enables asymmetric router notification: senders learn
// about dead routers immediately and route around them.
func (f *Fabric) SetNotification(on bool) { f.arn = on }

// RouterFailed reports whether rid is currently dead.
func (f *Fabric) RouterFailed(rid int) bool { return f.failedRouters[rid] }

// selectRouter picks the router for (client, destination) under the
// given mode, excluding any router in skip. It returns -1 when no
// eligible router remains.
func (f *Fabric) selectRouter(c topology.Coord, destLeaf int, mode RouteMode, src *rng.Source, skip map[int]bool) int {
	eligible := func(rid int) bool {
		if skip[rid] {
			return false
		}
		// With ARN, failures are public knowledge.
		if f.arn && f.failedRouters[rid] {
			return false
		}
		return true
	}
	switch mode {
	case RouteFGR:
		group := destLeaf / topology.SwitchesPerGroup
		mods := f.groupMods[group]
		// Nearest module whose router for this leaf is eligible.
		best, bestD := -1, 0
		for _, m := range mods {
			rid := m.RouterIDs[destLeaf%topology.SwitchesPerGroup]
			if !eligible(rid) {
				continue
			}
			d := f.Placement.Torus.Distance(c, m.Coord)
			if best < 0 || d < bestD {
				best, bestD = rid, d
			}
		}
		return best
	case RouteNaive:
		for tries := 0; tries < 4*f.NumRouters(); tries++ {
			rid := src.Intn(f.NumRouters())
			if eligible(rid) {
				return rid
			}
		}
		return -1
	default:
		panic("netsim: unknown route mode") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
}

// pathVia builds the full client->OSS link path through router rid in a
// single right-sized allocation (the path is retained by the flow until
// completion, so it cannot come from a reusable scratch buffer).
func (f *Fabric) pathVia(c topology.Coord, oss, rid int) []*Link {
	destLeaf := f.ossLeaf[oss]
	mod := f.Placement.Modules[rid/4]
	path := make([]*Link, 0, f.Cfg.Torus.Distance(c, mod.Coord)+6)
	path = append(path, f.inject[f.Cfg.Torus.Index(c)])
	path = f.geminiPath(path, c, mod.Coord)
	path = append(path, f.routerFwd[rid], f.routerUp[rid])
	if sw := f.routerSwitch(rid); sw != destLeaf {
		path = append(path, f.coreUp[sw], f.coreDown[destLeaf])
	}
	return append(path, f.ossPort[oss])
}

// StartClientFlow launches a transfer from a client to an OSS with
// router-failure semantics: if the chosen router is dead and the sender
// was not notified (no ARN), the flow stalls for RouterTimeout, the
// sender blacklists that router, and retries on another. Counters
// record the stalls so the ARN ablation can quantify the feature.
//
// When no eligible router remains (a center-wide router loss, or every
// router blacklisted after stalls), the send is dropped: DroppedFlows
// is incremented, the optional OnDrop error path runs, and done never
// fires — the caller's stalled-send counters make the loss visible.
func (f *Fabric) StartClientFlow(c topology.Coord, oss int, mode RouteMode, bytes float64, src *rng.Source, done func()) {
	eng := f.engine()
	// Spantrace: under a sampled request context the send becomes a
	// fabric child span; with no context at all (raw fabric workloads,
	// netbench) the fabric self-samples roots; NoSpan means the request
	// was considered upstream and skipped, so nothing is recorded.
	tr := f.Tracer
	var fparent spantrace.SpanID
	if tr != nil {
		switch p := tr.Cur(); {
		case p == spantrace.NoSpan:
			tr = nil
		case p == 0:
			fparent = tr.SampleRoot(spantrace.Fabric, "send", int64(bytes))
			if fparent == 0 {
				tr = nil
			}
		default:
			fparent = tr.Begin(spantrace.Fabric, "send", p, int64(bytes))
		}
	}
	// The blacklist is allocated lazily: the overwhelmingly common case
	// is a first-attempt success, and this runs once per RPC. Lookups on
	// the nil map are fine; only a stall materializes it.
	var skip map[int]bool
	var attempt func()
	attempt = func() {
		rid := f.selectRouter(c, f.ossLeaf[oss], mode, src, skip)
		if rid < 0 {
			f.DroppedFlows++
			tr.Mark(spantrace.Fabric, "drop", fparent, int64(bytes), "")
			tr.End(fparent)
			if f.OnDrop != nil {
				f.OnDrop(oss, bytes)
			}
			return
		}
		if f.failedRouters[rid] {
			// Dead router selected: without ARN the sender discovers it
			// the hard way.
			f.StalledSends++
			f.StallTime += RouterTimeout
			stall := tr.Begin(spantrace.Fabric, "router-stall", fparent, 0)
			if stall != 0 {
				tr.Annotate(stall, "rtr"+strconv.Itoa(rid))
			}
			if skip == nil {
				skip = map[int]bool{}
			}
			skip[rid] = true
			eng.After(RouterTimeout, func() {
				tr.End(stall)
				tr.Mark(spantrace.Fabric, "reroute", fparent, 0, "")
				attempt()
			})
			return
		}
		path := f.pathVia(c, oss, rid)
		fl := tr.Begin(spantrace.Fabric, "flow", fparent, int64(bytes))
		if fl != 0 {
			tr.Annotate(fl, "rtr"+strconv.Itoa(rid)+" hops="+strconv.Itoa(len(path)))
			for _, l := range path {
				tr.Mark(spantrace.Fabric, "hop", fl, 0, l.Name)
			}
			inner := done
			done = func() {
				tr.End(fl)
				tr.End(fparent)
				if inner != nil {
					inner()
				}
			}
		}
		f.Net.StartFlow(path, bytes, done)
	}
	attempt()
}

func (f *Fabric) engine() *sim.Engine { return f.eng }
