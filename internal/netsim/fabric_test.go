package netsim

import (
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

// smallFabric builds a reduced machine for unit tests: 5x4x4 torus,
// 16 modules, 4 groups (16 leaves), 32 OSSes.
func smallFabric(eng *sim.Engine) *Fabric {
	cfg := Spider2Fabric()
	cfg.Torus = topology.Torus{NX: 5, NY: 4, NZ: 4}
	grid := topology.CabinetGrid{Cols: 5, Rows: 2}
	pl := topology.PlaceRouters(grid, cfg.Torus, 16, 4)
	return NewFabric(eng, cfg, pl, 32)
}

func TestFabricConstruction(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	if f.NumRouters() != 64 {
		t.Fatalf("routers = %d, want 64", f.NumRouters())
	}
	if f.nLeaves != 16 {
		t.Fatalf("leaves = %d, want 16", f.nLeaves)
	}
	// OSSes round-robin across leaves.
	if f.OSSLeaf(0) != 0 || f.OSSLeaf(16) != 0 || f.OSSLeaf(17) != 1 {
		t.Fatalf("oss leaf mapping: %d %d %d", f.OSSLeaf(0), f.OSSLeaf(16), f.OSSLeaf(17))
	}
}

func TestRouterSwitchMapping(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	// The 4 routers of one module go to the 4 switches of its group.
	m := f.Placement.Modules[0]
	seen := map[int]bool{}
	for _, rid := range m.RouterIDs {
		sw := f.routerSwitch(rid)
		if sw/topology.SwitchesPerGroup != m.Group {
			t.Fatalf("router %d on switch %d outside group %d", rid, sw, m.Group)
		}
		if seen[sw] {
			t.Fatalf("two routers of module on same switch %d", sw)
		}
		seen[sw] = true
	}
}

func TestFGRPathAvoidsCore(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	src := rng.New(1)
	for oss := 0; oss < 32; oss++ {
		path := f.ClientPath(topology.Coord{X: 1, Y: 1, Z: 1}, oss, RouteFGR, src)
		for _, l := range path {
			for _, cu := range f.coreUp {
				if l == cu {
					t.Fatalf("FGR path to oss %d crossed core", oss)
				}
			}
		}
	}
}

func TestNaivePathsSometimesCrossCore(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	src := rng.New(2)
	crossings := 0
	for i := 0; i < 200; i++ {
		path := f.ClientPath(topology.Coord{X: 1, Y: 1, Z: 1}, i%32, RouteNaive, src)
		for _, l := range path {
			for _, cu := range f.coreUp {
				if l == cu {
					crossings++
				}
			}
		}
	}
	// With 16 leaves, a random router matches the destination leaf ~1/16
	// of the time; expect most paths to cross.
	if crossings < 150 {
		t.Fatalf("naive crossings = %d/200, expected most to cross core", crossings)
	}
}

func TestFGRPathShorterOnAverage(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	src := rng.New(3)
	var fgrLen, naiveLen int
	n := 0
	for x := 0; x < 5; x++ {
		for z := 0; z < 4; z++ {
			c := topology.Coord{X: x, Y: 2, Z: z}
			for oss := 0; oss < 8; oss++ {
				fgrLen += len(f.ClientPath(c, oss, RouteFGR, src))
				naiveLen += len(f.ClientPath(c, oss, RouteNaive, src))
				n++
			}
		}
	}
	if fgrLen >= naiveLen {
		t.Fatalf("FGR mean path %f not shorter than naive %f",
			float64(fgrLen)/float64(n), float64(naiveLen)/float64(n))
	}
}

func TestGeminiPathFollowsTorusRoute(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	a := topology.Coord{X: 0, Y: 0, Z: 0}
	b := topology.Coord{X: 2, Y: 1, Z: 3}
	links := f.geminiPath(nil, a, b)
	want := f.Cfg.Torus.Distance(a, b)
	if len(links) != want {
		t.Fatalf("gemini path %d links, want %d", len(links), want)
	}
	// No duplicate links on a dimension-ordered path.
	seen := map[*Link]bool{}
	for _, l := range links {
		if seen[l] {
			t.Fatal("duplicate link in path")
		}
		seen[l] = true
	}
}

func TestEndToEndFlowThroughFabric(t *testing.T) {
	eng := sim.NewEngine()
	f := smallFabric(eng)
	src := rng.New(4)
	done := 0
	for i := 0; i < 10; i++ {
		c := f.Cfg.Torus.CoordOf(src.Intn(f.Cfg.Torus.Nodes()))
		path := f.ClientPath(c, i%32, RouteFGR, src)
		f.Net.StartFlow(path, 100e6, func() { done++ })
	}
	eng.Run()
	if done != 10 {
		t.Fatalf("completed = %d", done)
	}
	rep := f.Congestion(eng.Now())
	if rep.MaxUtilization <= 0 {
		t.Fatal("no utilization recorded")
	}
	if rep.CoreBytes != 0 {
		t.Fatalf("FGR traffic crossed core: %g bytes", rep.CoreBytes)
	}
}

func TestFGRBeatsNaiveThroughput(t *testing.T) {
	// The E4 experiment in miniature: many clients stream to all OSSes;
	// FGR should deliver the data sooner (less congestion).
	run := func(mode RouteMode) sim.Time {
		eng := sim.NewEngine()
		f := smallFabric(eng)
		src := rng.New(5)
		nClients := 40
		for i := 0; i < nClients; i++ {
			c := f.Cfg.Torus.CoordOf((i * 7) % f.Cfg.Torus.Nodes())
			oss := i % 32
			f.Net.StartFlow(f.ClientPath(c, oss, mode, src), 1e9, nil)
		}
		eng.Run()
		return eng.Now()
	}
	fgr := run(RouteFGR)
	naive := run(RouteNaive)
	if fgr >= naive {
		t.Fatalf("FGR (%v) not faster than naive (%v)", fgr, naive)
	}
}
