package netsim

import (
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

func placementForBench(cfg FabricConfig) topology.Placement {
	return topology.PlaceRouters(topology.TitanCabinets(), cfg.Torus, 110, 9)
}

// BenchmarkFlowChurn measures flow setup/teardown with fair-share
// re-rating on a shared link — netsim's dominant cost in big runs.
func BenchmarkFlowChurn(b *testing.B) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	links := make([]*Link, 8)
	for i := range links {
		links[i] = n.NewLink("l", 1e9, 0)
	}
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		path := []*Link{links[src.Intn(8)], links[src.Intn(8)]}
		if path[0] == path[1] {
			path = path[:1]
		}
		n.StartFlow(path, 1e6, nil)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkSpider2Congestion drives the production-scale fabric —
// Titan's 18,688 clients on the 25x16x24 torus, 440 LNET routers, 288
// OSSes — through waves of concurrent striped writes with enough fan-in
// that every OSS port and router carries several flows. Each op starts
// one wave and drains it, so the number is the cost of the whole
// start/re-rate/finish machinery under congestion. The companion
// internal/netbench suite records the same run (plus the map-baseline
// comparison) into BENCH_netsim.json.
func BenchmarkSpider2Congestion(b *testing.B) {
	const (
		clients = 18688
		nOSS    = 288
		batch   = 2048
	)
	eng := sim.NewEngine()
	cfg := Spider2Fabric()
	f := NewFabric(eng, cfg, placementForBench(cfg), nOSS)
	src := rng.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			c := cfg.Torus.CoordOf(src.Intn(clients) % cfg.Torus.Nodes())
			f.StartClientFlow(c, src.Intn(nOSS), RouteFGR, 32e6, src, nil)
		}
		eng.Run()
	}
	b.StopTimer()
	if fired := eng.Fired(); fired > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(fired), "ns/flow-event")
	}
}

// BenchmarkClientPathFGR measures route computation on the full Titan
// fabric.
func BenchmarkClientPathFGR(b *testing.B) {
	eng := sim.NewEngine()
	cfg := Spider2Fabric()
	pl := placementForBench(cfg)
	f := NewFabric(eng, cfg, pl, 144)
	src := rng.New(2)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cfg.Torus.CoordOf(i % cfg.Torus.Nodes())
		_ = f.ClientPath(c, i%144, RouteFGR, src)
	}
}
