package netsim

import (
	"testing"

	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
	"spiderfs/internal/topology"
)

func placementForBench(cfg FabricConfig) topology.Placement {
	return topology.PlaceRouters(topology.TitanCabinets(), cfg.Torus, 110, 9)
}

// BenchmarkFlowChurn measures flow setup/teardown with fair-share
// re-rating on a shared link — netsim's dominant cost in big runs.
func BenchmarkFlowChurn(b *testing.B) {
	eng := sim.NewEngine()
	n := NewNetwork(eng)
	links := make([]*Link, 8)
	for i := range links {
		links[i] = n.NewLink("l", 1e9, 0)
	}
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		path := []*Link{links[src.Intn(8)], links[src.Intn(8)]}
		if path[0] == path[1] {
			path = path[:1]
		}
		n.StartFlow(path, 1e6, nil)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkClientPathFGR measures route computation on the full Titan
// fabric.
func BenchmarkClientPathFGR(b *testing.B) {
	eng := sim.NewEngine()
	cfg := Spider2Fabric()
	pl := placementForBench(cfg)
	f := NewFabric(eng, cfg, pl, 144)
	src := rng.New(2)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cfg.Torus.CoordOf(i % cfg.Torus.Nodes())
		_ = f.ClientPath(c, i%144, RouteFGR, src)
	}
}
