package raid

import (
	"sort"

	"spiderfs/internal/disk"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
)

// Read-time verification and repair. The controller checksums every
// chunk (T10-DIF-style), so a read *can* verify a stripe against
// parity — the policy knob below decides when it does. Drive-reported
// UREs are always visible (the drive says so); silent bit rot is caught
// only when a read verifies or the scrubber walks the stripe. Every
// defect outcome is counted, never panicked: data corruption is a
// first-class, observable event, not an assertion failure.

// VerifyPolicy selects when reads verify stripe checksums.
type VerifyPolicy int

const (
	// VerifyOnSuspect (default) verifies only when there is reason for
	// suspicion: the stripe is degraded, or a member drive reports a URE
	// on a needed chunk. Clean-looking reads pay no extra I/O — and
	// silent bit rot under them reaches the caller undetected.
	VerifyOnSuspect VerifyPolicy = iota
	// VerifyAlways verifies every read at full-stripe fan-out cost: no
	// silent corruption is ever served, foreground reads pay for it.
	VerifyAlways
)

func (v VerifyPolicy) String() string {
	if v == VerifyAlways {
		return "verify-always"
	}
	return "verify-on-suspect"
}

// ReadOutcome reports what a checked read actually delivered — the
// EIO-vs-repaired distinction the file-system layer surfaces to
// clients.
type ReadOutcome struct {
	// EIO: at least one stripe in the extent is unrecoverable (or the
	// group is Failed); the caller gets an error, not data.
	EIO bool
	// Repaired counts chunks reconstructed and rewritten inline.
	Repaired int
	// Undetected counts silently corrupt chunks served as good data —
	// the reader cannot see this field in real life; experiments can.
	Undetected int
}

// ScrubResult summarizes one scrub batch.
type ScrubResult struct {
	Scanned    int64 // stripes covered
	Repaired   int   // chunks reconstructed and rewritten
	Lost       int   // stripes newly escalated as unrecoverable
	Rebuilding bool  // a rebuild was in flight during the batch
}

// TotalStripes returns the number of stripes in the group.
func (g *Group) TotalStripes() int64 {
	return g.dsks[0].Config().Capacity / g.cfg.ChunkSize
}

// ReadChecked issues a logical read and reports the integrity outcome
// to done when the slowest involved member completes. Read is the
// outcome-blind wrapper.
func (g *Group) ReadChecked(off, size int64, done func(ReadOutcome)) {
	if g.state == Failed {
		g.IOErrors++
		if done != nil {
			g.eng.After(0, func() { done(ReadOutcome{EIO: true}) })
		}
		return
	}
	g.Reads++
	g.BytesRead += size
	oc := &ReadOutcome{}
	sp := g.tracer.Begin(spantrace.RAID, "raid-read", g.tracer.Cur(), size)
	b := sim.NewBarrier(func() {
		if sp != 0 {
			g.tracer.End(sp)
		}
		if done != nil {
			done(*oc)
		}
	})
	old := g.tracer.Swap(sp)
	g.forEachStripe(off, size, func(stripe, chunkFirst, chunkLast int64) {
		g.readStripe(stripe, chunkFirst, chunkLast, b, oc, sp)
	})
	g.tracer.Swap(old)
	b.Arm()
}

// readStripe reads one stripe's chunk range, deciding between the
// direct path and the verify path per policy.
func (g *Group) readStripe(stripe, chunkFirst, chunkLast int64, b *sim.Barrier, oc *ReadOutcome, sp spantrace.SpanID) {
	if g.lost[stripe] {
		// Already escalated as unrecoverable: EIO without disk I/O.
		g.LostStripeReads++
		oc.EIO = true
		return
	}
	ck := g.cfg.ChunkSize
	stripeOff := g.diskOffset(stripe)
	degraded := g.stripeDegraded(stripe)
	verify := degraded || g.Verify == VerifyAlways
	if !verify {
		// A drive-reported URE on any needed chunk makes the stripe
		// suspect: escalate to the verify path and repair inline.
		for k := chunkFirst; k <= chunkLast && !verify; k++ {
			m := g.chunkLocation(stripe, int(k))
			if !g.offline[m] && g.dsks[m].Scan(stripeOff, ck).UREs > 0 {
				verify = true
			}
		}
	}
	if degraded {
		g.DegradedReads++
		g.tracer.Mark(spantrace.RAID, "degraded-read", sp, (chunkLast-chunkFirst+1)*ck, "")
	}
	if verify {
		// Full-stripe fan-out: parity verification needs every chunk.
		g.tracer.Mark(spantrace.RAID, "verify", sp, int64(g.cfg.Width())*ck, "")
		for m := 0; m < g.cfg.Width(); m++ {
			g.submitTo(m, disk.Op{LBA: stripeOff, Size: ck}, b)
		}
		repaired, lost := g.checkRange(stripeOff, ck, false, b)
		oc.Repaired += repaired
		if lost > 0 {
			oc.EIO = true
		}
		return
	}
	for k := chunkFirst; k <= chunkLast; k++ {
		m := g.chunkLocation(stripe, int(k))
		if !g.offline[m] && g.dsks[m].Scan(stripeOff, ck).Silent > 0 {
			// Bit rot under an unverified read: bad data served as good.
			g.UndetectedCorruptReads++
			oc.Undetected++
			g.tracer.Mark(spantrace.RAID, "corrupt-read-undetected", sp, ck, "")
		}
		g.submitTo(m, disk.Op{LBA: stripeOff, Size: ck}, b)
	}
}

// ScrubStripes reads stripes [first, first+n) from every online member,
// verifies them, repairs what parity can reconstruct, escalates what it
// cannot, and hands the batch outcome to done. It is one throttle
// quantum: callers (the background scrubber) pace batches exactly like
// rebuildBatch paces reconstruction.
func (g *Group) ScrubStripes(first, n int64, done func(ScrubResult)) {
	total := g.TotalStripes()
	if first < 0 {
		first = 0
	}
	if first+n > total {
		n = total - first
	}
	if g.state == Failed || n <= 0 {
		if done != nil {
			g.eng.After(0, func() { done(ScrubResult{}) })
		}
		return
	}
	res := &ScrubResult{Scanned: n, Rebuilding: g.state == Rebuilding}
	ck := g.cfg.ChunkSize
	off := first * ck
	size := n * ck
	g.ScrubbedStripes += n
	// Background work with no client request to parent to: self-sample
	// like rebuild batches so scrub interference shows up in traces.
	sp := g.tracer.SampleRoot(spantrace.RAID, "scrub-batch", size)
	b := sim.NewBarrier(func() {
		g.tracer.End(sp)
		if done != nil {
			done(*res)
		}
	})
	old := g.tracer.Swap(sp)
	for m := 0; m < g.cfg.Width(); m++ {
		g.submitTo(m, disk.Op{LBA: off, Size: size}, b)
	}
	res.Repaired, res.Lost = g.checkRange(off, size, true, b)
	g.tracer.Swap(old)
	b.Arm()
}

// stripeHit is one defective chunk found by a range check.
type stripeHit struct {
	stripe int64
	member int
}

// checkRange scans [off, off+size) on every online member, groups the
// defects by stripe, reconstructs-and-rewrites what parity covers, and
// escalates what it cannot. The caller has already submitted the reads
// covering the range; repair writes join the same barrier. Returns the
// chunks repaired and the stripes newly lost.
func (g *Group) checkRange(off, size int64, scrub bool, b *sim.Barrier) (repaired, lost int) {
	ck := g.cfg.ChunkSize
	var hits []stripeHit
	for m := 0; m < g.cfg.Width(); m++ {
		if g.offline[m] {
			continue
		}
		g.dsks[m].ScanChunks(off, size, ck, func(chunkLBA int64, sr disk.ScanResult) {
			g.UREsDetected += uint64(sr.UREs)
			g.ChecksumMismatches += uint64(sr.Silent)
			hits = append(hits, stripeHit{stripe: chunkLBA / ck, member: m})
		})
	}
	if len(hits) == 0 {
		return 0, 0
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].stripe != hits[j].stripe {
			return hits[i].stripe < hits[j].stripe
		}
		return hits[i].member < hits[j].member
	})
	i := 0
	for i < len(hits) {
		s := hits[i].stripe
		first := i
		for i < len(hits) && hits[i].stripe == s {
			i++
		}
		members := hits[first:i]
		if g.lost[s] {
			continue // already escalated; stays lost
		}
		if g.state == Rebuilding {
			// A latent error encountered while a rebuild has parity
			// margin spent: the paper's double-failure window, measured.
			g.RebuildLatentHits += uint64(len(members))
		}
		if len(g.offline)+len(members) > g.cfg.ParityDisks {
			g.markStripeLost(s)
			lost++
			continue
		}
		for _, h := range members {
			// Reconstruct-and-rewrite: the surviving chunks were already
			// read by the caller; the rewrite heals the member's media.
			g.submitTo(h.member, disk.Op{Write: true, LBA: g.diskOffset(s), Size: ck}, b)
			g.RepairedChunks++
			if scrub {
				g.ScrubRepairs++
			}
			g.tracer.Mark(spantrace.RAID, "verify-repair", g.tracer.Cur(), ck, "")
			repaired++
		}
	}
	return repaired, lost
}

// markStripeLost escalates a stripe whose defects exceed parity: a
// data-loss event, counted and surfaced, never panicked.
func (g *Group) markStripeLost(stripe int64) {
	if g.lost == nil {
		g.lost = map[int64]bool{}
	}
	g.lost[stripe] = true
	g.UnrecoverableStripes++
	g.tracer.Mark(spantrace.RAID, "stripe-lost", g.tracer.Cur(), g.cfg.StripeDataSize(), "")
	if g.OnStripeLoss != nil {
		g.OnStripeLoss(stripe)
	}
}
