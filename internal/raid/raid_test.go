package raid

import (
	"testing"
	"testing/quick"

	"spiderfs/internal/disk"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func newTestGroup(t *testing.T, seed uint64) (*sim.Engine, *Group) {
	t.Helper()
	eng := sim.NewEngine()
	src := rng.New(seed)
	cfg := Spider2Group()
	members := make([]*disk.Disk, cfg.Width())
	for i := range members {
		members[i] = disk.New(eng, i, disk.NLSAS2TB(), disk.Nominal(), src.Split("d"))
	}
	return eng, NewGroup(eng, 0, cfg, members)
}

func TestGroupGeometry(t *testing.T) {
	cfg := Spider2Group()
	if cfg.StripeDataSize() != 1<<20 {
		t.Fatalf("stripe data size = %d, want 1 MiB", cfg.StripeDataSize())
	}
	if cfg.Width() != 10 {
		t.Fatalf("width = %d", cfg.Width())
	}
	_, g := newTestGroup(t, 1)
	// 2 TB disks, 128 KiB chunks -> capacity = 8 data disks * 2 TB,
	// rounded down to whole stripes.
	stripes := int64(2_000_000_000_000) / cfg.ChunkSize
	want := stripes * cfg.StripeDataSize()
	if g.Capacity() != want {
		t.Fatalf("capacity = %d, want %d", g.Capacity(), want)
	}
	if diff := int64(8)*2_000_000_000_000 - g.Capacity(); diff < 0 || diff > cfg.StripeDataSize()*8 {
		t.Fatalf("capacity rounding off by %d bytes", diff)
	}
}

// Property: parity rotation places each stripe's 8 data chunks and 2
// parity chunks on 10 distinct members.
func TestChunkPlacementProperty(t *testing.T) {
	_, g := newTestGroup(t, 2)
	f := func(stripeRaw uint32) bool {
		stripe := int64(stripeRaw)
		used := map[int]bool{}
		p0, p1 := g.parityLocations(stripe)
		used[p0] = true
		used[p1] = true
		if p0 == p1 {
			return false
		}
		for k := 0; k < g.cfg.DataDisks; k++ {
			m := g.chunkLocation(stripe, k)
			if used[m] {
				return false
			}
			used[m] = true
		}
		return len(used) == g.cfg.Width()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: parity location rotates across stripes (not always the same
// two disks), which is what spreads load.
func TestParityRotates(t *testing.T) {
	_, g := newTestGroup(t, 3)
	seen := map[int]bool{}
	for s := int64(0); s < 10; s++ {
		p0, _ := g.parityLocations(s)
		seen[p0] = true
	}
	if len(seen) != 10 {
		t.Fatalf("parity used only %d members over 10 stripes", len(seen))
	}
}

func TestFullStripeWriteClassification(t *testing.T) {
	eng, g := newTestGroup(t, 4)
	done := 0
	g.Write(0, g.cfg.StripeDataSize(), func() { done++ })
	eng.Run()
	if done != 1 {
		t.Fatal("write did not complete")
	}
	if g.FullStripeWrite != 1 || g.PartialWrite != 0 {
		t.Fatalf("full=%d partial=%d, want 1/0", g.FullStripeWrite, g.PartialWrite)
	}
}

func TestPartialWriteIsRMWAndSlower(t *testing.T) {
	eng, g := newTestGroup(t, 5)
	g.Write(0, 4096, nil)
	eng.Run()
	partialTime := eng.Now()
	if g.PartialWrite != 1 {
		t.Fatalf("partial=%d", g.PartialWrite)
	}

	eng2, g2 := newTestGroup(t, 5)
	g2.Write(0, g2.cfg.StripeDataSize(), nil)
	eng2.Run()
	fullTime := eng2.Now()

	// A 4 KiB partial write moves 256x less data but must not be much
	// cheaper than a full-stripe write: RMW costs a read pass + write
	// pass on data+parity members.
	if float64(partialTime) < 0.8*float64(fullTime) {
		t.Fatalf("partial RMW (%v) suspiciously cheaper than full stripe (%v)", partialTime, fullTime)
	}
}

func TestMultiStripeWrite(t *testing.T) {
	eng, g := newTestGroup(t, 6)
	n := int64(4)
	g.Write(0, n*g.cfg.StripeDataSize(), nil)
	eng.Run()
	if g.FullStripeWrite != uint64(n) {
		t.Fatalf("full stripe writes = %d, want %d", g.FullStripeWrite, n)
	}
}

func TestReadCompletes(t *testing.T) {
	eng, g := newTestGroup(t, 7)
	done := false
	g.Read(0, 1<<20, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("read did not complete")
	}
	if g.BytesRead != 1<<20 {
		t.Fatalf("bytes read = %d", g.BytesRead)
	}
}

func TestDegradedReadFansOut(t *testing.T) {
	eng, g := newTestGroup(t, 8)
	if st := g.FailDisk(3); st != Degraded {
		t.Fatalf("state after 1 failure = %v", st)
	}
	g.Read(0, 1<<20, nil)
	eng.Run()
	if g.DegradedReads == 0 {
		t.Fatal("degraded read not recorded")
	}
}

func TestRAID6TwoFailuresSurvive(t *testing.T) {
	_, g := newTestGroup(t, 9)
	g.FailDisk(0)
	if st := g.FailDisk(5); st != Degraded {
		t.Fatalf("two failures should stay degraded, got %v", st)
	}
	if st := g.FailDisk(7); st != Failed {
		t.Fatalf("three failures should fail, got %v", st)
	}
	if g.LostStripes == 0 {
		t.Fatal("failed group should record lost stripes")
	}
}

func TestFailDiskIdempotent(t *testing.T) {
	_, g := newTestGroup(t, 10)
	g.FailDisk(1)
	g.FailDisk(1)
	g.FailDisk(1)
	if g.State() != Degraded {
		t.Fatalf("repeated failure of same disk should stay degraded, got %v", g.State())
	}
}

func TestRebuildRestoresHealth(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(11)
	cfg := Spider2Group()
	// Small "disks" so the rebuild is fast in event count.
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 64 << 20
	members := make([]*disk.Disk, cfg.Width())
	for i := range members {
		members[i] = disk.New(eng, i, dcfg, disk.Nominal(), src.Split("d"))
	}
	g := NewGroup(eng, 0, cfg, members)
	g.FailDisk(2)
	repl := disk.New(eng, 99, dcfg, disk.Nominal(), src.Split("repl"))
	finished := false
	g.StartRebuild(2, repl, func() { finished = true })
	if g.State() != Rebuilding {
		t.Fatalf("state = %v, want rebuilding", g.State())
	}
	eng.Run()
	if !finished {
		t.Fatal("rebuild never completed")
	}
	if g.State() != Healthy {
		t.Fatalf("state after rebuild = %v", g.State())
	}
	if g.RebuildProgress() != 1 {
		t.Fatalf("progress = %f", g.RebuildProgress())
	}
}

func TestRebuildProgressAdvances(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(12)
	cfg := Spider2Group()
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 256 << 20
	members := make([]*disk.Disk, cfg.Width())
	for i := range members {
		members[i] = disk.New(eng, i, dcfg, disk.Nominal(), src.Split("d"))
	}
	g := NewGroup(eng, 0, cfg, members)
	g.FailDisk(0)
	repl := disk.New(eng, 99, dcfg, disk.Nominal(), src.Split("r"))
	g.StartRebuild(0, repl, nil)
	eng.RunFor(2 * sim.Second)
	p := g.RebuildProgress()
	if p <= 0 || p > 1 {
		t.Fatalf("progress = %f after 2s", p)
	}
}

func TestInvalidExtentPanics(t *testing.T) {
	_, g := newTestGroup(t, 13)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.Read(g.Capacity()-100, 4096, nil)
}
