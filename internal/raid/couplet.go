package raid

import (
	"fmt"

	"spiderfs/internal/disk"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// Journal models the write-back journal of a storage controller pair.
// Committed entries are safe on disk; uncommitted entries describe file
// data whose only record is controller state. Taking the array offline
// uncleanly discards uncommitted entries — the failure mode behind the
// 2010 Spider I incident, which lost journal data for more than a
// million files.
type Journal struct {
	Uncommitted int64
	Committed   int64
	Lost        int64
}

// Log records n new journal entries.
func (j *Journal) Log(n int64) { j.Uncommitted += n }

// Commit flushes up to n entries to stable storage.
func (j *Journal) Commit(n int64) {
	if n > j.Uncommitted {
		n = j.Uncommitted
	}
	j.Uncommitted -= n
	j.Committed += n
}

// Drop discards all uncommitted entries (unclean shutdown) and returns
// how many were lost.
func (j *Journal) Drop() int64 {
	lost := j.Uncommitted
	j.Lost += lost
	j.Uncommitted = 0
	return lost
}

// EnclosureLayout describes how the members of each RAID group are
// distributed across physical disk enclosures ("trays").
type EnclosureLayout struct {
	Enclosures int // enclosures per couplet
	// PerEnclosure is how many members of one group share an enclosure:
	// Spider I used 5 enclosures x 2 members (an enclosure loss takes two
	// members of every group); the corrected design uses 10 x 1.
	PerEnclosure int
}

// Spider1Layout is the 5-enclosure design whose weakness §IV-E describes.
func Spider1Layout() EnclosureLayout { return EnclosureLayout{Enclosures: 5, PerEnclosure: 2} }

// Spider2Layout is the corrected 10-enclosure design.
func Spider2Layout() EnclosureLayout { return EnclosureLayout{Enclosures: 10, PerEnclosure: 1} }

// Couplet is a storage controller pair driving a set of RAID groups whose
// member disks are distributed across shared enclosures. It owns the
// write journal and models controller failover.
type Couplet struct {
	ID      int
	eng     *sim.Engine
	layout  EnclosureLayout
	groups  []*Group
	Journal Journal

	// ActiveControllers is 2 normally, 1 after a failover.
	ActiveControllers int

	// enclosureMembers[e] lists the group-member indices housed in
	// enclosure e (the same indices for every group in the couplet).
	enclosureMembers [][]int
}

// NewCouplet wires groups to enclosures under the given layout. Every
// group must have layout.Enclosures*layout.PerEnclosure members.
func NewCouplet(eng *sim.Engine, id int, layout EnclosureLayout, groups []*Group) *Couplet {
	want := layout.Enclosures * layout.PerEnclosure
	for _, g := range groups {
		if g.Config().Width() != want {
			panic(fmt.Sprintf("raid: layout houses %d members, group has %d", want, g.Config().Width())) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
		}
	}
	em := make([][]int, layout.Enclosures)
	m := 0
	for e := range em {
		for k := 0; k < layout.PerEnclosure; k++ {
			em[e] = append(em[e], m)
			m++
		}
	}
	return &Couplet{
		ID: id, eng: eng, layout: layout, groups: groups,
		ActiveControllers: 2, enclosureMembers: em,
	}
}

// Groups returns the RAID groups behind the couplet.
func (c *Couplet) Groups() []*Group { return c.groups }

// Layout returns the enclosure layout.
func (c *Couplet) Layout() EnclosureLayout { return c.layout }

// FailEnclosure takes enclosure e offline: every group loses the member
// disks housed there. Returns the number of groups that transitioned to
// Failed (unrecoverable).
func (c *Couplet) FailEnclosure(e int) int {
	if e < 0 || e >= c.layout.Enclosures {
		panic("raid: bad enclosure index") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	failedGroups := 0
	for _, g := range c.groups {
		before := g.State()
		for _, m := range c.enclosureMembers[e] {
			g.FailDisk(m)
		}
		if g.State() == Failed && before != Failed {
			failedGroups++
		}
	}
	return failedGroups
}

// ControllerFailover drops to single-controller operation (as designed,
// service continues). The journal survives a clean failover.
func (c *Couplet) ControllerFailover() {
	if c.ActiveControllers > 1 {
		c.ActiveControllers--
	}
}

// TakeOffline removes the couplet from service. If any group is still
// rebuilding (or degraded) the shutdown is unclean and uncommitted
// journal entries are dropped; the number lost is returned.
func (c *Couplet) TakeOffline() int64 {
	unclean := false
	for _, g := range c.groups {
		if s := g.State(); s == Rebuilding || s == Degraded {
			unclean = true
		}
	}
	if unclean {
		return c.Journal.Drop()
	}
	c.Journal.Commit(c.Journal.Uncommitted)
	return 0
}

// RecoverFiles models the weeks-long recovery effort after journal loss:
// each lost journal entry (file) is recovered independently with
// probability successRate. Returns (recovered, unrecoverable). The 2010
// incident recovered ~95% of more than a million files in two weeks.
func (c *Couplet) RecoverFiles(src *rng.Source, successRate float64) (recovered, lost int64) {
	for i := int64(0); i < c.Journal.Lost; i++ {
		if src.Bool(successRate) {
			recovered++
		} else {
			lost++
		}
	}
	return recovered, lost
}

// BuildGroups is a convenience that manufactures the disks for n groups
// under one couplet and returns the groups. Disk personalities are drawn
// from spec.
func BuildGroups(eng *sim.Engine, n int, gcfg GroupConfig, dcfg disk.Config, spec disk.PopulationSpec, src *rng.Source) []*Group {
	groups := make([]*Group, n)
	disks := disk.NewPopulation(eng, n*gcfg.Width(), dcfg, spec, src)
	for i := range groups {
		groups[i] = NewGroup(eng, i, gcfg, disks[i*gcfg.Width():(i+1)*gcfg.Width()])
	}
	return groups
}
