package raid

import (
	"testing"

	"spiderfs/internal/disk"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func benchGroup(b *testing.B) (*sim.Engine, *Group) {
	b.Helper()
	eng := sim.NewEngine()
	src := rng.New(1)
	cfg := Spider2Group()
	members := make([]*disk.Disk, cfg.Width())
	for i := range members {
		members[i] = disk.New(eng, i, disk.NLSAS2TB(), disk.Nominal(), src.Split("d"))
	}
	return eng, NewGroup(eng, 0, cfg, members)
}

// BenchmarkFullStripeWrite measures the optimal path: 1 MiB aligned
// writes fanned over 10 spindles.
func BenchmarkFullStripeWrite(b *testing.B) {
	eng, g := benchGroup(b)
	b.ReportAllocs()
	var off int64
	for i := 0; i < b.N; i++ {
		if off+1<<20 > g.Capacity() {
			off = 0
		}
		g.Write(off, 1<<20, nil)
		off += 1 << 20
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkPartialStripeRMW measures the penalized path: 4 KiB writes
// paying read-modify-write.
func BenchmarkPartialStripeRMW(b *testing.B) {
	eng, g := benchGroup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Write(int64(i%1024)*(1<<20), 4096, nil)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkDegradedRead measures reconstruction reads with one member
// down.
func BenchmarkDegradedRead(b *testing.B) {
	eng, g := benchGroup(b)
	g.FailDisk(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Read(int64(i%1024)*(1<<20), 1<<20, nil)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}
