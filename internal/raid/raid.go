// Package raid models the DDN-style RAID-6 (8+2) storage arrays behind
// the Spider object storage targets: chunked striping with rotating
// parity, read-modify-write for partial-stripe writes, degraded-mode
// reconstruction, background rebuild, and the controller write journal
// whose loss caused the 2010 Spider I incident (§IV-E of the paper).
package raid

import (
	"fmt"

	"spiderfs/internal/disk"
	"spiderfs/internal/sim"
	"spiderfs/internal/spantrace"
)

// GroupConfig describes a RAID group's geometry.
type GroupConfig struct {
	DataDisks   int   // 8 in Spider
	ParityDisks int   // 2 (RAID-6)
	ChunkSize   int64 // bytes per chunk; Spider used 128 KiB -> 1 MiB full stripe
}

// Spider2Group returns the Spider II RAID geometry: 8+2 with 128 KiB
// chunks, giving a 1 MiB full data stripe (which is why 1 MiB aligned
// I/O is the paper's headline best practice).
func Spider2Group() GroupConfig {
	return GroupConfig{DataDisks: 8, ParityDisks: 2, ChunkSize: 128 << 10}
}

// StripeDataSize returns the user-data bytes per stripe.
func (c GroupConfig) StripeDataSize() int64 { return int64(c.DataDisks) * c.ChunkSize }

// Width returns the total number of disks in the group.
func (c GroupConfig) Width() int { return c.DataDisks + c.ParityDisks }

// State enumerates group health.
type State int

const (
	// Healthy: all member disks online.
	Healthy State = iota
	// Degraded: 1-2 members offline, reads reconstruct, no rebuild running.
	Degraded
	// Rebuilding: a replacement disk is being reconstructed in background.
	Rebuilding
	// Failed: more members offline than parity can cover; data loss.
	Failed
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Rebuilding:
		return "rebuilding"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Group is one RAID-6 array exported as a LUN (one Lustre OST sits on
// each group). All I/O is asynchronous against the owning engine.
type Group struct {
	ID   int
	cfg  GroupConfig
	eng  *sim.Engine
	dsks []*disk.Disk

	state   State
	offline map[int]bool // member index -> offline
	tracer  *spantrace.Tracer

	// Verify selects the read-time checksum-verification policy
	// (integrity.go): VerifyOnSuspect verifies degraded stripes and
	// stripes with a drive-reported URE; VerifyAlways verifies every
	// read at full-stripe fan-out cost.
	Verify VerifyPolicy
	// lost tracks stripes escalated as unrecoverable (defects beyond
	// parity), so repeat encounters don't re-escalate the same loss.
	lost map[int64]bool
	// OnStripeLoss, when set, fires once per stripe escalated as
	// unrecoverable — the chaos ledger's data-loss accounting hook.
	OnStripeLoss func(stripe int64)

	// rebuild bookkeeping
	rebuildMember int
	rebuildNext   int64 // next stripe index to reconstruct
	rebuildEvent  *sim.Event
	// rebuildGen orphans in-flight batch chains when a rebuild is
	// cancelled (group failure, member restore) or superseded: batch
	// continuations check their generation before rescheduling.
	rebuildGen uint64
	// pending queues replacements that arrived while a rebuild was
	// already running — one rebuild at a time, like a real controller.
	pending []pendingRebuild
	// RebuildChunk is the number of stripes reconstructed per background
	// batch; larger values finish sooner but steal more disk time from
	// foreground I/O.
	RebuildChunk int64
	// RebuildPause is inserted between batches — the controller's
	// rebuild-rate throttle that bounds foreground impact (production
	// rebuilds of 2 TB drives ran for many hours to days).
	RebuildPause sim.Time

	// Counters.
	Reads, Writes   uint64
	FullStripeWrite uint64
	PartialWrite    uint64
	DegradedReads   uint64
	BytesRead       int64
	BytesWritten    int64
	LostStripes     int64 // stripes unrecoverable after Failed
	// IOErrors counts reads/writes issued against the group after it
	// transitioned to Failed; they complete immediately with an
	// (implied) EIO instead of panicking, so a chaos campaign survives
	// applications racing a data-loss event.
	IOErrors uint64

	// Integrity counters (integrity.go).
	UREsDetected           uint64 // drive-reported unrecoverable read errors seen
	ChecksumMismatches     uint64 // silent corruption caught by parity verify
	RepairedChunks         uint64 // chunks reconstructed and rewritten
	ScrubRepairs           uint64 // subset of RepairedChunks found by scrubbing
	UndetectedCorruptReads uint64 // silently corrupt chunks served to callers
	UnrecoverableStripes   int64  // stripes with defects beyond parity
	LostStripeReads        uint64 // reads answered EIO from an unrecoverable stripe
	RebuildLatentHits      uint64 // latent errors hit while a rebuild was in flight
	ScrubbedStripes        int64  // stripes walked by ScrubStripes
}

// pendingRebuild is a queued replacement waiting for the running
// rebuild to finish.
type pendingRebuild struct {
	member int
	repl   *disk.Disk
	done   func()
}

// NewGroup builds a group over the given member disks. len(members) must
// equal cfg.Width().
func NewGroup(eng *sim.Engine, id int, cfg GroupConfig, members []*disk.Disk) *Group {
	if len(members) != cfg.Width() {
		panic(fmt.Sprintf("raid: group wants %d disks, got %d", cfg.Width(), len(members))) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	return &Group{
		ID:            id,
		cfg:           cfg,
		eng:           eng,
		dsks:          members,
		state:         Healthy,
		offline:       map[int]bool{},
		rebuildMember: -1,
		RebuildChunk:  64,
	}
}

// SetTracer attaches the tracing plane to the group and its member
// disks (replacement drives inherit it at StartRebuild).
func (g *Group) SetTracer(tr *spantrace.Tracer) {
	g.tracer = tr
	for _, d := range g.dsks {
		d.Tracer = tr
	}
}

// Config returns the group's geometry.
func (g *Group) Config() GroupConfig { return g.cfg }

// State returns the group's health state.
func (g *Group) State() State { return g.state }

// Disks returns the member disks (monitoring/QA use).
func (g *Group) Disks() []*disk.Disk { return g.dsks }

// Capacity returns the user-visible LUN capacity in bytes.
func (g *Group) Capacity() int64 {
	perDisk := g.dsks[0].Config().Capacity
	stripes := perDisk / g.cfg.ChunkSize
	return stripes * g.cfg.StripeDataSize()
}

// chunkLocation maps (stripe, role) to a member disk using left-symmetric
// rotating parity: for stripe s, the two parity chunks live on members
// (s mod w) and ((s+1) mod w), and data chunk k lives on the k-th
// remaining member.
func (g *Group) chunkLocation(stripe int64, dataIdx int) (member int) {
	w := int64(g.cfg.Width())
	p0 := stripe % w
	p1 := (stripe + 1) % w
	m := int64(0)
	seen := 0
	for ; m < w; m++ {
		if m == p0 || m == p1 {
			continue
		}
		if seen == dataIdx {
			return int(m)
		}
		seen++
	}
	panic("raid: dataIdx out of range") //simlint:allow no-library-panic can't-happen internal invariant: parity rotation covers every index
}

// ChunkMember returns the member disk holding data chunk dataIdx of the
// given stripe — the layout map experiments use to plant targeted
// defects.
func (g *Group) ChunkMember(stripe int64, dataIdx int) int {
	return g.chunkLocation(stripe, dataIdx)
}

// parityLocations returns the members holding the two parity chunks of a
// stripe.
func (g *Group) parityLocations(stripe int64) (int, int) {
	w := int64(g.cfg.Width())
	return int(stripe % w), int((stripe + 1) % w)
}

func (g *Group) diskOffset(stripe int64) int64 { return stripe * g.cfg.ChunkSize }

// onlineMembers returns how many members are online.
func (g *Group) onlineMembers() int {
	return g.cfg.Width() - len(g.offline)
}

// submitTo issues a chunk op to the member if online; offline members
// contribute nothing (reconstruction cost is added by the caller).
func (g *Group) submitTo(member int, op disk.Op, b *sim.Barrier) {
	if g.offline[member] {
		return
	}
	b.Add(1)
	g.dsks[member].Submit(op, b.Done)
}

// Read issues a logical read of size bytes at offset off and calls done
// when the slowest involved member completes. Reads from degraded
// stripes fan out to all surviving members (reconstruction); checksum
// verification and inline repair follow the Verify policy. ReadChecked
// (integrity.go) is the same path with the integrity outcome surfaced.
func (g *Group) Read(off, size int64, done func()) {
	g.ReadChecked(off, size, func(ReadOutcome) {
		if done != nil {
			done()
		}
	})
}

// Write issues a logical write. Full-stripe writes update 8 data + 2
// parity chunks in one pass; partial-stripe writes pay read-modify-write
// (read old data + parity, then write new data + parity).
func (g *Group) Write(off, size int64, done func()) {
	if g.state == Failed {
		g.ioError(done)
		return
	}
	g.Writes++
	g.BytesWritten += size
	sp := g.tracer.Begin(spantrace.RAID, "raid-write", g.tracer.Cur(), size)
	if sp != 0 {
		inner := done
		done = func() {
			g.tracer.End(sp)
			if inner != nil {
				inner()
			}
		}
	}
	b := sim.NewBarrier(done)
	old := g.tracer.Swap(sp)
	g.forEachStripe(off, size, func(stripe, chunkFirst, chunkLast int64) {
		full := chunkFirst == 0 && chunkLast == int64(g.cfg.DataDisks-1)
		p0, p1 := g.parityLocations(stripe)
		stripeOff := g.diskOffset(stripe)
		if full {
			g.FullStripeWrite++
			for k := int64(0); k < int64(g.cfg.DataDisks); k++ {
				m := g.chunkLocation(stripe, int(k))
				g.submitTo(m, disk.Op{Write: true, LBA: stripeOff, Size: g.cfg.ChunkSize}, b)
			}
			g.submitTo(p0, disk.Op{Write: true, LBA: stripeOff, Size: g.cfg.ChunkSize}, b)
			g.submitTo(p1, disk.Op{Write: true, LBA: stripeOff, Size: g.cfg.ChunkSize}, b)
			return
		}
		// Read-modify-write: phase 1 reads old chunks + parity, phase 2
		// writes the new versions. Chain the phases with a nested barrier.
		g.PartialWrite++
		rmw := g.tracer.Begin(spantrace.RAID, "rmw", sp, (chunkLast-chunkFirst+1)*g.cfg.ChunkSize)
		b.Add(1)
		stripeDone := b.Done
		if rmw != 0 {
			stripeDone = func() {
				g.tracer.End(rmw)
				b.Done()
			}
		}
		p2parent := sp
		if rmw != 0 {
			p2parent = rmw
		}
		phase1 := sim.NewBarrier(func() {
			phase2 := sim.NewBarrier(stripeDone)
			old2 := g.tracer.Swap(p2parent)
			for k := chunkFirst; k <= chunkLast; k++ {
				m := g.chunkLocation(stripe, int(k))
				g.submitTo(m, disk.Op{Write: true, LBA: stripeOff, Size: g.cfg.ChunkSize}, phase2)
			}
			g.submitTo(p0, disk.Op{Write: true, LBA: stripeOff, Size: g.cfg.ChunkSize}, phase2)
			g.submitTo(p1, disk.Op{Write: true, LBA: stripeOff, Size: g.cfg.ChunkSize}, phase2)
			g.tracer.Swap(old2)
			phase2.Arm()
		})
		old1 := g.tracer.Swap(p2parent)
		for k := chunkFirst; k <= chunkLast; k++ {
			m := g.chunkLocation(stripe, int(k))
			g.submitTo(m, disk.Op{LBA: stripeOff, Size: g.cfg.ChunkSize}, phase1)
		}
		g.submitTo(p0, disk.Op{LBA: stripeOff, Size: g.cfg.ChunkSize}, phase1)
		g.submitTo(p1, disk.Op{LBA: stripeOff, Size: g.cfg.ChunkSize}, phase1)
		g.tracer.Swap(old1)
		phase1.Arm()
	})
	g.tracer.Swap(old)
	b.Arm()
}

// ioError completes an I/O against a Failed group: the controller
// returns the error without touching disks (zero service time beyond
// the event hop).
func (g *Group) ioError(done func()) {
	g.IOErrors++
	if done != nil {
		g.eng.After(0, done)
	}
}

// forEachStripe decomposes [off, off+size) into per-stripe chunk ranges.
func (g *Group) forEachStripe(off, size int64, fn func(stripe, chunkFirst, chunkLast int64)) {
	if off < 0 || size <= 0 || off+size > g.Capacity() {
		panic(fmt.Sprintf("raid: invalid extent off=%d size=%d cap=%d", off, size, g.Capacity())) //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	sds := g.cfg.StripeDataSize()
	end := off + size
	for off < end {
		stripe := off / sds
		in := off - stripe*sds
		n := sds - in
		if off+n > end {
			n = end - off
		}
		first := in / g.cfg.ChunkSize
		last := (in + n - 1) / g.cfg.ChunkSize
		fn(stripe, first, last)
		off += n
	}
}

// stripeDegraded reports whether the stripe has an offline member whose
// chunk would have been read directly.
func (g *Group) stripeDegraded(stripe int64) bool {
	if len(g.offline) == 0 {
		return false
	}
	// With rotating parity every member carries data on most stripes;
	// treat any offline member as degrading the stripe (conservative).
	return true
}

// FailDisk takes member m offline (drive failure or pulled drive). It
// returns the resulting state. More than ParityDisks concurrent failures
// transition the group to Failed and count lost stripes.
func (g *Group) FailDisk(m int) State {
	if m < 0 || m >= g.cfg.Width() {
		panic("raid: bad member index") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	if g.offline[m] {
		return g.state
	}
	g.offline[m] = true
	if len(g.offline) > g.cfg.ParityDisks {
		g.state = Failed
		g.LostStripes = g.dsks[0].Config().Capacity / g.cfg.ChunkSize
		// Cancel the rebuild cleanly: event, cursor, and member are
		// cleared together, and queued replacements die with the group.
		g.cancelRebuild()
		g.pending = nil
		return g.state
	}
	if g.state != Rebuilding {
		g.state = Degraded
	}
	return g.state
}

// RestoreDisk brings offline member m back intact without a rebuild —
// an enclosure repower or a reseated drive, where the controller's
// dirty-region tracking makes the member immediately consistent. If m
// was the member being rebuilt, the rebuild is cancelled cleanly and
// any queued replacement for another member starts. Restoring a member
// of a Failed group changes nothing: the data is already gone.
func (g *Group) RestoreDisk(m int) State {
	if m < 0 || m >= g.cfg.Width() {
		panic("raid: bad member index") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	if g.state == Failed || !g.offline[m] {
		return g.state
	}
	delete(g.offline, m)
	if g.state == Rebuilding {
		if g.rebuildMember != m {
			return g.state // some other member is still rebuilding
		}
		g.cancelRebuild()
	}
	if len(g.offline) == 0 {
		g.state = Healthy
	} else {
		g.state = Degraded
	}
	g.startQueuedRebuild()
	return g.state
}

// cancelRebuild clears every piece of rebuild bookkeeping together —
// event, cursor, member, and the generation that orphans any in-flight
// batch continuation.
func (g *Group) cancelRebuild() {
	if g.rebuildEvent != nil {
		g.rebuildEvent.Cancel()
		g.rebuildEvent = nil
	}
	g.rebuildMember = -1
	g.rebuildNext = 0
	g.rebuildGen++
}

// startQueuedRebuild begins the next queued rebuild whose member is
// still offline. Entries whose member came back (restored, or rebuilt
// under an earlier replacement) complete vacuously.
func (g *Group) startQueuedRebuild() {
	for len(g.pending) > 0 && g.state != Rebuilding && g.state != Failed {
		p := g.pending[0]
		g.pending = g.pending[1:]
		if !g.offline[p.member] {
			if p.done != nil {
				g.eng.After(0, p.done)
			}
			continue
		}
		g.beginRebuild(p.member, p.repl, p.done)
	}
}

// StartRebuild begins background reconstruction of offline member m onto
// a replacement drive. Reconstruction reads every surviving member and
// writes the replacement, RebuildChunk stripes per batch, interleaving
// with foreground I/O on the shared disks. done (may be nil) fires when
// the rebuild completes.
func (g *Group) StartRebuild(m int, replacement *disk.Disk, done func()) {
	if !g.offline[m] {
		panic("raid: rebuilding an online member") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	if g.state == Failed {
		panic("raid: rebuild on failed group") //simlint:allow no-library-panic caller-contract assertion: invalid input is a caller bug, not a runtime failure
	}
	if g.state == Rebuilding {
		// One rebuild at a time, like a real controller: a second
		// replacement arriving mid-rebuild waits its turn instead of
		// clobbering the running rebuild's cursor.
		g.pending = append(g.pending, pendingRebuild{member: m, repl: replacement, done: done})
		return
	}
	g.beginRebuild(m, replacement, done)
}

func (g *Group) beginRebuild(m int, replacement *disk.Disk, done func()) {
	replacement.Tracer = g.tracer
	g.dsks[m] = replacement
	g.state = Rebuilding
	g.rebuildMember = m
	g.rebuildNext = 0
	g.rebuildGen++
	g.rebuildBatch(g.rebuildGen, done)
}

// RebuildProgress returns the fraction of stripes reconstructed, in
// [0, 1], when rebuilding; 1 when healthy.
func (g *Group) RebuildProgress() float64 {
	total := g.dsks[0].Config().Capacity / g.cfg.ChunkSize
	if g.state != Rebuilding {
		if g.state == Healthy {
			return 1
		}
		return 0
	}
	return float64(g.rebuildNext) / float64(total)
}

func (g *Group) rebuildBatch(gen uint64, done func()) {
	total := g.TotalStripes()
	if g.rebuildNext >= total {
		// Rebuild complete: member back online, bookkeeping cleared as
		// one unit, then any queued replacement gets its turn.
		delete(g.offline, g.rebuildMember)
		if len(g.offline) == 0 {
			g.state = Healthy
		} else {
			g.state = Degraded
		}
		g.rebuildEvent = nil
		g.rebuildMember = -1
		g.rebuildNext = 0
		if done != nil {
			done()
		}
		g.startQueuedRebuild()
		return
	}
	n := g.RebuildChunk
	if g.rebuildNext+n > total {
		n = total - g.rebuildNext
	}
	first := g.rebuildNext
	g.rebuildNext += n
	size := n * g.cfg.ChunkSize
	// Rebuild batches are background work with no client request to
	// parent to: self-sample them as roots so rebuild interference is
	// visible in chaos-campaign traces.
	sp := g.tracer.SampleRoot(spantrace.RAID, "rebuild-batch", size)
	b := sim.NewBarrier(func() {
		g.tracer.End(sp)
		if g.state != Rebuilding || g.rebuildGen != gen {
			return // rebuild cancelled or superseded mid-batch
		}
		if g.RebuildPause > 0 {
			g.rebuildEvent = g.eng.After(g.RebuildPause, func() { g.rebuildBatch(gen, done) })
			return
		}
		g.rebuildBatch(gen, done)
	})
	// Read n contiguous chunks from each survivor, write to replacement.
	old := g.tracer.Swap(sp)
	for i := 0; i < g.cfg.Width(); i++ {
		if i == g.rebuildMember || g.offline[i] {
			continue
		}
		b.Add(1)
		g.dsks[i].Submit(disk.Op{LBA: first * g.cfg.ChunkSize, Size: size}, b.Done)
	}
	b.Add(1)
	g.dsks[g.rebuildMember].Submit(disk.Op{Write: true, LBA: first * g.cfg.ChunkSize, Size: size}, b.Done)
	// Latent errors on the survivors surface here, with parity margin
	// already spent on the rebuilding member — repair or escalate.
	g.checkRange(first*g.cfg.ChunkSize, size, false, b)
	g.tracer.Swap(old)
	b.Arm()
}
