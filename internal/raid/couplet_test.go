package raid

import (
	"testing"

	"spiderfs/internal/disk"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

func newCouplet(t *testing.T, layout EnclosureLayout, nGroups int, seed uint64) (*sim.Engine, *Couplet) {
	t.Helper()
	eng := sim.NewEngine()
	src := rng.New(seed)
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 64 << 20
	groups := BuildGroups(eng, nGroups, Spider2Group(), dcfg, disk.DefaultPopulation(), src)
	return eng, NewCouplet(eng, 0, layout, groups)
}

func TestJournalLifecycle(t *testing.T) {
	var j Journal
	j.Log(100)
	j.Commit(60)
	if j.Uncommitted != 40 || j.Committed != 60 {
		t.Fatalf("uncommitted=%d committed=%d", j.Uncommitted, j.Committed)
	}
	j.Commit(1000) // clamped
	if j.Uncommitted != 0 || j.Committed != 100 {
		t.Fatalf("after over-commit: %+v", j)
	}
	j.Log(7)
	if lost := j.Drop(); lost != 7 || j.Lost != 7 {
		t.Fatalf("drop lost %d, journal %+v", lost, j)
	}
}

func TestSpider1LayoutEnclosureLossDuringRebuildFails(t *testing.T) {
	// The §IV-E incident: one disk replaced (rebuild running), then an
	// enclosure drops. In the 5-enclosure layout the enclosure carries 2
	// members of every group -> 3 concurrent failures -> data loss.
	eng, c := newCouplet(t, Spider1Layout(), 4, 1)
	g := c.Groups()[0]
	g.FailDisk(0)
	repl := disk.New(eng, 99, g.Disks()[0].Config(), disk.Nominal(), rng.New(5))
	g.StartRebuild(0, repl, nil)
	eng.RunFor(10 * sim.Millisecond)

	// Fail an enclosure that does NOT house member 0 (members 2,3 live
	// in enclosure 1 under the 5x2 layout).
	failed := c.FailEnclosure(1)
	if failed == 0 {
		t.Fatal("expected at least the rebuilding group to fail")
	}
	if g.State() != Failed {
		t.Fatalf("rebuilding group state = %v, want failed", g.State())
	}
}

func TestSpider2LayoutEnclosureLossDuringRebuildSurvives(t *testing.T) {
	eng, c := newCouplet(t, Spider2Layout(), 4, 2)
	g := c.Groups()[0]
	g.FailDisk(0)
	repl := disk.New(eng, 99, g.Disks()[0].Config(), disk.Nominal(), rng.New(5))
	g.StartRebuild(0, repl, nil)
	eng.RunFor(10 * sim.Millisecond)

	// 10x1 layout: an enclosure loss is a single member per group.
	failed := c.FailEnclosure(1)
	if failed != 0 {
		t.Fatalf("%d groups failed; 10-enclosure layout should tolerate this", failed)
	}
	if g.State() == Failed {
		t.Fatal("group failed; should be rebuilding/degraded")
	}
}

func TestTakeOfflineCleanCommitsJournal(t *testing.T) {
	_, c := newCouplet(t, Spider2Layout(), 2, 3)
	c.Journal.Log(500)
	if lost := c.TakeOffline(); lost != 0 {
		t.Fatalf("clean shutdown lost %d entries", lost)
	}
	if c.Journal.Committed != 500 {
		t.Fatalf("committed = %d", c.Journal.Committed)
	}
}

func TestTakeOfflineDuringRebuildLosesJournal(t *testing.T) {
	eng, c := newCouplet(t, Spider1Layout(), 2, 4)
	g := c.Groups()[0]
	g.FailDisk(0)
	repl := disk.New(eng, 99, g.Disks()[0].Config(), disk.Nominal(), rng.New(5))
	g.StartRebuild(0, repl, nil)
	eng.RunFor(5 * sim.Millisecond) // rebuild still in flight
	c.Journal.Log(1_000_000)
	lost := c.TakeOffline()
	if lost != 1_000_000 {
		t.Fatalf("lost %d journal entries, want 1000000", lost)
	}
}

func TestRecoverFilesRate(t *testing.T) {
	_, c := newCouplet(t, Spider2Layout(), 1, 5)
	c.Journal.Log(100000)
	c.Journal.Drop()
	rec, lost := c.RecoverFiles(rng.New(6), 0.95)
	total := rec + lost
	if total != 100000 {
		t.Fatalf("recovered+lost = %d", total)
	}
	frac := float64(rec) / float64(total)
	if frac < 0.94 || frac > 0.96 {
		t.Fatalf("recovery rate = %f, want ~0.95", frac)
	}
}

func TestControllerFailover(t *testing.T) {
	_, c := newCouplet(t, Spider2Layout(), 1, 7)
	c.ControllerFailover()
	if c.ActiveControllers != 1 {
		t.Fatalf("controllers = %d", c.ActiveControllers)
	}
	c.ControllerFailover() // cannot go below 1
	if c.ActiveControllers != 1 {
		t.Fatalf("controllers = %d", c.ActiveControllers)
	}
}

func TestCoupletLayoutMismatchPanics(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(8)
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 64 << 20
	groups := BuildGroups(eng, 1, Spider2Group(), dcfg, disk.DefaultPopulation(), src)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on layout mismatch")
		}
	}()
	NewCouplet(eng, 0, EnclosureLayout{Enclosures: 4, PerEnclosure: 2}, groups)
}

func TestBuildGroupsPartitionsDisks(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(9)
	groups := BuildGroups(eng, 3, Spider2Group(), disk.NLSAS2TB(), disk.DefaultPopulation(), src)
	seen := map[*disk.Disk]bool{}
	for _, g := range groups {
		for _, d := range g.Disks() {
			if seen[d] {
				t.Fatal("disk shared between groups")
			}
			seen[d] = true
		}
	}
	if len(seen) != 30 {
		t.Fatalf("total disks = %d", len(seen))
	}
}
