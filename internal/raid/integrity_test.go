package raid

import (
	"testing"

	"spiderfs/internal/disk"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// smallGroup builds a 8+2 group over 64 MiB member disks (512 stripes)
// so integrity walks stay cheap in event count.
func smallGroup(t *testing.T, seed uint64) (*sim.Engine, *Group) {
	t.Helper()
	eng := sim.NewEngine()
	src := rng.New(seed)
	cfg := Spider2Group()
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 64 << 20
	members := make([]*disk.Disk, cfg.Width())
	for i := range members {
		members[i] = disk.New(eng, i, dcfg, disk.Nominal(), src.Split("d"))
	}
	return eng, NewGroup(eng, 0, cfg, members)
}

// corruptChunk plants a defect in the chunk that data index k of the
// stripe maps to, and returns the member holding it.
func corruptChunk(g *Group, stripe int64, dataIdx int, kind disk.CorruptKind) int {
	m := g.chunkLocation(stripe, dataIdx)
	g.dsks[m].InjectError(g.diskOffset(stripe), kind)
	return m
}

func TestVerifyAlwaysRepairsSilentCorruption(t *testing.T) {
	eng, g := smallGroup(t, 21)
	g.Verify = VerifyAlways
	m := corruptChunk(g, 0, 0, disk.Silent)
	var oc ReadOutcome
	g.ReadChecked(0, g.cfg.StripeDataSize(), func(o ReadOutcome) { oc = o })
	eng.Run()
	if oc.Undetected != 0 || oc.Repaired != 1 || oc.EIO {
		t.Fatalf("outcome = %+v, want 1 inline repair", oc)
	}
	if g.ChecksumMismatches != 1 || g.RepairedChunks != 1 || g.UndetectedCorruptReads != 0 {
		t.Fatalf("counters mismatch/repair/undetected = %d/%d/%d",
			g.ChecksumMismatches, g.RepairedChunks, g.UndetectedCorruptReads)
	}
	if g.dsks[m].CorruptSectors() != 0 {
		t.Fatal("repair write did not heal the member")
	}
}

func TestVerifyOnSuspectServesSilentCorruption(t *testing.T) {
	eng, g := smallGroup(t, 22)
	corruptChunk(g, 0, 0, disk.Silent)
	var oc ReadOutcome
	g.ReadChecked(0, g.cfg.StripeDataSize(), func(o ReadOutcome) { oc = o })
	eng.Run()
	if oc.Undetected != 1 || oc.Repaired != 0 {
		t.Fatalf("outcome = %+v, want 1 undetected corrupt read", oc)
	}
	if g.UndetectedCorruptReads != 1 {
		t.Fatalf("UndetectedCorruptReads = %d", g.UndetectedCorruptReads)
	}
}

func TestDriveReportedURERepairsInline(t *testing.T) {
	eng, g := smallGroup(t, 23)
	m := corruptChunk(g, 0, 0, disk.URE)
	var oc ReadOutcome
	g.ReadChecked(0, g.cfg.StripeDataSize(), func(o ReadOutcome) { oc = o })
	eng.Run()
	// A URE is drive-reported, so even verify-on-suspect escalates to
	// the verify path and reconstructs-and-rewrites.
	if oc.Repaired != 1 || oc.Undetected != 0 || oc.EIO {
		t.Fatalf("outcome = %+v, want inline repair", oc)
	}
	if g.UREsDetected != 1 || g.RepairedChunks != 1 {
		t.Fatalf("UREs/repairs = %d/%d", g.UREsDetected, g.RepairedChunks)
	}
	if g.dsks[m].CorruptSectors() != 0 {
		t.Fatal("URE not healed by rewrite")
	}
}

func TestDefectsBeyondParityEscalateOnce(t *testing.T) {
	eng, g := smallGroup(t, 24)
	g.FailDisk(0)
	g.FailDisk(1)
	// Two members offline spend the parity budget; one more defect on a
	// surviving chunk makes the stripe unrecoverable.
	stripe := int64(5)
	var mem int
	for k := 0; k < g.cfg.DataDisks; k++ {
		if m := g.chunkLocation(stripe, k); m != 0 && m != 1 {
			g.dsks[m].InjectError(g.diskOffset(stripe), disk.Silent)
			mem = m
			break
		}
	}
	var losses []int64
	g.OnStripeLoss = func(s int64) { losses = append(losses, s) }
	var first, second ReadOutcome
	off := stripe * g.cfg.StripeDataSize()
	g.ReadChecked(off, g.cfg.StripeDataSize(), func(o ReadOutcome) { first = o })
	eng.Run()
	g.ReadChecked(off, g.cfg.StripeDataSize(), func(o ReadOutcome) { second = o })
	eng.Run()
	if !first.EIO || !second.EIO {
		t.Fatalf("outcomes = %+v / %+v, want EIO both times", first, second)
	}
	if len(losses) != 1 || losses[0] != stripe {
		t.Fatalf("OnStripeLoss fired %v, want exactly once for stripe %d", losses, stripe)
	}
	if g.UnrecoverableStripes != 1 || g.LostStripeReads != 1 {
		t.Fatalf("lost/lost-reads = %d/%d, want 1/1", g.UnrecoverableStripes, g.LostStripeReads)
	}
	if g.dsks[mem].CorruptSectors() == 0 {
		t.Fatal("unrecoverable defect should stay on the platter")
	}
}

func TestScrubRepairsStormAndConverges(t *testing.T) {
	eng, g := smallGroup(t, 25)
	src := rng.New(77).Split("storm")
	for i := 0; i < 24; i++ {
		m := src.Intn(g.cfg.Width())
		lba := src.Int63n(g.dsks[m].Config().Capacity)
		g.dsks[m].InjectError(lba, disk.Silent)
	}
	planted := 0
	for _, d := range g.dsks {
		planted += d.CorruptSectors()
	}
	var res ScrubResult
	g.ScrubStripes(0, g.TotalStripes(), func(r ScrubResult) { res = r })
	eng.Run()
	if res.Repaired != planted || res.Lost != 0 {
		t.Fatalf("scrub repaired %d of %d planted, lost %d", res.Repaired, planted, res.Lost)
	}
	if g.ScrubRepairs != uint64(planted) || g.ScrubbedStripes != g.TotalStripes() {
		t.Fatalf("ScrubRepairs/ScrubbedStripes = %d/%d", g.ScrubRepairs, g.ScrubbedStripes)
	}
	g.ScrubStripes(0, g.TotalStripes(), func(r ScrubResult) { res = r })
	eng.Run()
	if res.Repaired != 0 {
		t.Fatalf("second scrub pass repaired %d, want a clean array", res.Repaired)
	}
}

func TestScrubDuringRebuildMeasuresDoubleFailureWindow(t *testing.T) {
	eng, g := smallGroup(t, 26)
	g.RebuildChunk = 8
	g.RebuildPause = 10 * sim.Second // keep the rebuild in flight for a while
	g.FailDisk(3)
	// Latent error on a survivor, in a stripe the scrub will reach.
	stripe := int64(100)
	for k := 0; k < g.cfg.DataDisks; k++ {
		if m := g.chunkLocation(stripe, k); m != 3 {
			g.dsks[m].InjectError(g.diskOffset(stripe), disk.URE)
			break
		}
	}
	repl := disk.New(eng, 99, g.dsks[0].Config(), disk.Nominal(), rng.New(5).Split("r"))
	g.StartRebuild(3, repl, nil)
	var res ScrubResult
	g.ScrubStripes(0, 128, func(r ScrubResult) { res = r })
	eng.RunFor(5 * sim.Second)
	if !res.Rebuilding || res.Repaired != 1 {
		t.Fatalf("scrub result = %+v, want a repair during the rebuild", res)
	}
	if g.RebuildLatentHits == 0 {
		t.Fatal("latent error during rebuild not counted as double-failure exposure")
	}
	eng.Run()
	if g.State() != Healthy {
		t.Fatalf("state = %v after rebuild completes", g.State())
	}
}

// --- rebuild lifecycle hardening (satellite 2) ---

func TestRestoreDuringRebuildCancelsCleanly(t *testing.T) {
	eng, g := smallGroup(t, 27)
	g.RebuildChunk = 8
	g.RebuildPause = 5 * sim.Second
	g.FailDisk(4)
	repl := disk.New(eng, 99, g.dsks[0].Config(), disk.Nominal(), rng.New(6).Split("r"))
	g.StartRebuild(4, repl, func() { t.Fatal("cancelled rebuild must not report completion") })
	eng.RunFor(2 * sim.Second)
	if g.State() != Rebuilding {
		t.Fatalf("state = %v, want rebuilding", g.State())
	}
	if st := g.RestoreDisk(4); st != Healthy {
		t.Fatalf("restore -> %v, want healthy", st)
	}
	if g.rebuildEvent != nil || g.rebuildMember != -1 || g.rebuildNext != 0 {
		t.Fatalf("stale rebuild bookkeeping: event=%v member=%d next=%d",
			g.rebuildEvent, g.rebuildMember, g.rebuildNext)
	}
	eng.Run() // any orphaned batch continuation would fire t.Fatal above
	if g.State() != Healthy {
		t.Fatalf("state = %v after drain", g.State())
	}
}

func TestSecondFailureDuringRebuildQueuesReplacement(t *testing.T) {
	eng, g := smallGroup(t, 28)
	g.RebuildChunk = 16
	g.RebuildPause = sim.Second
	g.FailDisk(0)
	dcfg := g.dsks[0].Config()
	var order []int
	r0 := disk.New(eng, 90, dcfg, disk.Nominal(), rng.New(7).Split("r0"))
	g.StartRebuild(0, r0, func() { order = append(order, 0) })
	eng.RunFor(2 * sim.Second)
	// Second failure while the first rebuild runs: still within parity.
	if st := g.FailDisk(7); st != Rebuilding {
		t.Fatalf("second failure -> %v, want still rebuilding", st)
	}
	r7 := disk.New(eng, 91, dcfg, disk.Nominal(), rng.New(7).Split("r7"))
	g.StartRebuild(7, r7, func() { order = append(order, 7) })
	first := g.rebuildMember
	if first != 0 {
		t.Fatalf("running rebuild clobbered: member = %d, want 0", first)
	}
	eng.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 7 {
		t.Fatalf("rebuild completion order = %v, want [0 7]", order)
	}
	if g.State() != Healthy {
		t.Fatalf("state = %v after both rebuilds", g.State())
	}
}

func TestGroupFailureDuringRebuildClearsBookkeeping(t *testing.T) {
	eng, g := smallGroup(t, 29)
	g.RebuildChunk = 8
	g.RebuildPause = 5 * sim.Second
	g.FailDisk(0)
	repl := disk.New(eng, 92, g.dsks[0].Config(), disk.Nominal(), rng.New(8).Split("r"))
	g.StartRebuild(0, repl, func() { t.Fatal("rebuild on a failed group must not complete") })
	eng.RunFor(2 * sim.Second)
	g.FailDisk(5)
	if st := g.FailDisk(8); st != Failed {
		t.Fatalf("third failure -> %v, want failed", st)
	}
	if g.rebuildEvent != nil || g.rebuildMember != -1 || g.rebuildNext != 0 || len(g.pending) != 0 {
		t.Fatalf("stale rebuild bookkeeping after group failure: event=%v member=%d next=%d pending=%d",
			g.rebuildEvent, g.rebuildMember, g.rebuildNext, len(g.pending))
	}
	eng.Run()
	if g.State() != Failed {
		t.Fatalf("state = %v", g.State())
	}
	// Restoring a member of a dead group resurrects nothing.
	if st := g.RestoreDisk(5); st != Failed {
		t.Fatalf("restore on failed group -> %v", st)
	}
}
