package raid

import (
	"testing"
	"testing/quick"

	"spiderfs/internal/disk"
	"spiderfs/internal/rng"
	"spiderfs/internal/sim"
)

// Property: forEachStripe decomposes any extent into per-stripe chunk
// ranges that exactly tile the request — no gaps, no overlap, chunk
// indices in range.
func TestForEachStripeTilesExtent(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(1)
	cfg := Spider2Group()
	dcfg := disk.NLSAS2TB()
	dcfg.Capacity = 1 << 30
	members := make([]*disk.Disk, cfg.Width())
	for i := range members {
		members[i] = disk.New(eng, i, dcfg, disk.Nominal(), src.Split("d"))
	}
	g := NewGroup(eng, 0, cfg, members)

	f := func(offRaw, sizeRaw uint32) bool {
		off := int64(offRaw) % (g.Capacity() - 1)
		size := int64(sizeRaw)%(16<<20) + 1
		if off+size > g.Capacity() {
			size = g.Capacity() - off
		}
		sds := cfg.StripeDataSize()
		var covered int64
		prevStripe := int64(-1)
		ok := true
		g.forEachStripe(off, size, func(stripe, first, last int64) {
			if stripe <= prevStripe {
				ok = false // stripes must advance strictly
			}
			prevStripe = stripe
			if first < 0 || last >= int64(cfg.DataDisks) || first > last {
				ok = false
			}
			// Reconstruct the byte range this visit covers.
			stripeStart := stripe * sds
			lo := stripeStart + first*cfg.ChunkSize
			hi := stripeStart + (last+1)*cfg.ChunkSize
			if lo > off || hi < off+size {
				// Partial chunks at the edges are fine; clamp.
				if lo < off {
					lo = off
				}
				if hi > off+size {
					hi = off + size
				}
			}
			if lo < off {
				lo = off
			}
			if hi > off+size {
				hi = off + size
			}
			covered += hi - lo
		})
		// The chunk ranges must cover at least the extent (they are
		// chunk-granular, so clamped coverage equals the extent).
		return ok && covered == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any sequence of <=2 disk failures the group is usable
// (reads/writes complete); a third fails it permanently.
func TestFailureSequenceProperty(t *testing.T) {
	f := func(seed uint64, order [3]uint8) bool {
		eng := sim.NewEngine()
		src := rng.New(seed)
		cfg := Spider2Group()
		dcfg := disk.NLSAS2TB()
		dcfg.Capacity = 256 << 20
		members := make([]*disk.Disk, cfg.Width())
		for i := range members {
			members[i] = disk.New(eng, i, dcfg, disk.Nominal(), src.Split("d"))
		}
		g := NewGroup(eng, 0, cfg, members)
		// Fail three distinct members in the given order.
		failed := map[int]bool{}
		idx := 0
		for _, o := range order {
			m := int(o) % cfg.Width()
			for failed[m] {
				m = (m + 1) % cfg.Width()
			}
			failed[m] = true
			st := g.FailDisk(m)
			idx++
			switch idx {
			case 1, 2:
				if st == Failed {
					return false
				}
				done := false
				g.Read(0, 1<<20, func() { done = true })
				eng.Run()
				if !done {
					return false
				}
			case 3:
				if st != Failed {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: bytes written via Write equal the sum of request sizes
// (accounting conservation).
func TestWriteAccountingProperty(t *testing.T) {
	f := func(seed uint64, sizes [8]uint16) bool {
		eng := sim.NewEngine()
		src := rng.New(seed)
		cfg := Spider2Group()
		dcfg := disk.NLSAS2TB()
		dcfg.Capacity = 256 << 20
		members := make([]*disk.Disk, cfg.Width())
		for i := range members {
			members[i] = disk.New(eng, i, dcfg, disk.Nominal(), src.Split("d"))
		}
		g := NewGroup(eng, 0, cfg, members)
		var want int64
		var off int64
		for _, s := range sizes {
			n := int64(s) + 1
			g.Write(off, n, nil)
			off += n
			want += n
		}
		eng.Run()
		return g.BytesWritten == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
